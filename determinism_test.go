package kamsta

import (
	"context"
	"math"
	"testing"
)

// TestModeledClockDeterminism pins the fix for the run-to-run modeled-clock
// variance that used to appear at instances beyond the golden sizes (e.g.
// Grid2D n=2^12 and GNM n=2^12/m=2^15 at p=8): identical jobs must produce
// bit-identical reports, run after run, on both the Borůvka and the
// Filter-Borůvka path.
//
// Root cause of the old variance: the pointer-doubling loop iterated a
// map[VID]*parentEntry, and Go's randomized map order decided how many
// pointer chases were short-cut through entries already advanced in the
// same pass — changing per-round query volumes and with them the β·ℓ term
// of the modeled clock (collective and message counts stayed fixed; only
// bytes moved). The dense tables process vertices in index order, so the
// message sequence is a pure function of the graph.
func TestModeledClockDeterminism(t *testing.T) {
	reps := 3
	if testing.Short() {
		reps = 2
	}
	specs := []GraphSpec{
		{Family: Grid2D, N: 1 << 12, Seed: 9},
		{Family: GNM, N: 1 << 12, M: 1 << 15, Seed: 9},
	}
	algs := []Algorithm{AlgBoruvka, AlgFilterBoruvka}
	m := newTestMachine(t, MachineConfig{PEs: 8})
	defer m.Close()
	for _, spec := range specs {
		for _, alg := range algs {
			var ref *Report
			for run := 0; run < reps; run++ {
				rep, err := m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(alg))
				if err != nil {
					t.Fatalf("%s/%s: %v", spec.Family, alg, err)
				}
				if ref == nil {
					ref = rep
					continue
				}
				name := spec.Family.String() + "/" + string(alg)
				if got, want := math.Float64bits(rep.ModeledSeconds), math.Float64bits(ref.ModeledSeconds); got != want {
					t.Errorf("%s run %d: ModeledSeconds bits %#x != %#x", name, run, got, want)
				}
				if rep.Stats != ref.Stats {
					t.Errorf("%s run %d: Stats %+v != %+v", name, run, rep.Stats, ref.Stats)
				}
				if rep.TotalWeight != ref.TotalWeight || rep.NumEdges != ref.NumEdges ||
					rep.Rounds != ref.Rounds || rep.BaseCalls != ref.BaseCalls {
					t.Errorf("%s run %d: result shape differs: %d/%d/%d/%d vs %d/%d/%d/%d", name, run,
						rep.TotalWeight, rep.NumEdges, rep.Rounds, rep.BaseCalls,
						ref.TotalWeight, ref.NumEdges, ref.Rounds, ref.BaseCalls)
				}
				if len(rep.MSTEdges) != len(ref.MSTEdges) {
					t.Fatalf("%s run %d: %d MST edges vs %d", name, run, len(rep.MSTEdges), len(ref.MSTEdges))
				}
				for i := range rep.MSTEdges {
					if rep.MSTEdges[i] != ref.MSTEdges[i] {
						t.Errorf("%s run %d: MST edge %d differs: %+v vs %+v", name, run,
							i, rep.MSTEdges[i], ref.MSTEdges[i])
						break
					}
				}
				if got, want := math.Float64bits(rep.InputModeledSeconds), math.Float64bits(ref.InputModeledSeconds); got != want {
					t.Errorf("%s run %d: InputModeledSeconds bits %#x != %#x", name, run, got, want)
				}
				for ph, pt := range ref.Phases {
					if got := rep.Phases[ph]; math.Float64bits(got.Modeled) != math.Float64bits(pt.Modeled) {
						t.Errorf("%s run %d: phase %q modeled %v != %v", name, run, ph, got.Modeled, pt.Modeled)
					}
				}
			}
		}
	}
}
