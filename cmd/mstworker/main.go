// Command mstworker hosts the remote ranks of distributed kamsta machines.
// It listens for leader connections (mstbench/mstverify/mstserve with
// -transport tcp, or any program building a Machine with TransportTCP) and,
// per connection, runs the rank block the leader assigns until the leader
// hangs up. One worker process serves any number of leaders concurrently;
// each connection gets its own simulated world.
//
// Usage:
//
//	mstworker -listen 127.0.0.1:9021
//	mstworker -listen :9021 -quiet -metrics metrics.json -pprof localhost:6060
//
// SIGINT/SIGTERM stops accepting, severs live connections (their leaders
// observe a transport fault), and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"kamsta"
	"kamsta/internal/cliobs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9021", "address to accept leader connections on")
	quiet := flag.Bool("quiet", false, "suppress per-connection log lines")
	obsFlags := cliobs.Register()
	flag.Parse()

	if err := obsFlags.Activate(); err != nil {
		fail("%v", err)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("listen: %v", err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mstworker: "+format+"\n", args...)
	}
	opts := kamsta.WorkerOptions{Metrics: obsFlags.Registry}
	if !*quiet {
		opts.Logf = logf
	}
	logf("listening on %s", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := kamsta.ServeWorker(ctx, lis, opts); err != nil {
		fail("%v", err)
	}
	if err := obsFlags.Flush(); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mstworker: "+format+"\n", args...)
	os.Exit(1)
}
