// Command mstgen generates one of the paper's graph families and writes it
// to a file (or stdout) in any of the supported interchange formats, or
// prints instance statistics. Expensive instances are generated once,
// cached on disk, and fed back to mstbench/mstverify via -input.
//
// Usage:
//
//	mstgen -family gnm -n 1024 -m 8192 -seed 7 -stats
//	mstgen -family rgg2d -n 4096 -m 32768 > edges.txt
//	mstgen -family rgg2d -n 65536 -m 1048576 -o rgg.kg          # binary, chunk-indexed
//	mstgen -realworld US-road -rw-scale 16384 -format gr -o road.gr
//
// Formats: kamsta (binary, .kg), edgelist ("u v w" text), gr (9th-DIMACS),
// metis (adjacency). -format auto picks by the -o extension.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"kamsta/internal/cliobs"
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/graphio"
)

func main() {
	family := flag.String("family", "gnm", "graph family: "+gen.FamilyNames())
	n := flag.Uint64("n", 1024, "target vertex count")
	m := flag.Uint64("m", 8192, "target undirected edge count")
	seed := flag.Uint64("seed", 1, "instance seed")
	pes := flag.Int("p", 4, "PEs used for generation (result is p-independent)")
	realworld := flag.String("realworld", "", "generate a Table I stand-in instead (e.g. twitter, US-road)")
	rwScale := flag.Uint64("rw-scale", 1<<14, "real-world downscale divisor")
	stats := flag.Bool("stats", false, "print instance statistics instead of edges")
	out := flag.String("o", "", "output file (default: write text to stdout)")
	format := flag.String("format", "auto", "output format: kamsta, edgelist, gr, metis, auto (by -o extension)")
	obsFlags := cliobs.Register()
	flag.Parse()

	if *pes < 1 || *pes > 1<<12 {
		fail("bad -p %d: need between 1 and %d PEs", *pes, 1<<12)
	}
	var spec gen.Spec
	if *realworld != "" {
		var err error
		spec, err = gen.RealWorldSpec(*realworld, *rwScale, *seed)
		if err != nil {
			fail("%v", err)
		}
	} else {
		f, err := gen.ParseFamily(*family)
		if err != nil {
			fail("%v", err)
		}
		spec = gen.Spec{Family: f, N: *n, M: *m, Seed: *seed}
	}
	fm, err := graphio.ParseFormat(*format)
	if err != nil {
		fail("%v", err)
	}
	if err := obsFlags.Activate(); err != nil {
		fail("%v", err)
	}

	// SIGINT cancels generation at the next collective boundary: the world
	// unwinds cleanly and the command exits without a panic trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	chunks := make([][]graph.Edge, *pes)
	w := comm.NewWorld(*pes, comm.WithMetrics(obsFlags.Registry))
	err = w.RunJobCfg(ctx, comm.JobConfig{Trace: obsFlags.Trace}, func(c *comm.Comm) {
		edges, _ := gen.Build(c, spec, dsort.Options{})
		chunks[c.Rank()] = edges
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mstgen: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fail("generating: %v", err)
	}
	var all []graph.Edge
	for _, ch := range chunks {
		all = append(all, ch...)
	}

	defer func() {
		if err := obsFlags.Flush(); err != nil {
			fail("%v", err)
		}
	}()
	if *stats {
		printStats(spec, all)
		return
	}
	if *out != "" {
		if err := graphio.WriteFile(*out, fm, all); err != nil {
			fail("writing %s: %v", *out, err)
		}
		return
	}
	if fm == graphio.FormatAuto {
		fm = graphio.FormatEdgeList
	}
	bw := bufio.NewWriterSize(os.Stdout, 1<<20)
	if err := graphio.Write(bw, fm, all); err != nil {
		fail("writing stdout: %v", err)
	}
	if err := bw.Flush(); err != nil {
		fail("writing stdout: %v", err)
	}
}

// fail prints an error and exits with the flag-error status.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mstgen: "+format+"\n", args...)
	os.Exit(2)
}

func printStats(spec gen.Spec, all []graph.Edge) {
	deg := map[graph.VID]int{}
	local := 0
	for _, e := range all {
		deg[e.U]++
		d := int64(e.U) - int64(e.V)
		if d < 0 {
			d = -d
		}
		if spec.N > 0 && d <= int64(spec.N)/16 {
			local++
		}
	}
	var ds []int
	for _, d := range deg {
		ds = append(ds, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	maxDeg, med := 0, 0
	if len(ds) > 0 {
		maxDeg, med = ds[0], ds[len(ds)/2]
	}
	fmt.Printf("instance      %s\n", spec.Label())
	fmt.Printf("vertices      %d\n", len(deg))
	fmt.Printf("edges (dir)   %d\n", len(all))
	fmt.Printf("avg degree    %.2f\n", float64(len(all))/float64(max(1, len(deg))))
	fmt.Printf("max degree    %d\n", maxDeg)
	fmt.Printf("median degree %d\n", med)
	fmt.Printf("near edges    %.1f%% (|u-v| <= n/16)\n", 100*float64(local)/float64(max(1, len(all))))
}
