// Command mstverify cross-checks every distributed algorithm against
// sequential Kruskal on a sweep of generated instances — the repository's
// end-to-end smoke test in executable form.
//
// Usage:
//
//	mstverify                  # default sweep
//	mstverify -n 2000 -m 12000 -ps 2,4,8 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kamsta"
)

func main() {
	n := flag.Uint64("n", 600, "vertices per instance")
	m := flag.Uint64("m", 3000, "undirected edges per instance")
	ps := flag.String("ps", "1,3,4,8", "PE counts to verify")
	seeds := flag.Uint64("seeds", 3, "number of seeds per configuration")
	threads := flag.Int("threads", 2, "threads per PE")
	flag.Parse()

	peList, err := parseInts(*ps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(2)
	}
	run(*n, *m, peList, *seeds, *threads)
}

func run(n, m uint64, peList []int, seeds uint64, threads int) {
	fams := []struct {
		name string
		spec func(seed uint64) kamsta.GraphSpec
	}{
		{"2D-GRID", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.Grid2D, N: n, Seed: s} }},
		{"2D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG2D, N: n, M: m, Seed: s} }},
		{"3D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG3D, N: n, M: m, Seed: s} }},
		{"RHG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RHG, N: n, M: m, Seed: s} }},
		{"GNM", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.GNM, N: n, M: m, Seed: s} }},
		{"RMAT", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RMAT, N: n, M: m, Seed: s} }},
	}
	algs := []kamsta.Algorithm{kamsta.AlgBoruvka, kamsta.AlgFilterBoruvka, kamsta.AlgMNDMST, kamsta.AlgSparseMatrix}
	failures := 0
	checks := 0
	for _, fam := range fams {
		for seed := uint64(1); seed <= seeds; seed++ {
			spec := fam.spec(seed)
			want, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: 2, Algorithm: kamsta.AlgKruskal})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mstverify: oracle failed on %s: %v\n", fam.name, err)
				os.Exit(1)
			}
			for _, alg := range algs {
				for _, p := range peList {
					got, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: p, Threads: threads, Algorithm: alg})
					checks++
					if err != nil {
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: %v\n", fam.name, alg, p, seed, err)
						failures++
						continue
					}
					if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: weight %d/%d want %d/%d\n",
							fam.name, alg, p, seed, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
						failures++
					}
				}
			}
			fmt.Printf("ok   %-8s seed=%d weight=%d edges=%d\n", fam.name, seed, want.TotalWeight, want.NumEdges)
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
