// Command mstverify cross-checks every distributed algorithm against
// sequential Kruskal, either on a sweep of generated instances or on a
// graph file — the repository's end-to-end smoke test in executable form.
//
// Usage:
//
//	mstverify                  # default generated sweep
//	mstverify -n 2000 -m 12000 -ps 2,4,8 -seeds 5
//	mstverify -input g.kg -ps 1,4,8   # file-backed cross-check
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kamsta"
)

func main() {
	n := flag.Uint64("n", 600, "vertices per instance")
	m := flag.Uint64("m", 3000, "undirected edges per instance")
	ps := flag.String("ps", "1,3,4,8", "PE counts to verify")
	seeds := flag.Uint64("seeds", 3, "number of seeds per configuration")
	threads := flag.Int("threads", 2, "threads per PE")
	input := flag.String("input", "", "verify a graph file instead of the generated sweep")
	format := flag.String("format", "auto", "input format: kamsta, edgelist, gr, metis, auto")
	flag.Parse()

	peList, err := parseInts(*ps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(2)
	}
	if *input != "" {
		runFile(*input, *format, peList, *threads)
		return
	}
	run(*n, *m, peList, *seeds, *threads)
}

// runFile cross-checks every distributed algorithm against Kruskal on a
// file-backed instance, loaded in parallel at each PE count.
func runFile(path, format string, peList []int, threads int) {
	src := kamsta.FromFileFormat(path, format)
	want, err := kamsta.ComputeMSFSource(src, kamsta.Config{PEs: 2, Algorithm: kamsta.AlgKruskal})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: oracle failed on %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("oracle %s: vertices=%d edges(dir)=%d weight=%d msf_edges=%d\n",
		path, want.InputVertices, want.InputEdges, want.TotalWeight, want.NumEdges)
	algs := []kamsta.Algorithm{kamsta.AlgBoruvka, kamsta.AlgFilterBoruvka, kamsta.AlgMNDMST, kamsta.AlgSparseMatrix}
	failures, checks := 0, 0
	for _, alg := range algs {
		for _, p := range peList {
			got, err := kamsta.ComputeMSFSource(src, kamsta.Config{PEs: p, Threads: threads, Algorithm: alg})
			checks++
			if err != nil {
				fmt.Printf("FAIL %-14s p=%-3d: %v\n", alg, p, err)
				failures++
				continue
			}
			if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
				fmt.Printf("FAIL %-14s p=%-3d: weight %d/%d want %d/%d\n",
					alg, p, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
				failures++
				continue
			}
			fmt.Printf("ok   %-14s p=%-3d weight=%d edges=%d\n", alg, p, got.TotalWeight, got.NumEdges)
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func run(n, m uint64, peList []int, seeds uint64, threads int) {
	fams := []struct {
		name string
		spec func(seed uint64) kamsta.GraphSpec
	}{
		{"2D-GRID", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.Grid2D, N: n, Seed: s} }},
		{"2D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG2D, N: n, M: m, Seed: s} }},
		{"3D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG3D, N: n, M: m, Seed: s} }},
		{"RHG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RHG, N: n, M: m, Seed: s} }},
		{"GNM", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.GNM, N: n, M: m, Seed: s} }},
		{"RMAT", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RMAT, N: n, M: m, Seed: s} }},
	}
	algs := []kamsta.Algorithm{kamsta.AlgBoruvka, kamsta.AlgFilterBoruvka, kamsta.AlgMNDMST, kamsta.AlgSparseMatrix}
	failures := 0
	checks := 0
	for _, fam := range fams {
		for seed := uint64(1); seed <= seeds; seed++ {
			spec := fam.spec(seed)
			want, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: 2, Algorithm: kamsta.AlgKruskal})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mstverify: oracle failed on %s: %v\n", fam.name, err)
				os.Exit(1)
			}
			for _, alg := range algs {
				for _, p := range peList {
					got, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: p, Threads: threads, Algorithm: alg})
					checks++
					if err != nil {
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: %v\n", fam.name, alg, p, seed, err)
						failures++
						continue
					}
					if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: weight %d/%d want %d/%d\n",
							fam.name, alg, p, seed, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
						failures++
					}
				}
			}
			fmt.Printf("ok   %-8s seed=%d weight=%d edges=%d\n", fam.name, seed, want.TotalWeight, want.NumEdges)
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
