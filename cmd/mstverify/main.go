// Command mstverify cross-checks every distributed algorithm against
// sequential Kruskal, either on a sweep of generated instances or on a
// graph file — the repository's end-to-end smoke test in executable form.
// One persistent Machine per PE count is reused across the whole sweep.
//
// Usage:
//
//	mstverify                  # default generated sweep
//	mstverify -n 2000 -m 12000 -ps 2,4,8 -seeds 5
//	mstverify -input g.kg -ps 1,4,8   # file-backed cross-check
//	mstverify -alg boruvka,mndmst     # restrict the checked algorithms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kamsta"
	"kamsta/internal/cliobs"
)

func main() {
	n := flag.Uint64("n", 600, "vertices per instance")
	m := flag.Uint64("m", 3000, "undirected edges per instance")
	ps := flag.String("ps", "1,3,4,8", "PE counts to verify")
	seeds := flag.Uint64("seeds", 3, "number of seeds per configuration")
	threads := flag.Int("threads", 2, "threads per PE")
	input := flag.String("input", "", "verify a graph file instead of the generated sweep")
	format := flag.String("format", "auto", "input format: kamsta, edgelist, gr, metis, auto")
	algNames := flag.String("alg", "", "comma-separated algorithms to check, from: "+
		kamsta.AlgorithmNames()+" (default: all distributed algorithms)")
	timeout := flag.Duration("timeout", 0,
		"per-job deadline: each check runs under context.WithTimeout (0 = none)")
	obsFlags := cliobs.Register()
	tpFlags := cliobs.RegisterTransport()
	flag.Parse()

	peList, err := parseInts(*ps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(2)
	}
	algs, err := parseAlgs(*algNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: bad -alg: %v\n", err)
		os.Exit(2)
	}
	if err := obsFlags.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(2)
	}
	// SIGINT cancels the shared ctx: the in-flight job unwinds at its next
	// collective boundary and the sweep stops with a one-line message.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	v, err := newVerifier(ctx, peList, *threads, *timeout, obsFlags, tpFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(2)
	}
	defer v.Close()
	var failures int
	if *input != "" {
		failures = v.runFile(*input, *format, algs)
	} else {
		failures = v.run(*n, *m, *seeds, algs)
	}
	if err := obsFlags.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "mstverify: %v\n", err)
		os.Exit(1)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// checkInterrupt turns a context-cancellation error into a clean exit; any
// other error is left for the caller's FAIL accounting.
func checkInterrupt(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mstverify: interrupted")
		os.Exit(130)
	}
}

// parseAlgs resolves the -alg list before any world is started; unknown
// names error out listing the valid ones. Empty means all distributed
// algorithms.
func parseAlgs(s string) ([]kamsta.Algorithm, error) {
	out, err := kamsta.ParseAlgorithmList(s)
	if err != nil {
		return nil, err
	}
	for _, a := range out {
		if a == kamsta.AlgKruskal {
			return nil, fmt.Errorf("kruskal is the oracle; pick distributed algorithms to check against it")
		}
	}
	if len(out) == 0 {
		out = kamsta.DistributedAlgorithms()
	}
	return out, nil
}

// verifier holds one persistent Machine per PE count, reused for every
// (family, seed, algorithm) data point of the sweep.
type verifier struct {
	ctx      context.Context
	peList   []int
	machines map[int]*kamsta.Machine
	trace    *kamsta.Trace
	timeout  time.Duration
}

func newVerifier(ctx context.Context, peList []int, threads int, timeout time.Duration, obsFlags *cliobs.Flags, tpFlags *cliobs.TransportFlags) (*verifier, error) {
	v := &verifier{
		ctx:      ctx,
		peList:   peList,
		machines: make(map[int]*kamsta.Machine),
		trace:    obsFlags.Trace,
		timeout:  timeout,
	}
	for _, p := range peList {
		if v.machines[p] == nil {
			m, err := kamsta.NewMachine(kamsta.MachineConfig{
				PEs: p, Threads: threads, Metrics: obsFlags.Registry,
				Transport: tpFlags.Transport, Workers: tpFlags.Workers(),
			})
			if err != nil {
				v.Close()
				return nil, err
			}
			v.machines[p] = m
		}
	}
	return v, nil
}

// opts assembles per-job options, appending the trace sink when active.
func (v *verifier) opts(ro ...kamsta.RunOption) []kamsta.RunOption {
	if v.trace != nil {
		ro = append(ro, kamsta.WithTrace(v.trace))
	}
	return ro
}

// compute runs one job, wrapping it in the -timeout deadline when set (the
// job unwinds at its next collective boundary and reports
// context.DeadlineExceeded as a FAIL, not a hang).
func (v *verifier) compute(m *kamsta.Machine, src kamsta.Source, ro ...kamsta.RunOption) (*kamsta.Report, error) {
	ctx := v.ctx
	if v.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, v.timeout)
		defer cancel()
	}
	return m.Compute(ctx, src, ro...)
}

func (v *verifier) Close() {
	for _, m := range v.machines {
		m.Close()
	}
}

// oracle computes the sequential Kruskal reference on the first machine.
func (v *verifier) oracle(src kamsta.Source) (*kamsta.Report, error) {
	return v.compute(v.machines[v.peList[0]], src,
		v.opts(kamsta.WithAlgorithm(kamsta.AlgKruskal))...)
}

// runFile cross-checks the selected algorithms against Kruskal on a
// file-backed instance, loaded in parallel at each PE count. Returns the
// failure count (so main can still flush -metrics/-trace before exiting
// non-zero).
func (v *verifier) runFile(path, format string, algs []kamsta.Algorithm) int {
	src := kamsta.FromFileFormat(path, format)
	want, err := v.oracle(src)
	if err != nil {
		checkInterrupt(err)
		fmt.Fprintf(os.Stderr, "mstverify: oracle failed on %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("oracle %s: vertices=%d edges(dir)=%d weight=%d msf_edges=%d\n",
		path, want.InputVertices, want.InputEdges, want.TotalWeight, want.NumEdges)
	failures, checks := 0, 0
	for _, alg := range algs {
		for _, p := range v.peList {
			got, err := v.compute(v.machines[p], src, v.opts(kamsta.WithAlgorithm(alg))...)
			checks++
			if err != nil {
				checkInterrupt(err)
				fmt.Printf("FAIL %-14s p=%-3d: %v\n", alg, p, err)
				failures++
				continue
			}
			if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
				fmt.Printf("FAIL %-14s p=%-3d: weight %d/%d want %d/%d\n",
					alg, p, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
				failures++
				continue
			}
			fmt.Printf("ok   %-14s p=%-3d weight=%d edges=%d\n", alg, p, got.TotalWeight, got.NumEdges)
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	return failures
}

func (v *verifier) run(n, m, seeds uint64, algs []kamsta.Algorithm) int {
	fams := []struct {
		name string
		spec func(seed uint64) kamsta.GraphSpec
	}{
		{"2D-GRID", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.Grid2D, N: n, Seed: s} }},
		{"2D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG2D, N: n, M: m, Seed: s} }},
		{"3D-RGG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RGG3D, N: n, M: m, Seed: s} }},
		{"RHG", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RHG, N: n, M: m, Seed: s} }},
		{"GNM", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.GNM, N: n, M: m, Seed: s} }},
		{"RMAT", func(s uint64) kamsta.GraphSpec { return kamsta.GraphSpec{Family: kamsta.RMAT, N: n, M: m, Seed: s} }},
	}
	failures := 0
	checks := 0
	for _, fam := range fams {
		for seed := uint64(1); seed <= seeds; seed++ {
			spec := fam.spec(seed)
			want, err := v.oracle(kamsta.FromSpec(spec))
			if err != nil {
				checkInterrupt(err)
				fmt.Fprintf(os.Stderr, "mstverify: oracle failed on %s: %v\n", fam.name, err)
				os.Exit(1)
			}
			for _, alg := range algs {
				for _, p := range v.peList {
					got, err := v.compute(v.machines[p], kamsta.FromSpec(spec),
						v.opts(kamsta.WithAlgorithm(alg))...)
					checks++
					if err != nil {
						checkInterrupt(err)
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: %v\n", fam.name, alg, p, seed, err)
						failures++
						continue
					}
					if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
						fmt.Printf("FAIL %-8s %-14s p=%-3d seed=%d: weight %d/%d want %d/%d\n",
							fam.name, alg, p, seed, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
						failures++
					}
				}
			}
			fmt.Printf("ok   %-8s seed=%d weight=%d edges=%d\n", fam.name, seed, want.TotalWeight, want.NumEdges)
		}
	}
	fmt.Printf("\n%d checks, %d failures\n", checks, failures)
	return failures
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
