// Command mstserve runs the multi-tenant MST job server: a pool of warm
// persistent machines behind a bounded, weighted-fair queue, exposed over
// an HTTP/JSON job API (see internal/serve). SIGINT/SIGTERM drains
// gracefully: admission stops, queued and running jobs finish (bounded by
// -drain-timeout), then metrics and traces flush.
//
// Usage:
//
//	mstserve                                      # one 4-PE machine, open tenancy
//	mstserve -pool 4x1:2,8x1 -tenants alpha:4,beta:2
//	mstserve -addr :8377 -batch-jobs 8 -max-deadline 30s -metrics -
//	mstserve -retry-attempts 3 -quarantine-after 5 -brownout 0.8
//
// Overload resilience (see internal/serve and DESIGN.md §13): deadline-aware
// admission shedding (-shed-min-samples, -shed-quantile), brownout
// (-brownout), machine quarantine (-quarantine-after), and server-side retry
// of fault-killed jobs (-retry-attempts, -retry-rate, -retry-burst).
// /healthz answers liveness; /readyz answers 503 while the server should be
// steered around (draining, brownout, no live machines).
//
// API (see internal/serve/http.go):
//
//	curl -s localhost:8377/v1/jobs -d '{"tenant":"alpha","spec":{"family":"gnm","n":1024,"m":8192}}'
//	curl -s 'localhost:8377/v1/jobs/1?wait=5s'
//	curl -s localhost:8377/v1/stats
//	curl -s localhost:8377/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kamsta/internal/cliobs"
	"kamsta/internal/obs"
	"kamsta/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address for the job API")
	pool := flag.String("pool", "4x1:1", "machine pool: comma-separated PEs[xThreads][:Count]")
	tenants := flag.String("tenants", "", "tenants and weights, name[:weight] comma-separated (empty = open tenancy)")
	defaultWeight := flag.Int("default-weight", 0, "weight for unknown tenants (0 with -tenants set = reject them)")
	queue := flag.Int("queue", 1024, "global queue bound")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queue bound (0 = global bound)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for jobs that set none (0 = unlimited)")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp every job deadline (0 = unlimited)")
	batchJobs := flag.Int("batch-jobs", 8, "max small edge-list jobs coalesced per machine run (<=1 disables batching)")
	batchEdges := flag.Int("batch-edges", 65536, "max summed edges per batch")
	stall := flag.Duration("stall", 0, "per-job stall timeout (0 = machine default)")
	resultTTL := flag.Duration("result-ttl", 10*time.Minute, "how long finished jobs stay pollable")
	allowFiles := flag.Bool("allow-files", false, "permit HTTP jobs that read server-local graph files")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGINT/SIGTERM")
	shedSamples := flag.Int("shed-min-samples", 16, "dispatches observed before deadline-aware shedding engages (<0 disables)")
	shedQuantile := flag.Float64("shed-quantile", 0.9, "service-time quantile the queue-wait estimate plans for")
	brownout := flag.Float64("brownout", 0.75, "queue depth fraction that flips brownout (>=1 = only on quarantine)")
	quarantineAfter := flag.Int("quarantine-after", 0, "consecutive world faults that quarantine a machine (0 disables)")
	retryAttempts := flag.Int("retry-attempts", 1, "dispatch attempts per fault-killed job (<=1 disables server-side retries)")
	retryRate := flag.Float64("retry-rate", 1, "per-tenant retry budget refill, tokens/second")
	retryBurst := flag.Float64("retry-burst", 10, "per-tenant retry budget burst")
	maxBody := flag.Int64("max-body", 64<<20, "largest accepted job submission body, bytes")
	obsFlags := cliobs.Register()
	tpFlags := cliobs.RegisterTransport()
	flag.Parse()

	shapes, err := serve.ParsePool(*pool)
	if err != nil {
		fail("%v", err)
	}
	tcs, err := serve.ParseTenants(*tenants)
	if err != nil {
		fail("%v", err)
	}
	if *queue < 1 {
		fail("-queue must be at least 1 (got %d)", *queue)
	}
	if *tenantQueue < 0 {
		fail("-tenant-queue must be non-negative (got %d)", *tenantQueue)
	}
	if *shedQuantile <= 0 || *shedQuantile > 1 {
		fail("-shed-quantile must be in (0, 1] (got %g)", *shedQuantile)
	}
	if err := obsFlags.Activate(); err != nil {
		fail("%v", err)
	}
	// The job API always serves /metrics, even without -metrics/-pprof.
	reg := obsFlags.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// Bind before building the pool: a taken port must fail fast with a
	// non-zero exit, not after warming a fleet of machines.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen: %v", err)
	}

	srv, err := serve.New(serve.Config{
		Pool:             shapes,
		Transport:        tpFlags.Transport,
		Workers:          tpFlags.Workers(),
		Tenants:          tcs,
		DefaultWeight:    *defaultWeight,
		QueueBound:       *queue,
		TenantQueueBound: *tenantQueue,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		Batch:            serve.BatchConfig{MaxJobs: *batchJobs, MaxEdges: *batchEdges},
		StallTimeout:     *stall,
		ResultTTL:        *resultTTL,
		AllowFiles:       *allowFiles,
		ShedMinSamples:   *shedSamples,
		ShedQuantile:     *shedQuantile,
		BrownoutFraction: *brownout,
		QuarantineAfter:  *quarantineAfter,
		Retry: serve.RetryConfig{
			MaxAttempts: *retryAttempts,
			BudgetRate:  *retryRate,
			BudgetBurst: *retryBurst,
		},
		MaxRequestBytes: *maxBody,
		Metrics:         reg,
		Trace:           obsFlags.Trace,
	})
	if err != nil {
		ln.Close()
		fail("%v", err)
	}

	// ReadHeaderTimeout caps how long a connection may dribble its request
	// header (slow-loris); job bodies are bounded by -max-body instead.
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("mstserve: serving on http://%s (pool %s)\n", ln.Addr(), *pool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fail("http: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: stop admitting, let queued and running jobs finish;
	// past -drain-timeout, cancel what's left (jobs unwind at their next
	// collective boundary).
	fmt.Fprintf(os.Stderr, "mstserve: draining (up to %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	forced := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutCtx)
	if err := obsFlags.Flush(); err != nil {
		fail("%v", err)
	}
	if forced != nil {
		fmt.Fprintln(os.Stderr, "mstserve: drain timed out; remaining jobs were cancelled")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mstserve: drained cleanly")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mstserve: "+format+"\n", args...)
	os.Exit(2)
}
