// Command mstload drives a job server with multi-tenant load — closed-loop
// worker pools or open-loop Poisson arrivals (internal/serve/loadgen) —
// and reports throughput, latency percentiles and rejection rates. With
// -target it aims at a running mstserve over HTTP; without, it spins up an
// in-process server (-pool et al.) so a full load test needs one command.
//
// Every job is accounted exactly once; with -verify each edge-list result
// is cross-checked against sequential Kruskal. The process exits non-zero
// if any result is lost, duplicated, or wrong.
//
// Usage:
//
//	mstload -tenants alpha:4,beta:2,gamma:1 -workers 8 -jobs 400 -json -
//	mstload -target http://127.0.0.1:8377 -tenants web -rate 200 -jobs 1000
//	mstload -family gnm -n 4096 -m 32768 -tenants big -workers 2 -jobs 20
//	mstload -chaos-fault 0.2 -chaos-storm 0.1 -retry-attempts 3 -jobs 200
//
// The -chaos-* flags mix seeded service-level faults into the offered load
// (mid-run panics, watchdog stalls, hopeless deadlines); -retry-attempts
// and -quarantine-after turn on the in-process server's resilience knobs so
// a chaos run exercises the full shed/retry/quarantine machinery.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"kamsta"
	"kamsta/internal/bench"
	"kamsta/internal/cliobs"
	"kamsta/internal/gen"
	"kamsta/internal/serve"
	"kamsta/internal/serve/loadgen"
)

func main() {
	target := flag.String("target", "", "mstserve base URL (empty = run an in-process server)")
	pool := flag.String("pool", "4x1:1", "in-process pool: comma-separated PEs[xThreads][:Count]")
	queue := flag.Int("queue", 1024, "in-process global queue bound")
	tenantQueue := flag.Int("tenant-queue", 0, "in-process per-tenant queue bound (0 = global)")
	batchJobs := flag.Int("batch-jobs", 8, "in-process batching: max jobs per batch (<=1 disables)")
	batchEdges := flag.Int("batch-edges", 65536, "in-process batching: max summed edges per batch")
	tenants := flag.String("tenants", "load", "tenants, name[:weight] comma-separated (weight applies in-process)")
	workers := flag.Int("workers", 4, "closed loop: concurrent workers per tenant")
	rate := flag.Float64("rate", 0, "open loop: Poisson arrivals per second per tenant (overrides -workers)")
	jobs := flag.Int("jobs", 400, "jobs per tenant")
	alg := flag.String("alg", "", "algorithm per job (empty = server default)")
	edges := flag.Int("edges", 64, "edge-list jobs: edges per instance")
	vertices := flag.Int("vertices", 0, "edge-list jobs: vertex labels per instance (0 = 2+edges/3)")
	family := flag.String("family", "", "generated jobs: graph family (replaces -edges mode)")
	n := flag.Uint64("n", 1<<12, "generated jobs: vertices")
	m := flag.Uint64("m", 1<<15, "generated jobs: edges (families that take m)")
	deadline := flag.Duration("deadline", 0, "per-job deadline (0 = server default)")
	pes := flag.Int("pes", 0, "pin jobs to machines of this PE count (0 = any)")
	noBatch := flag.Bool("no-batch", false, "opt every job out of batching")
	verify := flag.Bool("verify", true, "cross-check edge-list results against sequential Kruskal")
	seed := flag.Uint64("seed", 42, "load and instance seed")
	duration := flag.Duration("duration", 0, "cap the run (0 = until all jobs resolve)")
	jsonOut := flag.String("json", "", "write a kamsta-bench/v1 exhibit to this path (- = stdout)")
	chaosFault := flag.Float64("chaos-fault", 0, "fraction of jobs that panic on one PE mid-run (in-process targets only)")
	chaosStall := flag.Float64("chaos-stall", 0, "fraction of jobs that stall one PE past the watchdog (in-process targets only)")
	chaosStorm := flag.Float64("chaos-storm", 0, "fraction of jobs arriving with a hopeless deadline")
	retryAttempts := flag.Int("retry-attempts", 1, "in-process server: dispatch attempts per fault-killed job (<=1 disables retries)")
	quarantineAfter := flag.Int("quarantine-after", 0, "in-process server: consecutive faults that quarantine a machine (0 disables)")
	obsFlags := cliobs.Register()
	flag.Parse()

	tcs, err := serve.ParseTenants(*tenants)
	if err != nil {
		fail("%v", err)
	}
	if len(tcs) == 0 {
		fail("no tenants")
	}
	if err := obsFlags.Activate(); err != nil {
		fail("%v", err)
	}

	tmpl := loadgen.Template{
		Algorithm: kamsta.Algorithm(*alg),
		Deadline:  *deadline,
		PEs:       *pes,
		NoBatch:   *noBatch,
	}
	if *family != "" {
		fam, err := gen.ParseFamily(*family)
		if err != nil {
			fail("%v", err)
		}
		tmpl.Spec = &kamsta.GraphSpec{Family: fam, N: *n, M: *m, Seed: *seed}
	} else {
		tmpl.EdgeCount = *edges
		tmpl.Vertices = *vertices
		tmpl.Verify = *verify
	}
	if *chaosFault > 0 || *chaosStall > 0 || *chaosStorm > 0 {
		if *target != "" && (*chaosFault > 0 || *chaosStall > 0) {
			fail("-chaos-fault/-chaos-stall need an in-process server (fault plans do not travel over HTTP)")
		}
		tmpl.Chaos = &loadgen.ChaosSpec{
			FaultFraction: *chaosFault,
			StallFraction: *chaosStall,
			StormFraction: *chaosStorm,
		}
	}

	plan := loadgen.Plan{Seed: *seed, Duration: *duration}
	for _, tc := range tcs {
		tl := loadgen.TenantLoad{Name: tc.Name, Jobs: *jobs, Template: tmpl}
		if *rate > 0 {
			tl.RateHz = *rate
		} else {
			tl.Workers = *workers
		}
		plan.Tenants = append(plan.Tenants, tl)
	}

	var tgt loadgen.Target
	var srvStats func() (serve.Stats, bool)
	var scale bench.Scale
	scale.Seed = *seed
	if *target != "" {
		c := &serve.Client{BaseURL: *target}
		if !c.Healthy(context.Background()) {
			fail("target %s is not healthy", *target)
		}
		srvStats = func() (serve.Stats, bool) {
			st, err := c.Stats(context.Background())
			return st, err == nil
		}
		tgt = loadgen.Remote(c)
	} else {
		shapes, err := serve.ParsePool(*pool)
		if err != nil {
			fail("%v", err)
		}
		for _, sh := range shapes {
			scale.Ps = append(scale.Ps, sh.PEs)
		}
		srv, err := serve.New(serve.Config{
			Pool:             shapes,
			Tenants:          tcs,
			QueueBound:       *queue,
			TenantQueueBound: *tenantQueue,
			Batch:            serve.BatchConfig{MaxJobs: *batchJobs, MaxEdges: *batchEdges},
			QuarantineAfter:  *quarantineAfter,
			Retry:            serve.RetryConfig{MaxAttempts: *retryAttempts},
			Metrics:          obsFlags.Registry,
			Trace:            obsFlags.Trace,
		})
		if err != nil {
			fail("%v", err)
		}
		defer srv.Close()
		srvStats = func() (serve.Stats, bool) { return srv.Stats(), true }
		tgt = loadgen.Local(srv)
	}

	res, err := loadgen.Run(context.Background(), tgt, plan)
	if err != nil {
		fail("%v", err)
	}
	// Snapshot the server before drain/close so the exhibit records the
	// run's retry and quarantine counters.
	if st, ok := srvStats(); ok {
		res.Server = &st
	}
	printSummary(res)

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := loadgen.WriteExhibit(w, res, plan, scale, time.Now().Format("2006-01-02")); err != nil {
			fail("write exhibit: %v", err)
		}
	}
	if err := obsFlags.Flush(); err != nil {
		fail("%v", err)
	}
	if err := res.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "mstload: VERIFY FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mstload: exactly-once verified")
}

func printSummary(res *loadgen.Result) {
	elapsed := res.Elapsed.Seconds()
	var jobs int
	for _, tr := range res.Tenants {
		jobs += tr.Completed()
		outcomes := make([]string, 0, len(tr.Outcomes))
		for k, v := range tr.Outcomes {
			outcomes = append(outcomes, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(outcomes)
		fmt.Printf("%-12s attempted=%d admitted=%d shed=%d %v p50=%.1fms p95=%.1fms p99=%.1fms\n",
			tr.Name, tr.Attempted, tr.Submitted, tr.Shed, outcomes,
			tr.Percentile(50)*1e3, tr.Percentile(95)*1e3, tr.Percentile(99)*1e3)
	}
	fmt.Printf("total: %d jobs in %.2fs = %.1f jobs/s\n", jobs, elapsed, float64(jobs)/elapsed)
	if res.Server != nil {
		var retried int64
		for _, ts := range res.Server.Tenants {
			retried += ts.Retried
		}
		if retried > 0 || res.Server.Quarantined > 0 {
			fmt.Printf("server: retried=%d quarantined=%d\n", retried, res.Server.Quarantined)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mstload: "+format+"\n", args...)
	os.Exit(2)
}
