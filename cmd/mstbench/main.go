// Command mstbench regenerates the paper's tables and figures on the
// simulated machine. Each experiment prints the rows/series of the
// corresponding figure; EXPERIMENTS.md records the comparison with the
// paper's reported shapes.
//
// Usage:
//
//	mstbench -experiment fig3 -ps 4,8,16,32,64 -vppe 512 -eppe 8192
//	mstbench -experiment all
//	mstbench -input g.kg -ps 4,8,16                  # benchmark a graph file
//	mstbench -input g.kg -alg boruvka,filterBoruvka  # selected algorithms only
//
// Observability: -metrics - dumps the substrate and job metrics on exit,
// -trace trace.json records a Chrome-loadable span trace, -json out.json
// emits machine-readable benchmark rows (the BENCH_<date>.json schema),
// and -pprof addr serves live profiles and /metrics over HTTP:
//
//	mstbench -metrics - -trace trace.json -input g.kg -ps 8
//	mstbench -experiment fig6 -json BENCH_$(date +%F).json
//
// Distributed runs: -transport tcp leads a world whose remote ranks live in
// mstworker processes, and -golden verifies the pinned reference bits on
// whatever transport is selected (the multi-process smoke check):
//
//	mstworker -listen 127.0.0.1:9021 &
//	mstbench -golden -transport tcp -workers 127.0.0.1:9021
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kamsta"
	"kamsta/internal/bench"
	"kamsta/internal/cliobs"
)

func main() {
	def := bench.DefaultScale()
	experiment := flag.String("experiment", "all",
		"experiment to run: "+strings.Join(bench.ExperimentNames(), ", ")+", or all")
	ps := flag.String("ps", join(def.Ps), "comma-separated PE counts")
	vppe := flag.Uint64("vppe", def.VPerPE, "weak scaling: vertices per PE")
	eppe := flag.Uint64("eppe", def.EPerPE, "weak scaling: undirected edges per PE")
	dense := flag.Uint64("dense-eppe", def.DenseEPerPE, "Fig. 4: denser edges per PE")
	rwScale := flag.Uint64("rw-scale", def.RealWorldScale, "real-world stand-in downscale divisor")
	seed := flag.Uint64("seed", def.Seed, "instance seed")
	reps := flag.Int("reps", def.Reps, "repetitions per measurement (min modeled time kept)")
	cap := flag.Int("basecap", 0, "base-case vertex threshold (0 = VPerPE/4)")
	input := flag.String("input", "", "benchmark a graph file instead of a generated experiment")
	informat := flag.String("format", "auto", "input format: kamsta, edgelist, gr, metis, auto")
	algNames := flag.String("alg", "", "comma-separated algorithms for -input runs, from: "+
		kamsta.AlgorithmNames()+" (default: all distributed algorithms)")
	jsonOut := flag.String("json", "", "write machine-readable benchmark rows to this file (- for stdout)")
	timeout := flag.Duration("timeout", 0,
		"per-job deadline: each measurement runs under context.WithTimeout (0 = none)")
	golden := flag.Bool("golden", false,
		"run the pinned golden cases instead of an experiment and verify their modeled bits (the multi-process smoke check)")
	obsFlags := cliobs.Register()
	tpFlags := cliobs.RegisterTransport()
	flag.Parse()

	algs, err := parseAlgs(*algNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstbench: bad -alg: %v\n", err)
		os.Exit(2)
	}
	if err := obsFlags.Activate(); err != nil {
		fmt.Fprintf(os.Stderr, "mstbench: %v\n", err)
		os.Exit(2)
	}

	scale := bench.Scale{
		VPerPE:         *vppe,
		EPerPE:         *eppe,
		DenseEPerPE:    *dense,
		RealWorldScale: *rwScale,
		Seed:           *seed,
		Reps:           *reps,
		BaseCaseCap:    *cap,
		Timeout:        *timeout,
		Transport:      tpFlags.Transport,
		Workers:        tpFlags.Workers(),
		Metrics:        obsFlags.Registry,
		Trace:          obsFlags.Trace,
	}
	if *jsonOut != "" {
		scale.Rec = &bench.Recorder{}
	}
	scale.Ps, err = parseInts(*ps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mstbench: bad -ps: %v\n", err)
		os.Exit(2)
	}
	// flush writes the -json/-metrics/-trace outputs; every exit path that
	// has measured something calls it.
	flush := func() {
		if scale.Rec != nil {
			err := writeOut(*jsonOut, func(w *os.File) error {
				return scale.Rec.WriteJSON(w, scale, time.Now().Format("2006-01-02"))
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mstbench: -json: %v\n", err)
				os.Exit(1)
			}
		}
		if err := obsFlags.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "mstbench: %v\n", err)
			os.Exit(1)
		}
	}

	// SIGINT cancels ctx: the in-flight job unwinds at its next collective
	// boundary, the sweep stops, and the command exits with a one-line
	// message instead of a panic trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *golden {
		if err := bench.RunGolden(ctx, os.Stdout, scale); err != nil {
			fail(err)
		}
		flush()
		return
	}
	if *input != "" {
		if err := bench.RunFile(ctx, os.Stdout, *input, *informat, algs, scale); err != nil {
			fail(err)
		}
		flush()
		return
	}
	if *experiment == "all" {
		for _, name := range bench.ExperimentNames() {
			if err := bench.RunExperiment(ctx, name, os.Stdout, scale); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		flush()
		return
	}
	if _, ok := bench.Experiments()[*experiment]; !ok {
		fmt.Fprintf(os.Stderr, "mstbench: unknown experiment %q (have %s)\n",
			*experiment, strings.Join(bench.ExperimentNames(), ", "))
		os.Exit(2)
	}
	if err := bench.RunExperiment(ctx, *experiment, os.Stdout, scale); err != nil {
		fail(err)
	}
	flush()
}

// writeOut opens path for writing ("-" = stdout), runs emit, and closes.
func writeOut(path string, emit func(*os.File) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// fail prints one line and exits non-zero; an interrupt gets its own
// message so ^C doesn't read like a harness failure.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mstbench: interrupted")
		os.Exit(130)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "mstbench: job exceeded -timeout")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mstbench: %v\n", err)
	os.Exit(1)
}

// parseAlgs resolves the -alg list before any world is started; unknown
// names error out listing the valid ones. Empty means the runner's default
// set. The sequential reference is rejected: it has no modeled machine, so
// its benchmark row would be all zeros.
func parseAlgs(s string) ([]kamsta.Algorithm, error) {
	out, err := kamsta.ParseAlgorithmList(s)
	if err != nil {
		return nil, err
	}
	for _, a := range out {
		if a == kamsta.AlgKruskal {
			return nil, fmt.Errorf("kruskal is the sequential reference (no modeled machine); pick distributed algorithms")
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func join(xs []int) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
