package kamsta

import (
	"fmt"
	"math"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/graph"
)

// This file holds the SPMD job bodies a Machine runs. Each body is one
// function executed by every PE of the world — and, on a distributed
// machine, by every worker process's PEs too, so the bodies are factored
// here where both Machine.runOnce and ServeWorker's control loop reach
// them. A body must issue the identical collective sequence on every rank
// (the substrate audits tags on rank 0); rank-0-only blocks write into
// fields that simply stay zero on worker processes.

// msfJob is one MSF computation: materialize the source, measure the
// algorithm, leave each rank's MSF share in shares[rank] and the rank-0
// summary in rep.
type msfJob struct {
	src    Source
	rs     runSettings
	w      *comm.World
	rep    *Report
	shares [][]graph.Edge
	algErr error // set on rank 0 only; PEs leave together on input errors
}

func (j *msfJob) run(c *comm.Comm) {
	w, rs, rep := j.w, j.rs, j.rep
	edges, layout, inErr := j.src.provide(c, rs)
	if inErr != nil {
		// provide returns the same error on every PE, so all PEs
		// leave the SPMD program here together.
		if c.Rank() == 0 {
			j.algErr = inErr
		}
		return
	}
	// The input cost is the clock maximum now, before the nv/ne stats
	// collectives below add their own charges.
	iclk := comm.Allreduce(c, c.Clock(), math.Max)
	nv := graph.GlobalVertexCount(c, layout, edges)
	ne := comm.Allreduce(c, len(edges), func(a, b int) int { return a + b })
	// Measure the algorithm, not the generation.
	comm.Barrier(c)
	c.ResetLocalMetrics()
	if c.Rank() == 0 {
		w.ResetMetrics()
	}
	comm.Barrier(c)
	switch rs.alg {
	case AlgBoruvka:
		r := core.Boruvka(c, edges, layout, rs.core)
		j.shares[c.Rank()] = r.MSTEdges
		if c.Rank() == 0 {
			rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
			rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
		}
	case AlgFilterBoruvka:
		r := core.FilterBoruvka(c, edges, layout, rs.core)
		j.shares[c.Rank()] = r.MSTEdges
		if c.Rank() == 0 {
			rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
			rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
		}
	case AlgMNDMST:
		r := baselines.MNDMST(c, edges, layout, rs.baseline)
		j.shares[c.Rank()] = r.MSTEdges
		if c.Rank() == 0 {
			rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
			rep.Rounds = r.Rounds
		}
	case AlgSparseMatrix:
		r := baselines.SparseMatrix(c, edges, layout, rs.baseline)
		j.shares[c.Rank()] = r.MSTEdges
		if c.Rank() == 0 {
			rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
			rep.Rounds = r.Rounds
		}
	default:
		if c.Rank() == 0 {
			j.algErr = fmt.Errorf("kamsta: unknown algorithm %q", rs.alg)
		}
	}
	if c.Rank() == 0 {
		rep.InputVertices, rep.InputEdges = nv, ne
		rep.InputModeledSeconds = iclk
	}
}

// collectJob materializes a source and gathers the canonical (U < V)
// undirected edges to rank 0, for the sequential reference path.
type collectJob struct {
	src       Source
	rs        runSettings
	collected []InputEdge // rank 0 only
	inputErr  error       // rank 0 only
}

func (j *collectJob) run(c *comm.Comm) {
	edges, _, err := j.src.provide(c, j.rs)
	if err != nil {
		if c.Rank() == 0 {
			j.inputErr = err
		}
		return
	}
	all := comm.AllgatherConcat(c, edges)
	if c.Rank() == 0 {
		for _, e := range all {
			if e.U < e.V {
				j.collected = append(j.collected, InputEdge{U: e.U, V: e.V, W: e.W})
			}
		}
	}
}

// probeJob is the post-fault health probe: every PE contributes 1 to an
// Allreduce, exercising the full superstep path on whatever state the
// aborted job left behind. Rank 0 records the sum for its owner to check.
type probeJob struct {
	got int // rank 0 only
}

func (j *probeJob) run(c *comm.Comm) {
	n := comm.Allreduce(c, 1, func(a, b int) int { return a + b })
	if c.Rank() == 0 {
		j.got = n
	}
}
