package kamsta

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/graphio"
)

// writeSpec materializes a spec and writes it to a file in the given format.
func writeSpec(t *testing.T, spec GraphSpec, path string, f graphio.Format) {
	t.Helper()
	chunks := make([][]graph.Edge, 4)
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		edges, _ := gen.Build(c, spec, dsort.Options{})
		chunks[c.Rank()] = edges
	})
	var all []graph.Edge
	for _, ch := range chunks {
		all = append(all, ch...)
	}
	if err := graphio.WriteFile(path, f, all); err != nil {
		t.Fatal(err)
	}
}

// TestComputeMSFFileMatchesSpec pins the generate/load unification: the
// same instance through FromSpec and through a written file produces the
// same forest, and the Kruskal reference agrees on the file path too.
func TestComputeMSFFileMatchesSpec(t *testing.T) {
	spec := GraphSpec{Family: RGG2D, N: 300, M: 1500, Seed: 13}
	path := filepath.Join(t.TempDir(), "g.kg")
	writeSpec(t, spec, path, graphio.FormatKamsta)

	cfg := Config{PEs: 4, Algorithm: AlgFilterBoruvka}
	fromSpec, err := ComputeMSFSpec(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := ComputeMSFFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromSpec.TotalWeight != fromFile.TotalWeight || fromSpec.NumEdges != fromFile.NumEdges {
		t.Fatalf("spec (%d,%d) vs file (%d,%d)",
			fromSpec.TotalWeight, fromSpec.NumEdges, fromFile.TotalWeight, fromFile.NumEdges)
	}
	if !reflect.DeepEqual(fromSpec.MSTEdges, fromFile.MSTEdges) {
		t.Fatal("forest edges differ between generated and file-backed runs")
	}
	if fromFile.InputVertices != fromSpec.InputVertices || fromFile.InputEdges != fromSpec.InputEdges {
		t.Fatalf("instance shape differs: file (%d,%d) vs spec (%d,%d)",
			fromFile.InputVertices, fromFile.InputEdges, fromSpec.InputVertices, fromSpec.InputEdges)
	}
	if fromFile.InputModeledSeconds <= 0 {
		t.Fatal("file-backed run reports no input time")
	}
	kruskal, err := ComputeMSFFile(path, Config{PEs: 2, Algorithm: AlgKruskal})
	if err != nil {
		t.Fatal(err)
	}
	if kruskal.TotalWeight != fromFile.TotalWeight || kruskal.NumEdges != fromFile.NumEdges {
		t.Fatalf("Kruskal on file disagrees: (%d,%d) vs (%d,%d)",
			kruskal.TotalWeight, kruskal.NumEdges, fromFile.TotalWeight, fromFile.NumEdges)
	}
}

// TestComputeMSFSourceUniform runs every source kind through the one entry
// point on the same tiny graph.
func TestComputeMSFSourceUniform(t *testing.T) {
	edges := []InputEdge{{U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 1}, {U: 1, V: 3, W: 7}}
	path := filepath.Join(t.TempDir(), "tiny.el")
	if err := os.WriteFile(path, []byte("1 2 4\n2 3 1\n1 3 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, src := range []Source{FromEdges(edges), FromFile(path), FromFileFormat(path, "edgelist")} {
		rep, err := ComputeMSFSource(src, Config{PEs: 3})
		if err != nil {
			t.Fatalf("%s: %v", src.Label(), err)
		}
		if rep.TotalWeight != 5 || rep.NumEdges != 2 {
			t.Fatalf("%s: weight=%d edges=%d want 5/2", src.Label(), rep.TotalWeight, rep.NumEdges)
		}
	}
}

// TestComputeMSFFileErrors pins that file problems surface as errors, not
// hangs or panics, through the public API.
func TestComputeMSFFileErrors(t *testing.T) {
	if _, err := ComputeMSFFile(filepath.Join(t.TempDir(), "missing.kg"), Config{PEs: 3}); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := ComputeMSFSource(FromFileFormat("x.el", "tarball"), Config{}); err == nil {
		t.Fatal("bad format name should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.gr")
	if err := os.WriteFile(bad, []byte("a 1 2 zebra\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeMSFFile(bad, Config{PEs: 2, Algorithm: AlgKruskal}); err == nil {
		t.Fatal("malformed file should error through the Kruskal path too")
	}
}
