package kamsta

import (
	"math"
	"testing"
)

// TestModeledTimeGolden pins the α-β accounting of the communication
// substrate to the bit. The modeled clock is a deterministic function of the
// algorithm's communication structure and the cost model — it must not move
// when the substrate's wall-clock implementation (barriers, boards, staging)
// is reworked. The reference bits were captured on the pre-refactor
// mutex+cond substrate; any drift here means the refactor changed the
// machine model, not just its speed.
func TestModeledTimeGolden(t *testing.T) {
	cases := []struct {
		name        string
		spec        GraphSpec
		cfg         Config
		modeledBits uint64
		weight      uint64
		msfEdges    int
		msgs        int64
		bytes       int64
		collectives int64
	}{
		{
			name:        "gnm-boruvka",
			spec:        GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42},
			cfg:         Config{PEs: 8, Algorithm: AlgBoruvka},
			modeledBits: 0x3f453980b2cb7769, // 0.0006477239999999998 s
			weight:      19837,
			msfEdges:    1023,
			msgs:        312,
			bytes:       1377024,
			collectives: 88,
		},
		{
			name:        "rgg2d-filter",
			spec:        GraphSpec{Family: RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7},
			cfg:         Config{PEs: 8, Algorithm: AlgFilterBoruvka},
			modeledBits: 0x3f68ca7d4d6ed9eb, // 0.003026242000000003 s
			weight:      22137,
			msfEdges:    1023,
			msgs:        2192,
			bytes:       1884808,
			collectives: 472,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ComputeMSFSpec(tc.spec, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := math.Float64bits(rep.ModeledSeconds); got != tc.modeledBits {
				t.Errorf("ModeledSeconds = %v (bits %#x), want bits %#x (%v)",
					rep.ModeledSeconds, got, tc.modeledBits, math.Float64frombits(tc.modeledBits))
			}
			if rep.TotalWeight != tc.weight || rep.NumEdges != tc.msfEdges {
				t.Errorf("MSF weight/edges = %d/%d, want %d/%d",
					rep.TotalWeight, rep.NumEdges, tc.weight, tc.msfEdges)
			}
			if rep.Stats.Messages != tc.msgs || rep.Stats.Bytes != tc.bytes || rep.Stats.Collectives != tc.collectives {
				t.Errorf("Stats = %+v, want msgs=%d bytes=%d collectives=%d",
					rep.Stats, tc.msgs, tc.bytes, tc.collectives)
			}
		})
	}
}
