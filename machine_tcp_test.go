package kamsta

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
)

// startTestWorker serves an in-process worker on a loopback listener and
// returns its address. The worker is torn down (and waited for) when the
// test ends.
func startTestWorker(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeWorker(ctx, lis, WorkerOptions{})
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return lis.Addr().String()
}

// tcpMachine builds a distributed machine over in-process loopback workers.
func tcpMachine(t *testing.T, pes, workers int) *Machine {
	t.Helper()
	addrs := make([]string, workers)
	for i := range addrs {
		addrs[i] = startTestWorker(t)
	}
	m, err := NewMachine(MachineConfig{PEs: pes, Transport: TransportTCP, Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestTCPGoldenBits pins the distributed backend to the same bits as the
// in-process one: the golden modeled clocks, weights and traffic stats of
// TestModeledTimeGolden must hold verbatim when the world spans processes,
// and the MSF edge lists must match edge for edge. The wire may change wall
// time only.
func TestTCPGoldenBits(t *testing.T) {
	cases := []struct {
		name        string
		spec        GraphSpec
		alg         Algorithm
		workers     int
		modeledBits uint64
		weight      uint64
		msgs        int64
		bytes       int64
		collectives int64
	}{
		{
			name: "gnm-boruvka-1worker",
			spec: GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42},
			alg:  AlgBoruvka, workers: 1,
			modeledBits: 0x3f453980b2cb7769,
			weight:      19837, msgs: 312, bytes: 1377024, collectives: 88,
		},
		{
			name: "gnm-boruvka-2workers",
			spec: GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42},
			alg:  AlgBoruvka, workers: 2,
			modeledBits: 0x3f453980b2cb7769,
			weight:      19837, msgs: 312, bytes: 1377024, collectives: 88,
		},
		{
			name: "rgg2d-filter-1worker",
			spec: GraphSpec{Family: RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7},
			alg:  AlgFilterBoruvka, workers: 1,
			modeledBits: 0x3f68ca7d4d6ed9eb,
			weight:      22137, msgs: 2192, bytes: 1884808, collectives: 472,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tcpMachine(t, 8, tc.workers)
			rep, err := m.Compute(context.Background(), FromSpec(tc.spec), WithAlgorithm(tc.alg))
			if err != nil {
				t.Fatal(err)
			}
			if got := math.Float64bits(rep.ModeledSeconds); got != tc.modeledBits {
				t.Errorf("ModeledSeconds = %v (bits %#x), want bits %#x", rep.ModeledSeconds, got, tc.modeledBits)
			}
			if rep.TotalWeight != tc.weight {
				t.Errorf("TotalWeight = %d, want %d", rep.TotalWeight, tc.weight)
			}
			if rep.Stats.Messages != tc.msgs || rep.Stats.Bytes != tc.bytes || rep.Stats.Collectives != tc.collectives {
				t.Errorf("Stats = %+v, want msgs=%d bytes=%d collectives=%d",
					rep.Stats, tc.msgs, tc.bytes, tc.collectives)
			}

			// The MSF must match the in-process backend edge for edge.
			sm, err := NewMachine(MachineConfig{PEs: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer sm.Close()
			srep, err := sm.Compute(context.Background(), FromSpec(tc.spec), WithAlgorithm(tc.alg))
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.MSTEdges) != len(srep.MSTEdges) {
				t.Fatalf("MSF has %d edges over tcp, %d over shm", len(rep.MSTEdges), len(srep.MSTEdges))
			}
			for i := range rep.MSTEdges {
				if rep.MSTEdges[i] != srep.MSTEdges[i] {
					t.Fatalf("MSF edge %d = %+v over tcp, %+v over shm", i, rep.MSTEdges[i], srep.MSTEdges[i])
				}
			}
		})
	}
}

// TestTCPMachineReuse runs several jobs — including the sequential-reference
// path, which dispatches a collect job — on one distributed machine, pinning
// the job-control stream synchronization between jobs.
func TestTCPMachineReuse(t *testing.T) {
	m := tcpMachine(t, 4, 1)
	spec := GraphSpec{Family: GNM, N: 1 << 8, M: 1 << 10, Seed: 3}
	var weights []uint64
	for i := 0; i < 3; i++ {
		rep, err := m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgBoruvka))
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		weights = append(weights, rep.TotalWeight)
	}
	if weights[0] != weights[1] || weights[1] != weights[2] {
		t.Errorf("weights drifted across jobs: %v", weights)
	}
	ref, err := m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgKruskal))
	if err != nil {
		t.Fatalf("kruskal reference: %v", err)
	}
	if ref.TotalWeight != weights[0] {
		t.Errorf("kruskal weight %d != boruvka weight %d", ref.TotalWeight, weights[0])
	}
	if !m.Healthy() {
		t.Error("machine unhealthy after clean jobs")
	}
}

// TestTCPConcurrentWorkers pins that one worker process serves several
// leaders at once: each connection gets its own world.
func TestTCPConcurrentWorkers(t *testing.T) {
	addr := startTestWorker(t)
	spec := GraphSpec{Family: GNM, N: 1 << 8, M: 1 << 10, Seed: 5}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := NewMachine(MachineConfig{PEs: 4, Transport: TransportTCP, Workers: []string{addr}})
			if err != nil {
				errs[i] = err
				return
			}
			defer m.Close()
			_, errs[i] = m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgBoruvka))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("leader %d: %v", i, err)
		}
	}
}

// TestTCPConfigValidation pins the distributed-config error paths.
func TestTCPConfigValidation(t *testing.T) {
	if err := (MachineConfig{Transport: TransportTCP}).Validate(); err == nil {
		t.Error("tcp without workers validated")
	}
	if err := (MachineConfig{Workers: []string{"x:1"}}).Validate(); err == nil {
		t.Error("workers without tcp transport validated")
	}
	if err := (MachineConfig{Transport: "carrier-pigeon"}).Validate(); err == nil {
		t.Error("unknown transport validated")
	}
	if err := (MachineConfig{PEs: 2, Transport: TransportTCP, Workers: []string{"a:1", "b:1", "c:1"}}).Validate(); err == nil {
		t.Error("2 PEs over 4 processes validated")
	}
	// A worker that hangs up during the handshake must fail construction,
	// not hang. (Dial-retry exhaustion on a dead port is covered in the
	// transport package, where the retry knobs are reachable.)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	if _, err := NewMachine(MachineConfig{
		PEs: 4, Transport: TransportTCP, Workers: []string{lis.Addr().String()},
	}); err == nil {
		t.Error("NewMachine handshook a hanging-up worker successfully")
	}
}

// TestTCPWorkerLoss kills the worker's connection mid-job: the job must
// surface a transport-kind *JobError (not hang), the machine must report
// unhealthy and fast-fail subsequent jobs, and a fresh in-process machine
// must be unaffected.
func TestTCPWorkerLoss(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	conns := make(chan net.Conn, 8)
	go func() {
		defer close(done)
		ServeWorker(ctx, &connCaptureListener{Listener: lis, conns: conns}, WorkerOptions{})
	}()
	defer func() { cancel(); <-done }()

	m, err := NewMachine(MachineConfig{PEs: 4, Transport: TransportTCP, Workers: []string{lis.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Warm up: one clean job proves the world, then kill the connection
	// under the next one.
	spec := GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 11}
	if _, err := m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgBoruvka)); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	conn := <-conns
	go conn.Close() // mid-job, from the worker's side
	_, err = m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgFilterBoruvka))
	if err == nil {
		t.Fatal("job survived losing its worker")
	}
	var je *JobError
	if errors.As(err, &je) {
		if je.Kind != FaultTransport {
			t.Errorf("fault kind = %v, want FaultTransport", je.Kind)
		}
	} else if !errors.Is(err, ErrWorldFailed) {
		t.Errorf("err = %v (%T), want *JobError or ErrWorldFailed", err, err)
	}
	if m.Healthy() {
		t.Error("machine healthy after losing its worker")
	}
	if _, err := m.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgBoruvka)); !errors.Is(err, ErrWorldFailed) {
		t.Errorf("next job: err = %v, want ErrWorldFailed", err)
	}

	// The failure is contained to that machine: a fresh in-process one works.
	sm, err := NewMachine(MachineConfig{PEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Compute(context.Background(), FromSpec(spec), WithAlgorithm(AlgBoruvka)); err != nil {
		t.Errorf("fresh shm machine: %v", err)
	}
}

// connCaptureListener hands accepted connections to the test so it can
// sever them mid-job.
type connCaptureListener struct {
	net.Listener
	conns chan net.Conn
}

func (l *connCaptureListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		select {
		case l.conns <- conn:
		default:
		}
	}
	return conn, err
}
