package kamsta

import (
	"fmt"

	"kamsta/internal/comm"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/graphio"
)

// Source is where a computation's input graph comes from. The three
// constructors — FromSpec (generate in-simulation), FromFile (parallel
// ingestion of an on-disk instance) and FromEdges (a user-supplied edge
// list) — all materialize the same distributed input format inside the
// world, so callers pick "generate" or "load" uniformly:
//
//	rep, err := kamsta.ComputeMSFSource(kamsta.FromFile("usa-road.gr"), cfg)
//	rep, err := kamsta.ComputeMSFSource(kamsta.FromSpec(spec), cfg)
type Source interface {
	// Label names the source for reports and error messages.
	Label() string
	// validate runs cheap pre-world checks.
	validate() error
	// provide materializes this PE's share of the §II-B input inside the
	// world. Implementations must return the same error on every PE (or
	// nil everywhere), so the SPMD program stays in lockstep.
	provide(c *comm.Comm, rs runSettings) ([]graph.Edge, *graph.Layout, error)
}

// FromSpec makes a Source that generates one of the paper's graph families
// in-simulation (gen.Build). A zero spec seed is derived from Config.Seed.
func FromSpec(spec GraphSpec) Source { return specSource{spec} }

type specSource struct{ spec gen.Spec }

func (s specSource) Label() string   { return s.spec.Label() }
func (s specSource) validate() error { return nil }

func (s specSource) provide(c *comm.Comm, rs runSettings) ([]graph.Edge, *graph.Layout, error) {
	spec := s.spec
	if spec.Seed == 0 {
		spec.Seed = rs.seed + 1
	}
	edges, layout := gen.Build(c, spec, rs.core.Sort)
	return edges, layout, nil
}

// FromFile makes a Source that ingests a graph file in parallel (every PE
// reads its own byte range; see internal/graphio). The format is detected
// from the extension: .kg (kamsta binary), .gr (9th-DIMACS), .metis/.graph
// (METIS adjacency), anything else a plain "u v [w]" edge list. Unweighted
// inputs get deterministic weights derived from Config.Seed.
func FromFile(path string) Source { return fileSource{path: path} }

// FromFileFormat is FromFile with an explicit format name: "kamsta",
// "edgelist", "gr", "metis" or "auto".
func FromFileFormat(path, format string) Source {
	return fileSource{path: path, format: format}
}

type fileSource struct{ path, format string }

func (f fileSource) Label() string { return f.path }

func (f fileSource) validate() error {
	if f.path == "" {
		return fmt.Errorf("kamsta: empty input path")
	}
	_, err := graphio.ParseFormat(f.format)
	return err
}

func (f fileSource) provide(c *comm.Comm, rs runSettings) ([]graph.Edge, *graph.Layout, error) {
	fm, err := graphio.ParseFormat(f.format)
	if err != nil {
		return nil, nil, err // validate() catches this before the world starts
	}
	return graphio.Load(c, f.path, graphio.Options{
		Format: fm,
		Seed:   rs.seed,
		Sort:   rs.core.Sort,
	})
}

// FromEdges makes a Source from a user-supplied undirected edge list.
// Vertex labels must be in [1, 2^32).
func FromEdges(edges []InputEdge) Source { return edgesSource{edges} }

type edgesSource struct{ edges []InputEdge }

func (s edgesSource) Label() string {
	return fmt.Sprintf("edges(m=%d)", len(s.edges))
}

func (s edgesSource) validate() error {
	for _, e := range s.edges {
		if e.U == 0 || e.V == 0 || e.U >= 1<<32 || e.V >= 1<<32 {
			return fmt.Errorf("kamsta: vertex labels must be in [1, 2^32): edge (%d,%d)", e.U, e.V)
		}
		if e.U == e.V {
			return fmt.Errorf("kamsta: self-loop on vertex %d", e.U)
		}
	}
	return nil
}

func (s edgesSource) provide(c *comm.Comm, rs runSettings) ([]graph.Edge, *graph.Layout, error) {
	// PE 0 feeds the edges in; Finish distributes and sorts them.
	var raw []graph.Edge
	if c.Rank() == 0 {
		raw = make([]graph.Edge, 0, 2*len(s.edges))
		for _, e := range s.edges {
			raw = append(raw, graph.NewEdge(e.U, e.V, e.W), graph.NewEdge(e.V, e.U, e.W))
		}
	}
	edges, layout := gen.Finish(c, raw, rs.core.Sort)
	return edges, layout, nil
}
