// Package kamsta is a Go reproduction of "Engineering Massively Parallel
// MST Algorithms" (Sanders & Schimek, IPDPS 2023): scalable distributed
// minimum-spanning-tree/forest computation with Borůvka and Filter-Borůvka
// over a simulated distributed-memory machine.
//
// The machine is simulated: every processing element (PE) is a goroutine
// with private state, communicating only through MPI-like collectives, and
// an α-β cost model tracks the modeled time the paper's figures plot (see
// internal/comm). Algorithms, graph generators and the published
// competitors are faithful re-implementations; DESIGN.md documents every
// substitution.
//
// Quick start:
//
//	edges := []kamsta.InputEdge{{U: 1, V: 2, W: 4}, {U: 2, V: 3, W: 1}, {U: 1, V: 3, W: 7}}
//	rep, err := kamsta.ComputeMSF(edges, kamsta.Config{PEs: 4})
//	// rep.TotalWeight == 5, rep.MSTEdges lists the forest
//
// or generate one of the paper's graph families in-simulation:
//
//	rep, err := kamsta.ComputeMSFSpec(kamsta.GraphSpec{
//		Family: kamsta.GNM, N: 1 << 14, M: 1 << 17, Seed: 42,
//	}, kamsta.Config{PEs: 16, Threads: 8, Algorithm: kamsta.AlgFilterBoruvka})
//
// or load a graph file, every PE ingesting its own byte range in parallel
// (binary .kg, DIMACS .gr, METIS, or plain edge lists; see Source):
//
//	rep, err := kamsta.ComputeMSFFile("usa-road.gr", kamsta.Config{PEs: 16})
package kamsta

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/seqmst"
)

// Algorithm selects the MST algorithm.
type Algorithm string

// The available algorithms: the paper's two contributions, the two
// published competitors, and a sequential reference.
const (
	// AlgBoruvka is the distributed Borůvka algorithm (Algorithm 1).
	AlgBoruvka Algorithm = "boruvka"
	// AlgFilterBoruvka is the Filter-Borůvka algorithm (Algorithm 2).
	AlgFilterBoruvka Algorithm = "filterBoruvka"
	// AlgMNDMST is the MND-MST competitor baseline.
	AlgMNDMST Algorithm = "mndmst"
	// AlgSparseMatrix is the Awerbuch–Shiloach sparse-matrix competitor
	// baseline.
	AlgSparseMatrix Algorithm = "sparseMatrix"
	// AlgKruskal computes the MSF sequentially (ground truth; ignores PEs).
	AlgKruskal Algorithm = "kruskal"
)

// Algorithms lists all supported algorithm names.
func Algorithms() []Algorithm {
	return []Algorithm{AlgBoruvka, AlgFilterBoruvka, AlgMNDMST, AlgSparseMatrix, AlgKruskal}
}

// GraphSpec describes a generated input instance (re-exported from the
// generator package; see gen.Spec).
type GraphSpec = gen.Spec

// Graph families for GraphSpec.
const (
	Grid2D   = gen.Grid2D
	RGG2D    = gen.RGG2D
	RGG3D    = gen.RGG3D
	RHG      = gen.RHG
	GNM      = gen.GNM
	RMAT     = gen.RMAT
	RoadLike = gen.RoadLike
)

// InputEdge is one undirected weighted edge of a user-supplied graph.
// Vertex labels must be in [1, 2^32).
type InputEdge struct {
	U, V uint64
	W    uint32
}

// Config controls a computation.
type Config struct {
	// PEs is the number of simulated processing elements (default 4).
	PEs int
	// Threads is the number of intra-PE threads, the paper's OpenMP
	// threads per MPI process (default 1).
	Threads int
	// Algorithm selects the MST algorithm (default AlgBoruvka).
	Algorithm Algorithm
	// Core tunes the paper's algorithms; zero values give the defaults.
	Core core.Options
	// Baseline tunes the competitor baselines.
	Baseline baselines.Options
	// Cost overrides the α-β machine model (zero value: defaults).
	Cost comm.CostModel
	// Seed drives generation and sampling when not set in a GraphSpec.
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.PEs <= 0 {
		cfg.PEs = 4
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgBoruvka
	}
	if cfg.Cost == (comm.CostModel{}) {
		cfg.Cost = comm.DefaultCostModel()
	}
	if cfg.Core.Seed == 0 {
		cfg.Core.Seed = cfg.Seed
	}
	cfg.Baseline.Threads = cfg.Threads
	return cfg
}

// Report is the outcome of a computation.
type Report struct {
	// TotalWeight is the MSF weight; NumEdges its edge count.
	TotalWeight uint64
	NumEdges    int
	// MSTEdges lists the forest edges with original endpoints in canonical
	// (U < V) orientation, sorted.
	MSTEdges []InputEdge
	// InputVertices/InputEdges describe the instance (directed edge count).
	InputVertices int
	InputEdges    int
	// InputModeledSeconds is the modeled time spent materializing the
	// input inside the world — generating, or loading a file and
	// establishing the sorted distributed format. It is excluded from
	// ModeledSeconds, which measures only the algorithm.
	InputModeledSeconds float64
	// WallSeconds is real elapsed time of the simulation; ModeledSeconds
	// is the α-β machine model's makespan — the quantity corresponding to
	// the paper's measured running times.
	WallSeconds    float64
	ModeledSeconds float64
	// EdgesPerSecond is the modeled throughput (directed input edges per
	// modeled second), the unit of the paper's weak-scaling figures.
	EdgesPerSecond float64
	// Phases holds per-phase modeled/wall times (Fig. 6 breakdown).
	Phases map[string]comm.PhaseTime
	// Stats aggregates communication traffic over all PEs.
	Stats comm.Stats
	// Rounds and BaseCalls report algorithm structure when available.
	Rounds    int
	BaseCalls int
}

// ComputeMSF computes the minimum spanning forest of a user-supplied
// undirected edge list on a simulated machine.
func ComputeMSF(edges []InputEdge, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromEdges(edges), cfg)
}

// ComputeMSFSpec generates one of the paper's graph families inside the
// simulation and computes its MSF.
func ComputeMSFSpec(spec GraphSpec, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromSpec(spec), cfg)
}

// ComputeMSFFile loads a graph file — every PE ingesting its own byte
// range in parallel — and computes its MSF. The format is detected from
// the extension (see FromFile).
func ComputeMSFFile(path string, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromFile(path), cfg)
}

// ComputeMSFSource computes the MSF of any input source — generated,
// file-backed or user-supplied — on a simulated machine.
func ComputeMSFSource(src Source, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := src.validate(); err != nil {
		return nil, err
	}
	if cfg.Algorithm == AlgKruskal {
		if es, ok := src.(edgesSource); ok {
			return sequentialReport(es.edges) // no world needed
		}
		collected, err := collectCanonical(src, cfg)
		if err != nil {
			return nil, err
		}
		return sequentialReport(collected)
	}
	return run(cfg, src)
}

// collectCanonical materializes a source inside a world and gathers the
// canonical (U < V) undirected edges, for the sequential reference path.
func collectCanonical(src Source, cfg Config) ([]InputEdge, error) {
	var collected []InputEdge
	var inputErr error
	w := comm.NewWorld(cfg.PEs)
	w.Run(func(c *comm.Comm) {
		edges, _, err := src.provide(c, cfg)
		if err != nil {
			if c.Rank() == 0 {
				inputErr = err
			}
			return
		}
		all := comm.AllgatherConcat(c, edges)
		if c.Rank() == 0 {
			for _, e := range all {
				if e.U < e.V {
					collected = append(collected, InputEdge{U: e.U, V: e.V, W: e.W})
				}
			}
		}
	})
	return collected, inputErr
}

// run executes the selected distributed algorithm on a fresh world.
func run(cfg Config, src Source) (*Report, error) {
	w := comm.NewWorld(cfg.PEs, comm.WithThreads(cfg.Threads), comm.WithCost(cfg.Cost))
	rep := &Report{}
	var shares [][]graph.Edge
	var algErr error
	shares = make([][]graph.Edge, cfg.PEs)
	start := time.Now()
	w.Run(func(c *comm.Comm) {
		edges, layout, inErr := src.provide(c, cfg)
		if inErr != nil {
			// provide returns the same error on every PE, so all PEs
			// leave the SPMD program here together.
			if c.Rank() == 0 {
				algErr = inErr
			}
			return
		}
		// The input cost is the clock maximum now, before the nv/ne stats
		// collectives below add their own charges.
		iclk := comm.Allreduce(c, c.Clock(), math.Max)
		nv := graph.GlobalVertexCount(c, layout, edges)
		ne := comm.Allreduce(c, len(edges), func(a, b int) int { return a + b })
		// Measure the algorithm, not the generation.
		comm.Barrier(c)
		c.ResetLocalMetrics()
		if c.Rank() == 0 {
			w.ResetMetrics()
		}
		comm.Barrier(c)
		switch cfg.Algorithm {
		case AlgBoruvka:
			r := core.Boruvka(c, edges, layout, cfg.Core)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
			}
		case AlgFilterBoruvka:
			r := core.FilterBoruvka(c, edges, layout, cfg.Core)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
			}
		case AlgMNDMST:
			r := baselines.MNDMST(c, edges, layout, cfg.Baseline)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds = r.Rounds
			}
		case AlgSparseMatrix:
			r := baselines.SparseMatrix(c, edges, layout, cfg.Baseline)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds = r.Rounds
			}
		default:
			if c.Rank() == 0 {
				algErr = fmt.Errorf("kamsta: unknown algorithm %q", cfg.Algorithm)
			}
		}
		if c.Rank() == 0 {
			rep.InputVertices, rep.InputEdges = nv, ne
			rep.InputModeledSeconds = iclk
		}
	})
	if algErr != nil {
		return nil, algErr
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.ModeledSeconds = w.MaxClock()
	if rep.ModeledSeconds > 0 {
		rep.EdgesPerSecond = float64(rep.InputEdges) / rep.ModeledSeconds
	}
	rep.Phases = w.Phases()
	rep.Stats = w.TotalStats()
	for _, sh := range shares {
		for _, e := range sh {
			u, v := e.OrigPair()
			rep.MSTEdges = append(rep.MSTEdges, InputEdge{U: u, V: v, W: e.W})
		}
	}
	sort.Slice(rep.MSTEdges, func(i, j int) bool {
		a, b := rep.MSTEdges[i], rep.MSTEdges[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	return rep, nil
}

// sequentialReport runs the Kruskal reference.
func sequentialReport(edges []InputEdge) (*Report, error) {
	work := make([]graph.Edge, 0, len(edges))
	maxV := graph.VID(0)
	verts := map[uint64]struct{}{}
	for _, e := range edges {
		work = append(work, graph.NewEdge(e.U, e.V, e.W))
		if e.U > maxV {
			maxV = e.U
		}
		if e.V > maxV {
			maxV = e.V
		}
		verts[e.U] = struct{}{}
		verts[e.V] = struct{}{}
	}
	start := time.Now()
	res := seqmst.Kruskal(int(maxV), work)
	rep := &Report{
		TotalWeight:   res.TotalWeight,
		NumEdges:      len(res.Edges),
		InputVertices: len(verts),
		InputEdges:    2 * len(edges),
		WallSeconds:   time.Since(start).Seconds(),
	}
	for _, e := range res.Edges {
		u, v := e.OrigPair()
		rep.MSTEdges = append(rep.MSTEdges, InputEdge{U: u, V: v, W: e.W})
	}
	sort.Slice(rep.MSTEdges, func(i, j int) bool {
		a, b := rep.MSTEdges[i], rep.MSTEdges[j]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return rep, nil
}
