// Package kamsta is a Go reproduction of "Engineering Massively Parallel
// MST Algorithms" (Sanders & Schimek, IPDPS 2023): scalable distributed
// minimum-spanning-tree/forest computation with Borůvka and Filter-Borůvka
// over a simulated distributed-memory machine.
//
// The machine is simulated: every processing element (PE) is a goroutine
// with private state, communicating only through MPI-like collectives, and
// an α-β cost model tracks the modeled time the paper's figures plot (see
// internal/comm). Algorithms, graph generators and the published
// competitors are faithful re-implementations; DESIGN.md documents every
// substitution.
//
// Quick start — the persistent Machine API. A Machine owns a reusable
// simulated machine whose PE goroutines stay parked between jobs; each
// Compute runs one job, with cancellation, per-job options and a progress
// observer:
//
//	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 16, Threads: 8})
//	defer m.Close()
//	rep, err := m.Compute(ctx, kamsta.FromSpec(kamsta.GraphSpec{
//		Family: kamsta.GNM, N: 1 << 14, M: 1 << 17, Seed: 42,
//	}), kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
//	// rep.TotalWeight, rep.MSTEdges, rep.ModeledSeconds, ...
//
// Sources unify the three input paths — user edges, generated families, and
// files ingested in parallel (every PE reads its own byte range):
//
//	rep, err := m.Compute(ctx, kamsta.FromEdges(edges))
//	rep, err := m.Compute(ctx, kamsta.FromFile("usa-road.gr"))
//
// For one-shot computations the ComputeMSF* helpers wrap a transient
// Machine:
//
//	rep, err := kamsta.ComputeMSF(edges, kamsta.Config{PEs: 4})
package kamsta

import (
	"context"
	"slices"
	"time"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/radix"
	"kamsta/internal/seqmst"
)

// Algorithm selects the MST algorithm.
type Algorithm string

// The available algorithms: the paper's two contributions, the two
// published competitors, and a sequential reference.
const (
	// AlgBoruvka is the distributed Borůvka algorithm (Algorithm 1).
	AlgBoruvka Algorithm = "boruvka"
	// AlgFilterBoruvka is the Filter-Borůvka algorithm (Algorithm 2).
	AlgFilterBoruvka Algorithm = "filterBoruvka"
	// AlgMNDMST is the MND-MST competitor baseline.
	AlgMNDMST Algorithm = "mndmst"
	// AlgSparseMatrix is the Awerbuch–Shiloach sparse-matrix competitor
	// baseline.
	AlgSparseMatrix Algorithm = "sparseMatrix"
	// AlgKruskal computes the MSF sequentially (ground truth; ignores PEs).
	AlgKruskal Algorithm = "kruskal"
)

// Algorithms lists all supported algorithm names.
func Algorithms() []Algorithm {
	return []Algorithm{AlgBoruvka, AlgFilterBoruvka, AlgMNDMST, AlgSparseMatrix, AlgKruskal}
}

// GraphSpec describes a generated input instance (re-exported from the
// generator package; see gen.Spec).
type GraphSpec = gen.Spec

// Graph families for GraphSpec.
const (
	Grid2D   = gen.Grid2D
	RGG2D    = gen.RGG2D
	RGG3D    = gen.RGG3D
	RHG      = gen.RHG
	GNM      = gen.GNM
	RMAT     = gen.RMAT
	RoadLike = gen.RoadLike
)

// InputEdge is one undirected weighted edge of a user-supplied graph.
// Vertex labels must be in [1, 2^32).
type InputEdge struct {
	U, V uint64
	W    uint32
}

// canonicalEdgeLess is the one report ordering every algorithm path uses:
// lexicographic by (U, V, W) on canonical (U < V) edges. Keeping the weight
// tie-break shared guarantees that Reports from different algorithms for
// the same multigraph list identical edge sequences.
func canonicalEdgeLess(a, b InputEdge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.W < b.W
}

// sortMSTEdges puts a Report's forest into the canonical order.
func sortMSTEdges(es []InputEdge) {
	slices.SortFunc(es, radix.CmpOf(canonicalEdgeLess))
}

// Config controls a one-shot computation (the ComputeMSF* helpers). It
// predates the Machine API and bundles machine-scoped settings (PEs,
// Threads, Cost — now MachineConfig) with job-scoped ones (Algorithm, Core,
// Baseline, Seed — now RunOptions). New code should use NewMachine/Compute
// directly; Config remains for one-shot convenience.
type Config struct {
	// PEs is the number of simulated processing elements (default 4).
	PEs int
	// Threads is the number of intra-PE threads, the paper's OpenMP
	// threads per MPI process (default 1).
	Threads int
	// Algorithm selects the MST algorithm (default AlgBoruvka).
	Algorithm Algorithm
	// Core tunes the paper's algorithms; zero values give the defaults.
	Core core.Options
	// Baseline tunes the competitor baselines.
	Baseline baselines.Options
	// Cost overrides the α-β machine model (zero value: defaults).
	Cost comm.CostModel
	// Seed drives generation and sampling when not set in a GraphSpec.
	Seed uint64
}

// MachineConfig splits out a Config's machine-scoped settings — the
// migration path from the one-shot API to a persistent Machine.
func (cfg Config) MachineConfig() MachineConfig {
	return MachineConfig{PEs: cfg.PEs, Threads: cfg.Threads, Cost: cfg.Cost}
}

// RunOptions splits out a Config's job-scoped settings as Compute options.
func (cfg Config) RunOptions() []RunOption {
	return []RunOption{
		WithAlgorithm(cfg.Algorithm),
		WithSeed(cfg.Seed),
		WithCoreOptions(cfg.Core),
		WithBaselineOptions(cfg.Baseline),
	}
}

// Report is the outcome of a computation.
type Report struct {
	// TotalWeight is the MSF weight; NumEdges its edge count.
	TotalWeight uint64
	NumEdges    int
	// MSTEdges lists the forest edges with original endpoints in canonical
	// (U < V) orientation, sorted by (U, V, W).
	MSTEdges []InputEdge
	// InputVertices/InputEdges describe the instance (directed edge count).
	InputVertices int
	InputEdges    int
	// InputModeledSeconds is the modeled time spent materializing the
	// input inside the world — generating, or loading a file and
	// establishing the sorted distributed format. It is excluded from
	// ModeledSeconds, which measures only the algorithm.
	InputModeledSeconds float64
	// WallSeconds is real elapsed time of the simulation; ModeledSeconds
	// is the α-β machine model's makespan — the quantity corresponding to
	// the paper's measured running times.
	WallSeconds    float64
	ModeledSeconds float64
	// EdgesPerSecond is the modeled throughput (directed input edges per
	// modeled second), the unit of the paper's weak-scaling figures.
	EdgesPerSecond float64
	// Phases holds per-phase modeled/wall times (Fig. 6 breakdown) and,
	// per phase, the traffic charged during it (PhaseTime.Stats: messages,
	// bytes and collectives, excluding nested phases, summed over PEs).
	Phases map[string]comm.PhaseTime
	// Stats aggregates communication traffic over all PEs. For AlgKruskal
	// jobs whose input is materialized through the machine (specs, files),
	// it covers the materialization and the gather of edges to rank 0; for
	// AlgKruskal on FromEdges no simulated machine runs at all and Stats is
	// zero — there was genuinely no substrate traffic.
	Stats comm.Stats
	// Rounds and BaseCalls report algorithm structure when available.
	Rounds    int
	BaseCalls int
}

// ComputeMSF computes the minimum spanning forest of a user-supplied
// undirected edge list on a simulated machine.
func ComputeMSF(edges []InputEdge, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromEdges(edges), cfg)
}

// ComputeMSFSpec generates one of the paper's graph families inside the
// simulation and computes its MSF.
func ComputeMSFSpec(spec GraphSpec, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromSpec(spec), cfg)
}

// ComputeMSFFile loads a graph file — every PE ingesting its own byte
// range in parallel — and computes its MSF. The format is detected from
// the extension (see FromFile).
func ComputeMSFFile(path string, cfg Config) (*Report, error) {
	return ComputeMSFSource(FromFile(path), cfg)
}

// ComputeMSFSource computes the MSF of any input source — generated,
// file-backed or user-supplied — on a simulated machine. It is a one-shot
// wrapper over a transient Machine; callers computing repeatedly should
// hold a Machine and Compute on it.
func ComputeMSFSource(src Source, cfg Config) (*Report, error) {
	m, err := NewMachine(cfg.MachineConfig())
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return m.Compute(context.Background(), src, cfg.RunOptions()...)
}

// sequentialReport runs the Kruskal reference.
func sequentialReport(edges []InputEdge) (*Report, error) {
	work := make([]graph.Edge, 0, len(edges))
	maxV := graph.VID(0)
	verts := map[uint64]struct{}{}
	for _, e := range edges {
		work = append(work, graph.NewEdge(e.U, e.V, e.W))
		if e.U > maxV {
			maxV = e.U
		}
		if e.V > maxV {
			maxV = e.V
		}
		verts[e.U] = struct{}{}
		verts[e.V] = struct{}{}
	}
	start := time.Now()
	res := seqmst.Kruskal(int(maxV), work)
	rep := &Report{
		TotalWeight:   res.TotalWeight,
		NumEdges:      len(res.Edges),
		InputVertices: len(verts),
		InputEdges:    2 * len(edges),
		WallSeconds:   time.Since(start).Seconds(),
	}
	for _, e := range res.Edges {
		u, v := e.OrigPair()
		rep.MSTEdges = append(rep.MSTEdges, InputEdge{U: u, V: v, W: e.W})
	}
	sortMSTEdges(rep.MSTEdges)
	return rep, nil
}
