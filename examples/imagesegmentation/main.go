// Image segmentation with MSTs — one of the applications motivating the
// paper (§I cites Wassenberg, Middelmann, Sanders: "An efficient parallel
// algorithm for graph-based image segmentation").
//
// A synthetic grayscale image (smooth regions + noise) becomes a 4-connected
// grid graph whose edge weights are intensity differences. Cutting every
// MST edge heavier than a threshold yields the segmentation: MST-based
// segmentation merges along the smallest gradients first, so regions follow
// the image structure. The example prints the recovered segments as ASCII
// art next to the input.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kamsta"
	"kamsta/internal/unionfind"
)

const (
	width  = 48
	height = 16
	// cutThreshold separates intra-region gradients (noise-scale) from
	// region boundaries.
	cutThreshold = 24
)

// synthImage renders three intensity regions with mild deterministic noise.
func synthImage() [][]int {
	img := make([][]int, height)
	for y := range img {
		img[y] = make([]int, width)
		for x := range img[y] {
			v := 40 // background
			cx, cy := x-12, y-8
			if cx*cx+cy*cy*9 < 81 { // ellipse
				v = 140
			}
			if x > 30 && y > 4 && y < 12 { // bar
				v = 220
			}
			noise := (x*7+y*13)%5 - 2
			img[y][x] = v + noise
		}
	}
	return img
}

func pixelID(x, y int) uint64 { return uint64(y*width+x) + 1 }

func main() {
	img := synthImage()

	// Build the 4-neighborhood grid graph with |Δintensity|+1 weights.
	var edges []kamsta.InputEdge
	absDiff := func(a, b int) uint32 {
		if a < b {
			a, b = b, a
		}
		return uint32(a-b) + 1
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				edges = append(edges, kamsta.InputEdge{
					U: pixelID(x, y), V: pixelID(x+1, y), W: absDiff(img[y][x], img[y][x+1])})
			}
			if y+1 < height {
				edges = append(edges, kamsta.InputEdge{
					U: pixelID(x, y), V: pixelID(x, y+1), W: absDiff(img[y][x], img[y+1][x])})
			}
		}
	}

	// A service would hold this Machine for many images; the deadline
	// shows the cancellation contract — an overrunning job is abandoned
	// cooperatively with ctx.Err() and the machine stays usable.
	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 8, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := m.Compute(ctx, kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
	if err != nil {
		log.Fatal(err)
	}

	// Segment: union along MST edges lighter than the threshold.
	uf := unionfind.New(width*height + 1)
	kept := 0
	for _, e := range rep.MSTEdges {
		if e.W <= cutThreshold {
			uf.Union(int(e.U), int(e.V))
			kept++
		}
	}

	// Label segments for display.
	glyphs := ".#@%*+o="
	labels := map[int]byte{}
	render := make([][]byte, height)
	for y := range render {
		render[y] = make([]byte, width)
		for x := range render[y] {
			root := uf.Find(int(pixelID(x, y)))
			g, ok := labels[root]
			if !ok {
				g = glyphs[len(labels)%len(glyphs)]
				labels[root] = g
			}
			render[y][x] = g
		}
	}

	fmt.Printf("input image (%dx%d), MST weight %d, %d/%d MST edges kept, %d segments\n\n",
		width, height, rep.TotalWeight, kept, rep.NumEdges, len(labels))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			fmt.Print(shade(img[y][x]))
		}
		fmt.Print("   ")
		fmt.Println(string(render[y]))
	}
	if len(labels) < 2 || len(labels) > 12 {
		log.Fatalf("segmentation degenerated into %d segments", len(labels))
	}
}

func shade(v int) string {
	ramp := " .:-=+*#%@"
	i := v * len(ramp) / 256
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	return string(ramp[i])
}
