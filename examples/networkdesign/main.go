// Network design with MSTs — §I's third application family (the paper
// cites MST-based topology control for wireless networks).
//
// Given radio towers on a map with link costs growing superlinearly in
// distance (power ∝ d²), the MST is the minimum-total-power backbone that
// keeps every tower connected. The example compares the MST backbone
// against two naive designs (star around a hub, daisy chain) and verifies
// the MST wins, then reports the modeled cost of computing it at two
// machine widths.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"kamsta"
	"kamsta/internal/rng"
)

func main() {
	// Towers scattered over a 100x100 km region, deterministic.
	const towers = 150
	r := rng.New(7)
	xs := make([]float64, towers)
	ys := make([]float64, towers)
	for i := range xs {
		xs[i] = r.Float64() * 100
		ys[i] = r.Float64() * 100
	}
	cost := func(i, j int) uint32 {
		d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		return uint32(d*d) + 1 // transmit power ∝ distance²
	}

	// Candidate links: complete graph (towers is small).
	var edges []kamsta.InputEdge
	for i := 0; i < towers; i++ {
		for j := i + 1; j < towers; j++ {
			edges = append(edges, kamsta.InputEdge{U: uint64(i + 1), V: uint64(j + 1), W: cost(i, j)})
		}
	}

	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 8, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Compute(context.Background(), kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka)) // dense input: the filter shines
	if err != nil {
		log.Fatal(err)
	}
	if rep.NumEdges != towers-1 {
		log.Fatalf("backbone disconnected: %d edges", rep.NumEdges)
	}

	// Naive design 1: star around the most central tower.
	bestHub, bestStar := -1, uint64(math.MaxUint64)
	for h := 0; h < towers; h++ {
		total := uint64(0)
		for i := 0; i < towers; i++ {
			if i != h {
				total += uint64(cost(h, i))
			}
		}
		if total < bestStar {
			bestHub, bestStar = h, total
		}
	}
	// Naive design 2: daisy chain in x-order.
	order := make([]int, towers)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })
	chain := uint64(0)
	for i := 1; i < towers; i++ {
		chain += uint64(cost(order[i-1], order[i]))
	}

	fmt.Printf("backbone design for %d towers (link cost = distance² in km²):\n", towers)
	fmt.Printf("  MST backbone:         %10d\n", rep.TotalWeight)
	fmt.Printf("  best star (hub %3d):  %10d  (%.1fx MST)\n", bestHub+1, bestStar, float64(bestStar)/float64(rep.TotalWeight))
	fmt.Printf("  x-order daisy chain:  %10d  (%.1fx MST)\n", chain, float64(chain)/float64(rep.TotalWeight))
	if rep.TotalWeight >= bestStar || rep.TotalWeight >= chain {
		log.Fatal("MST backbone should beat both naive designs")
	}

	// The longest single hop in the backbone bounds the radio range needed.
	maxHop := uint32(0)
	for _, e := range rep.MSTEdges {
		if e.W > maxHop {
			maxHop = e.W
		}
	}
	fmt.Printf("  max hop power:        %10d (bottleneck link; minimax-optimal by MST theory)\n", maxHop)

	// Same computation on a wider simulated machine (machine width is a
	// Machine property, so a new width means a new Machine): the modeled
	// time illustrates the scaling the benchmarks measure systematically.
	m32, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer m32.Close()
	wide, err := m32.Compute(context.Background(), kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled time: %.2e s on 8 PEs vs %.2e s on 32 PEs\n", rep.ModeledSeconds, wide.ModeledSeconds)
}
