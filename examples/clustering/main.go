// Single-linkage clustering via MST — another §I application (the paper
// cites affinity clustering and MST-based clustering at scale).
//
// Cutting the k−1 heaviest edges of the MST of a point cloud's proximity
// graph yields exactly the single-linkage clustering with k clusters. The
// example plants three Gaussian blobs, builds a neighborhood graph, runs
// the distributed Filter-Borůvka, and recovers the blobs.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"

	"kamsta"
	"kamsta/internal/rng"
	"kamsta/internal/unionfind"
)

const k = 3 // clusters to recover

type point struct{ x, y float64 }

func main() {
	// Three blobs of 60 points each.
	r := rng.New(2024)
	centers := []point{{0, 0}, {10, 2}, {5, 9}}
	var pts []point
	for _, c := range centers {
		for i := 0; i < 60; i++ {
			pts = append(pts, point{
				x: c.x + gauss(r)*1.2,
				y: c.y + gauss(r)*1.2,
			})
		}
	}

	// Proximity graph: connect each point to its 8 nearest neighbors, plus
	// a backbone through the x-sorted order so the graph is connected even
	// across well-separated blobs. (kNN keeps it sparse, as the MST-based
	// clustering literature does; the backbone's heavy inter-blob links are
	// exactly what single-linkage cuts.)
	var edges []kamsta.InputEdge
	seen := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, kamsta.InputEdge{
			U: uint64(a + 1), V: uint64(b + 1), W: uint32(dist(pts[a], pts[b])*1000) + 1})
	}
	xorder := make([]int, len(pts))
	for i := range xorder {
		xorder[i] = i
	}
	sort.Slice(xorder, func(a, b int) bool { return pts[xorder[a]].x < pts[xorder[b]].x })
	for i := 1; i < len(xorder); i++ {
		addEdge(xorder[i-1], xorder[i])
	}
	for i := range pts {
		type nb struct {
			j int
			d float64
		}
		var nbs []nb
		for j := range pts {
			if i != j {
				nbs = append(nbs, nb{j, dist(pts[i], pts[j])})
			}
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].d < nbs[b].d })
		for _, n := range nbs[:8] {
			addEdge(i, n.j)
		}
	}

	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Compute(context.Background(), kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
	if err != nil {
		log.Fatal(err)
	}
	if rep.NumEdges != len(pts)-1 {
		log.Fatalf("proximity graph not connected: MST has %d edges for %d points", rep.NumEdges, len(pts))
	}

	// Single linkage: drop the k-1 heaviest MST edges.
	mst := append([]kamsta.InputEdge(nil), rep.MSTEdges...)
	sort.Slice(mst, func(i, j int) bool { return mst[i].W < mst[j].W })
	uf := unionfind.New(len(pts) + 1)
	for _, e := range mst[:len(mst)-(k-1)] {
		uf.Union(int(e.U), int(e.V))
	}

	// Report cluster sizes and purity vs the planted blobs.
	clusters := map[int][]int{}
	for i := range pts {
		root := uf.Find(i + 1)
		clusters[root] = append(clusters[root], i)
	}
	fmt.Printf("MST weight %d; cut %d heaviest edges → %d clusters\n", rep.TotalWeight, k-1, len(clusters))
	pure := 0
	for _, members := range clusters {
		count := map[int]int{}
		for _, i := range members {
			count[i/60]++ // planted blob id
		}
		best, bestBlob := 0, -1
		for blob, c := range count {
			if c > best {
				best, bestBlob = c, blob
			}
		}
		pure += best
		fmt.Printf("  cluster of %3d points, %3.0f%% from blob %d\n",
			len(members), 100*float64(best)/float64(len(members)), bestBlob)
	}
	purity := float64(pure) / float64(len(pts))
	fmt.Printf("overall purity: %.1f%%\n", 100*purity)
	if len(clusters) != k || purity < 0.95 {
		log.Fatal("single-linkage clustering failed to recover the planted blobs")
	}
}

func dist(a, b point) float64 {
	return math.Hypot(a.x-b.x, a.y-b.y)
}

// gauss draws a standard normal via Box–Muller.
func gauss(r *rng.RNG) float64 {
	u1, u2 := r.Float64(), r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
