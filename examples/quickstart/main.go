// Quickstart: compute the minimum spanning forest of a small hand-written
// graph on a persistent simulated 4-PE machine, watch the run's progress
// events, print the tree, then cross-check with the sequential reference on
// the same machine.
package main

import (
	"context"
	"fmt"
	"log"

	"kamsta"
)

func main() {
	// A small weighted graph: two clusters joined by one bridge.
	edges := []kamsta.InputEdge{
		{U: 1, V: 2, W: 4}, {U: 1, V: 3, W: 2}, {U: 2, V: 3, W: 5},
		{U: 2, V: 4, W: 10}, {U: 3, V: 4, W: 8},
		{U: 4, V: 5, W: 30}, // the bridge
		{U: 5, V: 6, W: 3}, {U: 5, V: 7, W: 6}, {U: 6, V: 7, W: 1},
		{U: 6, V: 8, W: 9}, {U: 7, V: 8, W: 7},
	}

	// One Machine, many jobs: the PE goroutines park between Computes.
	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 4, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	rounds := 0
	rep, err := m.Compute(context.Background(), kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgBoruvka),
		kamsta.WithObserver(func(ev kamsta.Event) {
			if ev.Kind == kamsta.EventRound {
				rounds++
				fmt.Printf("  [observer] round %d: %d vertices left (modeled t=%.2e s)\n",
					ev.Round, ev.Vertices, ev.Clock)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimum spanning tree (weight %d, %d edges, %d distributed rounds observed):\n",
		rep.TotalWeight, rep.NumEdges, rounds)
	for _, e := range rep.MSTEdges {
		fmt.Printf("  %d -- %d  (w=%d)\n", e.U, e.V, e.W)
	}
	fmt.Printf("simulated machine: %d PEs, modeled time %.2e s, %d bytes moved\n",
		m.PEs(), rep.ModeledSeconds, rep.Stats.Bytes)

	// The sequential reference must agree — same machine, next job.
	seq, err := m.Compute(context.Background(), kamsta.FromEdges(edges),
		kamsta.WithAlgorithm(kamsta.AlgKruskal))
	if err != nil {
		log.Fatal(err)
	}
	if seq.TotalWeight != rep.TotalWeight {
		log.Fatalf("distributed (%d) and sequential (%d) disagree!", rep.TotalWeight, seq.TotalWeight)
	}
	fmt.Println("sequential Kruskal agrees ✓")
}
