// Quickstart: compute the minimum spanning forest of a small hand-written
// graph on a simulated 4-PE machine and print the tree, then cross-check
// with the sequential reference.
package main

import (
	"fmt"
	"log"

	"kamsta"
)

func main() {
	// A small weighted graph: two clusters joined by one bridge.
	edges := []kamsta.InputEdge{
		{U: 1, V: 2, W: 4}, {U: 1, V: 3, W: 2}, {U: 2, V: 3, W: 5},
		{U: 2, V: 4, W: 10}, {U: 3, V: 4, W: 8},
		{U: 4, V: 5, W: 30}, // the bridge
		{U: 5, V: 6, W: 3}, {U: 5, V: 7, W: 6}, {U: 6, V: 7, W: 1},
		{U: 6, V: 8, W: 9}, {U: 7, V: 8, W: 7},
	}

	rep, err := kamsta.ComputeMSF(edges, kamsta.Config{
		PEs:       4,
		Threads:   2,
		Algorithm: kamsta.AlgBoruvka,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimum spanning tree (weight %d, %d edges):\n", rep.TotalWeight, rep.NumEdges)
	for _, e := range rep.MSTEdges {
		fmt.Printf("  %d -- %d  (w=%d)\n", e.U, e.V, e.W)
	}
	fmt.Printf("simulated machine: %d PEs, modeled time %.2e s, %d bytes moved\n",
		4, rep.ModeledSeconds, rep.Stats.Bytes)

	// The sequential reference must agree.
	seq, err := kamsta.ComputeMSF(edges, kamsta.Config{Algorithm: kamsta.AlgKruskal})
	if err != nil {
		log.Fatal(err)
	}
	if seq.TotalWeight != rep.TotalWeight {
		log.Fatalf("distributed (%d) and sequential (%d) disagree!", rep.TotalWeight, seq.TotalWeight)
	}
	fmt.Println("sequential Kruskal agrees ✓")
}
