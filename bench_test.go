// Benchmarks regenerating the paper's tables and figures (§VII), one
// Benchmark function per exhibit, plus ablations for the design choices
// DESIGN.md calls out. Wall time is the simulator's cost; the paper's
// quantity is the modeled α-β time, reported as the custom metric
// "modeled-ms" (and throughput as "medges/s" for the weak-scaling runs).
//
// The full suite runs at laptop scale; cmd/mstbench sweeps the same
// experiments with configurable sizes and prints the figures' data series.
package kamsta_test

import (
	"context"
	"fmt"
	"testing"

	"kamsta"
	"kamsta/internal/alltoall"
	"kamsta/internal/gen"
)

// weakSpec mirrors the paper's weak scaling: per-PE budgets times p.
func weakSpec(f gen.Family, p int) kamsta.GraphSpec {
	const vppe, eppe = 1 << 8, 1 << 12
	return kamsta.GraphSpec{Family: f, N: vppe * uint64(p), M: eppe * uint64(p), Seed: 1}
}

// paperCfg is the paper's default configuration at bench scale.
func paperCfg(alg kamsta.Algorithm, p, threads int) kamsta.Config {
	cfg := kamsta.Config{PEs: p, Threads: threads, Algorithm: alg}
	cfg.Core.LocalPreprocessing = true
	cfg.Core.LocalFilter = true
	cfg.Core.HashDedup = true
	cfg.Core.DedupParallel = true
	cfg.Core.BaseCaseCap = 1 << 6
	return cfg
}

// runSpec executes one configuration per iteration and reports modeled
// time and modeled throughput alongside the wall time.
func runSpec(b *testing.B, spec kamsta.GraphSpec, cfg kamsta.Config) {
	b.Helper()
	var rep *kamsta.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = kamsta.ComputeMSFSpec(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ModeledSeconds*1e3, "modeled-ms")
	if rep.ModeledSeconds > 0 {
		b.ReportMetric(rep.EdgesPerSecond/1e6, "medges/s")
	}
}

// BenchmarkFig2 — one-level vs two-level all-to-all on the component
// contraction of a GNM weak-scaling instance (Fig. 2). The "modeled-ms"
// metric is the series the figure plots; two-level must win as p grows.
func BenchmarkFig2(b *testing.B) {
	for _, p := range []int{16, 64} {
		for _, variant := range []struct {
			name string
			a2a  alltoall.Strategy
		}{{"one-level", alltoall.Direct}, {"two-level", alltoall.Grid}} {
			b.Run(fmt.Sprintf("%s/p=%d", variant.name, p), func(b *testing.B) {
				cfg := paperCfg(kamsta.AlgBoruvka, p, 1)
				cfg.Core.LocalPreprocessing = false // GNM: matches the figure's setup
				cfg.Core.A2A = variant.a2a
				runSpec(b, weakSpec(gen.GNM, p), cfg)
			})
		}
	}
}

// BenchmarkFig3 — weak-scaling throughput for all six families and all
// four algorithms (Fig. 3); the headline comparison of the paper.
func BenchmarkFig3(b *testing.B) {
	families := []gen.Family{gen.Grid2D, gen.RGG2D, gen.RGG3D, gen.GNM, gen.RHG, gen.RMAT}
	algs := []struct {
		name string
		alg  kamsta.Algorithm
	}{
		{"boruvka", kamsta.AlgBoruvka},
		{"filterBoruvka", kamsta.AlgFilterBoruvka},
		{"MND-MST", kamsta.AlgMNDMST},
		{"sparseMatrix", kamsta.AlgSparseMatrix},
	}
	const p = 16
	for _, f := range families {
		for _, a := range algs {
			for _, threads := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/%s-%dt/p=%d", f, a.name, threads, p), func(b *testing.B) {
					runSpec(b, weakSpec(f, p), paperCfg(a.alg, p, threads))
				})
			}
		}
	}
}

// BenchmarkFig4 — the local-preprocessing ablation on high-locality
// families with a denser per-PE edge budget (Fig. 4).
func BenchmarkFig4(b *testing.B) {
	const p = 16
	for _, f := range []gen.Family{gen.Grid2D, gen.RGG2D, gen.RGG3D, gen.RHG} {
		spec := kamsta.GraphSpec{Family: f, N: 1 << 12, M: 1 << 17, Seed: 1}
		b.Run(fmt.Sprintf("%s/preprocess=on", f), func(b *testing.B) {
			runSpec(b, spec, paperCfg(kamsta.AlgBoruvka, p, 8))
		})
		b.Run(fmt.Sprintf("%s/preprocess=off", f), func(b *testing.B) {
			cfg := paperCfg(kamsta.AlgBoruvka, p, 8)
			cfg.Core.LocalPreprocessing = false
			runSpec(b, spec, cfg)
		})
	}
}

// BenchmarkFig5 — strong scaling on the Table I real-world stand-ins
// (Fig. 5): fixed instance, growing machine.
func BenchmarkFig5(b *testing.B) {
	for _, name := range gen.RealWorldNames() {
		spec, err := gen.RealWorldSpec(name, 1<<15, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("%s/boruvka-8t/p=%d", name, p), func(b *testing.B) {
				runSpec(b, spec, paperCfg(kamsta.AlgBoruvka, p, 8))
			})
		}
		// Competitors at one machine width for the comparison rows.
		b.Run(fmt.Sprintf("%s/MND-MST/p=16", name), func(b *testing.B) {
			runSpec(b, spec, paperCfg(kamsta.AlgMNDMST, 16, 1))
		})
		b.Run(fmt.Sprintf("%s/sparseMatrix/p=16", name), func(b *testing.B) {
			runSpec(b, spec, paperCfg(kamsta.AlgSparseMatrix, 16, 1))
		})
	}
}

// BenchmarkFig6 — the phase breakdown instances (Fig. 6): each phase's
// modeled share is reported as its own metric.
func BenchmarkFig6(b *testing.B) {
	const p = 16
	for _, f := range []gen.Family{gen.RGG3D, gen.GNM, gen.RMAT} {
		for _, v := range []struct {
			label   string
			alg     kamsta.Algorithm
			threads int
		}{
			{"b1", kamsta.AlgBoruvka, 1}, {"b8", kamsta.AlgBoruvka, 8},
			{"f1", kamsta.AlgFilterBoruvka, 1}, {"f8", kamsta.AlgFilterBoruvka, 8},
		} {
			b.Run(fmt.Sprintf("%s/%s", f, v.label), func(b *testing.B) {
				spec := weakSpec(f, p)
				cfg := paperCfg(v.alg, p, v.threads)
				var rep *kamsta.Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = kamsta.ComputeMSFSpec(spec, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				total := rep.ModeledSeconds
				b.ReportMetric(total*1e3, "modeled-ms")
				if total > 0 {
					for phase, pt := range rep.Phases {
						b.ReportMetric(pt.Modeled/total, phase+"-frac")
					}
				}
			})
		}
	}
}

// BenchmarkTable1 — building the real-world stand-in instances themselves
// (generation + distribution + layout), the inventory of Table I.
func BenchmarkTable1(b *testing.B) {
	for _, name := range gen.RealWorldNames() {
		spec, err := gen.RealWorldSpec(name, 1<<15, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: 8, Algorithm: kamsta.AlgKruskal})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(rep.InputEdges), "edges")
				}
			}
		})
	}
}

// BenchmarkSharedMemory — §VII-C: the single-node shared-memory baseline
// against the distributed algorithm on the same instance.
func BenchmarkSharedMemory(b *testing.B) {
	spec, err := gen.RealWorldSpec("twitter", 1<<15, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shared-memory-8t", func(b *testing.B) {
		runSpec(b, spec, paperCfg(kamsta.AlgBoruvka, 1, 8))
	})
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("distributed-8t/p=%d", p), func(b *testing.B) {
			runSpec(b, spec, paperCfg(kamsta.AlgBoruvka, p, 8))
		})
	}
}

// BenchmarkAblationDedup — REDISTRIBUTE's optional parallel-edge removal
// (§IV-C says it is optional; DESIGN.md calls out the choice).
func BenchmarkAblationDedup(b *testing.B) {
	spec := weakSpec(gen.GNM, 16)
	for _, dedup := range []bool{true, false} {
		b.Run(fmt.Sprintf("dedup=%v", dedup), func(b *testing.B) {
			cfg := paperCfg(kamsta.AlgBoruvka, 16, 1)
			cfg.Core.DedupParallel = dedup
			runSpec(b, spec, cfg)
		})
	}
}

// BenchmarkAblationLocalFilter — the §VI-B recursive edge filtering inside
// local preprocessing.
func BenchmarkAblationLocalFilter(b *testing.B) {
	spec := kamsta.GraphSpec{Family: gen.RGG2D, N: 1 << 12, M: 1 << 16, Seed: 1}
	for _, filter := range []bool{true, false} {
		b.Run(fmt.Sprintf("localFilter=%v", filter), func(b *testing.B) {
			cfg := paperCfg(kamsta.AlgBoruvka, 8, 4)
			cfg.Core.LocalFilter = filter
			runSpec(b, spec, cfg)
		})
	}
}

// BenchmarkAblationHashDedup — §VI-B's hash-table parallel-edge removal
// versus pure sorting inside preprocessing.
func BenchmarkAblationHashDedup(b *testing.B) {
	spec := kamsta.GraphSpec{Family: gen.Grid2D, N: 1 << 14, Seed: 1}
	for _, hash := range []bool{true, false} {
		b.Run(fmt.Sprintf("hashDedup=%v", hash), func(b *testing.B) {
			cfg := paperCfg(kamsta.AlgBoruvka, 8, 4)
			cfg.Core.HashDedup = hash
			runSpec(b, spec, cfg)
		})
	}
}

// BenchmarkAblationBaseCap — the base-case threshold trade-off (§VI-C).
func BenchmarkAblationBaseCap(b *testing.B) {
	spec := weakSpec(gen.GNM, 16)
	for _, cap := range []int{1, 1 << 6, 1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			cfg := paperCfg(kamsta.AlgBoruvka, 16, 1)
			cfg.Core.BaseCaseCap = cap
			runSpec(b, spec, cfg)
		})
	}
}

// BenchmarkMachineRepeatedSmallInstances — the service workload the Machine
// API exists for: many small jobs back to back. The reused Machine keeps
// its PE goroutines parked between jobs; the one-shot wrapper rebuilds the
// world (spawns p goroutines, reallocates boards and barrier) per call.
// The delta is the per-job setup cost a server no longer pays; it grows
// with the machine width.
func BenchmarkMachineRepeatedSmallInstances(b *testing.B) {
	var edges []kamsta.InputEdge
	for i := uint64(1); i <= 8; i++ {
		edges = append(edges, kamsta.InputEdge{U: i, V: i + 1, W: uint32(i*7%13 + 1)})
	}
	src := kamsta.FromEdges(edges)
	for _, p := range []int{8, 32} {
		b.Run(fmt.Sprintf("reused-machine/p=%d", p), func(b *testing.B) {
			m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: p})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Compute(context.Background(), src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("one-shot/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kamsta.ComputeMSFSource(src, kamsta.Config{PEs: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
