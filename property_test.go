package kamsta_test

import (
	"testing"
	"testing/quick"

	"kamsta"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
	"kamsta/internal/seqmst"
	"kamsta/internal/verify"
)

// randomUserGraph builds an arbitrary connected-ish multigraph from
// quick-check randomness: a spine plus random chords, arbitrary weights
// (including many ties, which the unique weight order must break).
func randomUserGraph(seed uint64, n int, chords int) []kamsta.InputEdge {
	r := rng.New(seed)
	var edges []kamsta.InputEdge
	for i := 2; i <= n; i++ {
		u := uint64(r.Intn(i-1) + 1)
		edges = append(edges, kamsta.InputEdge{U: u, V: uint64(i), W: uint32(r.Intn(7) + 1)})
	}
	for k := 0; k < chords; k++ {
		u := uint64(r.Intn(n) + 1)
		v := uint64(r.Intn(n) + 1)
		if u == v {
			continue
		}
		edges = append(edges, kamsta.InputEdge{U: u, V: v, W: uint32(r.Intn(7) + 1)})
	}
	return edges
}

// TestPropertyDistributedMatchesSequential drives the full distributed
// pipeline with arbitrary small graphs and checks weight and edge count
// against Kruskal plus the independent verifier. Weights are drawn from a
// tiny range on purpose: tie-breaking bugs only show up under heavy ties.
func TestPropertyDistributedMatchesSequential(t *testing.T) {
	f := func(seedRaw uint16, pRaw, algRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		p := int(pRaw)%7 + 1
		algs := []kamsta.Algorithm{kamsta.AlgBoruvka, kamsta.AlgFilterBoruvka, kamsta.AlgMNDMST, kamsta.AlgSparseMatrix}
		alg := algs[int(algRaw)%len(algs)]
		edges := randomUserGraph(seed, 40, 80)

		want, err := kamsta.ComputeMSF(edges, kamsta.Config{Algorithm: kamsta.AlgKruskal})
		if err != nil {
			t.Logf("oracle error: %v", err)
			return false
		}
		got, err := kamsta.ComputeMSF(edges, kamsta.Config{PEs: p, Algorithm: alg})
		if err != nil {
			t.Logf("%s error: %v", alg, err)
			return false
		}
		if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
			t.Logf("seed=%d p=%d alg=%s: got (%d,%d) want (%d,%d)",
				seed, p, alg, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
			return false
		}
		// Independent verification of the distributed result. Parallel
		// input edges between the same pair collapse to the lightest in
		// the distributed pipeline; verify against the collapsed input.
		seenPair := map[uint64]graph.Edge{}
		for _, e := range edges {
			ge := graph.NewEdge(e.U, e.V, e.W)
			if prev, ok := seenPair[ge.TB]; !ok || graph.LessWeight(ge, prev) {
				seenPair[ge.TB] = ge
			}
		}
		input := make([]graph.Edge, 0, len(seenPair))
		for _, ge := range seenPair {
			input = append(input, ge)
		}
		claimed := make([]graph.Edge, 0, len(got.MSTEdges))
		for _, e := range got.MSTEdges {
			claimed = append(claimed, graph.NewEdge(e.U, e.V, e.W))
		}
		if msg := verify.MSF(input, claimed); msg != "" {
			t.Logf("seed=%d p=%d alg=%s: verifier: %s", seed, p, alg, msg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySpecFamiliesAllWorldSizes sweeps arbitrary (family, p, seed)
// combinations from quick-check randomness.
func TestPropertySpecFamiliesAllWorldSizes(t *testing.T) {
	fams := []struct {
		fam interface{ String() string }
		mk  func(seed uint64) kamsta.GraphSpec
	}{
		{kamsta.Grid2D, func(s uint64) kamsta.GraphSpec {
			return kamsta.GraphSpec{Family: kamsta.Grid2D, N: 100, Seed: s}
		}},
		{kamsta.GNM, func(s uint64) kamsta.GraphSpec {
			return kamsta.GraphSpec{Family: kamsta.GNM, N: 90, M: 350, Seed: s}
		}},
		{kamsta.RMAT, func(s uint64) kamsta.GraphSpec {
			return kamsta.GraphSpec{Family: kamsta.RMAT, N: 64, M: 300, Seed: s}
		}},
	}
	f := func(seedRaw uint16, famRaw, pRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		fam := fams[int(famRaw)%len(fams)]
		p := int(pRaw)%6 + 1
		spec := fam.mk(seed)
		want, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: 2, Algorithm: kamsta.AlgKruskal})
		if err != nil {
			return false
		}
		got, err := kamsta.ComputeMSFSpec(spec, kamsta.Config{PEs: p, Algorithm: kamsta.AlgFilterBoruvka})
		if err != nil {
			return false
		}
		return got.TotalWeight == want.TotalWeight && got.NumEdges == want.NumEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMSTWeightMonotoneUnderEdgeAddition: adding an edge never
// increases the MSF weight (a classic invariant), exercised through the
// distributed pipeline.
func TestPropertyMSTWeightMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 1
		edges := randomUserGraph(seed, 30, 25)
		base, err := kamsta.ComputeMSF(edges, kamsta.Config{PEs: 3})
		if err != nil {
			return false
		}
		r := rng.New(seed ^ 0xADD)
		u := uint64(r.Intn(30) + 1)
		v := uint64(r.Intn(30) + 1)
		if u == v {
			return true
		}
		more := append(edges, kamsta.InputEdge{U: u, V: v, W: uint32(r.Intn(7) + 1)})
		bigger, err := kamsta.ComputeMSF(more, kamsta.Config{PEs: 3})
		if err != nil {
			return false
		}
		return bigger.TotalWeight <= base.TotalWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParallelEdgesKeepLightest: duplicating every edge with a
// heavier copy never changes the MSF.
func TestPropertyParallelEdgesKeepLightest(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 1
		edges := randomUserGraph(seed, 25, 20)
		base, err := kamsta.ComputeMSF(edges, kamsta.Config{PEs: 4})
		if err != nil {
			return false
		}
		doubled := append([]kamsta.InputEdge{}, edges...)
		for _, e := range edges {
			doubled = append(doubled, kamsta.InputEdge{U: e.U, V: e.V, W: e.W + 100})
		}
		same, err := kamsta.ComputeMSF(doubled, kamsta.Config{PEs: 4})
		if err != nil {
			return false
		}
		return same.TotalWeight == base.TotalWeight && same.NumEdges == base.NumEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Guard against accidental drift in the oracle helper itself.
func TestRandomUserGraphShape(t *testing.T) {
	edges := randomUserGraph(7, 40, 80)
	if len(edges) < 39 {
		t.Fatalf("spine missing: %d edges", len(edges))
	}
	res := seqmst.Kruskal(40, toGraphEdges(edges))
	if len(res.Edges) != 39 {
		t.Fatalf("spine should make the graph connected: %d MSF edges", len(res.Edges))
	}
}

func toGraphEdges(in []kamsta.InputEdge) []graph.Edge {
	out := make([]graph.Edge, 0, len(in))
	for _, e := range in {
		out = append(out, graph.NewEdge(e.U, e.V, e.W))
	}
	return out
}
