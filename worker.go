package kamsta

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/transport/tcp"
)

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// Metrics, when non-nil, receives the worker's per-link transport
	// counters and its worlds' per-PE substrate series.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per connection lifecycle event
	// (accepted, world geometry, shutdown reason).
	Logf func(format string, args ...any)
}

// ServeWorker turns this process into a distributed machine's worker: it
// accepts leader connections on lis and, per connection, hosts the rank
// block the leader's handshake assigns — building a comm.World over the
// connection's transport and running every dispatched job's SPMD body on
// its local ranks. Several leaders may connect concurrently (a serving
// pool's machines can share one worker process); each connection gets its
// own world.
//
// ServeWorker blocks until ctx is cancelled (then returns nil after
// closing the listener and its connections) or the listener fails.
func ServeWorker(ctx context.Context, lis net.Listener, opts WorkerOptions) error {
	stop := context.AfterFunc(ctx, func() { lis.Close() })
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveWorkerConn(ctx, conn, opts)
		}()
	}
}

// serveWorkerConn drives one leader connection: handshake, build the
// world, then loop job dispatches until the leader hangs up, the context
// ends, or the world breaks.
func serveWorkerConn(ctx context.Context, conn net.Conn, opts WorkerOptions) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, hs, err := tcp.AcceptFollower(conn, opts.Metrics)
	if err != nil {
		conn.Close()
		logf("worker: handshake failed: %v", err)
		return
	}
	// Cancelling ctx mid-job closes the connection: the in-flight
	// superstep surfaces a transport fault, the local ranks unwind by
	// abort verdict, and the loop below exits.
	stop := context.AfterFunc(ctx, func() { f.Close() })
	defer stop()
	defer f.Close()
	logf("worker: hosting ranks [%d,%d) of %d for %s", hs.Lo, hs.Hi, hs.P, conn.RemoteAddr())

	w := comm.NewWorld(hs.P,
		comm.WithTransport(f),
		comm.WithThreads(hs.Threads),
		comm.WithCost(comm.CostModel{Alpha: hs.Alpha, Beta: hs.Beta, Compute: hs.Compute}),
		comm.WithMetrics(opts.Metrics))
	w.Start()
	defer w.Close()

	for {
		specB, err := f.NextJob()
		if err != nil {
			if errors.Is(err, io.EOF) {
				logf("worker: leader %s closed", conn.RemoteAddr())
			} else {
				logf("worker: %v", err)
			}
			return
		}
		spec, err := decodeJobSpec(specB)
		if err != nil {
			logf("worker: %v", err)
			return
		}
		end := runWorkerJob(w, f, hs, spec)
		if err := f.EndJob(encodeJobEnd(end)); err != nil {
			logf("worker: %v", err)
			return
		}
		if w.Broken() || f.Failed() {
			logf("worker: world broken after %s job; closing %s", spec.Kind, conn.RemoteAddr())
			return
		}
	}
}

// runWorkerJob runs one dispatched job's SPMD body on this process's rank
// block and assembles the end-of-job report. Jobs run under
// context.Background(): cancellation is the leader's to decide (it reaches
// the workers through the superstep verdict), and worker shutdown closes
// the connection instead.
func runWorkerJob(w *comm.World, f *tcp.Follower, hs tcp.Handshake, spec wireJobSpec) wireJobEnd {
	stall := time.Duration(spec.StallMs) * time.Millisecond
	f.SetIOTimeout(ioTimeoutFor(stall))
	w.ResetMetrics()
	cfg := comm.JobConfig{StallTimeout: stall}
	fail := func(err error) wireJobEnd {
		return wireJobEnd{Lo: int64(hs.Lo), Hi: int64(hs.Hi), Err: err.Error()}
	}
	var shares [][]graph.Edge
	var jerr error
	switch spec.Kind {
	case jobProbe:
		pj := &probeJob{}
		jerr = w.RunJobCfg(context.Background(), cfg, pj.run)
	case jobCollect:
		src, err := spec.Source.source()
		if err == nil && src == nil {
			err = fmt.Errorf("kamsta: %s job without a source", spec.Kind)
		}
		if err != nil {
			return fail(err)
		}
		cj := &collectJob{src: src, rs: spec.settings()}
		jerr = w.RunJobCfg(context.Background(), cfg, cj.run)
	case jobMSF:
		src, err := spec.Source.source()
		if err == nil && src == nil {
			err = fmt.Errorf("kamsta: %s job without a source", spec.Kind)
		}
		if err != nil {
			return fail(err)
		}
		shares = make([][]graph.Edge, hs.P)
		mj := &msfJob{src: src, rs: spec.settings(), w: w, rep: &Report{}, shares: shares}
		jerr = w.RunJobCfg(context.Background(), cfg, mj.run)
	default:
		return fail(fmt.Errorf("kamsta: unknown job kind %q", spec.Kind))
	}
	return jobEndOf(w, hs.Lo, hs.Hi, jerr, shares)
}

// ioTimeoutFor maps a job's stall budget onto the transport's per-wait
// read/write deadline: twice the budget, so the stall watchdog (which
// diagnoses arrival state properly) wins the race against the blunter
// transport deadline. Zero keeps the transport's default.
func ioTimeoutFor(stall time.Duration) time.Duration {
	if stall > 0 {
		return 2 * stall
	}
	return 0
}
