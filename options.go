package kamsta

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/faultinject"
)

// Event is one progress notification from a running job: phase begin/end
// (the paper's Fig. 6 breakdown) and distributed-round starts, stamped with
// rank 0's modeled clock (re-exported from the machine simulation; see
// comm.Event).
type Event = comm.Event

// EventKind discriminates observer events.
type EventKind = comm.EventKind

// The observer event kinds.
const (
	EventPhaseBegin = comm.EventPhaseBegin
	EventPhaseEnd   = comm.EventPhaseEnd
	EventRound      = comm.EventRound
)

// Observer receives progress events from a running job — the production
// observability hook. It is invoked synchronously on the simulation's PE-0
// goroutine: implementations must be fast, must not block, and must not
// call back into the Machine. Cancelling the job's context from an
// observer is allowed (and is the natural way to abort a run that exceeds
// a round budget).
type Observer = comm.Observer

// runSettings is the resolved per-job configuration: everything about one
// computation that is not a property of the Machine itself.
type runSettings struct {
	alg      Algorithm
	seed     uint64
	core     core.Options
	baseline baselines.Options
	obs      Observer
	trace    *Trace
	stall    time.Duration
	retries  int
	inject   *faultinject.Plan
}

// RunOption configures one Compute call on a Machine. Machine-scoped
// settings (PEs, threads, cost model) live in MachineConfig; everything
// per-job is a RunOption.
type RunOption func(*runSettings)

// WithAlgorithm selects the MST algorithm for this job. The zero value ""
// leaves the default (AlgBoruvka).
func WithAlgorithm(a Algorithm) RunOption {
	return func(rs *runSettings) {
		if a != "" {
			rs.alg = a
		}
	}
}

// WithSeed sets the seed driving generation and sampling for this job (used
// when the GraphSpec or core options don't set their own).
func WithSeed(seed uint64) RunOption {
	return func(rs *runSettings) { rs.seed = seed }
}

// WithCoreOptions tunes the paper's algorithms for this job; zero values
// give the defaults.
func WithCoreOptions(o core.Options) RunOption {
	return func(rs *runSettings) { rs.core = o }
}

// WithBaselineOptions tunes the competitor baselines for this job. The
// thread count is always the Machine's.
func WithBaselineOptions(o baselines.Options) RunOption {
	return func(rs *runSettings) { rs.baseline = o }
}

// WithObserver streams the job's phase and round events to obs. The
// Observer is a live view over the same structured record stream the span
// tracer (WithTrace) persists: both are fed from one tap at phase and round
// boundaries, so they can never disagree.
func WithObserver(obs Observer) RunOption {
	return func(rs *runSettings) { rs.obs = obs }
}

// WithStallTimeout arms a stall watchdog for this job: if no collective
// completes for d, the job aborts with a *JobError reporting which ranks
// reached the stalled superstep's barrier and which did not, and the
// machine rebuilds its world before the next job. Zero (the default)
// disables detection; pick d comfortably above the longest legitimate gap
// between collectives (local compute between supersteps counts toward it).
func WithStallTimeout(d time.Duration) RunOption {
	return func(rs *runSettings) {
		if d > 0 {
			rs.stall = d
		}
	}
}

// WithRetry re-runs a job up to n extra times when it fails with a
// *JobError (contained panic, stall, lost PE) — the retrying-wrapper shape
// production services put around a flaky dependency. Each retry runs on a
// restored machine (clean-verified or rebuilt world) and re-materializes
// the source. Other errors — bad input, ctx cancellation — are never
// retried.
func WithRetry(n int) RunOption {
	return func(rs *runSettings) {
		if n > 0 {
			rs.retries = n
		}
	}
}

// WithFaultInjection arms this job with a deterministic fault-injection
// plan (see internal/faultinject): seeded rules that panic, delay, or fail
// a read at chosen ranks and supersteps. It exists for the chaos test
// suite and for reproducing a containment bug from its seed; the plan type
// is internal on purpose — production code has no business injecting
// faults.
func WithFaultInjection(plan *faultinject.Plan) RunOption {
	return func(rs *runSettings) { rs.inject = plan }
}

// AlgorithmNames returns the supported algorithm names, sorted, as one
// comma-separated string — the single source of truth shared by CLI flag
// help text and ParseAlgorithm's error message.
func AlgorithmNames() string {
	known := make([]string, 0, len(Algorithms()))
	for _, a := range Algorithms() {
		known = append(known, string(a))
	}
	sort.Strings(known)
	return strings.Join(known, ", ")
}

// ParseAlgorithm resolves a case-insensitive algorithm name, with an error
// listing the valid names for unknown input.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if strings.EqualFold(string(a), name) {
			return a, nil
		}
	}
	return "", fmt.Errorf("kamsta: unknown algorithm %q (known: %s)", name, AlgorithmNames())
}

// ParseAlgorithmList resolves a comma-separated list of algorithm names
// via ParseAlgorithm (case-insensitive; empty parts skipped). An empty
// list returns nil — callers substitute their default set.
func ParseAlgorithmList(s string) ([]Algorithm, error) {
	var out []Algorithm
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		a, err := ParseAlgorithm(part)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// DistributedAlgorithms lists the algorithms that run on the simulated
// machine — Algorithms() minus the sequential reference. It is the default
// sweep set of the benchmarking and verification commands.
func DistributedAlgorithms() []Algorithm {
	out := make([]Algorithm, 0, len(Algorithms())-1)
	for _, a := range Algorithms() {
		if a != AlgKruskal {
			out = append(out, a)
		}
	}
	return out
}

// validAlgorithm reports whether a is a supported algorithm name.
func validAlgorithm(a Algorithm) bool {
	for _, k := range Algorithms() {
		if a == k {
			return true
		}
	}
	return false
}
