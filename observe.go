package kamsta

import (
	"context"
	"errors"

	"kamsta/internal/obs"
)

// Metrics is a process-local metrics registry: typed counters, gauges and
// histograms with Prometheus-text (WritePrometheus), JSON (WriteJSON) and
// HTTP (Handler) exporters. Share one registry between any number of
// Machines and worlds — instruments are resolved get-or-create by name and
// labels, so totals stay monotone across world rebuilds.
//
//	reg := kamsta.NewMetrics()
//	m, _ := kamsta.NewMachine(kamsta.MachineConfig{PEs: 8, Metrics: reg})
//	...
//	reg.WritePrometheus(os.Stdout)
//
// Maintaining metrics never perturbs a job's modeled clock or traffic: the
// golden modeled-time bits are identical with metrics on and off.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Trace collects structured spans — job phases, Borůvka rounds, and every
// collective superstep of every PE — from jobs run WithTrace. Export with
// WriteChromeJSON (load in chrome://tracing or ui.perfetto.dev) or
// WriteSummary (a per-phase / per-collective / per-round text table). One
// Trace may span many jobs; all timestamps share its epoch. Spans are
// recorded per PE into world-owned fixed-capacity rings (no hot-path
// allocation) and drained when each PE completes its share gracefully.
type Trace = obs.Trace

// NewTrace returns an empty trace.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace records this job's span stream into tr.
func WithTrace(tr *Trace) RunOption {
	return func(rs *runSettings) { rs.trace = tr }
}

// machineMetrics is the Machine's resolved job-level instrument set (nil
// when the machine was built without MachineConfig.Metrics).
type machineMetrics struct {
	started   *obs.Counter
	completed *obs.Counter
	cancelled *obs.Counter
	faulted   *obs.Counter
	failed    *obs.Counter
	retries   *obs.Counter
	rebuilds  *obs.Counter
	queued    *obs.Gauge
	queueWait *obs.Histogram
	wallHist  *obs.Histogram
	modeled   *obs.FloatCounter
	wall      *obs.FloatCounter
}

func newMachineMetrics(reg *Metrics) *machineMetrics {
	if reg == nil {
		return nil
	}
	return &machineMetrics{
		started: reg.Counter("kamsta_jobs_started_total",
			"Jobs accepted by Machine.Compute (validated and enqueued)."),
		completed: reg.Counter("kamsta_jobs_completed_total",
			"Jobs that returned a Report."),
		cancelled: reg.Counter("kamsta_jobs_cancelled_total",
			"Jobs abandoned because their context expired (queued or running)."),
		faulted: reg.Counter("kamsta_jobs_faulted_total",
			"Jobs that failed with a *JobError (contained panic, stall, lost PE)."),
		failed: reg.Counter("kamsta_jobs_failed_total",
			"Jobs that failed for any other reason (bad input, closed machine)."),
		retries: reg.Counter("kamsta_job_retries_total",
			"Job attempts re-run by WithRetry after a transient fault."),
		rebuilds: reg.Counter("kamsta_world_rebuilds_total",
			"Transparent world rebuilds after faults."),
		queued: reg.Gauge("kamsta_jobs_queued",
			"Compute calls currently waiting for the job slot."),
		queueWait: reg.Histogram("kamsta_job_queue_wait_seconds",
			"Wall seconds jobs waited for the job slot.",
			[]float64{0.001, 0.01, 0.1, 1, 10}),
		wallHist: reg.Histogram("kamsta_job_wall_seconds",
			"Wall seconds of completed jobs.",
			[]float64{0.01, 0.1, 1, 10, 100}),
		modeled: reg.FloatCounter("kamsta_job_modeled_seconds_total",
			"Modeled seconds (α-β makespan) summed over completed jobs."),
		wall: reg.FloatCounter("kamsta_job_wall_seconds_total",
			"Wall seconds summed over completed jobs."),
	}
}

// finish classifies one Compute outcome. Safe on a nil receiver.
func (mm *machineMetrics) finish(rep *Report, err error) {
	if mm == nil {
		return
	}
	switch {
	case err == nil:
		mm.completed.Inc()
		if rep != nil {
			mm.modeled.Add(rep.ModeledSeconds)
			mm.wall.Add(rep.WallSeconds)
			mm.wallHist.Observe(rep.WallSeconds)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		mm.cancelled.Inc()
	default:
		var je *JobError
		if errors.As(err, &je) {
			mm.faulted.Inc()
		} else {
			mm.failed.Inc()
		}
	}
}
