package kamsta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/graph"
)

// MachineConfig describes a simulated machine: the settings that outlive
// any single computation. Everything per-job (algorithm, seed, tuning,
// observer) is a RunOption on Compute.
type MachineConfig struct {
	// PEs is the number of simulated processing elements (default 4).
	PEs int
	// Threads is the number of intra-PE threads, the paper's OpenMP
	// threads per MPI process (default 1).
	Threads int
	// Cost overrides the α-β machine model (zero value: defaults).
	Cost comm.CostModel
	// Metrics, when non-nil, registers this machine's job-level series and
	// its world's per-PE substrate series (see NewMetrics). The same
	// registry may back several machines; series are resolved get-or-create
	// so totals survive transparent world rebuilds. Nil disables metrics
	// entirely — the disabled path stays allocation-free at steady state.
	Metrics *Metrics
}

func (mc MachineConfig) withDefaults() MachineConfig {
	if mc.PEs <= 0 {
		mc.PEs = 4
	}
	if mc.Threads <= 0 {
		mc.Threads = 1
	}
	if mc.Cost == (comm.CostModel{}) {
		mc.Cost = comm.DefaultCostModel()
	}
	return mc
}

// maxPEs bounds the simulated machine width: each PE is a parked goroutine
// plus cache-line-padded per-rank state, so a width beyond any plausible
// simulation is a config bug (a mistyped shift), not a request.
const maxPEs = 1 << 16

// Validate checks a MachineConfig without applying defaults: zero values
// are fine (they mean "default"), negative or absurd ones are errors. It is
// what NewMachine enforces, exposed so services can reject a config before
// paying for a machine.
func (mc MachineConfig) Validate() error {
	if mc.PEs < 0 {
		return fmt.Errorf("kamsta: MachineConfig.PEs is negative (%d)", mc.PEs)
	}
	if mc.PEs > maxPEs {
		return fmt.Errorf("kamsta: MachineConfig.PEs %d exceeds the maximum %d", mc.PEs, maxPEs)
	}
	if mc.Threads < 0 {
		return fmt.Errorf("kamsta: MachineConfig.Threads is negative (%d)", mc.Threads)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Alpha", mc.Cost.Alpha},
		{"Beta", mc.Cost.Beta},
		{"Compute", mc.Cost.Compute},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return fmt.Errorf("kamsta: MachineConfig.Cost.%s is not a finite non-negative number (%v)", p.name, p.v)
		}
	}
	return nil
}

// ErrMachineClosed is returned by Compute on a closed Machine.
var ErrMachineClosed = errors.New("kamsta: machine is closed")

// Machine is a persistent simulated machine: its PE goroutines are spawned
// once and stay parked between jobs, so a service computing many instances
// pays the world setup once instead of per call. A Machine is safe for
// concurrent use — Compute calls from multiple goroutines queue and run one
// at a time (the machine is a single resource, like its MPI counterpart).
//
//	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 16, Threads: 8})
//	if err != nil { ... }
//	defer m.Close()
//	rep, err := m.Compute(ctx, kamsta.FromSpec(spec), kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
//
// A Machine survives job-scoped failures: a PE panic is contained and
// surfaced as a *JobError, a stalled collective (WithStallTimeout) is
// detected and aborted, and a world left unusable by a fault is rebuilt
// transparently before the next job — Healthy reports the current state.
// The one-shot ComputeMSF* helpers remain as wrappers over a transient
// Machine.
type Machine struct {
	cfg   MachineConfig
	world atomic.Pointer[comm.World]

	// rebuilds counts transparent world rebuilds after faults.
	rebuilds atomic.Int64

	// jobs is the job queue: a 1-slot semaphore acquired for the duration
	// of each job, granting waiters in strict arrival (FIFO) order so
	// queue-wait distributions stay meaningful under load. Waiting in
	// Compute is abandoned when the caller's context expires or the
	// machine closes.
	jobs      fifoSem
	closed    chan struct{}
	closeOnce sync.Once

	// mm holds the machine's resolved job-level metric instruments (nil
	// without MachineConfig.Metrics).
	mm *machineMetrics
}

// NewMachine builds a machine and parks its PE goroutines, ready for jobs.
// Close it when done to release them. Invalid configuration (see
// MachineConfig.Validate) is an error, not a panic.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	w := comm.NewWorld(cfg.PEs, comm.WithThreads(cfg.Threads), comm.WithCost(cfg.Cost),
		comm.WithMetrics(cfg.Metrics))
	w.Start()
	m := &Machine{
		cfg:    cfg,
		closed: make(chan struct{}),
		mm:     newMachineMetrics(cfg.Metrics),
	}
	m.world.Store(w)
	return m, nil
}

// PEs reports the machine width.
func (m *Machine) PEs() int { return m.cfg.PEs }

// Threads reports the intra-PE thread count.
func (m *Machine) Threads() int { return m.cfg.Threads }

// Cost reports the machine's α-β cost model.
func (m *Machine) Cost() comm.CostModel { return m.cfg.Cost }

// Healthy reports whether the machine is open and its world intact. Because
// a fault's recovery — clean-world verification or a transparent rebuild —
// completes before Compute returns the *JobError, Healthy is normally true
// even right after a failed job; false means the machine is closed or a
// rebuild is in flight on another goroutine.
func (m *Machine) Healthy() bool {
	select {
	case <-m.closed:
		return false
	default:
	}
	return !m.world.Load().Broken()
}

// Rebuilds reports how many times the machine has transparently rebuilt its
// world after a fault (an observability counter: each rebuild re-pays the
// world setup a persistent machine exists to amortize).
func (m *Machine) Rebuilds() int64 { return m.rebuilds.Load() }

// Close waits for the in-flight job (if any) and releases the machine's PE
// goroutines. Jobs queued or submitted after Close return ErrMachineClosed.
// Close is idempotent and always returns nil (the error return keeps the
// io.Closer shape).
func (m *Machine) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		// Acquire the job slot: from here no new job can start (Compute
		// re-checks closed after acquiring), so the world is quiescent.
		// Close queues FIFO like any caller; waiters ahead of it abandon
		// when they observe the closed channel.
		_ = m.jobs.acquire(context.Background(), nil)
		m.world.Load().Close()
		m.jobs.release()
	})
	return nil
}

// Compute executes one MSF job on the machine: materialize src, run the
// selected algorithm, return the Report. Concurrent calls queue; waiting in
// the queue and the job itself are both abandoned with ctx.Err() when ctx
// expires (cancellation is observed cooperatively at collective boundaries,
// all PEs exit together, and the machine stays usable for the next job).
func (m *Machine) Compute(ctx context.Context, src Source, opts ...RunOption) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rs := runSettings{alg: AlgBoruvka}
	for _, o := range opts {
		if o != nil {
			o(&rs)
		}
	}
	if !validAlgorithm(rs.alg) {
		return nil, fmt.Errorf("kamsta: unknown algorithm %q", rs.alg)
	}
	if src == nil {
		return nil, fmt.Errorf("kamsta: nil input source")
	}
	if err := src.validate(); err != nil {
		return nil, err
	}
	// Resolve the derived per-job defaults exactly as Config.withDefaults
	// used to: the core seed follows the job seed, baselines always run
	// with the machine's threads.
	if rs.core.Seed == 0 {
		rs.core.Seed = rs.seed
	}
	rs.baseline.Threads = m.cfg.Threads

	if m.mm != nil {
		m.mm.started.Inc()
		m.mm.queued.Add(1)
	}
	queuedAt := time.Now()
	acqErr := m.jobs.acquire(ctx, m.closed)
	if m.mm != nil {
		m.mm.queued.Add(-1)
		m.mm.queueWait.Observe(time.Since(queuedAt).Seconds())
	}
	if acqErr != nil {
		m.mm.finish(nil, acqErr)
		return nil, acqErr
	}
	defer m.jobs.release()
	select {
	case <-m.closed:
		m.mm.finish(nil, ErrMachineClosed)
		return nil, ErrMachineClosed
	default:
	}
	rep, err := m.run(ctx, src, rs)
	m.mm.finish(rep, err)
	return rep, err
}

// fifoSem is a 1-slot semaphore whose waiters are granted the slot in
// strict arrival order. The previous implementation — a buffered channel
// raced by every waiter's select — woke waiters in whatever order the
// runtime picked, so under load a job could be overtaken arbitrarily often
// and the queue-wait histogram measured scheduler luck, not queue depth.
// Here release hands the slot directly to the oldest waiter.
type fifoSem struct {
	mu   sync.Mutex
	held bool
	// waiters is the FIFO queue. Each entry is a 1-buffered channel the
	// releaser sends the slot into; waiters only ever exist while held is
	// true (a grant keeps the slot held, release clears held only when the
	// queue is empty).
	waiters []chan struct{}
}

// acquire takes the slot, queueing FIFO behind earlier callers. It returns
// ctx.Err() if ctx expires first, ErrMachineClosed if closed fires first (a
// nil closed channel never fires). A caller that is already cancelled or
// closed never enters the queue.
func (s *fifoSem) acquire(ctx context.Context, closed <-chan struct{}) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case <-closed:
		return ErrMachineClosed
	default:
	}
	s.mu.Lock()
	if !s.held {
		s.held = true
		s.mu.Unlock()
		return nil
	}
	w := make(chan struct{}, 1)
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		s.abandon(w)
		return ctx.Err()
	case <-closed:
		s.abandon(w)
		return ErrMachineClosed
	}
}

// abandon removes w from the queue. If w was already granted (the grant
// raced the abandonment), the slot is passed straight on to the next
// waiter so it is never lost.
func (s *fifoSem) abandon(w chan struct{}) {
	s.mu.Lock()
	for i, q := range s.waiters {
		if q == w {
			copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[len(s.waiters)-1] = nil
			s.waiters = s.waiters[:len(s.waiters)-1]
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	<-w // grant already sent (buffered): take it and hand it on
	s.release()
}

// release hands the slot to the oldest waiter, or frees it when none wait.
func (s *fifoSem) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters[len(s.waiters)-1] = nil
		s.waiters = s.waiters[:len(s.waiters)-1]
		w <- struct{}{} // buffered: never blocks, held stays true
		s.mu.Unlock()
		return
	}
	s.held = false
	s.mu.Unlock()
}

// pending reports the number of queued waiters (tests use it to pin FIFO
// order without sleeping).
func (s *fifoSem) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// run executes one job on the machine's world, containing job-scoped
// failures: a *comm.JobError coming back from the simulation is lifted to
// the public *JobError, the world is restored (verified clean or rebuilt)
// BEFORE returning so the machine is healthy for the next caller, and
// WithRetry re-runs the job for transient faults. The caller holds the job
// slot.
func (m *Machine) run(ctx context.Context, src Source, rs runSettings) (*Report, error) {
	for attempt := 0; ; attempt++ {
		rep, err := m.runOnce(ctx, src, rs)
		var ce *comm.JobError
		if !errors.As(err, &ce) {
			return rep, err
		}
		je := toJobError(ce, m.restoreWorld())
		if attempt >= rs.retries {
			return nil, je
		}
		if m.mm != nil {
			m.mm.retries.Inc()
		}
	}
}

// restoreWorld returns the machine to a runnable state after a contained
// fault and reports whether a rebuild was needed. A world the fault broke
// (poisoned barrier: stall, lost PE) is always rebuilt; a world that
// unwound cooperatively is kept only if a probe job proves it still
// completes collectives correctly — graceful degradation in one step.
func (m *Machine) restoreWorld() (rebuilt bool) {
	w := m.world.Load()
	if !w.Broken() && m.probeWorld(w) {
		return false
	}
	w.Close()
	// The rebuilt world re-resolves the same metric series (get-or-create),
	// so substrate counters keep accumulating across the rebuild.
	nw := comm.NewWorld(m.cfg.PEs, comm.WithThreads(m.cfg.Threads), comm.WithCost(m.cfg.Cost),
		comm.WithMetrics(m.cfg.Metrics))
	nw.Start()
	m.world.Store(nw)
	m.rebuilds.Add(1)
	if m.mm != nil {
		m.mm.rebuilds.Inc()
	}
	return true
}

// probeStallTimeout bounds the post-fault health probe: the probe job is a
// single tiny collective, so a world that cannot finish it in this long is
// not clean.
const probeStallTimeout = 2 * time.Second

// probeWorld verifies a world after a cooperative abort by running one
// trivial SPMD job: every PE contributes 1 to an Allreduce and rank 0
// checks the sum. It exercises the full superstep path — deposits, barrier,
// pre-release combine, verdict — on the state the aborted job left behind.
func (m *Machine) probeWorld(w *comm.World) bool {
	got := -1
	err := w.RunJobCfg(context.Background(), comm.JobConfig{StallTimeout: probeStallTimeout}, func(c *comm.Comm) {
		n := comm.Allreduce(c, 1, func(a, b int) int { return a + b })
		if c.Rank() == 0 {
			got = n
		}
	})
	return err == nil && got == m.cfg.PEs
}

// runOnce executes one attempt of one job on the machine's current world.
func (m *Machine) runOnce(ctx context.Context, src Source, rs runSettings) (*Report, error) {
	if rs.alg == AlgKruskal {
		if es, ok := src.(edgesSource); ok {
			// No world is involved: the edges are already in memory, so the
			// report's Stats and InputModeledSeconds are legitimately zero
			// (no substrate traffic occurred; see Report.Stats).
			return sequentialReport(es.edges)
		}
		collected, stats, iclk, err := m.collectCanonical(ctx, src, rs)
		if err != nil {
			return nil, err
		}
		rep, err := sequentialReport(collected)
		if err != nil {
			return nil, err
		}
		// The substrate DID run for this job — materializing the source and
		// gathering the canonical edges to rank 0 — so report that traffic
		// instead of silently zeroing it (it used to read as "free").
		rep.Stats = stats
		rep.InputModeledSeconds = iclk
		return rep, nil
	}

	w := m.world.Load()
	w.ResetMetrics() // this job's makespan, not the machine's history
	rep := &Report{}
	shares := make([][]graph.Edge, m.cfg.PEs)
	var algErr error
	start := time.Now()
	err := w.RunJobCfg(ctx, m.jobConfig(rs), func(c *comm.Comm) {
		edges, layout, inErr := src.provide(c, rs)
		if inErr != nil {
			// provide returns the same error on every PE, so all PEs
			// leave the SPMD program here together.
			if c.Rank() == 0 {
				algErr = inErr
			}
			return
		}
		// The input cost is the clock maximum now, before the nv/ne stats
		// collectives below add their own charges.
		iclk := comm.Allreduce(c, c.Clock(), math.Max)
		nv := graph.GlobalVertexCount(c, layout, edges)
		ne := comm.Allreduce(c, len(edges), func(a, b int) int { return a + b })
		// Measure the algorithm, not the generation.
		comm.Barrier(c)
		c.ResetLocalMetrics()
		if c.Rank() == 0 {
			w.ResetMetrics()
		}
		comm.Barrier(c)
		switch rs.alg {
		case AlgBoruvka:
			r := core.Boruvka(c, edges, layout, rs.core)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
			}
		case AlgFilterBoruvka:
			r := core.FilterBoruvka(c, edges, layout, rs.core)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds, rep.BaseCalls = r.Rounds, r.BaseCalls
			}
		case AlgMNDMST:
			r := baselines.MNDMST(c, edges, layout, rs.baseline)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds = r.Rounds
			}
		case AlgSparseMatrix:
			r := baselines.SparseMatrix(c, edges, layout, rs.baseline)
			shares[c.Rank()] = r.MSTEdges
			if c.Rank() == 0 {
				rep.TotalWeight, rep.NumEdges = r.TotalWeight, r.NumEdges
				rep.Rounds = r.Rounds
			}
		default:
			if c.Rank() == 0 {
				algErr = fmt.Errorf("kamsta: unknown algorithm %q", rs.alg)
			}
		}
		if c.Rank() == 0 {
			rep.InputVertices, rep.InputEdges = nv, ne
			rep.InputModeledSeconds = iclk
		}
	})
	if err != nil {
		return nil, err
	}
	if algErr != nil {
		return nil, algErr
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.ModeledSeconds = w.MaxClock()
	if rep.ModeledSeconds > 0 {
		rep.EdgesPerSecond = float64(rep.InputEdges) / rep.ModeledSeconds
	}
	rep.Phases = w.Phases()
	rep.Stats = w.TotalStats()
	for _, sh := range shares {
		for _, e := range sh {
			u, v := e.OrigPair()
			rep.MSTEdges = append(rep.MSTEdges, InputEdge{U: u, V: v, W: e.W})
		}
	}
	sortMSTEdges(rep.MSTEdges)
	return rep, nil
}

// jobConfig resolves one job's simulation-level configuration from its run
// settings.
func (m *Machine) jobConfig(rs runSettings) comm.JobConfig {
	return comm.JobConfig{Observer: rs.obs, StallTimeout: rs.stall, Inject: rs.inject, Trace: rs.trace}
}

// collectCanonical materializes a source inside the machine's world and
// gathers the canonical (U < V) undirected edges, for the sequential
// reference path. Alongside the edges it reports the substrate traffic and
// modeled time this collection cost, so the sequential report can carry
// them instead of a silent zero.
func (m *Machine) collectCanonical(ctx context.Context, src Source, rs runSettings) ([]InputEdge, comm.Stats, float64, error) {
	var collected []InputEdge
	var inputErr error
	cfg := m.jobConfig(rs)
	cfg.Observer = nil // no algorithm phases to observe on this path
	w := m.world.Load()
	w.ResetMetrics() // this job's traffic, not the machine's history
	err := w.RunJobCfg(ctx, cfg, func(c *comm.Comm) {
		edges, _, err := src.provide(c, rs)
		if err != nil {
			if c.Rank() == 0 {
				inputErr = err
			}
			return
		}
		all := comm.AllgatherConcat(c, edges)
		if c.Rank() == 0 {
			for _, e := range all {
				if e.U < e.V {
					collected = append(collected, InputEdge{U: e.U, V: e.V, W: e.W})
				}
			}
		}
	})
	if err != nil {
		return nil, comm.Stats{}, 0, err
	}
	return collected, w.TotalStats(), w.MaxClock(), inputErr
}
