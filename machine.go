package kamsta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/transport/tcp"
)

// Transport backends a Machine can run on (MachineConfig.Transport).
const (
	// TransportSHM is the in-process shared-memory substrate: every PE is a
	// goroutine of this process. The default.
	TransportSHM = "shm"
	// TransportTCP spans the world across processes: this process leads
	// ranks [0, k) and each MachineConfig.Workers address hosts a contiguous
	// block of the rest (see cmd/mstworker). Modeled clocks and results are
	// bit-identical to TransportSHM; only wall time changes.
	TransportTCP = "tcp"
)

// MachineConfig describes a simulated machine: the settings that outlive
// any single computation. Everything per-job (algorithm, seed, tuning,
// observer) is a RunOption on Compute.
type MachineConfig struct {
	// PEs is the number of simulated processing elements (default 4).
	PEs int
	// Threads is the number of intra-PE threads, the paper's OpenMP
	// threads per MPI process (default 1).
	Threads int
	// Cost overrides the α-β machine model (zero value: defaults).
	Cost comm.CostModel
	// Metrics, when non-nil, registers this machine's job-level series and
	// its world's per-PE substrate series (see NewMetrics). The same
	// registry may back several machines; series are resolved get-or-create
	// so totals survive transparent world rebuilds. Nil disables metrics
	// entirely — the disabled path stays allocation-free at steady state.
	Metrics *Metrics
	// Transport selects the substrate backend: TransportSHM (default) or
	// TransportTCP.
	Transport string
	// Workers lists worker addresses ("host:port") for TransportTCP; the
	// PEs split into len(Workers)+1 contiguous blocks, the first staying in
	// this process. Must be empty for TransportSHM.
	Workers []string
}

func (mc MachineConfig) withDefaults() MachineConfig {
	if mc.PEs <= 0 {
		mc.PEs = 4
	}
	if mc.Threads <= 0 {
		mc.Threads = 1
	}
	if mc.Cost == (comm.CostModel{}) {
		mc.Cost = comm.DefaultCostModel()
	}
	if mc.Transport == "" {
		mc.Transport = TransportSHM
	}
	return mc
}

// maxPEs bounds the simulated machine width: each PE is a parked goroutine
// plus cache-line-padded per-rank state, so a width beyond any plausible
// simulation is a config bug (a mistyped shift), not a request.
const maxPEs = 1 << 16

// Validate checks a MachineConfig without applying defaults: zero values
// are fine (they mean "default"), negative or absurd ones are errors. It is
// what NewMachine enforces, exposed so services can reject a config before
// paying for a machine.
func (mc MachineConfig) Validate() error {
	if mc.PEs < 0 {
		return fmt.Errorf("kamsta: MachineConfig.PEs is negative (%d)", mc.PEs)
	}
	if mc.PEs > maxPEs {
		return fmt.Errorf("kamsta: MachineConfig.PEs %d exceeds the maximum %d", mc.PEs, maxPEs)
	}
	if mc.Threads < 0 {
		return fmt.Errorf("kamsta: MachineConfig.Threads is negative (%d)", mc.Threads)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Alpha", mc.Cost.Alpha},
		{"Beta", mc.Cost.Beta},
		{"Compute", mc.Cost.Compute},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return fmt.Errorf("kamsta: MachineConfig.Cost.%s is not a finite non-negative number (%v)", p.name, p.v)
		}
	}
	switch mc.Transport {
	case "", TransportSHM:
		if len(mc.Workers) > 0 {
			return fmt.Errorf("kamsta: MachineConfig.Workers set without Transport %q", TransportTCP)
		}
	case TransportTCP:
		if len(mc.Workers) == 0 {
			return fmt.Errorf("kamsta: Transport %q needs at least one worker address", TransportTCP)
		}
		pes := mc.PEs
		if pes == 0 {
			pes = 4
		}
		if pes < len(mc.Workers)+1 {
			return fmt.Errorf("kamsta: %d PEs cannot split over this process plus %d workers", pes, len(mc.Workers))
		}
	default:
		return fmt.Errorf("kamsta: unknown transport %q", mc.Transport)
	}
	return nil
}

// ErrMachineClosed is returned by Compute on a closed Machine.
var ErrMachineClosed = errors.New("kamsta: machine is closed")

// ErrWorldFailed is returned by Compute after a distributed machine's
// transport failed: worker connections do not recover mid-world, so the
// machine is condemned instead of transparently rebuilt. Close it and
// build a new one.
var ErrWorldFailed = errors.New("kamsta: distributed world failed; the machine must be rebuilt")

// Machine is a persistent simulated machine: its PE goroutines are spawned
// once and stay parked between jobs, so a service computing many instances
// pays the world setup once instead of per call. A Machine is safe for
// concurrent use — Compute calls from multiple goroutines queue and run one
// at a time (the machine is a single resource, like its MPI counterpart).
//
//	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 16, Threads: 8})
//	if err != nil { ... }
//	defer m.Close()
//	rep, err := m.Compute(ctx, kamsta.FromSpec(spec), kamsta.WithAlgorithm(kamsta.AlgFilterBoruvka))
//
// A Machine survives job-scoped failures: a PE panic is contained and
// surfaced as a *JobError, a stalled collective (WithStallTimeout) is
// detected and aborted, and a world left unusable by a fault is rebuilt
// transparently before the next job — Healthy reports the current state.
// The one-shot ComputeMSF* helpers remain as wrappers over a transient
// Machine.
type Machine struct {
	cfg   MachineConfig
	world atomic.Pointer[comm.World]

	// rebuilds counts transparent world rebuilds after faults.
	rebuilds atomic.Int64

	// jobs is the job queue: a 1-slot semaphore acquired for the duration
	// of each job, granting waiters in strict arrival (FIFO) order so
	// queue-wait distributions stay meaningful under load. Waiting in
	// Compute is abandoned when the caller's context expires or the
	// machine closes.
	jobs      fifoSem
	closed    chan struct{}
	closeOnce sync.Once

	// lt is the distributed leader transport (nil on TransportSHM). dead
	// marks a condemned distributed machine: remote worker state cannot be
	// transparently re-dialed, so instead of a rebuild, Compute fast-fails
	// with ErrWorldFailed.
	lt   *tcp.Leader
	dead atomic.Bool

	// mm holds the machine's resolved job-level metric instruments (nil
	// without MachineConfig.Metrics).
	mm *machineMetrics
}

// NewMachine builds a machine and parks its PE goroutines, ready for jobs.
// Close it when done to release them. Invalid configuration (see
// MachineConfig.Validate) is an error, not a panic.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg:    cfg,
		closed: make(chan struct{}),
		mm:     newMachineMetrics(cfg.Metrics),
	}
	opts := []comm.Option{comm.WithThreads(cfg.Threads), comm.WithCost(cfg.Cost),
		comm.WithMetrics(cfg.Metrics)}
	if cfg.Transport == TransportTCP {
		// Split the PEs into len(Workers)+1 near-even contiguous blocks;
		// this process keeps the first (rounded up, so it is never smaller
		// than a worker's — rank 0 must stay local).
		nw := len(cfg.Workers)
		lt, err := tcp.NewLeader(tcp.LeaderConfig{
			P:          cfg.PEs,
			LocalRanks: (cfg.PEs + nw) / (nw + 1),
			Workers:    cfg.Workers,
			Threads:    cfg.Threads,
			Alpha:      cfg.Cost.Alpha,
			Beta:       cfg.Cost.Beta,
			Compute:    cfg.Cost.Compute,
			Reg:        cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		m.lt = lt
		opts = append(opts, comm.WithTransport(lt))
	}
	w := comm.NewWorld(cfg.PEs, opts...)
	w.Start()
	m.world.Store(w)
	return m, nil
}

// PEs reports the machine width.
func (m *Machine) PEs() int { return m.cfg.PEs }

// Threads reports the intra-PE thread count.
func (m *Machine) Threads() int { return m.cfg.Threads }

// Cost reports the machine's α-β cost model.
func (m *Machine) Cost() comm.CostModel { return m.cfg.Cost }

// Healthy reports whether the machine is open and its world intact. Because
// a fault's recovery — clean-world verification or a transparent rebuild —
// completes before Compute returns the *JobError, Healthy is normally true
// even right after a failed job; false means the machine is closed or a
// rebuild is in flight on another goroutine.
func (m *Machine) Healthy() bool {
	select {
	case <-m.closed:
		return false
	default:
	}
	if m.dead.Load() {
		return false
	}
	return !m.world.Load().Broken()
}

// Rebuilds reports how many times the machine has transparently rebuilt its
// world after a fault (an observability counter: each rebuild re-pays the
// world setup a persistent machine exists to amortize).
func (m *Machine) Rebuilds() int64 { return m.rebuilds.Load() }

// Close waits for the in-flight job (if any) and releases the machine's PE
// goroutines. Jobs queued or submitted after Close return ErrMachineClosed.
// Close is idempotent and always returns nil (the error return keeps the
// io.Closer shape).
func (m *Machine) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		// Acquire the job slot: from here no new job can start (Compute
		// re-checks closed after acquiring), so the world is quiescent.
		// Close queues FIFO like any caller; waiters ahead of it abandon
		// when they observe the closed channel.
		_ = m.jobs.acquire(context.Background(), nil)
		m.world.Load().Close()
		if m.lt != nil {
			// Workers observe EOF on their idle job wait and tear their
			// worlds down.
			m.lt.Close()
		}
		m.jobs.release()
	})
	return nil
}

// Compute executes one MSF job on the machine: materialize src, run the
// selected algorithm, return the Report. Concurrent calls queue; waiting in
// the queue and the job itself are both abandoned with ctx.Err() when ctx
// expires (cancellation is observed cooperatively at collective boundaries,
// all PEs exit together, and the machine stays usable for the next job).
func (m *Machine) Compute(ctx context.Context, src Source, opts ...RunOption) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rs := runSettings{alg: AlgBoruvka}
	for _, o := range opts {
		if o != nil {
			o(&rs)
		}
	}
	if !validAlgorithm(rs.alg) {
		return nil, fmt.Errorf("kamsta: unknown algorithm %q", rs.alg)
	}
	if src == nil {
		return nil, fmt.Errorf("kamsta: nil input source")
	}
	if err := src.validate(); err != nil {
		return nil, err
	}
	// Resolve the derived per-job defaults exactly as Config.withDefaults
	// used to: the core seed follows the job seed, baselines always run
	// with the machine's threads.
	if rs.core.Seed == 0 {
		rs.core.Seed = rs.seed
	}
	rs.baseline.Threads = m.cfg.Threads

	if m.mm != nil {
		m.mm.started.Inc()
		m.mm.queued.Add(1)
	}
	queuedAt := time.Now()
	acqErr := m.jobs.acquire(ctx, m.closed)
	if m.mm != nil {
		m.mm.queued.Add(-1)
		m.mm.queueWait.Observe(time.Since(queuedAt).Seconds())
	}
	if acqErr != nil {
		m.mm.finish(nil, acqErr)
		return nil, acqErr
	}
	defer m.jobs.release()
	select {
	case <-m.closed:
		m.mm.finish(nil, ErrMachineClosed)
		return nil, ErrMachineClosed
	default:
	}
	if m.dead.Load() {
		m.mm.finish(nil, ErrWorldFailed)
		return nil, ErrWorldFailed
	}
	rep, err := m.run(ctx, src, rs)
	m.mm.finish(rep, err)
	return rep, err
}

// fifoSem is a 1-slot semaphore whose waiters are granted the slot in
// strict arrival order. The previous implementation — a buffered channel
// raced by every waiter's select — woke waiters in whatever order the
// runtime picked, so under load a job could be overtaken arbitrarily often
// and the queue-wait histogram measured scheduler luck, not queue depth.
// Here release hands the slot directly to the oldest waiter.
type fifoSem struct {
	mu   sync.Mutex
	held bool
	// waiters is the FIFO queue. Each entry is a 1-buffered channel the
	// releaser sends the slot into; waiters only ever exist while held is
	// true (a grant keeps the slot held, release clears held only when the
	// queue is empty).
	waiters []chan struct{}
}

// acquire takes the slot, queueing FIFO behind earlier callers. It returns
// ctx.Err() if ctx expires first, ErrMachineClosed if closed fires first (a
// nil closed channel never fires). A caller that is already cancelled or
// closed never enters the queue.
func (s *fifoSem) acquire(ctx context.Context, closed <-chan struct{}) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case <-closed:
		return ErrMachineClosed
	default:
	}
	s.mu.Lock()
	if !s.held {
		s.held = true
		s.mu.Unlock()
		return nil
	}
	w := make(chan struct{}, 1)
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		s.abandon(w)
		return ctx.Err()
	case <-closed:
		s.abandon(w)
		return ErrMachineClosed
	}
}

// abandon removes w from the queue. If w was already granted (the grant
// raced the abandonment), the slot is passed straight on to the next
// waiter so it is never lost.
func (s *fifoSem) abandon(w chan struct{}) {
	s.mu.Lock()
	for i, q := range s.waiters {
		if q == w {
			copy(s.waiters[i:], s.waiters[i+1:])
			s.waiters[len(s.waiters)-1] = nil
			s.waiters = s.waiters[:len(s.waiters)-1]
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	<-w // grant already sent (buffered): take it and hand it on
	s.release()
}

// release hands the slot to the oldest waiter, or frees it when none wait.
func (s *fifoSem) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters[len(s.waiters)-1] = nil
		s.waiters = s.waiters[:len(s.waiters)-1]
		w <- struct{}{} // buffered: never blocks, held stays true
		s.mu.Unlock()
		return
	}
	s.held = false
	s.mu.Unlock()
}

// pending reports the number of queued waiters (tests use it to pin FIFO
// order without sleeping).
func (s *fifoSem) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// run executes one job on the machine's world, containing job-scoped
// failures: a *comm.JobError coming back from the simulation is lifted to
// the public *JobError, the world is restored (verified clean or rebuilt)
// BEFORE returning so the machine is healthy for the next caller, and
// WithRetry re-runs the job for transient faults. The caller holds the job
// slot.
func (m *Machine) run(ctx context.Context, src Source, rs runSettings) (*Report, error) {
	for attempt := 0; ; attempt++ {
		rep, err := m.runOnce(ctx, src, rs)
		var ce *comm.JobError
		if !errors.As(err, &ce) {
			return rep, err
		}
		je := toJobError(ce, m.restoreWorld())
		if attempt >= rs.retries || m.dead.Load() {
			// A condemned distributed world cannot host a retry.
			return nil, je
		}
		if m.mm != nil {
			m.mm.retries.Inc()
		}
	}
}

// restoreWorld returns the machine to a runnable state after a contained
// fault and reports whether a rebuild was needed. A world the fault broke
// (poisoned barrier: stall, lost PE) is always rebuilt; a world that
// unwound cooperatively is kept only if a probe job proves it still
// completes collectives correctly — graceful degradation in one step.
//
// A distributed world is never rebuilt: its worker processes' halves
// cannot be transparently re-dialed into a known-clean state, so a fault
// that breaks it condemns the machine (ErrWorldFailed) instead.
func (m *Machine) restoreWorld() (rebuilt bool) {
	w := m.world.Load()
	if m.lt != nil {
		if !w.Broken() && !m.lt.Failed() && m.probeWorld(w) {
			return false
		}
		m.dead.Store(true)
		w.Close()
		m.lt.Close()
		return false
	}
	if !w.Broken() && m.probeWorld(w) {
		return false
	}
	w.Close()
	// The rebuilt world re-resolves the same metric series (get-or-create),
	// so substrate counters keep accumulating across the rebuild.
	nw := comm.NewWorld(m.cfg.PEs, comm.WithThreads(m.cfg.Threads), comm.WithCost(m.cfg.Cost),
		comm.WithMetrics(m.cfg.Metrics))
	nw.Start()
	m.world.Store(nw)
	m.rebuilds.Add(1)
	if m.mm != nil {
		m.mm.rebuilds.Inc()
	}
	return true
}

// probeStallTimeout bounds the post-fault health probe: the probe job is a
// single tiny collective, so a world that cannot finish it in this long is
// not clean.
const probeStallTimeout = 2 * time.Second

// probeWorld verifies a world after a cooperative abort by running one
// trivial SPMD job: every PE contributes 1 to an Allreduce and rank 0
// checks the sum. It exercises the full superstep path — deposits, barrier,
// pre-release combine, verdict — on the state the aborted job left behind.
// On a distributed machine the probe is a dispatched job like any other, so
// it also proves the workers and the wire.
func (m *Machine) probeWorld(w *comm.World) bool {
	job := &probeJob{got: -1}
	if m.lt != nil {
		if err := m.startRemote(jobProbe, nil, runSettings{stall: probeStallTimeout}); err != nil {
			return false
		}
	}
	err := w.RunJobCfg(context.Background(), comm.JobConfig{StallTimeout: probeStallTimeout}, job.run)
	if m.lt != nil {
		if err != nil {
			m.drainRemote(w)
		} else if m.finishRemote(w, nil) != nil {
			return false
		}
	}
	return err == nil && job.got == m.cfg.PEs
}

// runOnce executes one attempt of one job on the machine's current world.
func (m *Machine) runOnce(ctx context.Context, src Source, rs runSettings) (*Report, error) {
	if rs.alg == AlgKruskal {
		if es, ok := src.(edgesSource); ok {
			// No world is involved: the edges are already in memory, so the
			// report's Stats and InputModeledSeconds are legitimately zero
			// (no substrate traffic occurred; see Report.Stats).
			return sequentialReport(es.edges)
		}
		collected, stats, iclk, err := m.collectCanonical(ctx, src, rs)
		if err != nil {
			return nil, err
		}
		rep, err := sequentialReport(collected)
		if err != nil {
			return nil, err
		}
		// The substrate DID run for this job — materializing the source and
		// gathering the canonical edges to rank 0 — so report that traffic
		// instead of silently zeroing it (it used to read as "free").
		rep.Stats = stats
		rep.InputModeledSeconds = iclk
		return rep, nil
	}

	w := m.world.Load()
	w.ResetMetrics() // this job's makespan, not the machine's history
	rep := &Report{}
	job := &msfJob{src: src, rs: rs, w: w, rep: rep, shares: make([][]graph.Edge, m.cfg.PEs)}
	if m.lt != nil {
		if err := m.startRemote(jobMSF, src, rs); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	err := w.RunJobCfg(ctx, m.jobConfig(rs), job.run)
	if m.lt != nil {
		// Keep the job-control streams in lockstep: on success fold the
		// workers' reports into the world's aggregates before reading them;
		// on any failure (including a leader-local input error, which the
		// workers saw too and completed past) drain the pending reports.
		if err != nil || job.algErr != nil {
			m.drainRemote(w)
		} else if ferr := m.finishRemote(w, job.shares); ferr != nil {
			return nil, ferr
		}
	}
	if err != nil {
		return nil, err
	}
	if job.algErr != nil {
		return nil, job.algErr
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.ModeledSeconds = w.MaxClock()
	if rep.ModeledSeconds > 0 {
		rep.EdgesPerSecond = float64(rep.InputEdges) / rep.ModeledSeconds
	}
	rep.Phases = w.Phases()
	rep.Stats = w.TotalStats()
	for _, sh := range job.shares {
		for _, e := range sh {
			u, v := e.OrigPair()
			rep.MSTEdges = append(rep.MSTEdges, InputEdge{U: u, V: v, W: e.W})
		}
	}
	sortMSTEdges(rep.MSTEdges)
	return rep, nil
}

// jobConfig resolves one job's simulation-level configuration from its run
// settings.
func (m *Machine) jobConfig(rs runSettings) comm.JobConfig {
	return comm.JobConfig{Observer: rs.obs, StallTimeout: rs.stall, Inject: rs.inject, Trace: rs.trace}
}

// collectCanonical materializes a source inside the machine's world and
// gathers the canonical (U < V) undirected edges, for the sequential
// reference path. Alongside the edges it reports the substrate traffic and
// modeled time this collection cost, so the sequential report can carry
// them instead of a silent zero.
func (m *Machine) collectCanonical(ctx context.Context, src Source, rs runSettings) ([]InputEdge, comm.Stats, float64, error) {
	cfg := m.jobConfig(rs)
	cfg.Observer = nil // no algorithm phases to observe on this path
	w := m.world.Load()
	w.ResetMetrics() // this job's traffic, not the machine's history
	job := &collectJob{src: src, rs: rs}
	if m.lt != nil {
		if err := m.startRemote(jobCollect, src, rs); err != nil {
			return nil, comm.Stats{}, 0, err
		}
	}
	err := w.RunJobCfg(ctx, cfg, job.run)
	if m.lt != nil {
		if err != nil || job.inputErr != nil {
			m.drainRemote(w)
		} else if ferr := m.finishRemote(w, nil); ferr != nil {
			return nil, comm.Stats{}, 0, ferr
		}
	}
	if err != nil {
		return nil, comm.Stats{}, 0, err
	}
	return job.collected, w.TotalStats(), w.MaxClock(), job.inputErr
}

// startRemote dispatches one job's spec to every worker and arms the wire
// deadlines from its stall budget. A dispatch failure condemns the machine
// (the streams' states are unknowable).
func (m *Machine) startRemote(kind string, src Source, rs runSettings) error {
	spec, err := specOf(kind, src, rs)
	if err != nil {
		return err
	}
	m.lt.SetIOTimeout(ioTimeoutFor(rs.stall))
	if err := m.lt.StartJob(encodeJobSpec(spec)); err != nil {
		m.dead.Store(true)
		return fmt.Errorf("kamsta: dispatching %s job: %w", kind, err)
	}
	return nil
}

// finishRemote collects every worker's end-of-job report and folds it into
// the leader world's aggregates (and, for MSF jobs, the share table). Any
// wire failure, undecodable report, or worker-side failure the superstep
// flags did not already surface condemns the machine.
func (m *Machine) finishRemote(w *comm.World, shares [][]graph.Edge) error {
	reports, err := m.lt.FinishJob()
	if err != nil {
		m.dead.Store(true)
		return fmt.Errorf("kamsta: collecting worker reports: %w", err)
	}
	for _, b := range reports {
		end, err := decodeJobEnd(b)
		if err != nil {
			m.dead.Store(true)
			return err
		}
		if !end.OK {
			// The leader's ranks finished but this worker's did not — SPMD
			// divergence the flags should have caught. Nothing to trust.
			m.dead.Store(true)
			return fmt.Errorf("kamsta: worker ranks [%d,%d) failed: %s", end.Lo, end.Hi, end.Err)
		}
		if err := end.merge(w, shares); err != nil {
			m.dead.Store(true)
			return err
		}
	}
	return nil
}

// drainRemote keeps the job-control streams synchronized after a job the
// leader's ranks did not complete normally. When the world unwound
// cooperatively (abort or cancel verdict, or an input error every rank
// returned on) the workers still send reports — read and discard them so
// the next job's frames line up. After a transport failure or a poisoned
// world there is nothing left to read; restoreWorld condemns the machine.
func (m *Machine) drainRemote(w *comm.World) {
	if w.Broken() || m.lt.Failed() {
		return
	}
	if _, err := m.lt.FinishJob(); err != nil {
		m.dead.Store(true)
	}
}
