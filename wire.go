package kamsta

import (
	"fmt"
	"time"

	"kamsta/internal/baselines"
	"kamsta/internal/comm"
	"kamsta/internal/core"
	"kamsta/internal/enc"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
)

// This file is the job-control wire format of a distributed machine: what
// the leader ships to mstworker processes at job start (wireJobSpec) and
// what each worker reports back at job end (wireJobEnd). The transport
// layer (internal/transport/tcp) treats both as opaque payloads; their
// meaning lives here, next to the Machine that speaks them.

// Job kinds a leader dispatches.
const (
	jobMSF     = "msf"     // one MSF computation (Machine.runOnce's SPMD body)
	jobCollect = "collect" // gather canonical edges to rank 0 (sequential path)
	jobProbe   = "probe"   // post-fault health probe (one tiny Allreduce)
)

// wireSource describes a Source so a worker can rebuild it. Edge-list
// sources ship no edges: rank 0 — always leader-local — feeds them into
// the world, and every other rank contributes an empty share exactly as it
// does in-process. File sources name a path every worker must also see
// (shared filesystem or identical copies).
type wireSource struct {
	Type   string // "spec" | "file" | "edges" | "none"
	Spec   gen.Spec
	Path   string
	Format string
}

// wireJobSpec is everything a worker needs to run its ranks of one job:
// the resolved per-job settings (post Compute defaulting) plus the source.
// Leader-local concerns — observer, tracer, fault injection, retries — are
// deliberately absent.
type wireJobSpec struct {
	Kind     string
	Alg      string
	Seed     uint64
	Core     core.Options
	Baseline baselines.Options
	// StallMs arms the worker's stall watchdog and sizes both sides' wire
	// deadlines; 0 leaves the watchdog off (deadlines then take defaults).
	StallMs int64
	Source  wireSource
}

// wirePhase is one aggregated phase row of a worker's report.
type wirePhase struct {
	Name    string
	Modeled float64
	WallNs  int64
	Msgs    int64
	Bytes   int64
	Colls   int64
}

// wireShare is one remote rank's MSF edge share.
type wireShare struct {
	Rank  int64
	Edges []graph.Edge
}

// wireJobEnd is a worker's end-of-job report: outcome, flushed metrics for
// its rank block, and (for MSF jobs) each rank's MSF edge share. Faults
// already reached the leader through the superstep flags; Err is the
// worker-side summary for diagnostics.
type wireJobEnd struct {
	OK     bool
	Broken bool
	Err    string
	Lo, Hi int64
	Clocks []float64
	Phases []wirePhase
	Msgs   int64
	Bytes  int64
	Colls  int64
	Shares []wireShare
}

var (
	jobSpecCodec = enc.CodecFor[wireJobSpec]()
	jobEndCodec  = enc.CodecFor[wireJobEnd]()
)

func encodeJobSpec(s wireJobSpec) []byte { return jobSpecCodec.Append(nil, s) }

func decodeJobSpec(b []byte) (wireJobSpec, error) {
	v, rest, err := jobSpecCodec.Decode(b)
	if err != nil {
		return wireJobSpec{}, fmt.Errorf("kamsta: job spec: %w", err)
	}
	if len(rest) != 0 {
		return wireJobSpec{}, fmt.Errorf("kamsta: %d bytes after job spec", len(rest))
	}
	return v.(wireJobSpec), nil
}

func encodeJobEnd(e wireJobEnd) []byte { return jobEndCodec.Append(nil, e) }

func decodeJobEnd(b []byte) (wireJobEnd, error) {
	v, rest, err := jobEndCodec.Decode(b)
	if err != nil {
		return wireJobEnd{}, fmt.Errorf("kamsta: job report: %w", err)
	}
	if len(rest) != 0 {
		return wireJobEnd{}, fmt.Errorf("kamsta: %d bytes after job report", len(rest))
	}
	return v.(wireJobEnd), nil
}

// wireSourceOf describes src for shipping; the bool is false for source
// kinds that cannot cross processes (none exist today — every public
// Source maps).
func wireSourceOf(src Source) (wireSource, bool) {
	switch s := src.(type) {
	case specSource:
		return wireSource{Type: "spec", Spec: s.spec}, true
	case fileSource:
		return wireSource{Type: "file", Path: s.path, Format: s.format}, true
	case edgesSource:
		// Rank 0 feeds the edges and is leader-local; remote ranks run the
		// same provide() with an empty share.
		return wireSource{Type: "edges"}, true
	}
	return wireSource{}, false
}

// source rebuilds the worker-side Source.
func (ws wireSource) source() (Source, error) {
	switch ws.Type {
	case "spec":
		return specSource{ws.Spec}, nil
	case "file":
		return fileSource{path: ws.Path, format: ws.Format}, nil
	case "edges":
		return edgesSource{}, nil
	case "none", "":
		return nil, nil
	}
	return nil, fmt.Errorf("kamsta: unknown wire source type %q", ws.Type)
}

// specOf captures a job's worker-relevant settings for the wire.
func specOf(kind string, src Source, rs runSettings) (wireJobSpec, error) {
	spec := wireJobSpec{
		Kind:     kind,
		Alg:      string(rs.alg),
		Seed:     rs.seed,
		Core:     rs.core,
		Baseline: rs.baseline,
		StallMs:  rs.stall.Milliseconds(),
	}
	if src != nil {
		ws, ok := wireSourceOf(src)
		if !ok {
			return wireJobSpec{}, fmt.Errorf("kamsta: source %q cannot run on a distributed machine", src.Label())
		}
		spec.Source = ws
	}
	return spec, nil
}

// settings rebuilds the worker-side runSettings.
func (s wireJobSpec) settings() runSettings {
	return runSettings{
		alg:      Algorithm(s.Alg),
		seed:     s.Seed,
		core:     s.Core,
		baseline: s.Baseline,
		stall:    time.Duration(s.StallMs) * time.Millisecond,
	}
}

// jobEndOf assembles a worker's report after its ranks finished (or failed)
// a job: outcome, the rank block's flushed clocks, the world's aggregated
// phases and traffic (local ranks only — the leader sums the blocks), and
// the MSF shares.
func jobEndOf(w *comm.World, lo, hi int, jerr error, shares [][]graph.Edge) wireJobEnd {
	end := wireJobEnd{Lo: int64(lo), Hi: int64(hi)}
	if jerr != nil {
		end.Err = jerr.Error()
		end.Broken = w.Broken()
		return end
	}
	end.OK = true
	end.Clocks = w.Clocks()[lo:hi]
	for name, pt := range w.Phases() {
		end.Phases = append(end.Phases, wirePhase{
			Name:    name,
			Modeled: pt.Modeled,
			WallNs:  pt.Wall.Nanoseconds(),
			Msgs:    pt.Stats.Messages,
			Bytes:   pt.Stats.Bytes,
			Colls:   pt.Stats.Collectives,
		})
	}
	st := w.TotalStats()
	end.Msgs, end.Bytes, end.Colls = st.Messages, st.Bytes, st.Collectives
	for r := lo; r < hi; r++ {
		if shares != nil && len(shares[r]) > 0 {
			end.Shares = append(end.Shares, wireShare{Rank: int64(r), Edges: shares[r]})
		}
	}
	return end
}

// merge folds a worker's report into the leader world's aggregates (the
// same discipline as a local PE flush) and its shares into the job's share
// table.
func (e *wireJobEnd) merge(w *comm.World, shares [][]graph.Edge) error {
	phases := make(map[string]comm.PhaseTime, len(e.Phases))
	for _, ph := range e.Phases {
		phases[ph.Name] = comm.PhaseTime{
			Modeled: ph.Modeled,
			Wall:    time.Duration(ph.WallNs),
			Stats:   comm.Stats{Messages: ph.Msgs, Bytes: ph.Bytes, Collectives: ph.Colls},
		}
	}
	w.MergeRemote(int(e.Lo), e.Clocks, phases, comm.Stats{Messages: e.Msgs, Bytes: e.Bytes, Collectives: e.Colls})
	for _, sh := range e.Shares {
		r := int(sh.Rank)
		if r < 0 || r >= len(shares) {
			return fmt.Errorf("kamsta: worker report names rank %d of %d", r, len(shares))
		}
		shares[r] = sh.Edges
	}
	return nil
}
