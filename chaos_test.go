package kamsta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"kamsta/internal/comm"
	"kamsta/internal/faultinject"
)

// chaosGoldenCase pins a (spec, algorithm) pair to its bit-exact modeled
// clock — the same references TestModeledTimeGolden pins. The chaos suite's
// core claim is that the job immediately following ANY recovered fault
// reproduces these bits exactly: no arena, scratch, board, clock or stats
// state leaks out of an aborted job.
type chaosGoldenCase struct {
	name string
	spec GraphSpec
	alg  Algorithm
	bits uint64
}

var chaosGolden = []chaosGoldenCase{
	{"gnm-boruvka", GraphSpec{Family: GNM, N: 1 << 10, M: 1 << 13, Seed: 42}, AlgBoruvka, 0x3f453980b2cb7769},
	{"rgg2d-filter", GraphSpec{Family: RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7}, AlgFilterBoruvka, 0x3f68ca7d4d6ed9eb},
}

// checkGolden runs one fault-free golden job on m and fails the test unless
// the modeled clock matches the pinned bits exactly.
func checkGolden(t *testing.T, m *Machine, gc chaosGoldenCase, when string) {
	t.Helper()
	rep, err := m.Compute(context.Background(), FromSpec(gc.spec), WithAlgorithm(gc.alg))
	if err != nil {
		t.Fatalf("%s: golden %s job: %v", when, gc.name, err)
	}
	if got := math.Float64bits(rep.ModeledSeconds); got != gc.bits {
		t.Fatalf("%s: golden %s clock bits %#x, want %#x — state leaked out of the aborted job",
			when, gc.name, got, gc.bits)
	}
}

// TestNewMachineValidation: invalid machine configs are errors, not panics
// deep inside world construction.
func TestNewMachineValidation(t *testing.T) {
	bad := []MachineConfig{
		{PEs: -1},
		{PEs: 1<<16 + 1},
		{PEs: 4, Threads: -2},
		{PEs: 4, Cost: comm.CostModel{Alpha: math.NaN()}},
		{PEs: 4, Cost: comm.CostModel{Beta: math.Inf(1)}},
		{PEs: 4, Cost: comm.CostModel{Compute: -1}},
	}
	for i, cfg := range bad {
		if m, err := NewMachine(cfg); err == nil {
			m.Close()
			t.Errorf("config %d (%+v): NewMachine succeeded, want error", i, cfg)
		} else if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: Validate passed a config NewMachine rejected", i)
		}
	}
	// Zero values mean defaults, not errors.
	m, err := NewMachine(MachineConfig{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	defer m.Close()
	if m.PEs() != 4 || m.Threads() != 1 {
		t.Fatalf("defaults: PEs=%d Threads=%d", m.PEs(), m.Threads())
	}
	if !m.Healthy() {
		t.Fatal("fresh machine should be healthy")
	}
}

// TestChaosScheduleSweep is the seeded chaos harness: many random fault
// schedules (panics and delays at seeded collective boundaries), each
// followed by a golden job whose modeled clock must be bit-identical to the
// fault-free reference. Run under -race in CI; every schedule is replayable
// from its seed alone.
func TestChaosScheduleSweep(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 16
	}
	baseline := runtime.NumGoroutine()
	m := newTestMachine(t, MachineConfig{PEs: 8})
	faulted := 0
	for seed := 1; seed <= seeds; seed++ {
		plan := faultinject.RandomPlan(uint64(seed), faultinject.RandomSpec{
			PEs:           8,
			MaxOccurrence: 96,
			MaxRules:      3,
		})
		gc := chaosGolden[seed%len(chaosGolden)]
		_, err := m.Compute(context.Background(), FromSpec(gc.spec),
			WithAlgorithm(gc.alg),
			WithFaultInjection(plan),
			WithStallTimeout(30*time.Second))
		if err != nil {
			var je *JobError
			if !errors.As(err, &je) {
				t.Fatalf("seed %d: err = %v (%T), want *JobError or nil", seed, err, err)
			}
			if je.Kind != FaultPanic {
				t.Fatalf("seed %d: fault kind %v, want panic (schedule injects only panics and small delays)", seed, je.Kind)
			}
			faulted++
		}
		if !m.Healthy() {
			t.Fatalf("seed %d: machine unhealthy after recovery", seed)
		}
		checkGolden(t, m, gc, fmt.Sprintf("seed %d", seed))
	}
	t.Logf("%d/%d schedules faulted, %d transparent rebuilds", faulted, seeds, m.Rebuilds())
	if faulted == 0 {
		t.Fatal("no schedule injected a fault — the sweep exercised nothing")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, baseline)
}

// TestAbortMidIngestGoldenClock pins arena and scratch reuse after a job
// aborted in its earliest supersteps — during generation and the
// distributed sort, where the round arenas are hottest. Each injected panic
// lands at a different low collective occurrence; the golden job right after
// must reproduce the reference bits exactly.
func TestAbortMidIngestGoldenClock(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 8})
	defer m.Close()
	for _, occ := range []int{0, 1, 3, 6, 10} {
		for _, gc := range chaosGolden {
			plan := faultinject.NewPlan(&faultinject.Rule{
				Site:       faultinject.SiteCollective,
				Rank:       occ % 8,
				Occurrence: occ,
				Action:     faultinject.ActPanic,
			})
			_, err := m.Compute(context.Background(), FromSpec(gc.spec),
				WithAlgorithm(gc.alg), WithFaultInjection(plan))
			var je *JobError
			if !errors.As(err, &je) {
				t.Fatalf("occ %d %s: err = %v, want *JobError", occ, gc.name, err)
			}
			if je.Rank != occ%8 || je.Kind != FaultPanic {
				t.Fatalf("occ %d %s: JobError = %+v", occ, gc.name, je)
			}
			checkGolden(t, m, gc, fmt.Sprintf("occ %d", occ))
		}
	}
}

// TestCancelMidJobGoldenClock pins the same reuse property for the
// cancellation path: a job cancelled from its observer at the first
// distributed round leaves no trace in the next job's modeled bits.
func TestCancelMidJobGoldenClock(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 8})
	defer m.Close()
	gc := chaosGolden[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := m.Compute(ctx, FromSpec(GraphSpec{Family: GNM, N: 1 << 12, M: 1 << 15, Seed: 5}),
		WithCoreOptions(coreOptionsTinyBase()),
		WithObserver(func(ev Event) {
			if ev.Kind == EventRound && ev.Round == 1 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job: %v, want context.Canceled", err)
	}
	checkGolden(t, m, gc, "after cancel")
}

// TestWithRetryTransientFault: a fault that fires once (injection rules are
// one-shot across retries, like a real transient) is absorbed by WithRetry —
// the caller sees a successful, bit-exact Report, never the error.
func TestWithRetryTransientFault(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 8})
	defer m.Close()
	gc := chaosGolden[0]
	rule := &faultinject.Rule{
		Site: faultinject.SiteCollective, Rank: 3, Occurrence: 5,
		Action: faultinject.ActPanic,
	}
	rep, err := m.Compute(context.Background(), FromSpec(gc.spec),
		WithAlgorithm(gc.alg),
		WithFaultInjection(faultinject.NewPlan(rule)),
		WithRetry(2))
	if err != nil {
		t.Fatalf("retried job: %v", err)
	}
	if !rule.Fired() {
		t.Fatal("the transient fault never fired — the retry proved nothing")
	}
	if got := math.Float64bits(rep.ModeledSeconds); got != gc.bits {
		t.Fatalf("retried job clock bits %#x, want %#x", got, gc.bits)
	}
}

// TestStallRecoveryAndRebuild: an injected straggler outlasting the stall
// timeout must surface as a FaultStall with Rebuilt set, bump the rebuild
// counter, and leave a healthy machine producing golden bits.
func TestStallRecoveryAndRebuild(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := newTestMachine(t, MachineConfig{PEs: 8})
	gc := chaosGolden[0]
	plan := faultinject.NewPlan(&faultinject.Rule{
		Site: faultinject.SiteCollective, Rank: 2, Occurrence: 4,
		Action: faultinject.ActDelay, Delay: 1500 * time.Millisecond,
	})
	_, err := m.Compute(context.Background(), FromSpec(gc.spec),
		WithAlgorithm(gc.alg),
		WithFaultInjection(plan),
		WithStallTimeout(100*time.Millisecond))
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("stalled job: err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultStall {
		t.Fatalf("fault kind %v, want stall", je.Kind)
	}
	if !je.Rebuilt {
		t.Fatal("a stall poisons the world; JobError.Rebuilt should be set")
	}
	if len(je.Missing) == 0 {
		t.Fatalf("stall diagnosis lists no missing ranks: %+v", je)
	}
	if m.Rebuilds() < 1 {
		t.Fatalf("Rebuilds() = %d, want >= 1", m.Rebuilds())
	}
	if !m.Healthy() {
		t.Fatal("machine should be healthy after the transparent rebuild")
	}
	checkGolden(t, m, gc, "after stall rebuild")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The delayed zombie PE wakes, hits the poisoned barrier of its dead
	// world and exits; everything must drain back to baseline.
	waitForGoroutines(t, baseline)
}

// writeChaosEdgeFile writes a small connected edge-list instance for the
// file-ingestion chaos tests.
func writeChaosEdgeFile(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	const n = 64
	for i := uint64(1); i < n; i++ {
		fmt.Fprintf(&sb, "%d %d %d\n", i, i+1, i%13+1)
	}
	fmt.Fprintf(&sb, "%d 1 7\n", uint64(n))
	for i := uint64(1); i+17 <= n; i += 5 {
		fmt.Fprintf(&sb, "%d %d %d\n", i, i+17, i%11+2)
	}
	path := filepath.Join(t.TempDir(), "chaos.txt")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestInjectedIOErrorSurfacesAsError: a failed graph read is an input error,
// not a fault — every PE leaves the job together, Compute returns a plain
// error mentioning the injection, and the machine needs no recovery.
func TestInjectedIOErrorSurfacesAsError(t *testing.T) {
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	path := writeChaosEdgeFile(t)
	src := FromFileFormat(path, "edgelist")
	want, err := m.Compute(context.Background(), src)
	if err != nil {
		t.Fatalf("reference load: %v", err)
	}
	plan := faultinject.NewPlan(&faultinject.Rule{
		Site: faultinject.SiteGraphRead, Rank: 1, Occurrence: 0,
		Action: faultinject.ActIOError,
	})
	_, err = m.Compute(context.Background(), src, WithFaultInjection(plan))
	if err == nil {
		t.Fatal("injected read error did not surface")
	}
	var je *JobError
	if errors.As(err, &je) {
		t.Fatalf("read error surfaced as a fault (%v); it should be a plain input error", je)
	}
	if !strings.Contains(err.Error(), "injected I/O error") {
		t.Fatalf("error %q should carry the injected read failure", err)
	}
	if !m.Healthy() {
		t.Fatal("a failed read must not hurt the machine")
	}
	got, err := m.Compute(context.Background(), src)
	if err != nil || got.TotalWeight != want.TotalWeight {
		t.Fatalf("post-error load: rep=%+v err=%v, want weight %d", got, err, want.TotalWeight)
	}
}

// TestChaosFileIngestion sweeps seeded schedules over the file-ingestion
// path (read errors, read-site panics, collective faults); after every
// schedule the same file must load to the same forest.
func TestChaosFileIngestion(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 8
	}
	m := newTestMachine(t, MachineConfig{PEs: 4})
	defer m.Close()
	path := writeChaosEdgeFile(t)
	src := FromFileFormat(path, "edgelist")
	want, err := m.Compute(context.Background(), src)
	if err != nil {
		t.Fatalf("reference load: %v", err)
	}
	for seed := 1; seed <= seeds; seed++ {
		plan := faultinject.RandomPlan(uint64(seed), faultinject.RandomSpec{
			PEs:           4,
			MaxOccurrence: 24,
			MaxRules:      2,
			Reads:         true,
		})
		_, err := m.Compute(context.Background(), src, WithFaultInjection(plan),
			WithStallTimeout(30*time.Second))
		if err != nil {
			var je *JobError
			if !errors.As(err, &je) && !strings.Contains(err.Error(), "injected I/O error") {
				t.Fatalf("seed %d: unexpected error class: %v", seed, err)
			}
		}
		if !m.Healthy() {
			t.Fatalf("seed %d: machine unhealthy", seed)
		}
		got, err := m.Compute(context.Background(), src)
		if err != nil {
			t.Fatalf("seed %d: post-fault load: %v", seed, err)
		}
		if got.TotalWeight != want.TotalWeight || got.NumEdges != want.NumEdges {
			t.Fatalf("seed %d: post-fault forest %d/%d, want %d/%d",
				seed, got.TotalWeight, got.NumEdges, want.TotalWeight, want.NumEdges)
		}
	}
}
