package comm

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"kamsta/internal/faultinject"
	"kamsta/internal/obs"
	"kamsta/internal/transport"
)

// This file is the world's job engine: how an SPMD program is executed on
// the PEs, how a persistent world keeps its PE goroutines parked between
// jobs (Start/Close), how a job's context cancels — and a fault aborts —
// the whole world cooperatively at collective boundaries, and how rank 0
// streams progress events to an Observer.
//
// # Cancellation and containment protocol
//
// Nothing can interrupt a PE mid-computation — PEs are plain goroutines
// running algorithm code — but every PE passes through the collective
// barrier many times per job, and that barrier already has a moment when
// one PE acts on behalf of a fully blocked world: the pre-release combine
// (see preRelease). Both cancellation and fault containment ride on it:
//
//  1. An asynchronous event raises a request flag on the job: the context
//     watcher sets jb.cancelReq when ctx expires; a PE whose panic was
//     recovered (or the stall watchdog) records a fault and sets
//     jb.abortReq.
//  2. The pre-release combiner of the next superstep reads the flags ONCE
//     and publishes the verdict in the superstep's combineSlot, while all
//     PEs are still blocked in the barrier. Reading once is what makes the
//     decision consistent: had each PE polled the flags itself, two PEs of
//     the same superstep could disagree and the barrier would deadlock.
//  3. After release, every PE of the superstep observes the same verdict
//     and unwinds its job with a sentinel panic (jobCancelled or
//     jobAborted), recovered at the top of the PE's job runner. All PEs
//     exit together at the same collective, no goroutine leaks, and RunJob
//     returns ctx.Err() or the recorded *JobError.
//
// A faulting PE has one extra duty: it stopped participating mid-superstep,
// so after recovery it rejoins the barrier once (drainAbort) to let the
// verdict release the world. Two pieces make that drain always terminate:
// SPMD lockstep (every other PE is at, or unconditionally heading to, the
// faulter's current epoch barrier) and the close-out superstep every PE
// runs after its job function returns (closeOut) — which guarantees a next
// barrier even when the fault strikes after the job's last algorithm
// collective. Because every PE now ends its job at the close-out
// collective, a cancellation raised after the last ALGORITHM collective is
// still observed there: a job whose compute finished entirely can return
// ctx.Err() rather than success, which is within the contract (cancelled
// jobs report ctx.Err(); whether the final verdict beat the cancel is
// timing).
//
// Faults the cooperative protocol cannot resolve — a PE goroutine lost to
// runtime.Goexit, or a stall where a stuck PE never reaches the barrier —
// fall back to poisoning the world (markBroken): the barrier force-releases
// every waiter, the PEs unwind, and the world reports Broken. A broken
// world runs no further jobs; the public Machine rebuilds it transparently.

// EventKind discriminates observer events.
type EventKind uint8

const (
	// EventPhaseBegin and EventPhaseEnd bracket a named algorithm phase
	// (the paper's Fig. 6 breakdown) on rank 0.
	EventPhaseBegin EventKind = iota + 1
	EventPhaseEnd
	// EventRound fires at the top of each distributed Borůvka round with
	// the global vertex count entering the round.
	EventRound
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventPhaseBegin:
		return "phaseBegin"
	case EventPhaseEnd:
		return "phaseEnd"
	case EventRound:
		return "round"
	}
	return "(unknown)"
}

// Event is one progress notification from a running job.
type Event struct {
	Kind EventKind
	// Phase is the phase name for phase events.
	Phase string
	// Round is the 1-based distributed round number for round events;
	// Vertices the global vertex count entering it.
	Round    int
	Vertices int
	// Clock is rank 0's modeled time when the event fired.
	Clock float64
}

// Observer receives progress events from rank 0 of a running job. It is
// invoked synchronously on the PE-0 goroutine: implementations must be fast,
// must not block, and must not call back into the world.
type Observer func(Event)

// note is the single structured-progress tap feeding both observation
// channels: every phase/round record is appended to this rank's span ring
// (when the job is traced) and, on rank 0, delivered to the Observer — the
// Observer is a view over the same stream the tracer records, not a second
// instrumentation path. The ended gate keeps a zombie PE of an ungracefully
// abandoned job (stall-grace return) from invoking a caller's observer
// after RunJobCfg has returned.
func (c *Comm) note(kind EventKind, phase string, round, vertices int) {
	if c.ring == nil && c.obs == nil {
		return
	}
	if c.jb.ended.Load() {
		return
	}
	if c.ring != nil {
		var sk obs.SpanKind
		switch kind {
		case EventPhaseBegin:
			sk = obs.SpanPhaseBegin
		case EventPhaseEnd:
			sk = obs.SpanPhaseEnd
		case EventRound:
			sk = obs.SpanRound
		}
		r := round
		if r == 0 {
			r = c.round
		}
		c.ring.Append(obs.Span{
			Kind:     sk,
			Rank:     int32(c.rank),
			Round:    int32(r),
			Vertices: int64(vertices),
			Name:     phase,
			Start:    time.Since(c.traceEpoch).Nanoseconds(),
			Clock:    c.clock,
		})
	}
	if c.obs != nil {
		c.obs(Event{Kind: kind, Phase: phase, Round: round, Vertices: vertices, Clock: c.clock})
	}
}

// EmitRound reports the start of distributed round `round` (1-based) with
// the global vertex count entering it. Algorithms call it once per round on
// every rank; it charges nothing, feeds fault diagnostics (JobError.Round),
// and additionally notifies the tracer and, on rank 0, the observer.
func (c *Comm) EmitRound(round, vertices int) {
	c.round = round
	c.note(EventRound, "", round, vertices)
}

// jobCancelled unwinds a PE whose job's context expired; recovered in runPE.
type jobCancelled struct{}

// jobAborted unwinds a PE after a fault elsewhere in the world (abort
// verdict or poisoned barrier); recovered in runPE.
type jobAborted struct{}

// worldJob is one SPMD program in flight: the function, the completion
// group, and ALL per-job mutable state — observer, injector, request flags,
// outcome counters, fault records. Keeping this state off the World is what
// makes an ungracefully abandoned job harmless: a zombie PE still holds its
// own job's worldJob and can never touch the next job's.
type worldJob struct {
	f   func(*Comm)
	wg  sync.WaitGroup
	obs Observer
	inj *faultinject.Injector

	// tr is the job's span trace sink (nil untraced); traceEpoch the shared
	// zero point for span timestamps. ended flips when RunJobCfg returns:
	// zombie PEs of an abandoned job check it before touching the observer.
	tr         *obs.Trace
	traceEpoch time.Time
	ended      atomic.Bool

	// cancelReq and abortReq are the asynchronous requests the next
	// pre-release combiner turns into the superstep verdict.
	cancelReq atomic.Bool
	abortReq  atomic.Bool

	// nCancelled and nAborted count PEs by unwind path.
	nCancelled atomic.Int32
	nAborted   atomic.Int32

	// stalled is closed by the watchdog when it fires (nil without one).
	stalled chan struct{}

	faultMu sync.Mutex
	faults  []*JobError
	// faultsSent is the prefix of faults already shipped to the remote
	// verdict-deciding process (see commHost.Flags); local-only worlds never
	// advance it.
	faultsSent int
}

// recordFault appends one structured fault. Several PEs may fault while the
// world unwinds (e.g. an injected panic on two ranks in one superstep); all
// are kept, the first becomes the job's error.
func (jb *worldJob) recordFault(je *JobError) {
	jb.faultMu.Lock()
	jb.faults = append(jb.faults, je)
	jb.faultMu.Unlock()
}

// primaryError returns the job's first recorded fault (annotated with the
// total count), or nil.
func (jb *worldJob) primaryError() error {
	jb.faultMu.Lock()
	defer jb.faultMu.Unlock()
	if len(jb.faults) == 0 {
		return nil
	}
	je := jb.faults[0]
	je.Faults = len(jb.faults)
	return je
}

// snapshotFaults drains the faults not yet shipped to the remote
// verdict-deciding process, in wire form. Allocation-free when nothing new
// was recorded — the per-superstep case.
func (jb *worldJob) snapshotFaults() []transport.RemoteFault {
	jb.faultMu.Lock()
	defer jb.faultMu.Unlock()
	if jb.faultsSent >= len(jb.faults) {
		return nil
	}
	out := make([]transport.RemoteFault, 0, len(jb.faults)-jb.faultsSent)
	for _, je := range jb.faults[jb.faultsSent:] {
		out = append(out, je.wire())
	}
	jb.faultsSent = len(jb.faults)
	return out
}

// JobConfig carries the optional per-job settings of RunJobCfg.
type JobConfig struct {
	// Observer receives rank 0's phase/round events.
	Observer Observer
	// StallTimeout arms the stall watchdog: if no collective completes for
	// this long, the job aborts with a FaultStall and the world is poisoned.
	// Zero disables the watchdog.
	StallTimeout time.Duration
	// Inject arms deterministic fault injection for this job (testing
	// only). Nil injects nothing.
	Inject *faultinject.Plan
	// Trace collects structured spans (phases, rounds, collectives) from
	// every PE of the job. A single Trace may span many jobs; all span
	// timestamps share its epoch. Nil disables tracing.
	Trace *obs.Trace
}

// Run executes f as an SPMD program: every PE runs f with its own Comm
// handle, and Run returns when all have finished. It may be called
// repeatedly; statistics accumulate across calls. On a persistent world
// (Start) the parked PE goroutines execute the job; otherwise one goroutine
// per PE is spawned for this call only. A job failure (contained PE panic)
// is re-raised here: Run keeps the crash-loudly contract for callers that
// opted out of error handling.
func (w *World) Run(f func(c *Comm)) {
	if err := w.RunJob(context.Background(), nil, f); err != nil {
		panic(err)
	}
}

// RunJob is Run with a cancellation context and a progress observer (both
// optional); see RunJobCfg.
func (w *World) RunJob(ctx context.Context, obs Observer, f func(*Comm)) error {
	return w.RunJobCfg(ctx, JobConfig{Observer: obs}, f)
}

// RunJobCfg executes f as an SPMD program under the full per-job
// configuration. If ctx expires while the job is running, all PEs abandon
// the job together at the next collective boundary and RunJobCfg returns
// ctx.Err(). If a PE panics, the panic is contained: all PEs unwind the
// same superstep together and RunJobCfg returns a *JobError describing the
// fault. If the watchdog (JobConfig.StallTimeout) detects a stalled
// collective, the world is poisoned and RunJobCfg returns a *JobError with
// per-rank arrival diagnostics — after which the world reports Broken and
// must be rebuilt. A World runs one job at a time; serializing concurrent
// callers is the caller's concern (see the public Machine API).
func (w *World) RunJobCfg(ctx context.Context, cfg JobConfig, f func(*Comm)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if w.Broken() {
		return ErrBroken
	}
	jb := &worldJob{f: f, obs: cfg.Observer, inj: cfg.Inject.Injector(w.p)}
	if cfg.Trace != nil {
		jb.tr = cfg.Trace
		jb.traceEpoch = cfg.Trace.StartJob(w.p)
	}
	// Arm the watcher only for cancellable contexts; Background costs
	// nothing.
	var stop, watcherDone chan struct{}
	if done := ctx.Done(); done != nil {
		stop = make(chan struct{})
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-done:
				jb.cancelReq.Store(true)
			case <-stop:
			}
		}()
	}
	var watchStop, watchDone chan struct{}
	if cfg.StallTimeout > 0 {
		jb.stalled = make(chan struct{})
		watchStop = make(chan struct{})
		watchDone = make(chan struct{})
		go w.watchdog(jb, cfg.StallTimeout, watchStop, watchDone)
	}
	w.dispatch(jb)
	graceful := true
	if cfg.StallTimeout > 0 {
		// With a watchdog armed the job may contain a PE that never reaches
		// a barrier again; waiting must not inherit that hang. Poisoning
		// releases every blocked PE immediately, so after a stall the
		// stragglers unwind within the grace window unless one is truly
		// stuck in compute — then RunJobCfg returns anyway, leaving the
		// zombie PE attached to its own worldJob (never this world's next
		// job) and the world marked broken for rebuild.
		peDone := make(chan struct{})
		go func() { jb.wg.Wait(); close(peDone) }()
		select {
		case <-peDone:
		case <-jb.stalled:
			select {
			case <-peDone:
			case <-time.After(cfg.StallTimeout):
				graceful = false
			}
		}
	} else {
		jb.wg.Wait()
	}
	if watchStop != nil {
		close(watchStop)
		<-watchDone
	}
	if stop != nil {
		// Join the watcher before returning: a store racing past the job's
		// end would belong to a dead worldJob and is harmless, but joining
		// keeps the goroutine accounting exact for leak checks.
		close(stop)
		<-watcherDone
	}
	if graceful {
		// Drop deposit references so the last collective's payloads don't
		// stay reachable through the transport between (or after) jobs, and
		// clear the published verdicts. Skipped after an ungraceful stall
		// return: a zombie PE may still write its board slot, and a broken
		// world is never reused anyway.
		w.tr.Drop()
	}
	// From here on the job is over from the caller's perspective: no PE —
	// including a zombie left behind by an ungraceful stall return — may
	// invoke the caller's observer anymore.
	jb.ended.Store(true)
	if err := jb.primaryError(); err != nil {
		return err
	}
	if jb.nCancelled.Load() > 0 {
		return ctx.Err()
	}
	return nil
}

// dispatch hands the job to every LOCAL PE — parked goroutines on a
// persistent world, freshly spawned ones otherwise. Remote ranks run in
// their own processes, driven by their own worlds over the shared
// transport.
func (w *World) dispatch(jb *worldJob) {
	jb.wg.Add(w.hi - w.lo)
	if w.pes != nil {
		for r := w.lo; r < w.hi; r++ {
			w.pes[r] <- jb
		}
		return
	}
	for r := w.lo; r < w.hi; r++ {
		go w.runJobOnPE(r, jb)
	}
}

// runJobOnPE runs one PE's share of a job and accounts its outcome. Its
// deferred watchdog is the last line of containment: if the goroutine is
// dying without an outcome — runtime.Goexit raised by algorithm code, or a
// panic that escaped runPE's recovery — the world has permanently lost a
// party and can never complete another barrier, so it is poisoned to
// unwind everyone else, and the job still gets its wg.Done and a
// FaultLostPE record.
func (w *World) runJobOnPE(rank int, jb *worldJob) {
	finished := false
	defer func() {
		if r := recover(); r != nil || !finished {
			jb.recordFault(&JobError{Kind: FaultLostPE, Rank: rank, PanicValue: r})
			jb.abortReq.Store(true)
			w.markBroken()
			jb.wg.Done()
		}
	}()
	switch w.runPE(w.newComm(rank, jb), jb) {
	case peCancelled:
		jb.nCancelled.Add(1)
	case peAborted:
		jb.nAborted.Add(1)
	}
	finished = true
	jb.wg.Done()
}

// peOutcome is how one PE's share of a job ended.
type peOutcome uint8

const (
	// peDone: the job function and the close-out superstep completed.
	peDone peOutcome = iota
	// peCancelled: unwound by the cancellation verdict (ctx expired).
	peCancelled
	// peAborted: unwound by the abort verdict, a poisoned barrier, or this
	// PE's own contained panic.
	peAborted
)

// runPE runs one PE's share of a job. Sentinel unwinds (cancel/abort
// verdicts) just report their outcome; any OTHER panic is a real fault:
// it is recorded with its location and stack, the abort request is raised,
// and this PE rejoins the barrier once (drainAbort) so the verdict can
// release the world. Metrics of cancelled or aborted PEs are discarded — a
// partial clock is not a makespan.
func (w *World) runPE(c *Comm, jb *worldJob) (outcome peOutcome) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case jobCancelled:
			outcome = peCancelled
		case jobAborted:
			outcome = peAborted
		default:
			c.recordPanicFault(r)
			jb.abortReq.Store(true)
			// A false return means the barrier was poisoned while draining:
			// the world is already broken and released, nothing further to
			// coordinate.
			c.drainAbort()
			outcome = peAborted
		}
	}()
	jb.f(c)
	c.closeOut()
	c.flush()
	if c.ring != nil {
		// Drain this PE's spans into the job's trace. Graceful completions
		// only, mirroring the metrics contract: a cancelled or aborted PE's
		// partial timeline is discarded with its partial clock.
		jb.tr.Collect(c.ring)
	}
	return peDone
}

// Start makes the world persistent: one goroutine per PE is spawned now and
// parks between jobs, so repeated Run/RunJob calls reuse the same
// goroutines instead of spawning p of them per job. Idempotent. Not safe
// for concurrent use with Run/Close.
func (w *World) Start() {
	if w.pes != nil {
		return
	}
	w.pes = make([]chan *worldJob, w.p)
	for r := w.lo; r < w.hi; r++ {
		// Capacity 1 makes the dispatch loop non-blocking: a PE always
		// consumes job k before signalling job k's completion, so when job
		// k+1 is submitted (necessarily after k completed) every buffer is
		// empty and the p sends cost p channel pushes, not p rendezvous.
		// Remote ranks keep a nil channel: their goroutines live in their
		// own processes.
		ch := make(chan *worldJob, 1)
		w.pes[r] = ch
		go w.peLoop(r, ch)
	}
}

// peLoop is one parked PE of a persistent world: it waits for the next job,
// runs its share, and parks again until Close.
func (w *World) peLoop(rank int, jobs <-chan *worldJob) {
	for jb := range jobs {
		w.runJobOnPE(rank, jb)
	}
}

// Close releases a persistent world's parked PE goroutines. Idempotent; a
// never-started world closes trivially. The world remains usable in
// spawn-per-run mode afterwards. Must not be called while a job is running
// (an abandoned zombie PE of a BROKEN world is fine: it holds only its own
// job's state, and its channel close is observed whenever it finally
// parks).
func (w *World) Close() {
	if w.pes == nil {
		return
	}
	for _, ch := range w.pes {
		if ch != nil {
			close(ch)
		}
	}
	w.pes = nil
}
