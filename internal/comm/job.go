package comm

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the world's job engine: how an SPMD program is executed on
// the PEs, how a persistent world keeps its PE goroutines parked between
// jobs (Start/Close), how a job's context cancels the whole world
// cooperatively at collective boundaries, and how rank 0 streams progress
// events to an Observer.
//
// # Cancellation protocol
//
// A context cannot interrupt a PE mid-computation — PEs are plain
// goroutines running algorithm code — but every PE passes through the
// collective barrier many times per job, and that barrier already has a
// moment when one PE acts on behalf of a fully blocked world: the
// pre-release combine (see preRelease). Cancellation therefore works in
// three steps:
//
//  1. A watcher goroutine turns ctx.Done() into w.cancelled (an atomic
//     flag) at an arbitrary moment.
//  2. The pre-release combiner of the next superstep reads the flag ONCE
//     and publishes the verdict in the superstep's combineSlot, while all
//     PEs are still blocked in the barrier. Reading once is what makes the
//     decision consistent: had each PE polled the flag itself, two PEs of
//     the same superstep could disagree and the barrier would deadlock.
//  3. After release, every PE of the superstep observes the same verdict
//     and unwinds its job with a jobCancelled panic, recovered at the top
//     of the PE's job runner. All PEs exit together at the same collective,
//     no goroutine leaks, and RunJob returns ctx.Err().
//
// A job that performs no further collectives after the flag is set simply
// completes; cancellation is cooperative and only observed at collective
// boundaries.

// EventKind discriminates observer events.
type EventKind uint8

const (
	// EventPhaseBegin and EventPhaseEnd bracket a named algorithm phase
	// (the paper's Fig. 6 breakdown) on rank 0.
	EventPhaseBegin EventKind = iota + 1
	EventPhaseEnd
	// EventRound fires at the top of each distributed Borůvka round with
	// the global vertex count entering the round.
	EventRound
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventPhaseBegin:
		return "phaseBegin"
	case EventPhaseEnd:
		return "phaseEnd"
	case EventRound:
		return "round"
	}
	return "(unknown)"
}

// Event is one progress notification from a running job.
type Event struct {
	Kind EventKind
	// Phase is the phase name for phase events.
	Phase string
	// Round is the 1-based distributed round number for round events;
	// Vertices the global vertex count entering it.
	Round    int
	Vertices int
	// Clock is rank 0's modeled time when the event fired.
	Clock float64
}

// Observer receives progress events from rank 0 of a running job. It is
// invoked synchronously on the PE-0 goroutine: implementations must be fast,
// must not block, and must not call back into the world.
type Observer func(Event)

// emit delivers an event to the job's observer, if any (rank 0 only).
func (c *Comm) emit(ev Event) {
	if c.obs == nil {
		return
	}
	ev.Clock = c.clock
	c.obs(ev)
}

// EmitRound reports the start of distributed round `round` (1-based) with
// the global vertex count entering it. Algorithms call it once per round;
// it charges nothing and is a no-op without an observer.
func (c *Comm) EmitRound(round, vertices int) {
	c.emit(Event{Kind: EventRound, Round: round, Vertices: vertices})
}

// jobCancelled unwinds a PE whose job's context expired; recovered in runPE.
type jobCancelled struct{}

// worldJob is one SPMD program handed to the parked PEs of a persistent
// world.
type worldJob struct {
	f         func(*Comm)
	wg        *sync.WaitGroup
	cancelled *atomic.Int32
}

// Run executes f as an SPMD program: every PE runs f with its own Comm
// handle, and Run returns when all have finished. It may be called
// repeatedly; statistics accumulate across calls. On a persistent world
// (Start) the parked PE goroutines execute the job; otherwise one goroutine
// per PE is spawned for this call only.
func (w *World) Run(f func(c *Comm)) {
	_ = w.RunJob(context.Background(), nil, f)
}

// RunJob is Run with a cancellation context and a progress observer (both
// optional). If ctx expires while the job is running, all PEs abandon the
// job together at the next collective boundary and RunJob returns ctx.Err();
// a job that completes before the cancellation is observed returns nil. obs
// receives rank 0's phase/round events. A World runs one job at a time;
// serializing concurrent callers is the caller's concern (see the public
// Machine API).
func (w *World) RunJob(ctx context.Context, obs Observer, f func(*Comm)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Arm the watcher only for cancellable contexts; Background costs
	// nothing.
	var stop, watcherDone chan struct{}
	if done := ctx.Done(); done != nil {
		stop = make(chan struct{})
		watcherDone = make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-done:
				w.cancelled.Store(true)
			case <-stop:
			}
		}()
	}
	w.obs = obs
	cancelledPEs := w.dispatch(f)
	w.obs = nil
	if stop != nil {
		// Join the watcher before clearing the flag: a store racing past
		// the clear would poison the next job's first superstep.
		close(stop)
		<-watcherDone
	}
	w.cancelled.Store(false)
	// Drop deposit references so the last collective's payloads don't stay
	// reachable through the world between (or after) jobs, and clear any
	// published cancellation verdict.
	for b := range w.boards {
		for i := range w.boards[b] {
			w.boards[b][i].val = nil
		}
		w.combined[b].val = nil
		w.combined[b].cancelled = false
	}
	if cancelledPEs > 0 {
		return ctx.Err()
	}
	return nil
}

// dispatch hands f to every PE — parked goroutines on a persistent world,
// freshly spawned ones otherwise — waits for all of them, and reports how
// many unwound via cancellation (0 or p: the verdict is per-superstep).
func (w *World) dispatch(f func(*Comm)) int {
	var wg sync.WaitGroup
	var cancelled atomic.Int32
	wg.Add(w.p)
	if w.pes != nil {
		jb := &worldJob{f: f, wg: &wg, cancelled: &cancelled}
		for _, ch := range w.pes {
			ch <- jb
		}
	} else {
		for r := 0; r < w.p; r++ {
			go func(rank int) {
				defer wg.Done()
				if w.runPE(w.newComm(rank), f) {
					cancelled.Add(1)
				}
			}(r)
		}
	}
	wg.Wait()
	return int(cancelled.Load())
}

// runPE runs one PE's share of a job and reports whether it was unwound by
// cancellation. Metrics of cancelled PEs are discarded — a partial clock is
// not a makespan. Any other panic (SPMD divergence, algorithm bug)
// propagates and crashes the program, exactly as before.
func (w *World) runPE(c *Comm, f func(*Comm)) (cancelled bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(jobCancelled); ok {
				cancelled = true
				return
			}
			panic(r)
		}
	}()
	f(c)
	c.flush()
	return false
}

// Start makes the world persistent: one goroutine per PE is spawned now and
// parks between jobs, so repeated Run/RunJob calls reuse the same
// goroutines instead of spawning p of them per job. Idempotent. Not safe
// for concurrent use with Run/Close.
func (w *World) Start() {
	if w.pes != nil {
		return
	}
	w.pes = make([]chan *worldJob, w.p)
	for r := range w.pes {
		// Capacity 1 makes the dispatch loop non-blocking: a PE always
		// consumes job k before signalling job k's completion, so when job
		// k+1 is submitted (necessarily after k completed) every buffer is
		// empty and the p sends cost p channel pushes, not p rendezvous.
		ch := make(chan *worldJob, 1)
		w.pes[r] = ch
		go w.peLoop(r, ch)
	}
}

// peLoop is one parked PE of a persistent world: it waits for the next job,
// runs its share, and parks again until Close.
func (w *World) peLoop(rank int, jobs <-chan *worldJob) {
	for jb := range jobs {
		if w.runPE(w.newComm(rank), jb.f) {
			jb.cancelled.Add(1)
		}
		jb.wg.Done()
	}
}

// Close releases a persistent world's parked PE goroutines. Idempotent; a
// never-started world closes trivially. The world remains usable in
// spawn-per-run mode afterwards. Must not be called while a job is running.
func (w *World) Close() {
	if w.pes == nil {
		return
	}
	for _, ch := range w.pes {
		close(ch)
	}
	w.pes = nil
}
