package comm

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunJobCancelExitsTogether: when a job's context is cancelled, every
// PE must abandon the job at the SAME collective boundary — the verdict is
// per-superstep, decided once by the pre-release combiner — and RunJob must
// return ctx.Err().
func TestRunJobCancelExitsTogether(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var iters [p]int
	err := w.RunJob(ctx, nil, func(c *Comm) {
		for i := 0; i < 10000; i++ {
			if c.Rank() == 0 && i == 3 {
				cancel()
			}
			Barrier(c)
			iters[c.Rank()]++
		}
	})
	if err != context.Canceled {
		t.Fatalf("RunJob = %v, want context.Canceled", err)
	}
	for r := 1; r < p; r++ {
		if iters[r] != iters[0] {
			t.Fatalf("PEs exited at different supersteps: %v", iters)
		}
	}
	if iters[0] < 3 || iters[0] >= 10000 {
		t.Fatalf("cancellation window implausible: %d iterations", iters[0])
	}
}

// TestRunJobAlreadyCancelled: an expired context never starts the job.
func TestRunJobAlreadyCancelled(t *testing.T) {
	w := NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Bool{}
	if err := w.RunJob(ctx, nil, func(c *Comm) { ran.Store(true) }); err != context.Canceled {
		t.Fatalf("RunJob = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("job ran despite expired context")
	}
}

// TestRunJobLateCancelCompletes: a cancellation arriving after the job's
// last collective does not retract a completed result.
func TestRunJobLateCancelCompletes(t *testing.T) {
	w := NewWorld(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sum := 0
	err := w.RunJob(ctx, nil, func(c *Comm) {
		s := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
		if c.Rank() == 0 {
			sum = s
		}
	})
	cancel()
	if err != nil {
		t.Fatalf("RunJob = %v, want nil", err)
	}
	if sum != 0+1+2+3 {
		t.Fatalf("sum = %d", sum)
	}
}

// TestPersistentWorldReuse: a started world runs many jobs on its parked
// PE goroutines with correct results, survives a cancelled job in between,
// and Close returns the goroutine count to baseline.
func TestPersistentWorldReuse(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const p = 16
	w := NewWorld(p)
	w.Start()
	for job := 0; job < 5; job++ {
		var got int
		w.Run(func(c *Comm) {
			s := Allreduce(c, c.Rank()+job, func(a, b int) int { return a + b })
			if c.Rank() == 0 {
				got = s
			}
		})
		want := p*job + p*(p-1)/2
		if got != want {
			t.Fatalf("job %d: allreduce = %d, want %d", job, got, want)
		}
	}
	// A cancelled job must not wedge the parked PEs.
	ctx, cancel := context.WithCancel(context.Background())
	err := w.RunJob(ctx, nil, func(c *Comm) {
		for i := 0; i < 10000; i++ {
			if c.Rank() == 0 && i == 2 {
				cancel()
			}
			Barrier(c)
		}
	})
	if err != context.Canceled {
		t.Fatalf("cancelled job on persistent world: %v", err)
	}
	var after int
	w.Run(func(c *Comm) {
		s := Allreduce(c, 1, func(a, b int) int { return a + b })
		if c.Rank() == 0 {
			after = s
		}
	})
	if after != p {
		t.Fatalf("post-cancel job: %d, want %d", after, p)
	}
	w.Close()
	w.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive, want <= %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistentMatchesTransient: the same SPMD program gives identical
// modeled clocks and stats whether the world spawns per-run goroutines or
// dispatches to parked ones.
func TestPersistentMatchesTransient(t *testing.T) {
	prog := func(c *Comm) {
		x := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
		v := AllreduceVec(c, []int{c.Rank(), x}, func(a, b int) int { return a + b })
		_ = Alltoall(c, make([][]int, c.P()))
		_ = v
	}
	run := func(persistent bool) (float64, Stats) {
		w := NewWorld(8)
		if persistent {
			w.Start()
			defer w.Close()
		}
		w.Run(prog)
		return w.MaxClock(), w.TotalStats()
	}
	tc, ts := run(false)
	pc, ps := run(true)
	if tc != pc || ts != ps {
		t.Fatalf("transient (%v, %+v) != persistent (%v, %+v)", tc, ts, pc, ps)
	}
}

// TestObserverRankZeroOnly: events come only from rank 0's phases, in
// order, with the modeled clock attached.
func TestObserverRankZeroOnly(t *testing.T) {
	w := NewWorld(4)
	var events []Event
	err := w.RunJob(context.Background(), func(ev Event) { events = append(events, ev) }, func(c *Comm) {
		c.Phase("alpha", func() {
			Barrier(c)
		})
		c.EmitRound(1, 42)
		c.Phase("beta", func() {
			Barrier(c)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind  EventKind
		phase string
		round int
	}{
		{EventPhaseBegin, "alpha", 0},
		{EventPhaseEnd, "alpha", 0},
		{EventRound, "", 1},
		{EventPhaseBegin, "beta", 0},
		{EventPhaseEnd, "beta", 0},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(want))
	}
	for i, ev := range events {
		if ev.Kind != want[i].kind || ev.Phase != want[i].phase || ev.Round != want[i].round {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want[i])
		}
		if i > 0 && ev.Clock < events[i-1].Clock {
			t.Fatalf("clock went backwards at event %d: %v", i, events)
		}
	}
	if events[2].Vertices != 42 {
		t.Fatalf("round event payload: %+v", events[2])
	}
}
