// Package comm simulates the distributed-memory machine model of the paper
// (§II-A): p processing elements (PEs) with strictly private memory,
// single-ported point-to-point communication, and the usual collective
// operations. Each PE is a goroutine; PEs interact only through the
// primitives of this package, so the communication structure of the
// algorithms — who sends what to whom in which round — is exactly that of
// the MPI original, with shared memory acting only as the wire.
//
// Two clocks run side by side:
//
//   - Wall time: real elapsed time of the simulation, reported per phase.
//   - Modeled time: the α-β cost model of the paper. Sending a message of
//     ℓ bytes costs α + βℓ; collectives charge the §II-A complexities
//     (e.g. α·log p + βℓ for broadcast/reduce, α·p + βℓ for a direct
//     personalized all-to-all with bottleneck volume ℓ). Local computation
//     charges a per-operation cost divided by the PE's thread count.
//
// Collectives synchronize modeled clocks BSP-style: every participant
// leaves the operation at max(entry clocks) + operation cost, so stragglers
// propagate exactly as they would on a real machine. Phase timers attribute
// modeled and wall time to named phases; the World aggregates the maximum
// over PEs, which is the quantity all the paper's figures plot.
//
// # Exchange protocol
//
// Every collective is one superstep over an epoch-stamped, double-buffered
// blackboard (see DESIGN.md): each PE publishes its deposit into
// board[epoch%2], all PEs meet at a single tree-barrier arrival, and then
// each PE reads the deposits it needs. No departure barrier is required:
// epoch e+2 is the earliest moment board[e%2] is written again, and no PE
// can reach epoch e+2 before every PE has passed the barrier of epoch e+1 —
// which it can only do after finishing its epoch-e reads. Collectives whose
// deposits reference caller-owned arrays stage a copy (or hand ownership to
// the reader) so a caller mutating its buffers right after a collective
// returns can never race a slower PE's read of epoch e.
package comm

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kamsta/internal/arena"
	"kamsta/internal/enc"
	"kamsta/internal/faultinject"
	"kamsta/internal/obs"
	"kamsta/internal/transport"
	"kamsta/internal/transport/shm"
)

// CostModel holds the machine parameters of the α-β model.
type CostModel struct {
	// Alpha is the startup overhead per message in seconds.
	Alpha float64
	// Beta is the transfer time per byte in seconds.
	Beta float64
	// Compute is the cost of one local edge-granularity operation in
	// seconds; parallel sections divide it by the PE's thread count.
	Compute float64
}

// DefaultCostModel returns parameters of the same order as the paper's
// machine (SuperMUC-NG: OmniPath 100 Gbit/s, ~10 µs MPI latency).
func DefaultCostModel() CostModel {
	return CostModel{
		Alpha:   10e-6,
		Beta:    1e-9,
		Compute: 2e-9,
	}
}

// World is a simulated machine of P PEs sharing a cost model. Create one
// with NewWorld, then call Run with the SPMD program.
type World struct {
	p       int
	threads int
	cost    CostModel

	// tr is the substrate every collective bottoms out on: one Exchange per
	// superstep per local rank (deposit, meet everyone, read the combined
	// slot). The default is the in-process shared-memory substrate
	// (internal/transport/shm) — the original epoch-stamped double-buffered
	// blackboard under a fan-in tree barrier, extracted verbatim; a TCP
	// transport (internal/transport/tcp) spans processes with the same
	// superstep protocol. The world does NOT own the transport: whoever
	// built it (WithTransport) closes it; only the default shm substrate is
	// world-created, and it needs no closing.
	tr transport.Transport
	// lo, hi is the contiguous rank range this process hosts (tr.Local());
	// [0, p) on a single-process world. wire is true when any rank is
	// remote: collectives then attach a value codec to every deposit so the
	// transport can serialize it.
	lo, hi int
	wire   bool

	mu     sync.Mutex
	phases map[string]*PhaseTime // max-aggregated over PEs
	stats  Stats
	clocks []float64 // final modeled clock per PE, for the last Run

	// pes holds the per-rank job channels of a persistent world (Start);
	// nil means every Run spawns fresh PE goroutines. Per-job state
	// (cancellation request, observer, injector, fault records) lives on
	// the worldJob, not the world, so an abandoned job's stragglers can
	// never race the next job's setup.
	pes []chan *worldJob

	// progress counts completed collective supersteps across the world's
	// lifetime (incremented once per superstep by the pre-release
	// combiner); the stall watchdog samples it as the job's heartbeat.
	// arrived[r] is rank r's superstep arrival high-water mark — how many
	// barriers it has entered — read by the watchdog to report which ranks
	// reached a stalled superstep and which did not. Only local ranks
	// arrive; remote ranks always diagnose as Missing (their own process
	// runs its own watchdog).
	progress atomic.Uint64
	arrived  []arrival

	// broken marks a world whose containment protocol failed — a PE
	// goroutine was lost, a collective stalled past its deadline, or an
	// abort drain could not complete. A broken world's barrier is poisoned
	// and it must not run further jobs; the owner rebuilds it (see the
	// public Machine API).
	broken atomic.Bool

	// arenas holds each rank's scratch arena. Owned by the world (not the
	// per-job Comm) so the algorithms' per-round working memory survives
	// across rounds AND across jobs on a persistent machine; see
	// Comm.Scratch.
	arenas []*arena.Arena

	// wm holds the world's resolved metric instruments (nil unless built
	// WithMetrics); see metrics.go for the update discipline.
	wm *worldMetrics

	// rings holds each rank's span ring for traced jobs, world-owned like
	// the arenas so tracing a steady-state job allocates nothing: rank r's
	// ring is created on r's first traced job and recycled afterwards.
	// Only rank r's PE goroutine touches rings[r].
	rings []*obs.Ring
}

// arrival is one rank's barrier-arrival counter, padded so watchdog reads
// never contend with neighbouring ranks' stores.
type arrival struct {
	v atomic.Int64
	_ [56]byte
}

// deposit is one PE's contribution to a collective: the transport layer's
// Deposit, padded there so adjacent ranks' slots never share a cache line.
type deposit = transport.Deposit

// Superstep verdicts, published in the combined slot by the completing
// party (see commHost.Complete). Exactly one process reads the asynchronous
// request flags per superstep; every PE acts on the published verdict,
// which is what makes the whole world unwind at the same collective.
const (
	// verdictRun continues the job.
	verdictRun = transport.VerdictRun
	// verdictCancel unwinds the job with the cancellation sentinel (the
	// job's context expired).
	verdictCancel = transport.VerdictCancel
	// verdictAbort unwinds the job with the abort sentinel (a PE faulted
	// and requested containment, or a watchdog fired).
	verdictAbort = transport.VerdictAbort
)

// Option configures a World.
type Option func(*World)

// WithCost sets the cost model.
func WithCost(cm CostModel) Option {
	return func(w *World) { w.cost = cm }
}

// WithTransport runs the world over the given substrate instead of the
// default in-process shared-memory one. The transport's total rank count
// must equal the world's p; only the transport's local rank range is hosted
// by this world's PE goroutines. The caller keeps ownership: the world
// never closes a transport it was given.
func WithTransport(t transport.Transport) Option {
	return func(w *World) { w.tr = t }
}

// WithThreads sets the number of intra-PE threads every PE reports
// (the paper's OpenMP threads per MPI process). Default 1.
func WithThreads(t int) Option {
	return func(w *World) {
		if t < 1 {
			t = 1
		}
		w.threads = t
	}
}

// NewWorld creates a machine with p PEs. It panics if p < 1.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", p))
	}
	w := &World{
		p:       p,
		threads: 1,
		cost:    DefaultCostModel(),
		phases:  make(map[string]*PhaseTime),
		clocks:  make([]float64, p),
		arrived: make([]arrival, p),
		arenas:  make([]*arena.Arena, p),
		rings:   make([]*obs.Ring, p),
	}
	for i := range w.arenas {
		w.arenas[i] = arena.New()
	}
	for _, o := range opts {
		o(w)
	}
	if w.tr == nil {
		w.tr = shm.New(p)
	}
	if w.tr.P() != p {
		panic(fmt.Sprintf("comm: transport spans %d ranks, world wants %d", w.tr.P(), p))
	}
	w.lo, w.hi = w.tr.Local()
	w.wire = w.lo != 0 || w.hi != p
	return w
}

// P reports the machine width.
func (w *World) P() int { return w.p }

// Cost reports the configured cost model.
func (w *World) Cost() CostModel { return w.cost }

// newComm builds rank's PE handle for one job. Only rank 0 carries the
// job's observer, so every phase/round event fires exactly once.
func (w *World) newComm(rank int, jb *worldJob) *Comm {
	c := &Comm{
		rank:    rank,
		w:       w,
		jb:      jb,
		inj:     jb.inj,
		threads: w.threads,
		wire:    w.wire,
		phases:  make(map[string]*PhaseTime),
	}
	c.host = commHost{c}
	if rank == 0 {
		c.obs = jb.obs
	}
	if w.wm != nil {
		c.m = &w.wm.ranks[rank]
	}
	if jb.tr != nil {
		c.ring = w.ringFor(rank, jb.tr.RingCap())
		c.traceEpoch = jb.traceEpoch
	}
	return c
}

// ringFor returns rank's span ring, reset for a new job; created on first
// use (or when the requested capacity changed). Called from the PE's own
// goroutine only.
func (w *World) ringFor(rank, capacity int) *obs.Ring {
	r := w.rings[rank]
	if r == nil || r.Cap() != capacity {
		r = obs.NewRing(capacity)
		w.rings[rank] = r
	}
	r.Reset()
	return r
}

// PhaseTime is the accumulated cost of one named phase.
type PhaseTime struct {
	Modeled float64       // modeled seconds (max over PEs when aggregated)
	Wall    time.Duration // wall seconds (max over PEs when aggregated)
	// Stats is the traffic charged during the phase, excluding nested
	// phases (summed over PEs when aggregated — times take the max because
	// PEs overlap, traffic sums because every byte is distinct).
	Stats Stats
}

// Phases returns the per-phase times, aggregated as the maximum over all
// PEs, reflecting the bulk-synchronous critical path.
func (w *World) Phases() map[string]PhaseTime {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]PhaseTime, len(w.phases))
	for k, v := range w.phases {
		out[k] = *v
	}
	return out
}

// PhaseNames returns the phase names in sorted order.
func (w *World) PhaseNames() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.phases))
	for k := range w.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MaxClock reports the maximum modeled clock over all PEs after the last
// Run — the modeled makespan.
func (w *World) MaxClock() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := 0.0
	for _, c := range w.clocks {
		m = math.Max(m, c)
	}
	return m
}

// TotalStats returns traffic statistics summed over all PEs.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetMetrics clears accumulated phase times, stats and clocks, keeping
// the machine itself reusable (e.g. between warm-up and measured rounds).
func (w *World) ResetMetrics() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.phases = make(map[string]*PhaseTime)
	w.stats = Stats{}
	for i := range w.clocks {
		w.clocks[i] = 0
	}
}

// Stats counts communication traffic.
type Stats struct {
	Messages    int64 // point-to-point messages (or message slots in collectives)
	Bytes       int64 // payload bytes moved
	Collectives int64 // collective operations executed
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Collectives += o.Collectives
}

// minus returns s - o componentwise (for attributing traffic deltas to
// phases).
func (s Stats) minus(o Stats) Stats {
	return Stats{
		Messages:    s.Messages - o.Messages,
		Bytes:       s.Bytes - o.Bytes,
		Collectives: s.Collectives - o.Collectives,
	}
}

// Comm is a PE's handle to the machine: its rank, its modeled clock, its
// phase timers and its traffic counters. A Comm must only be used by the
// goroutine it was handed to.
type Comm struct {
	rank    int
	w       *World
	jb      *worldJob // the job this handle belongs to
	threads int
	epoch   uint64 // collective supersteps completed; selects the board buffer

	clock  float64 // modeled seconds since Run start
	stats  Stats
	phases map[string]*PhaseTime

	phaseStack []phaseFrame
	// round is the last distributed round this PE reported via EmitRound,
	// kept for fault diagnostics (JobError.Round).
	round int
	// inj is the job's fault injector (nil outside chaos runs), checked at
	// every collective boundary and exposed to graphio via FaultPoint.
	inj *faultinject.Injector

	// host is this PE's transport.Host, boxed once so passing it to the
	// transport on every collective does not allocate. pending is the
	// collective-specific combine step the superstep's completion runs if
	// this PE ends up completing the barrier's root. wire mirrors the
	// world's flag: collectives attach value codecs to deposits only when
	// some rank is remote.
	host    transport.Host
	pending func(board []deposit) any
	wire    bool

	// a2aStage is reusable per-parity staging for the all-to-all frame and
	// its slot array (see RawAlltoall; holds a *a2aFrame[T]). Reuse at
	// epoch e+2 is safe for the same reason the boards are: every reader
	// of epoch e finished before anyone passed the barrier of epoch e+1.
	a2aStage [2]any

	// obs receives phase/round events; set on rank 0 only (see newComm).
	obs Observer

	// m points at this rank's resolved metric instruments (nil when the
	// world was built without WithMetrics); ring is this rank's span ring
	// for a traced job (nil otherwise), with timestamps relative to
	// traceEpoch. Both are strictly wall-side: nothing they feed is read
	// by the cost model.
	m          *rankMetrics
	ring       *obs.Ring
	traceEpoch time.Time
}

type phaseFrame struct {
	name       string
	clockAt    float64
	wallAt     time.Time
	statsAt    Stats         // traffic counters at phase entry
	childTime  float64       // modeled time consumed by nested phases
	childWall  time.Duration // wall time consumed by nested phases
	childStats Stats         // traffic consumed by nested phases
}

// Rank reports this PE's rank in 0..P-1.
func (c *Comm) Rank() int { return c.rank }

// P reports the machine width.
func (c *Comm) P() int { return c.w.p }

// Threads reports the number of intra-PE threads (for dividing parallel
// compute charges).
func (c *Comm) Threads() int { return c.threads }

// Scratch returns this PE's scratch arena: world-owned, grow-only working
// memory recycled across Borůvka rounds and across jobs. Only the goroutine
// running this rank's share of the current job may use it.
func (c *Comm) Scratch() *arena.Arena { return c.w.arenas[c.rank] }

// Clock returns this PE's current modeled time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Cost returns the machine's cost model.
func (c *Comm) Cost() CostModel { return c.w.cost }

// ChargeCompute adds the modeled cost of ops local operations executed by
// all threads in parallel.
func (c *Comm) ChargeCompute(ops int) {
	c.clock += float64(ops) * c.w.cost.Compute / float64(c.threads)
}

// ChargeComputeSeq adds the modeled cost of ops local operations executed
// sequentially (not divided by the thread count).
func (c *Comm) ChargeComputeSeq(ops int) {
	c.clock += float64(ops) * c.w.cost.Compute
}

// ResetLocalMetrics zeroes this PE's modeled clock, phase timers and
// traffic counters. Use together with World.ResetMetrics (and barriers on
// both sides) to exclude setup work — e.g. graph generation — from a
// measurement. Panics if called inside an open phase.
func (c *Comm) ResetLocalMetrics() {
	if len(c.phaseStack) != 0 {
		panic("comm: ResetLocalMetrics inside an open phase")
	}
	c.clock = 0
	c.stats = Stats{}
	c.phases = make(map[string]*PhaseTime)
}

// ChargeComm adds the modeled cost of msgs message startups plus bytes
// payload bytes. Communication strategies built on RawExchange use this for
// self-accounting.
func (c *Comm) ChargeComm(msgs int, bytes int) {
	c.clock += float64(msgs)*c.w.cost.Alpha + float64(bytes)*c.w.cost.Beta
	c.stats.Messages += int64(msgs)
	c.stats.Bytes += int64(bytes)
	if c.m != nil {
		c.m.messages.Add(int64(msgs))
		c.m.bytes.Add(int64(bytes))
	}
}

// PhaseBegin opens a named phase. Phases may nest; time spent in nested
// phases is attributed to the nested phase only.
func (c *Comm) PhaseBegin(name string) {
	c.note(EventPhaseBegin, name, 0, 0)
	c.phaseStack = append(c.phaseStack, phaseFrame{
		name:    name,
		clockAt: c.clock,
		wallAt:  time.Now(),
		statsAt: c.stats,
	})
}

// PhaseEnd closes the innermost open phase.
func (c *Comm) PhaseEnd() {
	n := len(c.phaseStack)
	if n == 0 {
		panic("comm: PhaseEnd without PhaseBegin")
	}
	fr := c.phaseStack[n-1]
	c.phaseStack = c.phaseStack[:n-1]
	modeled := c.clock - fr.clockAt - fr.childTime
	wall := time.Since(fr.wallAt) - fr.childWall
	pt := c.phases[fr.name]
	if pt == nil {
		pt = &PhaseTime{}
		c.phases[fr.name] = pt
	}
	pt.Modeled += modeled
	pt.Wall += wall
	pt.Stats.add(c.stats.minus(fr.statsAt).minus(fr.childStats))
	if n >= 2 {
		parent := &c.phaseStack[n-2]
		parent.childTime += c.clock - fr.clockAt
		parent.childWall += time.Since(fr.wallAt)
		parent.childStats.add(c.stats.minus(fr.statsAt))
	}
	c.note(EventPhaseEnd, fr.name, 0, 0)
}

// Phase runs f inside a named phase.
func (c *Comm) Phase(name string, f func()) {
	c.PhaseBegin(name)
	defer c.PhaseEnd()
	f()
}

// flush merges this PE's metrics into the world (max for times, sum for
// traffic) and refreshes this rank's export gauges.
func (c *Comm) flush() {
	w := c.w
	w.mu.Lock()
	for name, pt := range c.phases {
		agg := w.phases[name]
		if agg == nil {
			agg = &PhaseTime{}
			w.phases[name] = agg
		}
		agg.Modeled = math.Max(agg.Modeled, pt.Modeled)
		if pt.Wall > agg.Wall {
			agg.Wall = pt.Wall
		}
		agg.Stats.add(pt.Stats)
	}
	w.stats.add(c.stats)
	if c.clock > w.clocks[c.rank] {
		w.clocks[c.rank] = c.clock
	}
	w.mu.Unlock()
	if c.m != nil {
		w.wm.refreshGauges(w, c.rank, c.clock)
	}
}

// log2Ceil returns ceil(log2(n)) with log2Ceil(1) == 0 and a minimum of 1
// for n > 1.
func log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

// opTag identifies which collective (and, where needed, which internal
// round of it) a deposit belongs to: the low byte is the opcode, the rest an
// opcode-specific argument. Tags used to be strings; a word-sized tag keeps
// the SPMD divergence check off the allocator (the butterfly rounds of
// AllreduceVec previously fmt.Sprintf'd a fresh tag per round per PE).
type opTag uint32

const (
	opNone uint8 = iota
	opBarrier
	opBcast
	opBcastSlice
	opAllreduce
	opARVFold
	opARVBfly
	opARVUnfold
	opExScan
	opAllgather
	opAllgatherConcat
	opAlltoall
	opPairExchange
	opGroupAllreduce
	opJobEnd
)

var opNames = [...]string{
	opNone:            "(none)",
	opBarrier:         "Barrier",
	opBcast:           "Bcast",
	opBcastSlice:      "BcastSlice",
	opAllreduce:       "Allreduce",
	opARVFold:         "AllreduceVec/fold",
	opARVBfly:         "AllreduceVec/butterfly",
	opARVUnfold:       "AllreduceVec/unfold",
	opExScan:          "ExScan",
	opAllgather:       "Allgather",
	opAllgatherConcat: "AllgatherConcat",
	opAlltoall:        "Alltoall",
	opPairExchange:    "PairExchange",
	opGroupAllreduce:  "GroupAllreduce",
	opJobEnd:          "JobEnd",
}

func mkTag(op uint8, arg int) opTag { return opTag(op) | opTag(arg)<<8 }

func (t opTag) String() string {
	op := uint8(t)
	name := "(invalid)"
	if int(op) < len(opNames) {
		name = opNames[op]
	}
	if arg := t >> 8; arg != 0 {
		return fmt.Sprintf("%s[%d]", name, arg)
	}
	return name
}

// commHost is a PE's transport.Host: the completion side of the superstep
// protocol, called back by the transport while every local rank is blocked
// in the barrier. On the shared-memory substrate Complete is exactly the
// old pre-release combine step; on a distributed substrate the leader's
// completion hook feeds it the remote processes' flags and the followers
// apply the leader's verdict via CompleteWith.
type commHost struct{ c *Comm }

// Flags snapshots this process's asynchronous job-control state for
// transmission to the verdict-deciding process: the cancel/abort request
// flags and any faults not yet shipped.
func (h commHost) Flags() transport.Flags {
	jb := h.c.jb
	return transport.Flags{
		Cancel: jb.cancelReq.Load(),
		Abort:  jb.abortReq.Load(),
		Faults: jb.snapshotFaults(),
	}
}

// Complete is the pre-release combine step, run by whichever PE completes
// the barrier's root while every other PE is still blocked inside Wait. It
// folds the p deposited clocks into one global maximum — turning the BSP
// clock synchronization every full-world collective performs from O(p) work
// per PE into O(p) work total — and runs the collective's pending combine
// closure (if any) to reduce the deposited values once on behalf of
// everyone. All PEs deposit equivalent closures (SPMD), so it does not
// matter whose runs.
//
// Complete is also the containment choke point: one read of the job's
// asynchronous cancel/abort request flags — unioned with the remote
// processes' shipped flags — becomes the superstep's verdict, and a panic
// inside the combine closure is recovered here (via runPending), recorded
// as a fault and converted into an abort verdict, so even a faulting
// reduction operator releases the barrier coherently.
func (h commHost) Complete(board []deposit, remote transport.Flags) transport.Slot {
	c := h.c
	if len(remote.Faults) > 0 {
		h.RemoteFaults(remote.Faults)
	}
	m := board[0].Clock
	for i := 1; i < len(board); i++ {
		if board[i].Clock > m {
			m = board[i].Clock
		}
	}
	slot := transport.Slot{ClockMax: m}
	verdict := verdictRun
	if c.jb.abortReq.Load() || remote.Abort {
		verdict = verdictAbort
	} else if c.jb.cancelReq.Load() || remote.Cancel {
		verdict = verdictCancel
	}
	if c.pending != nil && verdict == verdictRun {
		if val, ok := c.runPending(board); ok {
			slot.Val = val
		} else {
			verdict = verdictAbort
		}
	}
	slot.Verdict = verdict
	c.w.progress.Add(1)
	return slot
}

// CompleteWith is Complete under a verdict decided elsewhere (a follower
// process applying the leader's reply): fold the clocks, run the combine
// closure locally under that verdict, publish. A combine panic here cannot
// change the already-decided verdict globally, so it aborts locally — the
// recorded fault and abort request reach the leader with the next
// superstep's flags, unwinding the whole world one superstep later.
func (h commHost) CompleteWith(board []deposit, verdict uint8) transport.Slot {
	c := h.c
	m := board[0].Clock
	for i := 1; i < len(board); i++ {
		if board[i].Clock > m {
			m = board[i].Clock
		}
	}
	slot := transport.Slot{ClockMax: m}
	if c.pending != nil && verdict == verdictRun {
		if val, ok := c.runPending(board); ok {
			slot.Val = val
		} else {
			verdict = verdictAbort
		}
	}
	slot.Verdict = verdict
	c.w.progress.Add(1)
	return slot
}

// RemoteFaults records faults shipped from another process so they
// participate in the job's primary-error selection alongside local ones.
func (h commHost) RemoteFaults(fs []transport.RemoteFault) {
	for i := range fs {
		h.c.jb.recordFault(remoteJobError(&fs[i]))
	}
}

// TransportFault records a transport-level failure (lost connection,
// corrupt frame, exceeded deadline) as this job's fault and marks the world
// broken WITHOUT poisoning it: the transport publishes an abort slot for
// the current superstep, so the local ranks still unwind coherently through
// the normal verdict path, and the poison hammer stays reserved for worlds
// that can no longer complete a superstep at all.
func (h commHost) TransportFault(err error) {
	c := h.c
	je := &JobError{
		Kind:       FaultTransport,
		Rank:       c.rank,
		Superstep:  int(c.epoch),
		Round:      c.round,
		PanicValue: err,
	}
	if n := len(c.phaseStack); n > 0 {
		je.Phase = c.phaseStack[n-1].name
	}
	c.jb.recordFault(je)
	c.jb.abortReq.Store(true)
	c.w.broken.Store(true)
}

// runPending executes the collective's combine closure, containing any
// panic it raises: the fault is recorded against this PE (the closure runs
// algorithm code) and the superstep becomes an abort, releasing the barrier
// instead of leaving p-1 PEs blocked behind a dead combiner.
func (c *Comm) runPending(board []deposit) (val any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.recordPanicFault(r)
			c.jb.abortReq.Store(true)
			val, ok = nil, false
		}
	}()
	return c.pending(board), true
}

// exchange runs one collective superstep: it deposits (tag, val, clock) on
// this PE's slot of the current epoch's board, waits for everyone at the
// single arrival barrier (whose root-completer runs the pre-release combine
// — see preRelease), synchronizes this PE's modeled clock to the combined
// global maximum, and invokes read with the combined value and the full
// board. The board is valid only during the call; exchange advances the
// epoch so the next collective writes the other buffer, which is what makes
// the missing departure barrier safe (no slot of this board is rewritten
// before every PE has passed the NEXT barrier, and by then all reads below
// are done).
//
// Deposits that reference memory the depositing caller may mutate after its
// collective returns must be staged (copied, or handed off) by the caller —
// unless only the pre-release combine reads them, which runs while all
// depositors are still blocked. See the ownership notes on the individual
// collectives.
//
// The tag check catches SPMD divergence bugs (different PEs calling
// different collectives) immediately instead of deadlocking.
func (c *Comm) exchange(tag opTag, val any, cd *enc.Codec, combine func(board []deposit) any, read func(res any, board []deposit)) {
	board, slot := c.deposit(tag, val, cd, combine)
	if slot.ClockMax > c.clock {
		c.clock = slot.ClockMax
	}
	if read != nil {
		read(slot.Val, board)
	}
}

// exchangeSubset is exchange for collectives that synchronize only a subset
// of the world (pair exchanges, group reductions): it skips the global
// clock synchronization and never combines; read inspects deposit clocks
// itself.
func (c *Comm) exchangeSubset(tag opTag, val any, cd *enc.Codec, read func(board []deposit)) {
	board, _ := c.deposit(tag, val, cd, nil)
	read(board)
}

// deposit publishes (tag, val, clock) through the transport — which meets
// the world at the barrier and returns the fully populated board plus the
// combined slot — acts on the superstep's published verdict, checks SPMD
// agreement and advances the epoch.
func (c *Comm) deposit(tag opTag, val any, cd *enc.Codec, combine func(board []deposit) any) ([]deposit, transport.Slot) {
	c.faultPoint(faultinject.SiteCollective)
	w := c.w
	c.pending = combine
	dep := deposit{Tag: uint32(tag), Clock: c.clock, Val: val, Codec: cd}
	// Wall-side instrumentation of the superstep: entry timestamp taken
	// only when someone is looking, recorded after release. Never touches
	// the modeled clock.
	var t0 time.Time
	if c.m != nil || c.ring != nil {
		t0 = time.Now()
	}
	w.arrived[c.rank].v.Add(1)
	board, slot, poisoned := w.tr.Exchange(c.rank, c.epoch, dep, c.host)
	if c.m != nil || c.ring != nil {
		el := time.Since(t0)
		if c.m != nil {
			c.m.supersteps[uint8(tag)].Inc()
			c.m.barrierWait.Add(el.Seconds())
		}
		if c.ring != nil {
			c.ring.Append(obs.Span{
				Kind:  obs.SpanCollective,
				Rank:  int32(c.rank),
				Round: int32(c.round),
				Name:  opNames[uint8(tag)],
				Start: t0.Sub(c.traceEpoch).Nanoseconds(),
				Dur:   int64(el),
				Clock: dep.Clock,
			})
		}
	}
	if poisoned {
		// Poisoned substrate: the world is broken (lost PE or stall) and this
		// superstep never completed coherently — unwind without reading.
		panic(jobAborted{})
	}
	c.epoch++
	switch slot.Verdict {
	case verdictCancel:
		// The pre-release combiner saw the job's context expire. Every PE
		// of this superstep reads the same verdict, so the whole world
		// unwinds here together (recovered in runPE).
		panic(jobCancelled{})
	case verdictAbort:
		// A PE faulted and requested containment; unwind together. Checked
		// before the SPMD divergence audit because a faulted PE's drain
		// arrival legitimately deposits a mismatched tag.
		panic(jobAborted{})
	}
	if c.rank == 0 {
		for i := 1; i < w.p; i++ {
			if opTag(board[i].Tag) != tag {
				panic(fmt.Sprintf("comm: SPMD divergence: rank 0 in %v, rank %d in %v", tag, i, opTag(board[i].Tag)))
			}
		}
	}
	return board, slot
}

// closeOut is the job's final, invisible superstep (tag opJobEnd), run by
// every PE after its share of the job function returns. It guarantees the
// containment drain always has a barrier to rejoin: a PE that faults after
// the job's LAST algorithm collective still finds the rest of the world
// waiting here, so drainAbort can release it. The raw deposit charges no
// modeled time, no traffic, and no collective count — a job's metrics are
// bit-identical with and without it.
func (c *Comm) closeOut() {
	c.deposit(mkTag(opJobEnd, 0), nil, nil, nil)
}

// drainAbort rejoins the world after this PE faulted so the containment
// verdict can release everyone. SPMD lockstep means every other PE is at —
// or unconditionally heading to — this PE's current epoch barrier (the
// close-out superstep guarantees each PE at least one more arrival), so a
// single arrival completes that barrier; its pre-release combiner then
// observes the abort request this PE published before draining and issues
// the verdict that unwinds the world. The zero deposit (tag opNone, no
// value) overwrites this rank's stale slot, which is safe under the same
// parity argument as a normal deposit, and the superstep's abort verdict
// means its clock fold and tags are never observed. Reports whether the
// drain completed (false means the substrate was poisoned — the world is
// broken and already released, so there is nothing left to drain).
func (c *Comm) drainAbort() bool {
	c.pending = nil
	c.w.arrived[c.rank].v.Add(1)
	_, _, poisoned := c.w.tr.Exchange(c.rank, c.epoch, deposit{}, c.host)
	return !poisoned
}

// faultPoint visits one injection site; a no-op unless the job carries an
// armed injector whose rule matches. ActPanic raises an InjectedPanic —
// contained exactly like a real PE panic; ActDelay sleeps, modelling a
// straggler (pair it with a stall timeout); ActIOError returns the
// synthetic error for sites that can surface one (collective sites have no
// error path and ignore it).
func (c *Comm) faultPoint(site faultinject.Site) error {
	r := c.inj.Check(site, c.rank)
	if r == nil {
		return nil
	}
	switch r.Action {
	case faultinject.ActPanic:
		panic(faultinject.InjectedPanic{Site: site, Rank: c.rank, Occurrence: r.Occurrence})
	case faultinject.ActDelay:
		time.Sleep(r.Delay)
	case faultinject.ActIOError:
		return fmt.Errorf("%w at %v site, rank %d, occurrence %d", faultinject.ErrInjected, site, c.rank, r.Occurrence)
	}
	return nil
}

// FaultPoint exposes the job's injection points to the packages that host
// sites outside comm (graphio's bulk reads). It returns the injected error
// for ActIOError rules and nil otherwise; panic and delay actions take
// effect before it returns.
func (c *Comm) FaultPoint(site faultinject.Site) error { return c.faultPoint(site) }

// syncClocks sets this PE's clock to the maximum entry clock among the
// given member deposits (BSP barrier semantics for a sub-communicator).
func (c *Comm) syncClocks(deps []deposit, members []int) float64 {
	m := c.clock
	for _, i := range members {
		m = math.Max(m, deps[i].Clock)
	}
	c.clock = m
	return m
}

// wireCodec resolves the value codec for a collective's deposit: nil on a
// purely local world (the shared-memory substrate never serializes), the
// cached enc codec for T when some rank is remote.
func wireCodec[T any](c *Comm) *enc.Codec {
	if !c.wire {
		return nil
	}
	return enc.CodecFor[T]()
}

// a2aCodecs caches the hand-built codecs for the all-to-all frame type,
// keyed by its (generic-instantiated) reflect type. The frame has
// unexported fields — it is a comm-internal staging structure — so the enc
// walker cannot reach it; the codec below composes the element codecs
// explicitly instead.
var a2aCodecs sync.Map // reflect.Type -> *enc.Codec

// a2aCodecFor resolves the wire codec for *a2aFrame[T] deposits (nil on a
// purely local world).
func a2aCodecFor[T any](c *Comm) *enc.Codec {
	if !c.wire {
		return nil
	}
	key := reflect.TypeOf((*a2aFrame[T])(nil))
	if cd, ok := a2aCodecs.Load(key); ok {
		return cd.(*enc.Codec)
	}
	dataCd := enc.CodecFor[[]T]()
	offCd := enc.CodecFor[[]int32]()
	cd := enc.NewCodec(key.String(),
		func(dst []byte, v any) []byte {
			f := v.(*a2aFrame[T])
			dst = dataCd.Append(dst, f.data)
			return offCd.Append(dst, f.off)
		},
		func(b []byte) (any, []byte, error) {
			dv, b, err := dataCd.Decode(b)
			if err != nil {
				return nil, nil, err
			}
			ov, b, err := offCd.Decode(b)
			if err != nil {
				return nil, nil, err
			}
			return &a2aFrame[T]{data: dv.([]T), off: ov.([]int32)}, b, nil
		})
	actual, _ := a2aCodecs.LoadOrStore(key, cd)
	return actual.(*enc.Codec)
}

// Clocks returns a copy of the per-rank final modeled clocks of the last
// run (zero for ranks that have not flushed — e.g. remote ranks before a
// MergeRemote).
func (w *World) Clocks() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, len(w.clocks))
	copy(out, w.clocks)
	return out
}

// MergeRemote folds a remote process's flushed metrics into this world's
// aggregates with the same discipline as Comm.flush: maximum for times and
// clocks (PEs overlap), sum for traffic (every byte is distinct). clocks
// covers the remote block starting at global rank lo.
func (w *World) MergeRemote(lo int, clocks []float64, phases map[string]PhaseTime, stats Stats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, cl := range clocks {
		if r := lo + i; r >= 0 && r < w.p && cl > w.clocks[r] {
			w.clocks[r] = cl
		}
	}
	for name, pt := range phases {
		agg := w.phases[name]
		if agg == nil {
			agg = &PhaseTime{}
			w.phases[name] = agg
		}
		agg.Modeled = math.Max(agg.Modeled, pt.Modeled)
		if pt.Wall > agg.Wall {
			agg.Wall = pt.Wall
		}
		agg.Stats.add(pt.Stats)
	}
	w.stats.add(stats)
}
