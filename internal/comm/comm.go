// Package comm simulates the distributed-memory machine model of the paper
// (§II-A): p processing elements (PEs) with strictly private memory,
// single-ported point-to-point communication, and the usual collective
// operations. Each PE is a goroutine; PEs interact only through the
// primitives of this package, so the communication structure of the
// algorithms — who sends what to whom in which round — is exactly that of
// the MPI original, with shared memory acting only as the wire.
//
// Two clocks run side by side:
//
//   - Wall time: real elapsed time of the simulation, reported per phase.
//   - Modeled time: the α-β cost model of the paper. Sending a message of
//     ℓ bytes costs α + βℓ; collectives charge the §II-A complexities
//     (e.g. α·log p + βℓ for broadcast/reduce, α·p + βℓ for a direct
//     personalized all-to-all with bottleneck volume ℓ). Local computation
//     charges a per-operation cost divided by the PE's thread count.
//
// Collectives synchronize modeled clocks BSP-style: every participant
// leaves the operation at max(entry clocks) + operation cost, so stragglers
// propagate exactly as they would on a real machine. Phase timers attribute
// modeled and wall time to named phases; the World aggregates the maximum
// over PEs, which is the quantity all the paper's figures plot.
package comm

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"time"
)

// CostModel holds the machine parameters of the α-β model.
type CostModel struct {
	// Alpha is the startup overhead per message in seconds.
	Alpha float64
	// Beta is the transfer time per byte in seconds.
	Beta float64
	// Compute is the cost of one local edge-granularity operation in
	// seconds; parallel sections divide it by the PE's thread count.
	Compute float64
}

// DefaultCostModel returns parameters of the same order as the paper's
// machine (SuperMUC-NG: OmniPath 100 Gbit/s, ~10 µs MPI latency).
func DefaultCostModel() CostModel {
	return CostModel{
		Alpha:   10e-6,
		Beta:    1e-9,
		Compute: 2e-9,
	}
}

// World is a simulated machine of P PEs sharing a cost model. Create one
// with NewWorld, then call Run with the SPMD program.
type World struct {
	p       int
	threads int
	cost    CostModel

	bar    *barrier
	boards []deposit

	mu     sync.Mutex
	phases map[string]*PhaseTime // max-aggregated over PEs
	stats  Stats
	clocks []float64 // final modeled clock per PE, for the last Run
}

type deposit struct {
	tag   string
	val   any
	clock float64
}

// Option configures a World.
type Option func(*World)

// WithCost sets the cost model.
func WithCost(cm CostModel) Option {
	return func(w *World) { w.cost = cm }
}

// WithThreads sets the number of intra-PE threads every PE reports
// (the paper's OpenMP threads per MPI process). Default 1.
func WithThreads(t int) Option {
	return func(w *World) {
		if t < 1 {
			t = 1
		}
		w.threads = t
	}
}

// NewWorld creates a machine with p PEs. It panics if p < 1.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", p))
	}
	w := &World{
		p:       p,
		threads: 1,
		cost:    DefaultCostModel(),
		bar:     newBarrier(p),
		boards:  make([]deposit, p),
		phases:  make(map[string]*PhaseTime),
		clocks:  make([]float64, p),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// P reports the machine width.
func (w *World) P() int { return w.p }

// Cost reports the configured cost model.
func (w *World) Cost() CostModel { return w.cost }

// Run executes f as an SPMD program: one goroutine per PE, each receiving
// its own Comm handle. Run returns when every PE's f has returned. It may
// be called repeatedly; statistics accumulate across calls.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	wg.Add(w.p)
	for r := 0; r < w.p; r++ {
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				rank:    rank,
				w:       w,
				threads: w.threads,
				phases:  make(map[string]*PhaseTime),
			}
			f(c)
			c.flush()
		}(r)
	}
	wg.Wait()
}

// PhaseTime is the accumulated cost of one named phase.
type PhaseTime struct {
	Modeled float64       // modeled seconds (max over PEs when aggregated)
	Wall    time.Duration // wall seconds (max over PEs when aggregated)
}

// Phases returns the per-phase times, aggregated as the maximum over all
// PEs, reflecting the bulk-synchronous critical path.
func (w *World) Phases() map[string]PhaseTime {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string]PhaseTime, len(w.phases))
	for k, v := range w.phases {
		out[k] = *v
	}
	return out
}

// PhaseNames returns the phase names in sorted order.
func (w *World) PhaseNames() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.phases))
	for k := range w.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MaxClock reports the maximum modeled clock over all PEs after the last
// Run — the modeled makespan.
func (w *World) MaxClock() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := 0.0
	for _, c := range w.clocks {
		m = math.Max(m, c)
	}
	return m
}

// TotalStats returns traffic statistics summed over all PEs.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetMetrics clears accumulated phase times, stats and clocks, keeping
// the machine itself reusable (e.g. between warm-up and measured rounds).
func (w *World) ResetMetrics() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.phases = make(map[string]*PhaseTime)
	w.stats = Stats{}
	for i := range w.clocks {
		w.clocks[i] = 0
	}
}

// Stats counts communication traffic.
type Stats struct {
	Messages    int64 // point-to-point messages (or message slots in collectives)
	Bytes       int64 // payload bytes moved
	Collectives int64 // collective operations executed
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Collectives += o.Collectives
}

// Comm is a PE's handle to the machine: its rank, its modeled clock, its
// phase timers and its traffic counters. A Comm must only be used by the
// goroutine it was handed to.
type Comm struct {
	rank    int
	w       *World
	threads int

	clock  float64 // modeled seconds since Run start
	stats  Stats
	phases map[string]*PhaseTime

	phaseStack []phaseFrame
}

type phaseFrame struct {
	name      string
	clockAt   float64
	wallAt    time.Time
	childTime float64       // modeled time consumed by nested phases
	childWall time.Duration // wall time consumed by nested phases
}

// Rank reports this PE's rank in 0..P-1.
func (c *Comm) Rank() int { return c.rank }

// P reports the machine width.
func (c *Comm) P() int { return c.w.p }

// Threads reports the number of intra-PE threads (for dividing parallel
// compute charges).
func (c *Comm) Threads() int { return c.threads }

// Clock returns this PE's current modeled time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Cost returns the machine's cost model.
func (c *Comm) Cost() CostModel { return c.w.cost }

// ChargeCompute adds the modeled cost of ops local operations executed by
// all threads in parallel.
func (c *Comm) ChargeCompute(ops int) {
	c.clock += float64(ops) * c.w.cost.Compute / float64(c.threads)
}

// ChargeComputeSeq adds the modeled cost of ops local operations executed
// sequentially (not divided by the thread count).
func (c *Comm) ChargeComputeSeq(ops int) {
	c.clock += float64(ops) * c.w.cost.Compute
}

// ResetLocalMetrics zeroes this PE's modeled clock, phase timers and
// traffic counters. Use together with World.ResetMetrics (and barriers on
// both sides) to exclude setup work — e.g. graph generation — from a
// measurement. Panics if called inside an open phase.
func (c *Comm) ResetLocalMetrics() {
	if len(c.phaseStack) != 0 {
		panic("comm: ResetLocalMetrics inside an open phase")
	}
	c.clock = 0
	c.stats = Stats{}
	c.phases = make(map[string]*PhaseTime)
}

// ChargeComm adds the modeled cost of msgs message startups plus bytes
// payload bytes. Communication strategies built on RawExchange use this for
// self-accounting.
func (c *Comm) ChargeComm(msgs int, bytes int) {
	c.clock += float64(msgs)*c.w.cost.Alpha + float64(bytes)*c.w.cost.Beta
	c.stats.Messages += int64(msgs)
	c.stats.Bytes += int64(bytes)
}

// PhaseBegin opens a named phase. Phases may nest; time spent in nested
// phases is attributed to the nested phase only.
func (c *Comm) PhaseBegin(name string) {
	c.phaseStack = append(c.phaseStack, phaseFrame{
		name:    name,
		clockAt: c.clock,
		wallAt:  time.Now(),
	})
}

// PhaseEnd closes the innermost open phase.
func (c *Comm) PhaseEnd() {
	n := len(c.phaseStack)
	if n == 0 {
		panic("comm: PhaseEnd without PhaseBegin")
	}
	fr := c.phaseStack[n-1]
	c.phaseStack = c.phaseStack[:n-1]
	modeled := c.clock - fr.clockAt - fr.childTime
	wall := time.Since(fr.wallAt) - fr.childWall
	pt := c.phases[fr.name]
	if pt == nil {
		pt = &PhaseTime{}
		c.phases[fr.name] = pt
	}
	pt.Modeled += modeled
	pt.Wall += wall
	if n >= 2 {
		parent := &c.phaseStack[n-2]
		parent.childTime += c.clock - fr.clockAt
		parent.childWall += time.Since(fr.wallAt)
	}
}

// Phase runs f inside a named phase.
func (c *Comm) Phase(name string, f func()) {
	c.PhaseBegin(name)
	defer c.PhaseEnd()
	f()
}

// flush merges this PE's metrics into the world (max for times, sum for
// traffic).
func (c *Comm) flush() {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	for name, pt := range c.phases {
		agg := w.phases[name]
		if agg == nil {
			agg = &PhaseTime{}
			w.phases[name] = agg
		}
		agg.Modeled = math.Max(agg.Modeled, pt.Modeled)
		if pt.Wall > agg.Wall {
			agg.Wall = pt.Wall
		}
	}
	w.stats.add(c.stats)
	if c.clock > w.clocks[c.rank] {
		w.clocks[c.rank] = c.clock
	}
}

// log2Ceil returns ceil(log2(n)) with log2Ceil(1) == 0 and a minimum of 1
// for n > 1.
func log2Ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	return k
}

// sizeOf returns the in-memory size of T in bytes for cost accounting.
func sizeOf[T any]() int {
	return int(reflect.TypeFor[T]().Size())
}

// exchange deposits (tag, val, clock) on this PE's board slot, waits for
// everyone, invokes read with the full board (valid only during the call),
// and waits again so slots can be reused. It is the single synchronization
// primitive all collectives are built from. The tag check catches SPMD
// divergence bugs (different PEs calling different collectives) immediately
// instead of deadlocking.
func (c *Comm) exchange(tag string, val any, read func(boards []deposit)) {
	w := c.w
	w.boards[c.rank] = deposit{tag: tag, val: val, clock: c.clock}
	w.bar.Wait()
	if c.rank == 0 {
		for i := 1; i < w.p; i++ {
			if w.boards[i].tag != tag {
				panic(fmt.Sprintf("comm: SPMD divergence: rank 0 in %q, rank %d in %q", tag, i, w.boards[i].tag))
			}
		}
	}
	read(w.boards)
	w.bar.Wait()
}

// syncClocks sets this PE's clock to the maximum entry clock among the
// given deposits (BSP barrier semantics), then returns that maximum.
func (c *Comm) syncClocks(deps []deposit, members []int) float64 {
	m := c.clock
	if members == nil {
		for i := range deps {
			m = math.Max(m, deps[i].clock)
		}
	} else {
		for _, i := range members {
			m = math.Max(m, deps[i].clock)
		}
	}
	c.clock = m
	return m
}
