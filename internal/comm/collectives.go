package comm

import (
	"fmt"
	"math"
)

// Collectives. Because Go methods cannot take type parameters, the
// collectives are package-level generic functions taking the Comm as their
// first argument. Every PE of the world must call the same sequence of
// collectives with compatible arguments (SPMD); a divergence panics with a
// diagnostic rather than deadlocking.
//
// Modeled costs follow §II-A of the paper:
//
//	broadcast, (all)reduce, prefix sum:  α·log p + β·ℓ
//	allgather:                           α·log p + β·Σℓᵢ
//	direct personalized all-to-all:      α·p + β·ℓ   (ℓ = bottleneck volume)
//
// Indirect all-to-all strategies (grid, hypercube) live in
// internal/alltoall and self-account via RawAlltoall + ChargeComm.

// Barrier synchronizes all PEs (and their modeled clocks).
func Barrier(c *Comm) {
	c.exchange("Barrier", nil, func(boards []deposit) {
		c.syncClocks(boards, nil)
	})
	c.ChargeComm(log2Ceil(c.P()), 0)
	c.stats.Collectives++
}

// Bcast distributes root's value to all PEs. For slice-typed T the receivers
// share the root's backing array and must treat it as read-only; use
// BcastSlice for an owned copy.
func Bcast[T any](c *Comm, root int, x T) T {
	var out T
	c.exchange("Bcast", x, func(boards []deposit) {
		c.syncClocks(boards, nil)
		out = boards[root].val.(T)
	})
	c.ChargeComm(log2Ceil(c.P()), sizeOf[T]())
	c.stats.Collectives++
	return out
}

// BcastSlice distributes root's slice to all PEs; every PE receives its own
// copy.
func BcastSlice[T any](c *Comm, root int, xs []T) []T {
	var out []T
	c.exchange("BcastSlice", xs, func(boards []deposit) {
		c.syncClocks(boards, nil)
		src := boards[root].val.([]T)
		out = make([]T, len(src))
		copy(out, src)
	})
	c.ChargeComm(log2Ceil(c.P()), len(out)*sizeOf[T]())
	c.stats.Collectives++
	return out
}

// Allreduce combines every PE's value with the associative op and returns
// the result on all PEs.
func Allreduce[T any](c *Comm, x T, op func(a, b T) T) T {
	var out T
	c.exchange("Allreduce", x, func(boards []deposit) {
		c.syncClocks(boards, nil)
		out = boards[0].val.(T)
		for i := 1; i < len(boards); i++ {
			out = op(out, boards[i].val.(T))
		}
	})
	c.ChargeComm(log2Ceil(c.P()), sizeOf[T]())
	c.stats.Collectives++
	return out
}

// AllreduceVec combines equal-length vectors element-wise with op and
// returns the result on all PEs. This is the workhorse of the replicated
// base case (§IV-D): an allreduce with vector length n′. The reduction runs
// as a hypercube butterfly so local work is O(ℓ·log p), while the modeled
// charge is the pipelined-tree bound α·log p + β·ℓ from §II-A.
func AllreduceVec[T any](c *Comm, xs []T, op func(a, b T) T) []T {
	p, rank := c.P(), c.Rank()
	acc := make([]T, len(xs))
	copy(acc, xs)
	if p > 1 {
		// Fold ranks beyond the largest power of two into the cube first.
		k := 1
		for k*2 <= p {
			k *= 2
		}
		merge := func(tag string, partner int, send bool) {
			// Both cube and extra ranks pass through the same exchanges to
			// stay SPMD; ranks without a partner deposit nil. The deposit is
			// a snapshot: the depositor merges into acc during the same read
			// window in which its partner reads the board, so the board copy
			// must stay immutable.
			var dep any
			if send {
				cp := make([]T, len(acc))
				copy(cp, acc)
				dep = cp
			}
			c.exchange(tag, dep, func(boards []deposit) {
				c.syncClocks(boards, nil)
				if partner >= 0 && boards[partner].val != nil {
					other := boards[partner].val.([]T)
					if len(other) != len(acc) {
						panic(fmt.Sprintf("comm: AllreduceVec length mismatch: %d vs %d", len(acc), len(other)))
					}
					for j := range acc {
						acc[j] = op(acc[j], other[j])
					}
				}
			})
		}
		if rank >= k {
			merge("ARVfold", -1, true) // extra rank contributes
		} else if rank+k < p {
			merge("ARVfold", rank+k, false) // cube rank absorbs extra
		} else {
			merge("ARVfold", -1, false)
		}
		for d := 1; d < k; d <<= 1 {
			partner := -1
			send := false
			if rank < k {
				partner = rank ^ d
				send = true
			}
			merge(fmt.Sprintf("ARVbfly%d", d), partner, send)
		}
		// Send the final vector back to the extra ranks.
		finalTag := "ARVunfold"
		if rank < k {
			var dep any = acc
			c.exchange(finalTag, dep, func(boards []deposit) { c.syncClocks(boards, nil) })
		} else {
			c.exchange(finalTag, nil, func(boards []deposit) {
				c.syncClocks(boards, nil)
				src := boards[rank-k].val.([]T)
				copy(acc, src)
			})
		}
	}
	c.ChargeComm(log2Ceil(p), len(xs)*sizeOf[T]())
	c.stats.Collectives++
	return acc
}

// ExScan returns the exclusive prefix combination of x over ranks: rank r
// receives op(x₀, …, x_{r−1}), and rank 0 receives zero.
func ExScan[T any](c *Comm, x T, zero T, op func(a, b T) T) T {
	out := zero
	c.exchange("ExScan", x, func(boards []deposit) {
		c.syncClocks(boards, nil)
		for i := 0; i < c.rank; i++ {
			out = op(out, boards[i].val.(T))
		}
	})
	c.ChargeComm(log2Ceil(c.P()), sizeOf[T]())
	c.stats.Collectives++
	return out
}

// Allgather collects one value from every PE into a rank-indexed slice on
// all PEs.
func Allgather[T any](c *Comm, x T) []T {
	out := make([]T, c.P())
	c.exchange("Allgather", x, func(boards []deposit) {
		c.syncClocks(boards, nil)
		for i := range boards {
			out[i] = boards[i].val.(T)
		}
	})
	c.ChargeComm(log2Ceil(c.P()), c.P()*sizeOf[T]())
	c.stats.Collectives++
	return out
}

// AllgatherConcat concatenates every PE's slice in rank order on all PEs.
func AllgatherConcat[T any](c *Comm, xs []T) []T {
	var out []T
	total := 0
	c.exchange("AllgatherConcat", xs, func(boards []deposit) {
		c.syncClocks(boards, nil)
		for i := range boards {
			total += len(boards[i].val.([]T))
		}
		out = make([]T, 0, total)
		for i := range boards {
			out = append(out, boards[i].val.([]T)...)
		}
	})
	c.ChargeComm(log2Ceil(c.P()), total*sizeOf[T]())
	c.stats.Collectives++
	return out
}

// Alltoall performs a direct (one-level) personalized all-to-all exchange:
// sendTo[i] is delivered to PE i, and the result's slot j holds what PE j
// sent here. Each PE is charged the §II-A direct cost α·(p−1) + β·ℓ with ℓ
// its bottleneck volume (max of bytes sent and received, self excluded).
// Received slices are owned by the caller.
func Alltoall[T any](c *Comm, sendTo [][]T) [][]T {
	recv := RawAlltoall(c, sendTo)
	elem := sizeOf[T]()
	sent, got := 0, 0
	for i := range sendTo {
		if i != c.rank {
			sent += len(sendTo[i])
		}
	}
	for i := range recv {
		if i != c.rank {
			got += len(recv[i])
		}
	}
	c.ChargeComm(c.P()-1, elem*maxInt(sent, got))
	c.stats.Collectives++
	return recv
}

// RawAlltoall moves buckets like Alltoall but charges no modeled cost.
// It exists so routing strategies (internal/alltoall) can move data in
// several physical rounds while self-accounting the cost of each round with
// ChargeComm. Everything else should use Alltoall.
func RawAlltoall[T any](c *Comm, sendTo [][]T) [][]T {
	p := c.P()
	if len(sendTo) != p {
		panic(fmt.Sprintf("comm: Alltoall with %d buckets on a %d-PE world", len(sendTo), p))
	}
	recv := make([][]T, p)
	c.exchange("Alltoall", sendTo, func(boards []deposit) {
		c.syncClocks(boards, nil)
		for i := range boards {
			bucket := boards[i].val.([][]T)[c.rank]
			if len(bucket) > 0 {
				recv[i] = make([]T, len(bucket))
				copy(recv[i], bucket)
			}
		}
	})
	return recv
}

// PairExchange swaps a payload with a partner PE. All PEs of the world must
// call it in the same superstep; a PE with partner < 0 or partner == rank
// participates with no transfer and receives nil. Partnerships must be
// symmetric. Cost: α + β·max(sent, received) per PE.
func PairExchange[T any](c *Comm, partner int, xs []T) []T {
	out := RawPairExchange(c, partner, xs)
	if partner >= 0 && partner != c.rank {
		c.ChargeComm(1, sizeOf[T]()*maxInt(len(xs), len(out)))
	}
	return out
}

// RawPairExchange is PairExchange without the modeled cost charge, for
// routing strategies that self-account actual payload bytes (element types
// containing slices would otherwise be charged header sizes only).
func RawPairExchange[T any](c *Comm, partner int, xs []T) []T {
	var out []T
	c.exchange("PairExchange", xs, func(boards []deposit) {
		if partner >= 0 && partner != c.rank {
			m := math.Max(boards[c.rank].clock, boards[partner].clock)
			c.clock = math.Max(c.clock, m)
			src := boards[partner].val.([]T)
			out = make([]T, len(src))
			copy(out, src)
		}
	})
	c.stats.Collectives++
	return out
}

// GroupAllreduce combines values over the listed member ranks only (a
// sub-communicator). All PEs of the world must call it in the same
// superstep; non-members pass members == nil and receive the zero value.
// Groups active in the same superstep must be disjoint.
func GroupAllreduce[T any](c *Comm, members []int, x T, op func(a, b T) T) T {
	var out T
	c.exchange("GroupAllreduce", x, func(boards []deposit) {
		if len(members) == 0 {
			return
		}
		c.syncClocks(boards, members)
		out = boards[members[0]].val.(T)
		for _, m := range members[1:] {
			out = op(out, boards[m].val.(T))
		}
	})
	if len(members) > 0 {
		c.ChargeComm(log2Ceil(len(members)), sizeOf[T]())
	}
	c.stats.Collectives++
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
