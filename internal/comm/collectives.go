package comm

import (
	"fmt"
	"math"

	"kamsta/internal/sizeof"
)

// Collectives. Because Go methods cannot take type parameters, the
// collectives are package-level generic functions taking the Comm as their
// first argument. Every PE of the world must call the same sequence of
// collectives with compatible arguments (SPMD); a divergence panics with a
// diagnostic rather than deadlocking.
//
// Modeled costs follow §II-A of the paper:
//
//	broadcast, (all)reduce, prefix sum:  α·log p + β·ℓ
//	allgather:                           α·log p + β·Σℓᵢ
//	direct personalized all-to-all:      α·p + β·ℓ   (ℓ = bottleneck volume)
//
// Indirect all-to-all strategies (grid, hypercube) live in
// internal/alltoall and self-account via RawAlltoall + ChargeComm.
//
// Reducing collectives (Allreduce, ExScan, Allgather, AllgatherConcat) fold
// their deposits ONCE, in the barrier's pre-release combine step, instead of
// once per PE; op and the deposited values must therefore be deterministic
// and rank-independent (the same requirement MPI places on reduction
// operators).
//
// Ownership: every collective that reads ARRAY CONTENTS from another PE
// after the barrier's release either stages a copy at deposit time or hands
// the reader a buffer the depositor never touches again, so callers may
// freely mutate their inputs (and received outputs) the moment the
// collective returns. Deposits of plain values are copied into the board by
// interface boxing, and deposits read only by the pre-release combine step
// are safe as-is because their owners are still blocked in the barrier when
// the combine runs. The one remaining sharing contract: a deposited VALUE
// type containing references (e.g. a struct with a slice field, as in
// GroupAllreduce of a sample set) exposes the referenced memory to other
// PEs until the depositor's next collective; such referenced data must not
// be mutated in between. All in-tree callers deposit freshly built values
// and comply.

// Barrier synchronizes all PEs (and their modeled clocks).
func Barrier(c *Comm) {
	c.exchange(mkTag(opBarrier, 0), nil, nil, nil, nil)
	c.ChargeComm(log2Ceil(c.P()), 0)
	c.stats.Collectives++
}

// Bcast distributes root's value to all PEs. For slice-typed T the receivers
// share the root's backing array and must treat it as read-only; use
// BcastSlice for an owned copy.
func Bcast[T any](c *Comm, root int, x T) T {
	var out T
	c.exchange(mkTag(opBcast, 0), x, wireCodec[T](c), nil, func(_ any, boards []deposit) {
		out = boards[root].Val.(T)
	})
	c.ChargeComm(log2Ceil(c.P()), sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// BcastSlice distributes root's slice to all PEs; every PE receives its own
// copy. The root's xs is staged at deposit time, so the root may mutate xs
// immediately after the call.
func BcastSlice[T any](c *Comm, root int, xs []T) []T {
	var dep any
	if c.rank == root {
		cp := make([]T, len(xs))
		copy(cp, xs)
		dep = cp
	}
	var out []T
	c.exchange(mkTag(opBcastSlice, 0), dep, wireCodec[[]T](c), nil, func(_ any, boards []deposit) {
		src := boards[root].Val.([]T)
		out = make([]T, len(src))
		copy(out, src)
	})
	c.ChargeComm(log2Ceil(c.P()), len(out)*sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// Allreduce combines every PE's value with the associative op and returns
// the result on all PEs. op must be deterministic and rank-independent.
func Allreduce[T any](c *Comm, x T, op func(a, b T) T) T {
	var out T
	c.exchange(mkTag(opAllreduce, 0), x, wireCodec[T](c), func(boards []deposit) any {
		acc := boards[0].Val.(T)
		for i := 1; i < len(boards); i++ {
			acc = op(acc, boards[i].Val.(T))
		}
		return acc
	}, func(res any, _ []deposit) {
		out = res.(T)
	})
	c.ChargeComm(log2Ceil(c.P()), sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// AllreduceVec combines equal-length vectors element-wise with op and
// returns the result on all PEs. This is the workhorse of the replicated
// base case (§IV-D): an allreduce with vector length n′. The reduction runs
// as a hypercube butterfly so local work is O(ℓ·log p), while the modeled
// charge is the pipelined-tree bound α·log p + β·ℓ from §II-A.
//
// The butterfly is allocation-free per round: each PE ping-pongs between an
// accumulator and one scratch vector. Depositing acc for round r is safe
// because the owner only writes the OTHER buffer until it has passed the
// barrier of round r+1 — by which point every reader of round r is done
// (the same double-buffering argument the boards rely on). The buffer
// returned to the caller was last deposited in the final butterfly round,
// and the unfold superstep after it is the "one more barrier" that makes
// handing it to the caller safe.
func AllreduceVec[T any](c *Comm, xs []T, op func(a, b T) T) []T {
	p, rank := c.P(), c.Rank()
	n := len(xs)
	acc := make([]T, n)
	copy(acc, xs)
	if p > 1 {
		arvCd := wireCodec[[]T](c)
		scratch := make([]T, n)
		// Fold ranks beyond the largest power of two into the cube first.
		k := 1
		for k*2 <= p {
			k *= 2
		}
		// All ranks pass through the same exchanges to stay SPMD; ranks
		// without a contribution (or partner) deposit nil.
		foldTag := mkTag(opARVFold, 0)
		if rank >= k {
			// Extra rank contributes its vector; it will not touch acc
			// again until the unfold read, long after the fold window.
			c.exchange(foldTag, acc, arvCd, nil, nil)
		} else {
			c.exchange(foldTag, nil, arvCd, nil, func(_ any, boards []deposit) {
				if rank+k < p {
					other := boards[rank+k].Val.([]T)
					if len(other) != n {
						panic(fmt.Sprintf("comm: AllreduceVec length mismatch: %d vs %d", n, len(other)))
					}
					// In-place is fine: this PE's fold deposit was nil.
					for j := range acc {
						acc[j] = op(acc[j], other[j])
					}
				}
			})
		}
		bit := 0
		for d := 1; d < k; d <<= 1 {
			tag := mkTag(opARVBfly, bit)
			bit++
			if rank < k {
				partner := rank ^ d
				c.exchange(tag, acc, arvCd, nil, func(_ any, boards []deposit) {
					other := boards[partner].Val.([]T)
					if len(other) != n {
						panic(fmt.Sprintf("comm: AllreduceVec length mismatch: %d vs %d", n, len(other)))
					}
					for j := range scratch {
						scratch[j] = op(acc[j], other[j])
					}
				})
				acc, scratch = scratch, acc
			} else {
				c.exchange(tag, nil, arvCd, nil, nil)
			}
		}
		// Send the final vector back to the extra ranks.
		unfoldTag := mkTag(opARVUnfold, 0)
		if rank < k {
			var dep any
			if rank+k < p {
				// This deposit is read by the extra rank after the caller
				// regains acc, so it must be a staged copy.
				cp := make([]T, n)
				copy(cp, acc)
				dep = cp
			}
			c.exchange(unfoldTag, dep, arvCd, nil, nil)
		} else {
			c.exchange(unfoldTag, nil, arvCd, nil, func(_ any, boards []deposit) {
				src := boards[rank-k].Val.([]T)
				copy(acc, src)
			})
		}
	}
	c.ChargeComm(log2Ceil(p), n*sizeof.Of[T]())
	c.stats.Collectives++
	return acc
}

// ExScan returns the exclusive prefix combination of x over ranks: rank r
// receives op(x₀, …, x_{r−1}), and rank 0 receives zero. op must be
// deterministic and rank-independent.
func ExScan[T any](c *Comm, x T, zero T, op func(a, b T) T) T {
	var out T
	c.exchange(mkTag(opExScan, 0), x, wireCodec[T](c), func(boards []deposit) any {
		prefix := make([]T, len(boards))
		prefix[0] = zero
		for i := 1; i < len(boards); i++ {
			prefix[i] = op(prefix[i-1], boards[i-1].Val.(T))
		}
		return prefix
	}, func(res any, _ []deposit) {
		out = res.([]T)[c.rank]
	})
	c.ChargeComm(log2Ceil(c.P()), sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// Allgather collects one value from every PE into a rank-indexed slice on
// all PEs.
func Allgather[T any](c *Comm, x T) []T {
	var out []T
	c.exchange(mkTag(opAllgather, 0), x, wireCodec[T](c), func(boards []deposit) any {
		vals := make([]T, len(boards))
		for i := range boards {
			vals[i] = boards[i].Val.(T)
		}
		return vals
	}, func(res any, _ []deposit) {
		src := res.([]T)
		out = make([]T, len(src))
		copy(out, src)
	})
	c.ChargeComm(log2Ceil(c.P()), c.P()*sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// AllgatherConcat concatenates every PE's slice in rank order on all PEs.
// The deposited slices are only read by the pre-release combine (while all
// depositors are still inside the barrier), so callers may mutate xs as
// soon as the call returns.
func AllgatherConcat[T any](c *Comm, xs []T) []T {
	return AllgatherConcatInto(c, nil, xs)
}

// AllgatherConcatInto is AllgatherConcat appending the concatenation into
// dst (arena-friendly: pass a recycled zero-length slice to keep the
// caller-side result allocation-free; the combine-side staging buffer is
// collective-internal). Modeled cost and wire behaviour are identical to
// AllgatherConcat.
func AllgatherConcatInto[T any](c *Comm, dst []T, xs []T) []T {
	out := dst
	c.exchange(mkTag(opAllgatherConcat, 0), xs, wireCodec[[]T](c), func(boards []deposit) any {
		total := 0
		for i := range boards {
			total += len(boards[i].Val.([]T))
		}
		cat := make([]T, 0, total)
		for i := range boards {
			cat = append(cat, boards[i].Val.([]T)...)
		}
		return cat
	}, func(res any, _ []deposit) {
		out = append(out, res.([]T)...)
	})
	c.ChargeComm(log2Ceil(c.P()), (len(out)-len(dst))*sizeof.Of[T]())
	c.stats.Collectives++
	return out
}

// a2aFrame is one PE's personalized all-to-all deposit: all p outgoing
// buckets staged back to back in one flat buffer, with off[j]..off[j+1]
// delimiting the per-pair slot for PE j. The frame struct and its offset
// array are reusable per-parity staging (deposited as a pointer, so
// publishing never boxes); the flat data buffer is fresh per call because
// the receivers ADOPT their slots — the sender never touches it after the
// barrier, so ownership transfers, and the one allocation serves as both
// wire and result. Each reader slices out exactly its own range instead of
// unboxing and scanning a full [][]T board deposit.
type a2aFrame[T any] struct {
	data []T
	off  []int32
}

// Alltoall performs a direct (one-level) personalized all-to-all exchange:
// sendTo[i] is delivered to PE i, and the result's slot j holds what PE j
// sent here. Each PE is charged the §II-A direct cost α·(p−1) + β·ℓ with ℓ
// its bottleneck volume (max of bytes sent and received, self excluded).
// Received slices are owned by the caller, and the send buckets may be
// mutated as soon as the call returns.
func Alltoall[T any](c *Comm, sendTo [][]T) [][]T {
	recv := RawAlltoall(c, sendTo)
	elem := sizeof.Of[T]()
	sent, got := 0, 0
	for i := range sendTo {
		if i != c.rank {
			sent += len(sendTo[i])
		}
	}
	for i := range recv {
		if i != c.rank {
			got += len(recv[i])
		}
	}
	c.ChargeComm(c.P()-1, elem*max(sent, got))
	c.stats.Collectives++
	return recv
}

// RawAlltoall moves buckets like Alltoall but charges no modeled cost.
// It exists so routing strategies (internal/alltoall) can move data in
// several physical rounds while self-accounting the cost of each round with
// ChargeComm. Everything else should use Alltoall.
func RawAlltoall[T any](c *Comm, sendTo [][]T) [][]T {
	p := c.P()
	if len(sendTo) != p {
		panic(fmt.Sprintf("comm: Alltoall with %d buckets on a %d-PE world", len(sendTo), p))
	}
	fr, _ := c.a2aStage[c.epoch&1].(*a2aFrame[T])
	if fr == nil || len(fr.off) != p+1 {
		fr = &a2aFrame[T]{off: make([]int32, p+1)}
		c.a2aStage[c.epoch&1] = fr
	}
	total := 0
	for i := range sendTo {
		total += len(sendTo[i])
	}
	data := make([]T, 0, total)
	for i, b := range sendTo {
		fr.off[i] = int32(len(data))
		data = append(data, b...)
	}
	fr.off[p] = int32(len(data))
	fr.data = data
	recv := make([][]T, p)
	c.exchange(mkTag(opAlltoall, 0), fr, a2aCodecFor[T](c), nil, func(_ any, boards []deposit) {
		r := c.rank
		for i := range boards {
			f := boards[i].Val.(*a2aFrame[T])
			lo, hi := f.off[r], f.off[r+1]
			if lo < hi {
				// Three-index slice: an append on the received bucket must
				// reallocate, never spill into the next PE's bucket.
				recv[i] = f.data[lo:hi:hi]
			}
		}
	})
	return recv
}

// PairExchange swaps a payload with a partner PE. All PEs of the world must
// call it in the same superstep; a PE with partner < 0 or partner == rank
// participates with no transfer and receives nil. Partnerships must be
// symmetric. Cost: α + β·max(sent, received) per PE.
func PairExchange[T any](c *Comm, partner int, xs []T) []T {
	out := RawPairExchange(c, partner, xs)
	if partner >= 0 && partner != c.rank {
		c.ChargeComm(1, sizeof.Of[T]()*max(len(xs), len(out)))
	}
	return out
}

// RawPairExchange is PairExchange without the modeled cost charge, for
// routing strategies that self-account actual payload bytes (element types
// containing slices would otherwise be charged header sizes only). The
// payload is staged at deposit time and the staged buffer is adopted by the
// partner, so xs may be mutated after the call and the result is owned.
// Only the two partners' modeled clocks synchronize.
func RawPairExchange[T any](c *Comm, partner int, xs []T) []T {
	active := partner >= 0 && partner != c.rank
	var dep any
	if active {
		cp := make([]T, len(xs))
		copy(cp, xs)
		dep = cp
	}
	var out []T
	c.exchangeSubset(mkTag(opPairExchange, 0), dep, wireCodec[[]T](c), func(boards []deposit) {
		if active {
			m := math.Max(boards[c.rank].Clock, boards[partner].Clock)
			c.clock = math.Max(c.clock, m)
			out = boards[partner].Val.([]T)
		}
	})
	c.stats.Collectives++
	return out
}

// GroupAllreduce combines values over the listed member ranks only (a
// sub-communicator). All PEs of the world must call it in the same
// superstep; non-members pass members == nil and receive the zero value.
// Groups active in the same superstep must be disjoint. If T contains
// references (e.g. a slice field), the referenced data must stay unmutated
// until the caller's next collective.
func GroupAllreduce[T any](c *Comm, members []int, x T, op func(a, b T) T) T {
	var out T
	c.exchangeSubset(mkTag(opGroupAllreduce, 0), x, wireCodec[T](c), func(boards []deposit) {
		if len(members) == 0 {
			return
		}
		c.syncClocks(boards, members)
		out = boards[members[0]].Val.(T)
		for _, m := range members[1:] {
			out = op(out, boards[m].Val.(T))
		}
	})
	if len(members) > 0 {
		c.ChargeComm(log2Ceil(len(members)), sizeof.Of[T]())
	}
	c.stats.Collectives++
	return out
}
