package comm

import (
	"fmt"
	"testing"
)

// Wall-clock microbenchmarks of the communication substrate itself. ns/op is
// the real time of one collective superstep across the whole world (every PE
// executes b.N collectives; the world-wide superstep rate is what the
// simulator's throughput is bounded by). These numbers guard the substrate
// against regressions: pre/post figures for each change are recorded in
// CHANGES.md.

func benchAllreduce(b *testing.B, p int) {
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Allreduce(c, c.Rank()+i, func(x, y int) int {
				if x > y {
					return x
				}
				return y
			})
		}
	})
}

func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) { benchAllreduce(b, p) })
	}
}

func BenchmarkAllreduceVec(b *testing.B) {
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("p=%d/n=256", p), func(b *testing.B) {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				xs := make([]int, 256)
				for j := range xs {
					xs[j] = c.Rank() + j
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					AllreduceVec(c, xs, func(x, y int) int { return x + y })
				}
			})
		})
	}
}

func BenchmarkAlltoall(b *testing.B) {
	const p = 16
	b.Run(fmt.Sprintf("p=%d/bucket=256", p), func(b *testing.B) {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			send := make([][]int, p)
			for i := range send {
				send[i] = make([]int, 256)
				for j := range send[i] {
					send[i][j] = c.Rank()*1000 + j
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Alltoall(c, send)
			}
		})
	})
}

func BenchmarkBarrierCollective(b *testing.B) {
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Barrier(c)
				}
			})
		})
	}
}
