package comm

import (
	"fmt"
	"testing"
)

// TestExScanNonCommutative pins the rank ordering of the scan: string
// concatenation is associative but not commutative, so any reordering of
// contributions would corrupt the result.
func TestExScanNonCommutative(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		got := ExScan(c, fmt.Sprintf("%d.", c.Rank()), "", func(a, b string) string { return a + b })
		want := ""
		for i := 0; i < c.Rank(); i++ {
			want += fmt.Sprintf("%d.", i)
		}
		if got != want {
			t.Errorf("rank %d: ExScan=%q want %q", c.Rank(), got, want)
		}
	})
}

// TestAllreduceVecOddWorld exercises the fold/unfold path for non-power-of-
// two worlds specifically (extra ranks fold into the cube and read back).
func TestAllreduceVecOddWorld(t *testing.T) {
	for _, p := range []int{3, 5, 6, 9, 11} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			xs := []int{c.Rank() + 1, 2 * (c.Rank() + 1)}
			got := AllreduceVec(c, xs, func(a, b int) int { return a + b })
			sum := p * (p + 1) / 2
			if got[0] != sum || got[1] != 2*sum {
				t.Errorf("p=%d rank=%d: got %v want [%d %d]", p, c.Rank(), got, sum, 2*sum)
			}
		})
	}
}

// TestBcastFromEveryRoot sweeps the root argument.
func TestBcastFromEveryRoot(t *testing.T) {
	p := 4
	for root := 0; root < p; root++ {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			v := -1
			if c.Rank() == root {
				v = root * 7
			}
			if got := Bcast(c, root, v); got != root*7 {
				t.Errorf("root=%d rank=%d: got %d", root, c.Rank(), got)
			}
		})
	}
}

// TestClockMonotone ensures no collective ever rewinds a PE's clock.
func TestClockMonotone(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		last := c.Clock()
		step := func(name string) {
			if c.Clock() < last {
				t.Errorf("clock went backwards after %s", name)
			}
			last = c.Clock()
		}
		Barrier(c)
		step("barrier")
		Allgather(c, c.Rank())
		step("allgather")
		Alltoall(c, make([][]int, 4))
		step("alltoall")
		AllreduceVec(c, []int{1, 2}, func(a, b int) int { return a + b })
		step("allreducevec")
		ExScan(c, 1, 0, func(a, b int) int { return a + b })
		step("exscan")
	})
}

// TestResetLocalMetricsInsidePhasePanics documents the guard.
func TestResetLocalMetricsInsidePhasePanics(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
			c.PhaseEnd()
		}()
		c.PhaseBegin("x")
		c.ResetLocalMetrics()
	})
}

// TestWithThreadsClamped pins option validation.
func TestWithThreadsClamped(t *testing.T) {
	w := NewWorld(1, WithThreads(0))
	w.Run(func(c *Comm) {
		if c.Threads() != 1 {
			t.Errorf("Threads=%d want 1", c.Threads())
		}
	})
}

// TestGroupAllreduceManyGroups runs disjoint groups of unequal size in the
// same superstep.
func TestGroupAllreduceManyGroups(t *testing.T) {
	w := NewWorld(7)
	w.Run(func(c *Comm) {
		var members []int
		switch {
		case c.Rank() < 3:
			members = []int{0, 1, 2}
		case c.Rank() < 5:
			members = []int{3, 4}
		default:
			members = []int{5, 6}
		}
		got := GroupAllreduce(c, members, 1, func(a, b int) int { return a + b })
		if got != len(members) {
			t.Errorf("rank %d: group count %d want %d", c.Rank(), got, len(members))
		}
	})
}
