package comm

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kamsta/internal/faultinject"
)

func add(a, b int) int { return a + b }

// sumJob is the trivial health probe used between faults: an Allreduce whose
// result proves every PE participated.
func sumJob(t *testing.T, w *World) {
	t.Helper()
	var got atomic.Int64
	if err := w.RunJob(context.Background(), nil, func(c *Comm) {
		n := Allreduce(c, 1, add)
		if c.Rank() == 0 {
			got.Store(int64(n))
		}
	}); err != nil {
		t.Fatalf("health job after fault: %v", err)
	}
	if int(got.Load()) != w.p {
		t.Fatalf("health job: sum %d want %d", got.Load(), w.p)
	}
}

// TestContainedPanicReturnsJobError: a panic on one PE mid-job must surface
// as a structured *JobError — not crash the process — with every other PE
// unwinding the same superstep, and the world staying healthy for reuse.
func TestContainedPanicReturnsJobError(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	w.Start()
	defer w.Close()
	var exited atomic.Int32
	err := w.RunJob(context.Background(), nil, func(c *Comm) {
		defer exited.Add(1)
		Allreduce(c, 1, add)
		Allreduce(c, 2, add)
		if c.Rank() == 3 {
			panic("boom at rank 3")
		}
		for {
			Allreduce(c, 3, add) // the verdict unwinds everyone here
		}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultPanic || je.Rank != 3 {
		t.Fatalf("JobError = %+v, want FaultPanic at rank 3", je)
	}
	if je.PanicValue != "boom at rank 3" {
		t.Fatalf("PanicValue = %v", je.PanicValue)
	}
	if !strings.Contains(je.Stack, "fault_test") {
		t.Fatalf("Stack should show the panic site, got:\n%s", je.Stack)
	}
	if got := exited.Load(); got != p {
		t.Fatalf("%d PEs exited, want %d", got, p)
	}
	if w.Broken() {
		t.Fatal("contained panic must not break the world")
	}
	sumJob(t, w)
}

// TestPanicAfterLastCollective: a fault striking after the job's final
// algorithm collective is still contained — the close-out superstep
// guarantees a barrier where the abort verdict can release the world.
func TestPanicAfterLastCollective(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	done := make(chan error, 1)
	go func() {
		done <- w.RunJob(context.Background(), nil, func(c *Comm) {
			Allreduce(c, 1, add)
			if c.Rank() == 1 {
				panic("after the last collective")
			}
		})
	}()
	select {
	case err := <-done:
		var je *JobError
		if !errors.As(err, &je) || je.Rank != 1 {
			t.Fatalf("err = %v, want *JobError at rank 1", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job deadlocked: tail panic was not drained")
	}
	if w.Broken() {
		t.Fatal("world should survive a tail panic")
	}
	sumJob(t, w)
}

// TestCombineClosurePanicContained: a panic inside a collective's combine
// closure runs on the pre-release combiner while every PE is blocked in the
// barrier; it must be contained like any PE panic, with the release still
// happening.
func TestCombineClosurePanicContained(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.RunJob(context.Background(), nil, func(c *Comm) {
		Allreduce(c, 1, add)
		Allreduce(c, 1, func(a, b int) int { panic("combine boom") })
		Allreduce(c, 1, add)
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultPanic || je.PanicValue != "combine boom" {
		t.Fatalf("JobError = %+v", je)
	}
	if w.Broken() {
		t.Fatal("combine panic must not break the world")
	}
	sumJob(t, w)
}

// TestLostPEPoisonsWorld: a goroutine lost to runtime.Goexit cannot be
// unwound cooperatively — the world must be poisoned so the remaining PEs
// escape the barrier, the job must report FaultLostPE, and the broken world
// must refuse further jobs.
func TestLostPEPoisonsWorld(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.RunJob(context.Background(), nil, func(c *Comm) {
		Allreduce(c, 1, add)
		if c.Rank() == 2 {
			runtime.Goexit()
		}
		for {
			Allreduce(c, 1, add)
		}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultLostPE || je.Rank != 2 {
		t.Fatalf("JobError = %+v, want FaultLostPE at rank 2", je)
	}
	if !w.Broken() {
		t.Fatal("lost PE must poison the world")
	}
	if err := w.RunJob(context.Background(), nil, func(c *Comm) {}); !errors.Is(err, ErrBroken) {
		t.Fatalf("job on broken world: %v, want ErrBroken", err)
	}
}

// TestStallDetection: a PE that never reaches the next barrier must trip the
// watchdog, which reports exactly which ranks arrived and which did not, and
// poisons the world.
func TestStallDetection(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	release := make(chan struct{})
	err := w.RunJobCfg(context.Background(), JobConfig{StallTimeout: 50 * time.Millisecond}, func(c *Comm) {
		Allreduce(c, 1, add)
		if c.Rank() == 1 {
			<-release // stuck in "compute", never arrives
		}
		Allreduce(c, 1, add)
	})
	close(release) // let the straggler unwind via the poisoned barrier
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultStall || je.Rank != -1 {
		t.Fatalf("JobError = %+v, want FaultStall", je)
	}
	if len(je.Missing) != 1 || je.Missing[0] != 1 {
		t.Fatalf("Missing = %v, want [1]", je.Missing)
	}
	if len(je.Arrived) != p-1 {
		t.Fatalf("Arrived = %v, want the other %d ranks", je.Arrived, p-1)
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("error text %q should mention the stall", err)
	}
	if !w.Broken() {
		t.Fatal("a stall must poison the world")
	}
}

// TestNoStallOnHealthyJob: the watchdog must not fire on a job that keeps
// completing collectives, even one running longer than the timeout.
func TestNoStallOnHealthyJob(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.RunJobCfg(context.Background(), JobConfig{StallTimeout: 100 * time.Millisecond}, func(c *Comm) {
		deadline := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(deadline) {
			Allreduce(c, 1, add)
			time.Sleep(5 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("healthy slow job: %v", err)
	}
	if w.Broken() {
		t.Fatal("watchdog fired on a progressing job")
	}
}

// TestInjectedPanicContained: a deterministic injected panic at a chosen
// (rank, occurrence) collective site behaves exactly like an organic panic —
// contained, attributed, world reusable.
func TestInjectedPanicContained(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	w.Start()
	defer w.Close()
	rule := &faultinject.Rule{Site: faultinject.SiteCollective, Rank: 2, Occurrence: 3, Action: faultinject.ActPanic}
	plan := faultinject.NewPlan(rule)
	err := w.RunJobCfg(context.Background(), JobConfig{Inject: plan}, func(c *Comm) {
		for i := 0; i < 10; i++ {
			Allreduce(c, 1, add)
		}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Kind != FaultPanic || je.Rank != 2 {
		t.Fatalf("JobError = %+v, want injected FaultPanic at rank 2", je)
	}
	ip, ok := je.PanicValue.(faultinject.InjectedPanic)
	if !ok || ip.Rank != 2 || ip.Occurrence != 3 {
		t.Fatalf("PanicValue = %#v, want InjectedPanic{Rank: 2, Occurrence: 3}", je.PanicValue)
	}
	if !rule.Fired() || !plan.Exhausted() {
		t.Fatal("plan should report its rule as fired")
	}
	if w.Broken() {
		t.Fatal("injected panic must not break the world")
	}
	sumJob(t, w)
}

// TestInjectedDelayHarmless: an ActDelay rule perturbs timing but not
// results; the job completes normally.
func TestInjectedDelayHarmless(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	plan := faultinject.NewPlan(&faultinject.Rule{
		Site: faultinject.SiteCollective, Rank: 1, Occurrence: 2,
		Action: faultinject.ActDelay, Delay: 5 * time.Millisecond,
	})
	var got atomic.Int64
	err := w.RunJobCfg(context.Background(), JobConfig{Inject: plan}, func(c *Comm) {
		n := 0
		for i := 0; i < 5; i++ {
			n = Allreduce(c, 1, add)
		}
		if c.Rank() == 0 {
			got.Store(int64(n))
		}
	})
	if err != nil {
		t.Fatalf("delay-injected job: %v", err)
	}
	if int(got.Load()) != p {
		t.Fatalf("sum %d want %d", got.Load(), p)
	}
}

// TestMultiRankFaultsKeepFirst: when two ranks panic in the same superstep,
// the job reports the total fault count and still unwinds everyone.
func TestMultiRankFaultsKeepFirst(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.RunJob(context.Background(), nil, func(c *Comm) {
		Allreduce(c, 1, add)
		if c.Rank() == 0 || c.Rank() == 3 {
			panic("double trouble")
		}
		for {
			Allreduce(c, 1, add)
		}
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v (%T), want *JobError", err, err)
	}
	if je.Faults < 1 || je.Faults > 2 {
		t.Fatalf("Faults = %d, want 1 or 2", je.Faults)
	}
	if w.Broken() {
		t.Fatal("world should survive the double panic")
	}
	sumJob(t, w)
}

// TestCancellationStillWins: the cancel path must keep working with the
// containment machinery in place — ctx expiry unwinds all PEs and returns
// ctx.Err(), not a JobError.
func TestCancellationStillWins(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	ctx, cancel := context.WithCancel(context.Background())
	err := w.RunJob(ctx, nil, func(c *Comm) {
		for i := 0; ; i++ {
			Allreduce(c, 1, add)
			if c.Rank() == 0 && i == 5 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if w.Broken() {
		t.Fatal("cancellation must not break the world")
	}
	sumJob(t, w)
}

// TestRunRepanicsJobError: the legacy Run API keeps its crash-loudly
// contract — a contained fault is re-raised as a panic carrying the
// *JobError.
func TestRunRepanicsJobError(t *testing.T) {
	const p = 2
	w := NewWorld(p)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run should re-panic the JobError")
		}
		if _, ok := r.(*JobError); !ok {
			t.Fatalf("recovered %T, want *JobError", r)
		}
	}()
	w.Run(func(c *Comm) {
		Allreduce(c, 1, add)
		if c.Rank() == 1 {
			panic("crash loudly")
		}
		for {
			Allreduce(c, 1, add)
		}
	})
}
