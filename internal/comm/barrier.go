package comm

import "sync"

// barrier is a reusable (cyclic) barrier for a fixed number of parties.
// Wait blocks until all parties have called it, then releases everyone and
// rearms for the next round.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all n parties arrive.
func (b *barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
