package comm

import (
	"testing"
)

// Stress and protocol tests for the double-buffered single-barrier exchange
// substrate. These are written to fail loudly under -race if any of the
// epoch-parity ownership arguments (boards, staging, adopted buffers,
// AllreduceVec's ping-pong) is wrong.

// TestLargeWorldMixedCollectives runs a world far wider than the core count
// through several multi-level tree-barrier epochs with a mix of collective
// shapes, checking values throughout.
func TestLargeWorldMixedCollectives(t *testing.T) {
	const p = 256 // three levels at fan-in 8
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		for round := 0; round < 5; round++ {
			sum := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
			if want := p * (p - 1) / 2; sum != want {
				t.Errorf("round %d rank %d: sum=%d want %d", round, c.Rank(), sum, want)
				return
			}
			pre := ExScan(c, 1, 0, func(a, b int) int { return a + b })
			if pre != c.Rank() {
				t.Errorf("round %d rank %d: exscan=%d", round, c.Rank(), pre)
				return
			}
			Barrier(c)
			got := Bcast(c, round%p, round*7)
			if got != round*7 {
				t.Errorf("round %d rank %d: bcast=%d", round, c.Rank(), got)
				return
			}
		}
	})
}

// TestInputsMutableImmediatelyAfterReturn pins the ownership contract the
// single-barrier protocol must preserve: every buffer-carrying collective
// stages or hands off its payload, so a PE scribbling over its inputs right
// after the call returns can never corrupt (or race with) a slower PE's
// read of the same superstep. Run with -race to verify the "no race" half.
func TestInputsMutableImmediatelyAfterReturn(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		for round := 0; round < 50; round++ {
			// BcastSlice: root trashes xs right after the call.
			xs := []int{round, c.Rank(), 3}
			got := BcastSlice(c, 0, xs)
			for i := range xs {
				xs[i] = -1
			}
			if got[0] != round || got[1] != 0 || got[2] != 3 {
				t.Errorf("round %d rank %d: BcastSlice got %v", round, c.Rank(), got)
				return
			}

			// AllgatherConcat: contribution trashed right after.
			contrib := []int{c.Rank() * 10, c.Rank()*10 + 1}
			cat := AllgatherConcat(c, contrib)
			contrib[0], contrib[1] = -1, -1
			if len(cat) != 2*p {
				t.Fatalf("concat len %d", len(cat))
			}
			for r := 0; r < p; r++ {
				if cat[2*r] != r*10 || cat[2*r+1] != r*10+1 {
					t.Errorf("round %d: concat slot %d = %v", round, r, cat[2*r:2*r+2])
					return
				}
			}

			// Alltoall: send buckets trashed right after; received buckets
			// mutated and appended to (the 3-index clip must isolate them).
			send := make([][]int, p)
			for j := range send {
				send[j] = []int{c.Rank()*1000 + j, round}
			}
			recv := Alltoall(c, send)
			for j := range send {
				send[j][0], send[j][1] = -9, -9
			}
			for s := range recv {
				recv[s] = append(recv[s], 12345) // must not spill anywhere
				if recv[s][0] != s*1000+c.Rank() || recv[s][1] != round {
					t.Errorf("round %d rank %d: from %d got %v", round, c.Rank(), s, recv[s][:2])
					return
				}
			}

			// PairExchange: payload trashed right after.
			partner := c.Rank() ^ 1
			pay := []int{c.Rank(), round}
			out := PairExchange(c, partner, pay)
			pay[0], pay[1] = -7, -7
			if out[0] != partner || out[1] != round {
				t.Errorf("round %d rank %d: pair got %v", round, c.Rank(), out)
				return
			}

			// AllreduceVec: the returned accumulator is scribbled over
			// immediately; the next round must be unaffected.
			vec := AllreduceVec(c, []int{c.Rank(), 1}, func(a, b int) int { return a + b })
			if vec[0] != p*(p-1)/2 || vec[1] != p {
				t.Errorf("round %d rank %d: vec %v", round, c.Rank(), vec)
				return
			}
			vec[0], vec[1] = -3, -3
		}
	})
}

// TestAllreduceVecOwnershipOddWorlds exercises the fold/unfold staging on
// non-power-of-two worlds with immediate mutation of the result.
func TestAllreduceVecOwnershipOddWorlds(t *testing.T) {
	for _, p := range []int{3, 5, 7, 12, 24} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			for round := 0; round < 20; round++ {
				vec := AllreduceVec(c, []int{c.Rank() + round, 2}, func(a, b int) int { return a + b })
				want0 := p*round + p*(p-1)/2
				if vec[0] != want0 || vec[1] != 2*p {
					t.Errorf("p=%d round %d rank %d: %v want [%d %d]", p, round, c.Rank(), vec, want0, 2*p)
					return
				}
				vec[0] = -1
			}
		})
	}
}

// TestRunReusesParityCleanly reuses one world for several Runs with an odd
// number of supersteps each, so consecutive Runs start on opposite board
// parities; deposits from a previous Run must never bleed through.
func TestRunReusesParityCleanly(t *testing.T) {
	w := NewWorld(4)
	for run := 0; run < 4; run++ {
		w.Run(func(c *Comm) {
			for i := 0; i < 3; i++ { // odd superstep count
				got := Allreduce(c, run*100+i, func(a, b int) int { return max(a, b) })
				if got != run*100+i {
					t.Errorf("run %d step %d: got %d", run, i, got)
				}
			}
		})
	}
}

// TestGroupAllreduceWithSliceField pins the GroupAllreduce reference-type
// contract used by dsort's pivot sampling: a struct containing a slice is
// merged across a subgroup while another subgroup does the same.
func TestGroupAllreduceWithSliceField(t *testing.T) {
	type set struct{ Items []int }
	const p = 8
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		half := c.Rank() / 4
		members := []int{half * 4, half*4 + 1, half*4 + 2, half*4 + 3}
		for round := 0; round < 25; round++ {
			mine := set{Items: []int{c.Rank(), round}}
			got := GroupAllreduce(c, members, mine, func(a, b set) set {
				m := make([]int, 0, len(a.Items)+len(b.Items))
				m = append(m, a.Items...)
				m = append(m, b.Items...)
				return set{Items: m}
			})
			if len(got.Items) != 8 {
				t.Errorf("round %d rank %d: merged %v", round, c.Rank(), got.Items)
				return
			}
			for i, m := range members {
				if got.Items[2*i] != m || got.Items[2*i+1] != round {
					t.Errorf("round %d rank %d: merged %v", round, c.Rank(), got.Items)
					return
				}
			}
		}
	})
}

// TestManyCollectivesHighChurn hammers the substrate with small collectives
// to stress door parking, epoch wraparound of the parities, and the SPMD
// tag check.
func TestManyCollectivesHighChurn(t *testing.T) {
	const p = 32
	w := NewWorld(p)
	w.Run(func(c *Comm) {
		for i := 0; i < 500; i++ {
			if Allreduce(c, 1, func(a, b int) int { return a + b }) != p {
				t.Error("bad sum")
				return
			}
		}
	})
}
