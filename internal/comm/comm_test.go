package comm

import (
	"sync"
	"testing"
	"time"
)

var worldSizes = []int{1, 2, 3, 4, 7, 8, 16}

func TestWorldRunRanks(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		var mu sync.Mutex
		seen := map[int]bool{}
		w.Run(func(c *Comm) {
			mu.Lock()
			seen[c.Rank()] = true
			mu.Unlock()
			if c.P() != p {
				t.Errorf("P()=%d want %d", c.P(), p)
			}
		})
		if len(seen) != p {
			t.Fatalf("p=%d: only %d ranks ran", p, len(seen))
		}
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) should panic")
		}
	}()
	NewWorld(0)
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	var phase [p]int32
	w.Run(func(c *Comm) {
		phase[c.Rank()] = 1
		Barrier(c)
		// After the barrier, every PE must observe everyone in phase 1.
		for i := 0; i < p; i++ {
			if phase[i] != 1 {
				t.Errorf("rank %d saw rank %d not yet at barrier", c.Rank(), i)
			}
		}
	})
}

func TestBcast(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		root := p / 2
		w.Run(func(c *Comm) {
			v := -1
			if c.Rank() == root {
				v = 42
			}
			got := Bcast(c, root, v)
			if got != 42 {
				t.Errorf("p=%d rank=%d: Bcast got %d", p, c.Rank(), got)
			}
		})
	}
}

func TestBcastSliceOwnership(t *testing.T) {
	w := NewWorld(4)
	results := make([][]int, 4)
	w.Run(func(c *Comm) {
		var xs []int
		if c.Rank() == 0 {
			xs = []int{1, 2, 3}
		}
		got := BcastSlice(c, 0, xs)
		got[0] += c.Rank() // mutate the copy; must not affect others
		results[c.Rank()] = got
	})
	for r, res := range results {
		if len(res) != 3 || res[0] != 1+r || res[1] != 2 || res[2] != 3 {
			t.Fatalf("rank %d got %v; copies are not independent", r, res)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		want := p * (p - 1) / 2
		w.Run(func(c *Comm) {
			got := Allreduce(c, c.Rank(), func(a, b int) int { return a + b })
			if got != want {
				t.Errorf("p=%d rank=%d: Allreduce=%d want %d", p, c.Rank(), got, want)
			}
		})
	}
}

func TestAllreduceMax(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		got := Allreduce(c, (c.Rank()*3)%5, func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		if got != 4 {
			t.Errorf("Allreduce max=%d want 4", got)
		}
	})
}

func TestAllreduceVec(t *testing.T) {
	for _, p := range worldSizes {
		for _, n := range []int{0, 1, 5, 100} {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				xs := make([]int, n)
				for j := range xs {
					xs[j] = c.Rank() + j
				}
				got := AllreduceVec(c, xs, func(a, b int) int { return a + b })
				for j := range got {
					want := p*j + p*(p-1)/2
					if got[j] != want {
						t.Errorf("p=%d n=%d rank=%d: got[%d]=%d want %d", p, n, c.Rank(), j, got[j], want)
					}
				}
			})
		}
	}
}

func TestAllreduceVecMin(t *testing.T) {
	type slot struct{ W, Owner int }
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			xs := make([]slot, 8)
			for j := range xs {
				xs[j] = slot{W: (c.Rank()*7+j*3)%13 + 1, Owner: c.Rank()}
			}
			got := AllreduceVec(c, xs, func(a, b slot) slot {
				if a.W < b.W || (a.W == b.W && a.Owner < b.Owner) {
					return a
				}
				return b
			})
			// Recompute expectation directly.
			for j := range got {
				best := slot{W: 1 << 30}
				for r := 0; r < p; r++ {
					s := slot{W: (r*7+j*3)%13 + 1, Owner: r}
					if s.W < best.W || (s.W == best.W && s.Owner < best.Owner) {
						best = s
					}
				}
				if got[j] != best {
					t.Errorf("p=%d slot %d: got %+v want %+v", p, j, got[j], best)
				}
			}
		})
	}
}

func TestExScan(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			got := ExScan(c, c.Rank()+1, 0, func(a, b int) int { return a + b })
			want := 0
			for i := 0; i < c.Rank(); i++ {
				want += i + 1
			}
			if got != want {
				t.Errorf("p=%d rank=%d: ExScan=%d want %d", p, c.Rank(), got, want)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			got := Allgather(c, c.Rank()*c.Rank())
			for i := range got {
				if got[i] != i*i {
					t.Errorf("p=%d: Allgather[%d]=%d want %d", p, i, got[i], i*i)
				}
			}
		})
	}
}

func TestAllgatherConcat(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			xs := make([]int, c.Rank()) // rank r contributes r copies of r
			for j := range xs {
				xs[j] = c.Rank()
			}
			got := AllgatherConcat(c, xs)
			want := p * (p - 1) / 2
			if len(got) != want {
				t.Fatalf("p=%d: concat length %d want %d", p, len(got), want)
			}
			k := 0
			for r := 0; r < p; r++ {
				for j := 0; j < r; j++ {
					if got[k] != r {
						t.Fatalf("p=%d: concat[%d]=%d want %d", p, k, got[k], r)
					}
					k++
				}
			}
		})
	}
}

// TestAllgatherConcatInto checks the arena-destination variant: the result
// is appended after dst's existing contents, a recycled buffer grows only
// while the working set does, and the modeled charge equals the plain
// AllgatherConcat.
func TestAllgatherConcatInto(t *testing.T) {
	p := 4
	w := NewWorld(p)
	clocks := make([]float64, 2)
	w.Run(func(c *Comm) {
		xs := []int{c.Rank(), c.Rank()}
		dst := make([]int, 1, 16)
		dst[0] = -1
		got := AllgatherConcatInto(c, dst, xs)
		if len(got) != 1+2*p || got[0] != -1 {
			t.Fatalf("rank %d: got %v", c.Rank(), got)
		}
		for r := 0; r < p; r++ {
			if got[1+2*r] != r || got[2+2*r] != r {
				t.Fatalf("rank %d: concat misordered: %v", c.Rank(), got)
			}
		}
		if c.Rank() == 0 {
			clocks[0] = c.Clock()
		}
	})
	w2 := NewWorld(p)
	w2.Run(func(c *Comm) {
		xs := []int{c.Rank(), c.Rank()}
		AllgatherConcat(c, xs)
		if c.Rank() == 0 {
			clocks[1] = c.Clock()
		}
	})
	if clocks[0] != clocks[1] {
		t.Errorf("Into variant charged %v, plain %v", clocks[0], clocks[1])
	}
}

func TestAlltoallRouting(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			send := make([][]int, p)
			for d := 0; d < p; d++ {
				// rank r sends d+1 copies of r*100+d to PE d
				for j := 0; j <= d; j++ {
					send[d] = append(send[d], c.Rank()*100+d)
				}
			}
			recv := Alltoall(c, send)
			for s := 0; s < p; s++ {
				if len(recv[s]) != c.Rank()+1 {
					t.Errorf("p=%d rank=%d: from %d got %d items want %d", p, c.Rank(), s, len(recv[s]), c.Rank()+1)
					continue
				}
				for _, v := range recv[s] {
					if v != s*100+c.Rank() {
						t.Errorf("p=%d rank=%d: from %d got value %d", p, c.Rank(), s, v)
					}
				}
			}
		})
	}
}

func TestAlltoallReceivedDataIsOwned(t *testing.T) {
	w := NewWorld(2)
	var got [2][]int
	w.Run(func(c *Comm) {
		send := make([][]int, 2)
		send[1-c.Rank()] = []int{c.Rank() + 10}
		recv := Alltoall(c, send)
		recv[1-c.Rank()][0] += 100 // mutate received copy
		send[1-c.Rank()][0] = -1   // mutate our send buffer after the call
		got[c.Rank()] = recv[1-c.Rank()]
	})
	if got[0][0] != 111 || got[1][0] != 110 {
		t.Fatalf("received data is aliased: %v %v", got[0], got[1])
	}
}

func TestPairExchange(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			partner := c.Rank() ^ 1
			out := PairExchange(c, partner, []int{c.Rank(), c.Rank() * 2})
			if len(out) != 2 || out[0] != partner || out[1] != partner*2 {
				t.Errorf("p=%d rank=%d: PairExchange got %v", p, c.Rank(), out)
			}
		})
	}
}

func TestPairExchangeNoPartner(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		partner := -1
		if c.Rank() < 2 {
			partner = c.Rank() ^ 1
		}
		out := PairExchange(c, partner, []int{c.Rank()})
		if c.Rank() == 2 && out != nil {
			t.Errorf("lonely rank received %v", out)
		}
		if c.Rank() < 2 && (len(out) != 1 || out[0] != partner) {
			t.Errorf("rank %d got %v", c.Rank(), out)
		}
	})
}

func TestGroupAllreduce(t *testing.T) {
	w := NewWorld(8)
	w.Run(func(c *Comm) {
		var members []int
		if c.Rank() < 4 {
			members = []int{0, 1, 2, 3}
		} else {
			members = []int{4, 5, 6, 7}
		}
		got := GroupAllreduce(c, members, c.Rank(), func(a, b int) int { return a + b })
		want := 0 + 1 + 2 + 3
		if c.Rank() >= 4 {
			want = 4 + 5 + 6 + 7
		}
		if got != want {
			t.Errorf("rank %d: group sum %d want %d", c.Rank(), got, want)
		}
	})
}

func TestGroupAllreduceNonMember(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		var members []int
		if c.Rank() < 2 {
			members = []int{0, 1}
		}
		got := GroupAllreduce(c, members, c.Rank()+1, func(a, b int) int { return a + b })
		if c.Rank() < 2 && got != 3 {
			t.Errorf("member rank %d got %d want 3", c.Rank(), got)
		}
		if c.Rank() >= 2 && got != 0 {
			t.Errorf("non-member rank %d got %d want zero value", c.Rank(), got)
		}
	})
}

func TestModeledClockAdvances(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		before := c.Clock()
		Barrier(c)
		Allreduce(c, 1, func(a, b int) int { return a + b })
		if c.Clock() <= before {
			t.Errorf("rank %d: clock did not advance over collectives", c.Rank())
		}
	})
	if w.MaxClock() <= 0 {
		t.Fatal("world MaxClock should be positive after a run")
	}
}

func TestClockBSPSync(t *testing.T) {
	// A straggler's modeled time must propagate to everyone at a barrier.
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			c.ChargeComputeSeq(1_000_000_000) // 1e9 ops ≈ 2s modeled
		}
		Barrier(c)
		if c.Clock() < 1.0 {
			t.Errorf("rank %d clock %.3f did not sync with straggler", c.Rank(), c.Clock())
		}
	})
}

func TestChargeComputeDividesByThreads(t *testing.T) {
	w1 := NewWorld(1, WithThreads(1))
	w8 := NewWorld(1, WithThreads(8))
	var t1, t8 float64
	w1.Run(func(c *Comm) { c.ChargeCompute(1000000); t1 = c.Clock() })
	w8.Run(func(c *Comm) { c.ChargeCompute(1000000); t8 = c.Clock() })
	if t8 >= t1 {
		t.Fatalf("8-thread compute charge %.9f not below 1-thread %.9f", t8, t1)
	}
	if ratio := t1 / t8; ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("thread speedup ratio %.2f want 8", ratio)
	}
}

func TestAlltoallCostScalesWithP(t *testing.T) {
	// The direct all-to-all's startup term must grow linearly in p.
	cost := func(p int) float64 {
		w := NewWorld(p)
		var clk float64
		w.Run(func(c *Comm) {
			send := make([][]int, p)
			Alltoall(c, send) // empty payload: pure startup cost
			if c.Rank() == 0 {
				clk = c.Clock()
			}
		})
		return clk
	}
	c4, c16 := cost(4), cost(16)
	if c16 < 3*c4 {
		t.Fatalf("alltoall startup cost p=16 (%.2e) not ~5x p=4 (%.2e)", c16, c4)
	}
}

func TestPhaseTimers(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		c.Phase("alpha", func() {
			c.ChargeComputeSeq(1000)
		})
		c.Phase("beta", func() {
			c.ChargeComputeSeq(3000)
		})
	})
	ph := w.Phases()
	a, b := ph["alpha"], ph["beta"]
	if a.Modeled <= 0 || b.Modeled <= 0 {
		t.Fatalf("phases not recorded: %+v", ph)
	}
	if b.Modeled <= a.Modeled {
		t.Fatalf("beta (%.2e) should cost more than alpha (%.2e)", b.Modeled, a.Modeled)
	}
}

func TestNestedPhasesDisjoint(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		c.Phase("outer", func() {
			c.ChargeComputeSeq(1000)
			c.Phase("inner", func() {
				c.ChargeComputeSeq(5000)
			})
		})
	})
	ph := w.Phases()
	outer, inner := ph["outer"], ph["inner"]
	if inner.Modeled <= 0 {
		t.Fatal("inner phase not recorded")
	}
	// Outer must exclude inner's time.
	if outer.Modeled >= inner.Modeled {
		t.Fatalf("outer %.2e should be smaller than inner %.2e after exclusion", outer.Modeled, inner.Modeled)
	}
}

func TestPhaseNamesSorted(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		c.Phase("zz", func() {})
		c.Phase("aa", func() {})
	})
	names := w.PhaseNames()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Fatalf("PhaseNames = %v", names)
	}
}

func TestStatsAccumulate(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		send := make([][]byte, 4)
		for i := range send {
			send[i] = []byte{1, 2, 3}
		}
		Alltoall(c, send)
	})
	s := w.TotalStats()
	if s.Collectives != 4 {
		t.Fatalf("Collectives=%d want 4", s.Collectives)
	}
	if s.Bytes <= 0 || s.Messages <= 0 {
		t.Fatalf("stats not counted: %+v", s)
	}
}

func TestResetMetrics(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) { Barrier(c) })
	w.ResetMetrics()
	if w.MaxClock() != 0 {
		t.Fatal("MaxClock not reset")
	}
	if s := w.TotalStats(); s.Collectives != 0 {
		t.Fatal("stats not reset")
	}
	// World must remain usable after reset.
	w.Run(func(c *Comm) { Barrier(c) })
	if w.MaxClock() <= 0 {
		t.Fatal("world unusable after ResetMetrics")
	}
}

func TestRepeatedRuns(t *testing.T) {
	w := NewWorld(3)
	for i := 0; i < 3; i++ {
		w.Run(func(c *Comm) {
			v := Allreduce(c, 1, func(a, b int) int { return a + b })
			if v != 3 {
				t.Errorf("run %d: allreduce=%d", i, v)
			}
		})
	}
}

func TestManyCollectivesStress(t *testing.T) {
	w := NewWorld(8)
	done := make(chan struct{})
	go func() {
		w.Run(func(c *Comm) {
			for i := 0; i < 200; i++ {
				x := Allreduce(c, i, func(a, b int) int { return a + b })
				if x != 8*i {
					t.Errorf("iteration %d: got %d", i, x)
					return
				}
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("collective stress test deadlocked")
	}
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8)
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			Barrier(c)
		}
	})
}

func BenchmarkAlltoall16(b *testing.B) {
	w := NewWorld(16)
	payload := make([]int, 64)
	w.Run(func(c *Comm) {
		send := make([][]int, 16)
		for i := range send {
			send[i] = payload
		}
		for i := 0; i < b.N; i++ {
			Alltoall(c, send)
		}
	})
}
