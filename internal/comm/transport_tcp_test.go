package comm

import (
	"context"
	"fmt"
	"net"
	"testing"

	"kamsta/internal/transport/tcp"
)

// distWorld is a world split across a leader and one follower transport
// over a real loopback TCP connection — two worlds in one process, as a
// leader and an mstworker process would hold them.
type distWorld struct {
	leader, follower *World
	lt               *tcp.Leader
}

// newDistWorld builds a p-rank world with local leader ranks and the rest
// behind a loopback connection. Both halves are started; run() executes one
// SPMD body on every rank of both.
func newDistWorld(t *testing.T, p, local int) *distWorld {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	type accepted struct {
		f   *tcp.Follower
		hs  tcp.Handshake
		err error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			acceptCh <- accepted{err: err}
			return
		}
		f, hs, err := tcp.AcceptFollower(conn, nil)
		acceptCh <- accepted{f: f, hs: hs, err: err}
	}()

	lt, err := tcp.NewLeader(tcp.LeaderConfig{
		P: p, LocalRanks: local, Workers: []string{lis.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := <-acceptCh
	if acc.err != nil {
		lt.Close()
		t.Fatal(acc.err)
	}

	d := &distWorld{lt: lt}
	d.leader = NewWorld(p, WithTransport(lt))
	d.follower = NewWorld(p, WithTransport(acc.f))
	d.leader.Start()
	d.follower.Start()
	t.Cleanup(func() {
		d.leader.Close()
		lt.Close()
		d.follower.Close()
		acc.f.Close()
	})
	return d
}

// run executes one SPMD body on both halves concurrently, as one job.
func (d *distWorld) run(t *testing.T, body func(c *Comm)) {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- d.follower.RunJob(context.Background(), nil, body) }()
	if err := d.leader.RunJob(context.Background(), nil, body); err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("follower: %v", err)
	}
}

// shmReference runs body on a plain in-process world and returns the given
// extractor's per-rank results for comparison.
func shmReference(t *testing.T, p int, body func(c *Comm)) {
	t.Helper()
	w := NewWorld(p)
	w.Start()
	defer w.Close()
	if err := w.RunJob(context.Background(), nil, body); err != nil {
		t.Fatal(err)
	}
}

// TestTCPTransportParity runs the collectives the algorithms lean on over
// both backends and requires identical per-rank results and modeled clocks.
func TestTCPTransportParity(t *testing.T) {
	for _, g := range []struct{ p, local int }{{2, 1}, {8, 4}, {8, 7}} {
		t.Run(fmt.Sprintf("p%d-local%d", g.p, g.local), func(t *testing.T) {
			p := g.p

			// One body exercising the pairwise and group paths together;
			// results and final clocks are captured per rank.
			mkBody := func(vals []int, clocks []float64) func(c *Comm) {
				return func(c *Comm) {
					r := c.Rank()
					sum := Allreduce(c, r+1, func(a, b int) int { return a + b })
					partner := r ^ 1
					var pair []int
					if partner < p {
						pair = PairExchange(c, partner, []int{r, r * 10})
					} else {
						Barrier(c)
						Barrier(c)
					}
					var raw []int
					if partner < p {
						raw = RawPairExchange(c, partner, []int{r + 100})
					} else {
						Barrier(c)
						Barrier(c)
					}
					members := make([]int, 0, p/2+1)
					for q := 0; q < p; q += 2 {
						members = append(members, q)
					}
					gsum := GroupAllreduce(c, members, r+7, func(a, b int) int { return a + b })
					all := AllgatherConcat(c, []int{r * 3})
					acc := sum + gsum
					for _, v := range pair {
						acc += v
					}
					for _, v := range raw {
						acc += v
					}
					for _, v := range all {
						acc += v
					}
					vals[r] = acc
					clocks[r] = c.Clock()
				}
			}

			// PairExchange/RawPairExchange are two-sided: with an odd rank
			// out, the partnerless rank must still match collective counts.
			// Keep partners in range instead for simplicity.
			wantVals := make([]int, p)
			wantClocks := make([]float64, p)
			shmReference(t, p, mkBody(wantVals, wantClocks))

			gotVals := make([]int, p)
			gotClocks := make([]float64, p)
			d := newDistWorld(t, p, g.local)
			d.run(t, mkBody(gotVals, gotClocks))

			for r := 0; r < p; r++ {
				if gotVals[r] != wantVals[r] {
					t.Errorf("rank %d: value %d over tcp, %d over shm", r, gotVals[r], wantVals[r])
				}
				if gotClocks[r] != wantClocks[r] {
					t.Errorf("rank %d: clock %v over tcp, %v over shm", r, gotClocks[r], wantClocks[r])
				}
			}
		})
	}
}

// TestTCPLeaderDialExhaustion pins that a dead worker port fails leader
// construction after the configured retries instead of hanging.
func TestTCPLeaderDialExhaustion(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing listens here anymore
	if _, err := tcp.NewLeader(tcp.LeaderConfig{
		P: 2, LocalRanks: 1, Workers: []string{addr},
		DialRetries: 2, DialBackoff: 1, DialTimeout: 1,
	}); err == nil {
		t.Fatal("NewLeader dialed a closed port successfully")
	}
}
