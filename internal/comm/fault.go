package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"kamsta/internal/transport"
)

// This file is the world's failure model: the structured error a contained
// fault surfaces (JobError), the classification of faults (FaultKind), the
// stall watchdog, and the broken-world state a fault the cooperative
// protocol cannot resolve leaves behind. The containment protocol itself
// lives next to the code it guards: verdict publication in preRelease,
// sentinel unwinding in deposit, panic recovery and the abort drain in
// runPE (see job.go for the protocol narrative).

// FaultKind classifies a contained job failure.
type FaultKind uint8

const (
	// FaultPanic is a recovered PE panic (algorithm bug, SPMD divergence,
	// injected fault, or a panic inside a collective's combine closure).
	// The world unwound cooperatively and remains usable.
	FaultPanic FaultKind = iota + 1
	// FaultStall means no collective completed within the job's stall
	// timeout; the watchdog poisoned the world, which must be rebuilt.
	FaultStall
	// FaultLostPE means a PE goroutine died without reporting an outcome
	// (runtime.Goexit from algorithm code, or an escape from the
	// containment recovery itself); the world is down a party and was
	// poisoned — it must be rebuilt.
	FaultLostPE
	// FaultTransport means the substrate connecting this world to its
	// remote rank blocks failed mid-job — a worker connection dropped, a
	// frame arrived corrupt, or a read deadline expired. The local ranks
	// unwound coherently (abort verdict), but the world's remote half is
	// unreachable: the world reports Broken and must be replaced.
	FaultTransport
)

// String names the kind for logs.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultLostPE:
		return "lostPE"
	case FaultTransport:
		return "transport"
	}
	return "(unknown fault)"
}

// JobError is the structured report of a contained job failure: which PE
// faulted, where it was in the program (superstep, phase, distributed
// round), and what happened. It is the error RunJobCfg returns instead of
// letting the fault crash the process.
type JobError struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Rank is the faulting PE, or -1 when no single rank is responsible
	// (stalls).
	Rank int
	// Superstep is the faulting PE's collective count at the fault — for
	// stalls, the stalled superstep's job-relative arrival index.
	Superstep int
	// Phase is the innermost open phase on the faulting PE ("" if none).
	Phase string
	// Round is the last distributed round the faulting PE entered (0 before
	// the first round; see Comm.EmitRound).
	Round int
	// PanicValue and Stack capture a FaultPanic's recovered value and the
	// faulting goroutine's stack at the panic site.
	PanicValue any
	Stack      string
	// Arrived and Missing are a FaultStall's diagnosis: the ranks that
	// reached the stalled superstep's barrier, and the ranks that did not.
	Arrived []int
	Missing []int
	// Faults is the total number of faults the job recorded (> 1 when
	// several PEs faulted before the world finished unwinding); this
	// JobError is the first.
	Faults int
	// Remote marks a fault that happened in another process of a
	// distributed world and was shipped here with the superstep flags; Rank
	// is then the remote global rank, and PanicValue/Stack are the remote
	// process's formatted strings.
	Remote bool
}

// Error formats the fault for humans; the fields carry the structure.
func (e *JobError) Error() string {
	where := ""
	if e.Remote {
		where = " (remote)"
	}
	switch e.Kind {
	case FaultStall:
		return fmt.Sprintf("comm: job stalled at superstep %d: ranks %v reached the barrier, ranks %v did not",
			e.Superstep, e.Arrived, e.Missing)
	case FaultLostPE:
		return fmt.Sprintf("comm: PE %d%s lost: goroutine exited without completing its job (panic value: %v)",
			e.Rank, where, e.PanicValue)
	case FaultTransport:
		return fmt.Sprintf("comm: transport failed at superstep %d (rank %d%s): %v",
			e.Superstep, e.Rank, where, e.PanicValue)
	}
	msg := fmt.Sprintf("comm: PE %d%s panicked at superstep %d", e.Rank, where, e.Superstep)
	if e.Phase != "" {
		msg += fmt.Sprintf(" (phase %q, round %d)", e.Phase, e.Round)
	}
	return fmt.Sprintf("%s: %v", msg, e.PanicValue)
}

// wire converts the fault to its transport form for shipping to the
// verdict-deciding process. PanicValue flattens to its formatted string —
// the concrete value is process-local anyway.
func (e *JobError) wire() transport.RemoteFault {
	var pv string
	if e.PanicValue != nil {
		pv = fmt.Sprint(e.PanicValue)
	}
	return transport.RemoteFault{
		Kind:      uint8(e.Kind),
		Rank:      int32(e.Rank),
		Superstep: int32(e.Superstep),
		Round:     int32(e.Round),
		Phase:     e.Phase,
		Panic:     pv,
		Stack:     e.Stack,
	}
}

// remoteJobError rebuilds a shipped fault as a local JobError marked
// Remote.
func remoteJobError(f *transport.RemoteFault) *JobError {
	je := &JobError{
		Kind:      FaultKind(f.Kind),
		Rank:      int(f.Rank),
		Superstep: int(f.Superstep),
		Round:     int(f.Round),
		Phase:     f.Phase,
		Stack:     f.Stack,
		Remote:    true,
	}
	if f.Panic != "" {
		je.PanicValue = f.Panic
	}
	return je
}

// ErrBroken is returned by RunJobCfg on a world that was poisoned by an
// earlier fault (stall or lost PE) and not rebuilt. Check World.Broken
// after a failed job; a broken world runs no further jobs.
var ErrBroken = errors.New("comm: world is broken (poisoned by an earlier fault) and must be rebuilt")

// Broken reports whether the world has been poisoned by a fault the
// cooperative containment protocol could not resolve — a stalled
// collective or a lost PE goroutine. A broken world must not run further
// jobs; its owner discards it and builds a fresh one (the public Machine
// does this transparently).
func (w *World) Broken() bool { return w.broken.Load() }

// markBroken poisons the world: the transport releases every current and
// future waiter with the poisoned signal, so blocked PEs unwind instead of
// deadlocking behind a party that will never arrive.
func (w *World) markBroken() {
	w.broken.Store(true)
	w.tr.Poison()
}

// recordPanicFault captures a recovered panic on this PE as a structured
// fault. Called during deferred recovery, so debug.Stack still shows the
// panic site's frames (deferred functions run before the stack unwinds).
func (c *Comm) recordPanicFault(r any) {
	je := &JobError{
		Kind:       FaultPanic,
		Rank:       c.rank,
		Superstep:  int(c.epoch),
		Round:      c.round,
		PanicValue: r,
		Stack:      string(debug.Stack()),
	}
	if n := len(c.phaseStack); n > 0 {
		je.Phase = c.phaseStack[n-1].name
	}
	c.jb.recordFault(je)
}

// watchdog is the per-job stall detector: it samples the world's superstep
// progress counter and, if no collective completes within timeout, records
// a FaultStall with per-rank arrival diagnostics, requests an abort (in
// case the world is still cooperating), poisons the world (in case it is
// not), and signals RunJobCfg via jb.stalled.
func (w *World) watchdog(jb *worldJob, timeout time.Duration, stop, done chan struct{}) {
	defer close(done)
	interval := timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	// base is each rank's arrival count at job start; arrivals are lifetime
	// counters, so the diagnostics subtract it to report job-relative
	// supersteps.
	base := make([]int64, w.p)
	for r := range base {
		base[r] = w.arrived[r].v.Load()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := w.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			cur := w.progress.Load()
			if cur != last {
				last, lastChange = cur, now
				continue
			}
			if now.Sub(lastChange) < timeout {
				continue
			}
			jb.recordFault(w.stallError(base))
			jb.abortReq.Store(true)
			w.markBroken()
			close(jb.stalled)
			return
		}
	}
}

// stallError snapshots the per-rank arrival high-water marks into a stall
// diagnosis: ranks at the maximum reached the stalled superstep's barrier,
// the rest never arrived there.
func (w *World) stallError(base []int64) *JobError {
	marks := make([]int64, w.p)
	var top int64
	for r := range marks {
		marks[r] = w.arrived[r].v.Load() - base[r]
		if marks[r] > top {
			top = marks[r]
		}
	}
	je := &JobError{Kind: FaultStall, Rank: -1, Superstep: int(top)}
	for r, m := range marks {
		if m == top {
			je.Arrived = append(je.Arrived, r)
		} else {
			je.Missing = append(je.Missing, r)
		}
	}
	return je
}
