package comm

import (
	"context"
	"strings"
	"testing"

	"kamsta/internal/obs"
)

// measureBarrierAllocs runs a p=2 job and returns rank 0's steady-state
// allocations per Barrier. Only rank 0 measures (AllocsPerRun toggles
// GOMAXPROCS, which must not run concurrently); rank 1 executes the same
// barrier count in lockstep — AllocsPerRun calls f runs+1 times (one
// warm-up inside).
func measureBarrierAllocs(t *testing.T, reg *obs.Registry, tr *obs.Trace) float64 {
	t.Helper()
	const runs = 64
	var got float64
	w := NewWorld(2, WithMetrics(reg))
	err := w.RunJobCfg(context.Background(), JobConfig{Trace: tr}, func(c *Comm) {
		Barrier(c) // warm: instruments resolved, ring allocated at job start
		if c.Rank() == 0 {
			got = testing.AllocsPerRun(runs, func() { Barrier(c) })
		} else {
			for i := 0; i < runs+1; i++ {
				Barrier(c)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestMetricsSteadyStateBarrierAllocs pins the observability hot-path
// contract: enabling metrics and span tracing adds ZERO allocations to a
// collective. The bare-world floor is whatever the substrate itself costs;
// the observed world must match it exactly — counters are preallocated
// atomics and spans land in a fixed-capacity world-owned ring.
func TestMetricsSteadyStateBarrierAllocs(t *testing.T) {
	bare := measureBarrierAllocs(t, nil, nil)
	observed := measureBarrierAllocs(t, obs.NewRegistry(), obs.NewTrace())
	if observed > bare {
		t.Errorf("observed barrier allocates %v/op vs bare %v/op — observation must add zero allocations",
			observed, bare)
	}
}

// TestMetricsCountSupersteps checks the substrate series end to end: after
// a job with known collectives, the per-rank superstep counters carry the
// op-labelled counts and the Prometheus exposition includes them.
func TestMetricsCountSupersteps(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWorld(2, WithMetrics(reg))
	const barriers = 7
	err := w.RunJob(context.Background(), nil, func(c *Comm) {
		for i := 0; i < barriers; i++ {
			Barrier(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		got := w.wm.ranks[rank].supersteps[opBarrier].Value()
		if got != barriers {
			t.Errorf("rank %d: Barrier superstep count = %d, want %d", rank, got, barriers)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`kamsta_comm_supersteps_total{op="Barrier",rank="0"} 7`,
		`kamsta_comm_barrier_arrivals_total{rank="1"}`,
		`kamsta_pe_modeled_seconds{rank="0"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

// TestMetricsSurviveWorldRebuild checks the get-or-create contract: a new
// world handed the same registry resolves the same counter instances, so
// series stay monotone across Machine world rebuilds instead of resetting.
func TestMetricsSurviveWorldRebuild(t *testing.T) {
	reg := obs.NewRegistry()
	run := func() {
		w := NewWorld(2, WithMetrics(reg))
		if err := w.RunJob(context.Background(), nil, func(c *Comm) {
			Barrier(c)
		}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run() // second world, same registry
	got := reg.Counter("kamsta_comm_supersteps_total", "",
		obs.L("rank", "0"), obs.L("op", opNames[opBarrier])).Value()
	if got != 2 {
		t.Errorf("superstep counter across two worlds = %d, want 2 (monotone get-or-create)", got)
	}
}
