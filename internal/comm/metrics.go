package comm

import (
	"strconv"

	"kamsta/internal/obs"
)

// This file wires the substrate into the obs metrics registry. Everything
// here obeys two rules:
//
//   - Observation never perturbs the modeled clock or message volumes: no
//     hook below touches Comm.clock, Comm.stats, or any collective payload.
//     The golden modeled-time bits are identical with metrics on and off.
//   - The hot path stays allocation-free: instruments are resolved into
//     plain pointers once per world (newWorldMetrics), and the per-superstep
//     update is a handful of atomic adds behind one nil check.
//
// Instruments are get-or-create in the registry, so a Machine that rebuilds
// its world after a fault re-resolves the same counters and totals stay
// monotone across rebuilds. Counters count what each PE observed, including
// work on jobs that later aborted or were cancelled (a monotone "traffic
// seen" view, unlike Stats, which is per-job and discarded on abort).

// rankMetrics is one PE's resolved instruments, indexed hot-path fields
// first.
type rankMetrics struct {
	// supersteps counts completed collective supersteps by operation kind.
	// Note this counts SUPERSTEPS, not logical collectives: a butterfly
	// AllreduceVec contributes one fold, log p butterfly, and one unfold
	// superstep. Stats.Collectives remains the logical count.
	supersteps [len(opNames)]*obs.Counter
	// messages/bytes mirror ChargeComm's modeled traffic.
	messages *obs.Counter
	bytes    *obs.Counter
	// barrierWait accumulates wall seconds spent inside collectives —
	// from deposit publication to barrier release, the BSP wait time.
	barrierWait *obs.FloatCounter
	// arenaBytes / arenaSlots are the scratch arena footprint high-water
	// marks, refreshed when a PE flushes a completed job.
	arenaBytes *obs.Gauge
	arenaSlots *obs.Gauge
	// modeledSeconds is the PE's modeled clock at its last completed job.
	modeledSeconds *obs.FloatGauge
}

// worldMetrics is the world's resolved instrument set.
type worldMetrics struct {
	reg   *obs.Registry
	ranks []rankMetrics
}

// WithMetrics registers the world's per-PE substrate series in reg and
// enables their maintenance. The per-series rank label means p series per
// instrument: intended for serving- and benchmark-scale worlds (p up to a
// few hundred), not for p = 2^16 scalability sweeps.
func WithMetrics(reg *obs.Registry) Option {
	return func(w *World) {
		if reg == nil {
			return
		}
		w.wm = newWorldMetrics(reg, w)
	}
}

func newWorldMetrics(reg *obs.Registry, w *World) *worldMetrics {
	wm := &worldMetrics{reg: reg, ranks: make([]rankMetrics, w.p)}
	for r := range wm.ranks {
		rank := obs.L("rank", strconv.Itoa(r))
		rm := &wm.ranks[r]
		for op := range opNames {
			rm.supersteps[op] = reg.Counter("kamsta_comm_supersteps_total",
				"Completed collective supersteps by operation kind (multi-superstep collectives count each superstep).",
				rank, obs.L("op", opNames[op]))
		}
		rm.messages = reg.Counter("kamsta_comm_messages_total",
			"Modeled point-to-point messages charged to this PE.", rank)
		rm.bytes = reg.Counter("kamsta_comm_bytes_total",
			"Modeled payload bytes charged to this PE.", rank)
		rm.barrierWait = reg.FloatCounter("kamsta_comm_barrier_wait_seconds_total",
			"Wall seconds spent inside collectives (deposit to barrier release).", rank)
		rm.arenaBytes = reg.Gauge("kamsta_arena_bytes",
			"Scratch arena footprint high-water mark in bytes.", rank)
		rm.arenaSlots = reg.Gauge("kamsta_arena_slots",
			"Scratch arena slots in use, high-water mark.", rank)
		rm.modeledSeconds = reg.FloatGauge("kamsta_pe_modeled_seconds",
			"Modeled clock of this PE at its last completed job.", rank)
		// Barrier arrivals already have a per-rank high-water counter (the
		// stall watchdog's diagnostic); export it lazily rather than paying
		// a second hot-path increment. Re-registering after a world rebuild
		// rebinds the gauge to the live world's counter.
		a := &w.arrived[r].v
		reg.GaugeFunc("kamsta_comm_barrier_arrivals_total",
			"Barrier arrivals per rank (current world; resets on rebuild).",
			func() float64 { return float64(a.Load()) }, rank)
	}
	return wm
}

// refreshGauges updates rank's footprint/clock gauges; called from flush on
// job completion, never per superstep.
func (wm *worldMetrics) refreshGauges(w *World, rank int, clock float64) {
	rm := &wm.ranks[rank]
	slots, bytes := w.arenas[rank].Footprint()
	rm.arenaBytes.SetMax(bytes)
	rm.arenaSlots.SetMax(int64(slots))
	rm.modeledSeconds.Set(clock)
}
