package serve

import (
	"errors"
	"sync"
	"sync/atomic"
)

// The admission errors Submit reports. They are sentinels so clients (and
// the HTTP layer) can map them to back-pressure decisions: everything here
// is the server protecting itself, not a broken request.
var (
	// ErrQueueFull: the global queue bound is reached — the server is
	// saturated; back off and retry.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrTenantQueueFull: this tenant's queue share is full while the
	// server still has room for others — per-tenant isolation working.
	ErrTenantQueueFull = errors.New("serve: tenant queue full")
	// ErrUnknownTenant: the tenant is not configured and the server does
	// not auto-register tenants (Config.DefaultWeight == 0).
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrDraining: the server is shutting down and admits no new jobs.
	ErrDraining = errors.New("serve: server is draining")
	// ErrNoSuchShape: the job requests a PE count no pool machine has.
	ErrNoSuchShape = errors.New("serve: no pool machine with the requested PEs")
)

// scheduler lifecycle states.
const (
	schedRunning int32 = iota
	schedDraining
	schedClosed
)

// strideScale is the fixed-point scale of the stride scheduler: a tenant
// with weight w advances its pass by strideScale/w per dispatched job, so
// over time tenants receive machine slots proportional to their weights.
const strideScale = 1 << 20

// tenant is one admission/fairness domain: a FIFO queue of its jobs plus
// its stride-scheduling state. Queue fields are guarded by the scheduler
// mutex; the outcome counters are atomics because jobs finish on worker
// goroutines outside the lock.
type tenant struct {
	name   string
	weight int
	stride uint64
	pass   uint64
	q      []*Job

	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	retried   atomic.Int64
}

// scheduler is the server's bounded, weighted-fair job queue. Submission
// performs admission control (tenant known, global and per-tenant bounds);
// workers dequeue via next, which picks the compatible job of the tenant
// with the smallest stride pass — weighted fairness without starvation —
// and greedily attaches batch-compatible small jobs.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenant
	order   []*tenant // registration order: deterministic scans and tie-breaks

	queued        int
	bound         int
	tenantBound   int
	defaultWeight int // weight for auto-registered tenants; 0 rejects unknown
	state         int32
	global        uint64 // virtual time: pass of the last dispatched tenant
}

func newScheduler(bound, tenantBound, defaultWeight int) *scheduler {
	s := &scheduler{
		tenants:       make(map[string]*tenant),
		bound:         bound,
		tenantBound:   tenantBound,
		defaultWeight: defaultWeight,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// register adds a configured tenant (before the server starts serving).
func (s *scheduler) register(name string, weight int) *tenant {
	if weight < 1 {
		weight = 1
	}
	t := &tenant{name: name, weight: weight, stride: strideScale / uint64(weight)}
	s.tenants[name] = t
	s.order = append(s.order, t)
	return t
}

// submit admits one job or reports why not. On admission the job is queued
// FIFO within its tenant and a waiting worker is woken.
func (s *scheduler) submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != schedRunning {
		return ErrDraining
	}
	t := s.tenants[j.tenant]
	if t == nil {
		if s.defaultWeight <= 0 {
			return ErrUnknownTenant
		}
		t = s.register(j.tenant, s.defaultWeight)
	}
	if s.queued >= s.bound {
		t.rejected.Add(1)
		return ErrQueueFull
	}
	if len(t.q) >= s.tenantBound {
		t.rejected.Add(1)
		return ErrTenantQueueFull
	}
	t.submitted.Add(1)
	if len(t.q) == 0 && t.pass < s.global {
		// A tenant that went idle re-joins at the current virtual time:
		// it neither banks credit while idle nor starves the others.
		t.pass = s.global
	}
	j.ten = t
	t.q = append(t.q, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// noteRejected charges a shedding rejection to the tenant's counter (when
// the tenant is registered — shedding happens before auto-registration).
func (s *scheduler) noteRejected(name string) {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t != nil {
		t.rejected.Add(1)
	}
}

// resubmit re-queues an already-admitted job after a retry backoff. It
// bypasses admission control — the job was admitted once and its tenant's
// counters already reflect it — but still refuses once the scheduler has
// stopped running, so retries cannot strand jobs past a drain.
func (s *scheduler) resubmit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != schedRunning {
		return ErrDraining
	}
	j.ten.q = append(j.ten.q, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// remove withdraws a still-queued job (the deadline fast-fail path: its
// context expired while it waited). Reports whether the job was found —
// false means a worker already took it.
func (s *scheduler) remove(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := j.ten
	if t == nil {
		return false
	}
	for i, q := range t.q {
		if q == j {
			copy(t.q[i:], t.q[i+1:])
			t.q[len(t.q)-1] = nil
			t.q = t.q[:len(t.q)-1]
			s.queued--
			return true
		}
	}
	return false
}

// failUnservable removes and returns every queued job for which servable
// reports false — called when quarantine shrinks the live pool, so jobs
// whose shape has no live machine left fail immediately instead of
// waiting forever.
func (s *scheduler) failUnservable(servable func(*Job) bool) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var failed []*Job
	for _, t := range s.order {
		kept := t.q[:0]
		for _, j := range t.q {
			if servable(j) {
				kept = append(kept, j)
			} else {
				failed = append(failed, j)
			}
		}
		for i := len(kept); i < len(t.q); i++ {
			t.q[i] = nil
		}
		t.q = kept
	}
	s.queued -= len(failed)
	return failed
}

// compatible reports whether a job may run on a machine with pes PEs.
func compatible(j *Job, pes int) bool {
	return j.req.PEs == 0 || j.req.PEs == pes
}

// pick returns the queued tenant with the smallest pass that has a job
// compatible with pes, and the index of that job in its queue. Caller
// holds the lock.
func (s *scheduler) pick(pes int) (*tenant, int) {
	var best *tenant
	bestIdx := -1
	for _, t := range s.order {
		if len(t.q) == 0 || (best != nil && t.pass >= best.pass) {
			continue
		}
		for i, j := range t.q {
			if compatible(j, pes) {
				best, bestIdx = t, i
				break
			}
		}
	}
	return best, bestIdx
}

// pickBatch returns the min-pass tenant holding a job that batches under
// key within the remaining edge/vertex room, and its queue index. Caller
// holds the lock.
func (s *scheduler) pickBatch(pes int, key batchKey, bc BatchConfig, edgeRoom int, vertRoom uint64) (*tenant, int) {
	var best *tenant
	bestIdx := -1
	for _, t := range s.order {
		if len(t.q) == 0 || (best != nil && t.pass >= best.pass) {
			continue
		}
		for i, j := range t.q {
			if !compatible(j, pes) {
				continue
			}
			k, ok := batchKeyOf(j, bc)
			if ok && k == key && len(j.req.Edges) <= edgeRoom && j.maxV <= vertRoom {
				best, bestIdx = t, i
				break
			}
		}
	}
	return best, bestIdx
}

// take removes queue entry i and charges the tenant one stride. Caller
// holds the lock.
func (s *scheduler) take(t *tenant, i int) *Job {
	j := t.q[i]
	copy(t.q[i:], t.q[i+1:])
	t.q[len(t.q)-1] = nil
	t.q = t.q[:len(t.q)-1]
	s.global = t.pass
	t.pass += t.stride
	s.queued--
	return j
}

// next blocks until work is available for a machine with pes PEs and
// returns it: one job, or a batch of small batch-compatible jobs led by a
// fair pick. It returns nil when the worker should exit — the scheduler is
// closed, or draining with no compatible work left.
func (s *scheduler) next(pes int, bc BatchConfig) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.state == schedClosed {
			return nil
		}
		if t, i := s.pick(pes); t != nil {
			jobs := []*Job{s.take(t, i)}
			lead := jobs[0]
			if key, ok := batchKeyOf(lead, bc); ok {
				edgeRoom := bc.MaxEdges - len(lead.req.Edges)
				vertRoom := batchMaxLabel - lead.maxV
				for len(jobs) < bc.MaxJobs {
					t2, i2 := s.pickBatch(pes, key, bc, edgeRoom, vertRoom)
					if t2 == nil {
						break
					}
					j2 := s.take(t2, i2)
					edgeRoom -= len(j2.req.Edges)
					vertRoom -= j2.maxV
					jobs = append(jobs, j2)
				}
			}
			return jobs
		}
		if s.state != schedRunning {
			// Draining and nothing this worker can serve: any remaining
			// queued jobs belong to other shapes, whose workers are still
			// live (admission guarantees every job matches a pool shape).
			return nil
		}
		s.cond.Wait()
	}
}

// drain stops admission; queued jobs keep being served.
func (s *scheduler) drain() {
	s.mu.Lock()
	if s.state == schedRunning {
		s.state = schedDraining
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// close stops the scheduler and returns every still-queued job exactly
// once, for the caller to fail; workers wake and exit.
func (s *scheduler) close() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = schedClosed
	var orphans []*Job
	for _, t := range s.order {
		orphans = append(orphans, t.q...)
		t.q = nil
	}
	s.queued = 0
	s.cond.Broadcast()
	return orphans
}

// depth reports the total queued jobs.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// snapshot returns per-tenant stats rows in registration order.
func (s *scheduler) snapshot() []TenantStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStat, 0, len(s.order))
	for _, t := range s.order {
		out = append(out, TenantStat{
			Name:      t.name,
			Weight:    t.weight,
			Queued:    len(t.q),
			Submitted: t.submitted.Load(),
			Completed: t.completed.Load(),
			Rejected:  t.rejected.Load(),
			Retried:   t.retried.Load(),
		})
	}
	return out
}
