package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/faultinject"
)

// chaosPEs is the pool shape width the sweep's schedules run against.
const chaosPEs = 2

// isTypedRejection reports whether a Submit error is one of the documented
// admission sentinels — the only way the server may refuse work.
func isTypedRejection(err error) bool {
	for _, sentinel := range []error{
		ErrQueueFull, ErrTenantQueueFull, ErrDeadlineUnattainable,
		ErrBrownout, ErrShapeQuarantined,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// chaosConfig translates a schedule's server-side knobs into a Config.
func chaosConfig(sch faultinject.ServiceSchedule) Config {
	cfg := Config{
		Pool:            []PoolShape{{PEs: chaosPEs, Threads: 1, Count: 1}},
		QueueBound:      sch.QueueBound,
		QuarantineAfter: sch.QuarantineAfter,
	}
	if sch.RetryAttempts > 0 {
		cfg.Retry = RetryConfig{
			MaxAttempts: sch.RetryAttempts,
			BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		}
	}
	if sch.Batch {
		cfg.Batch = BatchConfig{MaxJobs: 4, MaxEdges: 1 << 16}
	}
	return cfg
}

// chaosRequest translates one scripted job into a Request, attaching the
// fault plan for world-killing jobs. The returned reference is non-nil for
// jobs that may legitimately finish ok (clean, cancelled-too-late, or a
// fault retried to success) — any ok result must match it.
func chaosRequest(t *testing.T, sj faultinject.ServiceJob) (Request, *kamsta.Report) {
	t.Helper()
	n := max(4, sj.Edges)
	edges := testEdges(int64(sj.Seed%(1<<31)), n, 3*n)
	req := Request{
		Tenant:   fmt.Sprintf("t%d", sj.Tenant),
		Edges:    edges,
		Deadline: sj.Deadline,
		NoBatch:  sj.NoBatch,
	}
	if sj.Pin {
		req.PEs = chaosPEs
	}
	switch sj.Fault {
	case faultinject.SvcPanic:
		req.Options = []kamsta.RunOption{kamsta.WithFaultInjection(faultinject.NewPlan(&faultinject.Rule{
			Site: faultinject.SiteCollective, Rank: sj.Rank, Occurrence: sj.Occurrence,
			Action: faultinject.ActPanic,
		}))}
	case faultinject.SvcStall:
		req.Options = []kamsta.RunOption{
			kamsta.WithFaultInjection(faultinject.NewPlan(&faultinject.Rule{
				Site: faultinject.SiteCollective, Rank: sj.Rank, Occurrence: sj.Occurrence,
				Action: faultinject.ActDelay, Delay: 50 * time.Millisecond,
			})),
			kamsta.WithStallTimeout(5 * time.Millisecond),
		}
	}
	// Faulting jobs may still succeed via server-side retry; every fault
	// class except the storm can legitimately produce an ok result.
	if sj.Fault == faultinject.SvcExpiredDeadline {
		return req, nil
	}
	return req, reference(t, edges)
}

// runServiceSchedule replays one seeded scenario against a fresh server and
// asserts the exactly-once contract: every admitted job resolves exactly
// once — ok results match sequential Kruskal, failures are typed — every
// rejection is a documented sentinel, per-tenant accounting balances, and
// Drain completes within its bound.
func runServiceSchedule(t *testing.T, seed uint64) {
	t.Helper()
	sch := faultinject.RandomServiceSchedule(seed, faultinject.ServiceSpec{PEs: chaosPEs, MaxJobs: 8})
	s, err := New(chaosConfig(sch))
	if err != nil {
		t.Fatalf("seed %d: New: %v", seed, err)
	}
	defer s.Close()
	allowQuarantine := sch.QuarantineAfter > 0

	type admission struct {
		j    *Job
		sj   faultinject.ServiceJob
		want *kamsta.Report
	}
	var admitted []admission
	for i, sj := range sch.Jobs {
		if sj.Gap > 0 {
			time.Sleep(sj.Gap)
		}
		req, want := chaosRequest(t, sj)
		j, err := s.Submit(req)
		if err != nil {
			if !isTypedRejection(err) {
				t.Fatalf("seed %d job %d (%v): untyped rejection %v", seed, i, sj.Fault, err)
			}
			continue
		}
		if sj.Fault == faultinject.SvcCancel {
			j.Cancel()
		}
		admitted = append(admitted, admission{j, sj, want})
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, a := range admitted {
		rep, err := a.j.Wait(waitCtx)
		if waitCtx.Err() != nil {
			t.Fatalf("seed %d job %d (%v): result never arrived — job lost", seed, i, a.sj.Fault)
		}
		if err == nil {
			if a.want == nil {
				t.Fatalf("seed %d job %d (%v): succeeded but may not (hopeless deadline)", seed, i, a.sj.Fault)
			}
			if rep.TotalWeight != a.want.TotalWeight || rep.NumEdges != a.want.NumEdges {
				t.Fatalf("seed %d job %d (%v): weight %d/%d edges, want %d/%d",
					seed, i, a.sj.Fault, rep.TotalWeight, rep.NumEdges, a.want.TotalWeight, a.want.NumEdges)
			}
			continue
		}
		var je *kamsta.JobError
		quarantined := allowQuarantine && errors.Is(err, ErrShapeQuarantined)
		valid := false
		switch a.sj.Fault {
		case faultinject.SvcNone:
			valid = quarantined
		case faultinject.SvcPanic, faultinject.SvcStall:
			valid = errors.As(err, &je) || quarantined
		case faultinject.SvcExpiredDeadline:
			valid = errors.Is(err, context.DeadlineExceeded) || quarantined
		case faultinject.SvcCancel:
			valid = errors.Is(err, context.Canceled) || quarantined
		}
		if !valid {
			t.Fatalf("seed %d job %d (%v): unexpected terminal error %v", seed, i, a.sj.Fault, err)
		}
	}

	st := s.Stats()
	var submitted, completed, queued int64
	for _, ts := range st.Tenants {
		submitted += ts.Submitted
		completed += ts.Completed
		queued += int64(ts.Queued)
	}
	if submitted != int64(len(admitted)) || completed != submitted || queued != 0 {
		t.Fatalf("seed %d: accounting broke: admitted %d, submitted %d, completed %d, queued %d",
			seed, len(admitted), submitted, completed, queued)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), time.Minute)
	defer cancelDrain()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("seed %d: Drain: %v", seed, err)
	}
}

// TestServiceChaosSweep replays ≥100 seeded service-level chaos schedules —
// machine-killing panics and stalls mid-job, client cancels, deadline
// storms, across randomized retry/quarantine/batching configs — and then
// proves the modeled clock still produces the pinned golden bits: no state
// leaks out of any amount of service-level chaos. Run under -race in CI;
// -short keeps a representative prefix for local runs.
func TestServiceChaosSweep(t *testing.T) {
	n := 104
	if testing.Short() {
		n = 24
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		runServiceSchedule(t, seed)
	}

	// The golden coda: the same references chaos_test.go (kamsta package)
	// pins. A fresh machine must reproduce them bit-exactly after the sweep.
	golden := []struct {
		name string
		spec kamsta.GraphSpec
		alg  kamsta.Algorithm
		bits uint64
	}{
		{"gnm-boruvka", kamsta.GraphSpec{Family: kamsta.GNM, N: 1 << 10, M: 1 << 13, Seed: 42}, kamsta.AlgBoruvka, 0x3f453980b2cb7769},
		{"rgg2d-filter", kamsta.GraphSpec{Family: kamsta.RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7}, kamsta.AlgFilterBoruvka, 0x3f68ca7d4d6ed9eb},
	}
	m, err := kamsta.NewMachine(kamsta.MachineConfig{PEs: 8, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, gc := range golden {
		rep, err := m.Compute(context.Background(), kamsta.FromSpec(gc.spec), kamsta.WithAlgorithm(gc.alg))
		if err != nil {
			t.Fatalf("golden %s: %v", gc.name, err)
		}
		if got := math.Float64bits(rep.ModeledSeconds); got != gc.bits {
			t.Fatalf("golden %s clock bits %#x, want %#x", gc.name, got, gc.bits)
		}
	}
}
