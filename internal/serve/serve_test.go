package serve

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/obs"
)

// testEdges builds a deterministic random connected-ish instance with
// labels in [1, n].
func testEdges(seed int64, n, m int) []kamsta.InputEdge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]kamsta.InputEdge, 0, m+n-1)
	// A random spanning path first, so the instance is connected and the
	// forest is a tree (easier to eyeball on failures).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		edges = append(edges, kamsta.InputEdge{
			U: uint64(perm[i-1] + 1), V: uint64(perm[i] + 1), W: uint32(rng.Intn(1000) + 1),
		})
	}
	for len(edges) < m {
		u, v := rng.Intn(n)+1, rng.Intn(n)+1
		if u == v {
			continue
		}
		edges = append(edges, kamsta.InputEdge{U: uint64(u), V: uint64(v), W: uint32(rng.Intn(1000) + 1)})
	}
	return edges
}

// reference computes the sequential Kruskal answer for an edge list.
func reference(t *testing.T, edges []kamsta.InputEdge) *kamsta.Report {
	t.Helper()
	rep, err := kamsta.ComputeMSF(edges, kamsta.Config{Algorithm: kamsta.AlgKruskal})
	if err != nil {
		t.Fatalf("reference kruskal: %v", err)
	}
	return rep
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSubmitWaitMatchesReference(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2, Threads: 1, Count: 1}}})
	edges := testEdges(1, 80, 300)
	want := reference(t, edges)
	j, err := s.Submit(Request{Tenant: "a", Edges: edges})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges {
		t.Fatalf("got weight %d/%d edges, want %d/%d",
			rep.TotalWeight, rep.NumEdges, want.TotalWeight, want.NumEdges)
	}
	if j.Status() != "done" {
		t.Fatalf("Status = %q, want done", j.Status())
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:    []PoolShape{{PEs: 2}},
		Tenants: []TenantConfig{{Name: "alpha", Weight: 1}},
	})
	edges := testEdges(2, 10, 20)
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"missing tenant", Request{Edges: edges}, ErrBadRequest},
		{"no source", Request{Tenant: "alpha"}, ErrBadRequest},
		{"two sources", Request{Tenant: "alpha", Edges: edges, File: "x.gr"}, ErrBadRequest},
		{"bad algorithm", Request{Tenant: "alpha", Edges: edges, Algorithm: "dijkstra"}, ErrBadRequest},
		{"bad labels", Request{Tenant: "alpha", Edges: []kamsta.InputEdge{{U: 0, V: 1, W: 1}}}, ErrBadRequest},
		{"self loop", Request{Tenant: "alpha", Edges: []kamsta.InputEdge{{U: 3, V: 3, W: 1}}}, ErrBadRequest},
		{"unknown tenant", Request{Tenant: "mallory", Edges: edges}, ErrUnknownTenant},
		{"no such shape", Request{Tenant: "alpha", Edges: edges, PEs: 64}, ErrNoSuchShape},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestSchedulerBounds exercises admission bounds on the scheduler directly,
// with no machine behind it.
func TestSchedulerBounds(t *testing.T) {
	sched := newScheduler(4, 2, 1)
	mkJob := func(tenant string) *Job {
		ctx, cancel := context.WithCancel(context.Background())
		return &Job{tenant: tenant, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	}
	for i := 0; i < 2; i++ {
		if err := sched.submit(mkJob("a")); err != nil {
			t.Fatalf("a#%d: %v", i, err)
		}
	}
	if err := sched.submit(mkJob("a")); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("tenant bound: err = %v, want ErrTenantQueueFull", err)
	}
	for i := 0; i < 2; i++ {
		if err := sched.submit(mkJob("b")); err != nil {
			t.Fatalf("b#%d: %v", i, err)
		}
	}
	if err := sched.submit(mkJob("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global bound: err = %v, want ErrQueueFull", err)
	}
	sched.drain()
	if err := sched.submit(mkJob("a")); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: err = %v, want ErrDraining", err)
	}
	sched.close()
}

// TestSchedulerWeightedFairness checks the stride scheduler's long-run
// shares: weight 3 vs weight 1 under constant backlog must dispatch 3:1.
func TestSchedulerWeightedFairness(t *testing.T) {
	sched := newScheduler(1024, 1024, 0)
	sched.register("heavy", 3)
	sched.register("light", 1)
	mkJob := func(tenant string) *Job {
		ctx, cancel := context.WithCancel(context.Background())
		return &Job{tenant: tenant, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	}
	for i := 0; i < 100; i++ {
		if err := sched.submit(mkJob("heavy")); err != nil {
			t.Fatal(err)
		}
		if err := sched.submit(mkJob("light")); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 80; i++ {
		jobs := sched.next(4, BatchConfig{})
		if len(jobs) != 1 {
			t.Fatalf("pop %d: got %d jobs, want 1", i, len(jobs))
		}
		counts[jobs[0].tenant]++
	}
	// 80 slots at weights 3:1 → 60/20, ±1 for stride phase.
	if counts["heavy"] < 59 || counts["heavy"] > 61 {
		t.Fatalf("heavy got %d of 80 slots, want ~60 (light %d)", counts["heavy"], counts["light"])
	}
	sched.close()
}

// TestSchedulerBatchCollection checks that next coalesces batch-compatible
// jobs across tenants and leaves incompatible ones queued.
func TestSchedulerBatchCollection(t *testing.T) {
	sched := newScheduler(1024, 1024, 1)
	bc := BatchConfig{MaxJobs: 4, MaxEdges: 100}
	mkJob := func(tenant string, edges []kamsta.InputEdge, noBatch bool) *Job {
		ctx, cancel := context.WithCancel(context.Background())
		j := &Job{
			tenant: tenant,
			req:    Request{Tenant: tenant, Edges: edges, NoBatch: noBatch},
			ctx:    ctx, cancel: cancel, done: make(chan struct{}),
		}
		for _, e := range edges {
			j.maxV = max(j.maxV, e.U, e.V)
		}
		return j
	}
	small := testEdges(3, 8, 12)
	for i := 0; i < 3; i++ {
		if err := sched.submit(mkJob("a", small, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.submit(mkJob("b", small, true)); err != nil { // opted out
		t.Fatal(err)
	}
	if err := sched.submit(mkJob("c", small, false)); err != nil {
		t.Fatal(err)
	}
	jobs := sched.next(4, bc)
	if len(jobs) != 4 {
		t.Fatalf("batch size = %d, want 4 (3×a + c)", len(jobs))
	}
	for _, j := range jobs {
		if j.req.NoBatch {
			t.Fatalf("NoBatch job landed in a batch")
		}
	}
	rest := sched.next(4, bc)
	if len(rest) != 1 || !rest[0].req.NoBatch {
		t.Fatalf("second pick = %d jobs (NoBatch %v), want the single NoBatch job",
			len(rest), len(rest) > 0 && rest[0].req.NoBatch)
	}
	sched.close()
}

// TestBatchedResultsMatchReference pushes a burst of small edge-list jobs
// through a single-machine server with batching on and cross-checks every
// result against sequential Kruskal. The first job is a larger generated
// instance that keeps the machine busy so the burst actually queues and
// coalesces; the batch-size histogram asserts batching really happened.
func TestBatchedResultsMatchReference(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Pool:    []PoolShape{{PEs: 4, Threads: 1, Count: 1}},
		Batch:   BatchConfig{MaxJobs: 8, MaxEdges: 1 << 16},
		Metrics: reg,
	})
	warm, err := s.Submit(Request{
		Tenant: "a",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 4000, M: 16000, Seed: 7},
	})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	type pending struct {
		j    *Job
		want *kamsta.Report
	}
	var jobs []pending
	var spans []uint64 // per-job label upper bound, for the mapped-back check
	for i := 0; i < 12; i++ {
		edges := testEdges(int64(100+i), 30+i, 90+3*i)
		spans = append(spans, uint64(30+i))
		j, err := s.Submit(Request{Tenant: []string{"a", "b", "c"}[i%3], Edges: edges})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, pending{j, reference(t, edges)})
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		t.Fatalf("warm job: %v", err)
	}
	for i, p := range jobs {
		rep, err := p.j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.TotalWeight != p.want.TotalWeight || rep.NumEdges != p.want.NumEdges {
			t.Fatalf("job %d: weight %d/%d edges, want %d/%d",
				i, rep.TotalWeight, rep.NumEdges, p.want.TotalWeight, p.want.NumEdges)
		}
		if len(rep.MSTEdges) != rep.NumEdges {
			t.Fatalf("job %d: %d MSTEdges vs NumEdges %d", i, len(rep.MSTEdges), rep.NumEdges)
		}
		for _, e := range rep.MSTEdges {
			if e.U < 1 || e.V < 1 || e.U > spans[i] || e.V > spans[i] {
				t.Fatalf("job %d: forest edge %+v outside the job's label range [1,%d]", i, e, spans[i])
			}
		}
	}
	h := reg.Histogram("serve_batch_jobs",
		"Jobs coalesced per batched dispatch.", []float64{2, 4, 8, 16, 32})
	if h.Count() == 0 {
		t.Fatalf("no batch was formed: batching path untested")
	}
}

func TestQueuedDeadlineExpires(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}})
	// Occupy the machine so the deadline job dies in the queue.
	warm, err := s.Submit(Request{
		Tenant: "a",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 4000, M: 16000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(Request{Tenant: "a", Edges: testEdges(4, 10, 20), Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued job err = %v, want DeadlineExceeded", err)
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		t.Fatalf("warm job: %v", err)
	}
}

func TestDrainFinishesQueuedJobs(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(Request{Tenant: "a", Edges: testEdges(int64(i), 20, 60)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, j := range jobs {
		if _, err, ok := j.Result(); !ok || err != nil {
			t.Fatalf("job %d after drain: ok=%v err=%v", i, ok, err)
		}
	}
	if _, err := s.Submit(Request{Tenant: "a", Edges: testEdges(9, 10, 20)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(Request{
			Tenant: "a",
			Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 2000, M: 8000, Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Close()
	for i, j := range jobs {
		_, err, ok := j.Result()
		if !ok {
			t.Fatalf("job %d unresolved after Close", i)
		}
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, kamsta.ErrMachineClosed) {
			t.Fatalf("job %d: err = %v, want nil, Canceled or ErrMachineClosed", i, err)
		}
	}
}

func TestStats(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:    []PoolShape{{PEs: 2, Threads: 1, Count: 2}},
		Tenants: []TenantConfig{{Name: "alpha", Weight: 2}, {Name: "beta", Weight: 1}},
	})
	j, err := s.Submit(Request{Tenant: "alpha", Edges: testEdges(5, 40, 120)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.State != "running" || len(st.Machines) != 2 || len(st.Tenants) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	var alpha TenantStat
	for _, ts := range st.Tenants {
		if ts.Name == "alpha" {
			alpha = ts
		}
	}
	if alpha.Submitted != 1 || alpha.Completed != 1 || alpha.Weight != 2 {
		t.Fatalf("alpha stats = %+v", alpha)
	}
}
