package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/obs"
)

func newHTTPPair(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{BaseURL: ts.URL, PollWait: 200 * time.Millisecond}
}

func TestHTTPEdgesRoundTrip(t *testing.T) {
	_, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}})
	edges := testEdges(11, 60, 200)
	want := reference(t, edges)
	rj, err := c.Submit(context.Background(), Request{Tenant: "web", Edges: edges})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := rj.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges {
		t.Fatalf("got weight %d/%d edges, want %d/%d",
			rep.TotalWeight, rep.NumEdges, want.TotalWeight, want.NumEdges)
	}
	if len(rep.MSTEdges) != want.NumEdges {
		t.Fatalf("mst_edges came back with %d entries, want %d", len(rep.MSTEdges), want.NumEdges)
	}
}

func TestHTTPSpecJob(t *testing.T) {
	_, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 4}}})
	rj, err := c.Submit(context.Background(), Request{
		Tenant: "web",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 500, M: 2500, Seed: 3},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := rj.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if rep.NumEdges == 0 || rep.TotalWeight == 0 {
		t.Fatalf("degenerate spec result: %+v", rep)
	}
}

func TestHTTPRejections(t *testing.T) {
	s, c := newHTTPPair(t, Config{
		Pool:    []PoolShape{{PEs: 2}},
		Tenants: []TenantConfig{{Name: "alpha", Weight: 1}},
	})
	edges := testEdges(12, 10, 20)
	if _, err := c.Submit(context.Background(), Request{Tenant: "mallory", Edges: edges}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no source: err = %v, want ErrBadRequest", err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha", File: "g.gr"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("file without AllowFiles: err = %v, want ErrBadRequest", err)
	}
	// Source/Options are in-process-only and rejected client-side.
	if _, err := c.Submit(context.Background(), Request{
		Tenant: "alpha", Source: kamsta.FromEdges(edges),
	}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("source over HTTP: err = %v, want ErrBadRequest", err)
	}
	// Draining servers answer 503 → ErrDraining.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha", Edges: edges}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: err = %v, want ErrDraining", err)
	}
}

func TestHTTPStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}, Metrics: reg})
	rj, err := c.Submit(context.Background(), Request{Tenant: "web", Edges: testEdges(13, 30, 90)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.State != "running" || len(st.Machines) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.Healthy(context.Background()) {
		t.Fatal("healthz failed")
	}
	// /metrics exposes the serve_ series in Prometheus format.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"serve_jobs_submitted_total", "serve_queue_depth", "serve_machines"} {
		if !strings.Contains(buf.String(), series) {
			t.Fatalf("/metrics missing %s:\n%s", series, buf.String())
		}
	}
}

// TestHTTPMalformedRequests: hostile or broken bodies are 400s with a
// machine-readable code, never 500s or hangs.
func TestHTTPMalformedRequests(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}, MaxRequestBytes: 2048})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{"tenant": "web", "edges": [[1,2,`); resp.StatusCode != 400 {
		t.Fatalf("truncated JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"tenant": "web", "frobnicate": true}`); resp.StatusCode != 400 {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	// A body past MaxRequestBytes dies at the reader, not in memory.
	big := `{"tenant": "web", "edges": [` + strings.Repeat("[1,2,3],", 400) + `[1,2,3]]}`
	if resp := post(big); resp.StatusCode != 400 {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/not-a-number"); err != nil || resp.StatusCode != 400 {
		t.Fatalf("bad job id: status %v err %v, want 400", resp.StatusCode, err)
	}
	// The server is unharmed: a clean job still round-trips.
	c := &Client{BaseURL: ts.URL, PollWait: 200 * time.Millisecond}
	rj, err := c.Submit(context.Background(), Request{Tenant: "web", Edges: testEdges(15, 8, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPRetryAfterAndClientRetry: overload rejections carry Retry-After
// over the wire, and a Client with MaxRetries rides them out until the
// queue drains.
func TestHTTPRetryAfterAndClientRetry(t *testing.T) {
	s, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}, QueueBound: 1})
	warm, err := s.Submit(Request{
		Tenant: "web",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 1500, M: 6000, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the warm job up, so the one-slot queue is
	// free for exactly one more admission.
	for warm.Status() != "running" {
		if _, _, done := warm.Result(); done {
			t.Fatal("warm job finished before the queue could fill")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(Request{Tenant: "web", Edges: testEdges(16, 20, 60)})
	if err != nil {
		t.Fatal(err)
	}
	// No retries: the rejection surfaces with the server's backoff hint.
	_, err = c.Submit(context.Background(), Request{Tenant: "web", Edges: testEdges(17, 10, 20)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue err = %v, want ErrQueueFull", err)
	}
	if hint, ok := retryAfterOf(err); !ok || hint <= 0 {
		t.Fatalf("429 carried no Retry-After hint: %v", err)
	}
	// With retries: the client backs off and lands the job once the warm
	// job frees the queue.
	rc := &Client{BaseURL: c.BaseURL, PollWait: 200 * time.Millisecond,
		MaxRetries: 10, RetryBase: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond}
	rj, err := rc.Submit(context.Background(), Request{Tenant: "web", Edges: testEdges(18, 10, 20)})
	if err != nil {
		t.Fatalf("retrying Submit gave up: %v", err)
	}
	if _, err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{warm, queued} {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSlowLorisHeaderTimeout runs the Handler under the same ReadHeaderTimeout
// cmd/mstserve configures and starves it: a connection that trickles its
// header is closed by the server while normal requests keep being served.
func TestSlowLorisHeaderTimeout(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 100 * time.Millisecond}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	loris, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loris.Close() })
	if _, err := io.WriteString(loris, "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-"); err != nil {
		t.Fatal(err)
	}
	// While the loris stalls mid-header, the server still answers others.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz during slow-loris: %v / %v", resp, err)
	}
	resp.Body.Close()
	// The server must cut the stalled connection off, not hold it forever.
	if err := loris.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	for {
		if _, err := loris.Read(buf); err != nil {
			if errors.Is(err, io.EOF) {
				break // server closed the connection: contained
			}
			t.Fatalf("slow-loris connection not closed by the server: %v", err)
		}
	}
}

func TestHTTPCancelAndNotFound(t *testing.T) {
	s, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}})
	rj, err := c.Submit(context.Background(), Request{
		Tenant: "web",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 3000, M: 12000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rj.Cancel(context.Background()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	// The job is forgotten: polling it is a 404.
	if _, err := rj.Wait(context.Background()); err == nil {
		t.Fatal("Wait after cancel+forget should fail")
	}
	_ = s
}
