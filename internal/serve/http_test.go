package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/obs"
)

func newHTTPPair(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &Client{BaseURL: ts.URL, PollWait: 200 * time.Millisecond}
}

func TestHTTPEdgesRoundTrip(t *testing.T) {
	_, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}})
	edges := testEdges(11, 60, 200)
	want := reference(t, edges)
	rj, err := c.Submit(context.Background(), Request{Tenant: "web", Edges: edges})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := rj.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges {
		t.Fatalf("got weight %d/%d edges, want %d/%d",
			rep.TotalWeight, rep.NumEdges, want.TotalWeight, want.NumEdges)
	}
	if len(rep.MSTEdges) != want.NumEdges {
		t.Fatalf("mst_edges came back with %d entries, want %d", len(rep.MSTEdges), want.NumEdges)
	}
}

func TestHTTPSpecJob(t *testing.T) {
	_, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 4}}})
	rj, err := c.Submit(context.Background(), Request{
		Tenant: "web",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 500, M: 2500, Seed: 3},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep, err := rj.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if rep.NumEdges == 0 || rep.TotalWeight == 0 {
		t.Fatalf("degenerate spec result: %+v", rep)
	}
}

func TestHTTPRejections(t *testing.T) {
	s, c := newHTTPPair(t, Config{
		Pool:    []PoolShape{{PEs: 2}},
		Tenants: []TenantConfig{{Name: "alpha", Weight: 1}},
	})
	edges := testEdges(12, 10, 20)
	if _, err := c.Submit(context.Background(), Request{Tenant: "mallory", Edges: edges}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no source: err = %v, want ErrBadRequest", err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha", File: "g.gr"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("file without AllowFiles: err = %v, want ErrBadRequest", err)
	}
	// Source/Options are in-process-only and rejected client-side.
	if _, err := c.Submit(context.Background(), Request{
		Tenant: "alpha", Source: kamsta.FromEdges(edges),
	}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("source over HTTP: err = %v, want ErrBadRequest", err)
	}
	// Draining servers answer 503 → ErrDraining.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), Request{Tenant: "alpha", Edges: edges}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: err = %v, want ErrDraining", err)
	}
}

func TestHTTPStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}, Metrics: reg})
	rj, err := c.Submit(context.Background(), Request{Tenant: "web", Edges: testEdges(13, 30, 90)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rj.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.State != "running" || len(st.Machines) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !c.Healthy(context.Background()) {
		t.Fatal("healthz failed")
	}
	// /metrics exposes the serve_ series in Prometheus format.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"serve_jobs_submitted_total", "serve_queue_depth", "serve_machines"} {
		if !strings.Contains(buf.String(), series) {
			t.Fatalf("/metrics missing %s:\n%s", series, buf.String())
		}
	}
}

func TestHTTPCancelAndNotFound(t *testing.T) {
	s, c := newHTTPPair(t, Config{Pool: []PoolShape{{PEs: 2}}})
	rj, err := c.Submit(context.Background(), Request{
		Tenant: "web",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 3000, M: 12000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rj.Cancel(context.Background()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	// The job is forgotten: polling it is a 404.
	if _, err := rj.Wait(context.Background()); err == nil {
		t.Fatal("Wait after cancel+forget should fail")
	}
	_ = s
}
