package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/faultinject"
)

// TestFastFailQueuedDeadline is the fast-fail regression: a queued job whose
// deadline expires must be withdrawn and failed immediately by the watcher —
// never dispatched (started stays zero), and resolved while the machine is
// still busy with the job ahead of it.
func TestFastFailQueuedDeadline(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}})
	warm, err := s.Submit(Request{
		Tenant: "a",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 4000, M: 16000, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(Request{Tenant: "a", Edges: testEdges(4, 10, 20), Deadline: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued job err = %v, want DeadlineExceeded", err)
	}
	if got := j.started.Load(); got != 0 {
		t.Fatalf("expired queued job was dispatched (started=%d); fast-fail must withdraw it from the queue", got)
	}
	if j.Status() != "done" {
		t.Fatalf("Status = %q, want done", j.Status())
	}
	if _, _, done := warm.Result(); done {
		t.Fatal("warm job finished before the expired job resolved — fast-fail never beat the queue")
	}
	if _, err := warm.Wait(context.Background()); err != nil {
		t.Fatalf("warm job: %v", err)
	}
}

// TestBatchMemberDeadlineExpiresMidBatch drives runBatch directly with one
// member whose deadline has already burned out: the shared run must complete
// for the survivors (their splits match sequential Kruskal) while the
// expired member reports its own deadline error — one member's contract
// must not kill the batch.
func TestBatchMemberDeadlineExpiresMidBatch(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:  []PoolShape{{PEs: 4}},
		Batch: BatchConfig{MaxJobs: 4, MaxEdges: 1 << 16},
	})
	mk := func(seed int64, d time.Duration) *Job {
		edges := testEdges(seed, 20, 60)
		maxV, verts, err := profileEdges(edges)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{
			id: s.ids.Add(1), tenant: "a",
			req:  Request{Tenant: "a", Edges: edges},
			maxV: maxV, verts: verts,
			submitted: time.Now(), done: make(chan struct{}),
		}
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, d)
		return j
	}
	j1 := mk(51, time.Minute)
	expired := mk(52, time.Nanosecond)
	j2 := mk(53, time.Minute)
	<-expired.ctx.Done() // the member's deadline burns out before the run splits

	if err := s.runBatch(s.machines[0], []*Job{j1, expired, j2}); err != nil {
		t.Fatalf("runBatch: %v", err)
	}
	if _, err, ok := expired.Result(); !ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired member: ok=%v err=%v, want DeadlineExceeded", ok, err)
	}
	for i, j := range []*Job{j1, j2} {
		rep, err, ok := j.Result()
		if !ok || err != nil {
			t.Fatalf("survivor %d: ok=%v err=%v", i, ok, err)
		}
		want := reference(t, j.req.Edges)
		if rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges {
			t.Fatalf("survivor %d: weight %d/%d edges, want %d/%d",
				i, rep.TotalWeight, rep.NumEdges, want.TotalWeight, want.NumEdges)
		}
	}
}

// TestShedUnattainableDeadline warms the service-time estimator by hand and
// checks the admission gate: a deadline the estimated queue wait would burn
// is rejected up front with ErrDeadlineUnattainable and a Retry-After hint,
// while a generous deadline still admits.
func TestShedUnattainableDeadline(t *testing.T) {
	s := newTestServer(t, Config{Pool: []PoolShape{{PEs: 2}}, ShedMinSamples: 1})
	for i := 0; i < 8; i++ {
		s.shed.observe(2, 1.0) // recent dispatches took ~1s each
	}
	warm, err := s.Submit(Request{
		Tenant: "a",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 4000, M: 16000, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Request{Tenant: "a", Edges: testEdges(6, 20, 60)})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 behind a ~1s/job estimator: a 50ms deadline cannot survive.
	_, err = s.Submit(Request{Tenant: "a", Edges: testEdges(7, 10, 20), Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrDeadlineUnattainable) {
		t.Fatalf("short deadline err = %v, want ErrDeadlineUnattainable", err)
	}
	if hint, ok := retryAfterOf(err); !ok || hint <= 0 {
		t.Fatalf("shed rejection carries no Retry-After hint: %v", err)
	}
	// A deadline the estimate fits is still admitted.
	fits, err := s.Submit(Request{Tenant: "a", Edges: testEdges(8, 10, 20), Deadline: time.Minute})
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	for _, j := range []*Job{warm, queued, fits} {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("admitted job failed: %v", err)
		}
	}
}

// TestBrownoutShedsBatchable fills the queue past the brownout mark and
// checks graceful degradation: batch-eligible small jobs are shed with
// ErrBrownout (and a hint) while NoBatch work is still admitted, Stats and
// readyz report the degraded state, and the brownout clears once the queue
// drains.
func TestBrownoutShedsBatchable(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:             []PoolShape{{PEs: 2}},
		QueueBound:       8,
		BrownoutFraction: 0.25, // brownout at depth 2
		Batch:            BatchConfig{MaxJobs: 4, MaxEdges: 1 << 16},
	})
	warm, err := s.Submit(Request{
		Tenant: "a",
		Spec:   &kamsta.GraphSpec{Family: kamsta.GNM, N: 4000, M: 16000, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(Request{Tenant: "a", Edges: testEdges(int64(10+i), 20, 60), NoBatch: true})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	if !s.brownout() {
		t.Fatalf("depth %d ≥ %d but brownout() is false", s.sched.depth(), s.brownoutHi)
	}
	_, err = s.Submit(Request{Tenant: "a", Edges: testEdges(12, 10, 20)})
	if !errors.Is(err, ErrBrownout) {
		t.Fatalf("batchable submit err = %v, want ErrBrownout", err)
	}
	if hint, ok := retryAfterOf(err); !ok || hint <= 0 {
		t.Fatalf("brownout rejection carries no Retry-After hint: %v", err)
	}
	nb, err := s.Submit(Request{Tenant: "a", Edges: testEdges(13, 10, 20), NoBatch: true})
	if err != nil {
		t.Fatalf("NoBatch submit during brownout: %v", err)
	}
	if st := s.Stats(); !st.Brownout {
		t.Fatalf("Stats.Brownout = false during brownout: %+v", st)
	}
	rr := httptest.NewRecorder()
	s.handleReady(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 {
		t.Fatalf("readyz = %d during brownout, want 503", rr.Code)
	}
	for _, j := range append(queued, warm, nb) {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("admitted job failed: %v", err)
		}
	}
	if s.brownout() {
		t.Fatal("brownout did not clear after the queue drained")
	}
	after, err := s.Submit(Request{Tenant: "a", Edges: testEdges(14, 10, 20)})
	if err != nil {
		t.Fatalf("batchable submit after brownout cleared: %v", err)
	}
	if _, err := after.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// transientPlan arms one fault that fires exactly once across a job and its
// retries (the Plan's fired flags are shared), so the first dispatch dies
// and the re-dispatch runs clean — the transient-fault model.
func transientPlan() *faultinject.Plan {
	return faultinject.NewPlan(&faultinject.Rule{
		Site: faultinject.SiteCollective, Rank: 0, Occurrence: 1, Action: faultinject.ActPanic,
	})
}

// persistentPlan arms panics at consecutive collective occurrences, so every
// retry (whose injector counters restart at zero but whose fired flags
// don't) hits the next armed rule — a fault that never goes away.
func persistentPlan(n int) *faultinject.Plan {
	rules := make([]*faultinject.Rule, n)
	for i := range rules {
		rules[i] = &faultinject.Rule{
			Site: faultinject.SiteCollective, Rank: 0, Occurrence: i, Action: faultinject.ActPanic,
		}
	}
	return faultinject.NewPlan(rules...)
}

func TestRetryToSuccess(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:  []PoolShape{{PEs: 2}},
		Retry: RetryConfig{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	edges := testEdges(21, 40, 120)
	want := reference(t, edges)
	plan := transientPlan()
	j, err := s.Submit(Request{
		Tenant: "a", Edges: edges,
		Options: []kamsta.RunOption{kamsta.WithFaultInjection(plan)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("retried job failed: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges {
		t.Fatalf("weight %d/%d edges, want %d/%d", rep.TotalWeight, rep.NumEdges, want.TotalWeight, want.NumEdges)
	}
	if !plan.Exhausted() {
		t.Fatal("fault plan never fired — the retry path was not exercised")
	}
	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Retried != 1 {
		t.Fatalf("tenant stats = %+v, want Retried 1", st.Tenants)
	}
}

func TestRetryAttemptsExhausted(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:  []PoolShape{{PEs: 2}},
		Retry: RetryConfig{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	j, err := s.Submit(Request{
		Tenant: "a", Edges: testEdges(22, 40, 120),
		Options: []kamsta.RunOption{kamsta.WithFaultInjection(persistentPlan(8))},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	var je *kamsta.JobError
	if !errors.As(err, &je) {
		t.Fatalf("persistent fault err = %v, want *kamsta.JobError", err)
	}
	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Retried != 2 {
		t.Fatalf("tenant stats = %+v, want Retried 2 (three attempts)", st.Tenants)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	s := newTestServer(t, Config{
		Pool: []PoolShape{{PEs: 2}},
		Retry: RetryConfig{
			MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
			BudgetRate: 0.001, BudgetBurst: 0.5, // the bucket can never reach one token
		},
	})
	j, err := s.Submit(Request{
		Tenant: "a", Edges: testEdges(23, 40, 120),
		Options: []kamsta.RunOption{kamsta.WithFaultInjection(transientPlan())},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	var je *kamsta.JobError
	if !errors.As(err, &je) {
		t.Fatalf("budget-starved fault err = %v, want the original *kamsta.JobError", err)
	}
	if st := s.Stats(); st.Tenants[0].Retried != 0 {
		t.Fatalf("tenant stats = %+v, want Retried 0 (budget denied)", st.Tenants)
	}
}

// TestQuarantineAfterConsecutiveFaults quarantines a machine after repeated
// world faults and checks the blast radius: queued jobs only it could serve
// fail with ErrShapeQuarantined, admission rejects new pinned work up front,
// the surviving shape keeps serving, and Stats/readyz report the degraded
// pool.
func TestQuarantineAfterConsecutiveFaults(t *testing.T) {
	s := newTestServer(t, Config{
		Pool:            []PoolShape{{PEs: 2, Threads: 1, Count: 1}, {PEs: 4, Threads: 1, Count: 1}},
		QuarantineAfter: 2,
	})
	faultReq := func(seed int64) Request {
		return Request{
			Tenant: "a", PEs: 2, Edges: testEdges(seed, 40, 120),
			Options: []kamsta.RunOption{kamsta.WithFaultInjection(faultinject.NewPlan(&faultinject.Rule{
				Site: faultinject.SiteCollective, Rank: 0, Occurrence: 0, Action: faultinject.ActPanic,
			}))},
		}
	}
	f1, err := s.Submit(faultReq(31))
	if err != nil {
		t.Fatal(err)
	}
	var je *kamsta.JobError
	if _, err := f1.Wait(context.Background()); !errors.As(err, &je) {
		t.Fatalf("fault 1 err = %v, want *kamsta.JobError", err)
	}
	f2, err := s.Submit(faultReq(32))
	if err != nil {
		t.Fatal(err)
	}
	// A pinned victim behind the second fault: either admission already sees
	// the quarantine, or the queued job is failed when quarantine sweeps.
	victim, verr := s.Submit(Request{Tenant: "a", PEs: 2, Edges: testEdges(33, 20, 60)})
	if _, err := f2.Wait(context.Background()); !errors.As(err, &je) {
		t.Fatalf("fault 2 err = %v, want *kamsta.JobError", err)
	}
	if verr != nil {
		if !errors.Is(verr, ErrShapeQuarantined) {
			t.Fatalf("victim submit err = %v, want ErrShapeQuarantined", verr)
		}
	} else if _, err := victim.Wait(context.Background()); !errors.Is(err, ErrShapeQuarantined) {
		t.Fatalf("victim err = %v, want ErrShapeQuarantined", err)
	}
	if _, err := s.Submit(Request{Tenant: "a", PEs: 2, Edges: testEdges(34, 10, 20)}); !errors.Is(err, ErrShapeQuarantined) {
		t.Fatalf("pinned submit after quarantine err = %v, want ErrShapeQuarantined", err)
	}
	// The surviving shape still serves unpinned work.
	edges := testEdges(35, 30, 90)
	want := reference(t, edges)
	ok, err := s.Submit(Request{Tenant: "a", Edges: edges})
	if err != nil {
		t.Fatalf("unpinned submit after quarantine: %v", err)
	}
	rep, err := ok.Wait(context.Background())
	if err != nil {
		t.Fatalf("unpinned job after quarantine: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight {
		t.Fatalf("weight %d, want %d", rep.TotalWeight, want.TotalWeight)
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	quarantined := 0
	for _, ms := range st.Machines {
		if ms.Quarantined {
			quarantined++
			if ms.PEs != 2 {
				t.Fatalf("quarantined machine has %d PEs, want 2", ms.PEs)
			}
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d machines marked quarantined, want 1", quarantined)
	}
	rr := httptest.NewRecorder()
	s.handleReady(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 {
		t.Fatalf("readyz = %d with a quarantined machine, want 503", rr.Code)
	}
}
