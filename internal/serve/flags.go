package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePool parses a pool flag like "4x1:2,8x2" — comma-separated shapes,
// each PEs["x"Threads][":"Count] (threads default 1, count default 1).
func ParsePool(s string) ([]PoolShape, error) {
	var out []PoolShape
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		shape := PoolShape{Threads: 1, Count: 1}
		spec := part
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			n, err := strconv.Atoi(spec[i+1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("serve: bad machine count in pool shape %q", part)
			}
			shape.Count = n
			spec = spec[:i]
		}
		if i := strings.IndexByte(spec, 'x'); i >= 0 {
			t, err := strconv.Atoi(spec[i+1:])
			if err != nil || t < 1 {
				return nil, fmt.Errorf("serve: bad thread count in pool shape %q", part)
			}
			shape.Threads = t
			spec = spec[:i]
		}
		p, err := strconv.Atoi(spec)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("serve: bad PE count in pool shape %q", part)
		}
		shape.PEs = p
		out = append(out, shape)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: empty pool spec")
	}
	return out, nil
}

// ParseTenants parses a tenants flag like "alpha:4,beta:2" — comma-
// separated name[:weight] entries (weight default 1). Empty input is a
// valid empty list (an open server).
func ParseTenants(s string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tc := TenantConfig{Weight: 1}
		if i := strings.IndexByte(part, ':'); i >= 0 {
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("serve: bad weight in tenant %q", part)
			}
			tc.Weight = w
			part = part[:i]
		}
		if part == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		tc.Name = part
		out = append(out, tc)
	}
	return out, nil
}
