package serve

import (
	"context"
	"sort"
	"time"

	"kamsta"
)

// Batching exploits that the minimum spanning forest of a disjoint union is
// the union of the forests: members' vertex labels are shifted into
// disjoint ranges, one Compute runs on the union, and the forest is split
// back by range. Correct for any union-decomposable algorithm; the server
// batches only borůvka and filter-borůvka, whose results are
// instance-deterministic.

// batchMaxLabel caps the summed label ranges of a batch: every relabeled
// vertex must stay in kamsta's [1, 2^32) label space.
const batchMaxLabel = 1<<32 - 1

// batchKey groups jobs that may share one Compute: same algorithm, seed and
// shape constraint.
type batchKey struct {
	alg  kamsta.Algorithm
	seed uint64
	pes  int
}

// batchKeyOf reports whether j is batchable under bc and its grouping key.
func batchKeyOf(j *Job, bc BatchConfig) (batchKey, bool) {
	if bc.MaxJobs < 2 {
		return batchKey{}, false
	}
	r := j.req
	if r.NoBatch || r.Edges == nil || len(r.Options) > 0 {
		return batchKey{}, false
	}
	if len(r.Edges) == 0 || len(r.Edges) > bc.MaxEdges {
		return batchKey{}, false
	}
	alg := r.Algorithm
	if alg == "" {
		alg = kamsta.AlgBoruvka
	}
	if alg != kamsta.AlgBoruvka && alg != kamsta.AlgFilterBoruvka {
		return batchKey{}, false
	}
	return batchKey{alg: alg, seed: r.Seed, pes: r.PEs}, true
}

// runBatch executes one batch: relabel members into disjoint vertex ranges,
// run one Compute, split the forest per member. The batch context uses the
// LATEST member deadline (and only when every member has one): one member's
// expiring deadline must not kill the survivors' shared run. An expired
// member reports its own deadline error; surviving members get their split
// of the forest. On a compute error, each live member resolves through the
// retry policy individually. Returns the compute error for machine-health
// accounting.
func (s *Server) runBatch(pm *poolMachine, jobs []*Job) error {
	bases := make([]uint64, len(jobs))
	var off uint64
	total := 0
	for i, j := range jobs {
		bases[i] = off
		off += j.maxV
		total += len(j.req.Edges)
	}
	union := make([]kamsta.InputEdge, 0, total)
	for i, j := range jobs {
		for _, e := range j.req.Edges {
			union = append(union, kamsta.InputEdge{U: e.U + bases[i], V: e.V + bases[i], W: e.W})
		}
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	if dl, ok := latestDeadline(jobs); ok {
		ctx, cancel = context.WithDeadline(s.baseCtx, dl)
	}
	defer cancel()

	s.sm.observeBatch(len(jobs))
	start := time.Now()
	rep, err := pm.m.Compute(ctx, kamsta.FromEdges(union), s.runOptions(jobs[0].req)...)
	sec := time.Since(start).Seconds()
	s.sm.observeRun(sec)
	s.shed.observe(pm.shape.PEs, sec)
	if err != nil {
		for _, j := range jobs {
			// A member whose own context expired or was cancelled reports
			// that; the rest carry the batch error into the retry policy,
			// where they re-dispatch individually (and may batch again).
			if jerr := j.ctx.Err(); jerr != nil {
				s.finishJob(j, nil, jerr)
			} else {
				s.maybeRetry(j, nil, err)
			}
		}
		return err
	}
	for i, j := range jobs {
		if jerr := j.ctx.Err(); jerr != nil {
			// The batch outlived this member's deadline (the shared run
			// serves the latest one): the result exists but arrived too
			// late for this member's contract.
			s.finishJob(j, nil, jerr)
			continue
		}
		s.finishJob(j, memberReport(rep, jobs, bases, i), nil)
	}
	return nil
}

// latestDeadline returns the latest member deadline when EVERY member has
// one; if any member is deadline-free the batch runs unbounded, because
// that member is entitled to a completed run.
func latestDeadline(jobs []*Job) (time.Time, bool) {
	var dl time.Time
	for _, j := range jobs {
		d, has := j.ctx.Deadline()
		if !has {
			return time.Time{}, false
		}
		if d.After(dl) {
			dl = d
		}
	}
	return dl, true
}

// memberReport carves member i's report out of the batch report. Forest
// edges are mapped back to original labels; MSTEdges stay canonically
// sorted because the offset shift preserves their order within a range.
// Machine-level figures (modeled/wall seconds, rounds, phases) are the
// batch's — members share one run, and the split documents that rather
// than invent a per-member cost model.
func memberReport(rep *kamsta.Report, jobs []*Job, bases []uint64, i int) *kamsta.Report {
	base := bases[i]
	hi := base + jobs[i].maxV // inclusive upper label of member i's range
	// rep.MSTEdges is sorted by canonical U, so member i's edges form one
	// contiguous run: binary-search its start, scan to its end.
	lo := sort.Search(len(rep.MSTEdges), func(k int) bool { return rep.MSTEdges[k].U > base })
	out := &kamsta.Report{
		InputVertices:       jobs[i].verts,
		InputEdges:          2 * len(jobs[i].req.Edges),
		InputModeledSeconds: rep.InputModeledSeconds,
		WallSeconds:         rep.WallSeconds,
		ModeledSeconds:      rep.ModeledSeconds,
		EdgesPerSecond:      rep.EdgesPerSecond,
	}
	for k := lo; k < len(rep.MSTEdges) && rep.MSTEdges[k].U <= hi; k++ {
		e := rep.MSTEdges[k]
		out.MSTEdges = append(out.MSTEdges, kamsta.InputEdge{U: e.U - base, V: e.V - base, W: e.W})
		out.TotalWeight += uint64(e.W)
		out.NumEdges++
	}
	return out
}
