package serve

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"kamsta"
)

// RetryConfig bounds server-side transparent retries of jobs killed by a
// contained world fault (*kamsta.JobError — a panic, stall, or injected
// I/O error on one PE). The Machine already rebuilds its world after such
// faults, so a retry usually succeeds; the budget exists so that a
// persistent fault (or a fault storm under overload) cannot amplify load.
//
// Two limits compose: MaxAttempts bounds one job (attempts, not retries —
// 3 means the original dispatch plus up to two retries), and a per-tenant
// token bucket (BudgetRate tokens/second, burst BudgetBurst) bounds the
// tenant's aggregate retry rate. When either is exhausted the job fails
// with its original *JobError, exactly as it would without retries.
type RetryConfig struct {
	// MaxAttempts is the total dispatch attempts per job (≤1 disables
	// server-side retries — the default, so fault-injection tests observe
	// raw *JobErrors unless they opt in).
	MaxAttempts int
	// BackoffBase seeds the exponential backoff between attempts (default
	// 10ms); BackoffMax caps it (default 1s). Full jitter: each delay is
	// uniform in (0, min(BackoffMax, BackoffBase·2^attempt)].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BudgetRate refills a tenant's retry budget in tokens/second (default
	// 1); BudgetBurst caps the bucket (default 10). Each retry takes one
	// token.
	BudgetRate  float64
	BudgetBurst float64
}

func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = 10 * time.Millisecond
	}
	if rc.BackoffMax <= 0 {
		rc.BackoffMax = time.Second
	}
	if rc.BudgetRate <= 0 {
		rc.BudgetRate = 1
	}
	if rc.BudgetBurst <= 0 {
		rc.BudgetBurst = 10
	}
	return rc
}

// backoff returns the full-jittered delay before attempt n's dispatch
// (n ≥ 1: the first retry).
func (rc RetryConfig) backoff(n int) time.Duration {
	d := rc.BackoffBase << min(n, 20)
	if d <= 0 || d > rc.BackoffMax {
		d = rc.BackoffMax
	}
	return 1 + time.Duration(rand.Int63n(int64(d)))
}

// tokenBucket is a refill-on-take token bucket guarding one tenant's retry
// budget.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{tokens: burst, last: time.Now(), rate: rate, burst: burst}
}

// take consumes one token if available.
func (b *tokenBucket) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens = min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryBudget returns (creating on first use) the tenant's bucket.
func (s *Server) retryBudget(tenant string) *tokenBucket {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	b := s.budgets[tenant]
	if b == nil {
		b = newTokenBucket(s.cfg.Retry.BudgetRate, s.cfg.Retry.BudgetBurst)
		s.budgets[tenant] = b
	}
	return b
}

// maybeRetry resolves a dispatch outcome: world faults re-dispatch after a
// jittered backoff while the job's attempts and its tenant's budget last;
// everything else (and every exhausted fault) finishes the job. Exactly-
// once accounting is preserved because a retried job is the same *Job —
// it finishes once, at its terminal outcome, and its tenant's submitted
// counter was bumped only at admission.
func (s *Server) maybeRetry(j *Job, rep *kamsta.Report, err error) {
	var je *kamsta.JobError
	if err == nil || s.cfg.Retry.MaxAttempts <= 1 || !errors.As(err, &je) || j.ctx.Err() != nil {
		s.finishJob(j, rep, err)
		return
	}
	j.attempts++
	if j.attempts >= s.cfg.Retry.MaxAttempts || !s.retryBudget(j.tenant).take() {
		s.finishJob(j, nil, err)
		return
	}
	delay := s.cfg.Retry.backoff(j.attempts)
	s.retryMu.Lock()
	if s.retryStopped {
		// Drain/Close already flushed the pending set; a new timer would
		// never be cancelled and its job could outlive the machines.
		s.retryMu.Unlock()
		s.finishJob(j, nil, err)
		return
	}
	j.started.Store(0) // back to "queued" while the backoff runs
	s.pending[j.id] = &pendingRetry{j: j, orig: err}
	s.pending[j.id].timer = time.AfterFunc(delay, func() { s.redispatch(j.id) })
	s.retryMu.Unlock()
	if j.ten != nil {
		j.ten.retried.Add(1)
	}
	s.sm.retriedInc(j.tenant)
}

// pendingRetry is one job waiting out its backoff.
type pendingRetry struct {
	j     *Job
	orig  error
	timer *time.Timer
}

// redispatch moves a backed-off job back into the scheduler. If the
// scheduler no longer admits (draining or closed), the job finishes with
// its original fault — a retry never outlives the server's lifecycle.
func (s *Server) redispatch(id uint64) {
	s.retryMu.Lock()
	pr := s.pending[id]
	delete(s.pending, id)
	s.retryMu.Unlock()
	if pr == nil {
		return // flushed by drainRetries
	}
	if pr.j.ctx.Err() != nil || s.shed.live(pr.j.req.PEs) == 0 {
		// The deadline burned out during the backoff, or quarantine took
		// the last machine that could serve it: report the original fault
		// rather than queue a job nothing will run.
		s.finishJob(pr.j, nil, pr.orig)
		return
	}
	if err := s.sched.resubmit(pr.j); err != nil {
		s.finishJob(pr.j, nil, pr.orig)
	}
}

// drainRetries stops accepting new retry timers and flushes the pending
// ones: each waiting job finishes now with its original fault. Called on
// Drain and Close so shutdown never races a timer into a dead scheduler.
func (s *Server) drainRetries() {
	s.retryMu.Lock()
	s.retryStopped = true
	flush := make([]*pendingRetry, 0, len(s.pending))
	for id, pr := range s.pending {
		pr.timer.Stop()
		flush = append(flush, pr)
		delete(s.pending, id)
	}
	s.retryMu.Unlock()
	for _, pr := range flush {
		s.finishJob(pr.j, nil, pr.orig)
	}
}
