package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"kamsta"
	"kamsta/internal/gen"
)

// The HTTP job API (cmd/mstserve):
//
//	POST   /v1/jobs          submit a job            → 202 {"id","status"}
//	GET    /v1/jobs/{id}     poll (?wait=2s, ?edges=1) → job status/result
//	DELETE /v1/jobs/{id}     cancel and forget       → 204
//	GET    /v1/stats         server snapshot
//	GET    /metrics          Prometheus export (when a registry is set)
//	GET    /healthz          liveness (the process serves requests)
//	GET    /readyz           readiness (not draining, not browned out,
//	                         live machines remain) — 503 with a reason
//	                         otherwise, for load balancers to steer around
//
// Errors are {"error","code"} JSON; code is the machine-readable reason
// (queue_full, tenant_queue_full, unknown_tenant, draining, no_shape,
// shed_deadline, brownout, quarantined, bad_request — and on finished
// jobs: deadline, cancelled, quarantined, fault, error). Overload
// rejections (429/503) carry a Retry-After header with the server's drain
// estimate, rounded up to whole seconds.

// wireEdge is one edge on the wire: [u, v, w].
type wireEdge [3]uint64

// wireSpec mirrors kamsta.GraphSpec with a string family name.
type wireSpec struct {
	Family      string  `json:"family"`
	N           uint64  `json:"n"`
	M           uint64  `json:"m,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	PLExp       float64 `json:"pl_exp,omitempty"`
	LocalityMix float64 `json:"locality_mix,omitempty"`
}

// wireRequest is the POST /v1/jobs body.
type wireRequest struct {
	Tenant     string     `json:"tenant"`
	Algorithm  string     `json:"algorithm,omitempty"`
	Seed       uint64     `json:"seed,omitempty"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
	PEs        int        `json:"pes,omitempty"`
	NoBatch    bool       `json:"no_batch,omitempty"`
	Spec       *wireSpec  `json:"spec,omitempty"`
	Edges      []wireEdge `json:"edges,omitempty"`
	File       string     `json:"file,omitempty"`
	FileFormat string     `json:"file_format,omitempty"`
}

// wireResult is the result payload of a finished job.
type wireResult struct {
	TotalWeight    uint64     `json:"total_weight"`
	NumEdges       int        `json:"num_edges"`
	InputVertices  int        `json:"input_vertices"`
	InputEdges     int        `json:"input_edges"`
	ModeledSeconds float64    `json:"modeled_seconds"`
	WallSeconds    float64    `json:"wall_seconds"`
	MSTEdges       []wireEdge `json:"mst_edges,omitempty"`
}

// wireJob is the GET /v1/jobs/{id} (and POST) response.
type wireJob struct {
	ID     uint64      `json:"id"`
	Tenant string      `json:"tenant,omitempty"`
	Status string      `json:"status"`
	Result *wireResult `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
	Code   string      `json:"code,omitempty"`
}

// Handler returns the HTTP API for the server, including /metrics when a
// registry is configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handlePoll)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	}
	return mux
}

// handleReady answers readiness: 200 while the server can do useful work,
// 503 (with a reason) while it should be steered around — draining,
// browned out, or out of live machines.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.shed.live(0) == 0:
		reason = "no live machines"
	case s.brownout():
		reason = "brownout"
	default:
		s.sched.mu.Lock()
		if s.sched.state != schedRunning {
			reason = "draining"
		}
		s.sched.mu.Unlock()
	}
	if reason != "" {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var wr wireRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wr); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	req, err := wr.toRequest()
	if err != nil {
		writeError(w, err)
		return
	}
	if req.File != "" && !s.cfg.AllowFiles {
		writeError(w, fmt.Errorf("%w: file jobs are disabled on this server (-allow-files)", ErrBadRequest))
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, wireJob{ID: j.ID(), Tenant: j.Tenant(), Status: j.Status()})
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil || d < 0 {
			writeError(w, fmt.Errorf("%w: bad wait %q", ErrBadRequest, waitSpec))
			return
		}
		if d > time.Minute {
			d = time.Minute // bound long-polls; clients re-poll
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	resp := wireJob{ID: j.ID(), Tenant: j.Tenant(), Status: j.Status()}
	if rep, err, done := j.Result(); done {
		if err != nil {
			resp.Error = err.Error()
			resp.Code = outcomeOf(err)
		} else {
			resp.Result = toWireResult(rep, r.URL.Query().Get("edges") != "")
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	j.Cancel()
	s.Forget(j.ID())
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("%w: bad job id", ErrBadRequest))
		return nil, false
	}
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, wireJob{ID: id, Status: "unknown", Code: "not_found",
			Error: "no such job (finished results expire after the retention window)"})
		return nil, false
	}
	return j, true
}

// toRequest converts the wire form, resolving the graph family name.
func (wr wireRequest) toRequest() (Request, error) {
	req := Request{
		Tenant:     wr.Tenant,
		Algorithm:  kamsta.Algorithm(wr.Algorithm),
		Seed:       wr.Seed,
		Deadline:   time.Duration(wr.DeadlineMS) * time.Millisecond,
		PEs:        wr.PEs,
		NoBatch:    wr.NoBatch,
		File:       wr.File,
		FileFormat: wr.FileFormat,
	}
	if wr.Spec != nil {
		fam, err := gen.ParseFamily(wr.Spec.Family)
		if err != nil {
			return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		req.Spec = &kamsta.GraphSpec{
			Family:      fam,
			N:           wr.Spec.N,
			M:           wr.Spec.M,
			Seed:        wr.Spec.Seed,
			PLExp:       wr.Spec.PLExp,
			LocalityMix: wr.Spec.LocalityMix,
		}
	}
	if wr.Edges != nil {
		req.Edges = make([]kamsta.InputEdge, len(wr.Edges))
		for i, e := range wr.Edges {
			if e[2] > 1<<32-1 {
				return Request{}, fmt.Errorf("%w: edge weight %d overflows uint32", ErrBadRequest, e[2])
			}
			req.Edges[i] = kamsta.InputEdge{U: e[0], V: e[1], W: uint32(e[2])}
		}
	}
	return req, nil
}

func toWireResult(rep *kamsta.Report, includeEdges bool) *wireResult {
	res := &wireResult{
		TotalWeight:    rep.TotalWeight,
		NumEdges:       rep.NumEdges,
		InputVertices:  rep.InputVertices,
		InputEdges:     rep.InputEdges,
		ModeledSeconds: rep.ModeledSeconds,
		WallSeconds:    rep.WallSeconds,
	}
	if includeEdges {
		res.MSTEdges = make([]wireEdge, len(rep.MSTEdges))
		for i, e := range rep.MSTEdges {
			res.MSTEdges[i] = wireEdge{e.U, e.V, uint64(e.W)}
		}
	}
	return res
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a Submit error to an HTTP status plus machine-readable
// code: back-pressure and deadline shedding are 429, authz 403, shutdown /
// brownout / quarantine 503, the rest 400. Overload rejections carrying a
// server hint also set Retry-After (delta-seconds, rounded up — the header
// has whole-second granularity).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull),
		errors.Is(err, ErrDeadlineUnattainable):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownTenant):
		status = http.StatusForbidden
	case errors.Is(err, ErrDraining), errors.Is(err, ErrBrownout),
		errors.Is(err, ErrShapeQuarantined):
		status = http.StatusServiceUnavailable
	}
	if hint, ok := retryAfterOf(err); ok {
		secs := int64((hint + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": rejectReason(err)})
}
