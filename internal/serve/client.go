package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"kamsta"
)

// Client talks to a remote mstserve over the /v1 job API. It mirrors the
// in-process Submit/Wait surface so load generators and tools can target
// either transparently (see loadgen.Target).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// PollWait is the long-poll window per status request (default 2s).
	PollWait time.Duration
	// MaxRetries makes Submit retry overload rejections (429/503 back-
	// pressure: queue full, shed, brownout) up to that many extra attempts,
	// honoring the server's Retry-After hint when present and exponential
	// backoff with jitter otherwise. 0 (the default) surfaces rejections to
	// the caller — load generators do their own retry policy.
	MaxRetries int
	// RetryBase seeds the client backoff (default 50ms); RetryMax caps both
	// the backoff and any server Retry-After hint (default 2s), so a
	// pessimistic server cannot stall a client indefinitely.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// RemoteJob is a submitted job handle on a remote server.
type RemoteJob struct {
	c      *Client
	id     uint64
	tenant string
}

// ID returns the server-assigned job id.
func (rj *RemoteJob) ID() uint64 { return rj.id }

// Tenant returns the submitting tenant.
func (rj *RemoteJob) Tenant() string { return rj.tenant }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Submit posts a job. Requests carrying a Source or Options are in-process
// only and are rejected client-side. Admission rejections surface as the
// same sentinel errors the in-process Submit returns (overload rejections
// wrapped in *RetryAfterError when the server sent a hint); with
// MaxRetries set, overload rejections are retried here first.
func (c *Client) Submit(ctx context.Context, req Request) (*RemoteJob, error) {
	if req.Source != nil || len(req.Options) > 0 {
		return nil, fmt.Errorf("%w: Source and Options are in-process only", ErrBadRequest)
	}
	rj, err := c.submitOnce(ctx, req)
	for attempt := 0; err != nil && attempt < c.MaxRetries && isOverload(err); attempt++ {
		if werr := sleepCtx(ctx, c.retryDelay(err, attempt)); werr != nil {
			return nil, err // report the rejection, not the cancelled sleep
		}
		rj, err = c.submitOnce(ctx, req)
	}
	return rj, err
}

// isOverload reports whether a rejection is transient server back-pressure
// worth retrying (as opposed to a malformed or unauthorized request).
func isOverload(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQueueFull) ||
		errors.Is(err, ErrDeadlineUnattainable) || errors.Is(err, ErrBrownout)
}

// retryDelay picks the wait before retry attempt n: the server's
// Retry-After hint when present, else RetryBase·2^n, both jittered ±50%
// and capped at RetryMax.
func (c *Client) retryDelay(err error, attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxD := c.RetryMax
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	d := base << min(attempt, 20)
	if hint, ok := retryAfterOf(err); ok && hint > 0 {
		d = hint
	}
	if d <= 0 || d > maxD {
		d = maxD
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) submitOnce(ctx context.Context, req Request) (*RemoteJob, error) {
	wr := wireRequest{
		Tenant:     req.Tenant,
		Algorithm:  string(req.Algorithm),
		Seed:       req.Seed,
		DeadlineMS: req.Deadline.Milliseconds(),
		PEs:        req.PEs,
		NoBatch:    req.NoBatch,
		File:       req.File,
		FileFormat: req.FileFormat,
	}
	if req.Spec != nil {
		wr.Spec = &wireSpec{
			Family:      req.Spec.Family.Name(),
			N:           req.Spec.N,
			M:           req.Spec.M,
			Seed:        req.Spec.Seed,
			PLExp:       req.Spec.PLExp,
			LocalityMix: req.Spec.LocalityMix,
		}
	}
	if req.Edges != nil {
		wr.Edges = make([]wireEdge, len(req.Edges))
		for i, e := range req.Edges {
			wr.Edges[i] = wireEdge{e.U, e.V, uint64(e.W)}
		}
	}
	var wj wireJob
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", wr, &wj); err != nil {
		return nil, err
	}
	return &RemoteJob{c: c, id: wj.ID, tenant: wj.Tenant}, nil
}

// Wait polls (long-poll windows of PollWait) until the job finishes or ctx
// expires. Job errors come back as their in-process equivalents where a
// mapping exists (deadline, cancelled).
func (rj *RemoteJob) Wait(ctx context.Context) (*kamsta.Report, error) {
	wait := rj.c.PollWait
	if wait <= 0 {
		wait = 2 * time.Second
	}
	path := fmt.Sprintf("/v1/jobs/%d?wait=%s&edges=1", rj.id, wait)
	for {
		var wj wireJob
		if err := rj.c.do(ctx, http.MethodGet, path, nil, &wj); err != nil {
			return nil, err
		}
		if wj.Status != "done" {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			continue
		}
		if wj.Error != "" {
			return nil, wireOutcomeError(wj.Code, wj.Error)
		}
		return fromWireResult(wj.Result), nil
	}
}

// Cancel cancels the remote job and releases its result slot.
func (rj *RemoteJob) Cancel(ctx context.Context) error {
	return rj.c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", rj.id), nil, nil)
}

// Stats fetches the server snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthy reports whether /healthz answers.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

// Ready reports whether /readyz answers 200 — the server is serving, not
// draining, not browned out, and has live machines.
func (c *Client) Ready(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil) == nil
}

// do round-trips one API call, decoding {"error","code"} bodies into the
// sentinel errors the in-process API uses.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr struct{ Error, Code string }
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Code != "" {
			err := wireCodeError(apiErr.Code, apiErr.Error)
			// Re-attach the server's backoff hint so callers (and this
			// client's own retry loop) see the same RetryAfterError shape
			// the in-process Submit returns.
			if secs, perr := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); perr == nil && secs > 0 {
				err = &RetryAfterError{Err: err, RetryAfter: time.Duration(secs) * time.Second}
			}
			return err
		}
		return fmt.Errorf("serve: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// wireCodeError maps an admission rejection code back to its sentinel.
func wireCodeError(code, msg string) error {
	switch code {
	case "queue_full":
		return fmt.Errorf("%w (%s)", ErrQueueFull, msg)
	case "tenant_queue_full":
		return fmt.Errorf("%w (%s)", ErrTenantQueueFull, msg)
	case "unknown_tenant":
		return fmt.Errorf("%w (%s)", ErrUnknownTenant, msg)
	case "draining":
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	case "no_shape":
		return fmt.Errorf("%w (%s)", ErrNoSuchShape, msg)
	case "shed_deadline":
		return fmt.Errorf("%w (%s)", ErrDeadlineUnattainable, msg)
	case "brownout":
		return fmt.Errorf("%w (%s)", ErrBrownout, msg)
	case "quarantined":
		return fmt.Errorf("%w (%s)", ErrShapeQuarantined, msg)
	default:
		return fmt.Errorf("%w: %s", ErrBadRequest, msg)
	}
}

// wireOutcomeError maps a finished job's outcome code to the error the
// in-process Job.Wait would return.
func wireOutcomeError(code, msg string) error {
	switch code {
	case "deadline":
		return fmt.Errorf("%w (%s)", context.DeadlineExceeded, msg)
	case "cancelled":
		return fmt.Errorf("%w (%s)", context.Canceled, msg)
	case "quarantined":
		return fmt.Errorf("%w (%s)", ErrShapeQuarantined, msg)
	default:
		return fmt.Errorf("serve: remote job failed (%s): %s", code, msg)
	}
}

func fromWireResult(res *wireResult) *kamsta.Report {
	if res == nil {
		return &kamsta.Report{}
	}
	rep := &kamsta.Report{
		TotalWeight:    res.TotalWeight,
		NumEdges:       res.NumEdges,
		InputVertices:  res.InputVertices,
		InputEdges:     res.InputEdges,
		ModeledSeconds: res.ModeledSeconds,
		WallSeconds:    res.WallSeconds,
	}
	if len(res.MSTEdges) > 0 {
		rep.MSTEdges = make([]kamsta.InputEdge, len(res.MSTEdges))
		for i, e := range res.MSTEdges {
			rep.MSTEdges[i] = kamsta.InputEdge{U: e[0], V: e[1], W: uint32(e[2])}
		}
	}
	return rep
}
