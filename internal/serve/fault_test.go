package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/faultinject"
	"kamsta/internal/obs"
)

// TestFaultTenantContained is the multi-tenant fault drill (run under
// -race in CI): one tenant's jobs panic inside the world via seeded fault
// injection while two healthy tenants keep submitting. Every job must
// resolve exactly once — faults as *kamsta.JobError, healthy jobs with
// results matching sequential Kruskal — the pool must rebuild broken
// worlds without dropping queued jobs, and the metrics registry must stay
// exportable and consistent.
func TestFaultTenantContained(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Pool: []PoolShape{{PEs: 2, Threads: 1, Count: 2}},
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 2}, {Name: "beta", Weight: 1}, {Name: "evil", Weight: 1},
		},
		Metrics: reg,
	})

	const perTenant = 8
	type workItem struct {
		req  Request
		want *kamsta.Report // nil for the fault tenant
	}
	// Build every request (and the healthy references) up front; the
	// goroutines below only submit and wait.
	work := map[string][]workItem{}
	for _, tenant := range []string{"alpha", "beta", "evil"} {
		for i := 0; i < perTenant; i++ {
			item := workItem{req: Request{Tenant: tenant}}
			if tenant == "evil" {
				// Faults at a varying rank/occurrence of the collective
				// site; each job carries its own armed plan. Most jobs
				// panic (contained, world survives); every fourth is an
				// injected straggler outlasting a short stall timeout,
				// which poisons the world and forces a transparent
				// rebuild under the pool's feet.
				item.req.Edges = testEdges(int64(1000+i), 40, 120)
				rule := &faultinject.Rule{
					Site:       faultinject.SiteCollective,
					Rank:       i % 2,
					Occurrence: i,
					Action:     faultinject.ActPanic,
				}
				item.req.Options = []kamsta.RunOption{
					kamsta.WithFaultInjection(faultinject.NewPlan(rule)),
				}
				if i%4 == 3 {
					rule.Action = faultinject.ActDelay
					rule.Delay = 400 * time.Millisecond
					item.req.Options = append(item.req.Options,
						kamsta.WithStallTimeout(50*time.Millisecond))
				}
			} else {
				edges := testEdges(int64(i), 40, 120)
				item.req.Edges = edges
				item.want = reference(t, edges)
			}
			work[tenant] = append(work[tenant], item)
		}
	}

	type outcome struct {
		tenant string
		idx    int
		rep    *kamsta.Report
		want   *kamsta.Report
		err    error
	}
	results := make(chan outcome, 3*perTenant)
	var wg sync.WaitGroup
	for tenant, items := range work {
		wg.Add(1)
		go func(tenant string, items []workItem) {
			defer wg.Done()
			for i, item := range items {
				j, err := s.Submit(item.req)
				if err != nil {
					results <- outcome{tenant: tenant, idx: i, err: fmt.Errorf("submit: %w", err)}
					continue
				}
				rep, err := j.Wait(context.Background())
				results <- outcome{tenant: tenant, idx: i, rep: rep, want: item.want, err: err}
			}
		}(tenant, items)
	}
	wg.Wait()
	close(results)

	counts := map[string]int{}
	for o := range results {
		counts[o.tenant]++
		if o.tenant == "evil" {
			var je *kamsta.JobError
			if !errors.As(o.err, &je) {
				t.Errorf("evil job %d: err = %v, want *kamsta.JobError", o.idx, o.err)
			}
			continue
		}
		if o.err != nil {
			t.Errorf("%s job %d: %v", o.tenant, o.idx, o.err)
			continue
		}
		if o.rep.TotalWeight != o.want.TotalWeight || o.rep.NumEdges != o.want.NumEdges {
			t.Errorf("%s job %d: weight %d/%d edges, want %d/%d",
				o.tenant, o.idx, o.rep.TotalWeight, o.rep.NumEdges, o.want.TotalWeight, o.want.NumEdges)
		}
	}
	for _, tenant := range []string{"alpha", "beta", "evil"} {
		if counts[tenant] != perTenant {
			t.Fatalf("%s delivered %d results, want %d (lost or duplicated jobs)",
				tenant, counts[tenant], perTenant)
		}
	}

	// The service must still be healthy: a fresh job forces a rebuild of
	// any still-broken world and succeeds.
	edges := testEdges(42, 50, 150)
	want := reference(t, edges)
	j, err := s.Submit(Request{Tenant: "alpha", Edges: edges})
	if err != nil {
		t.Fatalf("post-fault submit: %v", err)
	}
	rep, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("post-fault job: %v", err)
	}
	if rep.TotalWeight != want.TotalWeight {
		t.Fatalf("post-fault weight = %d, want %d", rep.TotalWeight, want.TotalWeight)
	}

	st := s.Stats()
	var rebuilds int64
	for _, ms := range st.Machines {
		rebuilds += ms.Rebuilds
	}
	if rebuilds == 0 {
		t.Fatalf("no world rebuilds recorded despite %d panicking jobs", perTenant)
	}
	for _, ts := range st.Tenants {
		wantSub := int64(perTenant)
		if ts.Name == "alpha" {
			wantSub++ // the post-fault probe job
		}
		if ts.Submitted != wantSub || ts.Completed != wantSub || ts.Queued != 0 {
			t.Fatalf("tenant %s stats inconsistent: %+v", ts.Name, ts)
		}
	}
	// The registry survived concurrent faults: exporting must not panic
	// and must include the serve_ series.
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("metrics export: %v", err)
	}
}
