package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"kamsta/internal/obs"
)

// Overload errors: the server refusing work it could not finish usefully.
// Like the admission sentinels in sched.go they are errors.Is-able; the
// HTTP layer maps them to 429/503 with a Retry-After hint.
var (
	// ErrDeadlineUnattainable: the job's deadline cannot survive the
	// estimated queue wait, so admitting it would only burn a machine slot
	// on a result nobody can use. Retry later or with a larger deadline.
	ErrDeadlineUnattainable = errors.New("serve: deadline cannot survive the current queue wait")
	// ErrBrownout: the server is degraded (deep queue or quarantined
	// machines) and is shedding batch-eligible small jobs first to protect
	// the rest of the workload.
	ErrBrownout = errors.New("serve: brownout, shedding batch-eligible small jobs")
	// ErrShapeQuarantined: every pool machine that could serve the job has
	// been quarantined after repeated faults.
	ErrShapeQuarantined = errors.New("serve: no live machine for the job")
)

// RetryAfterError wraps an overload rejection with a backoff hint — how
// long the server estimates the condition needs to clear. The HTTP layer
// renders it as a Retry-After header; serve.Client and loadgen honor it.
// errors.Is still matches the wrapped sentinel.
type RetryAfterError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.RetryAfter.Round(time.Millisecond))
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterOf extracts the backoff hint from a rejection, if any.
func retryAfterOf(err error) (time.Duration, bool) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.RetryAfter, true
	}
	return 0, false
}

// shedder is the admission-time overload estimator: rolling windows of
// recent per-dispatch service times (one per pool shape plus a pooled one),
// and the live-machine census that quarantine shrinks. It answers the one
// question admission control needs — "how long would a job submitted now
// wait in the queue?" — from observed behavior, not configuration.
type shedder struct {
	minSamples int64
	quantile   float64

	all     *obs.Rolling
	byShape map[int]*obs.Rolling // keyed by PEs

	mu        sync.Mutex
	liveByPEs map[int]int
	liveTotal int
}

// shedWindow is the rolling window capacity. Big enough to smooth one
// noisy dispatch, small enough that a workload shift re-trains the
// estimate within a few dozen jobs.
const shedWindow = 256

func newShedder(cfg Config) *shedder {
	sh := &shedder{
		minSamples: int64(cfg.ShedMinSamples),
		quantile:   cfg.ShedQuantile,
		all:        obs.NewRolling(shedWindow),
		byShape:    make(map[int]*obs.Rolling),
		liveByPEs:  make(map[int]int),
	}
	for _, shape := range cfg.Pool {
		count := shape.Count
		if count <= 0 {
			count = 1
		}
		if sh.byShape[shape.PEs] == nil {
			sh.byShape[shape.PEs] = obs.NewRolling(shedWindow)
		}
		sh.liveByPEs[shape.PEs] += count
		sh.liveTotal += count
	}
	return sh
}

// observe records one dispatch's machine-occupancy seconds (a batch counts
// once — that is what the next queued job waits behind).
func (sh *shedder) observe(pes int, sec float64) {
	sh.all.Observe(sec)
	if w := sh.byShape[pes]; w != nil {
		w.Observe(sec)
	}
}

// live reports the machines able to serve a job pinned to pes (0 = any).
func (sh *shedder) live(pes int) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if pes == 0 {
		return sh.liveTotal
	}
	return sh.liveByPEs[pes]
}

// quarantineOne removes a machine from the live census.
func (sh *shedder) quarantineOne(pes int) {
	sh.mu.Lock()
	sh.liveByPEs[pes]--
	sh.liveTotal--
	sh.mu.Unlock()
}

// window picks the estimator for a shape pin (0 = the pooled window).
func (sh *shedder) window(pes int) *obs.Rolling {
	if pes != 0 {
		if w := sh.byShape[pes]; w != nil {
			return w
		}
	}
	return sh.all
}

// estimate returns the expected queue wait for a job pinned to pes given
// the current depth, and whether the estimator is warm enough to be
// trusted (below minSamples it abstains, so a cold server never sheds).
func (sh *shedder) estimate(pes, depth int) (time.Duration, bool) {
	w := sh.window(pes)
	if w.Count() < sh.minSamples {
		return 0, false
	}
	machines := sh.live(pes)
	if machines < 1 {
		return 0, false
	}
	q := w.Quantile(sh.quantile)
	if math.IsNaN(q) {
		return 0, false
	}
	sec := float64(depth) / float64(machines) * q
	return time.Duration(sec * float64(time.Second)), true
}

// shedCheck decides whether to shed a job with effective deadline d at
// current queue depth. A zero deadline never sheds.
func (sh *shedder) shedCheck(pes, depth int, d time.Duration) error {
	if d <= 0 || sh.minSamples < 0 {
		return nil
	}
	est, warm := sh.estimate(pes, depth)
	if !warm || est < d {
		return nil
	}
	// The hint is how much queue would have to drain before this deadline
	// could survive admission.
	return &RetryAfterError{Err: ErrDeadlineUnattainable, RetryAfter: est - d + time.Millisecond}
}

// drainHint estimates the time for n queued jobs to drain — the Retry-After
// hint on queue-full and brownout rejections. Cold estimator: a fixed
// conservative default.
func (sh *shedder) drainHint(pes, n int) time.Duration {
	if n < 1 {
		n = 1
	}
	if est, warm := sh.estimate(pes, n); warm {
		return max(est, time.Millisecond)
	}
	return 100 * time.Millisecond
}

// brownout reports whether the server is degraded: any machine quarantined,
// or the queue past the brownout high-water mark. Degraded, the server
// sheds batch-eligible small jobs at admission (they have the best chance
// of succeeding later) and stops batching (batch growth multiplies the
// blast radius of a faulting world).
func (s *Server) brownout() bool {
	if s.quarantined.Load() > 0 {
		return true
	}
	return s.sched.depth() >= s.brownoutHi
}
