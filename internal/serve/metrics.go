package serve

import (
	"context"
	"errors"
	"sync"

	"kamsta"
	"kamsta/internal/obs"
)

// serveMetrics owns the serve_* series. All methods are safe on a nil
// receiver (no registry configured); per-tenant and per-reason series are
// created lazily under a small lock, the hot counters themselves stay
// lock-free.
type serveMetrics struct {
	queueWait *obs.Histogram
	runTime   *obs.Histogram
	batchSize *obs.Histogram

	mu       sync.Mutex
	reg      *obs.Registry
	submit   map[string]*obs.Counter
	reject   map[[2]string]*obs.Counter
	complete map[[2]string]*obs.Counter
	retry    map[string]*obs.Counter
}

// newServeMetrics registers the serve_* series against reg (nil disables)
// and wires the live gauges to the server's own state.
func newServeMetrics(reg *obs.Registry, s *Server) *serveMetrics {
	if reg == nil {
		return nil
	}
	sm := &serveMetrics{
		reg: reg,
		queueWait: reg.Histogram("serve_queue_wait_seconds",
			"Wall seconds jobs spent queued before dispatch.",
			[]float64{0.001, 0.01, 0.1, 1, 10}),
		runTime: reg.Histogram("serve_job_run_seconds",
			"Wall seconds of machine time per dispatch (a batch counts once).",
			[]float64{0.01, 0.1, 1, 10, 100}),
		batchSize: reg.Histogram("serve_batch_jobs",
			"Jobs coalesced per batched dispatch.",
			[]float64{2, 4, 8, 16, 32}),
		submit:   make(map[string]*obs.Counter),
		reject:   make(map[[2]string]*obs.Counter),
		complete: make(map[[2]string]*obs.Counter),
		retry:    make(map[string]*obs.Counter),
	}
	reg.GaugeFunc("serve_queue_depth", "Jobs currently queued.",
		func() float64 { return float64(s.sched.depth()) })
	reg.GaugeFunc("serve_jobs_running", "Jobs currently executing.",
		func() float64 { return float64(s.running.Load()) })
	reg.GaugeFunc("serve_machines", "Warm machines in the pool.",
		func() float64 { return float64(len(s.machines)) })
	reg.GaugeFunc("serve_machines_busy", "Pool machines currently running a dispatch.",
		func() float64 {
			busy := 0
			for _, pm := range s.machines {
				if pm.busy.Load() {
					busy++
				}
			}
			return float64(busy)
		})
	reg.GaugeFunc("serve_brownout", "1 while the server is degraded (deep queue or quarantined machines).",
		func() float64 {
			if s.brownout() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("serve_machines_quarantined", "Pool machines removed from service after repeated faults.",
		func() float64 { return float64(s.quarantined.Load()) })
	return sm
}

// retriedInc counts one server-side retry of a fault-killed job.
func (sm *serveMetrics) retriedInc(tenant string) {
	if sm == nil {
		return
	}
	sm.mu.Lock()
	c := sm.retry[tenant]
	if c == nil {
		c = sm.reg.Counter("serve_jobs_retried_total",
			"Server-side retries of fault-killed jobs, by tenant.",
			obs.Label{Key: "tenant", Value: tenant})
		sm.retry[tenant] = c
	}
	sm.mu.Unlock()
	c.Inc()
}

func (sm *serveMetrics) submitted(tenant string) {
	if sm == nil {
		return
	}
	sm.mu.Lock()
	c := sm.submit[tenant]
	if c == nil {
		c = sm.reg.Counter("serve_jobs_submitted_total",
			"Jobs admitted, by tenant.", obs.Label{Key: "tenant", Value: tenant})
		sm.submit[tenant] = c
	}
	sm.mu.Unlock()
	c.Inc()
}

func (sm *serveMetrics) rejected(tenant, reason string) {
	if sm == nil {
		return
	}
	if tenant == "" {
		tenant = "unknown"
	}
	k := [2]string{tenant, reason}
	sm.mu.Lock()
	c := sm.reject[k]
	if c == nil {
		c = sm.reg.Counter("serve_jobs_rejected_total",
			"Submissions rejected, by tenant and reason.",
			obs.Label{Key: "tenant", Value: tenant}, obs.Label{Key: "reason", Value: reason})
		sm.reject[k] = c
	}
	sm.mu.Unlock()
	c.Inc()
}

func (sm *serveMetrics) completed(tenant, outcome string) {
	if sm == nil {
		return
	}
	k := [2]string{tenant, outcome}
	sm.mu.Lock()
	c := sm.complete[k]
	if c == nil {
		c = sm.reg.Counter("serve_jobs_completed_total",
			"Jobs finished, by tenant and outcome.",
			obs.Label{Key: "tenant", Value: tenant}, obs.Label{Key: "outcome", Value: outcome})
		sm.complete[k] = c
	}
	sm.mu.Unlock()
	c.Inc()
}

func (sm *serveMetrics) observeWait(sec float64) {
	if sm != nil {
		sm.queueWait.Observe(sec)
	}
}

func (sm *serveMetrics) observeRun(sec float64) {
	if sm != nil {
		sm.runTime.Observe(sec)
	}
}

func (sm *serveMetrics) observeBatch(n int) {
	if sm != nil {
		sm.batchSize.Observe(float64(n))
	}
}

// outcomeOf classifies a job error for the completion counter, mirroring
// the Machine's own outcome labels: ok, deadline, cancelled, quarantined
// (the pool lost every machine that could serve the job), fault (contained
// job fault — panic, injected I/O error) or error.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	case errors.Is(err, ErrShapeQuarantined):
		return "quarantined"
	default:
		var je *kamsta.JobError
		if errors.As(err, &je) {
			return "fault"
		}
		return "error"
	}
}
