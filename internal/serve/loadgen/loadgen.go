// Package loadgen drives a serve.Server (in-process) or a remote mstserve
// (over HTTP) with multi-tenant job mixes: closed-loop worker pools that
// keep a fixed concurrency in flight, and open-loop Poisson arrivals at a
// target rate. It accounts every job exactly once — lost or duplicated
// results are a harness error, not a statistic — and renders throughput,
// latency percentiles and rejection rates as kamsta-bench/v1 rows
// (exhibit.go), the service-side counterpart of internal/bench.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kamsta"
	"kamsta/internal/faultinject"
	"kamsta/internal/serve"
)

// Target is where jobs go: an in-process server (Local) or a remote one
// (Remote).
type Target interface {
	Submit(ctx context.Context, req serve.Request) (Handle, error)
}

// Handle is one submitted job awaiting its result.
type Handle interface {
	Wait(ctx context.Context) (*kamsta.Report, error)
}

// Local targets an in-process serve.Server.
func Local(s *serve.Server) Target { return localTarget{s} }

type localTarget struct{ s *serve.Server }

func (lt localTarget) Submit(_ context.Context, req serve.Request) (Handle, error) {
	return lt.s.Submit(req)
}

// Remote targets a running mstserve over its HTTP API.
func Remote(c *serve.Client) Target { return remoteTarget{c} }

type remoteTarget struct{ c *serve.Client }

func (rt remoteTarget) Submit(ctx context.Context, req serve.Request) (Handle, error) {
	return rt.c.Submit(ctx, req)
}

// Template describes the jobs one tenant submits. Exactly one of Spec or
// EdgeCount must be set.
type Template struct {
	Algorithm kamsta.Algorithm
	// Spec submits generated-instance jobs (the per-job index is added to
	// its seed so instances vary).
	Spec *kamsta.GraphSpec
	// EdgeCount submits random edge-list jobs of this size over Vertices
	// labels (default 2+EdgeCount/3) — the batchable small-job shape.
	EdgeCount int
	Vertices  int
	// Deadline, PEs and NoBatch pass through to the request.
	Deadline time.Duration
	PEs      int
	NoBatch  bool
	// Verify cross-checks every result against sequential Kruskal
	// (edge-list jobs only) — the load test doubles as a correctness
	// sweep.
	Verify bool
	// Chaos seeds per-job service-level faults (see ChaosSpec). Fault
	// plans ride in Request.Options, so chaos loads target in-process
	// servers only (Local); a Remote target rejects them client-side.
	Chaos *ChaosSpec
}

// ChaosSpec injects seeded chaos into a tenant's offered load: each job
// independently draws one behavior, deterministic in (plan seed, tenant,
// job index) like everything else loadgen generates. Fractions are
// cumulative probabilities and should sum to ≤ 1.
type ChaosSpec struct {
	// FaultFraction of jobs panic on one PE mid-run (the Machine contains
	// the fault; with server-side retries enabled they usually still
	// succeed).
	FaultFraction float64
	// StallFraction of jobs stall one PE past a tight per-job stall
	// timeout, so the watchdog kills them.
	StallFraction float64
	// StormFraction of jobs arrive with a hopeless deadline — they must be
	// shed at admission or fail fast with outcome "deadline".
	StormFraction float64
	// PEs is the world width faults are drawn over (default 2).
	PEs int
}

// TenantLoad is one tenant's traffic. Workers > 0 selects the closed loop
// (that many concurrent submitters, each waiting for its result before the
// next job; rejections back off and retry). RateHz > 0 selects the open
// loop (Poisson arrivals at that rate; rejections drop the job, as lost
// offered load). Exactly one of the two must be set.
type TenantLoad struct {
	Name     string
	Workers  int
	RateHz   float64
	Jobs     int
	Template Template
}

// Plan is a full load-generation run.
type Plan struct {
	Tenants []TenantLoad
	// Seed drives instance generation and Poisson arrivals.
	Seed uint64
	// Duration caps the run (0 = until every tenant submitted its Jobs).
	Duration time.Duration
}

// TenantResult is one tenant's accounting after a run.
type TenantResult struct {
	Name string
	// Attempted counts generated jobs; Submitted the admitted ones;
	// Rejected the admission rejections (closed-loop retries count every
	// rejection event, so Rejected may exceed Attempted there); Shed the
	// subset of rejections where the server shed load deliberately
	// (deadline-aware shedding or brownout) rather than overflowing a
	// bound.
	Attempted int
	Submitted int
	Rejected  int
	Shed      int
	// Outcomes tallies results by class: ok, deadline, cancelled, fault,
	// error. Their sum must equal Submitted (exactly-once delivery).
	Outcomes map[string]int
	// Latencies are submit-to-result seconds of all resolved jobs.
	Latencies []float64
	// RejectLatencies are submit-to-rejection seconds — how long the
	// server took to say no. A resilient server rejects in microseconds;
	// the overload experiment pins their p99 far under the median job
	// time (rejecting slowly is just a worse way of being overloaded).
	RejectLatencies []float64
	// BadResults counts Verify mismatches (0 unless Template.Verify).
	BadResults int
}

// Completed is the number of jobs that resolved with any outcome.
func (tr *TenantResult) Completed() int {
	n := 0
	for _, c := range tr.Outcomes {
		n += c
	}
	return n
}

// Percentile returns the p-th latency percentile in seconds (p in [0,100]).
func (tr *TenantResult) Percentile(p float64) float64 {
	return percentile(tr.Latencies, p)
}

// RejectPercentile returns the p-th rejection-latency percentile.
func (tr *TenantResult) RejectPercentile(p float64) float64 {
	return percentile(tr.RejectLatencies, p)
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Result is the outcome of Run.
type Result struct {
	Elapsed time.Duration
	Tenants []*TenantResult
	// Server is an optional post-run server snapshot the caller may attach
	// (mstload does) so the exhibit can record server-side robustness
	// counters — retries, quarantined machines — alongside client-side
	// accounting.
	Server *serve.Stats
}

// Verify checks the exactly-once invariant: every admitted job produced
// exactly one result, and no verified result was wrong.
func (r *Result) Verify() error {
	for _, tr := range r.Tenants {
		if got := tr.Completed(); got != tr.Submitted {
			return fmt.Errorf("loadgen: tenant %s: %d results for %d admitted jobs (lost or duplicated)",
				tr.Name, got, tr.Submitted)
		}
		if tr.BadResults > 0 {
			return fmt.Errorf("loadgen: tenant %s: %d results disagree with sequential Kruskal",
				tr.Name, tr.BadResults)
		}
	}
	return nil
}

// tenantState is the mutable accounting behind one TenantResult.
type tenantState struct {
	mu  sync.Mutex
	res *TenantResult
	// refs caches per-job-index Kruskal references when Verify is on.
	refs sync.Map // int64 → *kamsta.Report
}

// Run executes the plan against target and returns the accounting. It
// returns when every tenant finished (or the plan Duration / ctx expired —
// in-flight jobs are still awaited so accounting stays exact).
func Run(ctx context.Context, target Target, plan Plan) (*Result, error) {
	if len(plan.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: empty plan")
	}
	for _, tl := range plan.Tenants {
		if (tl.Workers > 0) == (tl.RateHz > 0) {
			return nil, fmt.Errorf("loadgen: tenant %s: exactly one of Workers or RateHz must be set", tl.Name)
		}
		if (tl.Template.Spec != nil) == (tl.Template.EdgeCount > 0) {
			return nil, fmt.Errorf("loadgen: tenant %s: exactly one of Spec or EdgeCount must be set", tl.Name)
		}
	}
	runCtx := ctx
	if plan.Duration > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, plan.Duration)
		defer cancel()
	}

	start := time.Now()
	res := &Result{}
	var wg sync.WaitGroup
	for ti, tl := range plan.Tenants {
		st := &tenantState{res: &TenantResult{Name: tl.Name, Outcomes: map[string]int{}}}
		res.Tenants = append(res.Tenants, st.res)
		wg.Add(1)
		go func(ti int, tl TenantLoad, st *tenantState) {
			defer wg.Done()
			if tl.Workers > 0 {
				runClosedLoop(runCtx, target, plan, ti, tl, st)
			} else {
				runOpenLoop(runCtx, target, plan, ti, tl, st)
			}
		}(ti, tl, st)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// runClosedLoop keeps tl.Workers jobs in flight until tl.Jobs have been
// submitted and resolved. Admission rejections back off briefly and retry
// the same job, so closed-loop tenants never lose work to back-pressure.
func runClosedLoop(ctx context.Context, target Target, plan Plan, ti int, tl TenantLoad, st *tenantState) {
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	takeJob := func() (int64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(tl.Jobs) {
			return 0, false
		}
		next++
		return next - 1, true
	}
	for w := 0; w < tl.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := takeJob()
				if !ok || ctx.Err() != nil {
					return
				}
				st.attempt()
				req := buildRequest(plan, ti, tl, idx)
				for {
					rejectStart := time.Now()
					h, err := target.Submit(ctx, req)
					if err != nil && ctx.Err() == nil {
						st.rejectLatency(time.Since(rejectStart))
					}
					if err == nil {
						st.admitted()
						submitTime := time.Now()
						rep, werr := h.Wait(ctx)
						st.resolve(plan, ti, tl, idx, rep, werr, time.Since(submitTime))
						break
					}
					if !isBackpressure(err) || ctx.Err() != nil {
						// Shed rejections (deadline unattainable, brownout)
						// are the server saying "not this job, not now" —
						// a closed-loop client gives the job up rather
						// than hammer a degraded server.
						st.rejectFinal(err)
						break
					}
					st.reject()
					select {
					case <-time.After(backoffHint(err)):
					case <-ctx.Done():
						st.rejectFinal(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOpenLoop submits tl.Jobs at Poisson arrivals of tl.RateHz,
// independent of service time. Rejections drop the job — offered load the
// server shed — and in-flight waits are gathered before returning.
func runOpenLoop(ctx context.Context, target Target, plan Plan, ti int, tl TenantLoad, st *tenantState) {
	rng := rand.New(rand.NewSource(int64(plan.Seed) ^ int64(ti)<<32 ^ 0x9e3779b9))
	var wg sync.WaitGroup
	for idx := int64(0); idx < int64(tl.Jobs); idx++ {
		gap := time.Duration(rng.ExpFloat64() / tl.RateHz * float64(time.Second))
		select {
		case <-time.After(gap):
		case <-ctx.Done():
			wg.Wait()
			return
		}
		st.attempt()
		req := buildRequest(plan, ti, tl, idx)
		rejectStart := time.Now()
		h, err := target.Submit(ctx, req)
		if err != nil {
			st.rejectLatency(time.Since(rejectStart))
			st.reject()
			st.rejectFinal(err)
			continue
		}
		st.admitted()
		submitTime := time.Now()
		wg.Add(1)
		go func(idx int64, h Handle) {
			defer wg.Done()
			// Wait on the background context: the arrival window closing
			// must not orphan admitted jobs, or accounting would leak.
			rep, werr := h.Wait(context.Background())
			st.resolve(plan, ti, tl, idx, rep, werr, time.Since(submitTime))
		}(idx, h)
	}
	wg.Wait()
}

// buildRequest renders job idx of a tenant: deterministic in (plan seed,
// tenant index, job index) so reruns offer identical load.
func buildRequest(plan Plan, ti int, tl TenantLoad, idx int64) serve.Request {
	req := serve.Request{
		Tenant:    tl.Name,
		Algorithm: tl.Template.Algorithm,
		Seed:      plan.Seed,
		Deadline:  tl.Template.Deadline,
		PEs:       tl.Template.PEs,
		NoBatch:   tl.Template.NoBatch,
	}
	if tl.Template.Spec != nil {
		spec := *tl.Template.Spec
		spec.Seed += uint64(idx)
		req.Spec = &spec
	} else {
		req.Edges = randomEdges(jobSeed(plan.Seed, ti, idx), tl.Template.EdgeCount, tl.Template.Vertices)
	}
	if tl.Template.Chaos != nil {
		applyChaos(&req, tl.Template.Chaos, jobSeed(plan.Seed, ti, idx))
	}
	return req
}

// applyChaos draws job-level chaos deterministically from the job's seed:
// an injected panic, a stall past a tight watchdog, or a hopeless deadline.
func applyChaos(req *serve.Request, ch *ChaosSpec, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	pes := ch.PEs
	if pes < 1 {
		pes = 2
	}
	r := rng.Float64()
	switch {
	case r < ch.FaultFraction:
		plan := faultinject.NewPlan(&faultinject.Rule{
			Site: faultinject.SiteCollective, Rank: rng.Intn(pes),
			Occurrence: rng.Intn(4), Action: faultinject.ActPanic,
		})
		req.Options = append(req.Options, kamsta.WithFaultInjection(plan))
	case r < ch.FaultFraction+ch.StallFraction:
		plan := faultinject.NewPlan(&faultinject.Rule{
			Site: faultinject.SiteCollective, Rank: rng.Intn(pes),
			Occurrence: rng.Intn(4), Action: faultinject.ActDelay,
			Delay: 50 * time.Millisecond,
		})
		req.Options = append(req.Options,
			kamsta.WithFaultInjection(plan), kamsta.WithStallTimeout(5*time.Millisecond))
	case r < ch.FaultFraction+ch.StallFraction+ch.StormFraction:
		req.Deadline = time.Microsecond
	}
}

func jobSeed(seed uint64, ti int, idx int64) int64 {
	return int64(seed)*1_000_003 + int64(ti)*7_777_777 + idx
}

// randomEdges builds a connected random instance: a spanning path plus
// random extra edges, labels in [1, n].
func randomEdges(seed int64, m, n int) []kamsta.InputEdge {
	if n <= 1 {
		n = 2 + m/3
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]kamsta.InputEdge, 0, m+n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		edges = append(edges, kamsta.InputEdge{
			U: uint64(perm[i-1] + 1), V: uint64(perm[i] + 1), W: uint32(rng.Intn(1000) + 1),
		})
	}
	for len(edges) < m {
		u, v := rng.Intn(n)+1, rng.Intn(n)+1
		if u == v {
			continue
		}
		edges = append(edges, kamsta.InputEdge{U: uint64(u), V: uint64(v), W: uint32(rng.Intn(1000) + 1)})
	}
	return edges
}

// Accounting. attempt/admitted/reject/rejectedFinal/resolve each touch the
// tenant's result under its lock; resolve classifies the outcome and, with
// Verify on, cross-checks the result against a cached Kruskal reference.
func (st *tenantState) attempt() {
	st.mu.Lock()
	st.res.Attempted++
	st.mu.Unlock()
}

func (st *tenantState) admitted() {
	st.mu.Lock()
	st.res.Submitted++
	st.mu.Unlock()
}

func (st *tenantState) reject() {
	st.mu.Lock()
	st.res.Rejected++
	st.mu.Unlock()
}

func (st *tenantState) rejectLatency(d time.Duration) {
	st.mu.Lock()
	st.res.RejectLatencies = append(st.res.RejectLatencies, d.Seconds())
	st.mu.Unlock()
}

// rejectFinal accounts a job given up at admission (Attempted vs Submitted
// carries the count; Outcomes only holds admitted jobs) and tallies the
// deliberate load-shedding rejections.
func (st *tenantState) rejectFinal(err error) {
	if errors.Is(err, serve.ErrDeadlineUnattainable) || errors.Is(err, serve.ErrBrownout) {
		st.mu.Lock()
		st.res.Shed++
		st.mu.Unlock()
	}
}

func (st *tenantState) resolve(plan Plan, ti int, tl TenantLoad, idx int64, rep *kamsta.Report, err error, lat time.Duration) {
	bad := false
	if err == nil && tl.Template.Verify && tl.Template.EdgeCount > 0 {
		want := st.referenceFor(plan, ti, tl, idx)
		if want != nil && (rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges) {
			bad = true
		}
	}
	st.mu.Lock()
	st.res.Outcomes[classify(err)]++
	st.res.Latencies = append(st.res.Latencies, lat.Seconds())
	if bad {
		st.res.BadResults++
	}
	st.mu.Unlock()
}

// referenceFor computes (and caches) the sequential Kruskal answer for job
// idx's instance.
func (st *tenantState) referenceFor(plan Plan, ti int, tl TenantLoad, idx int64) *kamsta.Report {
	if cached, ok := st.refs.Load(idx); ok {
		return cached.(*kamsta.Report)
	}
	edges := randomEdges(jobSeed(plan.Seed, ti, idx), tl.Template.EdgeCount, tl.Template.Vertices)
	want, err := kamsta.ComputeMSF(edges, kamsta.Config{Algorithm: kamsta.AlgKruskal})
	if err != nil {
		return nil
	}
	st.refs.Store(idx, want)
	return want
}

// isBackpressure reports whether a Submit error is retryable saturation
// rather than a permanent rejection. Deliberate shedding (deadline
// unattainable, brownout) is NOT retried: the server asked this class of
// job to go away, and a well-behaved client listens.
func isBackpressure(err error) bool {
	return errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrTenantQueueFull)
}

// backoffHint is the closed-loop retry pause: the server's Retry-After
// hint when present (capped so a test-scale loop stays fast), else 1ms.
func backoffHint(err error) time.Duration {
	var ra *serve.RetryAfterError
	if errors.As(err, &ra) && ra.RetryAfter > 0 {
		return min(ra.RetryAfter, 100*time.Millisecond)
	}
	return time.Millisecond
}

// classify buckets a job error the way the server's completion counter
// does.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		var je *kamsta.JobError
		if errors.As(err, &je) {
			return "fault"
		}
		return "error"
	}
}
