// Package loadgen drives a serve.Server (in-process) or a remote mstserve
// (over HTTP) with multi-tenant job mixes: closed-loop worker pools that
// keep a fixed concurrency in flight, and open-loop Poisson arrivals at a
// target rate. It accounts every job exactly once — lost or duplicated
// results are a harness error, not a statistic — and renders throughput,
// latency percentiles and rejection rates as kamsta-bench/v1 rows
// (exhibit.go), the service-side counterpart of internal/bench.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kamsta"
	"kamsta/internal/serve"
)

// Target is where jobs go: an in-process server (Local) or a remote one
// (Remote).
type Target interface {
	Submit(ctx context.Context, req serve.Request) (Handle, error)
}

// Handle is one submitted job awaiting its result.
type Handle interface {
	Wait(ctx context.Context) (*kamsta.Report, error)
}

// Local targets an in-process serve.Server.
func Local(s *serve.Server) Target { return localTarget{s} }

type localTarget struct{ s *serve.Server }

func (lt localTarget) Submit(_ context.Context, req serve.Request) (Handle, error) {
	return lt.s.Submit(req)
}

// Remote targets a running mstserve over its HTTP API.
func Remote(c *serve.Client) Target { return remoteTarget{c} }

type remoteTarget struct{ c *serve.Client }

func (rt remoteTarget) Submit(ctx context.Context, req serve.Request) (Handle, error) {
	return rt.c.Submit(ctx, req)
}

// Template describes the jobs one tenant submits. Exactly one of Spec or
// EdgeCount must be set.
type Template struct {
	Algorithm kamsta.Algorithm
	// Spec submits generated-instance jobs (the per-job index is added to
	// its seed so instances vary).
	Spec *kamsta.GraphSpec
	// EdgeCount submits random edge-list jobs of this size over Vertices
	// labels (default 2+EdgeCount/3) — the batchable small-job shape.
	EdgeCount int
	Vertices  int
	// Deadline, PEs and NoBatch pass through to the request.
	Deadline time.Duration
	PEs      int
	NoBatch  bool
	// Verify cross-checks every result against sequential Kruskal
	// (edge-list jobs only) — the load test doubles as a correctness
	// sweep.
	Verify bool
}

// TenantLoad is one tenant's traffic. Workers > 0 selects the closed loop
// (that many concurrent submitters, each waiting for its result before the
// next job; rejections back off and retry). RateHz > 0 selects the open
// loop (Poisson arrivals at that rate; rejections drop the job, as lost
// offered load). Exactly one of the two must be set.
type TenantLoad struct {
	Name     string
	Workers  int
	RateHz   float64
	Jobs     int
	Template Template
}

// Plan is a full load-generation run.
type Plan struct {
	Tenants []TenantLoad
	// Seed drives instance generation and Poisson arrivals.
	Seed uint64
	// Duration caps the run (0 = until every tenant submitted its Jobs).
	Duration time.Duration
}

// TenantResult is one tenant's accounting after a run.
type TenantResult struct {
	Name string
	// Attempted counts generated jobs; Submitted the admitted ones;
	// Rejected the admission rejections (closed-loop retries count every
	// rejection event, so Rejected may exceed Attempted there).
	Attempted int
	Submitted int
	Rejected  int
	// Outcomes tallies results by class: ok, deadline, cancelled, fault,
	// error. Their sum must equal Submitted (exactly-once delivery).
	Outcomes map[string]int
	// Latencies are submit-to-result seconds of all resolved jobs.
	Latencies []float64
	// BadResults counts Verify mismatches (0 unless Template.Verify).
	BadResults int
}

// Completed is the number of jobs that resolved with any outcome.
func (tr *TenantResult) Completed() int {
	n := 0
	for _, c := range tr.Outcomes {
		n += c
	}
	return n
}

// Percentile returns the p-th latency percentile in seconds (p in [0,100]).
func (tr *TenantResult) Percentile(p float64) float64 {
	if len(tr.Latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), tr.Latencies...)
	sort.Float64s(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Result is the outcome of Run.
type Result struct {
	Elapsed time.Duration
	Tenants []*TenantResult
}

// Verify checks the exactly-once invariant: every admitted job produced
// exactly one result, and no verified result was wrong.
func (r *Result) Verify() error {
	for _, tr := range r.Tenants {
		if got := tr.Completed(); got != tr.Submitted {
			return fmt.Errorf("loadgen: tenant %s: %d results for %d admitted jobs (lost or duplicated)",
				tr.Name, got, tr.Submitted)
		}
		if tr.BadResults > 0 {
			return fmt.Errorf("loadgen: tenant %s: %d results disagree with sequential Kruskal",
				tr.Name, tr.BadResults)
		}
	}
	return nil
}

// tenantState is the mutable accounting behind one TenantResult.
type tenantState struct {
	mu  sync.Mutex
	res *TenantResult
	// refs caches per-job-index Kruskal references when Verify is on.
	refs sync.Map // int64 → *kamsta.Report
}

// Run executes the plan against target and returns the accounting. It
// returns when every tenant finished (or the plan Duration / ctx expired —
// in-flight jobs are still awaited so accounting stays exact).
func Run(ctx context.Context, target Target, plan Plan) (*Result, error) {
	if len(plan.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: empty plan")
	}
	for _, tl := range plan.Tenants {
		if (tl.Workers > 0) == (tl.RateHz > 0) {
			return nil, fmt.Errorf("loadgen: tenant %s: exactly one of Workers or RateHz must be set", tl.Name)
		}
		if (tl.Template.Spec != nil) == (tl.Template.EdgeCount > 0) {
			return nil, fmt.Errorf("loadgen: tenant %s: exactly one of Spec or EdgeCount must be set", tl.Name)
		}
	}
	runCtx := ctx
	if plan.Duration > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, plan.Duration)
		defer cancel()
	}

	start := time.Now()
	res := &Result{}
	var wg sync.WaitGroup
	for ti, tl := range plan.Tenants {
		st := &tenantState{res: &TenantResult{Name: tl.Name, Outcomes: map[string]int{}}}
		res.Tenants = append(res.Tenants, st.res)
		wg.Add(1)
		go func(ti int, tl TenantLoad, st *tenantState) {
			defer wg.Done()
			if tl.Workers > 0 {
				runClosedLoop(runCtx, target, plan, ti, tl, st)
			} else {
				runOpenLoop(runCtx, target, plan, ti, tl, st)
			}
		}(ti, tl, st)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// runClosedLoop keeps tl.Workers jobs in flight until tl.Jobs have been
// submitted and resolved. Admission rejections back off briefly and retry
// the same job, so closed-loop tenants never lose work to back-pressure.
func runClosedLoop(ctx context.Context, target Target, plan Plan, ti int, tl TenantLoad, st *tenantState) {
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	takeJob := func() (int64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(tl.Jobs) {
			return 0, false
		}
		next++
		return next - 1, true
	}
	for w := 0; w < tl.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := takeJob()
				if !ok || ctx.Err() != nil {
					return
				}
				st.attempt()
				req := buildRequest(plan, ti, tl, idx)
				for {
					h, err := target.Submit(ctx, req)
					if err == nil {
						st.admitted()
						submitTime := time.Now()
						rep, werr := h.Wait(ctx)
						st.resolve(plan, ti, tl, idx, rep, werr, time.Since(submitTime))
						break
					}
					if !isBackpressure(err) || ctx.Err() != nil {
						st.rejectedFinal()
						break
					}
					st.reject()
					select {
					case <-time.After(time.Millisecond):
					case <-ctx.Done():
						st.rejectedFinal()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOpenLoop submits tl.Jobs at Poisson arrivals of tl.RateHz,
// independent of service time. Rejections drop the job — offered load the
// server shed — and in-flight waits are gathered before returning.
func runOpenLoop(ctx context.Context, target Target, plan Plan, ti int, tl TenantLoad, st *tenantState) {
	rng := rand.New(rand.NewSource(int64(plan.Seed) ^ int64(ti)<<32 ^ 0x9e3779b9))
	var wg sync.WaitGroup
	for idx := int64(0); idx < int64(tl.Jobs); idx++ {
		gap := time.Duration(rng.ExpFloat64() / tl.RateHz * float64(time.Second))
		select {
		case <-time.After(gap):
		case <-ctx.Done():
			wg.Wait()
			return
		}
		st.attempt()
		req := buildRequest(plan, ti, tl, idx)
		h, err := target.Submit(ctx, req)
		if err != nil {
			st.reject()
			st.rejectedFinal()
			continue
		}
		st.admitted()
		submitTime := time.Now()
		wg.Add(1)
		go func(idx int64, h Handle) {
			defer wg.Done()
			// Wait on the background context: the arrival window closing
			// must not orphan admitted jobs, or accounting would leak.
			rep, werr := h.Wait(context.Background())
			st.resolve(plan, ti, tl, idx, rep, werr, time.Since(submitTime))
		}(idx, h)
	}
	wg.Wait()
}

// buildRequest renders job idx of a tenant: deterministic in (plan seed,
// tenant index, job index) so reruns offer identical load.
func buildRequest(plan Plan, ti int, tl TenantLoad, idx int64) serve.Request {
	req := serve.Request{
		Tenant:    tl.Name,
		Algorithm: tl.Template.Algorithm,
		Seed:      plan.Seed,
		Deadline:  tl.Template.Deadline,
		PEs:       tl.Template.PEs,
		NoBatch:   tl.Template.NoBatch,
	}
	if tl.Template.Spec != nil {
		spec := *tl.Template.Spec
		spec.Seed += uint64(idx)
		req.Spec = &spec
		return req
	}
	req.Edges = randomEdges(jobSeed(plan.Seed, ti, idx), tl.Template.EdgeCount, tl.Template.Vertices)
	return req
}

func jobSeed(seed uint64, ti int, idx int64) int64 {
	return int64(seed)*1_000_003 + int64(ti)*7_777_777 + idx
}

// randomEdges builds a connected random instance: a spanning path plus
// random extra edges, labels in [1, n].
func randomEdges(seed int64, m, n int) []kamsta.InputEdge {
	if n <= 1 {
		n = 2 + m/3
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]kamsta.InputEdge, 0, m+n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		edges = append(edges, kamsta.InputEdge{
			U: uint64(perm[i-1] + 1), V: uint64(perm[i] + 1), W: uint32(rng.Intn(1000) + 1),
		})
	}
	for len(edges) < m {
		u, v := rng.Intn(n)+1, rng.Intn(n)+1
		if u == v {
			continue
		}
		edges = append(edges, kamsta.InputEdge{U: uint64(u), V: uint64(v), W: uint32(rng.Intn(1000) + 1)})
	}
	return edges
}

// Accounting. attempt/admitted/reject/rejectedFinal/resolve each touch the
// tenant's result under its lock; resolve classifies the outcome and, with
// Verify on, cross-checks the result against a cached Kruskal reference.
func (st *tenantState) attempt() {
	st.mu.Lock()
	st.res.Attempted++
	st.mu.Unlock()
}

func (st *tenantState) admitted() {
	st.mu.Lock()
	st.res.Submitted++
	st.mu.Unlock()
}

func (st *tenantState) reject() {
	st.mu.Lock()
	st.res.Rejected++
	st.mu.Unlock()
}

// rejectedFinal is a no-op hook kept for symmetry: a job dropped at
// admission is accounted by Attempted vs Submitted, not in Outcomes.
func (st *tenantState) rejectedFinal() {}

func (st *tenantState) resolve(plan Plan, ti int, tl TenantLoad, idx int64, rep *kamsta.Report, err error, lat time.Duration) {
	bad := false
	if err == nil && tl.Template.Verify && tl.Template.EdgeCount > 0 {
		want := st.referenceFor(plan, ti, tl, idx)
		if want != nil && (rep.TotalWeight != want.TotalWeight || rep.NumEdges != want.NumEdges) {
			bad = true
		}
	}
	st.mu.Lock()
	st.res.Outcomes[classify(err)]++
	st.res.Latencies = append(st.res.Latencies, lat.Seconds())
	if bad {
		st.res.BadResults++
	}
	st.mu.Unlock()
}

// referenceFor computes (and caches) the sequential Kruskal answer for job
// idx's instance.
func (st *tenantState) referenceFor(plan Plan, ti int, tl TenantLoad, idx int64) *kamsta.Report {
	if cached, ok := st.refs.Load(idx); ok {
		return cached.(*kamsta.Report)
	}
	edges := randomEdges(jobSeed(plan.Seed, ti, idx), tl.Template.EdgeCount, tl.Template.Vertices)
	want, err := kamsta.ComputeMSF(edges, kamsta.Config{Algorithm: kamsta.AlgKruskal})
	if err != nil {
		return nil
	}
	st.refs.Store(idx, want)
	return want
}

// isBackpressure reports whether a Submit error is retryable saturation
// rather than a permanent rejection.
func isBackpressure(err error) bool {
	return errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrTenantQueueFull)
}

// classify buckets a job error the way the server's completion counter
// does.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		var je *kamsta.JobError
		if errors.As(err, &je) {
			return "fault"
		}
		return "error"
	}
}
