package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"kamsta"
	"kamsta/internal/bench"
	"kamsta/internal/obs"
	"kamsta/internal/serve"
)

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestExactlyOnceUnderLoad is the PR's acceptance run: ≥1000 jobs across 3
// tenants against a small in-process pool with batching on, every result
// cross-checked against sequential Kruskal, zero lost or duplicated
// results. CI runs it under -race.
func TestExactlyOnceUnderLoad(t *testing.T) {
	const perTenant = 350 // 3 × 350 = 1050 jobs
	reg := obs.NewRegistry()
	s := newServer(t, serve.Config{
		Pool: []serve.PoolShape{{PEs: 2, Threads: 1, Count: 2}},
		Tenants: []serve.TenantConfig{
			{Name: "alpha", Weight: 3}, {Name: "beta", Weight: 1}, {Name: "gamma", Weight: 1},
		},
		QueueBound:       64, // small bound so back-pressure and retries actually happen
		TenantQueueBound: 32,
		Batch:            serve.BatchConfig{MaxJobs: 8, MaxEdges: 1 << 15},
		Metrics:          reg,
	})
	tmpl := Template{EdgeCount: 48, Vertices: 24, Verify: true}
	plan := Plan{
		Seed: 7,
		Tenants: []TenantLoad{
			{Name: "alpha", Workers: 8, Jobs: perTenant, Template: tmpl},
			{Name: "beta", Workers: 4, Jobs: perTenant, Template: tmpl},
			{Name: "gamma", Workers: 4, Jobs: perTenant, Template: tmpl},
		},
	}
	res, err := Run(context.Background(), Local(s), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Attempted != perTenant || tr.Submitted != perTenant {
			t.Fatalf("tenant %s: attempted %d submitted %d, want %d each (closed loop retries to completion)",
				tr.Name, tr.Attempted, tr.Submitted, perTenant)
		}
		if tr.Outcomes["ok"] != perTenant {
			t.Fatalf("tenant %s outcomes = %v, want %d ok", tr.Name, tr.Outcomes, perTenant)
		}
		if len(tr.Latencies) != perTenant {
			t.Fatalf("tenant %s recorded %d latencies, want %d", tr.Name, len(tr.Latencies), perTenant)
		}
	}
	// The exhibit renders without error and carries the loadgen fields.
	var buf bytes.Buffer
	scale := bench.Scale{Ps: []int{2}, Seed: plan.Seed}
	if err := WriteExhibit(&buf, res, plan, scale, "2026-01-01"); err != nil {
		t.Fatalf("WriteExhibit: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Rows   []struct {
			Tenant        string  `json:"tenant"`
			Jobs          int     `json:"jobs"`
			JobsPerSecond float64 `json:"jobs_per_second"`
			P99Seconds    float64 `json:"p99_seconds"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exhibit is not valid JSON: %v", err)
	}
	if doc.Schema != "kamsta-bench/v1" || len(doc.Rows) != 4 {
		t.Fatalf("exhibit schema %q with %d rows, want kamsta-bench/v1 with 4 rows", doc.Schema, len(doc.Rows))
	}
	total := doc.Rows[3]
	if total.Tenant != "all" || total.Jobs != 3*perTenant || total.JobsPerSecond <= 0 {
		t.Fatalf("summary row = %+v", total)
	}
}

// TestOpenLoopPoisson drives Poisson arrivals faster than a single small
// machine can serve, with a tight queue: some offered load must be shed as
// rejections, everything admitted must still resolve exactly once.
func TestOpenLoopPoisson(t *testing.T) {
	s := newServer(t, serve.Config{
		Pool:       []serve.PoolShape{{PEs: 2}},
		QueueBound: 4,
	})
	plan := Plan{
		Seed: 11,
		Tenants: []TenantLoad{
			// ~5k arrivals/s of ~multi-ms jobs against a 4-slot queue:
			// far past saturation, so most offered load must be shed.
			{Name: "burst", RateHz: 5000, Jobs: 200, Template: Template{EdgeCount: 1500, Vertices: 500}},
		},
	}
	res, err := Run(context.Background(), Local(s), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	if tr.Attempted != 200 {
		t.Fatalf("attempted %d, want 200", tr.Attempted)
	}
	if tr.Submitted+tr.Rejected != 200 {
		t.Fatalf("submitted %d + rejected %d ≠ 200 (open loop drops on rejection)",
			tr.Submitted, tr.Rejected)
	}
	if tr.Rejected == 0 {
		t.Fatal("5kHz of multi-ms jobs against a 4-slot queue shed nothing; back-pressure untested")
	}
	if tr.Submitted == 0 {
		t.Fatal("everything was rejected; the run measured nothing")
	}
}

// TestRemoteTarget runs a small closed-loop plan over the HTTP API.
func TestRemoteTarget(t *testing.T) {
	s := newServer(t, serve.Config{
		Pool:  []serve.PoolShape{{PEs: 2}},
		Batch: serve.BatchConfig{MaxJobs: 4, MaxEdges: 1 << 14},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &serve.Client{BaseURL: ts.URL, PollWait: 250 * time.Millisecond}
	plan := Plan{
		Seed: 3,
		Tenants: []TenantLoad{
			{Name: "web", Workers: 4, Jobs: 40, Template: Template{EdgeCount: 30, Vertices: 15, Verify: true}},
			{Name: "spec", Workers: 2, Jobs: 6, Template: Template{
				Spec: &kamsta.GraphSpec{Family: kamsta.GNM, N: 300, M: 1200, Seed: 5},
			}},
		},
	}
	res, err := Run(context.Background(), Remote(c), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Outcomes["ok"] != tr.Submitted {
			t.Fatalf("tenant %s outcomes = %v, want all ok of %d", tr.Name, tr.Outcomes, tr.Submitted)
		}
	}
}
