package loadgen

import (
	"fmt"
	"io"

	"kamsta/internal/bench"
)

// WriteExhibit renders a run as a kamsta-bench/v1 document (the same
// schema mstbench -json emits), one row per tenant plus an "all" summary
// row: jobs completed, sustained jobs/second, p50/p95/p99 of
// submit-to-result latency, and the rejection rate. scale carries the
// pool shape (Ps) for the envelope; date is the caller's ISO date.
func WriteExhibit(w io.Writer, res *Result, plan Plan, scale bench.Scale, date string) error {
	rec := &bench.Recorder{}
	rec.SetBenchmark("loadgen")
	elapsed := res.Elapsed.Seconds()
	var all TenantResult
	all.Name = "all"
	all.Outcomes = map[string]int{}
	for i, tr := range res.Tenants {
		rec.Add(tenantRow(tr, planTenant(plan, i), elapsed))
		all.Attempted += tr.Attempted
		all.Submitted += tr.Submitted
		all.Rejected += tr.Rejected
		all.Shed += tr.Shed
		for k, v := range tr.Outcomes {
			all.Outcomes[k] += v
		}
		all.Latencies = append(all.Latencies, tr.Latencies...)
		all.RejectLatencies = append(all.RejectLatencies, tr.RejectLatencies...)
		all.BadResults += tr.BadResults
	}
	allRow := tenantRow(&all, TenantLoad{Name: "all"}, elapsed)
	if res.Server != nil {
		// Server-side robustness counters land on the summary row: retries
		// are per-tenant on the server but the exhibit's tenant rows are
		// client-side views, and quarantine is a pool-wide fact.
		for _, ts := range res.Server.Tenants {
			allRow.Retried += ts.Retried
		}
		allRow.Quarantined = res.Server.Quarantined
	}
	rec.Add(allRow)
	return rec.WriteJSON(w, scale, date)
}

func planTenant(plan Plan, i int) TenantLoad {
	if i < len(plan.Tenants) {
		return plan.Tenants[i]
	}
	return TenantLoad{}
}

func tenantRow(tr *TenantResult, tl TenantLoad, elapsed float64) bench.Row {
	row := bench.Row{
		Instance:    loadLabel(tl),
		Algorithm:   string(tl.Template.Algorithm),
		PEs:         tl.Template.PEs,
		Tenant:      tr.Name,
		Jobs:        tr.Completed(),
		WallSeconds: elapsed,
		P50Seconds:  tr.Percentile(50),
		P95Seconds:  tr.Percentile(95),
		P99Seconds:  tr.Percentile(99),
		Shed:        tr.Shed,
	}
	row.RejectP99Seconds = tr.RejectPercentile(99)
	if len(tr.Outcomes) > 0 {
		row.Outcomes = make(map[string]int, len(tr.Outcomes))
		for k, v := range tr.Outcomes {
			row.Outcomes[k] = v
		}
	}
	if row.Algorithm == "" {
		row.Algorithm = "boruvka"
	}
	if elapsed > 0 {
		row.JobsPerSecond = float64(tr.Completed()) / elapsed
	}
	if tr.Attempted > 0 {
		row.RejectedRate = float64(tr.Attempted-tr.Submitted) / float64(tr.Attempted)
	}
	return row
}

// loadLabel names the tenant's offered load for the Instance column, e.g.
// "closed(w=4,edges=64)" or "open(5.0Hz,gnm)".
func loadLabel(tl TenantLoad) string {
	shape := "mixed"
	switch {
	case tl.Template.Spec != nil:
		shape = tl.Template.Spec.Family.Name()
	case tl.Template.EdgeCount > 0:
		shape = fmt.Sprintf("edges=%d", tl.Template.EdgeCount)
	}
	switch {
	case tl.Workers > 0:
		return fmt.Sprintf("closed(w=%d,%s)", tl.Workers, shape)
	case tl.RateHz > 0:
		return fmt.Sprintf("open(%.1fHz,%s)", tl.RateHz, shape)
	default:
		return shape
	}
}
