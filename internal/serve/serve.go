// Package serve turns the persistent kamsta.Machine into a multi-tenant
// MST-as-a-service job server: a pool of warm machines across configured
// shapes, a bounded queue with per-tenant admission control and
// weighted-fair (stride) scheduling, transparent batching of small edge-list
// jobs onto one world, per-job deadlines that cover queue wait, and full
// observability. cmd/mstserve exposes it over HTTP; internal/serve/loadgen
// drives it with open- and closed-loop tenant mixes.
//
// Lifecycle: New starts one worker goroutine per pool machine; Submit
// admits (or rejects) jobs; Job.Wait delivers each result exactly once;
// Drain stops admission and lets queued work finish (bounded by its ctx);
// Close aborts in-flight jobs at their next collective boundary. Faults are
// already contained by the Machine (panics surface as *kamsta.JobError and
// broken worlds rebuild transparently), so one tenant's poisoned job cannot
// take the service down.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kamsta"
	"kamsta/internal/obs"
)

// ErrBadRequest marks submissions rejected for being malformed (missing
// tenant, zero or multiple graph sources, invalid edge labels, unknown
// algorithm) rather than by back-pressure. errors.Is-able; the HTTP layer
// maps it to 400.
var ErrBadRequest = errors.New("serve: bad request")

// PoolShape describes one machine configuration in the pool.
type PoolShape struct {
	// PEs and Threads mirror kamsta.MachineConfig.
	PEs     int
	Threads int
	// Count is how many machines of this shape to keep warm (default 1).
	Count int
}

// TenantConfig declares one tenant and its fair-share weight (≥1; a tenant
// with weight 2 gets twice the machine slots of a tenant with weight 1
// under contention).
type TenantConfig struct {
	Name   string
	Weight int
}

// BatchConfig bounds the transparent batching of small edge-list jobs.
// Jobs are batchable when they supply Edges, are not marked NoBatch, use a
// union-decomposable algorithm (borůvka, filter-borůvka), carry no custom
// RunOptions, and fit the per-job limits; a batch shares one Compute on a
// disjoint vertex relabeling, and the forest is split back per member.
type BatchConfig struct {
	// MaxJobs is the largest batch (≤1 disables batching).
	MaxJobs int
	// MaxEdges caps the summed edge count of a batch (default 65536).
	MaxEdges int
}

// Config configures a Server. The zero value serves: one 4-PE machine, a
// 1024-job queue, auto-registered tenants with weight 1, no batching, no
// deadlines.
type Config struct {
	// Pool lists the machine shapes to keep warm (default one {PEs: 4,
	// Threads: 1, Count: 1}).
	Pool []PoolShape
	// Transport and Workers select every pooled machine's substrate backend
	// (kamsta.MachineConfig.Transport/Workers): "" or "shm" runs in-process,
	// "tcp" makes every machine lead a distributed world over the given
	// mstworker addresses (one worker process serves many machines; each
	// connection gets its own world). A distributed machine that loses a
	// worker is condemned, not rebuilt — pair with QuarantineAfter.
	Transport string
	Workers   []string
	// Tenants pre-registers tenants with weights. Unknown tenants are
	// auto-registered with DefaultWeight, or rejected when it is 0 and
	// Tenants is non-empty (a closed server).
	Tenants       []TenantConfig
	DefaultWeight int
	// QueueBound caps the total queued jobs (default 1024);
	// TenantQueueBound caps one tenant's share (default QueueBound).
	QueueBound       int
	TenantQueueBound int
	// DefaultDeadline applies to jobs that set none; MaxDeadline clamps
	// every job (0 = unlimited). Deadlines start at admission, so they
	// bound queue wait plus run time.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Batch enables transparent batching of small edge-list jobs.
	Batch BatchConfig
	// StallTimeout is passed to every job (kamsta.WithStallTimeout);
	// 0 leaves the Machine default.
	StallTimeout time.Duration
	// ResultTTL is how long finished jobs stay pollable (default 10m).
	ResultTTL time.Duration
	// AllowFiles permits HTTP jobs that read server-local graph files
	// (in-process submissions may always use File).
	AllowFiles bool

	// ShedMinSamples gates deadline-aware admission shedding: until the
	// service-time estimator has seen this many dispatches (default 16)
	// the server admits everything — a cold server must not guess.
	// Negative disables shedding. ShedQuantile is the service-time
	// quantile the queue-wait estimate uses (default 0.9: plan for a
	// slow-ish job ahead, not the average one).
	ShedMinSamples int
	ShedQuantile   float64
	// BrownoutFraction is the queue depth, as a fraction of QueueBound, at
	// which the server browns out: batching stops and batch-eligible small
	// jobs are shed at admission (default 0.75; ≥1 means brownout only on
	// quarantine).
	BrownoutFraction float64
	// QuarantineAfter removes a machine from service after that many
	// consecutive world faults (0 disables — the default, so fault-
	// injection tests keep their machines). Queued jobs no live machine
	// can serve fail with ErrShapeQuarantined.
	QuarantineAfter int
	// Retry bounds server-side transparent retries of fault-killed jobs
	// (see RetryConfig; zero value disables).
	Retry RetryConfig
	// MaxRequestBytes caps an HTTP job submission body (default 64 MiB).
	MaxRequestBytes int64

	// Metrics receives the serve_* series (nil disables); Trace receives
	// job spans.
	Metrics *obs.Registry
	Trace   *kamsta.Trace
}

// Request describes one job. Exactly one of Spec, Edges, File or Source
// must be set.
type Request struct {
	// Tenant is the submitting tenant (required).
	Tenant string
	// Algorithm selects the MST algorithm ("" = borůvka).
	Algorithm kamsta.Algorithm
	// Seed drives generation and sampling.
	Seed uint64
	// Deadline bounds queue wait plus run time (0 = Config default).
	Deadline time.Duration
	// PEs pins the job to machines of that shape (0 = any).
	PEs int
	// NoBatch opts this job out of transparent batching.
	NoBatch bool

	// Spec generates one of the paper's graph families in-world.
	Spec *kamsta.GraphSpec
	// Edges supplies the graph directly (labels in [1, 2^32)); only
	// edge-list jobs are batchable.
	Edges []kamsta.InputEdge
	// File ingests an on-disk instance; FileFormat as in
	// kamsta.FromFileFormat ("" = auto).
	File       string
	FileFormat string
	// Source is an in-process escape hatch for a custom kamsta.Source
	// (not reachable over HTTP).
	Source kamsta.Source

	// Options appends extra RunOptions (in-process only; used by the
	// fault-injection tests). Jobs with Options never batch.
	Options []kamsta.RunOption
}

// Job is one admitted job. Its result is delivered exactly once via Wait
// (or polled via Result); the job context is cancelled when it finishes.
type Job struct {
	id     uint64
	tenant string
	req    Request
	ten    *tenant

	// maxV/verts cache the edge-list profile for batching (max label,
	// distinct vertex count).
	maxV  uint64
	verts int

	ctx       context.Context
	cancel    context.CancelFunc
	unwatch   func() // stops the queued-deadline fast-fail watcher
	attempts  int    // dispatch attempts so far (serialized: worker → retry timer → worker)
	submitted time.Time
	started   atomic.Int64 // unix nanos at dispatch; 0 while queued
	finished  atomic.Int64 // unix nanos at finish; retention sweeping

	done chan struct{}
	once sync.Once
	rep  *kamsta.Report
	err  error
}

// ID returns the server-assigned job id.
func (j *Job) ID() uint64 { return j.id }

// Tenant returns the submitting tenant.
func (j *Job) Tenant() string { return j.tenant }

// Done is closed when the result is available.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks for the result or the caller's ctx, whichever first. The
// job's own deadline fires through its result error, not through Wait.
func (j *Job) Wait(ctx context.Context) (*kamsta.Report, error) {
	select {
	case <-j.done:
		return j.rep, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result polls without blocking; ok reports whether the job finished.
func (j *Job) Result() (rep *kamsta.Report, err error, ok bool) {
	select {
	case <-j.done:
		return j.rep, j.err, true
	default:
		return nil, nil, false
	}
}

// Status reports "queued", "running" or "done".
func (j *Job) Status() string {
	select {
	case <-j.done:
		return "done"
	default:
	}
	if j.started.Load() != 0 {
		return "running"
	}
	return "queued"
}

// Cancel cancels the job's context. A queued job is withdrawn and fails
// immediately; a running single job unwinds at its next collective
// boundary; a job inside a batch is best-effort (the shared run continues
// for the surviving members and the cancelled one is dropped at the end).
func (j *Job) Cancel() { j.cancel() }

// finish records the result exactly once.
func (j *Job) finish(rep *kamsta.Report, err error) bool {
	first := false
	j.once.Do(func() {
		j.rep, j.err = rep, err
		j.finished.Store(time.Now().UnixNano())
		close(j.done)
		j.cancel()
		if j.unwatch != nil {
			j.unwatch()
		}
		first = true
	})
	return first
}

// poolMachine is one warm machine plus its shape and health state.
type poolMachine struct {
	m     *kamsta.Machine
	shape PoolShape
	busy  atomic.Bool
	// consecFaults counts consecutive dispatches that died on a world
	// fault (reset by any success); at Config.QuarantineAfter the machine
	// is quarantined and its worker exits.
	consecFaults atomic.Int64
	quarantined  atomic.Bool
}

// Server is the multi-tenant job server.
type Server struct {
	cfg      Config
	batch    BatchConfig
	sched    *scheduler
	sm       *serveMetrics
	shed     *shedder
	machines []*poolMachine

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	ids        atomic.Uint64
	running    atomic.Int64

	brownoutHi  int          // queue depth that flips brownout on
	quarantined atomic.Int64 // machines removed from service

	retryMu      sync.Mutex
	pending      map[uint64]*pendingRetry // jobs waiting out a retry backoff
	budgets      map[string]*tokenBucket  // per-tenant retry budgets
	retryStopped bool

	teardownOnce sync.Once

	jobsMu  sync.Mutex
	jobs    map[uint64]*Job
	submits uint64 // sweep trigger, guarded by jobsMu
}

// New validates cfg, builds the machine pool and starts one worker per
// machine. The caller must Drain or Close the server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Pool) == 0 {
		cfg.Pool = []PoolShape{{PEs: 4, Threads: 1, Count: 1}}
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 1024
	}
	if cfg.TenantQueueBound <= 0 {
		cfg.TenantQueueBound = cfg.QueueBound
	}
	if len(cfg.Tenants) == 0 && cfg.DefaultWeight <= 0 {
		cfg.DefaultWeight = 1 // open server: anyone may submit at weight 1
	}
	if cfg.Batch.MaxJobs > 1 && cfg.Batch.MaxEdges <= 0 {
		cfg.Batch.MaxEdges = 65536
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = 10 * time.Minute
	}
	if cfg.ShedMinSamples == 0 {
		cfg.ShedMinSamples = 16
	}
	if cfg.ShedQuantile <= 0 || cfg.ShedQuantile > 1 {
		cfg.ShedQuantile = 0.9
	}
	if cfg.BrownoutFraction <= 0 {
		cfg.BrownoutFraction = 0.75
	}
	if cfg.Retry.MaxAttempts > 1 {
		cfg.Retry = cfg.Retry.withDefaults()
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 64 << 20
	}
	seen := make(map[[2]int]bool, len(cfg.Pool))
	for _, shape := range cfg.Pool {
		k := [2]int{shape.PEs, shape.Threads}
		if seen[k] {
			return nil, fmt.Errorf("serve: duplicate pool shape %dx%d (use Count to size a shape)", shape.PEs, shape.Threads)
		}
		seen[k] = true
	}

	s := &Server{
		cfg:     cfg,
		batch:   cfg.Batch,
		sched:   newScheduler(cfg.QueueBound, cfg.TenantQueueBound, cfg.DefaultWeight),
		shed:    newShedder(cfg),
		pending: make(map[uint64]*pendingRetry),
		budgets: make(map[string]*tokenBucket),
		jobs:    make(map[uint64]*Job),
	}
	s.brownoutHi = int(cfg.BrownoutFraction * float64(cfg.QueueBound))
	if s.brownoutHi < 1 {
		s.brownoutHi = 1
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if s.sched.tenants[tc.Name] != nil {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		s.sched.register(tc.Name, tc.Weight)
	}
	for _, shape := range cfg.Pool {
		count := shape.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			m, err := kamsta.NewMachine(kamsta.MachineConfig{
				PEs: shape.PEs, Threads: shape.Threads, Metrics: cfg.Metrics,
				Transport: cfg.Transport, Workers: cfg.Workers,
			})
			if err != nil {
				for _, pm := range s.machines {
					pm.m.Close()
				}
				s.baseCancel()
				return nil, fmt.Errorf("serve: pool shape %dx%d: %w", shape.PEs, shape.Threads, err)
			}
			s.machines = append(s.machines, &poolMachine{m: m, shape: shape})
		}
	}
	s.sm = newServeMetrics(cfg.Metrics, s)
	for _, pm := range s.machines {
		s.wg.Add(1)
		go s.worker(pm)
	}
	return s, nil
}

// Submit validates and admits one job. The job's deadline clock starts
// now — queue wait counts against it. Rejections are sentinel errors
// (ErrQueueFull, ErrTenantQueueFull, ErrUnknownTenant, ErrDraining,
// ErrNoSuchShape) or wrap ErrBadRequest.
func (s *Server) Submit(req Request) (*Job, error) {
	j, err := s.admit(req)
	if err != nil {
		s.sm.rejected(req.Tenant, rejectReason(err))
		return nil, err
	}
	s.sm.submitted(req.Tenant)
	s.remember(j)
	return j, nil
}

func (s *Server) admit(req Request) (*Job, error) {
	if req.Tenant == "" {
		return nil, fmt.Errorf("%w: missing tenant", ErrBadRequest)
	}
	sources := 0
	for _, have := range []bool{req.Spec != nil, req.Edges != nil, req.File != "", req.Source != nil} {
		if have {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("%w: need exactly one of spec, edges, file or source (got %d)", ErrBadRequest, sources)
	}
	if req.Algorithm != "" {
		if _, err := kamsta.ParseAlgorithm(string(req.Algorithm)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if req.PEs != 0 {
		found := false
		for _, shape := range s.cfg.Pool {
			if shape.PEs == req.PEs {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %d PEs", ErrNoSuchShape, req.PEs)
		}
	}
	j := &Job{
		id:        s.ids.Add(1),
		tenant:    req.Tenant,
		req:       req,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if req.Edges != nil {
		maxV, verts, err := profileEdges(req.Edges)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		j.maxV, j.verts = maxV, verts
	}
	d := req.Deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d > 0 {
		j.ctx, j.cancel = context.WithTimeout(s.baseCtx, d)
	} else {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	}
	if err := s.overloadCheck(j, d); err != nil {
		j.cancel()
		s.sched.noteRejected(req.Tenant)
		return nil, err
	}
	// The fast-fail watcher: if the deadline (or a cancel) fires while the
	// job is still queued, it is withdrawn and failed immediately instead
	// of waiting for a worker to discover the corpse. Registered before
	// submit so a worker can never observe a half-initialized watcher.
	stop := context.AfterFunc(j.ctx, func() {
		if s.sched.remove(j) {
			s.finishJob(j, nil, j.ctx.Err())
		}
	})
	j.unwatch = func() { stop() }
	if err := s.sched.submit(j); err != nil {
		j.cancel()
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantQueueFull) {
			err = &RetryAfterError{Err: err, RetryAfter: s.shed.drainHint(req.PEs, 1)}
		}
		return nil, err
	}
	return j, nil
}

// overloadCheck is the admission-time shedding gate, run after validation
// and deadline resolution but before the job enters the queue: quarantine
// (no live machine could ever serve it), brownout (degraded server sheds
// batch-eligible small jobs first), and deadline-aware shedding (the
// estimated queue wait alone would burn the whole deadline).
func (s *Server) overloadCheck(j *Job, d time.Duration) error {
	if s.shed.live(j.req.PEs) == 0 {
		return ErrShapeQuarantined
	}
	depth := s.sched.depth()
	if _, batchable := batchKeyOf(j, s.batch); batchable && s.brownout() {
		return &RetryAfterError{Err: ErrBrownout,
			RetryAfter: s.shed.drainHint(j.req.PEs, depth-s.brownoutHi+1)}
	}
	return s.shed.shedCheck(j.req.PEs, depth, d)
}

// profileEdges validates labels the way kamsta.FromEdges will and returns
// the max label and distinct vertex count (the batch planner's inputs).
func profileEdges(edges []kamsta.InputEdge) (maxV uint64, verts int, err error) {
	seen := make(map[uint64]struct{}, 2*len(edges))
	for _, e := range edges {
		if e.U == 0 || e.V == 0 || e.U >= 1<<32 || e.V >= 1<<32 {
			return 0, 0, fmt.Errorf("vertex labels must be in [1, 2^32): edge (%d,%d)", e.U, e.V)
		}
		if e.U == e.V {
			return 0, 0, fmt.Errorf("self-loop on vertex %d", e.U)
		}
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
		maxV = max(maxV, e.U, e.V)
	}
	return maxV, len(seen), nil
}

// rejectReason labels a Submit error for the rejection counter.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrTenantQueueFull):
		return "tenant_queue_full"
	case errors.Is(err, ErrUnknownTenant):
		return "unknown_tenant"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrNoSuchShape):
		return "no_shape"
	case errors.Is(err, ErrDeadlineUnattainable):
		return "shed_deadline"
	case errors.Is(err, ErrBrownout):
		return "brownout"
	case errors.Is(err, ErrShapeQuarantined):
		return "quarantined"
	default:
		return "bad_request"
	}
}

// worker serves one pool machine until the scheduler tells it to exit or
// the machine is quarantined. During brownout, batching is disabled: a
// degraded pool should not multiply the blast radius of one faulting world
// across coalesced jobs.
func (s *Server) worker(pm *poolMachine) {
	defer s.wg.Done()
	for {
		bc := s.batch
		if bc.MaxJobs > 1 && s.brownout() {
			bc = BatchConfig{}
		}
		jobs := s.sched.next(pm.shape.PEs, bc)
		if jobs == nil {
			return
		}
		s.dispatch(pm, jobs)
		if pm.quarantined.Load() {
			return
		}
	}
}

// dispatch runs one fair pick — a single job or a batch — on pm. Jobs whose
// deadline expired while queued fail here without touching the machine.
func (s *Server) dispatch(pm *poolMachine, jobs []*Job) {
	now := time.Now()
	live := jobs[:0]
	for _, j := range jobs {
		j.started.Store(now.UnixNano())
		s.sm.observeWait(now.Sub(j.submitted).Seconds())
		if err := j.ctx.Err(); err != nil {
			s.finishJob(j, nil, err)
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	pm.busy.Store(true)
	s.running.Add(int64(len(live)))
	defer func() {
		pm.busy.Store(false)
		s.running.Add(-int64(len(live)))
	}()
	if len(live) == 1 {
		start := time.Now()
		rep, err := pm.m.Compute(live[0].ctx, s.source(live[0].req), s.runOptions(live[0].req)...)
		sec := time.Since(start).Seconds()
		s.sm.observeRun(sec)
		s.shed.observe(pm.shape.PEs, sec)
		s.noteMachineOutcome(pm, err)
		s.maybeRetry(live[0], rep, err)
		return
	}
	s.noteMachineOutcome(pm, s.runBatch(pm, live))
}

// noteMachineOutcome tracks one machine's consecutive world faults and
// quarantines it at the configured threshold. Deadline and cancel outcomes
// say nothing about machine health and leave the count alone.
func (s *Server) noteMachineOutcome(pm *poolMachine, err error) {
	if s.cfg.QuarantineAfter <= 0 {
		return
	}
	var je *kamsta.JobError
	switch {
	case err == nil:
		pm.consecFaults.Store(0)
	case errors.As(err, &je):
		if pm.consecFaults.Add(1) >= int64(s.cfg.QuarantineAfter) || !pm.m.Healthy() {
			s.quarantine(pm)
		}
	}
}

// quarantine removes pm from service: the live census shrinks (admission
// and shedding see it immediately), queued jobs that no surviving machine
// can serve fail with ErrShapeQuarantined, and pm's worker exits after the
// current dispatch.
func (s *Server) quarantine(pm *poolMachine) {
	if !pm.quarantined.CompareAndSwap(false, true) {
		return
	}
	s.quarantined.Add(1)
	s.shed.quarantineOne(pm.shape.PEs)
	for _, j := range s.sched.failUnservable(func(j *Job) bool { return s.shed.live(j.req.PEs) > 0 }) {
		s.finishJob(j, nil, ErrShapeQuarantined)
	}
}

// source maps a validated Request to its kamsta.Source.
func (s *Server) source(req Request) kamsta.Source {
	switch {
	case req.Source != nil:
		return req.Source
	case req.Spec != nil:
		return kamsta.FromSpec(*req.Spec)
	case req.Edges != nil:
		return kamsta.FromEdges(req.Edges)
	default:
		return kamsta.FromFileFormat(req.File, req.FileFormat)
	}
}

// runOptions assembles the RunOptions for one request, appending the
// server-wide stall timeout and trace sink.
func (s *Server) runOptions(req Request) []kamsta.RunOption {
	opts := make([]kamsta.RunOption, 0, 4+len(req.Options))
	opts = append(opts, kamsta.WithAlgorithm(req.Algorithm), kamsta.WithSeed(req.Seed))
	if s.cfg.StallTimeout > 0 {
		opts = append(opts, kamsta.WithStallTimeout(s.cfg.StallTimeout))
	}
	if s.cfg.Trace != nil {
		opts = append(opts, kamsta.WithTrace(s.cfg.Trace))
	}
	return append(opts, req.Options...)
}

// finishJob delivers a result exactly once and accounts the outcome.
func (s *Server) finishJob(j *Job, rep *kamsta.Report, err error) {
	if !j.finish(rep, err) {
		return
	}
	if j.ten != nil {
		j.ten.completed.Add(1)
	}
	s.sm.completed(j.tenant, outcomeOf(err))
}

// Job returns an admitted job by id (the HTTP poll path).
func (s *Server) Job(id uint64) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Forget drops a job from the result registry (DELETE over HTTP). The job
// itself still runs to completion unless cancelled.
func (s *Server) Forget(id uint64) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

// remember registers a job for polling and occasionally sweeps results
// older than ResultTTL.
func (s *Server) remember(j *Job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.submits++
	if s.submits%256 != 0 {
		return
	}
	horizon := time.Now().Add(-s.cfg.ResultTTL).UnixNano()
	for id, old := range s.jobs {
		if fin := old.finished.Load(); fin != 0 && fin < horizon {
			delete(s.jobs, id)
		}
	}
}

// Drain stops admission and waits for queued and running jobs to finish.
// If ctx expires first, remaining jobs are cancelled (they unwind at their
// next collective boundary) and Drain returns ctx's error after the
// machines shut down. Always closes the server.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.drain()
	s.drainRetries()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel()
		s.failOrphans()
		<-done
	}
	s.teardown()
	return err
}

// Close aborts: stops admission, cancels every job context, fails the
// queue, and releases the machines.
func (s *Server) Close() error {
	s.sched.drain()
	s.drainRetries()
	s.baseCancel()
	s.failOrphans()
	s.wg.Wait()
	s.teardown()
	return nil
}

// failOrphans closes the scheduler and fails every still-queued job with
// its context error (the base context is already cancelled on this path).
func (s *Server) failOrphans() {
	for _, j := range s.sched.close() {
		err := j.ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		s.finishJob(j, nil, err)
	}
}

func (s *Server) teardown() {
	s.teardownOnce.Do(func() {
		s.failOrphans() // no-op on the forced paths; flips state on graceful drain
		s.baseCancel()
		for _, pm := range s.machines {
			pm.m.Close()
		}
	})
}

// TenantStat is one row of Stats.Tenants.
type TenantStat struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight"`
	Queued    int    `json:"queued"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Rejected  int64  `json:"rejected"`
	Retried   int64  `json:"retried,omitempty"`
}

// MachineStat is one row of Stats.Machines.
type MachineStat struct {
	PEs         int   `json:"pes"`
	Threads     int   `json:"threads"`
	Busy        bool  `json:"busy"`
	Rebuilds    int64 `json:"rebuilds"`
	Quarantined bool  `json:"quarantined,omitempty"`
}

// Stats is a point-in-time server snapshot (GET /v1/stats).
type Stats struct {
	State       string        `json:"state"`
	Queued      int           `json:"queued"`
	Running     int           `json:"running"`
	Brownout    bool          `json:"brownout,omitempty"`
	Quarantined int           `json:"quarantined,omitempty"`
	Machines    []MachineStat `json:"machines"`
	Tenants     []TenantStat  `json:"tenants"`
}

// Stats snapshots queue depth, running jobs, machine health and per-tenant
// counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Queued:      s.sched.depth(),
		Running:     int(s.running.Load()),
		Brownout:    s.brownout(),
		Quarantined: int(s.quarantined.Load()),
		Tenants:     s.sched.snapshot(),
	}
	s.sched.mu.Lock()
	switch s.sched.state {
	case schedRunning:
		st.State = "running"
	case schedDraining:
		st.State = "draining"
	default:
		st.State = "closed"
	}
	s.sched.mu.Unlock()
	for _, pm := range s.machines {
		st.Machines = append(st.Machines, MachineStat{
			PEs:         pm.shape.PEs,
			Threads:     pm.shape.Threads,
			Busy:        pm.busy.Load(),
			Rebuilds:    pm.m.Rebuilds(),
			Quarantined: pm.quarantined.Load(),
		})
	}
	return st
}
