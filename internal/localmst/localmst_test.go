package localmst

import (
	"slices"
	"testing"

	"kamsta/internal/graph"
	"kamsta/internal/par"
	"kamsta/internal/rng"
	"kamsta/internal/seqmst"
	"kamsta/internal/unionfind"
)

func allLocal(graph.VID) bool { return true }

// randomEdges builds a random undirected edge list (single copies) on
// vertices 1..n with distinct weights via tie-breaking.
func randomEdges(n, m int, seed uint64) []graph.Edge {
	r := rng.New(seed)
	seen := map[uint64]bool{}
	var edges []graph.Edge
	for i := 2; i <= n; i++ { // spanning-ish backbone
		u := graph.VID(r.Intn(i-1) + 1)
		v := graph.VID(i)
		tb := graph.MakeTB(u, v)
		if !seen[tb] {
			seen[tb] = true
			edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
		}
	}
	for len(edges) < m {
		u := graph.VID(r.Intn(n) + 1)
		v := graph.VID(r.Intn(n) + 1)
		if u == v || seen[graph.MakeTB(u, v)] {
			continue
		}
		seen[graph.MakeTB(u, v)] = true
		edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
	}
	for i := range edges {
		edges[i].ID = uint64(i)
	}
	return edges
}

func totalWeight(edges []graph.Edge) uint64 {
	t := uint64(0)
	for _, e := range edges {
		t += uint64(e.W)
	}
	return t
}

func TestMSFMatchesKruskalAllLocal(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		n := 60 + int(seed)*10
		edges := randomEdges(n, n*4, seed)
		want := seqmst.Kruskal(n, edges)
		for _, threads := range []int{1, 4} {
			for _, filter := range []bool{false, true} {
				for _, hash := range []bool{false, true} {
					got := Run(edges, allLocal, Config{
						Pool: par.NewPool(threads), Filter: filter, FilterThreshold: 64, HashDedup: hash,
					})
					if w := totalWeight(got.MSTEdges); w != want.TotalWeight {
						t.Fatalf("seed=%d threads=%d filter=%v hash=%v: weight %d want %d",
							seed, threads, filter, hash, w, want.TotalWeight)
					}
					if len(got.MSTEdges) != len(want.Edges) {
						t.Fatalf("seed=%d: %d MST edges want %d", seed, len(got.MSTEdges), len(want.Edges))
					}
					if len(got.Remaining) != 0 {
						t.Fatalf("seed=%d: %d edges remain after full MSF", seed, len(got.Remaining))
					}
				}
			}
		}
	}
}

func TestMSFEdgeSetMatchesKruskal(t *testing.T) {
	n := 100
	edges := randomEdges(n, 400, 5)
	want := seqmst.Kruskal(n, edges)
	got := MSF(edges, par.NewPool(2))
	wantTB := map[uint64]bool{}
	for _, e := range want.Edges {
		wantTB[e.TB] = true
	}
	for _, e := range got.MSTEdges {
		if !wantTB[e.TB] {
			t.Fatalf("MSF picked non-MST edge %v", e)
		}
	}
	if len(got.MSTEdges) != len(want.Edges) {
		t.Fatalf("%d edges want %d", len(got.MSTEdges), len(want.Edges))
	}
}

func TestDisconnected(t *testing.T) {
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 3),
		graph.NewEdge(3, 4, 5),
	}
	got := MSF(edges, nil)
	if len(got.MSTEdges) != 2 || totalWeight(got.MSTEdges) != 8 {
		t.Fatalf("disconnected MSF wrong: %+v", got.MSTEdges)
	}
}

func TestEmptyInput(t *testing.T) {
	got := Run(nil, allLocal, Config{})
	if len(got.MSTEdges) != 0 || len(got.Remaining) != 0 || len(got.Verts) != 0 {
		t.Fatalf("empty input gave %+v", got)
	}
}

func TestLabelsFormComponents(t *testing.T) {
	n := 80
	edges := randomEdges(n, 200, 9)
	got := MSF(edges, nil)
	// Labels must assign every vertex of a connected component the same
	// root, matching union-find over the MST edges.
	uf := unionfind.New(n + 1)
	for _, e := range edges {
		uf.Union(int(e.U), int(e.V))
	}
	rootOf := map[int]graph.VID{}
	for i, v := range got.Verts {
		lbl := got.Roots[i]
		r := uf.Find(int(v))
		if prev, seen := rootOf[r]; seen && prev != lbl {
			t.Fatalf("component of %d has two labels: %d and %d", v, prev, lbl)
		}
		rootOf[r] = lbl
	}
	if !slices.IsSorted(got.Verts) {
		t.Fatal("Verts not ascending")
	}
}

// cutScenario builds a graph where vertex sets {1,2} are local and 3 is
// not; the lightest edge of 2 is the cut edge (2,3,w=1), so 2 must freeze
// even though the local edge (1,2,5) exists.
func TestFreezeOnLighterCutEdge(t *testing.T) {
	isLocal := func(v graph.VID) bool { return v <= 2 }
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 5),
		graph.NewEdge(2, 3, 1), // cut edge, lighter
		graph.NewEdge(1, 3, 9), // cut edge
	}
	got := Run(edges, isLocal, Config{})
	// Vertex 2's lightest edge is a cut edge → freeze. Vertex 1's lightest
	// edge is the local (1,2,5)... which IS its lightest (5 < 9), so 1
	// contracts into 2's component. The local edge (1,2,5) is a real MST
	// edge here (1's lightest incident edge overall).
	if len(got.MSTEdges) != 1 || got.MSTEdges[0].TB != graph.MakeTB(1, 2) {
		t.Fatalf("expected exactly the local edge (1,2) as MST edge, got %+v", got.MSTEdges)
	}
	// After contraction the two cut edges become parallel (both connect
	// component {1,2} to vertex 3); only the lighter survives. Dropping the
	// heavier is sound by the cycle property.
	if len(got.Remaining) != 1 || got.Remaining[0].W != 1 {
		t.Fatalf("expected the light cut edge to survive alone, got %+v", got.Remaining)
	}
}

func TestFreezeWhenCutIsLightest(t *testing.T) {
	// 1's lightest is the cut edge → nothing contracts at all.
	isLocal := func(v graph.VID) bool { return v <= 2 }
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 5),
		graph.NewEdge(1, 3, 1),
		graph.NewEdge(2, 4, 2),
	}
	got := Run(edges, isLocal, Config{})
	if len(got.MSTEdges) != 0 {
		t.Fatalf("no local contraction expected, got %+v", got.MSTEdges)
	}
	if len(got.Remaining) != 3 {
		t.Fatalf("all edges must survive, got %d", len(got.Remaining))
	}
}

func TestPreprocessingEdgesAreGlobalMSTEdges(t *testing.T) {
	// Property (§IV-A): every edge contracted by preprocessing must be in
	// the unique global MST, no matter which vertex subset is local.
	for seed := uint64(0); seed < 10; seed++ {
		n := 60
		edges := randomEdges(n, 250, seed)
		want := seqmst.Kruskal(n, edges)
		wantTB := map[uint64]bool{}
		for _, e := range want.Edges {
			wantTB[e.TB] = true
		}
		// Vertices 1..n/2 are "local".
		isLocal := func(v graph.VID) bool { return int(v) <= n/2 }
		got := Run(edges, isLocal, Config{Pool: par.NewPool(2)})
		for _, e := range got.MSTEdges {
			if !wantTB[e.TB] {
				t.Fatalf("seed=%d: preprocessing contracted non-MST edge %v", seed, e)
			}
		}
		// Completing the remaining graph must yield the rest of the MST.
		rest := seqmst.Kruskal(n, got.Remaining)
		if rest.TotalWeight+totalWeight(got.MSTEdges) != want.TotalWeight {
			t.Fatalf("seed=%d: preprocessing + completion %d != MST %d",
				seed, rest.TotalWeight+totalWeight(got.MSTEdges), want.TotalWeight)
		}
	}
}

func TestRemainingIsSortedAndDeduped(t *testing.T) {
	edges := randomEdges(50, 300, 3)
	isLocal := func(v graph.VID) bool { return v%3 != 0 }
	for _, hash := range []bool{false, true} {
		got := Run(edges, isLocal, Config{HashDedup: hash})
		if !graph.IsSorted(got.Remaining) {
			t.Fatalf("hash=%v: remaining edges not sorted", hash)
		}
		for i := 1; i < len(got.Remaining); i++ {
			a, b := got.Remaining[i-1], got.Remaining[i]
			if a.U == b.U && a.V == b.V {
				t.Fatalf("hash=%v: parallel edge survived: %v %v", hash, a, b)
			}
		}
	}
}

func TestHashAndSortDedupAgree(t *testing.T) {
	edges := randomEdges(70, 400, 8)
	isLocal := func(v graph.VID) bool { return v%2 == 0 }
	a := Run(edges, isLocal, Config{HashDedup: false})
	b := Run(edges, isLocal, Config{HashDedup: true})
	if len(a.Remaining) != len(b.Remaining) {
		t.Fatalf("dedup variants disagree: %d vs %d edges", len(a.Remaining), len(b.Remaining))
	}
	for i := range a.Remaining {
		if a.Remaining[i] != b.Remaining[i] {
			t.Fatalf("dedup variants disagree at %d: %v vs %v", i, a.Remaining[i], b.Remaining[i])
		}
	}
}

func TestParallelEdgesKeepLightest(t *testing.T) {
	// Local contraction proceeds through multiple rounds: {1,2} and {3,4}
	// contract, then merge via (1,3,8) — all three are global MST edges.
	// The two cut edges to the non-local vertex 5 become parallel and only
	// the lighter survives (cycle property).
	isLocal := func(v graph.VID) bool { return v <= 4 }
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 1),
		graph.NewEdge(3, 4, 2),
		graph.NewEdge(1, 3, 8),
		graph.NewEdge(2, 4, 9),
		graph.NewEdge(2, 5, 20),
		graph.NewEdge(4, 5, 21),
	}
	for _, hash := range []bool{false, true} {
		got := Run(edges, isLocal, Config{HashDedup: hash})
		if w := totalWeight(got.MSTEdges); w != 1+2+8 {
			t.Fatalf("hash=%v: contracted weight %d want 11 (edges %+v)", hash, w, got.MSTEdges)
		}
		if len(got.Remaining) != 1 || got.Remaining[0].W != 20 {
			t.Fatalf("hash=%v: surviving cut edge wrong: %+v", hash, got.Remaining)
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// A path of 1024 vertices halves components per round: ≤ ~12 rounds.
	var edges []graph.Edge
	for i := 1; i < 1024; i++ {
		edges = append(edges, graph.NewEdge(graph.VID(i), graph.VID(i+1), graph.RandomWeight(7, graph.VID(i), graph.VID(i+1))))
	}
	got := MSF(edges, par.NewPool(4))
	if len(got.MSTEdges) != 1023 {
		t.Fatalf("path MSF has %d edges", len(got.MSTEdges))
	}
	if got.Rounds > 14 {
		t.Fatalf("path contraction took %d rounds; expected logarithmic", got.Rounds)
	}
}

func TestThreadCountsAgree(t *testing.T) {
	edges := randomEdges(120, 600, 12)
	w1 := Run(edges, allLocal, Config{Pool: par.NewPool(1)})
	w8 := Run(edges, allLocal, Config{Pool: par.NewPool(8)})
	if totalWeight(w1.MSTEdges) != totalWeight(w8.MSTEdges) {
		t.Fatalf("thread counts disagree: %d vs %d", totalWeight(w1.MSTEdges), totalWeight(w8.MSTEdges))
	}
}

func BenchmarkMSF1Thread(b *testing.B) { benchMSF(b, 1) }
func BenchmarkMSF8Thread(b *testing.B) { benchMSF(b, 8) }

func benchMSF(b *testing.B, threads int) {
	edges := randomEdges(20000, 100000, 1)
	pool := par.NewPool(threads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MSF(edges, pool)
	}
}
