// Package localmst implements the intra-PE shared-memory MST machinery of
// the paper: Borůvka rounds with min-priority-write minimum-edge selection
// (the building block taken from the GBBS algorithm of Dhulipala et al.
// [15]), specialized for two uses:
//
//   - Local preprocessing (§IV-A): contract local edges that are provably
//     MST edges using only locally available information. A vertex is only
//     contracted when its lightest incident edge overall is a local edge —
//     when the lightest edge is a cut edge, the vertex freezes and stays
//     for the distributed rounds.
//   - Shared-memory MSF: with every vertex local and no freezing, the same
//     rounds compute the full MSF of a graph on one node with t threads
//     (the single-node baseline of §VII-C).
//
// It also provides the engineering refinements of §VI-B: the hash-table
// based removal of parallel edges, and a one-level variant of the recursive
// edge filtering applied before contraction.
package localmst

import (
	"slices"

	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// Config controls a local contraction run.
type Config struct {
	// Pool provides intra-PE threads (nil = sequential).
	Pool *par.Pool
	// Filter enables the §VI-B edge-filtering enhancement: the edge set is
	// partitioned at a pivot weight, the light part is contracted first,
	// and heavy intra-component edges are dropped before a second pass.
	Filter bool
	// FilterThreshold is the edge count above which filtering activates
	// (default 4096).
	FilterThreshold int
	// HashDedup selects the hash-table parallel-edge removal (§VI-B)
	// instead of pure sorting.
	HashDedup bool
}

func (c Config) withDefaults() Config {
	if c.Pool == nil {
		c.Pool = par.NewPool(1)
	}
	if c.FilterThreshold <= 0 {
		c.FilterThreshold = 4096
	}
	return c
}

// Result of a local contraction.
type Result struct {
	// MSTEdges are the identified MST edges. Their U/V fields are working
	// labels; TB and ID still identify the original edge.
	MSTEdges []graph.Edge
	// Verts lists every eligible (isLocal) vertex in ascending order, and
	// Roots is aligned with it: Roots[i] is the component root label of
	// Verts[i] (identity for frozen roots). The dense pair replaces the
	// former map so callers iterate deterministically and look labels up by
	// binary search.
	Verts []graph.VID
	Roots []graph.VID
	// Remaining holds the surviving edges, endpoints relabeled to component
	// roots, self-loops removed, parallel edges reduced to the lightest,
	// sorted lexicographically.
	Remaining []graph.Edge
	// Rounds is the number of Borůvka rounds executed.
	Rounds int
	// Work is the total number of edge touches across all rounds (the
	// rounds compact the edge set, so Work is far below m·Rounds on
	// contractible graphs). Callers use it for modeled-cost accounting.
	Work int
}

// Run contracts the graph induced by edges as far as the locality rule
// allows. isLocal says whether a vertex may be contracted on this PE (for
// preprocessing: local and not shared; for a single-node MSF: always true).
// Non-local endpoints keep their labels; edges to them freeze their source
// component when they are its lightest incident edge.
func Run(edges []graph.Edge, isLocal func(graph.VID) bool, cfg Config) Result {
	cfg = cfg.withDefaults()
	work := make([]graph.Edge, len(edges))
	copy(work, edges)

	st := newState(work, isLocal)
	res := Result{}
	if cfg.Filter && len(work) > cfg.FilterThreshold {
		light, heavy := splitAtMedianWeight(work)
		work = st.contract(light, cfg, &res)
		// Filter heavy edges through the labels achieved so far, then
		// finish on the union.
		heavy = st.relabelAndDrop(heavy, cfg.Pool)
		work = append(work, heavy...)
	}
	work = st.contract(work, cfg, &res)

	res.Remaining = removeParallel(work, cfg)
	res.Verts, res.Roots = st.labels()
	return res
}

// state tracks the dense component structure over the eligible vertices.
type state struct {
	verts   []graph.VID // sorted distinct eligible vertices
	parent  []int32     // dense parent pointers (roots: parent[i] == i)
	frozen  []bool      // component may no longer contract
	isLocal func(graph.VID) bool
}

func newState(edges []graph.Edge, isLocal func(graph.VID) bool) *state {
	verts := make([]graph.VID, 0, 2*len(edges))
	for _, e := range edges {
		if isLocal(e.U) {
			verts = append(verts, e.U)
		}
		if isLocal(e.V) {
			verts = append(verts, e.V)
		}
	}
	slices.Sort(verts)
	verts = slices.Compact(verts)
	st := &state{
		verts:   verts,
		parent:  make([]int32, len(verts)),
		frozen:  make([]bool, len(verts)),
		isLocal: isLocal,
	}
	for i := range st.parent {
		st.parent[i] = int32(i)
	}
	return st
}

// idx returns the dense index of v, or -1 if v is not eligible.
func (st *state) idx(v graph.VID) int32 {
	if i, ok := slices.BinarySearch(st.verts, v); ok {
		return int32(i)
	}
	return -1
}

// root resolves i to its component root with path compression.
func (st *state) root(i int32) int32 {
	r := i
	for st.parent[r] != r {
		r = st.parent[r]
	}
	for st.parent[i] != r {
		st.parent[i], i = r, st.parent[i]
	}
	return r
}

// rootLabel maps a vertex label to its current component root label.
func (st *state) rootLabel(v graph.VID) graph.VID {
	i := st.idx(v)
	if i < 0 {
		return v
	}
	return st.verts[st.root(i)]
}

// labels materializes the final (ascending vertex, root label) table.
func (st *state) labels() (verts, roots []graph.VID) {
	roots = make([]graph.VID, len(st.verts))
	for i := range st.verts {
		roots[i] = st.verts[st.root(int32(i))]
	}
	return st.verts, roots
}

// contract runs Borůvka rounds on work until no component can contract,
// appending found MST edges to res and counting rounds. It returns the
// surviving relabeled edges (self-loops removed, possibly with parallels).
func (st *state) contract(work []graph.Edge, cfg Config, res *Result) []graph.Edge {
	pool := cfg.Pool
	// Frozen flags are a per-call memo: a component frozen for lack of
	// edges in the filtered light phase must get another chance when the
	// heavy edges arrive. Re-freezing on cut edges happens naturally, as a
	// cut edge lighter than every heavy edge stays the component minimum.
	for i := range st.frozen {
		st.frozen[i] = false
	}
	// Edges arrive with original labels; normalize to current roots first
	// (no-op on the first call).
	work = st.relabelKeepCut(work, pool)
	// retired holds edges that can never participate again within this
	// call: both endpoints frozen or non-local. Freezing is permanent for
	// the duration of a contract call, so setting such edges aside keeps
	// the per-round scan proportional to the still-active part of the
	// graph — essential on graphs with many cut edges, where the paper's
	// preprocessing would otherwise rescan frozen boundaries every round.
	var retired []graph.Edge
	for {
		res.Work += len(work)
		slots := par.NewMinIndex(len(st.verts))
		lessByWeight := func(a, b uint32) bool { return graph.LessWeight(work[a], work[b]) }
		// Min-priority-write: every edge offers itself to the slots of BOTH
		// endpoints (endpoints are component roots already). Writing both
		// sides makes the selection correct for undirected edges regardless
		// of which directed copies this PE holds, and is exactly the
		// min-priority-write of [15].
		pool.For(len(work), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if i := st.idx(work[k].U); i >= 0 && !st.frozen[i] {
					slots.Write(int(i), uint32(k), lessByWeight)
				}
				if i := st.idx(work[k].V); i >= 0 && !st.frozen[i] {
					slots.Write(int(i), uint32(k), lessByWeight)
				}
			}
		})

		// Choose parents; freeze components whose lightest edge leaves the
		// local vertex set.
		type pick struct {
			target int32 // dense root of the chosen local neighbor, -1 = freeze
			edge   uint32
		}
		picks := make([]pick, len(st.verts))
		merged := false
		for i := range st.verts {
			picks[i] = pick{target: -1, edge: par.None}
			if st.frozen[i] || st.parent[i] != int32(i) {
				continue
			}
			k := slots.Get(i)
			if k == par.None {
				st.frozen[i] = true // isolated component
				continue
			}
			e := work[k]
			// The chosen edge may have been written from either side; the
			// contraction target is the endpoint that is not this root.
			other := e.V
			if other == st.verts[i] {
				other = e.U
			}
			j := st.idx(other)
			if j < 0 {
				st.frozen[i] = true // lightest edge is a cut edge
				continue
			}
			picks[i] = pick{target: j, edge: k}
		}

		// Resolve picks; mutual pairs (2-cycles) keep the smaller label as
		// root and contribute exactly one MST edge.
		for i := range st.verts {
			p := picks[i]
			if p.target < 0 {
				continue
			}
			j := p.target
			if picks[j].target == int32(i) && st.verts[j] > st.verts[i] {
				// Mutual pair and we are the smaller label: we stay root;
				// drop our pick (j will hang under us and contribute the
				// single MST edge of the 2-cycle).
				continue
			}
			st.parent[i] = j
			res.MSTEdges = append(res.MSTEdges, work[p.edge])
			merged = true
		}
		res.Rounds++
		if !merged {
			break
		}
		// Flatten the forest and relabel the edges.
		for i := range st.parent {
			st.root(int32(i))
		}
		work = st.relabelKeepCut(work, pool)
		// Contracting a dense graph leaves many parallel edges; reducing
		// them per round keeps the total work a geometric sum instead of
		// m·rounds (the final removeParallel still canonicalizes the
		// survivors). Cheap hash reduction, lightest copy per directed
		// pair — both directions of a local edge reduce consistently.
		if len(work) > 256 {
			work = reduceParallelPairs(work)
		}
		// Retire edges between permanently settled components.
		settled := func(v graph.VID) bool {
			i := st.idx(v)
			return i < 0 || st.frozen[st.root(i)]
		}
		active := work[:0]
		for _, e := range work {
			if settled(e.U) && settled(e.V) {
				retired = append(retired, e)
			} else {
				active = append(active, e)
			}
		}
		work = active
	}
	return append(work, retired...)
}

// reduceParallelPairs keeps the lightest copy per directed endpoint pair.
// Order is not preserved; the caller re-sorts at the end of the run.
func reduceParallelPairs(edges []graph.Edge) []graph.Edge {
	type pair struct{ U, V graph.VID }
	best := make(map[pair]int, len(edges))
	out := edges[:0]
	for _, e := range edges {
		k := pair{e.U, e.V}
		if i, ok := best[k]; ok {
			if graph.LessWeight(e, out[i]) {
				out[i] = e
			}
			continue
		}
		best[k] = len(out)
		out = append(out, e)
	}
	return out
}

// relabelKeepCut rewrites endpoints to current root labels and drops
// self-loops.
func (st *state) relabelKeepCut(edges []graph.Edge, pool *par.Pool) []graph.Edge {
	out := par.Map(pool, edges, func(e graph.Edge) graph.Edge {
		e.U = st.rootLabel(e.U)
		e.V = st.rootLabel(e.V)
		return e
	})
	return par.Filter(pool, out, func(e graph.Edge) bool { return e.U != e.V })
}

// relabelAndDrop is the filtering step: relabel and drop intra-component
// (self-loop) edges from a held-back heavy set.
func (st *state) relabelAndDrop(edges []graph.Edge, pool *par.Pool) []graph.Edge {
	return st.relabelKeepCut(edges, pool)
}

// splitAtMedianWeight partitions edges at the median weight of a small
// sample, light part inclusive.
func splitAtMedianWeight(edges []graph.Edge) (light, heavy []graph.Edge) {
	const sampleN = 63
	sample := make([]graph.Edge, 0, sampleN)
	step := len(edges)/sampleN + 1
	for i := 0; i < len(edges); i += step {
		sample = append(sample, edges[i])
	}
	slices.SortFunc(sample, graph.CmpWeight)
	pivot := sample[len(sample)/2]
	light = make([]graph.Edge, 0, len(edges)/2)
	heavy = make([]graph.Edge, 0, len(edges)/2)
	for _, e := range edges {
		if graph.LessWeight(pivot, e) {
			heavy = append(heavy, e)
		} else {
			light = append(light, e)
		}
	}
	return light, heavy
}

// removeParallel reduces runs of equal (U,V) to the lightest copy and
// returns the edges sorted lexicographically. With cfg.HashDedup it uses
// the §VI-B hybrid: edges lighter than a sampled pivot enter a hash table
// that both dedups them and filters heavier duplicates, so only the heavy
// remainder needs sorting.
func removeParallel(edges []graph.Edge, cfg Config) []graph.Edge {
	if len(edges) == 0 {
		return nil
	}
	if !cfg.HashDedup {
		slices.SortFunc(edges, graph.CmpLex)
		out := edges[:0]
		for i, e := range edges {
			if i > 0 && e.U == edges[i-1].U && e.V == edges[i-1].V {
				continue
			}
			out = append(out, e)
		}
		return out
	}

	// Pivot such that the light set is small (about a quarter).
	const sampleN = 31
	sample := make([]graph.Edge, 0, sampleN)
	step := len(edges)/sampleN + 1
	for i := 0; i < len(edges); i += step {
		sample = append(sample, edges[i])
	}
	slices.SortFunc(sample, graph.CmpWeight)
	pivot := sample[len(sample)/4]

	type key struct{ U, V graph.VID }
	light := make(map[key]graph.Edge)
	heavy := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		if !graph.LessWeight(pivot, e) {
			k := key{e.U, e.V}
			if cur, ok := light[k]; !ok || graph.LessWeight(e, cur) {
				light[k] = e
			}
		} else {
			heavy = append(heavy, e)
		}
	}
	// Heavy edges whose pair already has a lighter copy die here.
	kept := heavy[:0]
	for _, e := range heavy {
		if _, ok := light[key{e.U, e.V}]; !ok {
			kept = append(kept, e)
		}
	}
	slices.SortFunc(kept, graph.CmpLex)
	out := make([]graph.Edge, 0, len(light)+len(kept))
	for _, e := range light {
		out = append(out, e)
	}
	slices.SortFunc(out, graph.CmpLex)
	// Merge the two sorted parts, dropping heavy duplicates.
	merged := make([]graph.Edge, 0, len(out)+len(kept))
	i, j := 0, 0
	for i < len(out) || j < len(kept) {
		var e graph.Edge
		if j >= len(kept) || (i < len(out) && graph.LessLex(out[i], kept[j])) {
			e = out[i]
			i++
		} else {
			e = kept[j]
			j++
		}
		if n := len(merged); n > 0 && merged[n-1].U == e.U && merged[n-1].V == e.V {
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// MSF computes the full minimum spanning forest of an in-memory graph with
// t threads — the shared-memory baseline (§VII-C). All vertices count as
// local.
func MSF(edges []graph.Edge, pool *par.Pool) Result {
	return Run(edges, func(graph.VID) bool { return true }, Config{Pool: pool, HashDedup: true})
}
