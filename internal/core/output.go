package core

import (
	"slices"
	"sort"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
)

func sortSlice(edges []graph.Edge) {
	slices.SortFunc(edges, graph.CmpLex)
}

// inputCopy is the compressed copy of this PE's original input chunk plus
// the replicated ID offsets of all chunks, kept to output original MST
// endpoints (§VI-C: stored 7-bit variable-length encoded because node
// memory is scarce; decoded once before and once after the computation,
// which we account in modeled time).
type inputCopy struct {
	comp    *graph.CompressedEdges
	offsets []uint64 // offsets[i] = first global ID on PE i; len p+1
}

// makeInputCopy compresses the local input chunk and gathers the global ID
// layout.
func makeInputCopy(c *comm.Comm, edges []graph.Edge) *inputCopy {
	firstID := uint64(0)
	if len(edges) > 0 {
		firstID = edges[0].ID
	}
	comp := graph.CompressEdges(edges, firstID)
	counts := comm.Allgather(c, len(edges))
	offsets := make([]uint64, c.P()+1)
	for i, n := range counts {
		offsets[i+1] = offsets[i] + uint64(n)
	}
	// Account one decode pass now (the paper charges decoding twice but
	// not encoding); the second pass is charged in redistributeMST.
	c.ChargeCompute(len(edges))
	return &inputCopy{comp: comp, offsets: offsets}
}

// redistributeMST implements REDISTRIBUTEMST: every identified MST edge is
// routed back to the home PE of its original input copy (by global edge
// ID), where the original endpoints are recovered from the compressed
// input. Returns the local share of the MSF with original endpoint labels.
func redistributeMST(c *comm.Comm, mst []graph.Edge, in *inputCopy, opt Options) []graph.Edge {
	p := c.P()
	send := make([][]uint64, p)
	for _, e := range mst {
		home := sort.Search(p, func(i int) bool { return in.offsets[i+1] > e.ID })
		send[home] = append(send[home], e.ID)
	}
	recv := alltoall.Exchange(c, opt.A2A, send)
	var out []graph.Edge
	for i := range recv {
		for _, id := range recv[i] {
			out = append(out, in.comp.ByID(id))
		}
	}
	sortSlice(out)
	// Second decode pass of the compressed copy (§VI-C accounting).
	c.ChargeCompute(in.comp.Len())
	return out
}
