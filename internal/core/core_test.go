package core

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/seqmst"
	"kamsta/internal/verify"
)

// runDistributed builds the spec's graph on a p-PE world with t threads and
// runs alg on it, returning the global result, the per-rank MST shares, and
// the full input edge list for oracle comparison.
func runDistributed(t *testing.T, p, threads int, spec gen.Spec, opt Options,
	alg func(*comm.Comm, []graph.Edge, *graph.Layout, Options) Result) (Result, [][]graph.Edge, []graph.Edge) {
	t.Helper()
	w := comm.NewWorld(p, comm.WithThreads(threads))
	results := make([]Result, p)
	shares := make([][]graph.Edge, p)
	inputs := make([][]graph.Edge, p)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		inputs[c.Rank()] = edges
		r := alg(c, edges, layout, opt)
		results[c.Rank()] = r
		shares[c.Rank()] = r.MSTEdges
	})
	var all []graph.Edge
	for _, in := range inputs {
		all = append(all, in...)
	}
	for r := 1; r < p; r++ {
		if results[r].TotalWeight != results[0].TotalWeight || results[r].NumEdges != results[0].NumEdges {
			t.Fatalf("ranks disagree on the result: rank %d (%d,%d) vs rank 0 (%d,%d)",
				r, results[r].TotalWeight, results[r].NumEdges, results[0].TotalWeight, results[0].NumEdges)
		}
	}
	return results[0], shares, all
}

// oracle computes the reference MSF with sequential Kruskal.
func oracle(all []graph.Edge) seqmst.Result {
	und := seqmst.UndirectedFromDirected(all)
	maxV := graph.VID(0)
	for _, e := range und {
		if e.U > maxV {
			maxV = e.U
		}
		if e.V > maxV {
			maxV = e.V
		}
	}
	return seqmst.Kruskal(int(maxV), und)
}

// checkAgainstOracle verifies weight, count and edge-set identity (weights
// are globally distinct, so the MSF is unique).
func checkAgainstOracle(t *testing.T, label string, res Result, shares [][]graph.Edge, all []graph.Edge) {
	t.Helper()
	want := oracle(all)
	if res.TotalWeight != want.TotalWeight {
		t.Fatalf("%s: weight %d want %d", label, res.TotalWeight, want.TotalWeight)
	}
	if res.NumEdges != len(want.Edges) {
		t.Fatalf("%s: %d MSF edges want %d", label, res.NumEdges, len(want.Edges))
	}
	wantTB := map[uint64]bool{}
	for _, e := range want.Edges {
		wantTB[e.TB] = true
	}
	seen := map[uint64]bool{}
	for rank, sh := range shares {
		for _, e := range sh {
			if !wantTB[e.TB] {
				t.Fatalf("%s: rank %d emitted non-MST edge %v", label, rank, e)
			}
			if seen[e.TB] {
				t.Fatalf("%s: MST edge %v emitted twice", label, e)
			}
			seen[e.TB] = true
		}
	}
	if len(seen) != len(want.Edges) {
		t.Fatalf("%s: %d distinct MSF edges collected, want %d", label, len(seen), len(want.Edges))
	}
	// Defense in depth: the independent verifier (forest + spanning +
	// cycle property) must also accept the distributed result.
	var claimed []graph.Edge
	for _, sh := range shares {
		claimed = append(claimed, sh...)
	}
	und := seqmst.UndirectedFromDirected(all)
	if msg := verify.MSF(und, claimed); msg != "" {
		t.Fatalf("%s: verifier rejected the distributed MSF: %s", label, msg)
	}
}

func testSpecs() []gen.Spec {
	return []gen.Spec{
		{Family: gen.Grid2D, N: 120, Seed: 1},
		{Family: gen.RGG2D, N: 150, M: 700, Seed: 2},
		{Family: gen.GNM, N: 130, M: 500, Seed: 3},
		{Family: gen.RMAT, N: 128, M: 500, Seed: 4},
		{Family: gen.RHG, N: 150, M: 600, Seed: 5},
	}
}

func TestBoruvkaMatchesKruskalAcrossFamilies(t *testing.T) {
	for _, spec := range testSpecs() {
		for _, p := range []int{1, 2, 4, 7} {
			opt := Options{LocalPreprocessing: true, LocalFilter: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
			res, shares, all := runDistributed(t, p, 1, spec, opt, Boruvka)
			checkAgainstOracle(t, spec.Label(), res, shares, all)
		}
	}
}

func TestFilterBoruvkaMatchesKruskalAcrossFamilies(t *testing.T) {
	for _, spec := range testSpecs() {
		for _, p := range []int{1, 2, 4, 7} {
			opt := Options{LocalPreprocessing: true, LocalFilter: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16,
				Filter: FilterOptions{MinEdgesPerPE: 32, MergeBackFraction: 0.25}}
			res, shares, all := runDistributed(t, p, 1, spec, opt, FilterBoruvka)
			checkAgainstOracle(t, spec.Label(), res, shares, all)
		}
	}
}

func TestBoruvkaOptionMatrix(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 200, M: 900, Seed: 7}
	for _, pre := range []bool{false, true} {
		for _, dedup := range []bool{false, true} {
			for _, threads := range []int{1, 4} {
				opt := Options{LocalPreprocessing: pre, DedupParallel: dedup, HashDedup: pre, BaseCaseCap: 16}
				res, shares, all := runDistributed(t, 4, threads, spec, opt, Boruvka)
				label := spec.Label()
				checkAgainstOracle(t, label, res, shares, all)
			}
		}
	}
}

func TestBoruvkaGridHighLocality(t *testing.T) {
	// Grid graphs exercise the preprocessing path heavily: most edges are
	// local, so nearly everything contracts before the distributed rounds.
	spec := gen.Spec{Family: gen.Grid2D, N: 400, Seed: 11}
	opt := Options{LocalPreprocessing: true, LocalFilter: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
	res, shares, all := runDistributed(t, 4, 2, spec, opt, Boruvka)
	checkAgainstOracle(t, spec.Label(), res, shares, all)
}

func TestBoruvkaLargeBaseCaseShortCircuit(t *testing.T) {
	// With a huge base-case threshold the whole computation happens in the
	// replicated base case — exercising it as a standalone algorithm.
	spec := gen.Spec{Family: gen.GNM, N: 150, M: 600, Seed: 13}
	opt := Options{BaseCaseCap: 1 << 20}
	res, shares, all := runDistributed(t, 4, 1, spec, opt, Boruvka)
	if res.Rounds != 0 {
		t.Fatalf("expected no distributed rounds, got %d", res.Rounds)
	}
	checkAgainstOracle(t, spec.Label(), res, shares, all)
}

func TestBoruvkaTinyBaseCaseManyRounds(t *testing.T) {
	// A tiny threshold forces many distributed rounds.
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 1200, Seed: 17}
	opt := Options{BaseCaseCap: 1, DedupParallel: true}
	res, shares, all := runDistributed(t, 4, 1, spec, opt, Boruvka)
	if res.Rounds == 0 {
		t.Fatal("expected several distributed rounds")
	}
	checkAgainstOracle(t, spec.Label(), res, shares, all)
}

func TestDisconnectedMSF(t *testing.T) {
	// A graph of several grid components (disconnect by building a small
	// grid: the generator yields one component, so use GNM sparse enough to
	// be disconnected).
	spec := gen.Spec{Family: gen.GNM, N: 400, M: 300, Seed: 19} // m < n → many components
	opt := Options{LocalPreprocessing: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
	for _, alg := range []func(*comm.Comm, []graph.Edge, *graph.Layout, Options) Result{Boruvka, FilterBoruvka} {
		res, shares, all := runDistributed(t, 4, 1, spec, opt, alg)
		checkAgainstOracle(t, spec.Label(), res, shares, all)
	}
}

func TestSingleEdgeGraph(t *testing.T) {
	// Smallest nontrivial input: one undirected edge on a 3-PE world.
	w := comm.NewWorld(3)
	weights := make([]uint64, 3)
	w.Run(func(c *comm.Comm) {
		var raw []graph.Edge
		if c.Rank() == 0 {
			e := graph.NewEdge(1, 2, 5)
			raw = []graph.Edge{e, graph.Edge{U: 2, V: 1, W: 5, TB: e.TB}}
		}
		edges, layout := gen.Finish(c, raw, dsort.Options{})
		r := Boruvka(c, edges, layout, Options{})
		weights[c.Rank()] = r.TotalWeight
	})
	for rank, w := range weights {
		if w != 5 {
			t.Fatalf("rank %d: weight %d want 5", rank, w)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Finish(c, nil, dsort.Options{})
		r := Boruvka(c, edges, layout, Options{})
		if r.TotalWeight != 0 || r.NumEdges != 0 {
			t.Errorf("empty graph gave %+v", r)
		}
		rf := FilterBoruvka(c, edges, layout, Options{})
		if rf.TotalWeight != 0 || rf.NumEdges != 0 {
			t.Errorf("empty graph (filter) gave %+v", rf)
		}
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	spec := gen.Spec{Family: gen.RMAT, N: 256, M: 1000, Seed: 23}
	opt := Options{LocalPreprocessing: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
	a, sharesA, _ := runDistributed(t, 4, 2, spec, opt, Boruvka)
	b, sharesB, _ := runDistributed(t, 4, 2, spec, opt, Boruvka)
	if a.TotalWeight != b.TotalWeight || a.NumEdges != b.NumEdges {
		t.Fatal("nondeterministic global result")
	}
	for r := range sharesA {
		if len(sharesA[r]) != len(sharesB[r]) {
			t.Fatalf("rank %d: nondeterministic share size", r)
		}
		for i := range sharesA[r] {
			if sharesA[r][i] != sharesB[r][i] {
				t.Fatalf("rank %d: nondeterministic edge %d", r, i)
			}
		}
	}
}

func TestResultIndependentOfWorldSize(t *testing.T) {
	spec := gen.Spec{Family: gen.RGG2D, N: 200, M: 900, Seed: 29}
	opt := Options{LocalPreprocessing: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
	ref, _, _ := runDistributed(t, 1, 1, spec, opt, Boruvka)
	for _, p := range []int{2, 3, 5, 8} {
		got, _, _ := runDistributed(t, p, 1, spec, opt, Boruvka)
		if got.TotalWeight != ref.TotalWeight || got.NumEdges != ref.NumEdges {
			t.Fatalf("p=%d: (%d,%d) differs from p=1 (%d,%d)",
				p, got.TotalWeight, got.NumEdges, ref.TotalWeight, ref.NumEdges)
		}
	}
}

func TestFilterAgreesWithPlainBoruvka(t *testing.T) {
	for _, spec := range testSpecs() {
		optB := Options{LocalPreprocessing: true, HashDedup: true, DedupParallel: true, BaseCaseCap: 16}
		optF := optB
		optF.Filter = FilterOptions{MinEdgesPerPE: 32}
		b, _, _ := runDistributed(t, 4, 1, spec, optB, Boruvka)
		f, _, _ := runDistributed(t, 4, 1, spec, optF, FilterBoruvka)
		if b.TotalWeight != f.TotalWeight || b.NumEdges != f.NumEdges {
			t.Fatalf("%s: boruvka (%d,%d) vs filterBoruvka (%d,%d)",
				spec.Label(), b.TotalWeight, b.NumEdges, f.TotalWeight, f.NumEdges)
		}
	}
}

func TestFilterRecursionActuallyPartitions(t *testing.T) {
	// On a dense graph with a small MinEdgesPerPE the recursion must
	// perform several base calls.
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 4000, Seed: 31}
	opt := Options{BaseCaseCap: 16, DedupParallel: true,
		Filter: FilterOptions{MinEdgesPerPE: 64, SparseAvgDegree: 4, MergeBackFraction: 0.01}}
	res, shares, all := runDistributed(t, 4, 1, spec, opt, FilterBoruvka)
	if res.BaseCalls < 2 {
		t.Fatalf("expected a real recursion, got %d base calls", res.BaseCalls)
	}
	checkAgainstOracle(t, spec.Label(), res, shares, all)
}

func TestFilterWorkLinearOnDenseGraph(t *testing.T) {
	// Theorem 1: Filter-Borůvka does O(m) work. Plain Borůvka touches all
	// m edges every round (log n rounds); the filter variant must touch
	// asymptotically fewer edge-units on dense inputs. We compare the
	// edge-touch counters on a dense GNM.
	spec := gen.Spec{Family: gen.GNM, N: 200, M: 6000, Seed: 37}
	optB := Options{BaseCaseCap: 1, DedupParallel: false}
	optF := optB
	optF.Filter = FilterOptions{MinEdgesPerPE: 64, SparseAvgDegree: 4, MergeBackFraction: 0.01}
	b, _, _ := runDistributed(t, 4, 1, spec, optB, Boruvka)
	f, _, _ := runDistributed(t, 4, 1, spec, optF, FilterBoruvka)
	if f.EdgesTouched >= b.EdgesTouched {
		t.Fatalf("filtering should reduce touched edges: filter=%d plain=%d", f.EdgesTouched, b.EdgesTouched)
	}
}

func TestPhaseTimesRecorded(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 200, M: 800, Seed: 41}
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		Boruvka(c, edges, layout, Options{BaseCaseCap: 16, DedupParallel: true})
	})
	ph := w.Phases()
	for _, name := range []string{PhaseMinEdges, PhaseContract, PhaseLabels, PhaseRedistribute, PhaseBaseCase} {
		if ph[name].Modeled <= 0 {
			t.Fatalf("phase %q not recorded: %+v", name, ph)
		}
	}
}
