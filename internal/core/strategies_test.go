package core

import (
	"testing"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
)

// TestBoruvkaUnderAllCommunicationStrategies runs the full algorithm with
// every sparse all-to-all strategy and every sorter, on power-of-two and
// odd world sizes (the hypercube variants require powers of two; dsort
// falls back internally, alltoall.Hypercube is only selected on 2^k).
func TestBoruvkaUnderAllCommunicationStrategies(t *testing.T) {
	spec := gen.Spec{Family: gen.RMAT, N: 256, M: 900, Seed: 3}
	type combo struct {
		name string
		a2a  alltoall.Strategy
		alg  dsort.Algorithm
		p    int
	}
	combos := []combo{
		{"direct/sample/p5", alltoall.Direct, dsort.SampleSort, 5},
		{"grid/sample/p7", alltoall.Grid, dsort.SampleSort, 7},
		{"grid/hypercube/p8", alltoall.Grid, dsort.HypercubeQS, 8},
		{"hypercube/hypercube/p8", alltoall.Hypercube, dsort.HypercubeQS, 8},
		{"multilevel3/sample/p8", alltoall.MultiLevel(3), dsort.SampleSort, 8},
		{"auto/auto/p6", alltoall.Auto, dsort.Auto, 6},
	}
	var want uint64
	for i, cb := range combos {
		opt := Options{
			LocalPreprocessing: true, HashDedup: true, DedupParallel: true,
			BaseCaseCap: 16, A2A: cb.a2a,
		}
		opt.Sort.Alg = cb.alg
		res, shares, all := runDistributed(t, cb.p, 1, spec, opt, Boruvka)
		checkAgainstOracle(t, cb.name, res, shares, all)
		if i == 0 {
			want = res.TotalWeight
		} else if res.TotalWeight != want {
			t.Fatalf("%s: weight %d differs from %d", cb.name, res.TotalWeight, want)
		}
	}
}

// TestMultiLevelLogPMatchesHypercube checks the §VI-A remark that the
// d-dimensional grid at d = log p "basically" is the hypercube algorithm:
// both must deliver identically and with comparable modeled startup cost.
func TestMultiLevelLogPMatchesHypercube(t *testing.T) {
	p := 16 // log2 = 4
	cost := func(s alltoall.Strategy) float64 {
		w := comm.NewWorld(p)
		w.Run(func(c *comm.Comm) {
			send := make([][]int, p)
			for d := range send {
				send[d] = []int{c.Rank()*100 + d}
			}
			got := alltoall.Exchange(c, s, send)
			for src := 0; src < p; src++ {
				if len(got[src]) != 1 || got[src][0] != src*100+c.Rank() {
					t.Errorf("strategy %v misdelivered from %d", s, src)
				}
			}
		})
		return w.MaxClock()
	}
	ml := cost(alltoall.MultiLevel(4))
	hc := cost(alltoall.Hypercube)
	if ml > hc*2 || hc > ml*2 {
		t.Fatalf("MultiLevel(log p) %.3e and hypercube %.3e should have comparable cost", ml, hc)
	}
}

// TestFilterBoruvkaWithGridEverything runs Filter-Borůvka entirely over
// indirect communication (sorting data delivery included).
func TestFilterBoruvkaWithGridEverything(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 2400, Seed: 9}
	opt := Options{
		DedupParallel: true, BaseCaseCap: 16,
		A2A:    alltoall.Grid,
		Filter: FilterOptions{MinEdgesPerPE: 64},
	}
	opt.Sort.A2A = alltoall.Grid
	res, shares, all := runDistributed(t, 9, 2, spec, opt, FilterBoruvka)
	checkAgainstOracle(t, "filter/grid-everything", res, shares, all)
}
