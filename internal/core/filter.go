package core

import (
	"fmt"
	"slices"

	"kamsta/internal/alltoall"
	"kamsta/internal/arena"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/par"
	"kamsta/internal/rng"
)

// Arena keys of the Filter-Borůvka working set.
var (
	kDistTbl   = arena.NewKey() // []graph.VID: dense owned slice of P
	kResCur    = arena.NewKey() // []graph.VID: resolve cursors
	kResDone   = arena.NewKey() // []bool: resolve completion flags
	kResTgt    = arena.NewKey() // []graph.VID: distinct pending targets
	kResSendQ  = arena.NewKey() // [][]graph.VID buckets (resolve queries)
	kResSendR  = arena.NewKey() // [][]labelPair buckets (resolve replies)
	kResAns    = arena.NewKey() // []labelPair: sorted answers
	kFilterVs  = arena.NewKey() // []graph.VID: distinct endpoints of a segment
	kFilterTmp = arena.NewKey() // []graph.Edge: filter map stage
	kFilterOut = arena.NewKey() // []graph.Edge: filter pack stage
)

// distArray is Filter-Borůvka's distributed component-representative array
// P (§V): P[v] holds a representative for every vertex label, 1D-partitioned
// over the PEs by label range. Each PE stores its owned range as a dense
// slice — Θ(n/p) words, the paper's own array representation — with label 0
// (reserved, vertices are 1-based) marking identity entries. Contractions
// recorded over time form shallow trees; resolve follows them to the roots
// with batched query rounds (the paper contracts them with O(log log n)
// pointer-doubling rounds at the end — we resolve on demand at each filter
// step, which needs the same machinery).
type distArray struct {
	n   uint64      // label space is [1, n]
	tbl []graph.VID // owned range [lo, hi), tbl[v-lo]; 0 = identity
	lo  uint64
	hi  uint64
}

// newDistArray creates P over the label space [1, maxLabel], identity
// everywhere. The dense slice is arena-backed: recycled across jobs, zeroed
// per job.
func newDistArray(c *comm.Comm, maxLabel uint64) *distArray {
	p := uint64(c.P())
	r := uint64(c.Rank())
	n := maxLabel + 1
	d := &distArray{
		n:  n,
		lo: r * n / p,
		hi: (r + 1) * n / p,
	}
	d.tbl = arena.GrabZeroed[graph.VID](c.Scratch(), kDistTbl, int(d.hi-d.lo))
	return d
}

// owner returns the PE owning label v. Monotone non-decreasing in v, so
// sorted labels fill all-to-all buckets in rank order.
func (d *distArray) owner(c *comm.Comm, v graph.VID) int {
	p := uint64(c.P())
	j := v * p / d.n
	for j+1 < p && v >= (j+1)*d.n/p {
		j++
	}
	for j > 0 && v < j*d.n/p {
		j--
	}
	return int(j)
}

// record pushes contraction pairs (v → root) to their owners. Collective:
// all PEs must call together (with possibly empty pair sets).
func (d *distArray) record(c *comm.Comm, pairs []labelPair, opt Options) {
	send := arena.Buckets[labelPair](c.Scratch(), kRecSend, c.P())
	for _, lp := range pairs {
		o := d.owner(c, lp.V)
		send[o] = append(send[o], lp)
	}
	recv := alltoall.Exchange(c, opt.A2A, send)
	for i := range recv {
		for _, lp := range recv[i] {
			d.tbl[lp.V-d.lo] = lp.L
		}
	}
}

// lookup returns the recorded representative of owned label v (identity if
// none recorded).
func (d *distArray) lookup(v graph.VID) graph.VID {
	if next := d.tbl[v-d.lo]; next != 0 {
		return next
	}
	return v
}

// resolve returns the fully-resolved representative for every queried
// label, following chains across PEs in batched rounds. vs must be sorted
// ascending and duplicate-free; the result is aligned with vs and is
// arena-backed (valid until the next resolve on this PE). Collective.
func (d *distArray) resolve(c *comm.Comm, vs []graph.VID, opt Options) []graph.VID {
	a := c.Scratch()
	cur := arena.Grab[graph.VID](a, kResCur, len(vs))
	copy(cur, vs)
	done := arena.GrabZeroed[bool](a, kResDone, len(vs))
	for iter := 0; ; iter++ {
		// Distinct pending targets, ascending: owners are monotone in the
		// label, so the buckets fill in rank order and every PE's query
		// sequence — and with it the reply concatenation below — is sorted.
		tgt := arena.GrabAppend[graph.VID](a, kResTgt)
		for i, v := range cur {
			if !done[i] {
				tgt = append(tgt, v)
			}
		}
		arena.Keep(a, kResTgt, tgt)
		slices.Sort(tgt)
		tgt = slices.Compact(tgt)
		send := arena.Buckets[graph.VID](a, kResSendQ, c.P())
		for _, t := range tgt {
			o := d.owner(c, t)
			send[o] = append(send[o], t)
		}
		recvQ := alltoall.Exchange(c, opt.A2A, send)
		sendR := arena.Buckets[labelPair](a, kResSendR, c.P())
		for from := range recvQ {
			for _, t := range recvQ[from] {
				sendR[from] = append(sendR[from], labelPair{V: t, L: d.lookup(t)})
			}
		}
		recvR := alltoall.Exchange(c, opt.A2A, sendR)
		ans := arena.GrabAppend[labelPair](a, kResAns)
		for i := range recvR {
			ans = append(ans, recvR[i]...)
		}
		arena.Keep(a, kResAns, ans)
		if !slices.IsSortedFunc(ans, lessPairV) {
			slices.SortFunc(ans, lessPairV)
		}
		at := ghostTable{pairs: ans}
		progress := false
		for i, v := range cur {
			if done[i] {
				continue
			}
			next, ok := at.get(v)
			if !ok {
				panic(fmt.Sprintf("core: distributed array resolution: no answer for label %d", v))
			}
			if next == v {
				done[i] = true
			} else {
				cur[i] = next
				progress = true
			}
		}
		if !comm.Allreduce(c, progress, func(a, b bool) bool { return a || b }) {
			break
		}
		if iter > 128 {
			panic("core: distributed array resolution failed to converge")
		}
	}
	return cur
}

// segment is one pending edge set of the Filter-Borůvka recursion.
type segment struct {
	edges       []graph.Edge
	needsFilter bool // must be filtered through P before processing
}

// FilterBoruvka computes the minimum spanning forest with Algorithm 2: one
// local preprocessing pass, then the Filter-Kruskal-style recursion —
// partition at a sampled median pivot, solve the light half with the
// distributed Borůvka base algorithm (recording contractions in P), filter
// the heavy half through P, recurse on the survivors. The recursion is
// realized with an explicit segment stack processed in weight order, which
// also hosts the §VI-C merge-back rule for poorly-filtered segments.
func FilterBoruvka(c *comm.Comm, edges []graph.Edge, layout *graph.Layout, opt Options) Result {
	opt = opt.withDefaults()
	pool := par.NewPool(c.Threads())
	in := makeInputCopy(c, edges)

	maxLabel := uint64(0)
	for _, e := range edges {
		if e.U > maxLabel {
			maxLabel = e.U
		}
	}
	maxLabel = comm.Allreduce(c, maxLabel, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
	P := newDistArray(c, maxLabel)

	var mst []graph.Edge
	res := Result{}
	work, l := edges, layout

	if opt.LocalPreprocessing {
		c.PhaseBegin(PhasePreprocess)
		work, l = localPreprocess(c, work, l, pool, opt, &mst, P)
		c.PhaseEnd()
	}

	stack := []segment{{edges: work}}
	first := true
	for len(stack) > 0 {
		seg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		var segLayout *graph.Layout
		if seg.needsFilter {
			c.PhaseBegin(PhaseFilter)
			seg.edges, segLayout = filterSegment(c, seg.edges, P, pool, opt)
			m := comm.Allreduce(c, len(seg.edges), func(a, b int) int { return a + b })
			c.PhaseEnd()
			// Merge-back (§VI-C): a segment that came out too small is not
			// worth full processing; fold it into the next pending segment.
			if m < int(opt.Filter.MergeBackFraction*float64(opt.Filter.MinEdgesPerPE*c.P()))+1 && len(stack) > 0 {
				top := &stack[len(stack)-1]
				top.edges = append(top.edges, seg.edges...)
				top.needsFilter = true
				continue
			}
		} else if first {
			segLayout, first = l, false
		} else {
			seg.edges = dedupedLayout(c, seg.edges, opt)
			segLayout = graph.BuildLayout(c, seg.edges)
		}

		verifySymmetric(c, seg.edges, "segment-entry")
		m := comm.Allreduce(c, len(seg.edges), func(a, b int) int { return a + b })
		n := graph.GlobalVertexCount(c, segLayout, seg.edges)
		res.EdgesTouched += len(seg.edges)

		sparse := m <= int(opt.Filter.SparseAvgDegree*float64(n)) ||
			m < opt.Filter.MinEdgesPerPE*c.P()
		if sparse {
			// Distributed Borůvka base (no preprocessing, no per-call MST
			// redistribution), recording contractions in P.
			w, wl := seg.edges, segLayout
			r, t, vc := distributedRounds(c, &w, &wl, pool, opt, &mst, P)
			res.VertexCounts = append(res.VertexCounts, vc...)
			res.Rounds += r
			res.EdgesTouched += t
			c.PhaseBegin(PhaseBaseCase)
			baseCase(c, w, wl, &mst, P, opt)
			c.PhaseEnd()
			res.BaseCalls++
			continue
		}

		c.PhaseBegin(PhaseFilter)
		pivot, ok := pivotSelect(c, seg.edges, opt)
		var light, heavy []graph.Edge
		if ok {
			light, heavy = partitionAtPivot(seg.edges, pivot, pool)
			c.ChargeCompute(len(seg.edges))
		}
		heavyM := comm.Allreduce(c, len(heavy), func(a, b int) int { return a + b })
		c.PhaseEnd()
		if !ok || heavyM == 0 {
			// Degenerate pivot: no split possible; solve directly.
			w, wl := seg.edges, segLayout
			r, t, vc := distributedRounds(c, &w, &wl, pool, opt, &mst, P)
			res.VertexCounts = append(res.VertexCounts, vc...)
			res.Rounds += r
			res.EdgesTouched += t
			c.PhaseBegin(PhaseBaseCase)
			baseCase(c, w, wl, &mst, P, opt)
			c.PhaseEnd()
			res.BaseCalls++
			continue
		}
		// Heavy first onto the stack so the light half is processed first.
		stack = append(stack, segment{edges: heavy, needsFilter: true})
		stack = append(stack, segment{edges: light})
	}

	c.PhaseBegin(PhaseBaseCase)
	out := redistributeMST(c, mst, in, opt)
	c.PhaseEnd()
	res.MSTEdges = out
	res.TotalWeight, res.NumEdges = globalWeight(c, out)
	return res
}

// dedupedLayout prepares an unfiltered light segment: it is already a
// sorted subsequence per PE; parallel copies may remain from its parent and
// are reduced here when enabled.
func dedupedLayout(c *comm.Comm, edges []graph.Edge, opt Options) []graph.Edge {
	if opt.DedupParallel {
		return dedupSorted(c, edges)
	}
	return edges
}

// pivotSelect draws SamplesPerPE random edges per PE, gathers them, and
// returns the median under the unique weight order (§V: the paper sorts
// the sample with a distributed sorter and broadcasts the median — a
// gathered sample yields the identical pivot). ok is false when the
// segment is globally empty.
func pivotSelect(c *comm.Comm, edges []graph.Edge, opt Options) (graph.Edge, bool) {
	r := rng.New(opt.Seed ^ 0xF117).Split(uint64(c.Rank()))
	samples := make([]graph.Edge, 0, opt.Filter.SamplesPerPE)
	for i := 0; i < opt.Filter.SamplesPerPE && len(edges) > 0; i++ {
		samples = append(samples, edges[r.Intn(len(edges))])
	}
	all := comm.AllgatherConcat(c, samples)
	if len(all) == 0 {
		return graph.Edge{}, false
	}
	slices.SortFunc(all, graph.CmpWeight)
	return all[len(all)/2], true
}

// weightClassLess orders edges by (W, TB) only — a strict total order on
// logical undirected edges under which an edge and its back edge compare
// equal. The partition MUST use this order: the finer LessWeight breaks
// ties by current endpoint and ID, which would send the two directed
// copies of the pivot's own weight class to different sides and destroy
// the symmetric-representation invariant.
func weightClassLess(a, b graph.Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.TB < b.TB
}

// partitionAtPivot splits edges into (≤ pivot, > pivot) under the weight-
// class order, preserving local sortedness (stable filters of a sorted
// sequence stay sorted). Both directed copies of an edge share the weight
// class, so the symmetric invariant is preserved on both sides. The halves
// are owned (not arena-backed): they live on the recursion stack across an
// unbounded number of rounds.
func partitionAtPivot(edges []graph.Edge, pivot graph.Edge, pool *par.Pool) (light, heavy []graph.Edge) {
	light = par.Filter(pool, edges, func(e graph.Edge) bool { return !weightClassLess(pivot, e) })
	heavy = par.Filter(pool, edges, func(e graph.Edge) bool { return weightClassLess(pivot, e) })
	return light, heavy
}

// filterSegment implements FILTER (§V): resolve every endpoint through P,
// drop intra-component edges (now self-loops), and redistribute the
// survivors into a fresh sorted, deduplicated, balanced distribution.
func filterSegment(c *comm.Comm, edges []graph.Edge, P *distArray,
	pool *par.Pool, opt Options) ([]graph.Edge, *graph.Layout) {

	a := c.Scratch()
	// Distinct endpoints, sorted: the dense stand-in for the former hash
	// set, and the rename table the relabeling below binary-searches.
	vs := arena.GrabAppend[graph.VID](a, kFilterVs)
	for _, e := range edges {
		vs = append(vs, e.U, e.V)
	}
	arena.Keep(a, kFilterVs, vs)
	slices.Sort(vs)
	vs = slices.Compact(vs)
	reps := P.resolve(c, vs, opt)
	apply := func(e graph.Edge) graph.Edge {
		e.U = reps[lookupVID(vs, e.U)]
		e.V = reps[lookupVID(vs, e.V)]
		return e
	}
	out := par.MapInto(pool, arena.Grab[graph.Edge](a, kFilterTmp, len(edges)), edges, apply)
	out = par.FilterInto(pool, arena.Grab[graph.Edge](a, kFilterOut, len(edges)), out,
		func(e graph.Edge) bool { return e.U != e.V })
	c.ChargeCompute(len(edges))
	return redistribute(c, out, opt)
}
