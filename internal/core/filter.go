package core

import (
	"sort"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/par"
	"kamsta/internal/rng"
)

// distArray is Filter-Borůvka's distributed component-representative array
// P (§V): conceptually P[v] holds a representative for every vertex label,
// 1D-partitioned over the PEs by label range. Only non-identity entries are
// stored. Contractions recorded over time form shallow trees; resolve
// follows them to the roots with batched query rounds (the paper contracts
// them with O(log log n) pointer-doubling rounds at the end — we resolve on
// demand at each filter step, which needs the same machinery).
type distArray struct {
	n  uint64 // label space is [1, n]
	m  map[graph.VID]graph.VID
	lo uint64 // owned label range [lo, hi)
	hi uint64
}

// newDistArray creates P over the label space [1, maxLabel], identity
// everywhere.
func newDistArray(c *comm.Comm, maxLabel uint64) *distArray {
	p := uint64(c.P())
	r := uint64(c.Rank())
	n := maxLabel + 1
	return &distArray{
		n:  n,
		m:  make(map[graph.VID]graph.VID),
		lo: r * n / p,
		hi: (r + 1) * n / p,
	}
}

// owner returns the PE owning label v.
func (d *distArray) owner(c *comm.Comm, v graph.VID) int {
	p := uint64(c.P())
	j := v * p / d.n
	for j+1 < p && v >= (j+1)*d.n/p {
		j++
	}
	for j > 0 && v < j*d.n/p {
		j--
	}
	return int(j)
}

// record pushes contraction pairs (v → root) to their owners. Collective:
// all PEs must call together (with possibly empty pair sets).
func (d *distArray) record(c *comm.Comm, pairs []labelPair, opt Options) {
	send := make([][]labelPair, c.P())
	for _, lp := range pairs {
		o := d.owner(c, lp.V)
		send[o] = append(send[o], lp)
	}
	recv := alltoall.Exchange(c, opt.A2A, send)
	for i := range recv {
		for _, lp := range recv[i] {
			d.m[lp.V] = lp.L
		}
	}
}

// resolve returns the fully-resolved representative for every queried
// label, following chains across PEs in batched rounds. Collective.
func (d *distArray) resolve(c *comm.Comm, vs []graph.VID, opt Options) map[graph.VID]graph.VID {
	r := make(map[graph.VID]graph.VID, len(vs))
	done := make(map[graph.VID]bool, len(vs))
	for _, v := range vs {
		r[v] = v
	}
	for iter := 0; ; iter++ {
		// Distinct pending targets.
		targetSet := make(map[graph.VID]struct{})
		for v, cur := range r {
			if !done[v] {
				targetSet[cur] = struct{}{}
			}
		}
		send := make([][]graph.VID, c.P())
		for t := range targetSet {
			o := d.owner(c, t)
			send[o] = append(send[o], t)
		}
		recvQ := alltoall.Exchange(c, opt.A2A, send)
		sendR := make([][]labelPair, c.P())
		for from := range recvQ {
			for _, t := range recvQ[from] {
				next, ok := d.m[t]
				if !ok {
					next = t
				}
				sendR[from] = append(sendR[from], labelPair{V: t, L: next})
			}
		}
		recvR := alltoall.Exchange(c, opt.A2A, sendR)
		ans := make(map[graph.VID]graph.VID, len(targetSet))
		for i := range recvR {
			for _, lp := range recvR[i] {
				ans[lp.V] = lp.L
			}
		}
		progress := false
		for v, cur := range r {
			if done[v] {
				continue
			}
			next := ans[cur]
			if next == cur {
				done[v] = true
			} else {
				r[v] = next
				progress = true
			}
		}
		if !comm.Allreduce(c, progress, func(a, b bool) bool { return a || b }) {
			break
		}
		if iter > 128 {
			panic("core: distributed array resolution failed to converge")
		}
	}
	return r
}

// segment is one pending edge set of the Filter-Borůvka recursion.
type segment struct {
	edges       []graph.Edge
	needsFilter bool // must be filtered through P before processing
}

// FilterBoruvka computes the minimum spanning forest with Algorithm 2: one
// local preprocessing pass, then the Filter-Kruskal-style recursion —
// partition at a sampled median pivot, solve the light half with the
// distributed Borůvka base algorithm (recording contractions in P), filter
// the heavy half through P, recurse on the survivors. The recursion is
// realized with an explicit segment stack processed in weight order, which
// also hosts the §VI-C merge-back rule for poorly-filtered segments.
func FilterBoruvka(c *comm.Comm, edges []graph.Edge, layout *graph.Layout, opt Options) Result {
	opt = opt.withDefaults()
	pool := par.NewPool(c.Threads())
	in := makeInputCopy(c, edges)

	maxLabel := uint64(0)
	for _, e := range edges {
		if e.U > maxLabel {
			maxLabel = e.U
		}
	}
	maxLabel = comm.Allreduce(c, maxLabel, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
	P := newDistArray(c, maxLabel)

	var mst []graph.Edge
	res := Result{}
	work, l := edges, layout

	if opt.LocalPreprocessing {
		c.PhaseBegin(PhasePreprocess)
		work, l = localPreprocess(c, work, l, pool, opt, &mst, P)
		c.PhaseEnd()
	}

	stack := []segment{{edges: work}}
	first := true
	for len(stack) > 0 {
		seg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		var segLayout *graph.Layout
		if seg.needsFilter {
			c.PhaseBegin(PhaseFilter)
			seg.edges, segLayout = filterSegment(c, seg.edges, P, pool, opt)
			m := comm.Allreduce(c, len(seg.edges), func(a, b int) int { return a + b })
			c.PhaseEnd()
			// Merge-back (§VI-C): a segment that came out too small is not
			// worth full processing; fold it into the next pending segment.
			if m < int(opt.Filter.MergeBackFraction*float64(opt.Filter.MinEdgesPerPE*c.P()))+1 && len(stack) > 0 {
				top := &stack[len(stack)-1]
				top.edges = append(top.edges, seg.edges...)
				top.needsFilter = true
				continue
			}
		} else if first {
			segLayout, first = l, false
		} else {
			seg.edges = dedupedLayout(c, seg.edges, opt)
			segLayout = graph.BuildLayout(c, seg.edges)
		}

		verifySymmetric(c, seg.edges, "segment-entry")
		m := comm.Allreduce(c, len(seg.edges), func(a, b int) int { return a + b })
		n := graph.GlobalVertexCount(c, segLayout, seg.edges)
		res.EdgesTouched += len(seg.edges)

		sparse := m <= int(opt.Filter.SparseAvgDegree*float64(n)) ||
			m < opt.Filter.MinEdgesPerPE*c.P()
		if sparse {
			// Distributed Borůvka base (no preprocessing, no per-call MST
			// redistribution), recording contractions in P.
			w, wl := seg.edges, segLayout
			r, t, vc := distributedRounds(c, &w, &wl, pool, opt, &mst, P)
			res.VertexCounts = append(res.VertexCounts, vc...)
			res.Rounds += r
			res.EdgesTouched += t
			c.PhaseBegin(PhaseBaseCase)
			baseCase(c, w, wl, &mst, P, opt)
			c.PhaseEnd()
			res.BaseCalls++
			continue
		}

		c.PhaseBegin(PhaseFilter)
		pivot, ok := pivotSelect(c, seg.edges, opt)
		var light, heavy []graph.Edge
		if ok {
			light, heavy = partitionAtPivot(seg.edges, pivot, pool)
			c.ChargeCompute(len(seg.edges))
		}
		heavyM := comm.Allreduce(c, len(heavy), func(a, b int) int { return a + b })
		c.PhaseEnd()
		if !ok || heavyM == 0 {
			// Degenerate pivot: no split possible; solve directly.
			w, wl := seg.edges, segLayout
			r, t, vc := distributedRounds(c, &w, &wl, pool, opt, &mst, P)
			res.VertexCounts = append(res.VertexCounts, vc...)
			res.Rounds += r
			res.EdgesTouched += t
			c.PhaseBegin(PhaseBaseCase)
			baseCase(c, w, wl, &mst, P, opt)
			c.PhaseEnd()
			res.BaseCalls++
			continue
		}
		// Heavy first onto the stack so the light half is processed first.
		stack = append(stack, segment{edges: heavy, needsFilter: true})
		stack = append(stack, segment{edges: light})
	}

	c.PhaseBegin(PhaseBaseCase)
	out := redistributeMST(c, mst, in, opt)
	c.PhaseEnd()
	res.MSTEdges = out
	res.TotalWeight, res.NumEdges = globalWeight(c, out)
	return res
}

// dedupedLayout prepares an unfiltered light segment: it is already a
// sorted subsequence per PE; parallel copies may remain from its parent and
// are reduced here when enabled.
func dedupedLayout(c *comm.Comm, edges []graph.Edge, opt Options) []graph.Edge {
	if opt.DedupParallel {
		return dedupSorted(c, edges)
	}
	return edges
}

// pivotSelect draws SamplesPerPE random edges per PE, gathers them, and
// returns the median under the unique weight order (§V: the paper sorts
// the sample with a distributed sorter and broadcasts the median — a
// gathered sample yields the identical pivot). ok is false when the
// segment is globally empty.
func pivotSelect(c *comm.Comm, edges []graph.Edge, opt Options) (graph.Edge, bool) {
	r := rng.New(opt.Seed ^ 0xF117).Split(uint64(c.Rank()))
	samples := make([]graph.Edge, 0, opt.Filter.SamplesPerPE)
	for i := 0; i < opt.Filter.SamplesPerPE && len(edges) > 0; i++ {
		samples = append(samples, edges[r.Intn(len(edges))])
	}
	all := comm.AllgatherConcat(c, samples)
	if len(all) == 0 {
		return graph.Edge{}, false
	}
	sort.Slice(all, func(i, j int) bool { return graph.LessWeight(all[i], all[j]) })
	return all[len(all)/2], true
}

// weightClassLess orders edges by (W, TB) only — a strict total order on
// logical undirected edges under which an edge and its back edge compare
// equal. The partition MUST use this order: the finer LessWeight breaks
// ties by current endpoint and ID, which would send the two directed
// copies of the pivot's own weight class to different sides and destroy
// the symmetric-representation invariant.
func weightClassLess(a, b graph.Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.TB < b.TB
}

// partitionAtPivot splits edges into (≤ pivot, > pivot) under the weight-
// class order, preserving local sortedness (stable filters of a sorted
// sequence stay sorted). Both directed copies of an edge share the weight
// class, so the symmetric invariant is preserved on both sides.
func partitionAtPivot(edges []graph.Edge, pivot graph.Edge, pool *par.Pool) (light, heavy []graph.Edge) {
	light = par.Filter(pool, edges, func(e graph.Edge) bool { return !weightClassLess(pivot, e) })
	heavy = par.Filter(pool, edges, func(e graph.Edge) bool { return weightClassLess(pivot, e) })
	return light, heavy
}

// filterSegment implements FILTER (§V): resolve every endpoint through P,
// drop intra-component edges (now self-loops), and redistribute the
// survivors into a fresh sorted, deduplicated, balanced distribution.
func filterSegment(c *comm.Comm, edges []graph.Edge, P *distArray,
	pool *par.Pool, opt Options) ([]graph.Edge, *graph.Layout) {

	distinct := make(map[graph.VID]struct{}, len(edges))
	for _, e := range edges {
		distinct[e.U] = struct{}{}
		distinct[e.V] = struct{}{}
	}
	vs := make([]graph.VID, 0, len(distinct))
	for v := range distinct {
		vs = append(vs, v)
	}
	reps := P.resolve(c, vs, opt)
	out := par.Map(pool, edges, func(e graph.Edge) graph.Edge {
		e.U = reps[e.U]
		e.V = reps[e.V]
		return e
	})
	out = par.Filter(pool, out, func(e graph.Edge) bool { return e.U != e.V })
	c.ChargeCompute(len(edges))
	return redistribute(c, out, opt)
}
