package core

import (
	"context"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/obs"
	"kamsta/internal/par"
	"kamsta/internal/rng"
)

// Hot-path microbenchmarks for the per-round vertex bookkeeping. They run on
// a 1-PE world so the numbers isolate the local work (table upkeep, lookup,
// allocation) of one Borůvka round rather than the simulated wire. One
// warm-up call before the timer puts the arena in steady state — the regime
// every round after the first runs in.
var benchSpec = gen.Spec{Family: gen.GNM, N: 1 << 12, M: 1 << 15, Seed: 42}

func benchWorld(f func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool)) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, benchSpec, dsort.Options{})
		f(c, edges, layout, par.NewPool(1))
	})
}

// shuffleEdges returns a deterministically shuffled copy: the sorters'
// real inputs (raw generator output, freshly relabeled rounds) are
// unsorted, while gen.Build hands back sorted data — benchmarking that
// directly would only measure the already-sorted fast paths.
func shuffleEdges(edges []graph.Edge, seed uint64) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	copy(out, edges)
	r := rng.New(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// BenchmarkDsortP1 isolates the local phase of the distributed sorter (the
// dominant allocator of every job before PR 5): one PE, the full benchSpec
// edge set, (U,V)-keyed radix local sort, arena-backed output. Steady-state
// allocs/op must be zero — asserted by TestDsortSteadyStateAllocsFloor.
func BenchmarkDsortP1(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		in := shuffleEdges(edges, 99)
		ord := dsort.ByKey(graph.LessLex, graph.KeyLex)
		dsort.Sort(c, in, ord, dsort.Options{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dsort.Sort(c, in, ord, dsort.Options{})
		}
	})
}

// BenchmarkDsortSampleSortP8 runs the full distributed sample sort on 8 PEs
// (2^13 unsorted edges per PE): what remains in allocs/op is the
// collective-internal floor (wire frames, staged copies), not per-call
// vertex/edge buffers.
func BenchmarkDsortSampleSortP8(b *testing.B) {
	w := comm.NewWorld(8)
	w.Run(func(c *comm.Comm) {
		edges, _ := gen.Build(c, gen.Spec{Family: gen.GNM, N: 1 << 12, M: 1 << 15, Seed: 42}, dsort.Options{})
		local := shuffleEdges(edges[:min(len(edges), 1<<13)], uint64(c.Rank()))
		ord := dsort.ByKey(graph.LessLex, graph.KeyLex)
		dsort.Sort(c, local, ord, dsort.Options{Alg: dsort.SampleSort})
		if c.Rank() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		comm.Barrier(c)
		for i := 0; i < b.N; i++ {
			dsort.Sort(c, local, ord, dsort.Options{Alg: dsort.SampleSort})
		}
	})
}

// TestDsortSteadyStateAllocsFloor pins the tentpole's de-allocation claim:
// after warm-up, a 1-PE sort (no collectives, so no substrate floor)
// performs ZERO heap allocations per call — every buffer, including the
// returned chunk, lives in the world-owned arena.
func TestDsortSteadyStateAllocsFloor(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		edges, _ := gen.Build(c, benchSpec, dsort.Options{})
		ord := dsort.ByKey(graph.LessLex, graph.KeyLex)
		dsort.Sort(c, edges, ord, dsort.Options{}) // warm the arena
		allocs := testing.AllocsPerRun(5, func() {
			dsort.Sort(c, edges, ord, dsort.Options{})
		})
		if allocs != 0 {
			t.Errorf("steady-state p=1 dsort.Sort allocates %v times per call, want 0", allocs)
		}
	})
}

// TestDsortSteadyStateAllocsFloorObserved repeats the zero-alloc floor with
// the observability subsystem fully armed — metrics registry on the world,
// span tracing on the job. Observation must not add a single allocation to
// the steady-state hot path: instruments are resolved once into plain
// pointers at job start and spans land in a preallocated world-owned ring.
func TestDsortSteadyStateAllocsFloorObserved(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	w := comm.NewWorld(1, comm.WithMetrics(reg))
	err := w.RunJobCfg(context.Background(), comm.JobConfig{Trace: tr}, func(c *comm.Comm) {
		edges, _ := gen.Build(c, benchSpec, dsort.Options{})
		ord := dsort.ByKey(graph.LessLex, graph.KeyLex)
		dsort.Sort(c, edges, ord, dsort.Options{}) // warm the arena
		allocs := testing.AllocsPerRun(5, func() {
			dsort.Sort(c, edges, ord, dsort.Options{})
		})
		if allocs != 0 {
			t.Errorf("steady-state observed p=1 dsort.Sort allocates %v times per call, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinEdges(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		minEdges(c, edges, l, pool)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			minEdges(c, edges, l, pool)
		}
	})
}

func BenchmarkContractComponents(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		opt := Options{}.withDefaults()
		mins := minEdges(c, edges, l, pool)
		var mst []graph.Edge
		contractComponents(c, edges, l, mins, opt, &mst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mst = mst[:0]
			contractComponents(c, edges, l, mins, opt, &mst)
		}
	})
}

func BenchmarkRelabelFilter(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		opt := Options{}.withDefaults()
		mins := minEdges(c, edges, l, pool)
		var mst []graph.Edge
		labels := contractComponents(c, edges, l, mins, opt, &mst)
		ghost := exchangeLabels(c, edges, l, labels, opt)
		relabel(c, edges, l, labels, ghost, pool, true, c.Scratch())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			relabel(c, edges, l, labels, ghost, pool, true, c.Scratch())
		}
	})
}
