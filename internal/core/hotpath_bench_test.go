package core

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// Hot-path microbenchmarks for the per-round vertex bookkeeping. They run on
// a 1-PE world so the numbers isolate the local work (table upkeep, lookup,
// allocation) of one Borůvka round rather than the simulated wire. One
// warm-up call before the timer puts the arena in steady state — the regime
// every round after the first runs in.
var benchSpec = gen.Spec{Family: gen.GNM, N: 1 << 12, M: 1 << 15, Seed: 42}

func benchWorld(f func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool)) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, benchSpec, dsort.Options{})
		f(c, edges, layout, par.NewPool(1))
	})
}

func BenchmarkMinEdges(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		minEdges(c, edges, l, pool)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			minEdges(c, edges, l, pool)
		}
	})
}

func BenchmarkContractComponents(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		opt := Options{}.withDefaults()
		mins := minEdges(c, edges, l, pool)
		var mst []graph.Edge
		contractComponents(c, edges, l, mins, opt, &mst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mst = mst[:0]
			contractComponents(c, edges, l, mins, opt, &mst)
		}
	})
}

func BenchmarkRelabelFilter(b *testing.B) {
	benchWorld(func(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) {
		opt := Options{}.withDefaults()
		mins := minEdges(c, edges, l, pool)
		var mst []graph.Edge
		labels := contractComponents(c, edges, l, mins, opt, &mst)
		ghost := exchangeLabels(c, edges, l, labels, opt)
		relabel(c, edges, l, labels, ghost, pool, true, c.Scratch())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			relabel(c, edges, l, labels, ghost, pool, true, c.Scratch())
		}
	})
}
