package core

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
)

// TestSymmetricInvariantMaintained runs Filter-Borůvka with the expensive
// global symmetry verification enabled: at every recursion segment entry,
// each directed edge must have its reverse copy somewhere in the world.
// This is the structural invariant (§II-B) that MINEDGES and the label
// exchange rely on; a partition or dedup bug breaks it silently otherwise
// (historically: partitioning with the endpoint-tie-breaking order split
// the two copies of the pivot's weight class onto different sides).
func TestSymmetricInvariantMaintained(t *testing.T) {
	debugChecks = true
	defer func() { debugChecks = false }()
	for _, spec := range testSpecs() {
		for _, p := range []int{2, 7} {
			w := comm.NewWorld(p)
			w.Run(func(c *comm.Comm) {
				edges, layout := gen.Build(c, spec, dsort.Options{})
				opt := Options{LocalPreprocessing: true, LocalFilter: true, HashDedup: true,
					DedupParallel: true, BaseCaseCap: 16,
					Filter: FilterOptions{MinEdgesPerPE: 32, MergeBackFraction: 0.25}}
				FilterBoruvka(c, edges, layout, opt)
			})
		}
	}
}
