package core

import (
	"math"
	"sort"

	"kamsta/internal/arena"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
)

// Arena keys of the base case's replicated working set. Like the per-round
// tables, these recycle across base-case rounds, invocations (Filter-
// Borůvka calls the base case once per recursion leaf) and jobs.
var (
	kBaseLocal  = arena.NewKey() // []graph.VID: distinct local sources
	kBaseVerts  = arena.NewKey() // []graph.VID: replicated dense rename table
	kBaseWork   = arena.NewKey() // []dEdge: local edges with dense endpoints
	kBaseVec    = arena.NewKey() // []cand: per-round allreduce input vector
	kBaseParent = arena.NewKey() // []int32: replicated contraction forest
	kBasePairs  = arena.NewKey() // []labelPair: contraction records for P
)

// dEdge is a base-case working edge: dense endpoints packed beside the
// original.
type dEdge struct {
	u, v int32
	e    graph.Edge
}

// cand is the base case's allreduce element: the lightest known edge into a
// vertex.
type cand struct {
	W    graph.Weight
	TB   uint64
	Dst  int32
	Rank int32
	Idx  int32 // index into the winner's local work slice
}

// baseCase finishes the MST computation once the global number of vertices
// fits on one PE (§IV-D, following Adler et al.): vertex labels are
// remapped to a dense range and replicated, the lightest edge per vertex is
// found with an allreduce of vector length n′, and the contraction itself
// is a replicated local computation — edges stay distributed, unsorted.
// Identified MST edges are appended to mst on the PE that owns the winning
// edge. When rec is non-nil, every contraction is recorded in the
// distributed representative array (Filter-Borůvka's P).
func baseCase(c *comm.Comm, edges []graph.Edge, l *graph.Layout, mst *[]graph.Edge, rec *distArray, opt Options) {
	a := c.Scratch()
	// Dense remap: gather the distinct live labels. Each PE contributes its
	// distinct sources, skipping a first run continued from the previous
	// non-empty PE; the rank-ordered concatenation of sorted chunks is
	// globally sorted.
	local := arena.GrabAppend[graph.VID](a, kBaseLocal)
	for lo := 0; lo < len(edges); {
		hi := lo + 1
		for hi < len(edges) && edges[hi].U == edges[lo].U {
			hi++
		}
		local = append(local, edges[lo].U)
		lo = hi
	}
	arena.Keep(a, kBaseLocal, local)
	if len(local) > 0 {
		for i := c.Rank() - 1; i >= 0; i-- {
			if l.Counts[i] > 0 {
				if l.Last[i].U == local[0] {
					local = local[1:]
				}
				break
			}
		}
	}
	verts := comm.AllgatherConcatInto(c, arena.GrabAppend[graph.VID](a, kBaseVerts), local)
	arena.Keep(a, kBaseVerts, verts)
	n := len(verts)
	if n == 0 {
		return
	}
	dense := func(v graph.VID) int32 {
		i := sort.Search(n, func(i int) bool { return verts[i] >= v })
		return int32(i)
	}

	// Working copy with dense endpoints packed beside the edge.
	work := arena.Grab[dEdge](a, kBaseWork, len(edges))
	for i, e := range edges {
		work[i] = dEdge{u: dense(e.U), v: dense(e.V), e: e}
	}
	c.ChargeCompute(len(edges) * log2ceilInt(n+1))

	empty := cand{W: math.MaxUint32, TB: math.MaxUint64}
	less := func(a, b cand) bool {
		if a.W != b.W {
			return a.W < b.W
		}
		if a.TB != b.TB {
			return a.TB < b.TB
		}
		return a.Rank < b.Rank // deterministic winner among equal copies
	}

	parent := arena.Grab[int32](a, kBaseParent, n)
	for round := 0; ; round++ {
		vec := arena.Grab[cand](a, kBaseVec, n)
		for i := range vec {
			vec[i] = empty
		}
		for i, de := range work {
			if de.u == de.v {
				continue
			}
			cd := cand{W: de.e.W, TB: de.e.TB, Dst: de.v, Rank: int32(c.Rank()), Idx: int32(i)}
			if less(cd, vec[de.u]) {
				vec[de.u] = cd
			}
			rd := cand{W: de.e.W, TB: de.e.TB, Dst: de.u, Rank: int32(c.Rank()), Idx: int32(i)}
			if less(rd, vec[de.v]) {
				vec[de.v] = rd
			}
		}
		c.ChargeCompute(len(work))
		global := comm.AllreduceVec(c, vec, func(a, b cand) cand {
			if less(a, b) {
				return a
			}
			return b
		})

		// Replicated contraction: identical on every PE.
		merged := false
		for i := range parent {
			parent[i] = int32(i)
		}
		for u := 0; u < n; u++ {
			g := global[u]
			if g.W == math.MaxUint32 {
				continue
			}
			v := g.Dst
			// 2-cycle tie-break: mutual minimum keeps the smaller index.
			gv := global[v]
			if gv.W != math.MaxUint32 && gv.Dst == int32(u) && gv.TB == g.TB && int32(u) < v {
				continue // we are the designated root of this 2-cycle
			}
			parent[u] = v
			merged = true
			// The PE owning the winning copy emits the MST edge.
			if g.Rank == int32(c.Rank()) {
				*mst = append(*mst, work[g.Idx].e)
			}
		}
		if !merged {
			break
		}
		// Pointer jumping to roots (replicated, no communication).
		for i := range parent {
			r := parent[i]
			for parent[r] != r {
				r = parent[r]
			}
			for parent[i] != r {
				parent[i], i = r, int(parent[i])
			}
		}
		c.ChargeCompute(n)
		if rec != nil {
			pairs := arena.GrabAppend[labelPair](a, kBasePairs)
			for i := 0; i < n; i++ {
				if parent[i] != int32(i) {
					pairs = append(pairs, labelPair{V: verts[i], L: verts[parent[i]]})
				}
			}
			arena.Keep(a, kBasePairs, pairs)
			rec.record(c, pairs, opt)
		}
		// Relabel the local edges and drop self-loops.
		kept := work[:0]
		for _, de := range work {
			de.u = parent[de.u]
			de.v = parent[de.v]
			if de.u != de.v {
				kept = append(kept, de)
			}
		}
		// Indices into work change after compaction; but vec/global are
		// rebuilt from scratch next round, so no fixup is needed.
		work = kept
		c.ChargeCompute(len(work))
		if round > 64 {
			panic("core: base case failed to converge")
		}
	}
}

func log2ceilInt(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}
