package core

import (
	"fmt"
	"slices"

	"kamsta/internal/alltoall"
	"kamsta/internal/arena"
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// Arena keys of the per-round dense tables and send buckets. One set of
// keys per process; every PE's arena has its own storage behind them. A key
// is re-grabbed once per round, so a slot's previous round's contents are
// dead by the time it is reused (see the lifecycle notes in DESIGN.md §8).
var (
	kRanges     = arena.NewKey() // []graph.VertexRange: per-source runs
	kMins       = arena.NewKey() // []minEdge: minimum-edge selection
	kVerts      = arena.NewKey() // []graph.VID: dense rename table
	kParent     = arena.NewKey() // []parentEntry: pointer-doubling state
	kEmit       = arena.NewKey() // []int32: candidate MST edge per vertex
	kLabels     = arena.NewKey() // []graph.VID: component labels
	kSendQ      = arena.NewKey() // [][]query buckets
	kSendR      = arena.NewKey() // [][]reply buckets
	kSendLbl    = arena.NewKey() // [][]labelPair buckets (exchangeLabels)
	kGhost      = arena.NewKey() // []labelPair: sorted ghost label table
	kRelabelTmp = arena.NewKey() // []graph.Edge: relabel map stage
	kRelabelOut = arena.NewKey() // []graph.Edge: relabel filter stage
	kRecPairs   = arena.NewKey() // []labelPair: contraction records for P
	kRecSend    = arena.NewKey() // [][]labelPair buckets (distArray.record)
	kDirect     = arena.NewKey() // []int32: O(1) window-indexed rename table
)

// minEdge pairs a local vertex with its lightest incident edge's index in
// the local edge slice.
type minEdge struct {
	v   graph.VID
	idx int
}

// minEdges finds, for every non-shared local vertex, the lightest incident
// edge (§IV, MINEDGES). Shared vertices are skipped — they become component
// roots and are contracted only in the base case. Because the edge sequence
// is symmetric and sorted, a non-shared vertex's full neighborhood is its
// contiguous source range, so this is a communication-free segmented min.
// The result is in ascending vertex order (ranges are sorted), which is what
// makes the dense tables of contractComponents index-ordered.
func minEdges(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) []minEdge {
	a := c.Scratch()
	ranges := graph.AppendLocalRanges(arena.GrabAppend[graph.VertexRange](a, kRanges), edges)
	arena.Keep(a, kRanges, ranges)
	out := arena.Grab[minEdge](a, kMins, len(ranges))
	pool.For(len(ranges), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			r := ranges[k]
			if l.IsSharedOn(r.V, c.Rank()) {
				out[k] = minEdge{v: r.V, idx: -1}
				continue
			}
			best := r.Lo
			for i := r.Lo + 1; i < r.Hi; i++ {
				if graph.LessWeight(edges[i], edges[best]) {
					best = i
				}
			}
			out[k] = minEdge{v: r.V, idx: best}
		}
	})
	c.ChargeCompute(len(edges))
	// Compact away the shared vertices (in place; writes trail reads).
	kept := out[:0]
	for _, me := range out {
		if me.idx >= 0 {
			kept = append(kept, me)
		}
	}
	return kept
}

// parentEntry is the pointer-doubling state of one local vertex.
type parentEntry struct {
	cur  graph.VID // current pointer along the tree
	done bool      // cur is the component root
}

// labelPair carries a vertex → label assignment between PEs.
type labelPair struct {
	V, L graph.VID
}

// denseLabels is the per-round component labeling: verts is the ascending
// set of this PE's non-shared local vertices and labels is aligned with it.
// It replaces the former map[VID]VID — lookups are index-based, and
// iteration is in index order, which makes every derived message sequence
// deterministic.
//
// When the vertex IDs span a window not much larger than their count — the
// §II-B consecutive-ID guarantee makes this the common case in early
// rounds — direct holds an O(1) window-indexed rename table; otherwise
// lookups binary-search (or gallop over) verts.
type denseLabels struct {
	verts  []graph.VID
	labels []graph.VID
	base   graph.VID
	direct []int32 // direct[v-base] = index into verts, -1 = absent; may be nil
}

// directWindow returns the size of the direct rename table for verts, or 0
// when the ID span exceeds 4·|verts|+1024 — too sparse, so lookups fall
// back to searching.
func directWindow(verts []graph.VID) int {
	if len(verts) == 0 {
		return 0
	}
	span := verts[len(verts)-1] - verts[0] + 1
	if span <= uint64(4*len(verts)+1024) {
		return int(span)
	}
	return 0
}

// get returns the label of v, if v is in the table.
func (d denseLabels) get(v graph.VID) (graph.VID, bool) {
	if d.direct != nil {
		if v < d.base || v >= d.base+graph.VID(len(d.direct)) {
			return 0, false
		}
		if i := d.direct[v-d.base]; i >= 0 {
			return d.labels[i], true
		}
		return 0, false
	}
	if i, ok := slices.BinarySearch(d.verts, v); ok {
		return d.labels[i], true
	}
	return 0, false
}

func (d denseLabels) len() int { return len(d.verts) }

// ghostTable resolves ghost vertices to their new labels: pairs sorted
// ascending by vertex, looked up by binary search. It replaces the former
// ghost map.
type ghostTable struct {
	pairs []labelPair
}

func (g ghostTable) get(v graph.VID) (graph.VID, bool) {
	i, ok := slices.BinarySearchFunc(g.pairs, v, func(p labelPair, v graph.VID) int {
		switch {
		case p.V < v:
			return -1
		case p.V > v:
			return 1
		}
		return 0
	})
	if !ok {
		return 0, false
	}
	return g.pairs[i].L, true
}

func (g ghostTable) len() int { return len(g.pairs) }

// lookupVID returns the index of v in the ascending verts, or -1.
func lookupVID(verts []graph.VID, v graph.VID) int {
	if i, ok := slices.BinarySearch(verts, v); ok {
		return i
	}
	return -1
}

// gallopSearch returns the position of the first element ≥ v in xs[from:]
// (as an absolute index) and whether it equals v, probing exponentially from
// `from`. For an ascending query sequence with a moving base this makes a
// scan of k lookups over an n-table cost O(k·log(n/k)) instead of
// O(k·log n) — the lookup pattern of relabeling a sorted edge range.
func gallopSearch(xs []graph.VID, v graph.VID, from int) (pos int, ok bool) {
	n := len(xs)
	if from >= n {
		return n, false
	}
	if xs[from] >= v {
		return from, xs[from] == v
	}
	lo, step := from, 1
	for lo+step < n && xs[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := lo + step + 1
	if hi > n {
		hi = n
	}
	i, found := slices.BinarySearch(xs[lo+1:hi], v)
	return lo + 1 + i, found
}

// contractComponents converts the pseudo-trees induced by the minimum edges
// into rooted stars by distributed pointer doubling (§IV-B) and returns the
// component root label of every non-shared local vertex, appending the
// identified MST edges to mst. Shared vertices are declared roots, which
// both breaks pseudo-tree 2-cycles touching them and eliminates the
// contention the paper observes at high-degree vertices: a pointer to a
// shared vertex is resolved locally from the replicated layout, with no
// message to its (hot) home PE.
//
// All state is dense: mins arrives in ascending vertex order, so verts is a
// sorted rename table and parent/emit are index-aligned arrays. Vertices are
// processed in index order every round, so the query traffic — which chains
// resolve locally versus remotely, and hence the per-round all-to-all
// volumes — is a pure function of the graph. The former map iteration here
// was the source of the run-to-run modeled-clock variance at larger
// instances: hash order decided how many pointer chases were short-cut
// through already-advanced local entries, changing message bytes per round.
func contractComponents(c *comm.Comm, edges []graph.Edge, l *graph.Layout, mins []minEdge,
	opt Options, mst *[]graph.Edge) denseLabels {

	p := c.P()
	a := c.Scratch()
	n := len(mins)
	// Dense tables for this PE's non-shared vertices.
	verts := arena.Grab[graph.VID](a, kVerts, n)
	parent := arena.Grab[parentEntry](a, kParent, n)
	emit := arena.Grab[int32](a, kEmit, n) // emit[i] = candidate MST edge index, -1 = none
	for i, me := range mins {
		e := edges[me.idx]
		verts[i] = me.v
		parent[i] = parentEntry{cur: e.V}
		emit[i] = int32(me.idx)
	}

	// Round 0 handles 2-cycles: u and parent[u]=v point at each other when
	// they picked the same logical lightest edge. The smaller label becomes
	// the root (and does not emit its copy of the edge). Mutual pointers
	// are only visible at v's home PE, so this is one query round asking
	// "is parent[v] == u?" — folded into the general doubling query below.
	type query struct {
		Asker  graph.VID // vertex whose pointer is being chased
		Target graph.VID // parent[Asker], owned by the queried PE
	}
	type reply struct {
		Asker   graph.VID
		Target  graph.VID
		Cur     graph.VID // parent[Target] at its home
		Done    bool
		Unknown bool // Target has no parent entry (it is a root by absence)
	}

	round := 0
	for {
		// Resolve what can be resolved locally; build queries for the rest.
		// Index order means a chase through an entry updated earlier in THIS
		// pass sees the advanced pointer — the same chaining the map version
		// performed, now in a fixed, deterministic order.
		sendQ := arena.Buckets[query](a, kSendQ, p)
		pending := 0
		for i := range parent {
			pe := &parent[i]
			if pe.done {
				continue
			}
			u := verts[i]
			v := pe.cur
			switch {
			case v == u:
				pe.done = true
			case l.IsShared(v):
				// Shared vertices are roots by fiat — no communication.
				pe.done = true
			default:
				if j := lookupVID(verts, v); j >= 0 {
					// Target is on this PE: step locally.
					q := &parent[j]
					if round == 0 && q.cur == u {
						// Local 2-cycle.
						if u < v {
							pe.cur = u
							pe.done = true
							emit[i] = -1
						} else {
							pe.done = true // cur stays v, v is root
						}
						continue
					}
					if q.done || q.cur == v {
						pe.cur = q.cur
						if q.cur == v { // v is a root
							pe.done = true
						} else {
							pe.done = q.done
						}
						if pe.cur == u { // collapsed 2-cycle remnant
							pe.done = true
						}
						continue
					}
					pe.cur = q.cur
					pending++
					continue
				}
				// Remote target.
				home := l.HomePE(v)
				sendQ[home] = append(sendQ[home], query{Asker: u, Target: v})
				pending++
			}
		}
		// Convergence check: one Allreduce per doubling round. With the
		// pre-release-combining substrate this superstep costs O(p) wall
		// work total, so the O(log n) rounds of pointer chasing are no
		// longer dominated by synchronization at high PE counts.
		totalPending := comm.Allreduce(c, pending, func(a, b int) int { return a + b })
		if totalPending == 0 {
			break
		}

		recvQ := alltoall.Exchange(c, opt.A2A, sendQ)
		sendR := arena.Buckets[reply](a, kSendR, p)
		for from := range recvQ {
			for _, q := range recvQ[from] {
				r := reply{Asker: q.Asker, Target: q.Target}
				if j := lookupVID(verts, q.Target); j >= 0 {
					pe := &parent[j]
					r.Cur = pe.cur
					r.Done = pe.done || pe.cur == q.Target
				} else {
					r.Unknown = true
				}
				sendR[from] = append(sendR[from], r)
			}
		}
		recvR := alltoall.Exchange(c, opt.A2A, sendR)
		for from := range recvR {
			for _, r := range recvR[from] {
				i := lookupVID(verts, r.Asker)
				if i < 0 {
					continue
				}
				pe := &parent[i]
				if pe.done {
					continue
				}
				switch {
				case r.Unknown:
					// Every non-shared vertex has a parent entry at its
					// home (the edge sequence is symmetric), so a miss is a
					// protocol bug, not a root.
					panic(fmt.Sprintf("core: pointer doubling: no parent entry for vertex %d at its home", r.Target))
				case round == 0 && r.Cur == r.Asker && !r.Done:
					// Remote 2-cycle: u ↔ v. Smaller label is the root.
					u, v := r.Asker, r.Target
					if u < v {
						pe.cur = u
						pe.done = true
						emit[i] = -1
					} else {
						pe.done = true // v stays our root; v's side resolves itself
					}
				default:
					pe.cur = r.Cur
					if r.Done || r.Cur == r.Target {
						pe.done = true
					}
					if pe.cur == r.Asker {
						// The chase walked back to ourselves: 2-cycle that
						// was already re-rooted at us.
						pe.done = true
					}
				}
			}
		}
		round++
		if round > 64 {
			panic("core: pointer doubling failed to converge")
		}
	}

	// Emit MST edges (every minimum edge except the root's copy in each
	// 2-cycle) and collect labels, both in index order. Ascending vertex
	// order IS ascending edge-index order — a vertex's minimum edge lies in
	// its own source range and ranges are sorted — so the emission sequence
	// equals the sorted order the map version had to re-establish with an
	// explicit sort over the surviving indices.
	labels := arena.Grab[graph.VID](a, kLabels, n)
	for i := range parent {
		labels[i] = parent[i].cur
		if e := emit[i]; e >= 0 {
			*mst = append(*mst, edges[e])
		}
	}
	c.ChargeCompute(n)
	lab := denseLabels{verts: verts, labels: labels}
	if span := directWindow(verts); span > 0 {
		lab.base = verts[0]
		direct := arena.Grab[int32](a, kDirect, span)
		for i := range direct {
			direct[i] = -1
		}
		for i, v := range verts {
			direct[v-lab.base] = int32(i)
		}
		lab.direct = direct
	}
	return lab
}

// exchangeLabels implements EXCHANGELABELS (§IV-B): for every cut edge
// (u, v) with contracted local source u, the new label of u is pushed to
// the home PE of the reverse edge (v, u), deduplicated per (PE, u) pair.
// Shared endpoints need no messages: both sides know they are roots.
// The returned table resolves ghost vertices to their new labels.
//
// Deduplication needs no hash set: within one source vertex's sorted edge
// range the reverse-edge probes (v, u, W, TB) are ascending, so the owner
// sequence is non-decreasing and duplicates per (owner, u) are adjacent —
// remembering the last owner suffices.
func exchangeLabels(c *comm.Comm, edges []graph.Edge, l *graph.Layout,
	lab denseLabels, opt Options) ghostTable {

	p := c.P()
	a := c.Scratch()
	send := arena.Buckets[labelPair](a, kSendLbl, p)
	var (
		curU      graph.VID
		lbl       graph.VID
		has       bool
		lastOwner = -1
		started   bool
	)
	for _, e := range edges {
		if !started || e.U != curU {
			curU, started = e.U, true
			lbl, has = lab.get(e.U)
			lastOwner = -1
		}
		if !has {
			continue // shared source: label unchanged, receiver knows
		}
		// Destination side: find the reverse edge's home. Probing with the
		// full weight class pins the exact copy even among parallels.
		owner := l.OwnerOfReverse(e)
		if owner == c.Rank() {
			continue // reverse edge is ours; relabel resolves locally
		}
		if owner == lastOwner {
			continue
		}
		lastOwner = owner
		send[owner] = append(send[owner], labelPair{V: e.U, L: lbl})
	}
	recv := alltoall.Exchange(c, opt.A2A, send)
	ghost := arena.GrabAppend[labelPair](a, kGhost)
	for i := range recv {
		ghost = append(ghost, recv[i]...)
	}
	arena.Keep(a, kGhost, ghost)
	// Rank-ordered arrival is already ascending by vertex (non-shared
	// sources of different PEs are disjoint and rank-ordered); re-sort
	// defensively if an exchange strategy ever reorders.
	if !slices.IsSortedFunc(ghost, lessPairV) {
		slices.SortFunc(ghost, lessPairV)
	}
	c.ChargeCompute(len(edges))
	return ghostTable{pairs: ghost}
}

func lessPairV(a, b labelPair) int {
	switch {
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	}
	return 0
}

// relabel implements RELABEL (§IV-C): rewrite endpoints to component roots
// and drop self-loops. edges must be sorted lexicographically (every caller
// passes a redistribute/preprocess output, which is) — the scan exploits
// that order. In strict mode (the distributed rounds, where every
// non-shared vertex has a label) an unknown non-shared endpoint is a
// protocol bug and panics loudly; lenient mode (preprocessing, where only
// contracted vertices have labels) keeps unknown labels unchanged.
//
// With a non-nil arena the two stages run in recycled scratch and the
// returned slice is arena-backed: valid until the NEXT relabel on the same
// PE, which is fine for the rounds (the result is consumed by redistribute
// within the round). Callers that keep the result across rounds — local
// preprocessing — pass a nil arena and get owned memory.
func relabel(c *comm.Comm, edges []graph.Edge, l *graph.Layout,
	lab denseLabels, ghost ghostTable, pool *par.Pool, strict bool, a *arena.Arena) []graph.Edge {

	resolve := func(v graph.VID) graph.VID {
		if lbl, ok := lab.get(v); ok {
			return lbl
		}
		if lbl, ok := ghost.get(v); ok {
			return lbl
		}
		if strict && !l.IsShared(v) {
			first, last := l.SharedSpan(v)
			panic(fmt.Sprintf("core: relabel: rank %d: no label for non-shared vertex %d (span %d..%d, home %d, labels=%d ghost=%d, localEdges=%d)",
				c.Rank(), v, first, last, l.HomePE(v), lab.len(), ghost.len(), len(edges)))
		}
		return v // shared vertices keep their label this round
	}
	// Each block walks its edges exploiting the sorted order: the source
	// label is resolved once per run of equal U, and the ascending V values
	// within a run gallop through the label table with a moving lower bound
	// instead of restarting a full binary search per edge. A run split
	// across block boundaries just re-resolves its source — harmless.
	var tmp []graph.Edge
	if a != nil {
		tmp = arena.Grab[graph.Edge](a, kRelabelTmp, len(edges))
	} else {
		tmp = make([]graph.Edge, len(edges))
	}
	pool.For(len(edges), func(lo, hi int) {
		i := lo
		for i < hi {
			u := edges[i].U
			nu := resolve(u)
			vbase := 0
			for ; i < hi && edges[i].U == u; i++ {
				e := edges[i]
				var nv graph.VID
				if lab.direct != nil {
					if lbl, ok := lab.get(e.V); ok {
						nv = lbl
					} else {
						nv = resolveNonLocal(c, l, ghost, e.V, strict, lab, len(edges))
					}
				} else if pos, ok := gallopSearch(lab.verts, e.V, vbase); ok {
					vbase = pos
					nv = lab.labels[pos]
				} else {
					vbase = pos
					nv = resolveNonLocal(c, l, ghost, e.V, strict, lab, len(edges))
				}
				if nu != e.U || nv != e.V {
					e.U, e.V = nu, nv
				}
				tmp[i] = e
			}
		}
	})
	keep := func(e graph.Edge) bool { return e.U != e.V }
	var out []graph.Edge
	if a != nil {
		out = par.FilterInto(pool, arena.Grab[graph.Edge](a, kRelabelOut, len(edges)), tmp, keep)
	} else {
		out = par.Filter(pool, tmp, keep)
	}
	c.ChargeCompute(len(edges))
	return out
}

// resolveNonLocal handles the slow path of relabel's V resolution: a vertex
// without a local label is a ghost or shared (or, in strict mode, a
// protocol bug).
func resolveNonLocal(c *comm.Comm, l *graph.Layout, ghost ghostTable,
	v graph.VID, strict bool, lab denseLabels, m int) graph.VID {
	if lbl, ok := ghost.get(v); ok {
		return lbl
	}
	if strict && !l.IsShared(v) {
		first, last := l.SharedSpan(v)
		panic(fmt.Sprintf("core: relabel: rank %d: no label for non-shared vertex %d (span %d..%d, home %d, labels=%d ghost=%d, localEdges=%d)",
			c.Rank(), v, first, last, l.HomePE(v), lab.len(), ghost.len(), m))
	}
	return v
}

// redistribute implements REDISTRIBUTE (§IV-C): sort the relabeled edges
// lexicographically with the distributed sorter, optionally reduce parallel
// edges to their lightest representative, rebalance, and rebuild the
// replicated layout with an allgather. The result is arena-backed (dsort's
// output slot): it is the round's working edge set and is consumed before
// the next round's redistribute re-sorts.
func redistribute(c *comm.Comm, edges []graph.Edge, opt Options) ([]graph.Edge, *graph.Layout) {
	sorted := dsort.Sort(c, edges, dsort.ByKey(graph.LessLex, graph.KeyLex), opt.Sort)
	if opt.DedupParallel {
		sorted = dedupSorted(c, sorted)
		sorted = dsort.Rebalance(c, sorted)
	}
	return sorted, graph.BuildLayout(c, sorted)
}

// dedupSorted removes directed duplicates (same U and V) from a globally
// sorted distribution, keeping the lexicographically first — which is the
// lightest, since the sort key continues with (W, TB). Runs crossing a PE
// boundary are resolved with one allgather of boundary keys.
func dedupSorted(c *comm.Comm, sorted []graph.Edge) []graph.Edge {
	dedup := sorted[:0]
	for i, e := range sorted {
		if i > 0 && e.U == sorted[i-1].U && e.V == sorted[i-1].V {
			continue
		}
		dedup = append(dedup, e)
	}
	type key struct {
		Has  bool
		U, V graph.VID
	}
	mine := key{}
	if len(dedup) > 0 {
		mine = key{Has: true, U: dedup[len(dedup)-1].U, V: dedup[len(dedup)-1].V}
	}
	lasts := comm.Allgather(c, mine)
	var prev key
	for i := 0; i < c.Rank(); i++ {
		if lasts[i].Has {
			prev = lasts[i]
		}
	}
	if prev.Has {
		drop := 0
		for drop < len(dedup) && dedup[drop].U == prev.U && dedup[drop].V == prev.V {
			drop++
		}
		dedup = dedup[drop:]
	}
	c.ChargeCompute(len(sorted))
	return dedup
}

// checkSorted panics with context if the local edges are not sorted; used
// at phase boundaries in debug paths.
func checkSorted(where string, edges []graph.Edge) {
	if !graph.IsSorted(edges) {
		panic(fmt.Sprintf("core: %s: local edges out of order", where))
	}
}

// debugChecks enables expensive global invariant verification (tests only).
var debugChecks = false

// verifySymmetric gathers the whole distributed edge set and checks that
// every directed edge has its reverse copy. Debug only — O(m) per PE.
func verifySymmetric(c *comm.Comm, edges []graph.Edge, where string) {
	if !debugChecks {
		return
	}
	all := comm.AllgatherConcat(c, edges)
	type dkey struct {
		U, V graph.VID
		W    graph.Weight
		TB   uint64
	}
	set := make(map[dkey]int, len(all))
	for _, e := range all {
		set[dkey{e.U, e.V, e.W, e.TB}]++
	}
	for _, e := range all {
		if set[dkey{e.V, e.U, e.W, e.TB}] == 0 {
			panic(fmt.Sprintf("core: %s: edge %v has no reverse copy (rank %d)", where, e, c.Rank()))
		}
	}
}
