package core

import (
	"fmt"
	"sort"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// minEdge pairs a local vertex with its lightest incident edge's index in
// the local edge slice.
type minEdge struct {
	v   graph.VID
	idx int
}

// minEdges finds, for every non-shared local vertex, the lightest incident
// edge (§IV, MINEDGES). Shared vertices are skipped — they become component
// roots and are contracted only in the base case. Because the edge sequence
// is symmetric and sorted, a non-shared vertex's full neighborhood is its
// contiguous source range, so this is a communication-free segmented min.
func minEdges(c *comm.Comm, edges []graph.Edge, l *graph.Layout, pool *par.Pool) []minEdge {
	ranges := graph.LocalRanges(edges)
	out := make([]minEdge, len(ranges))
	pool.For(len(ranges), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			r := ranges[k]
			if l.IsSharedOn(r.V, c.Rank()) {
				out[k] = minEdge{v: r.V, idx: -1}
				continue
			}
			best := r.Lo
			for i := r.Lo + 1; i < r.Hi; i++ {
				if graph.LessWeight(edges[i], edges[best]) {
					best = i
				}
			}
			out[k] = minEdge{v: r.V, idx: best}
		}
	})
	c.ChargeCompute(len(edges))
	// Compact away the shared vertices.
	kept := out[:0]
	for _, me := range out {
		if me.idx >= 0 {
			kept = append(kept, me)
		}
	}
	return kept
}

// parentEntry is the pointer-doubling state of one local vertex.
type parentEntry struct {
	cur  graph.VID // current pointer along the tree
	done bool      // cur is the component root
}

// labelPair carries a vertex → label assignment between PEs.
type labelPair struct {
	V, L graph.VID
}

// contractComponents converts the pseudo-trees induced by the minimum edges
// into rooted stars by distributed pointer doubling (§IV-B) and returns the
// component root label of every non-shared local vertex, appending the
// identified MST edges to mst. Shared vertices are declared roots, which
// both breaks pseudo-tree 2-cycles touching them and eliminates the
// contention the paper observes at high-degree vertices: a pointer to a
// shared vertex is resolved locally from the replicated layout, with no
// message to its (hot) home PE.
func contractComponents(c *comm.Comm, edges []graph.Edge, l *graph.Layout, mins []minEdge,
	opt Options, mst *[]graph.Edge) map[graph.VID]graph.VID {

	p := c.P()
	// Local parent table for this PE's non-shared vertices.
	parent := make(map[graph.VID]*parentEntry, len(mins))
	emit := make(map[graph.VID]int, len(mins)) // v -> candidate MST edge index
	for _, me := range mins {
		e := edges[me.idx]
		parent[me.v] = &parentEntry{cur: e.V}
		emit[me.v] = me.idx
	}

	// Round 0 handles 2-cycles: u and parent[u]=v point at each other when
	// they picked the same logical lightest edge. The smaller label becomes
	// the root (and does not emit its copy of the edge). Mutual pointers
	// are only visible at v's home PE, so this is one query round asking
	// "is parent[v] == u?" — folded into the general doubling query below.
	type query struct {
		Asker  graph.VID // vertex whose pointer is being chased
		Target graph.VID // parent[Asker], owned by the queried PE
	}
	type reply struct {
		Asker   graph.VID
		Target  graph.VID
		Cur     graph.VID // parent[Target] at its home
		Done    bool
		Unknown bool // Target has no parent entry (it is a root by absence)
	}

	round := 0
	for {
		// Resolve what can be resolved locally; build queries for the rest.
		sendQ := make([][]query, p)
		pending := 0
		for u, pe := range parent {
			if pe.done {
				continue
			}
			v := pe.cur
			switch {
			case v == u:
				pe.done = true
			case l.IsShared(v):
				// Shared vertices are roots by fiat — no communication.
				pe.done = true
			default:
				if q, ok := parent[v]; ok {
					// Target is on this PE: step locally.
					if round == 0 && q.cur == u {
						// Local 2-cycle.
						if u < v {
							pe.cur = u
							pe.done = true
							delete(emit, u)
						} else {
							pe.done = true // cur stays v, v is root
						}
						continue
					}
					if q.done || q.cur == v {
						pe.cur = q.cur
						if q.cur == v { // v is a root
							pe.done = true
						} else {
							pe.done = q.done
						}
						if pe.cur == u { // collapsed 2-cycle remnant
							pe.done = true
						}
						continue
					}
					pe.cur = q.cur
					pending++
					continue
				}
				// Remote target.
				home := l.HomePE(v)
				sendQ[home] = append(sendQ[home], query{Asker: u, Target: v})
				pending++
			}
		}
		// Convergence check: one Allreduce per doubling round. With the
		// pre-release-combining substrate this superstep costs O(p) wall
		// work total, so the O(log n) rounds of pointer chasing are no
		// longer dominated by synchronization at high PE counts.
		totalPending := comm.Allreduce(c, pending, func(a, b int) int { return a + b })
		if totalPending == 0 {
			break
		}

		recvQ := alltoall.Exchange(c, opt.A2A, sendQ)
		sendR := make([][]reply, p)
		for from := range recvQ {
			for _, q := range recvQ[from] {
				r := reply{Asker: q.Asker, Target: q.Target}
				if pe, ok := parent[q.Target]; ok {
					r.Cur = pe.cur
					r.Done = pe.done || pe.cur == q.Target
				} else {
					r.Unknown = true
				}
				sendR[from] = append(sendR[from], r)
			}
		}
		recvR := alltoall.Exchange(c, opt.A2A, sendR)
		for from := range recvR {
			for _, r := range recvR[from] {
				pe := parent[r.Asker]
				if pe == nil || pe.done {
					continue
				}
				switch {
				case r.Unknown:
					// Every non-shared vertex has a parent entry at its
					// home (the edge sequence is symmetric), so a miss is a
					// protocol bug, not a root.
					panic(fmt.Sprintf("core: pointer doubling: no parent entry for vertex %d at its home", r.Target))
				case round == 0 && r.Cur == r.Asker && !r.Done:
					// Remote 2-cycle: u ↔ v. Smaller label is the root.
					u, v := r.Asker, r.Target
					if u < v {
						pe.cur = u
						pe.done = true
						delete(emit, u)
					} else {
						pe.done = true // v stays our root; v's side resolves itself
					}
				default:
					pe.cur = r.Cur
					if r.Done || r.Cur == r.Target {
						pe.done = true
					}
					if pe.cur == r.Asker {
						// The chase walked back to ourselves: 2-cycle that
						// was already re-rooted at us.
						pe.done = true
					}
				}
			}
		}
		round++
		if round > 64 {
			panic("core: pointer doubling failed to converge")
		}
	}

	// Emit MST edges (every minimum edge except the root's copy in each
	// 2-cycle) and collect labels.
	labels := make(map[graph.VID]graph.VID, len(parent))
	for u, pe := range parent {
		labels[u] = pe.cur
	}
	emitIdx := make([]int, 0, len(emit))
	for _, idx := range emit {
		emitIdx = append(emitIdx, idx)
	}
	sort.Ints(emitIdx)
	for _, idx := range emitIdx {
		*mst = append(*mst, edges[idx])
	}
	c.ChargeCompute(len(parent))
	return labels
}

// exchangeLabels implements EXCHANGELABELS (§IV-B): for every cut edge
// (u, v) with contracted local source u, the new label of u is pushed to
// the home PE of the reverse edge (v, u), deduplicated per (PE, u) pair.
// Shared endpoints need no messages: both sides know they are roots.
// The returned map resolves ghost vertices to their new labels.
func exchangeLabels(c *comm.Comm, edges []graph.Edge, l *graph.Layout,
	labels map[graph.VID]graph.VID, opt Options) map[graph.VID]graph.VID {

	p := c.P()
	type dedupKey struct {
		pe int
		v  graph.VID
	}
	sent := make(map[dedupKey]struct{})
	send := make([][]labelPair, p)
	for _, e := range edges {
		lbl, ok := labels[e.U]
		if !ok {
			continue // shared source: label unchanged, receiver knows
		}
		// Destination side: find the reverse edge's home. Probing with the
		// full weight class pins the exact copy even among parallels.
		owner := l.OwnerOfReverse(e)
		if owner == c.Rank() {
			continue // reverse edge is ours; relabel resolves locally
		}
		k := dedupKey{owner, e.U}
		if _, dup := sent[k]; dup {
			continue
		}
		sent[k] = struct{}{}
		send[owner] = append(send[owner], labelPair{V: e.U, L: lbl})
	}
	recv := alltoall.Exchange(c, opt.A2A, send)
	ghost := make(map[graph.VID]graph.VID)
	for i := range recv {
		for _, lp := range recv[i] {
			ghost[lp.V] = lp.L
		}
	}
	c.ChargeCompute(len(edges))
	return ghost
}

// relabel implements RELABEL (§IV-C): rewrite endpoints to component roots
// and drop self-loops. In strict mode (the distributed rounds, where every
// non-shared vertex has a label) an unknown non-shared endpoint is a
// protocol bug and panics loudly; lenient mode (preprocessing, where only
// contracted vertices have labels) keeps unknown labels unchanged.
func relabel(c *comm.Comm, edges []graph.Edge, l *graph.Layout,
	labels, ghost map[graph.VID]graph.VID, pool *par.Pool, strict bool) []graph.Edge {

	resolve := func(v graph.VID) graph.VID {
		if lbl, ok := labels[v]; ok {
			return lbl
		}
		if lbl, ok := ghost[v]; ok {
			return lbl
		}
		if strict && !l.IsShared(v) {
			first, last := l.SharedSpan(v)
			panic(fmt.Sprintf("core: relabel: rank %d: no label for non-shared vertex %d (span %d..%d, home %d, labels=%d ghost=%d, localEdges=%d)",
				c.Rank(), v, first, last, l.HomePE(v), len(labels), len(ghost), len(edges)))
		}
		return v // shared vertices keep their label this round
	}
	out := par.Map(pool, edges, func(e graph.Edge) graph.Edge {
		nu, nv := resolve(e.U), resolve(e.V)
		if nu != e.U || nv != e.V {
			e.U, e.V = nu, nv
		}
		return e
	})
	out = par.Filter(pool, out, func(e graph.Edge) bool { return e.U != e.V })
	c.ChargeCompute(len(edges))
	return out
}

// redistribute implements REDISTRIBUTE (§IV-C): sort the relabeled edges
// lexicographically with the distributed sorter, optionally reduce parallel
// edges to their lightest representative, rebalance, and rebuild the
// replicated layout with an allgather.
func redistribute(c *comm.Comm, edges []graph.Edge, opt Options) ([]graph.Edge, *graph.Layout) {
	sorted := dsort.Sort(c, edges, graph.LessLex, opt.Sort)
	if opt.DedupParallel {
		sorted = dedupSorted(c, sorted)
		sorted = dsort.Rebalance(c, sorted)
	}
	return sorted, graph.BuildLayout(c, sorted)
}

// dedupSorted removes directed duplicates (same U and V) from a globally
// sorted distribution, keeping the lexicographically first — which is the
// lightest, since the sort key continues with (W, TB). Runs crossing a PE
// boundary are resolved with one allgather of boundary keys.
func dedupSorted(c *comm.Comm, sorted []graph.Edge) []graph.Edge {
	dedup := sorted[:0]
	for i, e := range sorted {
		if i > 0 && e.U == sorted[i-1].U && e.V == sorted[i-1].V {
			continue
		}
		dedup = append(dedup, e)
	}
	type key struct {
		Has  bool
		U, V graph.VID
	}
	mine := key{}
	if len(dedup) > 0 {
		mine = key{Has: true, U: dedup[len(dedup)-1].U, V: dedup[len(dedup)-1].V}
	}
	lasts := comm.Allgather(c, mine)
	var prev key
	for i := 0; i < c.Rank(); i++ {
		if lasts[i].Has {
			prev = lasts[i]
		}
	}
	if prev.Has {
		drop := 0
		for drop < len(dedup) && dedup[drop].U == prev.U && dedup[drop].V == prev.V {
			drop++
		}
		dedup = dedup[drop:]
	}
	c.ChargeCompute(len(sorted))
	return dedup
}

// checkSorted panics with context if the local edges are not sorted; used
// at phase boundaries in debug paths.
func checkSorted(where string, edges []graph.Edge) {
	if !graph.IsSorted(edges) {
		panic(fmt.Sprintf("core: %s: local edges out of order", where))
	}
}

// debugChecks enables expensive global invariant verification (tests only).
var debugChecks = false

// verifySymmetric gathers the whole distributed edge set and checks that
// every directed edge has its reverse copy. Debug only — O(m) per PE.
func verifySymmetric(c *comm.Comm, edges []graph.Edge, where string) {
	if !debugChecks {
		return
	}
	all := comm.AllgatherConcat(c, edges)
	type dkey struct {
		U, V graph.VID
		W    graph.Weight
		TB   uint64
	}
	set := make(map[dkey]int, len(all))
	for _, e := range all {
		set[dkey{e.U, e.V, e.W, e.TB}]++
	}
	for _, e := range all {
		if set[dkey{e.V, e.U, e.W, e.TB}] == 0 {
			panic(fmt.Sprintf("core: %s: edge %v has no reverse copy (rank %d)", where, e, c.Rank()))
		}
	}
}
