package core

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
)

// TestVertexCountHalvesPerRound checks the §IV guarantee that the number
// of vertices shrinks by (at least roughly) a factor of two per distributed
// Borůvka round. Shared vertices are exempt from contraction, so the bound
// is n/2 + 2p.
func TestVertexCountHalvesPerRound(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 2000, M: 8000, Seed: 3}
	p := 4
	w := comm.NewWorld(p)
	var counts []int
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		r := Boruvka(c, edges, layout, Options{BaseCaseCap: 8, DedupParallel: true})
		if c.Rank() == 0 {
			counts = r.VertexCounts
		}
	})
	if len(counts) < 2 {
		t.Fatalf("expected several rounds, got %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		bound := counts[i-1]/2 + 2*p
		if counts[i] > bound {
			t.Fatalf("round %d: %d vertices, want <= %d (halving bound): %v",
				i, counts[i], bound, counts)
		}
	}
}

// TestFilterBaseCallsBounded checks the Theorem 1 structure empirically:
// the number of base-case Borůvka calls stays around log(m/n) rather than
// exploding with the recursion.
func TestFilterBaseCallsBounded(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 9600, Seed: 5} // m/n = 32
	w := comm.NewWorld(4)
	var calls int
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		r := FilterBoruvka(c, edges, layout, Options{
			BaseCaseCap: 16, DedupParallel: true,
			Filter: FilterOptions{MinEdgesPerPE: 64, MergeBackFraction: 0.01},
		})
		if c.Rank() == 0 {
			calls = r.BaseCalls
		}
	})
	// log2(m/n) = 5; allow generous slack for the stack/merge dynamics.
	if calls < 2 || calls > 16 {
		t.Fatalf("base calls = %d, expected a handful (Theorem 1 shape)", calls)
	}
}
