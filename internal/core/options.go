// Package core implements the paper's primary contribution: the scalable
// distributed-memory Borůvka MST algorithm (Algorithm 1) and the
// Filter-Borůvka algorithm (Algorithm 2), over the simulated machine of
// internal/comm.
//
// The distributed graph follows §II-B: a lexicographically sorted, 1D
// partitioned sequence of directed edges with a replicated minlex array
// (graph.Layout). One Borůvka round (§IV) finds each local vertex's
// lightest incident edge, contracts the induced pseudo-trees by pointer
// doubling over sparse all-to-alls (shared vertices act as component roots
// and never require communication), exchanges new labels for ghost
// vertices, relabels, and redistributes the contracted graph with a
// distributed sort. A replicated-vertex base case (§IV-D, Adler et al.)
// finishes when few vertices remain. Filter-Borůvka wraps this in the
// Filter-Kruskal recursion (§V) using a distributed component-representative
// array P.
package core

import (
	"kamsta/internal/alltoall"
	"kamsta/internal/dsort"
)

// Options configures the distributed MST algorithms. The zero value gives
// the paper's defaults scaled to the simulator.
type Options struct {
	// A2A is the sparse all-to-all strategy for label exchange and pointer
	// doubling (default Auto: direct for large, two-level grid for small
	// messages, §VI-A).
	A2A alltoall.Strategy
	// Sort configures the distributed sorter used by REDISTRIBUTE.
	Sort dsort.Options
	// BaseCaseCap: the distributed rounds stop when the global number of
	// vertices is at most max(2·p, BaseCaseCap) (§VI-C; the paper uses
	// 35000 — scaled down here by default to keep simulator runs quick).
	BaseCaseCap int
	// LocalPreprocessing enables the §IV-A contraction of provably-local
	// MST edges before the distributed rounds.
	LocalPreprocessing bool
	// PreprocessMinLocalFrac skips preprocessing when the global fraction
	// of local edges is below this threshold (the paper uses 0.10,
	// skipping when cut edges exceed 90%).
	PreprocessMinLocalFrac float64
	// LocalFilter applies the recursive edge-filtering enhancement inside
	// local preprocessing (§VI-B).
	LocalFilter bool
	// HashDedup uses the hash-table parallel-edge removal in local
	// preprocessing (§VI-B).
	HashDedup bool
	// DedupParallel removes parallel edges during REDISTRIBUTE (keeping
	// the lightest); the paper notes this is optional for correctness.
	DedupParallel bool
	// Filter configures Filter-Borůvka's recursion (ignored by Boruvka).
	Filter FilterOptions
	// Seed drives pivot sampling and sorter sampling.
	Seed uint64
}

// FilterOptions tunes the Filter-Borůvka recursion (§V, §VI-C).
type FilterOptions struct {
	// SparseAvgDegree stops the recursion when directed edges per vertex
	// fall to this value or below (paper: 4).
	SparseAvgDegree float64
	// MinEdgesPerPE stops partitioning when the graph has fewer than this
	// many directed edges per PE (paper: 1000).
	MinEdgesPerPE int
	// SamplesPerPE is the pivot sample size per PE.
	SamplesPerPE int
	// MergeBackFraction: if a filtered segment retains fewer than this
	// fraction of MinEdgesPerPE·p edges, it is merged into the next
	// pending segment instead of being processed alone (§VI-C merge-back).
	MergeBackFraction float64
}

// withDefaults fills in unset fields.
func (o Options) withDefaults() Options {
	if o.BaseCaseCap <= 0 {
		o.BaseCaseCap = 2048
	}
	if o.PreprocessMinLocalFrac == 0 {
		o.PreprocessMinLocalFrac = 0.10
	}
	if o.A2A == 0 {
		o.A2A = alltoall.Auto
	}
	if o.Filter.SparseAvgDegree == 0 {
		o.Filter.SparseAvgDegree = 4
	}
	if o.Filter.MinEdgesPerPE == 0 {
		o.Filter.MinEdgesPerPE = 1000
	}
	if o.Filter.SamplesPerPE == 0 {
		o.Filter.SamplesPerPE = 16
	}
	if o.Filter.MergeBackFraction == 0 {
		o.Filter.MergeBackFraction = 0.25
	}
	if o.Sort.Seed == 0 {
		o.Sort.Seed = o.Seed ^ 0x50F7
	}
	return o
}

// DefaultOptions returns the paper's default configuration (local
// preprocessing on, hash dedup on, auto all-to-all).
func DefaultOptions() Options {
	return Options{
		LocalPreprocessing: true,
		LocalFilter:        true,
		HashDedup:          true,
		DedupParallel:      true,
	}.withDefaults()
}

// Phase names as reported in the paper's running-time breakdown (Fig. 6).
const (
	PhasePreprocess   = "localPreprocessing"
	PhaseMinEdges     = "graphSetup+minEdges"
	PhaseContract     = "contractComponents"
	PhaseLabels       = "exchangeLabels+relabel"
	PhaseRedistribute = "redistribute"
	PhaseBaseCase     = "basecase+redistributeMST"
	PhaseFilter       = "partition+filter"
	PhaseMisc         = "misc"
)

// PhaseNames lists the Fig. 6 phases in presentation order.
func PhaseNames() []string {
	return []string{
		PhasePreprocess, PhaseMinEdges, PhaseContract, PhaseLabels,
		PhaseRedistribute, PhaseBaseCase, PhaseFilter, PhaseMisc,
	}
}
