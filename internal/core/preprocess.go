package core

import (
	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/graph"
	"kamsta/internal/localmst"
	"kamsta/internal/par"
	"kamsta/internal/radix"
)

// localPreprocess implements LOCALPREPROCESSING (§IV-A): contract edges
// that are provably MST edges using only local information — a vertex
// contracts only along a local edge that is its component's lightest
// incident edge overall. Afterwards ghost labels are exchanged, edges are
// relabeled and the global sort order is re-established. Since only local
// edges were contracted, a local re-sort almost suffices; only the ranges
// of shared vertices can break global order across a boundary, in which
// case we fall back to the distributed sorter (the paper resorts those
// short cross-PE subsequences directly — same outcome).
//
// When the global fraction of local edges is below
// opt.PreprocessMinLocalFrac the step is skipped entirely (§VI-B: the paper
// skips after a quick check when cut edges exceed 90%).
func localPreprocess(c *comm.Comm, edges []graph.Edge, l *graph.Layout,
	pool *par.Pool, opt Options, mst *[]graph.Edge, rec *distArray) ([]graph.Edge, *graph.Layout) {

	isLocal := func(v graph.VID) bool {
		// A vertex is contractible here iff its whole neighborhood is on
		// this PE: it appears as a source here and is not shared.
		first, last := l.SharedSpan(v)
		return first == last && first == c.Rank()
	}
	// Quick check: count local edges (both endpoints contractible).
	localCnt := 0
	for _, e := range edges {
		if isLocal(e.U) && isLocal(e.V) {
			localCnt++
		}
	}
	type frac struct{ Local, Total int }
	tot := comm.Allreduce(c, frac{localCnt, len(edges)}, func(a, b frac) frac {
		return frac{a.Local + b.Local, a.Total + b.Total}
	})
	c.ChargeCompute(len(edges))
	if tot.Total == 0 || float64(tot.Local)/float64(tot.Total) < opt.PreprocessMinLocalFrac {
		return edges, l
	}

	res := localmst.Run(edges, isLocal, localmst.Config{
		Pool:      pool,
		Filter:    opt.LocalFilter,
		HashDedup: opt.HashDedup,
	})
	*mst = append(*mst, res.MSTEdges...)
	// Charge the contraction's actual edge touches (rounds compact the
	// edge set, so this is far below m·rounds).
	c.ChargeCompute(res.Work)

	// Strip identity labels — only contracted vertices need broadcasting.
	// res.Verts is ascending, so the stripped table stays a valid dense
	// rename table.
	labels := denseLabels{
		verts:  make([]graph.VID, 0, len(res.Verts)),
		labels: make([]graph.VID, 0, len(res.Verts)),
	}
	for i, v := range res.Verts {
		if lbl := res.Roots[i]; v != lbl {
			labels.verts = append(labels.verts, v)
			labels.labels = append(labels.labels, lbl)
		}
	}
	if rec != nil {
		pairs := make([]labelPair, 0, labels.len())
		for i, v := range labels.verts {
			pairs = append(pairs, labelPair{V: v, L: labels.labels[i]})
		}
		rec.record(c, pairs, opt)
	}

	// Ghost updates: my surviving edges already carry my new source labels,
	// but other PEs' edges pointing at my contracted vertices do not. Push
	// labels along cut edges as in §IV-B; note the push must use the
	// ORIGINAL edges (whose reverse copies still exist at the receivers).
	// relabel gets a nil arena: its result lives beyond this call (it may
	// become the rounds' working edge set), so it must own its memory.
	ghost := exchangeLabels(c, edges, l, labels, opt)
	work := relabel(c, res.Remaining, l, denseLabels{}, ghost, pool, false, nil)

	// Re-establish the sorted distributed sequence.
	localSortEdges(work)
	c.ChargeCompute(len(work) * log2ceilInt(len(work)+1))
	if dsort.IsGloballySorted(c, work, graph.LessLex) {
		if opt.DedupParallel {
			work = dedupSorted(c, work)
		}
		return work, graph.BuildLayout(c, work)
	}
	return redistribute(c, work, opt)
}

// localSortEdges sorts a local edge slice lexicographically in place with
// the (U, V)-keyed radix pass (one-shot scratch: preprocessing runs once
// per job, outside the steady-state rounds).
func localSortEdges(edges []graph.Edge) {
	radix.Sort(edges, graph.KeyLex, graph.LessLex)
}
