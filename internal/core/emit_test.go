package core

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// TestMSTEmissionOrderStable pins the shape property that let the dense
// refactor delete the explicit sort of emitted edge indices: a vertex's
// minimum edge lies inside its own source range and ranges are ascending,
// so emitting in index order IS emitting in ascending local edge order
// (lexicographic, since the local slice is sorted). Two identical
// contractions must also emit identical sequences.
func TestMSTEmissionOrderStable(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 1 << 10, M: 1 << 13, Seed: 11}
	p := 4
	w := comm.NewWorld(p)
	runs := make([][][]graph.Edge, 2) // runs[r][rank] = emitted MST edges
	for r := range runs {
		perRank := make([][]graph.Edge, p)
		w.Run(func(c *comm.Comm) {
			edges, layout := gen.Build(c, spec, dsort.Options{})
			pool := par.NewPool(1)
			opt := Options{}.withDefaults()
			mins := minEdges(c, edges, layout, pool)
			var mst []graph.Edge
			contractComponents(c, edges, layout, mins, opt, &mst)
			perRank[c.Rank()] = append([]graph.Edge(nil), mst...)
			// Emission must follow the local lexicographic edge order.
			for i := 1; i < len(mst); i++ {
				if graph.LessLex(mst[i], mst[i-1]) {
					t.Errorf("rank %d: emission out of lexicographic order at %d: %v after %v",
						c.Rank(), i, mst[i], mst[i-1])
					break
				}
			}
		})
		runs[r] = perRank
	}
	for rank := 0; rank < p; rank++ {
		a, b := runs[0][rank], runs[1][rank]
		if len(a) != len(b) {
			t.Fatalf("rank %d: emission count differs between runs: %d vs %d", rank, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d: emission %d differs between runs: %v vs %v", rank, i, a[i], b[i])
			}
		}
	}
}
