package core

import (
	"kamsta/internal/arena"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/par"
)

// Result is the outcome of a distributed MST computation on one PE.
type Result struct {
	// MSTEdges is this PE's share of the minimum spanning forest, with
	// original endpoint labels, routed back to the home PEs of the original
	// input copies and sorted lexicographically.
	MSTEdges []graph.Edge
	// TotalWeight is the global MSF weight (identical on all PEs).
	TotalWeight uint64
	// NumEdges is the global number of MSF edges (identical on all PEs).
	NumEdges int
	// Rounds counts the distributed Borůvka rounds executed (excluding
	// preprocessing and base case).
	Rounds int
	// VertexCounts records the global vertex count entering each
	// distributed round — the paper's §IV guarantee is that local vertices
	// at least halve per round.
	VertexCounts []int
	// BaseCalls counts distributed base-case invocations (1 for plain
	// Borůvka; one per recursion leaf for Filter-Borůvka).
	BaseCalls int
	// EdgesTouched accumulates the edge-scan work of all rounds — the
	// quantity Theorem 1 bounds for Filter-Borůvka.
	EdgesTouched int
}

// Boruvka computes the minimum spanning forest of the distributed graph
// (edges, layout) with Algorithm 1. edges must be this PE's chunk of the
// §II-B input format (globally sorted, symmetric, consecutive IDs); all PEs
// must call collectively.
func Boruvka(c *comm.Comm, edges []graph.Edge, layout *graph.Layout, opt Options) Result {
	opt = opt.withDefaults()
	pool := par.NewPool(c.Threads())
	in := makeInputCopy(c, edges)

	var mst []graph.Edge
	res := Result{}
	work, l := edges, layout

	if opt.LocalPreprocessing {
		c.PhaseBegin(PhasePreprocess)
		work, l = localPreprocess(c, work, l, pool, opt, &mst, nil)
		c.PhaseEnd()
	}

	res.Rounds, res.EdgesTouched, res.VertexCounts = distributedRounds(c, &work, &l, pool, opt, &mst, nil)

	c.PhaseBegin(PhaseBaseCase)
	baseCase(c, work, l, &mst, nil, opt)
	res.BaseCalls = 1
	out := redistributeMST(c, mst, in, opt)
	c.PhaseEnd()

	res.MSTEdges = out
	res.TotalWeight, res.NumEdges = globalWeight(c, out)
	return res
}

// distributedRounds runs Borůvka rounds (§IV) until the global vertex count
// falls to the base-case threshold max(2·p, opt.BaseCaseCap). It mutates
// *work and *l in place and returns (rounds, edges touched, per-round
// vertex counts).
func distributedRounds(c *comm.Comm, work *[]graph.Edge, l **graph.Layout,
	pool *par.Pool, opt Options, mst *[]graph.Edge, rec *distArray) (int, int, []int) {

	threshold := opt.BaseCaseCap
	if t := 2 * c.P(); t > threshold {
		threshold = t
	}
	rounds, touched := 0, 0
	var vertexCounts []int
	for {
		c.PhaseBegin(PhaseMinEdges)
		n := graph.GlobalVertexCount(c, *l, *work)
		if n <= threshold {
			c.PhaseEnd()
			break
		}
		vertexCounts = append(vertexCounts, n)
		c.EmitRound(rounds+1, n)
		mins := minEdges(c, *work, *l, pool)
		c.PhaseEnd()

		c.PhaseBegin(PhaseContract)
		labels := contractComponents(c, *work, *l, mins, opt, mst)
		if rec != nil {
			a := c.Scratch()
			pairs := arena.GrabAppend[labelPair](a, kRecPairs)
			for i, v := range labels.verts {
				if lbl := labels.labels[i]; v != lbl {
					pairs = append(pairs, labelPair{V: v, L: lbl})
				}
			}
			arena.Keep(a, kRecPairs, pairs)
			rec.record(c, pairs, opt)
		}
		c.PhaseEnd()

		c.PhaseBegin(PhaseLabels)
		ghost := exchangeLabels(c, *work, *l, labels, opt)
		relabeled := relabel(c, *work, *l, labels, ghost, pool, true, c.Scratch())
		c.PhaseEnd()

		c.PhaseBegin(PhaseRedistribute)
		*work, *l = redistribute(c, relabeled, opt)
		c.PhaseEnd()

		touched += len(*work)
		rounds++
		if rounds > 128 {
			panic("core: distributed Borůvka failed to converge")
		}
	}
	return rounds, touched, vertexCounts
}

// globalWeight reduces the local MSF shares to the global (weight, count).
func globalWeight(c *comm.Comm, mst []graph.Edge) (uint64, int) {
	type agg struct {
		W uint64
		N int
	}
	local := agg{}
	for _, e := range mst {
		local.W += uint64(e.W)
		local.N++
	}
	g := comm.Allreduce(c, local, func(a, b agg) agg { return agg{a.W + b.W, a.N + b.N} })
	return g.W, g.N
}
