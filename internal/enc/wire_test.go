package enc

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0xab},
		bytes.Repeat([]byte{0x5a}, 1<<16),
	}
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint8(i+1), p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	var scratch []byte
	for i, p := range payloads {
		kind, got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if kind != uint8(i+1) {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
		scratch = got
	}
	if _, _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized write refused.
	if err := WriteFrame(io.Discard, 1, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized write: %v", err)
	}
	// Truncated header.
	if _, _, err := ReadFrame(strings.NewReader("\x01\x00"), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(short), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: %v", err)
	}
	// Corrupt length prefix beyond MaxFrameSize: rejected without allocating.
	hdr := AppendU32(nil, 0xffffffff)
	hdr = append(hdr, 1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr), nil); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized prefix: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	b := AppendU32(nil, 42)
	r := NewReader(b)
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 0 { // truncated: latches error, returns zero
		t.Fatalf("U64 after end = %d", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v", r.Err())
	}
	if got := r.U8(); got != 0 { // sticky
		t.Fatalf("U8 after error = %d", got)
	}
}

func TestReaderPrimitives(t *testing.T) {
	b := AppendU8(nil, 0x7f)
	b = AppendU32(b, 1<<31)
	b = AppendU64(b, 1<<63)
	b = AppendI64(b, -12345)
	b = AppendF64(b, math.Pi)
	b = AppendF64(b, math.NaN())
	b = AppendUvarint(b, 1<<40)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "kamsta")

	r := NewReader(b)
	if v := r.U8(); v != 0x7f {
		t.Fatalf("U8 = %#x", v)
	}
	if v := r.U32(); v != 1<<31 {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63 {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I64(); v != -12345 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.F64(); math.Float64bits(v) != math.Float64bits(math.Pi) {
		t.Fatalf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsNaN(v) {
		t.Fatalf("F64 NaN = %v", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", v)
	}
	if v := r.String(); v != "kamsta" {
		t.Fatalf("String = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReaderBytesOversized(t *testing.T) {
	b := AppendUvarint(nil, 1000) // declares 1000 bytes, supplies 2
	b = append(b, 1, 2)
	r := NewReader(b)
	if v := r.Bytes(); v != nil {
		t.Fatalf("Bytes = %v", v)
	}
	if !errors.Is(r.Err(), ErrOversized) {
		t.Fatalf("Err = %v", r.Err())
	}
}

// FuzzFrameRoundTrip drives the frame layer both ways: any (kind, payload)
// written must read back identically, and reading arbitrary bytes must
// either produce a well-formed frame or fail with a typed error — never a
// panic or an over-allocation.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte(nil))
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte("step payload"))
	f.Add(uint8(0xff), bytes.Repeat([]byte{7}, 300))
	// Raw wire bytes doubling as the payload of a round trip and, decoded
	// directly, as an adversarial stream.
	f.Add(uint8(2), AppendU32([]byte{}, 0xffffffff))
	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, kind, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		k, got, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("ReadFrame after WriteFrame: %v", err)
		}
		if k != kind || !bytes.Equal(got, payload) {
			t.Fatalf("round trip: kind %d/%d, %d/%d bytes", k, kind, len(got), len(payload))
		}

		// Treat the payload itself as a hostile wire stream: must terminate
		// with io.EOF or a typed/io error, never panic.
		r := bytes.NewReader(payload)
		for {
			_, _, err := ReadFrame(r, nil)
			if err != nil {
				if err != io.EOF &&
					!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) {
					t.Fatalf("hostile stream: unexpected error %v", err)
				}
				break
			}
		}
	})
}

// FuzzReaderPayload feeds arbitrary bytes through every Reader accessor in a
// data-driven order: decoding must never panic and the sticky error must be
// one of the typed wire errors.
func FuzzReaderPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendString(AppendU64(nil, 9), "x"))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for i := 0; r.Err() == nil && r.Len() > 0 && i < 1024; i++ {
			switch i % 7 {
			case 0:
				r.U8()
			case 1:
				r.U32()
			case 2:
				r.U64()
			case 3:
				r.F64()
			case 4:
				r.Uvarint()
			case 5:
				r.Bytes()
			case 6:
				_ = r.String()
			}
		}
		if err := r.Err(); err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
		}
	})
}
