package enc

// Value codecs for the transport layer: how one collective's deposit — an
// `any` holding a concrete Go value — crosses a process boundary. The SPMD
// contract makes every rank of a superstep deposit the same concrete type,
// so frames never carry type descriptors: the sender encodes with its slot's
// codec and the receiver decodes with its own collective's codec for the
// same superstep.
//
// Two strategies, picked once per type and cached:
//
//   - POD fast path: fixed-size types containing no pointers (ints, floats,
//     bools, and arrays/structs thereof — unexported fields included) are
//     memcpy'd. The TCP handshake pins word size and byte order, so raw
//     bytes round-trip exactly; float bits in particular survive untouched,
//     which modeled-clock parity across transports depends on.
//   - Reflect walker: strings, slices, pointers and structs of such are
//     encoded field by field. Struct fields on this path must be exported
//     (reflection cannot set unexported fields on decode); an unsupported
//     type panics at codec construction — a programmer error, found the
//     first time the collective runs — while malformed BYTES always surface
//     as typed errors, never panics.

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// Codec serializes one concrete value type for wire transport.
type Codec struct {
	name string
	enc  func(dst []byte, v any) []byte
	dec  func(b []byte) (any, []byte, error)
}

// Name reports the codec's type name, for diagnostics.
func (c *Codec) Name() string { return c.name }

// Append encodes v (which must hold the codec's type) onto dst.
func (c *Codec) Append(dst []byte, v any) []byte { return c.enc(dst, v) }

// Decode decodes one value from b, returning the value, the remaining
// bytes, and a typed error (ErrTruncated/ErrOversized/ErrCorrupt) on
// malformed input.
func (c *Codec) Decode(b []byte) (any, []byte, error) { return c.dec(b) }

// NewCodec wraps custom encode/decode functions as a Codec — for container
// types with unexported fields that the reflect walker cannot reach (the
// collectives' internal all-to-all frame builds one from element codecs).
func NewCodec(name string, enc func(dst []byte, v any) []byte, dec func(b []byte) (any, []byte, error)) *Codec {
	return &Codec{name: name, enc: enc, dec: dec}
}

// CodecFor returns the cached codec for T, building it on first use. It
// panics if T is not wire-encodable (chan, func, map, interface fields, or
// unexported fields on the reflect path) — a programmer error surfaced the
// first time a remote-backed collective carries the type.
func CodecFor[T any]() *Codec {
	return codecOf(reflect.TypeOf((*T)(nil)).Elem())
}

var codecCache sync.Map // reflect.Type -> *Codec

func codecOf(rt reflect.Type) *Codec {
	if c, ok := codecCache.Load(rt); ok {
		return c.(*Codec)
	}
	c := buildCodec(rt)
	actual, _ := codecCache.LoadOrStore(rt, c)
	return actual.(*Codec)
}

func buildCodec(rt reflect.Type) *Codec {
	validateWireType(rt, rt)
	name := rt.String()
	if isPOD(rt) {
		size := int(rt.Size())
		return &Codec{
			name: name,
			enc: func(dst []byte, v any) []byte {
				return append(dst, podBytes(v, size)...)
			},
			dec: func(b []byte) (any, []byte, error) {
				if len(b) < size {
					return nil, nil, fmt.Errorf("%w: %s needs %d bytes, %d left", ErrTruncated, name, size, len(b))
				}
				nv := reflect.New(rt)
				if size > 0 {
					copy(unsafe.Slice((*byte)(nv.UnsafePointer()), size), b[:size])
				}
				return nv.Elem().Interface(), b[size:], nil
			},
		}
	}
	return &Codec{
		name: name,
		enc: func(dst []byte, v any) []byte {
			return encValue(dst, reflect.ValueOf(v))
		},
		dec: func(b []byte) (any, []byte, error) {
			nv := reflect.New(rt).Elem()
			rest, err := decValue(b, nv)
			if err != nil {
				return nil, nil, err
			}
			return nv.Interface(), rest, nil
		},
	}
}

// podBytes views an interface's boxed POD payload as raw bytes. Every
// non-pointer-shaped value is stored indirectly in an interface, so the data
// word points at size bytes of the value.
func podBytes(v any, size int) []byte {
	if size == 0 {
		return nil
	}
	data := (*[2]unsafe.Pointer)(unsafe.Pointer(&v))[1]
	return unsafe.Slice((*byte)(data), size)
}

// isPOD reports whether rt is a fixed-size type containing no pointers, so
// its in-memory bytes ARE its wire encoding.
func isPOD(rt reflect.Type) bool {
	switch rt.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return isPOD(rt.Elem())
	case reflect.Struct:
		for i := 0; i < rt.NumField(); i++ {
			if !isPOD(rt.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}

// validateWireType panics (at codec construction, not at transfer time) if
// any reachable part of rt cannot cross the wire.
func validateWireType(root, rt reflect.Type) {
	if isPOD(rt) {
		return
	}
	switch rt.Kind() {
	case reflect.String:
	case reflect.Slice, reflect.Array, reflect.Pointer:
		validateWireType(root, rt.Elem())
	case reflect.Struct:
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if f.PkgPath != "" {
				panic(fmt.Sprintf("enc: %v is not wire-encodable: unexported field %s.%s needs the reflect path", root, rt, f.Name))
			}
			validateWireType(root, f.Type)
		}
	default:
		panic(fmt.Sprintf("enc: %v is not wire-encodable: %v (%v)", root, rt, rt.Kind()))
	}
}

// encValue appends rv's walker encoding: fixed-width scalars, uvarint
// length-prefixed strings and slices (with a nil flag), flag-prefixed
// pointers, fields in order for structs. Slices of POD elements are bulk
// copied.
func encValue(dst []byte, rv reflect.Value) []byte {
	rt := rv.Type()
	switch rt.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return AppendU64(dst, uint64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return AppendU64(dst, rv.Uint())
	case reflect.Float32, reflect.Float64:
		return AppendF64(dst, rv.Float())
	case reflect.String:
		return AppendString(dst, rv.String())
	case reflect.Slice:
		if rv.IsNil() {
			return append(dst, 0)
		}
		dst = append(dst, 1)
		n := rv.Len()
		dst = AppendUvarint(dst, uint64(n))
		if et := rt.Elem(); isPOD(et) {
			if n > 0 {
				size := n * int(et.Size())
				dst = append(dst, unsafe.Slice((*byte)(rv.UnsafePointer()), size)...)
			}
			return dst
		}
		for i := 0; i < n; i++ {
			dst = encValue(dst, rv.Index(i))
		}
		return dst
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			dst = encValue(dst, rv.Index(i))
		}
		return dst
	case reflect.Pointer:
		if rv.IsNil() {
			return append(dst, 0)
		}
		dst = append(dst, 1)
		return encValue(dst, rv.Elem())
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			dst = encValue(dst, rv.Field(i))
		}
		return dst
	}
	panic(fmt.Sprintf("enc: cannot encode %v", rt))
}

// decValue decodes one walker-encoded value into the settable rv, returning
// the remaining bytes. Malformed input is a typed error; counts are checked
// against the remaining byte budget before any allocation, so a corrupt
// length cannot reserve unbounded memory.
func decValue(b []byte, rv reflect.Value) ([]byte, error) {
	rt := rv.Type()
	switch rt.Kind() {
	case reflect.Bool:
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: bool", ErrTruncated)
		}
		switch b[0] {
		case 0:
			rv.SetBool(false)
		case 1:
			rv.SetBool(true)
		default:
			return nil, fmt.Errorf("%w: bool flag %d", ErrCorrupt, b[0])
		}
		return b[1:], nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		r := NewReader(b)
		u := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		switch rt.Kind() {
		case reflect.Float32, reflect.Float64:
			rv.SetFloat(frombits(u))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			rv.SetUint(u)
		default:
			rv.SetInt(int64(u))
		}
		return b[8:], nil
	case reflect.String:
		r := NewReader(b)
		s := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		rv.SetString(s)
		return b[len(b)-r.Len():], nil
	case reflect.Slice:
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: slice flag", ErrTruncated)
		}
		flag := b[0]
		b = b[1:]
		switch flag {
		case 0:
			rv.SetZero()
			return b, nil
		case 1:
		default:
			return nil, fmt.Errorf("%w: slice flag %d", ErrCorrupt, flag)
		}
		r := NewReader(b)
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		b = b[len(b)-r.Len():]
		et := rt.Elem()
		if isPOD(et) {
			size := uint64(et.Size())
			if size > 0 && n > uint64(len(b))/size {
				return nil, fmt.Errorf("%w: %d %s elements in %d bytes", ErrOversized, n, et, len(b))
			}
			sl := reflect.MakeSlice(rt, int(n), int(n))
			if n > 0 && size > 0 {
				total := int(n * size)
				copy(unsafe.Slice((*byte)(sl.UnsafePointer()), total), b[:total])
				b = b[total:]
			}
			rv.Set(sl)
			return b, nil
		}
		// Non-POD elements occupy at least one byte each on the wire.
		if n > uint64(len(b)) {
			return nil, fmt.Errorf("%w: %d elements in %d bytes", ErrOversized, n, len(b))
		}
		sl := reflect.MakeSlice(rt, int(n), int(n))
		var err error
		for i := 0; i < int(n); i++ {
			if b, err = decValue(b, sl.Index(i)); err != nil {
				return nil, err
			}
		}
		rv.Set(sl)
		return b, nil
	case reflect.Array:
		var err error
		for i := 0; i < rv.Len(); i++ {
			if b, err = decValue(b, rv.Index(i)); err != nil {
				return nil, err
			}
		}
		return b, nil
	case reflect.Pointer:
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: pointer flag", ErrTruncated)
		}
		flag := b[0]
		b = b[1:]
		switch flag {
		case 0:
			rv.SetZero()
			return b, nil
		case 1:
			nv := reflect.New(rt.Elem())
			rest, err := decValue(b, nv.Elem())
			if err != nil {
				return nil, err
			}
			rv.Set(nv)
			return rest, nil
		default:
			return nil, fmt.Errorf("%w: pointer flag %d", ErrCorrupt, flag)
		}
	case reflect.Struct:
		var err error
		for i := 0; i < rv.NumField(); i++ {
			if b, err = decValue(b, rv.Field(i)); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: undecodable kind %v", ErrCorrupt, rt.Kind())
}

func frombits(u uint64) float64 {
	r := NewReader(AppendU64(nil, u))
	return r.F64()
}
