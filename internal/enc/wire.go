package enc

// Wire framing for the transport layer (see internal/transport/tcp): every
// message between a leader and a worker process is one length-prefixed frame
// — a 4-byte little-endian payload length, a 1-byte frame kind, and the
// payload. Payloads are built with the append-style primitives below and
// decoded with the sticky-error Reader, so malformed input surfaces as a
// typed error (ErrTruncated, ErrOversized, ErrCorrupt) instead of a panic or
// an out-of-range slice.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrameSize bounds one frame's payload. It is far above anything the
// superstep protocol produces (per-pair slots of a simulated world), so
// hitting it means a corrupt length prefix, not a big job.
const MaxFrameSize = 1 << 28

// Typed wire-format errors. Decoders return (never panic on) these; the
// transport maps them onto the broken-world machinery.
var (
	// ErrTruncated reports a frame or field cut short of its declared length.
	ErrTruncated = errors.New("enc: truncated wire data")
	// ErrOversized reports a length prefix beyond MaxFrameSize (or a field
	// length beyond its enclosing frame).
	ErrOversized = errors.New("enc: oversized wire data")
	// ErrCorrupt reports structurally invalid wire data (bad varint, absurd
	// count, unknown flag byte).
	ErrCorrupt = errors.New("enc: corrupt wire data")
)

// frameHeaderSize is the length prefix plus the kind byte.
const frameHeaderSize = 5

// WriteFrame writes one frame: 4-byte little-endian payload length, the kind
// byte, and the payload. The caller owns buffering (wrap the conn in a
// bufio.Writer and flush at protocol boundaries).
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame payload %d bytes exceeds %d", ErrOversized, len(payload), MaxFrameSize)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough. A clean
// EOF before any header byte is returned as io.EOF (the peer closed between
// frames); anything shorter than the declared layout is ErrTruncated, and a
// length prefix beyond MaxFrameSize is ErrOversized — read without
// allocating, so a corrupt peer cannot make this process reserve 4 GiB.
func ReadFrame(r io.Reader, buf []byte) (kind uint8, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: frame header", ErrTruncated)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: frame length prefix %d exceeds %d", ErrOversized, n, MaxFrameSize)
	}
	kind = hdr[4]
	if n == 0 {
		return kind, buf[:0], nil
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: frame payload (%d of %d bytes)", ErrTruncated, 0, n)
		}
		return 0, nil, err
	}
	return kind, payload, nil
}

// Append-style payload builders. All little-endian, fixed width unless named
// otherwise; AppendBytes/AppendString carry a uvarint length prefix.

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendI64 appends v as its two's-complement little-endian bits.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends v's IEEE-754 bits little-endian — bit-exact round trip,
// which the modeled-clock parity between transports depends on.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendUvarint appends v in the standard varint encoding.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendBytes appends a uvarint length prefix and the bytes.
func AppendBytes(b []byte, v []byte) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(b []byte, v string) []byte {
	b = AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// Reader decodes a frame payload with a sticky error: the first malformed
// field latches Err and every later read returns a zero value, so decoders
// read a whole layout linearly and check Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len reports the bytes not yet consumed.
func (r *Reader) Len() int { return len(r.b) }

// fail latches the reader's first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail(fmt.Errorf("%w: %s needs %d bytes, %d left", ErrTruncated, what, n, len(r.b)))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads IEEE-754 bits little-endian.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Uvarint reads a standard varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(fmt.Errorf("%w: bad uvarint", ErrCorrupt))
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Bytes reads a uvarint length prefix and returns a view of that many bytes
// (valid as long as the underlying payload buffer).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(fmt.Errorf("%w: %d-byte field in %d-byte remainder", ErrOversized, n, len(r.b)))
		return nil
	}
	return r.take(int(n), "bytes")
}

// String reads a uvarint length prefix and that many bytes as a string.
func (r *Reader) String() string { return string(r.Bytes()) }
