package enc

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// podEdge mirrors the shape of the repo's POD deposit types (graph.Edge,
// dsort keys): unexported fixed-size fields, no pointers.
type podEdge struct {
	u, v uint32
	w    float64
}

type podNested struct {
	e   podEdge
	arr [3]int16
	ok  bool
}

// walked exercises the reflect path: strings and slices force it off the
// POD fast path, so all fields must be exported.
type walked struct {
	Name   string
	Vals   []float64
	Edges  []podEdge // POD elements: bulk memcpy inside the walker
	Ptr    *int64
	Nested struct {
		A int32
		B string
	}
}

func roundTrip[T any](t *testing.T, v T) T {
	t.Helper()
	cd := CodecFor[T]()
	b := cd.Append(nil, v)
	got, rest, err := cd.Decode(b)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("Decode(%v): %d bytes left over", v, len(rest))
	}
	out, ok := got.(T)
	if !ok {
		t.Fatalf("Decode(%v): got %T", v, got)
	}
	return out
}

func TestCodecPODRoundTrip(t *testing.T) {
	if got := roundTrip(t, int(-42)); got != -42 {
		t.Fatalf("int: %d", got)
	}
	if got := roundTrip(t, math.Inf(-1)); math.Float64bits(got) != math.Float64bits(math.Inf(-1)) {
		t.Fatalf("float: %v", got)
	}
	// NaN payload bits must survive exactly (clock parity depends on it).
	weird := math.Float64frombits(0x7ff8dead_beef0001)
	if got := roundTrip(t, weird); math.Float64bits(got) != 0x7ff8dead_beef0001 {
		t.Fatalf("nan bits: %x", math.Float64bits(got))
	}
	e := podEdge{u: 7, v: 9, w: 3.25}
	if got := roundTrip(t, e); got != e {
		t.Fatalf("podEdge: %+v", got)
	}
	n := podNested{e: e, arr: [3]int16{-1, 0, 1}, ok: true}
	if got := roundTrip(t, n); got != n {
		t.Fatalf("podNested: %+v", got)
	}
}

func TestCodecWalkerRoundTrip(t *testing.T) {
	x := int64(99)
	v := walked{
		Name:  "phase",
		Vals:  []float64{1.5, math.Pi},
		Edges: []podEdge{{1, 2, 0.5}, {3, 4, 1.5}},
		Ptr:   &x,
	}
	v.Nested.A = -3
	v.Nested.B = "inner"
	got := roundTrip(t, v)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("walked:\n got %+v\nwant %+v", got, v)
	}

	// Nil slice and nil pointer are distinguishable from empty/zero.
	var z walked
	got = roundTrip(t, z)
	if got.Vals != nil || got.Ptr != nil || got.Edges != nil {
		t.Fatalf("zero walked: %+v", got)
	}
	z.Vals = []float64{}
	got = roundTrip(t, z)
	if got.Vals == nil || len(got.Vals) != 0 {
		t.Fatalf("empty slice: %+v", got)
	}
}

func TestCodecSliceRoundTrip(t *testing.T) {
	if got := roundTrip(t, []int32{1, -2, 3}); !reflect.DeepEqual(got, []int32{1, -2, 3}) {
		t.Fatalf("[]int32: %v", got)
	}
	if got := roundTrip(t, []string{"a", "", "c"}); !reflect.DeepEqual(got, []string{"a", "", "c"}) {
		t.Fatalf("[]string: %v", got)
	}
}

func TestCodecCached(t *testing.T) {
	if CodecFor[podEdge]() != CodecFor[podEdge]() {
		t.Fatal("codec not cached")
	}
}

func TestCodecUnencodablePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("map", func() { CodecFor[map[string]int]() })
	mustPanic("chan", func() { CodecFor[chan int]() })
	mustPanic("func", func() { CodecFor[func()]() })
	type badUnexported struct {
		s string // unexported non-POD field forces the reflect path
	}
	mustPanic("unexported", func() { CodecFor[badUnexported]() })
	_ = badUnexported{s: ""}
}

func TestCodecDecodeMalformed(t *testing.T) {
	cd := CodecFor[walked]()
	good := cd.Append(nil, walked{Name: "x", Vals: []float64{1}})
	// Every strict prefix must fail with a typed error, never panic.
	for i := 0; i < len(good); i++ {
		_, _, err := cd.Decode(good[:i])
		if err == nil {
			continue // prefix happens to decode: acceptable only with leftovers consumed
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: untyped error %v", i, err)
		}
	}
	// A corrupt element count must be rejected before allocation.
	b := []byte{1} // non-nil slice
	b = AppendUvarint(b, 1<<40)
	_, _, err := CodecFor[[]float64]().Decode(b)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("huge count: %v", err)
	}
	_, _, err = CodecFor[[]string]().Decode(b)
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("huge count (walker): %v", err)
	}
}

// FuzzCodecDecode feeds arbitrary bytes to the two codec strategies:
// decoding must return a value or a typed error — no panics, no unbounded
// allocation.
func FuzzCodecDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(CodecFor[walked]().Append(nil, walked{Name: "seed", Vals: []float64{1, 2}}))
	f.Add(CodecFor[podNested]().Append(nil, podNested{ok: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cd := range []*Codec{CodecFor[walked](), CodecFor[podNested](), CodecFor[[]podEdge](), CodecFor[[]string]()} {
			_, _, err := cd.Decode(data)
			if err != nil &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrOversized) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: untyped error %v", cd.Name(), err)
			}
		}
	})
}
