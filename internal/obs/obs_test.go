package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("jobs_total", "jobs", L("state", "done"))
	c2 := r.Counter("jobs_total", "jobs", L("state", "done"))
	if c1 != c2 {
		t.Fatal("same (name, labels) must resolve to the same counter")
	}
	c3 := r.Counter("jobs_total", "jobs", L("state", "failed"))
	if c1 == c3 {
		t.Fatal("different labels must resolve to different counters")
	}
	// Label order must not matter.
	g1 := r.Gauge("depth", "", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("depth", "", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatal("label order must not distinguish series")
	}
	// Kind clash panics.
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name should panic")
		}
	}()
	r.Gauge("jobs_total", "")
}

func TestRegistryConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Set(int64(i))
				r.Histogram("h", "", []float64{1, 10}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("h", "", []float64{1, 10}).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("kamsta_jobs_total", "Jobs seen.", L("state", "completed")).Add(3)
	r.Gauge("kamsta_queue_depth", "Waiting jobs.").Set(2)
	r.FloatCounter("kamsta_modeled_seconds_total", "").Add(1.5)
	h := r.Histogram("kamsta_wait_seconds", "Queue wait.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("kamsta_rebuilds", "", func() float64 { return 7 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE kamsta_jobs_total counter",
		`kamsta_jobs_total{state="completed"} 3`,
		"kamsta_queue_depth 2",
		"kamsta_modeled_seconds_total 1.5",
		`kamsta_wait_seconds_bucket{le="0.1"} 1`,
		`kamsta_wait_seconds_bucket{le="1"} 2`,
		`kamsta_wait_seconds_bucket{le="+Inf"} 3`,
		"kamsta_wait_seconds_sum 5.55",
		"kamsta_wait_seconds_count 3",
		"kamsta_rebuilds 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExportParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("rank", "0")).Add(5)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	r.FloatGauge("clock", "").Set(2.25)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, sb.String())
	}
	if m[`a_total{rank="0"}`] != float64(5) {
		t.Fatalf("counter in JSON = %v", m[`a_total{rank="0"}`])
	}
}

func TestRingOverflowKeepsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Span{Start: int64(i)})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	spans := r.drain(nil)
	if len(spans) != 4 {
		t.Fatalf("drained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Start != int64(6+i) {
			t.Fatalf("span %d has Start %d, want %d (oldest-first tail)", i, s.Start, 6+i)
		}
	}
	r.Reset()
	if r.Dropped() != 0 || len(r.drain(nil)) != 0 {
		t.Fatal("Reset must clear the ring")
	}
}

func TestRingAppendDoesNotAllocate(t *testing.T) {
	r := NewRing(64)
	allocs := testing.AllocsPerRun(100, func() {
		r.Append(Span{Kind: SpanCollective, Name: "Allreduce", Start: 1, Dur: 2})
	})
	if allocs != 0 {
		t.Fatalf("Ring.Append allocates %v times per op, want 0", allocs)
	}
}

func TestTraceChromeJSONAndSummary(t *testing.T) {
	tr := NewTrace()
	tr.StartJob(2)
	ring := NewRing(16)
	ring.Append(Span{Kind: SpanPhaseBegin, Rank: 0, Name: "contract", Start: 100, Clock: 0.5})
	ring.Append(Span{Kind: SpanRound, Rank: 0, Round: 1, Vertices: 42, Start: 150, Clock: 0.6})
	ring.Append(Span{Kind: SpanCollective, Rank: 0, Name: "Alltoall", Start: 200, Dur: 50, Clock: 0.7})
	ring.Append(Span{Kind: SpanPhaseEnd, Rank: 0, Name: "contract", Start: 300, Clock: 0.9})
	tr.Collect(ring)

	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d trace events, want 4", len(doc.TraceEvents))
	}

	sb.Reset()
	if err := tr.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"contract", "Alltoall", "round", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
