package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, one sample per line,
// histograms expanded into _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.promType())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch inst := s.inst.(type) {
			case *Counter:
				writeSample(bw, f.name, "", s.labels, "", float64(inst.Value()))
			case *FloatCounter:
				writeSample(bw, f.name, "", s.labels, "", inst.Value())
			case *Gauge:
				writeSample(bw, f.name, "", s.labels, "", float64(inst.Value()))
			case *FloatGauge:
				writeSample(bw, f.name, "", s.labels, "", inst.Value())
			case *gaugeFunc:
				writeSample(bw, f.name, "", s.labels, "", inst.value())
			case *Histogram:
				cum := int64(0)
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					writeSample(bw, f.name, "_bucket", s.labels,
						`le="`+formatFloat(bound)+`"`, float64(cum))
				}
				writeSample(bw, f.name, "_bucket", s.labels, `le="+Inf"`, float64(inst.Count()))
				writeSample(bw, f.name, "_sum", s.labels, "", inst.Sum())
				writeSample(bw, f.name, "_count", s.labels, "", float64(inst.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line. extraLabel (the
// histogram le pair) is merged into an existing label set if present.
func writeSample(bw *bufio.Writer, name, suffix, labels, extraLabel string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	switch {
	case labels == "" && extraLabel == "":
	case labels == "":
		bw.WriteByte('{')
		bw.WriteString(extraLabel)
		bw.WriteByte('}')
	case extraLabel == "":
		bw.WriteString(labels)
	default:
		bw.WriteString(labels[:len(labels)-1]) // drop closing brace
		bw.WriteByte(',')
		bw.WriteString(extraLabel)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders every series as a flat expvar-style JSON object keyed
// by `name{labels}`. Scalars render as numbers; histograms as
// {"count":n,"sum":s,"buckets":{"le":cumulative,...}}. Keys are sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	first := true
	for _, f := range r.snapshot() {
		// Families are name-sorted; series within a family sort by label.
		srt := append([]*series(nil), f.series...)
		sort.Slice(srt, func(i, j int) bool { return srt[i].labels < srt[j].labels })
		for _, s := range srt {
			if !first {
				bw.WriteString(",")
			}
			first = false
			bw.WriteString("\n  ")
			bw.WriteString(strconv.Quote(f.name + s.labels))
			bw.WriteString(": ")
			switch inst := s.inst.(type) {
			case *Counter:
				bw.WriteString(strconv.FormatInt(inst.Value(), 10))
			case *FloatCounter:
				bw.WriteString(jsonFloat(inst.Value()))
			case *Gauge:
				bw.WriteString(strconv.FormatInt(inst.Value(), 10))
			case *FloatGauge:
				bw.WriteString(jsonFloat(inst.Value()))
			case *gaugeFunc:
				bw.WriteString(jsonFloat(inst.value()))
			case *Histogram:
				bw.WriteString(`{"count":`)
				bw.WriteString(strconv.FormatInt(inst.Count(), 10))
				bw.WriteString(`,"sum":`)
				bw.WriteString(jsonFloat(inst.Sum()))
				bw.WriteString(`,"buckets":{`)
				cum := int64(0)
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					if i > 0 {
						bw.WriteString(",")
					}
					bw.WriteString(strconv.Quote(formatFloat(bound)))
					bw.WriteString(":")
					bw.WriteString(strconv.FormatInt(cum, 10))
				}
				if len(inst.bounds) > 0 {
					bw.WriteString(",")
				}
				bw.WriteString(`"+Inf":`)
				bw.WriteString(strconv.FormatInt(inst.Count(), 10))
				bw.WriteString("}}")
			}
		}
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// jsonFloat renders a float as valid JSON (NaN/Inf are not representable;
// they become null, which consumers must treat as absent).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry: Prometheus text by
// default, JSON when the request has ?format=json or an Accept header
// preferring application/json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
