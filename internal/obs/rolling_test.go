package obs

import (
	"math"
	"sync"
	"testing"
)

func TestRollingQuantiles(t *testing.T) {
	r := NewRolling(8)
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Fatal("empty window should report NaN")
	}
	for i := 1; i <= 4; i++ {
		r.Observe(float64(i))
	}
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := r.Quantile(1); got != 4 {
		t.Fatalf("max = %v, want 4", got)
	}
	if got := r.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

func TestRollingEvictsOldSamples(t *testing.T) {
	r := NewRolling(4)
	for i := 0; i < 100; i++ {
		r.Observe(1000) // ancient history, fully evicted below
	}
	for i := 0; i < 4; i++ {
		r.Observe(2)
	}
	if got := r.Quantile(1); got != 2 {
		t.Fatalf("after eviction max = %v, want 2 (old samples must age out)", got)
	}
	if got := r.Count(); got != 104 {
		t.Fatalf("lifetime count = %d, want 104", got)
	}
}

func TestRollingClampsQuantile(t *testing.T) {
	r := NewRolling(4)
	r.Observe(7)
	if got := r.Quantile(-1); got != 7 {
		t.Fatalf("q=-1 → %v, want 7", got)
	}
	if got := r.Quantile(2); got != 7 {
		t.Fatalf("q=2 → %v, want 7", got)
	}
}

func TestRollingConcurrent(t *testing.T) {
	r := NewRolling(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Observe(float64(i % 10))
				_ = r.Quantile(0.9)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
	if q := r.Quantile(0.5); q < 0 || q > 9 {
		t.Fatalf("median %v outside observed range", q)
	}
}
