package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanKind classifies one trace record.
type SpanKind uint8

const (
	// SpanPhaseBegin / SpanPhaseEnd bracket one phase on one PE. Name is
	// the phase name; Clock is the modeled clock at the boundary.
	SpanPhaseBegin SpanKind = iota + 1
	SpanPhaseEnd
	// SpanRound marks the start of one Borůvka round on one PE. Round is
	// the 1-based round number, Vertices the live vertex count.
	SpanRound
	// SpanCollective is one completed superstep on one PE. Name is the
	// operation (Allreduce, Alltoall, ...), Dur the wall time spent inside
	// it (dominated by barrier wait), Clock the modeled clock at entry.
	SpanCollective
)

func (k SpanKind) String() string {
	switch k {
	case SpanPhaseBegin:
		return "phaseBegin"
	case SpanPhaseEnd:
		return "phaseEnd"
	case SpanRound:
		return "round"
	case SpanCollective:
		return "collective"
	}
	return "unknown"
}

// Span is one trace record. Spans are recorded per PE into a Ring with no
// allocation: Name is always a pre-existing constant string (phase names,
// opNames) so appending a Span copies a header, never the bytes.
type Span struct {
	Kind     SpanKind
	Rank     int32
	Round    int32   // Borůvka round in flight (0 before the first round)
	Vertices int64   // SpanRound only: live vertex count
	Name     string  // phase or collective name
	Start    int64   // ns since the Trace epoch
	Dur      int64   // ns; SpanCollective only
	Clock    float64 // modeled clock (seconds) at the record point
}

// Ring is a fixed-capacity single-producer span buffer. Exactly one PE
// goroutine appends; nobody reads until the job has joined (the WaitGroup
// in RunJob gives the happens-before edge). When full it overwrites the
// oldest records — for diagnosing a slow or wedged job the tail is what
// matters — and counts what it dropped.
type Ring struct {
	spans []Span
	n     int64 // total appended since Reset
}

// NewRing returns a ring holding up to capacity spans.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{spans: make([]Span, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.spans) }

// Reset discards all records. Called by the owning PE at job start.
func (r *Ring) Reset() { r.n = 0 }

// Append records one span. Never allocates.
func (r *Ring) Append(s Span) {
	r.spans[r.n%int64(len(r.spans))] = s
	r.n++
}

// Dropped returns how many spans were overwritten since Reset.
func (r *Ring) Dropped() int64 {
	if d := r.n - int64(len(r.spans)); d > 0 {
		return d
	}
	return 0
}

// drain appends the retained spans, oldest first, to dst.
func (r *Ring) drain(dst []Span) []Span {
	if r.n <= int64(len(r.spans)) {
		return append(dst, r.spans[:r.n]...)
	}
	head := r.n % int64(len(r.spans))
	dst = append(dst, r.spans[head:]...)
	return append(dst, r.spans[:head]...)
}

// Trace accumulates spans across one or more jobs. Rings are drained into
// it under a mutex on the graceful completion path of each PE; the hot
// path never touches it. A single Trace can span a whole benchmark sweep —
// the epoch is set at the first job and all timestamps share it.
type Trace struct {
	// CapPerRank bounds each PE's ring (default 1<<14 spans ≈ 1.1 MiB/PE).
	// Set before the first job.
	CapPerRank int

	mu      sync.Mutex
	epoch   time.Time
	p       int
	jobs    int
	spans   []Span
	dropped int64
}

// DefaultRingCap is the per-PE span ring capacity when CapPerRank is 0.
const DefaultRingCap = 1 << 14

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// RingCap returns the configured per-rank ring capacity.
func (t *Trace) RingCap() int {
	if t.CapPerRank > 0 {
		return t.CapPerRank
	}
	return DefaultRingCap
}

// StartJob records that a job over p PEs is starting and returns the trace
// epoch (set on first use) that all span timestamps are relative to.
func (t *Trace) StartJob(p int) time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.epoch.IsZero() {
		t.epoch = time.Now()
	}
	if p > t.p {
		t.p = p
	}
	t.jobs++
	return t.epoch
}

// Collect drains one PE's ring into the trace. Called once per PE per job,
// after the PE has flushed — never concurrently with that PE appending.
func (t *Trace) Collect(r *Ring) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = r.drain(t.spans)
	t.dropped += r.Dropped()
}

// Spans returns a copy of all collected spans sorted by start time.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped returns how many spans were lost to ring overflow.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChromeJSON renders the trace in the Chrome trace_event format
// (load via chrome://tracing or https://ui.perfetto.dev). One process,
// one thread per PE; phases are B/E duration events, collectives are X
// complete events, rounds are instant events.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n  ")
		bw.WriteString(s)
	}
	for _, s := range spans {
		ts := float64(s.Start) / 1e3 // Chrome wants microseconds
		switch s.Kind {
		case SpanPhaseBegin:
			emit(fmt.Sprintf(`{"name":%s,"cat":"phase","ph":"B","pid":0,"tid":%d,"ts":%s,"args":{"clock_s":%s}}`,
				strconv.Quote(s.Name), s.Rank, formatFloat(ts), jsonFloat(s.Clock)))
		case SpanPhaseEnd:
			emit(fmt.Sprintf(`{"name":%s,"cat":"phase","ph":"E","pid":0,"tid":%d,"ts":%s,"args":{"clock_s":%s}}`,
				strconv.Quote(s.Name), s.Rank, formatFloat(ts), jsonFloat(s.Clock)))
		case SpanRound:
			emit(fmt.Sprintf(`{"name":"round %d","cat":"round","ph":"i","s":"t","pid":0,"tid":%d,"ts":%s,"args":{"vertices":%d,"clock_s":%s}}`,
				s.Round, s.Rank, formatFloat(ts), s.Vertices, jsonFloat(s.Clock)))
		case SpanCollective:
			emit(fmt.Sprintf(`{"name":%s,"cat":"collective","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"round":%d,"clock_s":%s}}`,
				strconv.Quote(s.Name), s.Rank, formatFloat(ts), formatFloat(float64(s.Dur)/1e3), s.Round, jsonFloat(s.Clock)))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// aggRow is one aggregation row in the summary tables.
type aggRow struct {
	count   int64
	wallNS  int64
	maxNS   int64
	maxRank int32
	modeled float64
}

// WriteSummary renders a human-readable aggregate: wall and modeled time
// per phase with the slowest PE, wall time per collective kind, and the
// per-round timeline as seen by rank 0 — "which round, which collective,
// which PE is slow" in one screen.
func (t *Trace) WriteSummary(w io.Writer) error {
	t.mu.Lock()
	p, jobs, nspans, dropped := t.p, t.jobs, len(t.spans), t.dropped
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace summary: p=%d jobs=%d spans=%d dropped=%d\n", p, jobs, nspans, dropped)

	// Phases: match Begin/End per rank with a stack; attribute wall time
	// to the innermost open frame.
	type open struct {
		name  string
		start int64
		clock float64
	}
	stacks := map[int32][]open{}
	phases := map[string]*aggRow{}
	var phaseOrder []string
	colls := map[string]*aggRow{}
	var collOrder []string
	type roundRow struct {
		round    int32
		vertices int64
		start    int64
		clock    float64
	}
	var rounds []roundRow
	for _, s := range spans {
		switch s.Kind {
		case SpanPhaseBegin:
			stacks[s.Rank] = append(stacks[s.Rank], open{s.Name, s.Start, s.Clock})
		case SpanPhaseEnd:
			st := stacks[s.Rank]
			if len(st) == 0 {
				continue // truncated ring: end without begin
			}
			fr := st[len(st)-1]
			stacks[s.Rank] = st[:len(st)-1]
			row := phases[fr.name]
			if row == nil {
				row = &aggRow{}
				phases[fr.name] = row
				phaseOrder = append(phaseOrder, fr.name)
			}
			row.count++
			d := s.Start - fr.start
			row.wallNS += d
			if d > row.maxNS {
				row.maxNS, row.maxRank = d, s.Rank
			}
			row.modeled += s.Clock - fr.clock
		case SpanCollective:
			row := colls[s.Name]
			if row == nil {
				row = &aggRow{}
				colls[s.Name] = row
				collOrder = append(collOrder, s.Name)
			}
			row.count++
			row.wallNS += s.Dur
			if s.Dur > row.maxNS {
				row.maxNS, row.maxRank = s.Dur, s.Rank
			}
		case SpanRound:
			if s.Rank == 0 {
				rounds = append(rounds, roundRow{s.Round, s.Vertices, s.Start, s.Clock})
			}
		}
	}

	if len(phaseOrder) > 0 {
		fmt.Fprintf(bw, "\n%-28s %8s %12s %12s %9s %14s\n",
			"phase", "count", "wall(sum)", "wall(max)", "slowestPE", "modeled(sum)")
		for _, name := range phaseOrder {
			r := phases[name]
			fmt.Fprintf(bw, "%-28s %8d %12s %12s %9d %14s\n", name, r.count,
				fmtDur(r.wallNS), fmtDur(r.maxNS), r.maxRank, fmtSec(r.modeled))
		}
	}
	if len(collOrder) > 0 {
		fmt.Fprintf(bw, "\n%-28s %8s %12s %12s %9s\n",
			"collective", "count", "wall(sum)", "wall(max)", "slowestPE")
		for _, name := range collOrder {
			r := colls[name]
			fmt.Fprintf(bw, "%-28s %8d %12s %12s %9d\n", name, r.count,
				fmtDur(r.wallNS), fmtDur(r.maxNS), r.maxRank)
		}
	}
	if len(rounds) > 0 {
		fmt.Fprintf(bw, "\n%-8s %12s %14s %14s\n", "round", "vertices", "wall@start", "clock@start")
		for _, r := range rounds {
			fmt.Fprintf(bw, "%-8d %12d %14s %14s\n", r.round, r.vertices, fmtDur(r.start), fmtSec(r.clock))
		}
	}
	return bw.Flush()
}

func fmtDur(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }

func fmtSec(s float64) string { return strconv.FormatFloat(s, 'g', 6, 64) + "s" }
