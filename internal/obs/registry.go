// Package obs is the zero-dependency observability substrate: a typed
// metrics registry with Prometheus-text and JSON exporters, and a span
// tracer with fixed-capacity per-PE rings (see trace.go).
//
// Design constraints, in order:
//
//  1. Observation must never perturb the modeled clock or message volumes
//     of a job. Nothing in this package is consulted by the cost model;
//     every hook in internal/comm is nil-checked and wall-side only.
//  2. The hot path (one superstep, one message charge) must not allocate.
//     Instruments are resolved once at world/machine construction into
//     plain pointers; updates are single atomic adds.
//  3. Instruments are get-or-create by (name, labels): a Machine that
//     rebuilds its world after a fault re-resolves the same counters, so
//     totals stay monotone across rebuilds — Prometheus semantics.
//
// The registry is intentionally small: counters, float counters, gauges,
// histograms, and lazily-evaluated func gauges. No dependency outside the
// standard library.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument kinds, used only to police that one metric name keeps one type.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindFloatCounter
	kindGauge
	kindFloatGauge
	kindHistogram
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindFloatCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Counter is a monotone int64 counter. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add adds d (callers must keep counters monotone; d < 0 is a bug).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotone float64 counter (CAS loop; uncontended in
// practice — each PE owns its own series).
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds d.
func (c *FloatCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable int64 value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger (high-water-mark semantics).
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old {
			return
		}
		if g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a settable float64 value.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus layout:
// upper bounds plus an implicit +Inf bucket, a sum, and a count).
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf bucket is counts[len(bounds)]
	counts []atomic.Int64 // len(bounds)+1
	sum    FloatCounter
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples observed.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// series is one labeled instance inside a family.
type series struct {
	labels string // rendered `{k="v",...}` suffix, "" when unlabeled
	inst   any    // *Counter | *FloatCounter | *Gauge | *FloatGauge | *Histogram | *gaugeFunc
}

type gaugeFunc struct {
	mu sync.Mutex
	f  func() float64
}

func (g *gaugeFunc) value() float64 {
	g.mu.Lock()
	f := g.f
	g.mu.Unlock()
	if f == nil {
		return 0
	}
	return f()
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only
	series map[string]*series
	order  []*series // registration order
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use, but
// instrument resolution takes a lock — resolve once at construction, not
// per operation.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels produces the canonical `{k="v",...}` suffix. Labels are
// sorted by key so the same set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get resolves (name, labels) to its series, creating family and series as
// needed. Panics on a kind clash — that is a programming error, caught at
// construction time, never in a hot path.
func (r *Registry) get(name, help string, k kind, bounds []float64, labels []Label, mk func() any) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, k))
	}
	ls := renderLabels(labels)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls, inst: mk()}
		f.series[ls] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.get(name, help, kindCounter, nil, labels, func() any { return new(Counter) })
	return s.inst.(*Counter)
}

// FloatCounter returns the float counter for (name, labels).
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.get(name, help, kindFloatCounter, nil, labels, func() any { return new(FloatCounter) })
	return s.inst.(*FloatCounter)
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.get(name, help, kindGauge, nil, labels, func() any { return new(Gauge) })
	return s.inst.(*Gauge)
}

// FloatGauge returns the float gauge for (name, labels).
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	s := r.get(name, help, kindFloatGauge, nil, labels, func() any { return new(FloatGauge) })
	return s.inst.(*FloatGauge)
}

// Histogram returns the histogram for (name, labels). bounds are upper
// bucket bounds in ascending order; a +Inf bucket is implicit. The bounds
// of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.get(name, help, kindHistogram, bounds, labels, func() any {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	})
	return s.inst.(*Histogram)
}

// GaugeFunc registers a gauge evaluated lazily at export time. Re-registering
// the same (name, labels) replaces the function — a Machine that rebuilds its
// world after a fault rebinds the gauge to the live world's state.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	s := r.get(name, help, kindGaugeFunc, nil, labels, func() any { return new(gaugeFunc) })
	g := s.inst.(*gaugeFunc)
	g.mu.Lock()
	g.f = f
	g.mu.Unlock()
}

// famSnap is an export-time copy of one family: safe to walk after the
// registry lock is released (instrument values are read atomically).
type famSnap struct {
	name, help string
	kind       kind
	bounds     []float64
	series     []*series
}

// snapshot returns families sorted by name, series in registration order.
// The series slices are copied under the lock so concurrent registration
// cannot race with an export walking them.
func (r *Registry) snapshot() []famSnap {
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, famSnap{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			bounds: f.bounds,
			series: append([]*series(nil), f.order...),
		})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
