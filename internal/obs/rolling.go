package obs

import (
	"math"
	"sort"
	"sync"
)

// Rolling is a fixed-capacity sliding window of float64 observations with
// quantile queries — the estimator behind deadline-aware load shedding in
// internal/serve. A histogram with fixed buckets (Histogram) answers "how
// are samples distributed over all time"; Rolling answers "what does a
// recent service time look like", which is what an admission controller
// needs: old samples age out, so the estimate tracks the workload mix the
// queue holds right now rather than the whole process history.
//
// The window is a ring of the last Cap observations. Quantile sorts a copy
// under the lock; windows are small (≤ a few hundred samples) so the cost
// is microseconds and the simplicity beats a streaming sketch. Safe for
// concurrent use.
type Rolling struct {
	mu    sync.Mutex
	buf   []float64
	next  int   // ring write cursor
	full  bool  // buf has wrapped at least once
	total int64 // lifetime observation count
}

// NewRolling returns a window holding the last capacity observations
// (minimum 1).
func NewRolling(capacity int) *Rolling {
	if capacity < 1 {
		capacity = 1
	}
	return &Rolling{buf: make([]float64, capacity)}
}

// Observe records one sample, evicting the oldest when the window is full.
func (r *Rolling) Observe(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Count reports the lifetime number of observations (not the window size);
// callers gate estimates on a minimum sample count before trusting them.
func (r *Rolling) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Quantile returns the q-th quantile (q in [0,1]) of the samples currently
// in the window, or NaN when the window is empty. q outside [0,1] is
// clamped.
func (r *Rolling) Quantile(q float64) float64 {
	r.mu.Lock()
	n := len(r.buf)
	if !r.full {
		n = r.next
	}
	if n == 0 {
		r.mu.Unlock()
		return math.NaN()
	}
	sorted := append([]float64(nil), r.buf[:n]...)
	r.mu.Unlock()
	sort.Float64s(sorted)
	q = math.Min(math.Max(q, 0), 1)
	return sorted[int(q*float64(n-1))]
}
