// Package seqmst implements the classic sequential MST/MSF algorithms:
// Kruskal, Prim (Jarník), Borůvka, and the Filter-Kruskal algorithm of
// Osipov, Sanders and Singler [8] that the paper's Filter-Borůvka adapts to
// the distributed setting. These serve three purposes: ground truth for
// every correctness test in the repository, the sequential baseline of the
// benchmark harness, and a reference for the filtering recursion structure.
//
// All algorithms use the unique global weight order (graph.LessWeight), so
// the minimum spanning forest is unique and algorithms can be compared by
// edge set, not just total weight.
package seqmst

import (
	"container/heap"
	"slices"

	"kamsta/internal/graph"
	"kamsta/internal/radix"
	"kamsta/internal/unionfind"
)

// Result is a minimum spanning forest: its edges (sorted canonically), its
// total weight, and the number of connected components of the input
// (isolated vertices not counted — only vertices incident to input edges).
type Result struct {
	Edges       []graph.Edge
	TotalWeight uint64
	Components  int
}

// sortCanonical puts MSF edges into a deterministic order for comparison.
func sortCanonical(edges []graph.Edge) {
	slices.SortFunc(edges, func(a, b graph.Edge) int {
		if a.TB != b.TB {
			if a.TB < b.TB {
				return -1
			}
			return 1
		}
		return graph.CmpWeight(a, b)
	})
}

func finish(n int, picked []graph.Edge, uf *unionfind.UF, touched []bool) Result {
	total := uint64(0)
	for _, e := range picked {
		total += uint64(e.W)
	}
	sortCanonical(picked)
	comps := 0
	seen := map[int]bool{}
	for v := 1; v <= n; v++ {
		if touched != nil && !touched[v] {
			continue
		}
		r := uf.Find(v)
		if !seen[r] {
			seen[r] = true
			comps++
		}
	}
	return Result{Edges: picked, TotalWeight: total, Components: comps}
}

// markTouched flags every vertex incident to an edge.
func markTouched(n int, edges []graph.Edge) []bool {
	touched := make([]bool, n+1)
	for _, e := range edges {
		touched[e.U] = true
		touched[e.V] = true
	}
	return touched
}

// UndirectedFromDirected keeps one canonical copy (U < V) of every logical
// edge from a symmetric directed edge list, dropping self-loops.
func UndirectedFromDirected(directed []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, len(directed)/2)
	for _, e := range directed {
		if e.U < e.V {
			out = append(out, e)
		}
	}
	return out
}

// Kruskal computes the MSF of the undirected edges over vertices 1..n by
// sorting all edges and growing a forest with union-find.
func Kruskal(n int, edges []graph.Edge) Result {
	sorted := make([]graph.Edge, len(edges))
	copy(sorted, edges)
	radix.Sort(sorted, graph.KeyWeight, graph.LessWeight)
	uf := unionfind.New(n + 1)
	var picked []graph.Edge
	for _, e := range sorted {
		if e.U == e.V {
			continue
		}
		if uf.Union(int(e.U), int(e.V)) {
			picked = append(picked, e)
		}
	}
	return finish(n, picked, uf, markTouched(n, edges))
}

// filterKruskalThreshold is the input size below which the recursion falls
// back to plain Kruskal.
const filterKruskalThreshold = 1024

// FilterKruskal computes the MSF with the quicksort-style recursion of [8]:
// partition at a pivot weight, recurse on the light half, filter the heavy
// half against the partial forest, recurse on the survivors.
func FilterKruskal(n int, edges []graph.Edge) Result {
	work := make([]graph.Edge, len(edges))
	copy(work, edges)
	uf := unionfind.New(n + 1)
	var picked []graph.Edge
	filterKruskalRec(work, uf, &picked)
	return finish(n, picked, uf, markTouched(n, edges))
}

func filterKruskalRec(edges []graph.Edge, uf *unionfind.UF, picked *[]graph.Edge) {
	if len(edges) <= filterKruskalThreshold {
		kruskalInto(edges, uf, picked)
		return
	}
	pivot := medianOfThreeWeight(edges)
	// Partition: light (< pivot or equal-with-smaller-tiebreak) vs heavy.
	light, heavy := partitionByPivot(edges, pivot)
	filterKruskalRec(light, uf, picked)
	// Filter: drop heavy edges already connected by the light forest.
	survivors := heavy[:0]
	for _, e := range heavy {
		if uf.Find(int(e.U)) != uf.Find(int(e.V)) {
			survivors = append(survivors, e)
		}
	}
	filterKruskalRec(survivors, uf, picked)
}

func kruskalInto(edges []graph.Edge, uf *unionfind.UF, picked *[]graph.Edge) {
	slices.SortFunc(edges, graph.CmpWeight)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if uf.Union(int(e.U), int(e.V)) {
			*picked = append(*picked, e)
		}
	}
}

// medianOfThreeWeight picks a pivot edge whose (W, TB) key is the median of
// the first, middle and last edge.
func medianOfThreeWeight(edges []graph.Edge) graph.Edge {
	a, b, c := edges[0], edges[len(edges)/2], edges[len(edges)-1]
	if graph.LessWeight(b, a) {
		a, b = b, a
	}
	if graph.LessWeight(c, b) {
		b = c
		if graph.LessWeight(b, a) {
			a, b = b, a
		}
	}
	return b
}

// partitionByPivot splits edges into (≤ pivot, > pivot) under the unique
// weight order. The pivot edge itself lands in the light part.
func partitionByPivot(edges []graph.Edge, pivot graph.Edge) (light, heavy []graph.Edge) {
	light = make([]graph.Edge, 0, len(edges)/2)
	heavy = make([]graph.Edge, 0, len(edges)/2)
	for _, e := range edges {
		if graph.LessWeight(pivot, e) {
			heavy = append(heavy, e)
		} else {
			light = append(light, e)
		}
	}
	return light, heavy
}

// primItem is a heap entry: the best known connecting edge for a vertex.
type primItem struct {
	v    graph.VID
	edge graph.Edge
}

type primHeap []primItem

func (h primHeap) Len() int            { return len(h) }
func (h primHeap) Less(i, j int) bool  { return graph.LessWeight(h[i].edge, h[j].edge) }
func (h primHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *primHeap) Push(x interface{}) { *h = append(*h, x.(primItem)) }
func (h *primHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Prim computes the MSF with the Jarník–Prim algorithm using a binary heap,
// restarted per component.
func Prim(n int, edges []graph.Edge) Result {
	// Build adjacency (CSR) with both directions.
	deg := make([]int, n+2)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int, n+2)
	for v := 1; v <= n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]graph.Edge, off[n+1])
	fill := make([]int, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[off[e.U]+fill[e.U]] = e
		fill[e.U]++
		rev := e
		rev.U, rev.V = e.V, e.U
		adj[off[e.V]+fill[e.V]] = rev
		fill[e.V]++
	}

	touched := markTouched(n, edges)
	inTree := make([]bool, n+1)
	uf := unionfind.New(n + 1) // used only for component counting in finish
	var picked []graph.Edge
	h := &primHeap{}
	for start := 1; start <= n; start++ {
		if !touched[start] || inTree[start] {
			continue
		}
		inTree[start] = true
		*h = (*h)[:0]
		for _, e := range adj[off[start] : off[start]+deg[start]] {
			heap.Push(h, primItem{v: e.V, edge: e})
		}
		for h.Len() > 0 {
			it := heap.Pop(h).(primItem)
			if inTree[it.v] {
				continue
			}
			inTree[it.v] = true
			picked = append(picked, it.edge)
			uf.Union(int(it.edge.U), int(it.edge.V))
			for _, e := range adj[off[it.v] : off[it.v]+deg[it.v]] {
				if !inTree[e.V] {
					heap.Push(h, primItem{v: e.V, edge: e})
				}
			}
		}
	}
	return finish(n, picked, uf, touched)
}

// Boruvka computes the MSF with the classic Borůvka rounds: every component
// selects its lightest incident edge, the selected edges are added, and
// components merge, halving their number per round (§II-C).
func Boruvka(n int, edges []graph.Edge) Result {
	uf := unionfind.New(n + 1)
	var picked []graph.Edge
	for {
		// best[root] = lightest edge leaving the component of root.
		best := map[int]graph.Edge{}
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			ru, rv := uf.Find(int(e.U)), uf.Find(int(e.V))
			if ru == rv {
				continue
			}
			if b, ok := best[ru]; !ok || graph.LessWeight(e, b) {
				best[ru] = e
			}
			if b, ok := best[rv]; !ok || graph.LessWeight(e, b) {
				best[rv] = e
			}
		}
		if len(best) == 0 {
			break
		}
		merged := false
		for _, e := range best {
			if uf.Union(int(e.U), int(e.V)) {
				picked = append(picked, e)
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	return finish(n, picked, uf, markTouched(n, edges))
}

// VerifySpanningForest checks that result is a spanning forest of the input
// connecting exactly the input's components, and that every result edge is
// an input edge. Returns "" when consistent, or a diagnostic.
func VerifySpanningForest(n int, input []graph.Edge, result Result) string {
	inSet := map[uint64]bool{}
	for _, e := range input {
		inSet[e.TB] = true
	}
	uf := unionfind.New(n + 1)
	for _, e := range result.Edges {
		if !inSet[e.TB] {
			return "result contains an edge not present in the input"
		}
		if !uf.Union(int(e.U), int(e.V)) {
			return "result contains a cycle"
		}
	}
	full := unionfind.New(n + 1)
	for _, e := range input {
		full.Union(int(e.U), int(e.V))
	}
	for _, e := range input {
		if full.Same(uint64ToInt(e.U), uint64ToInt(e.V)) != uf.Same(uint64ToInt(e.U), uint64ToInt(e.V)) {
			return "result does not span the input components"
		}
	}
	return ""
}

func uint64ToInt(v graph.VID) int { return int(v) }
