package seqmst

import (
	"testing"
	"testing/quick"

	"kamsta/internal/graph"
	"kamsta/internal/rng"
	"kamsta/internal/unionfind"
)

func newUFForTest(n int) *unionfind.UF { return unionfind.New(n + 1) }

// path 1-2-3-4 with increasing weights plus a heavy chord.
func pathWithChord() (int, []graph.Edge) {
	return 4, []graph.Edge{
		graph.NewEdge(1, 2, 1),
		graph.NewEdge(2, 3, 2),
		graph.NewEdge(3, 4, 3),
		graph.NewEdge(1, 4, 10),
	}
}

func triangle() (int, []graph.Edge) {
	return 3, []graph.Edge{
		graph.NewEdge(1, 2, 1),
		graph.NewEdge(2, 3, 2),
		graph.NewEdge(1, 3, 3),
	}
}

func allAlgorithms() map[string]func(int, []graph.Edge) Result {
	return map[string]func(int, []graph.Edge) Result{
		"kruskal":       Kruskal,
		"filterKruskal": FilterKruskal,
		"prim":          Prim,
		"boruvka":       Boruvka,
	}
}

func TestKnownSmallGraphs(t *testing.T) {
	type fixture struct {
		name  string
		n     int
		edges []graph.Edge
		want  uint64
		count int
	}
	n1, e1 := pathWithChord()
	n2, e2 := triangle()
	fixtures := []fixture{
		{"pathWithChord", n1, e1, 6, 3},
		{"triangle", n2, e2, 3, 2},
	}
	for _, fx := range fixtures {
		for name, alg := range allAlgorithms() {
			r := alg(fx.n, fx.edges)
			if r.TotalWeight != fx.want {
				t.Errorf("%s on %s: weight %d want %d", name, fx.name, r.TotalWeight, fx.want)
			}
			if len(r.Edges) != fx.count {
				t.Errorf("%s on %s: %d edges want %d", name, fx.name, len(r.Edges), fx.count)
			}
			if msg := VerifySpanningForest(fx.n, fx.edges, r); msg != "" {
				t.Errorf("%s on %s: %s", name, fx.name, msg)
			}
		}
	}
}

func TestSingleEdge(t *testing.T) {
	edges := []graph.Edge{graph.NewEdge(1, 2, 5)}
	for name, alg := range allAlgorithms() {
		r := alg(2, edges)
		if r.TotalWeight != 5 || len(r.Edges) != 1 || r.Components != 1 {
			t.Errorf("%s: %+v", name, r)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	for name, alg := range allAlgorithms() {
		r := alg(5, nil)
		if r.TotalWeight != 0 || len(r.Edges) != 0 || r.Components != 0 {
			t.Errorf("%s on empty graph: %+v", name, r)
		}
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	edges := []graph.Edge{
		{U: 1, V: 1, W: 1, TB: graph.MakeTB(1, 1)},
		graph.NewEdge(1, 2, 7),
	}
	for name, alg := range allAlgorithms() {
		r := alg(2, edges)
		if r.TotalWeight != 7 || len(r.Edges) != 1 {
			t.Errorf("%s with self-loop: %+v", name, r)
		}
	}
}

func TestDisconnectedComponents(t *testing.T) {
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 1),
		graph.NewEdge(3, 4, 2),
		graph.NewEdge(5, 6, 3),
		graph.NewEdge(5, 7, 4),
	}
	for name, alg := range allAlgorithms() {
		r := alg(7, edges)
		if r.Components != 3 {
			t.Errorf("%s: %d components want 3", name, r.Components)
		}
		if r.TotalWeight != 10 || len(r.Edges) != 4 {
			t.Errorf("%s: %+v", name, r)
		}
	}
}

func TestParallelEdgesKeepLightest(t *testing.T) {
	// Two logical edges between 1-2 (a true multigraph needs distinct TB
	// which MakeTB can't give for the same pair, so emulate by weight only).
	edges := []graph.Edge{
		graph.NewEdge(1, 2, 9),
		graph.NewEdge(1, 2, 2),
	}
	for name, alg := range allAlgorithms() {
		r := alg(2, edges)
		if r.TotalWeight != 2 {
			t.Errorf("%s: picked weight %d want 2", name, r.TotalWeight)
		}
	}
}

// randomGraph builds a connected-ish random graph with distinct tie-break
// keys; returns n and the undirected edge list.
func randomGraph(n, extra int, seed uint64) []graph.Edge {
	r := rng.New(seed)
	var edges []graph.Edge
	seen := map[uint64]bool{}
	// random spanning path first so most vertices are connected
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u, v := graph.VID(perm[i-1]+1), graph.VID(perm[i]+1)
		tb := graph.MakeTB(u, v)
		if !seen[tb] {
			seen[tb] = true
			edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
		}
	}
	for k := 0; k < extra; k++ {
		u := graph.VID(r.Intn(n) + 1)
		v := graph.VID(r.Intn(n) + 1)
		if u == v {
			continue
		}
		tb := graph.MakeTB(u, v)
		if seen[tb] {
			continue
		}
		seen[tb] = true
		edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
	}
	for i := range edges {
		edges[i].ID = uint64(i)
	}
	return edges
}

func TestAllAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		n := 50 + int(seed)*13
		edges := randomGraph(n, n*3, seed)
		want := Kruskal(n, edges)
		for name, alg := range allAlgorithms() {
			got := alg(n, edges)
			if got.TotalWeight != want.TotalWeight {
				t.Fatalf("seed %d: %s weight %d != kruskal %d", seed, name, got.TotalWeight, want.TotalWeight)
			}
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("seed %d: %s has %d edges, kruskal %d", seed, name, len(got.Edges), len(want.Edges))
			}
			// Unique weights → unique MSF → identical edge sets.
			for i := range got.Edges {
				if got.Edges[i].TB != want.Edges[i].TB {
					t.Fatalf("seed %d: %s edge set differs from kruskal at %d", seed, name, i)
				}
			}
			if msg := VerifySpanningForest(n, edges, got); msg != "" {
				t.Fatalf("seed %d: %s: %s", seed, name, msg)
			}
		}
	}
}

func TestFilterKruskalLargeInput(t *testing.T) {
	// Exceed the recursion threshold to exercise partition + filter.
	n := 2000
	edges := randomGraph(n, 20000, 99)
	want := Kruskal(n, edges)
	got := FilterKruskal(n, edges)
	if got.TotalWeight != want.TotalWeight || len(got.Edges) != len(want.Edges) {
		t.Fatalf("filterKruskal %d/%d vs kruskal %d/%d",
			got.TotalWeight, len(got.Edges), want.TotalWeight, len(want.Edges))
	}
}

func TestTreeInputKeepsAllEdges(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw)
		n := 30
		r := rng.New(seed)
		var edges []graph.Edge
		// random tree: connect i to a random earlier vertex
		for i := 2; i <= n; i++ {
			u := graph.VID(r.Intn(i-1) + 1)
			edges = append(edges, graph.NewEdge(u, graph.VID(i), graph.RandomWeight(seed, u, graph.VID(i))))
		}
		for name, alg := range allAlgorithms() {
			res := alg(n, edges)
			if len(res.Edges) != n-1 {
				t.Logf("%s dropped tree edges: %d of %d", name, len(res.Edges), n-1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMSTWeightLowerBoundProperty(t *testing.T) {
	// Property: replacing any MST edge by any non-MST edge crossing the cut
	// cannot reduce the weight — here tested as: MST weight <= weight of
	// every spanning structure found by a greedy heuristic on shuffled edges.
	edges := randomGraph(40, 100, 5)
	n := 40
	mst := Kruskal(n, edges)
	r := rng.New(123)
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]graph.Edge, len(edges))
		for i, j := range r.Perm(len(edges)) {
			shuffled[i] = edges[j]
		}
		uf := newUFForTest(n)
		var total uint64
		cnt := 0
		for _, e := range shuffled {
			if uf.Union(int(e.U), int(e.V)) {
				total += uint64(e.W)
				cnt++
			}
		}
		if cnt != len(mst.Edges) {
			t.Fatalf("greedy forest has %d edges, MST %d", cnt, len(mst.Edges))
		}
		if total < mst.TotalWeight {
			t.Fatalf("greedy forest lighter (%d) than MST (%d)", total, mst.TotalWeight)
		}
	}
}

func TestUndirectedFromDirected(t *testing.T) {
	dir := []graph.Edge{
		graph.NewEdge(1, 2, 5), graph.NewEdge(2, 1, 5),
		graph.NewEdge(3, 2, 6), graph.NewEdge(2, 3, 6),
	}
	und := UndirectedFromDirected(dir)
	if len(und) != 2 {
		t.Fatalf("got %d undirected edges want 2", len(und))
	}
	for _, e := range und {
		if e.U >= e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
	}
}

func TestVerifyDetectsCycle(t *testing.T) {
	n, edges := triangle()
	bad := Result{Edges: edges} // all three edges form a cycle
	if VerifySpanningForest(n, edges, bad) == "" {
		t.Fatal("verifier accepted a cyclic result")
	}
}

func TestVerifyDetectsForeignEdge(t *testing.T) {
	n, edges := pathWithChord()
	bad := Result{Edges: []graph.Edge{graph.NewEdge(1, 3, 1)}}
	if VerifySpanningForest(n, edges, bad) == "" {
		t.Fatal("verifier accepted a foreign edge")
	}
}

func TestVerifyDetectsNonSpanning(t *testing.T) {
	n, edges := pathWithChord()
	bad := Result{Edges: edges[:1]}
	if VerifySpanningForest(n, edges, bad) == "" {
		t.Fatal("verifier accepted a non-spanning result")
	}
}

func BenchmarkKruskal(b *testing.B)       { benchAlg(b, Kruskal) }
func BenchmarkFilterKruskal(b *testing.B) { benchAlg(b, FilterKruskal) }
func BenchmarkPrim(b *testing.B)          { benchAlg(b, Prim) }
func BenchmarkBoruvka(b *testing.B)       { benchAlg(b, Boruvka) }

func benchAlg(b *testing.B, alg func(int, []graph.Edge) Result) {
	n := 5000
	edges := randomGraph(n, 50000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg(n, edges)
	}
}
