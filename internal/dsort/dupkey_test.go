package dsort

import (
	"math"
	"math/big"
	"math/bits"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/rng"
)

// weightOnlyLess is the duplicate-heavy weak order of an unweighted ingest
// before weight assignment: edges compare by weight alone, so an all-equal-
// weight graph is one giant tie class.
func weightOnlyLess(a, b graph.Edge) bool { return a.W < b.W }

func weightOnlyKey(e graph.Edge) uint64 { return uint64(e.W) }

// makeDupEdges builds per-rank edges over a ring graph whose weights cycle
// through the given values (len 1 → all equal, len 2 → two tie classes).
func makeDupEdges(rank, per int, weights []graph.Weight) []graph.Edge {
	out := make([]graph.Edge, per)
	for i := range out {
		u := graph.VID(rank*per + i + 1)
		v := u%graph.VID(per*64) + 1
		if v == u {
			v = u + 1
		}
		out[i] = graph.NewEdge(u, v, weights[(rank+i)%len(weights)])
		out[i].ID = uint64(rank*per + i)
	}
	return out
}

// runDupSort sorts duplicate-heavy edges on a fresh p-PE world and returns
// the per-rank chunk sizes, each rank's output, and the modeled makespan.
func runDupSort(t *testing.T, p int, weights []graph.Weight, ord Order[graph.Edge], opt Options) ([][]graph.Edge, float64) {
	t.Helper()
	w := comm.NewWorld(p)
	outs := make([][]graph.Edge, p)
	w.Run(func(c *comm.Comm) {
		local := makeDupEdges(c.Rank(), 200, weights)
		outs[c.Rank()] = Sort(c, local, ord, opt)
		if !IsGloballySorted(c, outs[c.Rank()], ord.Less) {
			t.Errorf("p=%d: not globally sorted", p)
		}
	})
	return outs, w.MaxClock()
}

// TestDuplicateKeyRegression pushes all-equal-weight and two-distinct-
// weight inputs through both sorters at p ∈ {2, 8, 16}: the result must be
// globally sorted, perfectly balanced, lossless, and the modeled clock must
// be bit-identical across runs.
func TestDuplicateKeyRegression(t *testing.T) {
	weightSets := map[string][]graph.Weight{
		"all-equal":    {7},
		"two-distinct": {3, 200},
	}
	orders := map[string]Order[graph.Edge]{
		"keyed":   ByKey(weightOnlyLess, weightOnlyKey),
		"keyless": ByLess(weightOnlyLess),
	}
	for _, p := range []int{2, 8, 16} {
		for _, alg := range []Algorithm{SampleSort, HypercubeQS} {
			for wname, ws := range weightSets {
				for oname, ord := range orders {
					outs, clk := runDupSort(t, p, ws, ord, Options{Alg: alg, Seed: 11})
					total, lo := 0, math.MaxInt
					hi := 0
					for _, o := range outs {
						total += len(o)
						lo = min(lo, len(o))
						hi = max(hi, len(o))
					}
					if total != 200*p {
						t.Errorf("p=%d alg=%d %s/%s: lost elements: %d of %d", p, alg, wname, oname, total, 200*p)
					}
					if hi-lo > 1 {
						t.Errorf("p=%d alg=%d %s/%s: final chunks unbalanced: %d..%d", p, alg, wname, oname, lo, hi)
					}
					outs2, clk2 := runDupSort(t, p, ws, ord, Options{Alg: alg, Seed: 11})
					if math.Float64bits(clk) != math.Float64bits(clk2) {
						t.Errorf("p=%d alg=%d %s/%s: modeled clock not bit-identical: %x vs %x",
							p, alg, wname, oname, math.Float64bits(clk), math.Float64bits(clk2))
					}
					for r := range outs {
						if len(outs[r]) != len(outs2[r]) {
							t.Errorf("p=%d alg=%d %s/%s: rank %d chunk size differs across runs", p, alg, wname, oname, r)
						}
					}
				}
			}
		}
	}
}

// TestHypercubeDuplicateLoadBalance asserts the tie-splitting fix: on an
// all-equal-key input no PE may exceed ~2× the average load at ANY point of
// the hypercube recursion (the former all-ties-high partition collapsed
// nearly the whole input onto one PE, i.e. ~p× the average by the last
// level). Two-distinct-weight inputs cannot meet 2×: when the pivot lands
// on one class, global sortedness FORCES the whole other class onto one
// subcube, so only ties are splittable and the load drifts by a constant
// factor per level — asserted bounded at 6×, far below the old ~p×.
func TestHypercubeDuplicateLoadBalance(t *testing.T) {
	for _, p := range []int{2, 8, 16} {
		for _, tc := range []struct {
			name    string
			weights []graph.Weight
			factor  int
		}{
			{"all-equal", []graph.Weight{9}, 2},
			{"two-distinct", []graph.Weight{9, 10}, 6},
		} {
			per := 200
			perRank := make([]int, p) // each PE goroutine writes only its slot
			hqsLoadProbe = func(rank, level, n int) {
				perRank[rank] = max(perRank[rank], n)
			}
			w := comm.NewWorld(p)
			w.Run(func(c *comm.Comm) {
				local := makeDupEdges(c.Rank(), per, tc.weights)
				Sort(c, local, ByKey(weightOnlyLess, weightOnlyKey), Options{Alg: HypercubeQS, Seed: 3})
			})
			hqsLoadProbe = nil
			maxLoad := 0
			for _, n := range perRank {
				maxLoad = max(maxLoad, n)
			}
			if limit := tc.factor*per + 64; maxLoad > limit {
				t.Errorf("p=%d %s: mid-recursion load %d exceeds %d×average+64 = %d", p, tc.name, maxLoad, tc.factor, limit)
			}
		}
	}
}

// TestHypercubeDistinctKeysUnchanged pins that the tie alternation is
// invisible under a total order: ints are made distinct world-wide, and the
// sorted outcome must equal the reference exactly (this is the regime the
// golden modeled-time bits run in).
func TestHypercubeDistinctKeysUnchanged(t *testing.T) {
	p := 8
	w := comm.NewWorld(p)
	outs := make([][]int, p)
	w.Run(func(c *comm.Comm) {
		r := rng.New(77).Split(uint64(c.Rank()))
		local := make([]int, 100)
		for i := range local {
			local[i] = r.Intn(1<<20)<<4 | c.Rank() // distinct across the world
		}
		outs[c.Rank()] = Sort(c, local, ByKey(intLess, intKey), Options{Alg: HypercubeQS})
	})
	k := 0
	prev := -1
	for _, o := range outs {
		for _, v := range o {
			if v <= prev {
				t.Fatalf("position %d: %d after %d", k, v, prev)
			}
			prev = v
			k++
		}
	}
	if k != 100*p {
		t.Fatalf("lost elements: %d", k)
	}
}

// TestRebalanceBoundOverflow pins the 128-bit boundary arithmetic against
// big.Int ground truth at counts where the former (g·p)/total and
// ((j+1)·total)/p expressions wrap int64.
func TestRebalanceBoundOverflow(t *testing.T) {
	cases := []struct{ total, p int }{
		{(1 << 61) + 12345, 64},      // total·p = 2^67
		{(1 << 62) - 1, 3},           // just below the int64 edge
		{(1 << 55) + 7, 1 << 9},      // total·p = 2^64
		{math.MaxInt64 / 2, 100_000}, // heavily overflowing
		{12345, 7},                   // sanity: small values
		{1, 1024},                    // fewer elements than PEs
	}
	for _, tc := range cases {
		for _, j := range []int{0, 1, tc.p / 2, tc.p - 1, tc.p} {
			got := rebalanceBound(j, tc.total, tc.p)
			want := new(big.Int).Mul(big.NewInt(int64(j)), big.NewInt(int64(tc.total)))
			want.Div(want, big.NewInt(int64(tc.p)))
			if !want.IsInt64() || got != int(want.Int64()) {
				t.Errorf("rebalanceBound(%d, %d, %d) = %d, want %s", j, tc.total, tc.p, got, want)
			}
			// Demonstrate the former formulation really wraps here.
			if hi, _ := bits.Mul64(uint64(j), uint64(tc.total)); hi != 0 {
				naive := j * tc.total / tc.p
				if naive == got {
					t.Errorf("case (%d,%d,%d): expected naive int arithmetic to differ, both %d", j, tc.total, tc.p, got)
				}
			}
		}
	}
}

// TestRebalanceBoundsCoverPositions checks the boundary invariants the
// redistribution loop relies on: bounds are monotone, start at 0, end at
// total, and adjacent targets differ by ⌊total/p⌋ or ⌈total/p⌉.
func TestRebalanceBoundsCoverPositions(t *testing.T) {
	for _, tc := range []struct{ total, p int }{
		{0, 4}, {1, 4}, {17, 4}, {1 << 61, 64}, {math.MaxInt64 - 1, 3},
	} {
		prev := rebalanceBound(0, tc.total, tc.p)
		if prev != 0 {
			t.Fatalf("bounds must start at 0, got %d", prev)
		}
		lo := tc.total / tc.p
		hi := lo
		if tc.total%tc.p != 0 {
			hi++ // avoid (total+p-1) overflow near MaxInt64
		}
		for j := 1; j <= tc.p; j++ {
			b := rebalanceBound(j, tc.total, tc.p)
			if d := b - prev; d < lo || d > hi {
				t.Fatalf("total=%d p=%d: chunk %d has size %d, want %d..%d", tc.total, tc.p, j-1, d, lo, hi)
			}
			prev = b
		}
		if prev != tc.total {
			t.Fatalf("bounds must end at total=%d, got %d", tc.total, prev)
		}
	}
}
