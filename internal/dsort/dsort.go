// Package dsort provides the distributed sorting algorithms of §II-A and
// §VI-C: hypercube quicksort for small inputs (below 512 elements per PE on
// average, following the paper's rule) and a two-level sample sort in the
// spirit of AMS-sort for large inputs. Both leave the data globally sorted
// — PE i holds a contiguous chunk, chunks ordered by rank — and perfectly
// balanced (sizes differing by at most one).
//
// Sample sort delivers its data through a configurable sparse all-to-all
// strategy; with alltoall.Grid this is the "two-level" data delivery that
// makes the sorter scale on large machines. Splitters are selected from a
// gathered random sample (the paper sorts the samples with the hypercube
// algorithm; gathering them gives identical splitters, a documented
// simplification).
package dsort

import (
	"sort"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/rng"
)

// Algorithm selects a sorter.
type Algorithm int

const (
	// Auto follows the paper's rule: hypercube quicksort below
	// SmallThreshold elements per PE on average (if the world is a power of
	// two), sample sort otherwise.
	Auto Algorithm = iota
	// SampleSort forces the two-level sample sort.
	SampleSort
	// HypercubeQS forces hypercube quicksort (requires a power-of-two
	// world; other sizes fall back to sample sort).
	HypercubeQS
)

// Options configures Sort.
type Options struct {
	Alg Algorithm
	// A2A is the all-to-all strategy for the sample-sort data exchange.
	A2A alltoall.Strategy
	// Oversample is the number of splitter samples per PE (default 16).
	Oversample int
	// SmallThreshold is the average per-PE element count below which Auto
	// uses hypercube quicksort (default 512, the paper's value).
	SmallThreshold int
	// Seed drives sampling and pivot selection.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 16
	}
	if o.SmallThreshold <= 0 {
		o.SmallThreshold = 512
	}
	if o.A2A == 0 {
		o.A2A = alltoall.Auto
	}
	return o
}

// Sort globally sorts the union of all PEs' local data under less and
// returns this PE's balanced, contiguous chunk. less must define a strict
// weak order; for fully deterministic splits it should be a total order.
func Sort[T any](c *comm.Comm, data []T, less func(a, b T) bool, opt Options) []T {
	opt = opt.withDefaults()
	p := c.P()
	if p == 1 {
		out := make([]T, len(data))
		copy(out, data)
		localSort(c, out, less)
		return out
	}
	total := comm.Allreduce(c, len(data), func(a, b int) int { return a + b })
	alg := opt.Alg
	if alg == Auto {
		if total/p < opt.SmallThreshold && p&(p-1) == 0 {
			alg = HypercubeQS
		} else {
			alg = SampleSort
		}
	}
	if alg == HypercubeQS && p&(p-1) != 0 {
		alg = SampleSort
	}
	switch alg {
	case HypercubeQS:
		return hypercubeQuicksort(c, data, less, opt)
	default:
		return sampleSort(c, data, less, opt)
	}
}

// localSort sorts in place and charges the modeled n·log n comparison cost.
func localSort[T any](c *comm.Comm, data []T, less func(a, b T) bool) {
	n := len(data)
	sort.Slice(data, func(i, j int) bool { return less(data[i], data[j]) })
	if n > 1 {
		c.ChargeCompute(n * log2ceil(n))
	}
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

// sampleSort: local sort → sample → gathered splitter selection → bucket
// partition → all-to-all delivery → p-way merge → rebalance.
func sampleSort[T any](c *comm.Comm, data []T, less func(a, b T) bool, opt Options) []T {
	p, rank := c.P(), c.Rank()
	local := make([]T, len(data))
	copy(local, data)
	localSort(c, local, less)

	// Sample uniformly at random from the local data.
	r := rng.New(opt.Seed).Split(uint64(rank))
	ns := opt.Oversample
	samples := make([]T, 0, ns)
	for i := 0; i < ns && len(local) > 0; i++ {
		samples = append(samples, local[r.Intn(len(local))])
	}
	all := comm.AllgatherConcat(c, samples)
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	c.ChargeCompute(len(all) * log2ceil(len(all)+1))

	// p-1 splitters at the sample quantiles.
	splitters := make([]T, 0, p-1)
	for i := 1; i < p; i++ {
		if len(all) == 0 {
			break
		}
		idx := i * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		splitters = append(splitters, all[idx])
	}

	// Partition the sorted local data at the splitters.
	send := make([][]T, p)
	lo := 0
	for b := 0; b < p; b++ {
		hi := len(local)
		if b < len(splitters) {
			s := splitters[b]
			hi = lo + sort.Search(len(local)-lo, func(i int) bool { return !less(local[lo+i], s) })
		}
		send[b] = local[lo:hi]
		lo = hi
	}
	c.ChargeCompute(len(local))

	recv := alltoall.Exchange(c, opt.A2A, send)
	merged := kwayMerge(recv, less)
	c.ChargeCompute(len(merged) * log2ceil(p+1))
	return Rebalance(c, merged)
}

// kwayMerge merges already-sorted runs; the runs are in splitter order so a
// simple sequential merge over the run heads suffices (p is moderate).
func kwayMerge[T any](runs [][]T, less func(a, b T) bool) []T {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]T, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || less(r[heads[i]], runs[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

// hypercubeQuicksort recursively halves the hypercube: in every dimension
// the group agrees on a pivot from gathered samples, partners exchange the
// halves that belong on the other side, and the recursion descends into the
// subcube. Terminates with a local sort and a global rebalance.
func hypercubeQuicksort[T any](c *comm.Comm, data []T, less func(a, b T) bool, opt Options) []T {
	p, rank := c.P(), c.Rank()
	local := make([]T, len(data))
	copy(local, data)
	r := rng.New(opt.Seed ^ 0x9E37).Split(uint64(rank))

	groupSize := p
	base := 0 // first rank of my current subcube
	for groupSize > 1 {
		half := groupSize / 2
		members := make([]int, groupSize)
		for i := range members {
			members[i] = base + i
		}
		// Pivot: median of a few samples per group member. The sample set
		// is a reference-typed GroupAllreduce deposit: its Items array is
		// freshly built here and never mutated afterwards, which is the
		// immutable-until-next-collective contract comm places on deposited
		// values containing references.
		type sampleSet struct{ Items []T }
		mySamples := sampleSet{}
		for i := 0; i < 3 && len(local) > 0; i++ {
			mySamples.Items = append(mySamples.Items, local[r.Intn(len(local))])
		}
		gathered := comm.GroupAllreduce(c, members, mySamples, func(a, b sampleSet) sampleSet {
			merged := make([]T, 0, len(a.Items)+len(b.Items))
			merged = append(merged, a.Items...)
			merged = append(merged, b.Items...)
			return sampleSet{Items: merged}
		})
		sort.Slice(gathered.Items, func(i, j int) bool { return less(gathered.Items[i], gathered.Items[j]) })

		inLow := rank < base+half
		partner := rank + half
		if !inLow {
			partner = rank - half
		}
		if len(gathered.Items) == 0 {
			// Whole group is empty; exchange nothing but stay in lockstep.
			comm.PairExchange(c, partner, []T(nil))
		} else {
			pivot := gathered.Items[len(gathered.Items)/2]
			// local is unsorted between rounds: partition by scan.
			lowPart := make([]T, 0, len(local)/2)
			highPart := make([]T, 0, len(local)/2)
			for _, x := range local {
				if less(x, pivot) {
					lowPart = append(lowPart, x)
				} else {
					highPart = append(highPart, x)
				}
			}
			c.ChargeCompute(len(local))
			var keep, give []T
			if inLow {
				keep, give = lowPart, highPart
			} else {
				keep, give = highPart, lowPart
			}
			got := comm.PairExchange(c, partner, give)
			local = append(keep, got...)
		}
		if !inLow {
			base += half
		}
		groupSize = half
	}
	localSort(c, local, less)
	return Rebalance(c, local)
}

// Rebalance redistributes globally ordered data (PE i's chunk entirely
// before PE i+1's) so every PE ends with ⌈total/p⌉ or ⌊total/p⌋ elements,
// preserving the global order. It is also the final step of REDISTRIBUTE
// (§IV-C).
func Rebalance[T any](c *comm.Comm, data []T) []T {
	p := c.P()
	if p == 1 {
		return data
	}
	myCount := len(data)
	before := comm.ExScan(c, myCount, 0, func(a, b int) int { return a + b })
	total := comm.Allreduce(c, myCount, func(a, b int) int { return a + b })
	if total == 0 {
		return nil
	}
	// Target boundaries: PE j owns global positions [j*total/p, (j+1)*total/p).
	send := make([][]T, p)
	for i := 0; i < myCount; {
		g := before + i // global position of data[i]
		j := min((g*p)/total, p-1)
		// advance j until g falls in j's window (integer-division care)
		for g >= (j+1)*total/p {
			j++
		}
		hi := (j+1)*total/p - before
		if hi > myCount {
			hi = myCount
		}
		send[j] = data[i:hi]
		i = hi
	}
	recv := comm.Alltoall(c, send)
	out := make([]T, 0, total/p+1)
	for i := 0; i < p; i++ {
		out = append(out, recv[i]...)
	}
	return out
}

// IsGloballySorted reports (on every PE) whether the distributed data is
// globally sorted under less. Intended for tests and verification runs.
func IsGloballySorted[T any](c *comm.Comm, data []T, less func(a, b T) bool) bool {
	okLocal := true
	for i := 1; i < len(data); i++ {
		if less(data[i], data[i-1]) {
			okLocal = false
			break
		}
	}
	type boundary struct {
		Has         bool
		First, Last T
	}
	b := boundary{Has: len(data) > 0}
	if b.Has {
		b.First, b.Last = data[0], data[len(data)-1]
	}
	all := comm.Allgather(c, b)
	okGlobal := okLocal
	var prev *T
	for i := range all {
		if !all[i].Has {
			continue
		}
		if prev != nil && less(all[i].First, *prev) {
			okGlobal = false
		}
		last := all[i].Last
		prev = &last
	}
	return comm.Allreduce(c, okGlobal, func(a, b bool) bool { return a && b })
}
