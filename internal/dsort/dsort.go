// Package dsort provides the distributed sorting algorithms of §II-A and
// §VI-C: hypercube quicksort for small inputs (below 512 elements per PE on
// average, following the paper's rule) and a two-level sample sort in the
// spirit of AMS-sort for large inputs. Both leave the data globally sorted
// — PE i holds a contiguous chunk, chunks ordered by rank — and perfectly
// balanced (sizes differing by at most one).
//
// Sample sort delivers its data through a configurable sparse all-to-all
// strategy; with alltoall.Grid this is the "two-level" data delivery that
// makes the sorter scale on large machines. Splitters are selected from a
// gathered random sample (the paper sorts the samples with the hypercube
// algorithm; gathering them gives identical splitters, a documented
// simplification).
//
// # Keys and local sorting
//
// The sorter is built around sortable integer keys (Order): when the caller
// supplies a Key — a uint64 extraction that is order-consistent with the
// comparator, like graph.KeyLex/graph.KeyWeight — every local sort runs as
// an LSD radix pass (internal/radix) instead of a comparison sort, and the
// p received runs are merged with a winner tree (O(log p) per element
// instead of the former O(p) head scan). Without a key the local sorts fall
// back to slices.SortFunc. The modeled compute charges remain the paper's
// comparison-sort model (n·log n), so the modeled clock is independent of
// which local algorithm runs.
//
// # Memory ownership
//
// Every per-call buffer — the local working copy, sample staging, splitter
// and send frames, the merge output, Rebalance frames and the returned
// chunk itself — lives in the world-owned per-PE scratch arena
// (comm.Comm.Scratch), in slots keyed per element type. Steady-state sorts
// therefore allocate nothing beyond the substrate's collective-internal
// floor. The flip side is a lifetime contract: the slice returned by Sort
// or Rebalance is valid only until the NEXT dsort collective with the same
// element type on the same world; callers that retain a result across later
// sorts (e.g. gen.Finish, whose output lives for a whole job of re-sorting
// rounds) must copy it into owned memory.
package dsort

import (
	"math/bits"
	"slices"
	"sync"

	"kamsta/internal/alltoall"
	"kamsta/internal/arena"
	"kamsta/internal/comm"
	"kamsta/internal/radix"
	"kamsta/internal/rng"
)

// Algorithm selects a sorter.
type Algorithm int

const (
	// Auto follows the paper's rule: hypercube quicksort below
	// SmallThreshold elements per PE on average (if the world is a power of
	// two), sample sort otherwise.
	Auto Algorithm = iota
	// SampleSort forces the two-level sample sort.
	SampleSort
	// HypercubeQS forces hypercube quicksort (requires a power-of-two
	// world; other sizes fall back to sample sort).
	HypercubeQS
)

// Options configures Sort.
type Options struct {
	Alg Algorithm
	// A2A is the all-to-all strategy for the sample-sort data exchange.
	A2A alltoall.Strategy
	// Oversample is the number of splitter samples per PE (default 16).
	Oversample int
	// SmallThreshold is the average per-PE element count below which Auto
	// uses hypercube quicksort (default 512, the paper's value).
	SmallThreshold int
	// Seed drives sampling and pivot selection.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Oversample <= 0 {
		o.Oversample = 16
	}
	if o.SmallThreshold <= 0 {
		o.SmallThreshold = 512
	}
	if o.A2A == 0 {
		o.A2A = alltoall.Auto
	}
	return o
}

// Key extracts a uint64 sort key from an element. It must be
// order-consistent with the Order's comparator: Key(a) < Key(b) implies
// less(a, b). Equal keys are finished by the comparator, so a key may
// encode only a prefix of the order.
type Key[T any] func(T) uint64

// Order bundles the comparator that defines the global sort order with an
// optional integer key that accelerates the local phases.
type Order[T any] struct {
	// Less is the strict weak order to sort by; for fully deterministic
	// splits it should be a total order.
	Less func(a, b T) bool
	// Key, when non-nil, enables radix local sorts. See Key for the
	// consistency contract.
	Key Key[T]
}

// ByLess builds a comparator-only Order.
func ByLess[T any](less func(a, b T) bool) Order[T] { return Order[T]{Less: less} }

// ByKey builds an Order with a radix key.
func ByKey[T any](less func(a, b T) bool, key Key[T]) Order[T] {
	return Order[T]{Less: less, Key: key}
}

// typeKeys is the per-element-type set of arena slot keys backing one
// instantiation of the sorter. Keys are process-wide; the storage behind
// them is per-PE (each arena owns its slots).
type typeKeys struct {
	local     arena.Key // []T: local working copy (sample sort)
	samples   arena.Key // []T: splitter sample staging
	all       arena.Key // []T: gathered global sample
	split     arena.Key // []T: selected splitters
	send      arena.Key // [][]T: sample-sort bucket frame
	merge     arena.Key // []T: k-way merge output
	mergeTree arena.Key // []int32: winner-tree nodes
	mergeHead arena.Key // []int32: per-run cursors
	out       arena.Key // []T: Rebalance output (the returned chunk)
	rebSend   arena.Key // [][]T: Rebalance bucket frame
	rebBounds arena.Key // []int: Rebalance cumulative targets
	hcLocal   arena.Key // []T: hypercube working set
	hcLow     arena.Key // []T: partition low side
	hcHigh    arena.Key // []T: partition high side
	hcSamples arena.Key // []T: pivot sample staging
	hcMembers arena.Key // []int: subcube member ranks
	rxPairs   arena.Key // []radix.KV: radix (key, index) pairs
	rxTmp     arena.Key // []radix.KV: radix ping-pong buffer
	rxPerm    arena.Key // []T: radix gather buffer
}

var (
	keysMu     sync.Mutex
	keysByType = map[any]*typeKeys{}
)

// keysFor returns the arena key set of element type T, allocating it on
// first use. The map is keyed by a nil *T — interface identity carries the
// type without reflection, and boxing a nil pointer does not allocate.
func keysFor[T any]() *typeKeys {
	id := any((*T)(nil))
	keysMu.Lock()
	defer keysMu.Unlock()
	ks := keysByType[id]
	if ks == nil {
		ks = &typeKeys{
			local: arena.NewKey(), samples: arena.NewKey(), all: arena.NewKey(),
			split: arena.NewKey(), send: arena.NewKey(), merge: arena.NewKey(),
			mergeTree: arena.NewKey(), mergeHead: arena.NewKey(), out: arena.NewKey(),
			rebSend: arena.NewKey(), rebBounds: arena.NewKey(),
			hcLocal: arena.NewKey(), hcLow: arena.NewKey(), hcHigh: arena.NewKey(),
			hcSamples: arena.NewKey(), hcMembers: arena.NewKey(),
			rxPairs: arena.NewKey(), rxTmp: arena.NewKey(), rxPerm: arena.NewKey(),
		}
		keysByType[id] = ks
	}
	return ks
}

// Sort globally sorts the union of all PEs' local data under ord and
// returns this PE's balanced, contiguous chunk. The result is arena-backed:
// valid until the next dsort collective with the same element type on this
// world (see the package ownership notes); data itself is not mutated.
func Sort[T any](c *comm.Comm, data []T, ord Order[T], opt Options) []T {
	opt = opt.withDefaults()
	p := c.P()
	ks := keysFor[T]()
	if p == 1 {
		out := arena.Grab[T](c.Scratch(), ks.out, len(data))
		copy(out, data)
		localSort(c, ks, out, ord)
		return out
	}
	total := comm.Allreduce(c, len(data), func(a, b int) int { return a + b })
	alg := opt.Alg
	if alg == Auto {
		if total/p < opt.SmallThreshold && p&(p-1) == 0 {
			alg = HypercubeQS
		} else {
			alg = SampleSort
		}
	}
	if alg == HypercubeQS && p&(p-1) != 0 {
		alg = SampleSort
	}
	switch alg {
	case HypercubeQS:
		return hypercubeQuicksort(c, ks, data, ord, opt)
	default:
		return sampleSort(c, ks, data, ord, opt)
	}
}

// sortBuf sorts a local buffer in place without charging modeled time:
// radix when a key is available, pdqsort otherwise.
func sortBuf[T any](c *comm.Comm, ks *typeKeys, data []T, ord Order[T]) {
	n := len(data)
	if n < 2 {
		return
	}
	if ord.Key != nil && uint64(n) < 1<<32 {
		a := c.Scratch()
		pairs := arena.Grab[radix.KV](a, ks.rxPairs, n)
		tmp := arena.Grab[radix.KV](a, ks.rxTmp, n)
		perm := arena.Grab[T](a, ks.rxPerm, n)
		radix.SortScratch(data, ord.Key, ord.Less, pairs, tmp, perm)
		return
	}
	slices.SortFunc(data, radix.CmpOf(ord.Less))
}

// localSort is sortBuf plus the modeled n·log n comparison charge — the
// paper's cost model for the local phase, kept independent of whether the
// radix or the comparison path ran so modeled clocks do not depend on the
// presence of a key.
func localSort[T any](c *comm.Comm, ks *typeKeys, data []T, ord Order[T]) {
	n := len(data)
	sortBuf(c, ks, data, ord)
	if n > 1 {
		c.ChargeCompute(n * log2ceil(n))
	}
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

// sampleSort: local sort → sample → gathered splitter selection → bucket
// partition → all-to-all delivery → winner-tree p-way merge → rebalance.
func sampleSort[T any](c *comm.Comm, ks *typeKeys, data []T, ord Order[T], opt Options) []T {
	p, rank := c.P(), c.Rank()
	a := c.Scratch()
	less := ord.Less
	local := arena.Grab[T](a, ks.local, len(data))
	copy(local, data)
	localSort(c, ks, local, ord)

	// Sample uniformly at random from the local data. The samples slot is
	// deposited to AllgatherConcat, which reads it only in the pre-release
	// combine — reusable as soon as the call returns.
	r := rng.New(opt.Seed).Split(uint64(rank))
	ns := opt.Oversample
	samples := arena.GrabAppend[T](a, ks.samples)
	for i := 0; i < ns && len(local) > 0; i++ {
		samples = append(samples, local[r.Intn(len(local))])
	}
	arena.Keep(a, ks.samples, samples)
	all := comm.AllgatherConcatInto(c, arena.GrabAppend[T](a, ks.all), samples)
	arena.Keep(a, ks.all, all)
	sortBuf(c, ks, all, ord)
	c.ChargeCompute(len(all) * log2ceil(len(all)+1))

	// p-1 splitters at the sample quantiles.
	splitters := arena.GrabAppend[T](a, ks.split)
	for i := 1; i < p; i++ {
		if len(all) == 0 {
			break
		}
		idx := i * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		splitters = append(splitters, all[idx])
	}
	arena.Keep(a, ks.split, splitters)

	// Partition the sorted local data at the splitters. The buckets are
	// subslices of local; the exchange stages them into its wire frames at
	// deposit time and local is not re-grabbed before the next Sort.
	send := arena.Grab[[]T](a, ks.send, p)
	lo := 0
	for b := 0; b < p; b++ {
		hi := len(local)
		if b < len(splitters) {
			hi = lo + lowerBound(local[lo:], splitters[b], less)
		}
		send[b] = local[lo:hi]
		lo = hi
	}
	c.ChargeCompute(len(local))

	recv := alltoall.Exchange(c, opt.A2A, send)
	merged := kwayMerge(c, ks, recv, less)
	c.ChargeCompute(len(merged) * log2ceil(p+1))
	return Rebalance(c, merged)
}

// kwayMerge merges the already-sorted received runs with a winner tree:
// O(log p) comparisons per element. Ties across runs go to the
// lowest run index — the same winner the former O(p) head scan picked — so
// the output sequence is unchanged for any input.
func kwayMerge[T any](c *comm.Comm, ks *typeKeys, runs [][]T, less func(a, b T) bool) []T {
	a := c.Scratch()
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := arena.Grab[T](a, ks.merge, total)
	if total == 0 {
		return out
	}
	k := len(runs)
	K := 1
	for K < k {
		K <<= 1
	}
	heads := arena.Grab[int32](a, ks.mergeHead, k)
	for i := range heads {
		heads[i] = 0
	}
	// tree[1] is the overall winner; tree[K+i] the leaf of run i (-1 for
	// padding leaves and exhausted runs).
	tree := arena.Grab[int32](a, ks.mergeTree, 2*K)
	winner := func(x, y int32) int32 {
		if x < 0 {
			return y
		}
		if y < 0 {
			return x
		}
		if less(runs[y][heads[y]], runs[x][heads[x]]) {
			return y
		}
		return x
	}
	for i := 0; i < K; i++ {
		if i < k && len(runs[i]) > 0 {
			tree[K+i] = int32(i)
		} else {
			tree[K+i] = -1
		}
	}
	for i := K - 1; i >= 1; i-- {
		tree[i] = winner(tree[2*i], tree[2*i+1])
	}
	for pos := 0; pos < total; pos++ {
		w := tree[1]
		out[pos] = runs[w][heads[w]]
		heads[w]++
		if int(heads[w]) == len(runs[w]) {
			tree[K+int(w)] = -1
		}
		for i := (K + int(w)) / 2; i >= 1; i /= 2 {
			tree[i] = winner(tree[2*i], tree[2*i+1])
		}
	}
	return out
}

// hqsLoadProbe, when non-nil, observes the hypercube recursion's load after
// every level's pair exchange as (rank, level, localLen). Tests use it to
// assert that duplicate-heavy inputs stay balanced mid-recursion.
var hqsLoadProbe func(rank, level, n int)

// hypercubeQuicksort recursively halves the hypercube: in every dimension
// the group agrees on a pivot from gathered samples, partners exchange the
// halves that belong on the other side, and the recursion descends into the
// subcube. Terminates with a local sort and a global rebalance.
//
// Keys equal to the pivot alternate sides, first tie high: under a total
// order at most one element in the world compares equal to the pivot, so
// the exchange is byte-for-byte what the former all-ties-high partition
// produced — but under duplicate-heavy weak orders (all-equal keys are
// legal) each PE now splits its tie class evenly instead of collapsing the
// whole input onto the high subcube.
func hypercubeQuicksort[T any](c *comm.Comm, ks *typeKeys, data []T, ord Order[T], opt Options) []T {
	p, rank := c.P(), c.Rank()
	a := c.Scratch()
	less := ord.Less
	local := arena.Grab[T](a, ks.hcLocal, len(data))
	copy(local, data)
	r := rng.New(opt.Seed ^ 0x9E37).Split(uint64(rank))

	groupSize := p
	base := 0 // first rank of my current subcube
	level := 0
	for groupSize > 1 {
		half := groupSize / 2
		members := arena.Grab[int](a, ks.hcMembers, groupSize)
		for i := range members {
			members[i] = base + i
		}
		// Pivot: median of a few samples per group member. The sample set
		// is a reference-typed GroupAllreduce deposit: its Items array is
		// written only here and next re-grabbed after the level's pair
		// exchange — one collective later — which satisfies the
		// immutable-until-next-collective contract comm places on deposited
		// values containing references.
		type sampleSet struct{ Items []T }
		items := arena.GrabAppend[T](a, ks.hcSamples)
		for i := 0; i < 3 && len(local) > 0; i++ {
			items = append(items, local[r.Intn(len(local))])
		}
		arena.Keep(a, ks.hcSamples, items)
		mySamples := sampleSet{Items: items}
		gathered := comm.GroupAllreduce(c, members, mySamples, func(a, b sampleSet) sampleSet {
			merged := make([]T, 0, len(a.Items)+len(b.Items))
			merged = append(merged, a.Items...)
			merged = append(merged, b.Items...)
			return sampleSet{Items: merged}
		})
		slices.SortFunc(gathered.Items, radix.CmpOf(less))

		inLow := rank < base+half
		partner := rank + half
		if !inLow {
			partner = rank - half
		}
		if len(gathered.Items) == 0 {
			// Whole group is empty; exchange nothing but stay in lockstep.
			comm.PairExchange(c, partner, []T(nil))
		} else {
			pivot := gathered.Items[len(gathered.Items)/2]
			// local is unsorted between rounds: partition by scan,
			// alternating pivot-equal keys (first tie high).
			lowPart := arena.GrabAppend[T](a, ks.hcLow)
			highPart := arena.GrabAppend[T](a, ks.hcHigh)
			tieHigh := true
			for _, x := range local {
				switch {
				case less(x, pivot):
					lowPart = append(lowPart, x)
				case less(pivot, x):
					highPart = append(highPart, x)
				case tieHigh:
					highPart = append(highPart, x)
					tieHigh = false
				default:
					lowPart = append(lowPart, x)
					tieHigh = true
				}
			}
			arena.Keep(a, ks.hcLow, lowPart)
			arena.Keep(a, ks.hcHigh, highPart)
			c.ChargeCompute(len(local))
			var keep, give []T
			if inLow {
				keep, give = lowPart, highPart
			} else {
				keep, give = highPart, lowPart
			}
			// give is staged into the wire at deposit time; got is an owned
			// copy, so the partition slots are free again after this call.
			got := comm.PairExchange(c, partner, give)
			local = arena.Grab[T](a, ks.hcLocal, len(keep)+len(got))
			copy(local, keep)
			copy(local[len(keep):], got)
		}
		if hqsLoadProbe != nil {
			hqsLoadProbe(rank, level, len(local))
		}
		if !inLow {
			base += half
		}
		groupSize = half
		level++
	}
	localSort(c, ks, local, ord)
	return Rebalance(c, local)
}

// lowerBound returns the first index in s whose element is not below x —
// the splitter boundary binary search.
func lowerBound[T any](s []T, x T, less func(a, b T) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(s[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rebalanceBound returns floor(j·total/p) — the first global position owned
// by PE j — via 128-bit intermediate arithmetic, so the boundaries stay
// exact even when total·p would overflow int64 (the former (g*p)/total
// formulation silently wrapped for total·p ≥ 2⁶³).
func rebalanceBound(j, total, p int) int {
	hi, lo := bits.Mul64(uint64(j), uint64(total))
	q, _ := bits.Div64(hi, lo, uint64(p))
	return int(q)
}

// Rebalance redistributes globally ordered data (PE i's chunk entirely
// before PE i+1's) so every PE ends with ⌈total/p⌉ or ⌊total/p⌋ elements,
// preserving the global order. It is also the final step of REDISTRIBUTE
// (§IV-C). The result is arena-backed under the same lifetime contract as
// Sort; data may alias a previous dsort result (the send frames are staged
// into the wire before the output slot is re-grabbed).
func Rebalance[T any](c *comm.Comm, data []T) []T {
	p := c.P()
	if p == 1 {
		return data
	}
	myCount := len(data)
	before := comm.ExScan(c, myCount, 0, func(a, b int) int { return a + b })
	total := comm.Allreduce(c, myCount, func(a, b int) int { return a + b })
	if total == 0 {
		return nil
	}
	a := c.Scratch()
	ks := keysFor[T]()
	// Per-PE cumulative targets, computed once: PE j owns global positions
	// [bounds[j], bounds[j+1]).
	bounds := arena.Grab[int](a, ks.rebBounds, p+1)
	for j := 0; j <= p; j++ {
		bounds[j] = rebalanceBound(j, total, p)
	}
	send := arena.GrabZeroed[[]T](a, ks.rebSend, p)
	j := 0
	for i := 0; i < myCount; {
		g := before + i // global position of data[i]
		for g >= bounds[j+1] {
			j++
		}
		hi := bounds[j+1] - before
		if hi > myCount {
			hi = myCount
		}
		send[j] = data[i:hi]
		i = hi
	}
	recv := comm.Alltoall(c, send)
	n := 0
	for i := range recv {
		n += len(recv[i])
	}
	// Grabbed only after the exchange staged the send frames: data may
	// alias this very slot (e.g. Rebalance of a deduplicated Sort result).
	out := arena.Grab[T](a, ks.out, n)
	pos := 0
	for i := range recv {
		pos += copy(out[pos:], recv[i])
	}
	return out
}

// IsGloballySorted reports (on every PE) whether the distributed data is
// globally sorted under less. Intended for tests and verification runs.
func IsGloballySorted[T any](c *comm.Comm, data []T, less func(a, b T) bool) bool {
	okLocal := true
	for i := 1; i < len(data); i++ {
		if less(data[i], data[i-1]) {
			okLocal = false
			break
		}
	}
	type boundary struct {
		Has         bool
		First, Last T
	}
	b := boundary{Has: len(data) > 0}
	if b.Has {
		b.First, b.Last = data[0], data[len(data)-1]
	}
	all := comm.Allgather(c, b)
	okGlobal := okLocal
	var prev *T
	for i := range all {
		if !all[i].Has {
			continue
		}
		if prev != nil && less(all[i].First, *prev) {
			okGlobal = false
		}
		last := all[i].Last
		prev = &last
	}
	return comm.Allreduce(c, okGlobal, func(a, b bool) bool { return a && b })
}
