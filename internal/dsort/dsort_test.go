package dsort

import (
	"sort"
	"testing"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/rng"
)

func intLess(a, b int) bool { return a < b }

// makeLocal builds deterministic per-rank data with duplicates and skew.
func makeLocal(p, rank, per int, seed uint64) []int {
	r := rng.New(seed).Split(uint64(rank))
	n := per
	if rank%3 == 1 {
		n = per / 4 // skewed sizes
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(per * p / 2) // deliberately includes duplicates
	}
	return out
}

// intKey is the full-order radix key for the non-negative test ints.
func intKey(v int) uint64 { return uint64(v) }

// runSort executes Sort on a p-PE world and returns the per-rank outputs.
// It runs the keyed (radix) path; runSortOrd selects the order explicitly.
func runSort(t *testing.T, p, per int, opt Options) ([][]int, []int) {
	return runSortOrd(t, p, per, opt, ByKey(intLess, intKey))
}

func runSortOrd(t *testing.T, p, per int, opt Options, ord Order[int]) ([][]int, []int) {
	t.Helper()
	w := comm.NewWorld(p)
	outs := make([][]int, p)
	var want []int
	for r := 0; r < p; r++ {
		want = append(want, makeLocal(p, r, per, 5)...)
	}
	sort.Ints(want)
	w.Run(func(c *comm.Comm) {
		local := makeLocal(p, c.Rank(), per, 5)
		outs[c.Rank()] = Sort(c, local, ord, opt)
		if !IsGloballySorted(c, outs[c.Rank()], intLess) {
			t.Errorf("p=%d: IsGloballySorted=false after Sort", p)
		}
	})
	return outs, want
}

func checkSorted(t *testing.T, p int, outs [][]int, want []int) {
	t.Helper()
	var got []int
	for _, o := range outs {
		got = append(got, o...)
	}
	if len(got) != len(want) {
		t.Fatalf("p=%d: element count changed: got %d want %d", p, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("p=%d: position %d: got %d want %d", p, i, got[i], want[i])
		}
	}
	// Balance: sizes differ by at most one.
	lo, hi := len(want)/p, (len(want)+p-1)/p
	for r, o := range outs {
		if len(o) < lo || len(o) > hi {
			t.Fatalf("p=%d: rank %d holds %d elements, want %d..%d", p, r, len(o), lo, hi)
		}
	}
}

func TestSampleSort(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		outs, want := runSort(t, p, 300, Options{Alg: SampleSort})
		checkSorted(t, p, outs, want)
	}
}

func TestHypercubeQuicksort(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		outs, want := runSort(t, p, 100, Options{Alg: HypercubeQS})
		checkSorted(t, p, outs, want)
	}
}

// TestComparatorOnlyOrder runs both sorters through the keyless fallback
// path; results must match the keyed runs bit for bit.
func TestComparatorOnlyOrder(t *testing.T) {
	for _, alg := range []Algorithm{SampleSort, HypercubeQS} {
		outs, want := runSortOrd(t, 8, 300, Options{Alg: alg}, ByLess(intLess))
		checkSorted(t, 8, outs, want)
		keyed, _ := runSort(t, 8, 300, Options{Alg: alg})
		for r := range outs {
			for i := range outs[r] {
				if outs[r][i] != keyed[r][i] {
					t.Fatalf("alg %d rank %d pos %d: keyed %d != keyless %d", alg, r, i, keyed[r][i], outs[r][i])
				}
			}
		}
	}
}

func TestHypercubeFallsBackOnOddWorld(t *testing.T) {
	outs, want := runSort(t, 6, 50, Options{Alg: HypercubeQS})
	checkSorted(t, 6, outs, want)
}

func TestAutoSelection(t *testing.T) {
	// Small input on a power-of-two world → hypercube path; large → sample.
	for _, per := range []int{20, 2000} {
		outs, want := runSort(t, 8, per, Options{})
		checkSorted(t, 8, outs, want)
	}
}

func TestSortWithGridAlltoall(t *testing.T) {
	outs, want := runSort(t, 9, 400, Options{Alg: SampleSort, A2A: alltoall.Grid})
	checkSorted(t, 9, outs, want)
}

func TestSortEmptyInput(t *testing.T) {
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		out := Sort(c, nil, ByKey(intLess, intKey), Options{})
		if len(out) != 0 {
			t.Errorf("rank %d: sorted empty input to %d elements", c.Rank(), len(out))
		}
	})
}

func TestSortSingleElementTotal(t *testing.T) {
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		var local []int
		if c.Rank() == 2 {
			local = []int{42}
		}
		out := Sort(c, local, ByLess(intLess), Options{})
		n := comm.Allreduce(c, len(out), func(a, b int) int { return a + b })
		if n != 1 {
			t.Errorf("total elements %d want 1", n)
		}
	})
}

func TestSortAllEqualKeys(t *testing.T) {
	w := comm.NewWorld(8)
	w.Run(func(c *comm.Comm) {
		local := make([]int, 100)
		for i := range local {
			local[i] = 7
		}
		out := Sort(c, local, ByKey(intLess, intKey), Options{Alg: SampleSort})
		total := comm.Allreduce(c, len(out), func(a, b int) int { return a + b })
		if total != 800 {
			t.Errorf("lost elements: total %d want 800", total)
		}
		for _, v := range out {
			if v != 7 {
				t.Errorf("element corrupted: %d", v)
			}
		}
	})
}

func TestSortAlreadySorted(t *testing.T) {
	p := 4
	w := comm.NewWorld(p)
	outs := make([][]int, p)
	w.Run(func(c *comm.Comm) {
		local := make([]int, 100)
		for i := range local {
			local[i] = c.Rank()*100 + i
		}
		outs[c.Rank()] = Sort(c, local, ByKey(intLess, intKey), Options{Alg: SampleSort})
	})
	k := 0
	for _, o := range outs {
		for _, v := range o {
			if v != k {
				t.Fatalf("position %d: got %d", k, v)
			}
			k++
		}
	}
}

func TestSortReverseSorted(t *testing.T) {
	p := 4
	w := comm.NewWorld(p)
	outs := make([][]int, p)
	w.Run(func(c *comm.Comm) {
		local := make([]int, 100)
		for i := range local {
			local[i] = 10000 - (c.Rank()*100 + i)
		}
		outs[c.Rank()] = Sort(c, local, ByKey(intLess, intKey), Options{Alg: SampleSort})
	})
	var got []int
	for _, o := range outs {
		got = append(got, o...)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted at %d: %d < %d", i, got[i], got[i-1])
		}
	}
}

func TestSortStructsByCustomOrder(t *testing.T) {
	type kv struct{ K, V int }
	p := 4
	w := comm.NewWorld(p)
	outs := make([][]kv, p)
	w.Run(func(c *comm.Comm) {
		r := rng.New(9).Split(uint64(c.Rank()))
		local := make([]kv, 50)
		for i := range local {
			local[i] = kv{K: r.Intn(100), V: c.Rank()}
		}
		outs[c.Rank()] = Sort(c, local, ByLess(func(a, b kv) bool {
			if a.K != b.K {
				return a.K < b.K
			}
			return a.V < b.V
		}), Options{Alg: SampleSort})
	})
	prev := kv{-1, -1}
	for _, o := range outs {
		for _, x := range o {
			if x.K < prev.K || (x.K == prev.K && x.V < prev.V) {
				t.Fatalf("order violated: %+v after %+v", x, prev)
			}
			prev = x
		}
	}
}

func TestRebalance(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		w := comm.NewWorld(p)
		outs := make([][]int, p)
		w.Run(func(c *comm.Comm) {
			// Rank r holds r*10 consecutive values (globally ordered).
			start := 0
			for i := 0; i < c.Rank(); i++ {
				start += i * 10
			}
			local := make([]int, c.Rank()*10)
			for i := range local {
				local[i] = start + i
			}
			outs[c.Rank()] = Rebalance(c, local)
		})
		total := 0
		for i := 0; i < p; i++ {
			total += i * 10
		}
		k := 0
		for r, o := range outs {
			if len(o) < total/p || len(o) > (total+p-1)/p {
				t.Fatalf("p=%d rank %d: %d elements after rebalance, total %d", p, r, len(o), total)
			}
			for _, v := range o {
				if v != k {
					t.Fatalf("p=%d: order broken at %d: got %d", p, k, v)
				}
				k++
			}
		}
		if k != total {
			t.Fatalf("p=%d: lost elements: %d of %d", p, k, total)
		}
	}
}

func TestRebalanceEmpty(t *testing.T) {
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		out := Rebalance(c, []int(nil))
		if len(out) != 0 {
			t.Errorf("rebalancing nothing produced %d elements", len(out))
		}
	})
}

func TestIsGloballySortedDetectsViolation(t *testing.T) {
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		local := []int{c.Rank()} // 0,1,2 → sorted
		if !IsGloballySorted(c, local, intLess) {
			t.Error("sorted data reported unsorted")
		}
		bad := []int{10 - c.Rank()} // 10,9,8 → unsorted across ranks
		if IsGloballySorted(c, bad, intLess) {
			t.Error("unsorted data reported sorted")
		}
	})
}

func TestSortDeterministic(t *testing.T) {
	a1, _ := runSort(t, 8, 200, Options{Seed: 3})
	a2, _ := runSort(t, 8, 200, Options{Seed: 3})
	for r := range a1 {
		if len(a1[r]) != len(a2[r]) {
			t.Fatalf("rank %d: nondeterministic chunk size", r)
		}
		for i := range a1[r] {
			if a1[r][i] != a2[r][i] {
				t.Fatalf("rank %d: nondeterministic content", r)
			}
		}
	}
}

func BenchmarkSampleSort8x10k(b *testing.B) {
	w := comm.NewWorld(8)
	w.Run(func(c *comm.Comm) {
		local := makeLocal(8, c.Rank(), 10000, 1)
		for i := 0; i < b.N; i++ {
			Sort(c, local, ByKey(intLess, intKey), Options{Alg: SampleSort})
		}
	})
}

func BenchmarkHypercube8x500(b *testing.B) {
	w := comm.NewWorld(8)
	w.Run(func(c *comm.Comm) {
		local := makeLocal(8, c.Rank(), 500, 1)
		for i := 0; i < b.N; i++ {
			Sort(c, local, ByKey(intLess, intKey), Options{Alg: HypercubeQS})
		}
	})
}
