package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func pools() []*Pool {
	return []*Pool{nil, NewPool(1), NewPool(2), NewPool(4), NewPool(8), NewPool(0)}
}

func TestThreadsClamp(t *testing.T) {
	if NewPool(0).Threads() != 1 {
		t.Fatal("NewPool(0) should clamp to 1 thread")
	}
	if NewPool(-3).Threads() != 1 {
		t.Fatal("negative thread count should clamp to 1")
	}
	if (*Pool)(nil).Threads() != 1 {
		t.Fatal("nil pool should report 1 thread")
	}
	if NewPool(7).Threads() != 7 {
		t.Fatal("Threads should report the configured value")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{0, 1, 7, grainSize, 4*grainSize + 3} {
			hits := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", p.Threads(), n, i, h)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{0, 1, 100, 3 * grainSize} {
			got := Reduce(p, n, 0,
				func(lo, hi int) int {
					s := 0
					for i := lo; i < hi; i++ {
						s += i
					}
					return s
				},
				func(a, b int) int { return a + b })
			want := n * (n - 1) / 2
			if got != want {
				t.Fatalf("threads=%d n=%d: Reduce=%d want %d", p.Threads(), n, got, want)
			}
		}
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{0, 1, 5, grainSize, 5*grainSize + 1} {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i%7 - 3
			}
			out := make([]int, n)
			total := PrefixSum(p, xs, out)
			sum := 0
			for i, v := range xs {
				if out[i] != sum {
					t.Fatalf("threads=%d n=%d: out[%d]=%d want %d", p.Threads(), n, i, out[i], sum)
				}
				sum += v
			}
			if total != sum {
				t.Fatalf("threads=%d n=%d: total=%d want %d", p.Threads(), n, total, sum)
			}
		}
	}
}

func TestPrefixSumInPlace(t *testing.T) {
	p := NewPool(4)
	n := 3 * grainSize
	xs := make([]int, n)
	for i := range xs {
		xs[i] = 1
	}
	total := PrefixSum(p, xs, xs)
	if total != n {
		t.Fatalf("total=%d want %d", total, n)
	}
	for i := range xs {
		if xs[i] != i {
			t.Fatalf("in-place prefix sum wrong at %d: %d", i, xs[i])
		}
	}
}

func TestPrefixSumLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	PrefixSum(NewPool(2), make([]int, 3), make([]int, 2))
}

func TestFilterPreservesOrder(t *testing.T) {
	for _, p := range pools() {
		for _, n := range []int{0, 1, 10, 4 * grainSize} {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i
			}
			got := Filter(p, xs, func(v int) bool { return v%3 == 0 })
			want := 0
			for _, v := range got {
				if v != want {
					t.Fatalf("threads=%d: got %d want %d", p.Threads(), v, want)
				}
				want += 3
			}
			if cnt := (n + 2) / 3; len(got) != cnt {
				t.Fatalf("threads=%d n=%d: filtered %d elements, want %d", p.Threads(), n, len(got), cnt)
			}
		}
	}
}

func TestFilterProperty(t *testing.T) {
	p := NewPool(4)
	f := func(xs []int16) bool {
		ys := make([]int, len(xs))
		for i, v := range xs {
			ys[i] = int(v)
		}
		got := Filter(p, ys, func(v int) bool { return v > 0 })
		var want []int
		for _, v := range ys {
			if v > 0 {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapParallel(t *testing.T) {
	p := NewPool(8)
	n := 3 * grainSize
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	got := Map(p, xs, func(v int) int { return v * v })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map wrong at %d: %d", i, v)
		}
	}
}

func TestMinIndexSequential(t *testing.T) {
	weights := []int{5, 3, 8, 3, 1}
	less := func(a, b uint32) bool {
		if weights[a] != weights[b] {
			return weights[a] < weights[b]
		}
		return a < b
	}
	m := NewMinIndex(2)
	for i := range weights {
		m.Write(0, uint32(i), less)
	}
	if got := m.Get(0); got != 4 {
		t.Fatalf("slot 0 holds %d, want 4 (weight 1)", got)
	}
	if m.Get(1) != None {
		t.Fatal("untouched slot should be None")
	}
}

func TestMinIndexTieBreak(t *testing.T) {
	weights := []int{3, 3, 3}
	less := func(a, b uint32) bool {
		if weights[a] != weights[b] {
			return weights[a] < weights[b]
		}
		return a < b
	}
	m := NewMinIndex(1)
	m.Write(0, 2, less)
	m.Write(0, 0, less)
	m.Write(0, 1, less)
	if got := m.Get(0); got != 0 {
		t.Fatalf("tie should resolve to smallest index, got %d", got)
	}
}

func TestMinIndexConcurrent(t *testing.T) {
	const n = 1 << 14
	weights := make([]int, n)
	for i := range weights {
		weights[i] = (i * 2654435761) % 9973
	}
	less := func(a, b uint32) bool {
		if weights[a] != weights[b] {
			return weights[a] < weights[b]
		}
		return a < b
	}
	m := NewMinIndex(16)
	p := NewPool(8)
	p.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Write(i%16, uint32(i), less)
		}
	})
	// Verify each slot holds the true minimum of its residue class.
	for s := 0; s < 16; s++ {
		best := uint32(None)
		for i := s; i < n; i += 16 {
			if best == None || less(uint32(i), best) {
				best = uint32(i)
			}
		}
		if got := m.Get(s); got != best {
			t.Fatalf("slot %d holds %d (w=%d), want %d (w=%d)", s, got, weights[got], best, weights[best])
		}
	}
}

func TestMinIndexReset(t *testing.T) {
	m := NewMinIndex(4)
	less := func(a, b uint32) bool { return a < b }
	m.Write(2, 7, less)
	m.Reset()
	for s := 0; s < 4; s++ {
		if m.Get(s) != None {
			t.Fatalf("slot %d not empty after Reset", s)
		}
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	p := NewPool(8)
	xs := make([]int, 1<<20)
	for i := range xs {
		xs[i] = 1
	}
	out := make([]int, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixSum(p, xs, out)
	}
}

func BenchmarkMinIndexWrite(b *testing.B) {
	weights := make([]int, 1<<16)
	for i := range weights {
		weights[i] = i * 31 % 1009
	}
	less := func(x, y uint32) bool { return weights[x] < weights[y] || (weights[x] == weights[y] && x < y) }
	m := NewMinIndex(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Write(i%1024, uint32(i%(1<<16)), less)
	}
}
