// Package par provides the intra-PE shared-memory parallel primitives the
// paper takes from the parlay library: parallel for over index ranges,
// blocked reductions, parallel prefix sums, parallel filtering, and the
// min-priority-write used by the shared-memory Borůvka variant of
// Dhulipala et al. that the local preprocessing step builds on.
//
// A Pool models the paper's "OpenMP threads per MPI process": every PE of
// the simulated machine owns a Pool with t workers. With t == 1 all
// primitives degenerate to their sequential forms with no goroutine or
// synchronization overhead, which keeps the 1-thread configurations honest.
package par

import (
	"sync"
	"sync/atomic"
)

// Pool executes data-parallel loops on up to Threads concurrent workers.
// The zero value behaves like a single-threaded pool.
type Pool struct {
	threads int
}

// NewPool returns a pool with the given number of worker threads.
// Values below 1 are treated as 1.
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	return &Pool{threads: threads}
}

// Threads reports the pool's degree of parallelism.
func (p *Pool) Threads() int {
	if p == nil || p.threads < 1 {
		return 1
	}
	return p.threads
}

// grainSize is the minimum number of loop iterations per worker below which
// spawning goroutines is not worth it.
const grainSize = 512

// For runs f over the index range [0, n) split into contiguous blocks, one
// block per worker. f must be safe to call concurrently on disjoint ranges.
func (p *Pool) For(n int, f func(lo, hi int)) {
	t := p.Threads()
	if n <= 0 {
		return
	}
	if t == 1 || n < 2*grainSize {
		f(0, n)
		return
	}
	if t > n/grainSize {
		t = n / grainSize
		if t < 1 {
			t = 1
		}
	}
	var wg sync.WaitGroup
	chunk := (n + t - 1) / t
	for w := 0; w < t; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Reduce folds the blocks of [0, n) with a per-block function and combines
// the per-block results with combine. combine must be associative.
func Reduce[T any](p *Pool, n int, identity T, block func(lo, hi int) T, combine func(a, b T) T) T {
	t := p.Threads()
	if n <= 0 {
		return identity
	}
	if t == 1 || n < 2*grainSize {
		return combine(identity, block(0, n))
	}
	if t > n/grainSize {
		t = n / grainSize
	}
	partial := make([]T, t)
	var wg sync.WaitGroup
	chunk := (n + t - 1) / t
	for w := 0; w < t; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			partial[w] = identity
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = block(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	acc := identity
	for _, v := range partial {
		acc = combine(acc, v)
	}
	return acc
}

// PrefixSum computes the exclusive prefix sum of xs in parallel and returns
// the total. After the call, out[i] holds the sum of xs[0..i), and out must
// have len(xs). xs and out may alias.
func PrefixSum(p *Pool, xs, out []int) int {
	n := len(xs)
	if len(out) != n {
		panic("par: PrefixSum output length mismatch")
	}
	t := p.Threads()
	if t == 1 || n < 2*grainSize {
		sum := 0
		for i, v := range xs {
			out[i] = sum
			sum += v
		}
		return sum
	}
	if t > n/grainSize {
		t = n / grainSize
	}
	chunk := (n + t - 1) / t
	blockSum := make([]int, t)
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			blockSum[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for w := range blockSum {
		blockSum[w], total = total, total+blockSum[w]
	}
	for w := 0; w < t; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := blockSum[w]
			for i := lo; i < hi; i++ {
				v := xs[i]
				out[i] = s
				s += v
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return total
}

// Filter writes the elements of xs satisfying keep into a fresh slice,
// preserving order. It runs in two parallel passes (count, then pack).
func Filter[T any](p *Pool, xs []T, keep func(T) bool) []T {
	n := len(xs)
	if p.Threads() == 1 || n < 2*grainSize {
		out := make([]T, 0, n/2+1)
		for _, v := range xs {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	return filterTwoPass(p, xs, keep, func(total int) []T { return make([]T, total) })
}

// filterTwoPass is the shared parallel count-then-pack body of Filter and
// FilterInto; alloc provides the destination once the surviving count is
// known.
func filterTwoPass[T any](p *Pool, xs []T, keep func(T) bool, alloc func(total int) []T) []T {
	n := len(xs)
	t := p.Threads()
	if t > n/grainSize {
		t = n / grainSize
	}
	chunk := (n + t - 1) / t
	counts := make([]int, t)
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := 0
			for i := lo; i < hi; i++ {
				if keep(xs[i]) {
					c++
				}
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	offsets := make([]int, t)
	for w := range counts {
		offsets[w] = total
		total += counts[w]
	}
	out := alloc(total)
	for w := 0; w < t; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			o := offsets[w]
			for i := lo; i < hi; i++ {
				if keep(xs[i]) {
					out[o] = xs[i]
					o++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}

// Map applies f to every element of xs in parallel, returning a new slice.
func Map[T, U any](p *Pool, xs []T, f func(T) U) []U {
	return MapInto(p, make([]U, len(xs)), xs, f)
}

// MapInto is Map writing into dst, which must have capacity at least
// len(xs) and must not alias xs; it returns dst[:len(xs)]. Used with
// arena-backed destinations to keep per-round transforms allocation-free.
func MapInto[T, U any](p *Pool, dst []U, xs []T, f func(T) U) []U {
	dst = dst[:len(xs)]
	p.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(xs[i])
		}
	})
	return dst
}

// FilterInto is Filter packing into dst, which must have capacity at least
// len(xs) and must not alias xs; it returns the packed prefix of dst,
// preserving order.
func FilterInto[T any](p *Pool, dst []T, xs []T, keep func(T) bool) []T {
	n := len(xs)
	if p.Threads() == 1 || n < 2*grainSize {
		out := dst[:0]
		for _, v := range xs {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	return filterTwoPass(p, xs, keep, func(total int) []T { return dst[:total] })
}

// None marks an empty MinIndex slot.
const None = ^uint32(0)

// MinIndex is a concurrent min-priority-write table: slot s holds the index
// of the best candidate written so far under a caller-supplied total order.
// It is the core primitive of the min-priority-write Borůvka variant: each
// edge is written to the slots of both endpoints, and each slot retains the
// index of the lightest edge. Writers may race freely; the CAS loop
// guarantees the winner is the minimum under less.
type MinIndex struct {
	slots []atomic.Uint32
}

// NewMinIndex returns a table with n empty slots.
func NewMinIndex(n int) *MinIndex {
	m := &MinIndex{slots: make([]atomic.Uint32, n)}
	m.Reset()
	return m
}

// Len reports the number of slots.
func (m *MinIndex) Len() int { return len(m.slots) }

// Reset empties all slots.
func (m *MinIndex) Reset() {
	for i := range m.slots {
		m.slots[i].Store(None)
	}
}

// Write offers candidate index idx to slot s; the slot keeps whichever of
// the current holder and idx is smaller under less. less(a, b) must define a
// strict total order on candidate indices and must be pure.
func (m *MinIndex) Write(s int, idx uint32, less func(a, b uint32) bool) {
	for {
		cur := m.slots[s].Load()
		if cur != None && !less(idx, cur) {
			return
		}
		if m.slots[s].CompareAndSwap(cur, idx) {
			return
		}
	}
}

// Get returns the current holder of slot s, or None.
func (m *MinIndex) Get(s int) uint32 {
	return m.slots[s].Load()
}
