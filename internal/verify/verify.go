// Package verify provides an independent minimum-spanning-forest verifier:
// given the input graph and a claimed MSF, it checks the three defining
// properties without running any MST algorithm —
//
//  1. forest: the claimed edges are input edges and contain no cycle,
//  2. spanning: they connect exactly the input's connected components,
//  3. cycle property: no non-forest edge is lighter than the heaviest
//     forest edge on the path between its endpoints (with the unique
//     weight order this certifies minimality, not just 2-optimality).
//
// Property 3 uses binary-lifting LCA with path-maximum edges, O(m log n)
// overall — the classic King-style verification bound is near-linear, but
// log-factor verification is plenty at simulator scales. The verifier backs
// the test suites and cmd/mstverify, giving every algorithm in the
// repository an oracle that shares no code with any of them.
package verify

import (
	"fmt"

	"kamsta/internal/graph"
	"kamsta/internal/unionfind"
)

// MSF checks that claimed is the minimum spanning forest of the undirected
// input edge list (one copy per logical edge; directed symmetric lists
// should be reduced with seqmst.UndirectedFromDirected first). It returns
// "" when the claim is a valid unique MSF, or a diagnostic string.
func MSF(input, claimed []graph.Edge) string {
	// Index input edges by weight class; the claimed forest must be a
	// sub-multiset.
	inSet := map[uint64]graph.Edge{}
	for _, e := range input {
		if prev, dup := inSet[e.TB]; dup && graph.LessWeight(e, prev) {
			inSet[e.TB] = e // keep the lightest parallel copy for reference
		} else if !dup {
			inSet[e.TB] = e
		}
	}
	for _, e := range claimed {
		if _, ok := inSet[e.TB]; !ok {
			return fmt.Sprintf("claimed edge %v is not an input edge", e)
		}
	}

	// Dense-remap the touched vertices.
	ids := map[graph.VID]int32{}
	touch := func(v graph.VID) int32 {
		if i, ok := ids[v]; ok {
			return i
		}
		i := int32(len(ids))
		ids[v] = i
		return i
	}
	for _, e := range input {
		touch(e.U)
		touch(e.V)
	}
	n := len(ids)

	// 1. Forest.
	uf := unionfind.New(n)
	for _, e := range claimed {
		if e.U == e.V {
			return fmt.Sprintf("claimed edge %v is a self-loop", e)
		}
		if !uf.Union(int(ids[e.U]), int(ids[e.V])) {
			return fmt.Sprintf("claimed edge %v closes a cycle", e)
		}
	}

	// 2. Spanning: input components == claimed components.
	full := unionfind.New(n)
	for _, e := range input {
		full.Union(int(ids[e.U]), int(ids[e.V]))
	}
	if full.Count() != uf.Count() {
		return fmt.Sprintf("claimed forest has %d components, input has %d", uf.Count(), full.Count())
	}
	for _, e := range input {
		if !uf.Same(int(ids[e.U]), int(ids[e.V])) {
			return fmt.Sprintf("input edge %v spans two claimed components", e)
		}
	}

	// 3. Cycle property via path maxima on the claimed forest.
	pm := newPathMax(n, claimed, ids)
	for _, e := range input {
		if e.U == e.V {
			continue
		}
		if _, isTree := pm.treeTB[e.TB]; isTree {
			continue
		}
		heaviest, ok := pm.maxOnPath(ids[e.U], ids[e.V])
		if !ok {
			return fmt.Sprintf("internal: no tree path for %v", e)
		}
		// Under the unique weight order, a strictly lighter non-tree edge
		// disproves minimality.
		if graph.LessWeight(e, heaviest) {
			return fmt.Sprintf("non-tree edge %v is lighter than tree edge %v on its cycle", e, heaviest)
		}
	}
	return ""
}

// pathMax answers maximum-weight-edge queries on forest paths with binary
// lifting.
type pathMax struct {
	up     [][]int32      // up[k][v]: 2^k-th ancestor
	mx     [][]graph.Edge // mx[k][v]: heaviest edge on that ancestor path
	depth  []int32
	comp   []int32
	treeTB map[uint64]struct{}
	levels int
}

func newPathMax(n int, tree []graph.Edge, ids map[graph.VID]int32) *pathMax {
	adj := make([][]struct {
		to int32
		e  graph.Edge
	}, n)
	treeTB := make(map[uint64]struct{}, len(tree))
	for _, e := range tree {
		u, v := ids[e.U], ids[e.V]
		adj[u] = append(adj[u], struct {
			to int32
			e  graph.Edge
		}{v, e})
		adj[v] = append(adj[v], struct {
			to int32
			e  graph.Edge
		}{u, e})
		treeTB[e.TB] = struct{}{}
	}
	levels := 1
	for v := 1; v < n; v <<= 1 {
		levels++
	}
	pm := &pathMax{
		depth:  make([]int32, n),
		comp:   make([]int32, n),
		treeTB: treeTB,
		levels: levels,
	}
	parent := make([]int32, n)
	parentEdge := make([]graph.Edge, n)
	for i := range pm.comp {
		pm.comp[i] = -1
	}
	// Iterative BFS per component.
	queue := make([]int32, 0, n)
	for root := 0; root < n; root++ {
		if pm.comp[root] >= 0 {
			continue
		}
		pm.comp[root] = int32(root)
		parent[root] = int32(root)
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range adj[v] {
				if pm.comp[a.to] >= 0 {
					continue
				}
				pm.comp[a.to] = int32(root)
				pm.depth[a.to] = pm.depth[v] + 1
				parent[a.to] = v
				parentEdge[a.to] = a.e
				queue = append(queue, a.to)
			}
		}
	}
	pm.up = make([][]int32, levels)
	pm.mx = make([][]graph.Edge, levels)
	pm.up[0] = parent
	pm.mx[0] = parentEdge
	for k := 1; k < levels; k++ {
		pm.up[k] = make([]int32, n)
		pm.mx[k] = make([]graph.Edge, n)
		for v := 0; v < n; v++ {
			mid := pm.up[k-1][v]
			pm.up[k][v] = pm.up[k-1][mid]
			// Entries are only queried when the full 2^k ancestor path
			// exists, in which case both halves are valid; zero-value
			// edges from truncated paths near a root never win a max.
			a, b := pm.mx[k-1][v], pm.mx[k-1][mid]
			if graph.LessWeight(a, b) {
				pm.mx[k][v] = b
			} else {
				pm.mx[k][v] = a
			}
		}
	}
	return pm
}

// maxOnPath returns the heaviest tree edge on the u–v forest path.
func (pm *pathMax) maxOnPath(u, v int32) (graph.Edge, bool) {
	if pm.comp[u] != pm.comp[v] || u == v {
		return graph.Edge{}, false
	}
	var best graph.Edge
	has := false
	bump := func(e graph.Edge) {
		if !has || graph.LessWeight(best, e) {
			best, has = e, true
		}
	}
	if pm.depth[u] < pm.depth[v] {
		u, v = v, u
	}
	// Lift u to v's depth.
	diff := pm.depth[u] - pm.depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			bump(pm.mx[k][u])
			u = pm.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return best, has
	}
	for k := pm.levels - 1; k >= 0; k-- {
		if pm.up[k][u] != pm.up[k][v] {
			bump(pm.mx[k][u])
			bump(pm.mx[k][v])
			u, v = pm.up[k][u], pm.up[k][v]
		}
	}
	bump(pm.mx[0][u])
	bump(pm.mx[0][v])
	return best, has
}
