package verify

import (
	"testing"
	"testing/quick"

	"kamsta/internal/graph"
	"kamsta/internal/rng"
	"kamsta/internal/seqmst"
)

func randomInput(n, m int, seed uint64) []graph.Edge {
	r := rng.New(seed)
	seen := map[uint64]bool{}
	var edges []graph.Edge
	for i := 2; i <= n; i++ {
		u := graph.VID(r.Intn(i-1) + 1)
		v := graph.VID(i)
		if !seen[graph.MakeTB(u, v)] {
			seen[graph.MakeTB(u, v)] = true
			edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
		}
	}
	for len(edges) < m {
		u := graph.VID(r.Intn(n) + 1)
		v := graph.VID(r.Intn(n) + 1)
		if u == v || seen[graph.MakeTB(u, v)] {
			continue
		}
		seen[graph.MakeTB(u, v)] = true
		edges = append(edges, graph.NewEdge(u, v, graph.RandomWeight(seed, u, v)))
	}
	return edges
}

func TestAcceptsTrueMSF(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		input := randomInput(60, 250, seed)
		msf := seqmst.Kruskal(70, input)
		if msg := MSF(input, msf.Edges); msg != "" {
			t.Fatalf("seed %d: rejected the true MSF: %s", seed, msg)
		}
	}
}

func TestRejectsForeignEdge(t *testing.T) {
	input := randomInput(30, 80, 1)
	msf := seqmst.Kruskal(30, input)
	bad := append([]graph.Edge{}, msf.Edges...)
	bad[0] = graph.NewEdge(1000, 1001, 5) // never in the input
	if MSF(input, bad) == "" {
		t.Fatal("accepted a foreign edge")
	}
}

func TestRejectsCycle(t *testing.T) {
	input := []graph.Edge{
		graph.NewEdge(1, 2, 1), graph.NewEdge(2, 3, 2), graph.NewEdge(1, 3, 3),
	}
	if MSF(input, input) == "" {
		t.Fatal("accepted a cyclic claim")
	}
}

func TestRejectsNonSpanning(t *testing.T) {
	input := randomInput(30, 80, 2)
	msf := seqmst.Kruskal(30, input)
	if MSF(input, msf.Edges[:len(msf.Edges)-1]) == "" {
		t.Fatal("accepted a non-spanning claim")
	}
}

func TestRejectsNonMinimalSpanningTree(t *testing.T) {
	// A spanning tree that is not minimal: triangle where the claim uses
	// the two heavy edges.
	input := []graph.Edge{
		graph.NewEdge(1, 2, 1), graph.NewEdge(2, 3, 5), graph.NewEdge(1, 3, 9),
	}
	claim := []graph.Edge{input[1], input[2]} // weight 14, MST is 6
	if msg := MSF(input, claim); msg == "" {
		t.Fatal("accepted a non-minimal spanning tree")
	}
}

func TestRejectsSwappedEdgeDeepInTree(t *testing.T) {
	// Build a path graph plus one chord; swapping the chord for a path
	// edge it dominates must be caught by the path-max query.
	var input []graph.Edge
	for i := 1; i < 40; i++ {
		input = append(input, graph.NewEdge(graph.VID(i), graph.VID(i+1), 10))
	}
	chord := graph.NewEdge(5, 25, 200) // heavier than every path edge
	input = append(input, chord)
	msf := seqmst.Kruskal(40, input)
	if msg := MSF(input, msf.Edges); msg != "" {
		t.Fatalf("true MSF rejected: %s", msg)
	}
	// Replace path edge (10,11) with the chord: still spanning, not minimal.
	var bad []graph.Edge
	for _, e := range msf.Edges {
		if e.TB == graph.MakeTB(10, 11) {
			bad = append(bad, chord)
		} else {
			bad = append(bad, e)
		}
	}
	if MSF(input, bad) == "" {
		t.Fatal("accepted a tree with a dominated chord swap")
	}
}

func TestDisconnectedForest(t *testing.T) {
	input := []graph.Edge{
		graph.NewEdge(1, 2, 3), graph.NewEdge(3, 4, 4), graph.NewEdge(4, 5, 5),
		graph.NewEdge(3, 5, 9),
	}
	msf := seqmst.Kruskal(5, input)
	if msg := MSF(input, msf.Edges); msg != "" {
		t.Fatalf("forest rejected: %s", msg)
	}
}

func TestEmpty(t *testing.T) {
	if msg := MSF(nil, nil); msg != "" {
		t.Fatalf("empty claim on empty input rejected: %s", msg)
	}
}

func TestPropertyOnlyTrueMSFAccepted(t *testing.T) {
	// Property: a random single-edge swap in the MSF either recreates the
	// MSF (impossible — unique weights) or gets rejected.
	f := func(seedRaw uint16, pick uint8) bool {
		seed := uint64(seedRaw)
		input := randomInput(25, 70, seed)
		msf := seqmst.Kruskal(25, input)
		if MSF(input, msf.Edges) != "" {
			return false
		}
		// Pick a non-tree edge and a tree edge; swap if distinct.
		treeTB := map[uint64]bool{}
		for _, e := range msf.Edges {
			treeTB[e.TB] = true
		}
		var nonTree []graph.Edge
		for _, e := range input {
			if !treeTB[e.TB] {
				nonTree = append(nonTree, e)
			}
		}
		if len(nonTree) == 0 || len(msf.Edges) == 0 {
			return true
		}
		repl := nonTree[int(pick)%len(nonTree)]
		victim := int(pick) % len(msf.Edges)
		var claim []graph.Edge
		for i, e := range msf.Edges {
			if i == victim {
				claim = append(claim, repl)
			} else {
				claim = append(claim, e)
			}
		}
		// The modified claim must never verify (it differs from the unique
		// MSF; it may be cyclic, non-spanning, or non-minimal).
		return MSF(input, claim) != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLargePathMaxStress(t *testing.T) {
	// Deep tree (path of 3000) + many chords stresses the lifting tables.
	var input []graph.Edge
	for i := 1; i < 3000; i++ {
		input = append(input, graph.NewEdge(graph.VID(i), graph.VID(i+1), graph.RandomWeight(3, graph.VID(i), graph.VID(i+1))))
	}
	r := rng.New(9)
	for k := 0; k < 2000; k++ {
		u := graph.VID(r.Intn(3000) + 1)
		v := graph.VID(r.Intn(3000) + 1)
		if u != v && graph.MakeTB(u, v) != 0 {
			input = append(input, graph.NewEdge(u, v, 250+graph.RandomWeight(3, u, v)%5))
		}
	}
	msf := seqmst.Kruskal(3000, input)
	if msg := MSF(input, msf.Edges); msg != "" {
		t.Fatalf("stress MSF rejected: %s", msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	input := randomInput(5000, 40000, 1)
	msf := seqmst.Kruskal(5000, input)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MSF(input, msf.Edges) != "" {
			b.Fatal("verification failed")
		}
	}
}
