package alltoall

import (
	"fmt"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/rng"
)

// randomWorkload builds, for each rank, deterministic per-destination
// buckets of varying sizes (including empty ones).
func randomWorkload(p, rank int, seed uint64) [][]int {
	r := rng.New(seed).Split(uint64(rank))
	send := make([][]int, p)
	for d := 0; d < p; d++ {
		n := r.Intn(5) // 0..4 items
		for k := 0; k < n; k++ {
			send[d] = append(send[d], rank*1_000_000+d*1000+k)
		}
	}
	return send
}

func runExchange(t *testing.T, p int, s Strategy) [][][]int {
	t.Helper()
	w := comm.NewWorld(p)
	results := make([][][]int, p)
	w.Run(func(c *comm.Comm) {
		send := randomWorkload(p, c.Rank(), 42)
		results[c.Rank()] = Exchange(c, s, send)
	})
	return results
}

func checkDelivery(t *testing.T, p int, got [][][]int) {
	t.Helper()
	for rank := 0; rank < p; rank++ {
		for src := 0; src < p; src++ {
			want := randomWorkload(p, src, 42)[rank]
			have := got[rank][src]
			if len(have) != len(want) {
				t.Fatalf("p=%d: rank %d received %d items from %d, want %d", p, rank, len(have), src, len(want))
			}
			for i := range want {
				if have[i] != want[i] {
					t.Fatalf("p=%d: rank %d item %d from %d: got %d want %d", p, rank, i, src, have[i], want[i])
				}
			}
		}
	}
}

func TestDirectDelivery(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		checkDelivery(t, p, runExchange(t, p, Direct))
	}
}

func TestGridDelivery(t *testing.T) {
	// Includes sizes where the last grid row is incomplete (p not c*r).
	for _, p := range []int{1, 2, 3, 5, 6, 7, 8, 11, 12, 13, 16, 23, 25, 31} {
		checkDelivery(t, p, runExchange(t, p, Grid))
	}
}

func TestHypercubeDelivery(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		checkDelivery(t, p, runExchange(t, p, Hypercube))
	}
}

func TestAutoDelivery(t *testing.T) {
	for _, p := range []int{1, 3, 8, 13} {
		checkDelivery(t, p, runExchange(t, p, Auto))
	}
}

func TestStrategiesAgree(t *testing.T) {
	for _, p := range []int{4, 8, 16} {
		d := runExchange(t, p, Direct)
		g := runExchange(t, p, Grid)
		h := runExchange(t, p, Hypercube)
		for rank := 0; rank < p; rank++ {
			for src := 0; src < p; src++ {
				if fmt.Sprint(d[rank][src]) != fmt.Sprint(g[rank][src]) {
					t.Fatalf("p=%d: direct and grid disagree at [%d][%d]", p, rank, src)
				}
				if fmt.Sprint(d[rank][src]) != fmt.Sprint(h[rank][src]) {
					t.Fatalf("p=%d: direct and hypercube disagree at [%d][%d]", p, rank, src)
				}
			}
		}
	}
}

func TestHypercubePanicsOnNonPowerOfTwo(t *testing.T) {
	// The guard fires before any collective call, so recovering inside each
	// PE cannot deadlock the world.
	w := comm.NewWorld(3)
	panicked := make([]bool, 3)
	w.Run(func(c *comm.Comm) {
		defer func() {
			if recover() != nil {
				panicked[c.Rank()] = true
			}
		}()
		Exchange(c, Hypercube, make([][]int, 3))
	})
	for r, ok := range panicked {
		if !ok {
			t.Fatalf("rank %d did not reject a 3-PE hypercube", r)
		}
	}
}

func TestGridGeometry(t *testing.T) {
	for p := 1; p <= 64; p++ {
		g := newGridGeom(p)
		if g.c < 1 || g.c*g.c > p {
			t.Fatalf("p=%d: c=%d violates c=floor(sqrt(p))", p, g.c)
		}
		if (g.c+1)*(g.c+1) <= p {
			t.Fatalf("p=%d: c=%d is not the floor of sqrt", p, g.c)
		}
		if g.r != (p+g.c-1)/g.c {
			t.Fatalf("p=%d: r=%d want ceil(p/c)", p, g.r)
		}
		// Paper invariant: c <= r <= c+2.
		if g.r < g.c || g.r > g.c+2 {
			t.Fatalf("p=%d: r=%d outside [c, c+2] with c=%d", p, g.r, g.c)
		}
		// Every intermediate must exist and lie in the sender's column.
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				tm := g.intermediate(i, j)
				if tm < 0 || tm >= p {
					t.Fatalf("p=%d: intermediate(%d,%d)=%d out of range", p, i, j, tm)
				}
				if g.col(tm) != g.col(i) {
					t.Fatalf("p=%d: intermediate(%d,%d)=%d not in sender's column", p, i, j, tm)
				}
			}
		}
	}
}

func TestColSizeSumsToP(t *testing.T) {
	for p := 1; p <= 40; p++ {
		g := newGridGeom(p)
		sum := 0
		for k := 0; k < g.c; k++ {
			sum += g.colSize(k)
		}
		if sum != p {
			t.Fatalf("p=%d: column sizes sum to %d", p, sum)
		}
	}
}

// startupCost measures the modeled time of one empty-payload exchange.
func startupCost(p int, s Strategy) float64 {
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		send := make([][]int, p)
		for d := range send {
			send[d] = []int{d} // one tiny item per destination
		}
		Exchange(c, s, send)
	})
	return w.MaxClock()
}

func TestGridBeatsDirectStartupAtScale(t *testing.T) {
	// The whole point of the two-level exchange (Fig. 2): for small
	// messages the startup term α·p of the direct exchange dominates, while
	// the grid pays only O(α·√p).
	p := 256
	direct := startupCost(p, Direct)
	grid := startupCost(p, Grid)
	if grid >= direct {
		t.Fatalf("p=%d small messages: grid %.3e should beat direct %.3e", p, grid, direct)
	}
	if direct/grid < 3 {
		t.Fatalf("p=%d: expected a large startup gap, got direct/grid = %.1f", p, direct/grid)
	}
}

func TestDirectBeatsGridForBigMessages(t *testing.T) {
	// With large messages the doubled volume of the grid should lose.
	p := 16
	big := make([]int, 1<<16)
	run := func(s Strategy) float64 {
		w := comm.NewWorld(p)
		w.Run(func(c *comm.Comm) {
			send := make([][]int, p)
			for d := range send {
				send[d] = big
			}
			Exchange(c, s, send)
		})
		return w.MaxClock()
	}
	direct, grid := run(Direct), run(Grid)
	if direct >= grid {
		t.Fatalf("p=%d big messages: direct %.3e should beat grid %.3e", p, direct, grid)
	}
}

func TestAutoPicksGridForTinyMessages(t *testing.T) {
	p := 64
	auto := startupCost(p, Auto)
	grid := startupCost(p, Grid)
	direct := startupCost(p, Direct)
	if auto > grid*1.5 {
		t.Fatalf("auto (%.3e) should be close to grid (%.3e), not direct (%.3e)", auto, grid, direct)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{Direct: "direct", Grid: "grid", Hypercube: "hypercube", Auto: "auto"} {
		if s.String() != want {
			t.Fatalf("String(%d)=%q want %q", int(s), s.String(), want)
		}
	}
}

func BenchmarkDirect64(b *testing.B)    { benchStrategy(b, 64, Direct) }
func BenchmarkGrid64(b *testing.B)      { benchStrategy(b, 64, Grid) }
func BenchmarkHypercube64(b *testing.B) { benchStrategy(b, 64, Hypercube) }

func benchStrategy(b *testing.B, p int, s Strategy) {
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		send := randomWorkload(p, c.Rank(), 7)
		for i := 0; i < b.N; i++ {
			Exchange(c, s, send)
		}
	})
}
