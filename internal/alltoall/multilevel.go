package alltoall

import (
	"fmt"
	"math"

	"kamsta/internal/comm"
)

// dimBase encodes multi-level strategies in the Strategy space: the value
// dimBase+d is the d-dimensional indirect exchange. §VI-A notes the
// two-level grid "can easily be generalized to dimensions 2 < d ≤ log(p)";
// at d = log p it coincides with the hypercube algorithm. This file is that
// generalization: the startup term becomes O(α·d·p^(1/d)) at the cost of a
// d-fold communication volume.
const dimBase Strategy = 16

// MultiLevel returns the d-dimensional indirect exchange strategy. d must
// be at least 2; MultiLevel(2) is the generic form of Grid (it uses a
// padded cube rather than the paper's exact incomplete-row rule, so its
// constants differ slightly).
func MultiLevel(d int) Strategy {
	if d < 2 {
		panic(fmt.Sprintf("alltoall: MultiLevel dimension %d < 2", d))
	}
	return dimBase + Strategy(d)
}

// multiLevelDims extracts d from a MultiLevel strategy, or 0.
func multiLevelDims(s Strategy) int {
	if s > dimBase {
		return int(s - dimBase)
	}
	return 0
}

// cubeGeom is the padded d-dimensional cube: side = ⌈p^(1/d)⌉, ranks are
// mixed-radix vectors over the side, positions ≥ p are virtual.
type cubeGeom struct {
	p, d, side int
}

func newCubeGeom(p, d int) cubeGeom {
	side := int(math.Ceil(math.Pow(float64(p), 1/float64(d))))
	if side < 2 {
		side = 2
	}
	// Rounding guard: side^d must cover p.
	for pow(side, d) < p {
		side++
	}
	return cubeGeom{p: p, d: d, side: side}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
		if r < 0 { // overflow paranoia
			return math.MaxInt
		}
	}
	return r
}

// coord returns the k-th digit of rank in base side.
func (g cubeGeom) coord(rank, k int) int {
	for i := 0; i < k; i++ {
		rank /= g.side
	}
	return rank % g.side
}

// replaceCoord returns rank with digit k replaced by c.
func (g cubeGeom) replaceCoord(rank, k, c int) int {
	scale := 1
	for i := 0; i < k; i++ {
		scale *= g.side
	}
	old := (rank / scale) % g.side
	return rank + (c-old)*scale
}

// multiLevelExchange routes each message through d−1 intermediates: phase k
// aligns coordinate k with the destination's. Intermediates that fall into
// the cube's virtual padding (≥ p) short-circuit directly to the
// destination, which only ever lowers the hop count.
func multiLevelExchange[T any](c *comm.Comm, d int, send [][]T) [][]T {
	p, rank := c.P(), c.Rank()
	g := newCubeGeom(p, d)
	elem := elemSize[T]()

	pending := make([]hop[T], 0, p)
	for j, b := range send {
		if len(b) > 0 {
			pending = append(pending, hop[T]{Src: int32(rank), Dst: int32(j), Items: b})
		}
	}
	for k := 0; k < g.d; k++ {
		sendK := make([][]hop[T], p)
		out := 0
		var keep []hop[T]
		for _, h := range pending {
			next := g.replaceCoord(rank, k, g.coord(int(h.Dst), k))
			if next >= p {
				next = int(h.Dst) // virtual intermediate: go direct
			}
			if next == rank {
				keep = append(keep, h)
				continue
			}
			sendK[next] = append(sendK[next], h)
			out += len(h.Items)*elem + hopHeaderBytes
		}
		recv := comm.RawAlltoall(c, sendK)
		in := 0
		pending = keep
		for s := range recv {
			for _, h := range recv[s] {
				in += len(h.Items)*elem + hopHeaderBytes
				pending = append(pending, h)
			}
		}
		c.ChargeComm(g.side-1, max(out, in))
	}
	result := make([][]T, p)
	for _, h := range pending {
		if int(h.Dst) != rank {
			panic("alltoall: multi-level routing failed to converge")
		}
		result[h.Src] = append(result[h.Src], h.Items...)
	}
	return result
}
