// Package alltoall implements the sparse personalized all-to-all exchange
// strategies of the paper (§II-A, §VI-A). A direct exchange delivers every
// message in one hop at cost α·p + β·ℓ; its startup term α·p becomes
// prohibitive at scale when messages are small. The two-level grid strategy
// routes each message through one intermediate PE chosen so that both
// physical exchanges involve at most √p + 2 participants, reducing the
// startup term to O(α·√p) at the cost of doubling the communication volume.
// The hypercube strategy (Johnsson–Ho) is the d = log p limit of the same
// idea. Auto picks direct or grid by the paper's average-message-size rule
// (500 bytes on their system).
package alltoall

import (
	"fmt"
	"math"

	"kamsta/internal/comm"
	"kamsta/internal/sizeof"
)

// Strategy selects a routing scheme for Exchange.
type Strategy int

const (
	// Auto chooses Direct for large average message sizes and Grid below
	// DefaultGridThreshold bytes per message, as in §VI-A. Auto is the
	// zero value so unset options default to it.
	Auto Strategy = iota
	// Direct delivers every message in one hop (one-level, MPI_Alltoallv).
	Direct
	// Grid routes through a √p × √p logical grid (two-level, §VI-A).
	Grid
	// Hypercube routes along log p hypercube dimensions; requires p to be a
	// power of two.
	Hypercube
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Direct:
		return "direct"
	case Grid:
		return "grid"
	case Hypercube:
		return "hypercube"
	case Auto:
		return "auto"
	}
	if d := multiLevelDims(s); d > 0 {
		return fmt.Sprintf("multilevel-%dd", d)
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// DefaultGridThreshold is the average bytes-per-message below which Auto
// prefers the two-level grid exchange (the paper uses 500 on SuperMUC-NG).
const DefaultGridThreshold = 500

// hop is a routed message fragment: a payload travelling from Src to Dst,
// possibly via intermediates.
type hop[T any] struct {
	Src, Dst int32
	Items    []T
}

// hopHeaderBytes is the modeled wire overhead of one hop header.
const hopHeaderBytes = 8

// Exchange performs a personalized all-to-all: send[j] is delivered to PE j
// and the result's slot i holds what PE i sent here. All PEs must call it
// collectively with the same strategy. Received slices are owned by the
// caller.
func Exchange[T any](c *comm.Comm, s Strategy, send [][]T) [][]T {
	if len(send) != c.P() {
		panic(fmt.Sprintf("alltoall: %d buckets on a %d-PE world", len(send), c.P()))
	}
	switch s {
	case Direct:
		return comm.Alltoall(c, send)
	case Grid:
		return gridExchange(c, send)
	case Hypercube:
		return hypercubeExchange(c, send)
	case Auto:
		return autoExchange(c, send)
	default:
		if d := multiLevelDims(s); d > 0 {
			return multiLevelExchange(c, d, send)
		}
		panic("alltoall: unknown strategy " + s.String())
	}
}

// autoExchange makes a global decision between Direct and Grid based on the
// average number of payload bytes per (ordered) PE pair, mirroring §VI-A.
func autoExchange[T any](c *comm.Comm, send [][]T) [][]T {
	elem := elemSize[T]()
	local := 0
	for j, b := range send {
		if j != c.Rank() {
			local += len(b) * elem
		}
	}
	total := comm.Allreduce(c, local, func(a, b int) int { return a + b })
	p := c.P()
	pairs := p * (p - 1)
	if pairs == 0 || total/pairs >= DefaultGridThreshold {
		return comm.Alltoall(c, send)
	}
	return gridExchange(c, send)
}

// gridGeom captures the logical grid of §VI-A: c = ⌊√p⌋ columns and
// r = ⌈p/c⌉ rows, PE i at (row i/c, column i mod c).
type gridGeom struct {
	p, c, r int
}

func newGridGeom(p int) gridGeom {
	c := int(math.Sqrt(float64(p)))
	for c*c > p {
		c--
	}
	if c < 1 {
		c = 1
	}
	r := (p + c - 1) / c
	return gridGeom{p: p, c: c, r: r}
}

func (g gridGeom) col(i int) int { return i % g.c }
func (g gridGeom) row(i int) int { return i / g.c }

// intermediate returns the relay PE for a message i → j: the PE in row(j)
// and column(i). When that PE does not exist because j lies in the
// incomplete last row, the paper's rule substitutes the PE in row col(j)
// and column col(i), and j is virtually appended to row col(j) for the
// second exchange.
func (g gridGeom) intermediate(i, j int) int {
	t := g.row(j)*g.c + g.col(i)
	if t >= g.p {
		t = g.col(j)*g.c + g.col(i)
	}
	return t
}

// colSize returns the number of PEs in column k.
func (g gridGeom) colSize(k int) int {
	n := g.p / g.c
	if k < g.p%g.c {
		n++
	}
	return n
}

// gridExchange implements the two-level indirect all-to-all. Phase 1 moves
// every message to the intermediate in the sender's column; phase 2 moves
// it to the final destination along the intermediate's row. Each phase is
// charged α·(√p-ish participants) + β·(phase volume); the total volume is
// twice that of a direct exchange, which is exactly the trade the paper
// makes.
func gridExchange[T any](c *comm.Comm, send [][]T) [][]T {
	p, rank := c.P(), c.Rank()
	g := newGridGeom(p)
	elem := elemSize[T]()

	// Phase 1: sender → intermediate (within the sender's column).
	send1 := make([][]hop[T], p)
	out1 := 0
	for j, b := range send {
		if len(b) == 0 {
			continue
		}
		t := g.intermediate(rank, j)
		send1[t] = append(send1[t], hop[T]{Src: int32(rank), Dst: int32(j), Items: b})
		if t != rank {
			out1 += len(b)*elem + hopHeaderBytes
		}
	}
	recv1 := comm.RawAlltoall(c, send1)
	in1 := 0
	for s := range recv1 {
		if s == rank {
			continue
		}
		for _, h := range recv1[s] {
			in1 += len(h.Items)*elem + hopHeaderBytes
		}
	}
	c.ChargeComm(g.colSize(g.col(rank))-1, max(out1, in1))

	// Phase 2: intermediate → destination (within the intermediate's row,
	// plus virtually appended members of an incomplete last row).
	send2 := make([][]hop[T], p)
	out2 := 0
	for s := range recv1 {
		for _, h := range recv1[s] {
			send2[h.Dst] = append(send2[h.Dst], h)
			if int(h.Dst) != rank {
				out2 += len(h.Items)*elem + hopHeaderBytes
			}
		}
	}
	recv2 := comm.RawAlltoall(c, send2)
	result := make([][]T, p)
	in2 := 0
	for s := range recv2 {
		for _, h := range recv2[s] {
			if s != rank {
				in2 += len(h.Items)*elem + hopHeaderBytes
			}
			result[h.Src] = append(result[h.Src], h.Items...)
		}
	}
	c.ChargeComm(g.c+1, max(out2, in2))
	return result
}

// hypercubeExchange routes along the log p dimensions of a hypercube: in
// round d every PE exchanges with rank ^ 2^d all pending messages whose
// destination differs in bit d. Requires p to be a power of two.
func hypercubeExchange[T any](c *comm.Comm, send [][]T) [][]T {
	p, rank := c.P(), c.Rank()
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("alltoall: hypercube needs a power-of-two world, got p=%d", p))
	}
	elem := elemSize[T]()
	pending := make([]hop[T], 0, p)
	for j, b := range send {
		if len(b) > 0 {
			pending = append(pending, hop[T]{Src: int32(rank), Dst: int32(j), Items: b})
		}
	}
	for d := 1; d < p; d <<= 1 {
		partner := rank ^ d
		keep := pending[:0]
		var fwd []hop[T]
		outBytes := 0
		for _, h := range pending {
			if (int(h.Dst)^rank)&d != 0 {
				fwd = append(fwd, h)
				outBytes += len(h.Items)*elem + hopHeaderBytes
			} else {
				keep = append(keep, h)
			}
		}
		got := comm.RawPairExchange(c, partner, fwd)
		inBytes := 0
		for _, h := range got {
			inBytes += len(h.Items)*elem + hopHeaderBytes
		}
		pending = append(keep, got...)
		c.ChargeComm(1, max(outBytes, inBytes))
	}
	result := make([][]T, p)
	for _, h := range pending {
		if int(h.Dst) != rank {
			panic("alltoall: hypercube routing failed to converge")
		}
		// append into a nil slice copies, so the result is caller-owned.
		result[h.Src] = append(result[h.Src], h.Items...)
	}
	return result
}

// elemSize is the shared compile-time element-size helper; kept as a local
// alias so call sites in this package stay terse.
func elemSize[T any]() int {
	return sizeof.Of[T]()
}
