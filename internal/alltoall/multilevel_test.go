package alltoall

import (
	"testing"

	"kamsta/internal/comm"
)

func TestMultiLevelDelivery(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for _, p := range []int{1, 2, 5, 8, 13, 16, 27, 31} {
			checkDelivery(t, p, runExchange(t, p, MultiLevel(d)))
		}
	}
}

func TestMultiLevelAgreesWithDirect(t *testing.T) {
	p := 16
	dRes := runExchange(t, p, Direct)
	for _, d := range []int{2, 3, 4} {
		m := runExchange(t, p, MultiLevel(d))
		for rank := 0; rank < p; rank++ {
			for src := 0; src < p; src++ {
				if len(dRes[rank][src]) != len(m[rank][src]) {
					t.Fatalf("d=%d: delivery differs at [%d][%d]", d, rank, src)
				}
				for i := range dRes[rank][src] {
					if dRes[rank][src][i] != m[rank][src][i] {
						t.Fatalf("d=%d: content differs at [%d][%d][%d]", d, rank, src, i)
					}
				}
			}
		}
	}
}

func TestMultiLevelPanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MultiLevel(1) should panic")
		}
	}()
	MultiLevel(1)
}

func TestMultiLevelString(t *testing.T) {
	if MultiLevel(3).String() != "multilevel-3d" {
		t.Fatalf("String = %q", MultiLevel(3).String())
	}
}

func TestCubeGeometry(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for p := 1; p <= 70; p += 3 {
			g := newCubeGeom(p, d)
			if pow(g.side, d) < p {
				t.Fatalf("p=%d d=%d: cube side %d too small", p, d, g.side)
			}
			// replaceCoord must be consistent with coord.
			for rank := 0; rank < p; rank++ {
				for k := 0; k < d; k++ {
					for c := 0; c < g.side; c++ {
						nr := g.replaceCoord(rank, k, c)
						if g.coord(nr, k) != c {
							t.Fatalf("replaceCoord(%d,%d,%d)=%d has coord %d", rank, k, c, nr, g.coord(nr, k))
						}
						for kk := 0; kk < d; kk++ {
							if kk != k && g.coord(nr, kk) != g.coord(rank, kk) {
								t.Fatalf("replaceCoord disturbed coordinate %d", kk)
							}
						}
					}
				}
			}
		}
	}
}

// TestStartupCostOrdering verifies the §VI-A trade-off chain for tiny
// messages at scale: deeper indirection buys smaller startup terms.
func TestStartupCostOrdering(t *testing.T) {
	p := 256
	direct := startupCost(p, Direct)
	grid := startupCost(p, Grid)
	d4 := startupCost(p, MultiLevel(4))
	if grid >= direct {
		t.Fatalf("grid %.3e should beat direct %.3e", grid, direct)
	}
	if d4 >= direct {
		t.Fatalf("4-level %.3e should beat direct %.3e", d4, direct)
	}
	// 4 levels: 4·(p^(1/4)) ≈ 16α per exchange vs grid's 2·16α = 32α; the
	// deeper scheme must not be slower on startup-dominated traffic.
	if d4 > grid*1.5 {
		t.Fatalf("4-level %.3e much slower than grid %.3e on tiny messages", d4, grid)
	}
}

func TestMultiLevelVolumeGrowsWithDepth(t *testing.T) {
	// With large messages, the d-fold volume of deep routing must lose
	// against direct delivery.
	p := 16
	big := make([]int, 1<<15)
	run := func(s Strategy) float64 {
		w := comm.NewWorld(p)
		w.Run(func(c *comm.Comm) {
			send := make([][]int, p)
			for d := range send {
				send[d] = big
			}
			Exchange(c, s, send)
		})
		return w.MaxClock()
	}
	direct := run(Direct)
	d3 := run(MultiLevel(3))
	if direct >= d3 {
		t.Fatalf("big messages: direct %.3e should beat 3-level %.3e", direct, d3)
	}
}

func BenchmarkMultiLevel3_64(b *testing.B) { benchStrategy(b, 64, MultiLevel(3)) }
