package radix

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func intKey(v int) uint64   { return uint64(v) }
func intLess(a, b int) bool { return a < b }
func checkInts(t *testing.T, got, want []int) {
	t.Helper()
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSortInts(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 17, 256, 4096} {
		data := make([]int, n)
		for i := range data {
			data[i] = r.Intn(1 << 20)
		}
		want := slices.Clone(data)
		sort.Ints(want)
		Sort(data, intKey, intLess)
		checkInts(t, data, want)
	}
}

func TestSortAllEqualKeys(t *testing.T) {
	data := make([]int, 500)
	for i := range data {
		data[i] = 7
	}
	Sort(data, intKey, intLess)
	for _, v := range data {
		if v != 7 {
			t.Fatalf("corrupted: %d", v)
		}
	}
}

// TestPrefixKeyFinishedByComparator exercises the order-consistency
// contract: the key encodes only the high field, the comparator breaks the
// rest.
func TestPrefixKeyFinishedByComparator(t *testing.T) {
	type kv struct{ Hi, Lo int }
	r := rand.New(rand.NewSource(2))
	data := make([]kv, 3000)
	for i := range data {
		data[i] = kv{Hi: r.Intn(8), Lo: r.Intn(1 << 16)} // long equal-key runs
	}
	less := func(a, b kv) bool {
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	}
	want := slices.Clone(data)
	slices.SortFunc(want, CmpOf(less))
	Sort(data, func(x kv) uint64 { return uint64(x.Hi) }, less)
	if !slices.Equal(data, want) {
		t.Fatal("prefix-key sort differs from comparator sort")
	}
}

func TestSortFullWidthKeys(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := make([]uint64, 5000)
	for i := range data {
		data[i] = r.Uint64() // all 8 bytes vary
	}
	want := slices.Clone(data)
	slices.Sort(want)
	Sort(data, func(v uint64) uint64 { return v }, func(a, b uint64) bool { return a < b })
	if !slices.Equal(data, want) {
		t.Fatal("full-width key sort differs")
	}
}

func TestSortScratchReuse(t *testing.T) {
	pairs := make([]KV, 100)
	tmp := make([]KV, 100)
	perm := make([]int, 100)
	r := rand.New(rand.NewSource(4))
	for round := 0; round < 5; round++ {
		data := make([]int, 100)
		for i := range data {
			data[i] = r.Intn(1000)
		}
		want := slices.Clone(data)
		sort.Ints(want)
		SortScratch(data, intKey, intLess, pairs, tmp, perm)
		checkInts(t, data, want)
	}
}

func TestSortScratchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on scratch length mismatch")
		}
	}()
	SortScratch([]int{3, 1, 2}, intKey, intLess, make([]KV, 2), make([]KV, 3), make([]int, 3))
}

func TestSortStableWithinEqualKeysBeforeFinish(t *testing.T) {
	// A comparator that declares ties (weak order): equal-key elements must
	// come out in SOME deterministic order and the multiset must survive.
	type rec struct{ K, Tag int }
	data := make([]rec, 200)
	for i := range data {
		data[i] = rec{K: i % 3, Tag: i}
	}
	Sort(data, func(x rec) uint64 { return uint64(x.K) }, func(a, b rec) bool { return a.K < b.K })
	seen := map[int]bool{}
	for i := 1; i < len(data); i++ {
		if data[i].K < data[i-1].K {
			t.Fatal("keys out of order")
		}
	}
	for _, x := range data {
		if seen[x.Tag] {
			t.Fatal("element duplicated")
		}
		seen[x.Tag] = true
	}
	if len(seen) != 200 {
		t.Fatal("element lost")
	}
}
