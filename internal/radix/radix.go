// Package radix provides the serial LSD radix sort behind the distributed
// sorter's local phases (and the sequential ground-truth algorithms): data
// is ordered by a uint64 key extracted once per element, with any remaining
// equal-key runs finished by a comparator.
//
// The key contract is order consistency, not completeness: Key(a) < Key(b)
// must imply less(a, b). Elements whose keys collide are left to less, so a
// key may encode only a prefix of the order (e.g. graph.KeyLex packs the
// (U, V) endpoints and leaves (W, TB, ID) to the comparator). The sort is
// performed on (key, index) pairs — 16 bytes moved per pass instead of the
// full element — followed by one gather permutation of the elements, and
// counting passes whose byte is constant across all keys are skipped
// entirely, so narrow key distributions (a 14-bit vertex range, a 8-bit
// weight) pay only for the bytes that vary.
package radix

import "slices"

// KV is one sort item: the element's extracted key and its original index.
// Exported so callers can provide recycled scratch to SortScratch.
type KV struct {
	K uint64
	I uint32
}

// insertionMax is the equal-key run length up to which the comparator
// finish uses insertion sort (no allocation); longer runs fall back to
// slices.SortFunc.
const insertionMax = 32

// Sort sorts data by key (ties finished with less), allocating its own
// scratch. For hot paths with recycled buffers use SortScratch.
func Sort[T any](data []T, key func(T) uint64, less func(a, b T) bool) {
	n := len(data)
	if n < 2 {
		return
	}
	if uint64(n) >= 1<<32 { // indices are uint32
		slices.SortFunc(data, CmpOf(less))
		return
	}
	SortScratch(data, key, less, make([]KV, n), make([]KV, n), make([]T, n))
}

// SortScratch sorts data by key (ties finished with less) using the caller's
// scratch buffers; pairs, tmp and perm must each have length len(data),
// which must be below 2^32. The scratch contents are overwritten.
func SortScratch[T any](data []T, key func(T) uint64, less func(a, b T) bool, pairs, tmp []KV, perm []T) {
	n := len(data)
	if n < 2 {
		return
	}
	if len(pairs) != n || len(tmp) != n || len(perm) != n {
		panic("radix: scratch length mismatch")
	}
	// Extract keys, folding in an already-sorted check (the pattern pdqsort
	// detects; common for re-sorts of nearly-static data).
	k0 := key(data[0])
	pairs[0] = KV{K: k0}
	orAll, andAll := k0, k0
	prevK := k0
	sorted := true
	for i := 1; i < n; i++ {
		k := key(data[i])
		pairs[i] = KV{K: k, I: uint32(i)}
		orAll |= k
		andAll &= k
		if sorted && (k < prevK || (k == prevK && less(data[i], data[i-1]))) {
			sorted = false
		}
		prevK = k
	}
	if sorted {
		return
	}
	if orAll == andAll {
		// Every key equal: the radix passes are no-ops; hand the whole
		// slice to the comparator.
		finishRun(data, less)
		return
	}
	// LSD counting passes over the bytes that vary. Each pass is stable, so
	// equal keys keep their original relative order throughout.
	src, dst := pairs, tmp
	varying := orAll ^ andAll
	for shift := 0; shift < 64; shift += 8 {
		if (varying>>shift)&0xFF == 0 {
			continue
		}
		var cnt [256]int
		for _, p := range src {
			cnt[(p.K>>shift)&0xFF]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := cnt[b]
			cnt[b] = pos
			pos += c
		}
		for _, p := range src {
			b := (p.K >> shift) & 0xFF
			dst[cnt[b]] = p
			cnt[b]++
		}
		src, dst = dst, src
	}
	// Gather the elements into key order, then finish equal-key runs with
	// the comparator (stability left them in original order, not sorted
	// order).
	for j, p := range src {
		perm[j] = data[p.I]
	}
	copy(data, perm)
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && src[hi].K == src[lo].K {
			hi++
		}
		if hi-lo > 1 {
			finishRun(data[lo:hi], less)
		}
		lo = hi
	}
}

// finishRun comparator-sorts one equal-key run: insertion sort for short
// runs, pdqsort beyond insertionMax.
func finishRun[T any](run []T, less func(a, b T) bool) {
	if len(run) <= insertionMax {
		for i := 1; i < len(run); i++ {
			for j := i; j > 0 && less(run[j], run[j-1]); j-- {
				run[j], run[j-1] = run[j-1], run[j]
			}
		}
		return
	}
	slices.SortFunc(run, CmpOf(less))
}

// CmpOf adapts a strict order to the slices.SortFunc contract — the shared
// comparator bridge for every keyless fallback path.
func CmpOf[T any](less func(a, b T) bool) func(a, b T) int {
	return func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		}
		return 0
	}
}
