package baselines

import (
	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/localmst"
	"kamsta/internal/par"
	"kamsta/internal/radix"
)

// labelPair carries one contraction record (vertex → component root).
type labelPair struct {
	V, L graph.VID
}

// MNDMST computes the MSF in the style of Panja and Vadhiyar's MND-MST
// (CPU path): every PE first contracts its local subgraph with Borůvka,
// then fixed-size groups of PEs ship their contracted graphs to a group
// leader which contracts the merged subgraph, and the process recurses
// with only the leaders until one PE holds the remaining graph.
//
// Faithfulness notes (also in DESIGN.md):
//   - MND-MST's input format forbids shared vertices: edges of a vertex
//     split across a PE boundary are moved wholesale to the first holder
//     (the paper notes this causes their load imbalance on skewed graphs).
//   - Local contraction uses the freeze-on-cut rule (only contract along
//     an edge that is the component's lightest incident edge overall), the
//     condition under which locally selected edges are globally correct
//     MST edges.
//   - Members ship their cumulative contraction maps together with their
//     contracted edges; the leader resolves the stale ghost labels of the
//     merged subgraphs before contracting further. The merge hierarchy —
//     MND-MST's defining structure and its leader bottleneck — is
//     reproduced exactly.
func MNDMST(c *comm.Comm, edges []graph.Edge, layout *graph.Layout, opt Options) Result {
	opt = opt.withDefaults()
	p := c.P()
	pool := par.NewPool(opt.Threads)

	// Reassign shared-vertex edge ranges to the first holder so every
	// vertex's outgoing range lives on exactly one PE.
	send := make([][]graph.Edge, p)
	for _, e := range edges {
		dest := c.Rank()
		if first, last := layout.SharedSpan(e.U); last > first {
			dest = first
		}
		send[dest] = append(send[dest], e)
	}
	mine := flatten(alltoall.Exchange(c, opt.A2A, send))
	radix.Sort(mine, graph.KeyLex, graph.LessLex)
	c.ChargeCompute(len(mine))

	// Vertex ownership after the reassignment: the first source vertex per
	// PE, replicated; owner0(v) = last PE whose range starts at or below v.
	// (Allgather of a plain value struct — copied into the board by
	// boxing, so no ownership caveats apply.)
	type bound struct {
		Has   bool
		First graph.VID
	}
	b := bound{}
	if len(mine) > 0 {
		b = bound{Has: true, First: mine[0].U}
	}
	bounds := comm.Allgather(c, b)
	owner0 := func(v graph.VID) int {
		own := 0
		for i := 0; i < p; i++ {
			if bounds[i].Has && bounds[i].First <= v {
				own = i
			}
		}
		return own
	}
	ownerMemo := map[graph.VID]int{}

	// Merge hierarchy: at level k the active PEs are those with
	// rank % stride == 0; groups of GroupSize consecutive active PEs merge
	// onto their first member, so the leader of v's original owner at
	// stride s is (owner0(v)/s)·s.
	var mst []graph.Edge
	work := mine
	cum := map[graph.VID]graph.VID{} // cumulative contraction map of my subtree
	stride := 1
	levels := 0
	for {
		active := c.Rank()%stride == 0
		if active {
			// Resolve stale endpoint labels through the merged maps.
			resolve := func(v graph.VID) graph.VID {
				for {
					l, ok := cum[v]
					if !ok {
						return v
					}
					v = l
				}
			}
			fixed := work[:0]
			for _, e := range work {
				e.U, e.V = resolve(e.U), resolve(e.V)
				if e.U != e.V {
					fixed = append(fixed, e)
				}
			}
			work = fixed
			c.ChargeCompute(len(work))

			s := stride
			isLocal := func(v graph.VID) bool {
				o, ok := ownerMemo[v]
				if !ok {
					o = owner0(v)
					ownerMemo[v] = o
				}
				return (o/s)*s == c.Rank()
			}
			res := localmst.Run(work, isLocal, localmst.Config{Pool: pool, HashDedup: true})
			mst = append(mst, res.MSTEdges...)
			work = res.Remaining
			for i, v := range res.Verts {
				if l := res.Roots[i]; v != l {
					cum[v] = l
				}
			}
			c.ChargeCompute(res.Work)
		}
		levels++
		if stride >= p {
			break
		}
		// Ship contracted graphs and contraction maps to the group leaders.
		leader := (c.Rank() / (stride * opt.GroupSize)) * (stride * opt.GroupSize)
		sendE := make([][]graph.Edge, p)
		sendM := make([][]labelPair, p)
		if active && leader != c.Rank() {
			sendE[leader] = work
			pairs := make([]labelPair, 0, len(cum))
			for v, l := range cum {
				pairs = append(pairs, labelPair{V: v, L: l})
			}
			sendM[leader] = pairs
		}
		recvE := alltoall.Exchange(c, opt.A2A, sendE)
		recvM := alltoall.Exchange(c, opt.A2A, sendM)
		if active && leader == c.Rank() {
			work = append(work, flatten(recvE)...)
			for i := range recvM {
				for _, lp := range recvM[i] {
					cum[lp.V] = lp.L
				}
			}
		} else {
			work, cum = nil, map[graph.VID]graph.VID{}
		}
		stride *= opt.GroupSize
	}
	return finishResult(c, mst, levels)
}
