// Package baselines re-implements the two published competitors the paper
// evaluates against (§VII), as honest, correctness-tested baselines over
// the same simulated machine:
//
//   - sparseMatrix: the Awerbuch–Shiloach MSF adaptation of Baer et al.
//     [37], which 2D-partitions the adjacency matrix and drives the
//     computation with (sparse) linear-algebra-style primitives. It does
//     not exploit vertex locality and keeps globally replicated component
//     state — the structural reasons the paper's measurements show it
//     losing by orders of magnitude on local graphs.
//   - MND-MST: the multi-node algorithm of Panja and Vadhiyar [19]: local
//     Borůvka contraction per PE followed by hierarchical merging of
//     contracted graphs onto group leaders, recursing on leaders only —
//     whose leader bottleneck limits scalability.
//
// Simplifications versus the originals are documented in DESIGN.md; both
// reproduce the exact MSF (verified against Kruskal in the tests), so the
// benchmark comparisons measure algorithm structure, not wrong answers.
package baselines

import (
	"math"
	"slices"

	"kamsta/internal/alltoall"
	"kamsta/internal/comm"
	"kamsta/internal/graph"
	"kamsta/internal/radix"
)

// Result is a baseline MSF outcome.
type Result struct {
	// MSTEdges is this PE's share of identified MSF edges (original
	// working copies; the union over PEs is the MSF, each edge exactly
	// once).
	MSTEdges []graph.Edge
	// TotalWeight and NumEdges are global (identical on all PEs).
	TotalWeight uint64
	NumEdges    int
	// Rounds counts algorithm iterations (Borůvka/AS rounds for
	// sparseMatrix, merge levels for MND-MST).
	Rounds int
}

// Options configures the baselines.
type Options struct {
	// A2A is the all-to-all strategy for data movement.
	A2A alltoall.Strategy
	// GroupSize is MND-MST's merge fan-in (default 4).
	GroupSize int
	// Threads is the intra-PE thread count for MND-MST's local phases.
	Threads int
}

func (o Options) withDefaults() Options {
	if o.A2A == 0 {
		o.A2A = alltoall.Direct // the originals use plain MPI_Alltoallv
	}
	if o.GroupSize < 2 {
		o.GroupSize = 4
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
	return o
}

// SparseMatrix computes the MSF in the style of Baer et al.: edges are
// redistributed into a ⌈√p⌉×⌈√p⌉ 2D block partition of the adjacency
// matrix, and Awerbuch–Shiloach-style rounds hook every component along
// its globally lightest incident edge, shortcutting the forest afterwards.
// Component state (the parent vector) is replicated via allgathered
// candidate lists each round — the high-communication-volume behaviour of
// the original's 2D matrix kernels (documented simplification: the
// original distributes the parent vector over the grid; replicating it
// does not change the Θ(components)-per-round communication volume that
// dominates either implementation).
//
// Hooking happens in ascending root order against the live forest; with
// globally distinct weight classes the only possible hook collision is the
// mutual 2-cycle, whose second side finds the components already merged
// and skips — so every tree edge is emitted exactly once, by the PE whose
// block contributed the winning candidate.
func SparseMatrix(c *comm.Comm, edges []graph.Edge, layout *graph.Layout, opt Options) Result {
	opt = opt.withDefaults()
	_ = layout // the 2D partition below replaces the 1D layout
	p := c.P()

	maxLabel := uint64(0)
	for _, e := range edges {
		if e.U > maxLabel {
			maxLabel = e.U
		}
		if e.V > maxLabel {
			maxLabel = e.V
		}
	}
	maxLabel = comm.Allreduce(c, maxLabel, func(a, b uint64) uint64 { return max(a, b) })
	if maxLabel == 0 {
		return finishResult(c, nil, 0)
	}
	side := int(math.Sqrt(float64(p)))
	if side < 1 {
		side = 1
	}
	bucket := func(v graph.VID) int {
		b := int((v - 1) * uint64(side) / maxLabel)
		if b >= side {
			b = side - 1
		}
		return b
	}
	send := make([][]graph.Edge, p)
	for _, e := range edges {
		if e.U < e.V { // one copy per logical edge suffices here
			blk := bucket(e.U)*side + bucket(e.V)
			send[blk] = append(send[blk], e)
		}
	}
	mine := flatten(alltoall.Exchange(c, opt.A2A, send))
	c.ChargeCompute(len(edges))

	// Replicated parent vector (the AS forest).
	parent := make([]uint32, maxLabel+1)
	for i := range parent {
		parent[i] = uint32(i)
	}
	find := func(v uint32) uint32 {
		for parent[v] != v {
			v = parent[v]
		}
		return v
	}

	type cand struct {
		Root graph.VID
		E    graph.Edge
		Rank int32
	}
	var mst []graph.Edge
	rounds := 0
	for {
		// Local minimum candidate per component from this PE's block —
		// the "min-reduction over matrix rows" of the original.
		best := map[graph.VID]graph.Edge{}
		for _, e := range mine {
			ru, rv := graph.VID(find(uint32(e.U))), graph.VID(find(uint32(e.V)))
			if ru == rv {
				continue
			}
			if b, ok := best[ru]; !ok || graph.LessWeight(e, b) {
				best[ru] = e
			}
			if b, ok := best[rv]; !ok || graph.LessWeight(e, b) {
				best[rv] = e
			}
		}
		c.ChargeCompute(len(mine))
		local := make([]cand, 0, len(best))
		for r, e := range best {
			local = append(local, cand{Root: r, E: e, Rank: int32(c.Rank())})
		}
		radix.Sort(local, func(c cand) uint64 { return c.Root }, func(a, b cand) bool { return a.Root < b.Root })
		all := comm.AllgatherConcat(c, local)
		if len(all) == 0 {
			break
		}
		// Replicated global min per root; rank breaks exact ties so every
		// PE agrees on the single winning copy.
		win := map[graph.VID]cand{}
		for _, cd := range all {
			if b, ok := win[cd.Root]; !ok || graph.LessWeight(cd.E, b.E) ||
				(graph.SameWeightClass(cd.E, b.E) && cd.Rank < b.Rank) {
				win[cd.Root] = cd
			}
		}
		roots := make([]graph.VID, 0, len(win))
		for r := range win {
			roots = append(roots, r)
		}
		slices.Sort(roots)
		merged := false
		for _, r := range roots {
			cd := win[r]
			other := graph.VID(find(uint32(cd.E.U)))
			if other == r {
				other = graph.VID(find(uint32(cd.E.V)))
			}
			if other == r {
				continue // 2-cycle partner: already merged, edge already emitted
			}
			parent[r] = uint32(other)
			merged = true
			if cd.Rank == int32(c.Rank()) {
				mst = append(mst, cd.E)
			}
		}
		// Shortcut (pointer jumping), replicated.
		for i := range parent {
			parent[i] = find(uint32(i))
		}
		c.ChargeCompute(int(maxLabel + 1))
		rounds++
		if !merged {
			break
		}
		if rounds > 96 {
			panic("baselines: sparseMatrix failed to converge")
		}
	}
	return finishResult(c, mst, rounds)
}

func finishResult(c *comm.Comm, mst []graph.Edge, rounds int) Result {
	type agg struct {
		W uint64
		N int
	}
	local := agg{}
	for _, e := range mst {
		local.W += uint64(e.W)
		local.N++
	}
	g := comm.Allreduce(c, local, func(a, b agg) agg { return agg{a.W + b.W, a.N + b.N} })
	radix.Sort(mst, graph.KeyLex, graph.LessLex)
	return Result{MSTEdges: mst, TotalWeight: g.W, NumEdges: g.N, Rounds: rounds}
}

func flatten(recv [][]graph.Edge) []graph.Edge {
	var out []graph.Edge
	for i := range recv {
		out = append(out, recv[i]...)
	}
	return out
}
