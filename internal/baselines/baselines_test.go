package baselines

import (
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
	"kamsta/internal/seqmst"
)

type algFunc func(*comm.Comm, []graph.Edge, *graph.Layout, Options) Result

func runBaseline(t *testing.T, p int, spec gen.Spec, opt Options, alg algFunc) (Result, [][]graph.Edge, []graph.Edge) {
	t.Helper()
	w := comm.NewWorld(p)
	results := make([]Result, p)
	shares := make([][]graph.Edge, p)
	inputs := make([][]graph.Edge, p)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		inputs[c.Rank()] = edges
		r := alg(c, edges, layout, opt)
		results[c.Rank()] = r
		shares[c.Rank()] = r.MSTEdges
	})
	var all []graph.Edge
	for _, in := range inputs {
		all = append(all, in...)
	}
	for r := 1; r < p; r++ {
		if results[r].TotalWeight != results[0].TotalWeight {
			t.Fatalf("ranks disagree: %d vs %d", results[r].TotalWeight, results[0].TotalWeight)
		}
	}
	return results[0], shares, all
}

func oracle(all []graph.Edge) seqmst.Result {
	und := seqmst.UndirectedFromDirected(all)
	maxV := graph.VID(0)
	for _, e := range und {
		if e.V > maxV {
			maxV = e.V
		}
		if e.U > maxV {
			maxV = e.U
		}
	}
	return seqmst.Kruskal(int(maxV), und)
}

func check(t *testing.T, label string, res Result, shares [][]graph.Edge, all []graph.Edge) {
	t.Helper()
	want := oracle(all)
	if res.TotalWeight != want.TotalWeight {
		t.Fatalf("%s: weight %d want %d", label, res.TotalWeight, want.TotalWeight)
	}
	if res.NumEdges != len(want.Edges) {
		t.Fatalf("%s: %d edges want %d", label, res.NumEdges, len(want.Edges))
	}
	wantTB := map[uint64]bool{}
	for _, e := range want.Edges {
		wantTB[e.TB] = true
	}
	seen := map[uint64]bool{}
	for rank, sh := range shares {
		for _, e := range sh {
			if !wantTB[e.TB] {
				t.Fatalf("%s: rank %d emitted non-MST edge %v", label, rank, e)
			}
			if seen[e.TB] {
				t.Fatalf("%s: duplicate MST edge %v", label, e)
			}
			seen[e.TB] = true
		}
	}
	if len(seen) != len(want.Edges) {
		t.Fatalf("%s: %d distinct edges collected want %d", label, len(seen), len(want.Edges))
	}
}

func specs() []gen.Spec {
	return []gen.Spec{
		{Family: gen.Grid2D, N: 120, Seed: 1},
		{Family: gen.GNM, N: 130, M: 500, Seed: 3},
		{Family: gen.RMAT, N: 128, M: 500, Seed: 4},
		{Family: gen.RHG, N: 150, M: 600, Seed: 5},
	}
}

func TestSparseMatrixMatchesKruskal(t *testing.T) {
	for _, spec := range specs() {
		for _, p := range []int{1, 2, 4, 7, 9} {
			res, shares, all := runBaseline(t, p, spec, Options{}, SparseMatrix)
			check(t, spec.Label(), res, shares, all)
		}
	}
}

func TestMNDMSTMatchesKruskal(t *testing.T) {
	for _, spec := range specs() {
		for _, p := range []int{1, 2, 4, 7, 8} {
			res, shares, all := runBaseline(t, p, spec, Options{}, MNDMST)
			check(t, spec.Label(), res, shares, all)
		}
	}
}

func TestMNDMSTGroupSizes(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 200, M: 800, Seed: 9}
	for _, g := range []int{2, 3, 8} {
		res, shares, all := runBaseline(t, 8, spec, Options{GroupSize: g}, MNDMST)
		check(t, spec.Label(), res, shares, all)
	}
}

func TestMNDMSTThreads(t *testing.T) {
	spec := gen.Spec{Family: gen.RGG2D, N: 200, M: 900, Seed: 11}
	a, _, _ := runBaseline(t, 4, spec, Options{Threads: 1}, MNDMST)
	b, _, _ := runBaseline(t, 4, spec, Options{Threads: 8}, MNDMST)
	if a.TotalWeight != b.TotalWeight {
		t.Fatalf("thread counts disagree: %d vs %d", a.TotalWeight, b.TotalWeight)
	}
}

func TestSparseMatrixDisconnected(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 200, Seed: 13} // m < n: forest
	res, shares, all := runBaseline(t, 4, spec, Options{}, SparseMatrix)
	check(t, spec.Label(), res, shares, all)
}

func TestMNDMSTDisconnected(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 300, M: 200, Seed: 13}
	res, shares, all := runBaseline(t, 4, spec, Options{}, MNDMST)
	check(t, spec.Label(), res, shares, all)
}

func TestBaselinesEmptyGraph(t *testing.T) {
	w := comm.NewWorld(3)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Finish(c, nil, dsort.Options{})
		if r := SparseMatrix(c, edges, layout, Options{}); r.NumEdges != 0 {
			t.Errorf("sparseMatrix on empty graph: %+v", r)
		}
		if r := MNDMST(c, edges, layout, Options{}); r.NumEdges != 0 {
			t.Errorf("MND-MST on empty graph: %+v", r)
		}
	})
}

func TestSparseMatrixRoundsLogarithmic(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 512, M: 2000, Seed: 17}
	res, _, _ := runBaseline(t, 4, spec, Options{}, SparseMatrix)
	if res.Rounds > 12 {
		t.Fatalf("AS hooking took %d rounds on n=512; expected logarithmic", res.Rounds)
	}
}
