package graphio

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"os"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/faultinject"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
)

// Options configures a distributed Load.
type Options struct {
	// Format of the file; FormatAuto detects it from the extension.
	Format Format
	// Seed drives the deterministic weights assigned to unweighted inputs
	// (same distribution as the generators: uniform in [1, 255)).
	Seed uint64
	// Sort configures the global sort that establishes the input
	// invariants, exactly like the sort option of gen.Build.
	Sort dsort.Options
}

// readTrace, when set (by tests), observes every bulk byte-range read as
// (rank, absolute file offset, length). Header, index and the one-byte
// line-boundary peeks are not traced; the trace shows which share of the
// payload each PE ingested.
var readTrace func(rank int, off, n int64)

// tracer returns the per-rank trace callback, or nil.
func tracer(rank int) func(off, n int64) {
	if readTrace == nil {
		return nil
	}
	return func(off, n int64) { readTrace(rank, off, n) }
}

// Load ingests a graph file into the world and returns this PE's share of
// the §II-B distributed input: globally sorted edges (both directions of
// every undirected edge), duplicates and self-loops removed, consecutive
// IDs, balanced across PEs, plus the replicated layout — exactly what
// gen.Build returns for a generated instance.
//
// Ingestion is parallel: every PE opens the file itself, seeks to its own
// disjoint slice (record ranges for the binary format, line-aligned byte
// ranges for the text formats) and reads only that slice; no PE scans the
// file on behalf of the others. Errors are agreed on collectively, so all
// PEs return the same error and no PE is left behind in a collective.
func Load(c *comm.Comm, path string, opt Options) ([]graph.Edge, *graph.Layout, error) {
	var raw []graph.Edge
	var err error
	switch f := opt.Format.resolve(path); f {
	case FormatKamsta:
		raw, err = loadKamsta(c, path)
	case FormatEdgeList:
		raw, err = loadText(c, path, false, opt.Seed)
	case FormatGr:
		raw, err = loadText(c, path, true, opt.Seed)
	case FormatMetis:
		raw, err = loadMetis(c, path, opt.Seed)
	default:
		err = shareErr(c, fmt.Errorf("unsupported format %v", f))
	}
	if err != nil {
		return nil, nil, err
	}
	edges, layout := gen.Finish(c, raw, opt.Sort)
	return edges, layout, nil
}

// shareErr agrees on one error across the world: the lowest-ranked PE's
// error wins and every PE returns the same value (or nil). Every PE must
// call it at the same point, with or without a local error.
func shareErr(c *comm.Comm, err error) error {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	for r, m := range comm.Allgather(c, msg) {
		if m != "" {
			return fmt.Errorf("graphio: %s (PE %d)", m, r)
		}
	}
	return nil
}

// byteRange splits 0..total-1 contiguously among the p PEs.
func byteRange(rank, p int, total uint64) (uint64, uint64) {
	return uint64(rank) * total / uint64(p), uint64(rank+1) * total / uint64(p)
}

// readAtFull reads exactly len(buf) bytes at off (ReaderAt may legally
// return io.EOF alongside a complete read at the end of the file).
func readAtFull(r io.ReaderAt, buf []byte, off int64) error {
	n, err := r.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// loadKamsta reads this PE's record range of a binary kamsta file.
func loadKamsta(c *comm.Comm, path string) ([]graph.Edge, error) {
	var out []graph.Edge
	err := func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return err
		}
		h, err := readKamstaHeader(f, st.Size())
		if err != nil {
			return err
		}
		lo, hi := byteRange(c.Rank(), c.P(), h.Records)
		// Chaos-testing hook: an injected read fault here behaves exactly
		// like a failing disk — the error is agreed on collectively below.
		if err := c.FaultPoint(faultinject.SiteGraphRead); err != nil {
			return err
		}
		out, err = readKamstaRange(f, h, lo, hi, tracer(c.Rank()))
		return err
	}()
	if err := shareErr(c, err); err != nil {
		return nil, err
	}
	c.ChargeCompute(len(out))
	return out, nil
}

// loadText reads this PE's line-aligned byte range of an edge-list or
// DIMACS .gr file, then normalizes labels (0-based files shift to 1-based)
// with one global reduction.
func loadText(c *comm.Comm, path string, gr bool, seed uint64) ([]graph.Edge, error) {
	var raws []rawEdge
	minLabel := uint64(math.MaxUint64)
	err := func() error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return err
		}
		lo, hi := byteRange(c.Rank(), c.P(), uint64(st.Size()))
		if err := c.FaultPoint(faultinject.SiteGraphRead); err != nil {
			return err
		}
		data, dataOff, err := readLineRange(f, st.Size(), int64(lo), int64(hi), tracer(c.Rank()))
		if err != nil {
			return err
		}
		if gr {
			raws, err = parseGrData(data, dataOff)
		} else {
			raws, err = parseEdgeListData(data, dataOff)
		}
		if err != nil {
			return err
		}
		for _, r := range raws {
			minLabel = min(minLabel, r.U, r.V)
		}
		return nil
	}()
	if err := shareErr(c, err); err != nil {
		return nil, err
	}
	gmin := comm.Allreduce(c, minLabel, func(a, b uint64) uint64 { return min(a, b) })
	shift := uint64(0)
	if gmin == 0 {
		shift = 1 // 0-based input: shift every label up
	}
	out, err := buildEdges(raws, shift, shift, seed)
	if err := shareErr(c, err); err != nil {
		return nil, err
	}
	c.ChargeCompute(len(out))
	return out, nil
}

// loadMetis reads this PE's line-aligned byte range of the adjacency
// region. Vertex ids are line numbers, so each PE counts the vertex lines
// of its own range once and an exclusive scan over those counts gives
// every PE its first vertex id — two passes over the PE's private range,
// never a shared scan.
func loadMetis(c *comm.Comm, path string, seed uint64) ([]graph.Edge, error) {
	// Stage 1: every PE opens the file; the PE owning byte 0 (rank 0)
	// locates and parses the header line, which is then shared.
	type stage1 struct {
		Err    string
		Hdr    metisHeader
		HdrEnd int64
		Size   int64
	}
	var s1 stage1
	var f *os.File
	err := func() error {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			return err
		}
		s1.Size = st.Size()
		if c.Rank() != 0 {
			return nil
		}
		hdrLine, end, err := metisHeaderLine(f, st.Size())
		if err != nil {
			return err
		}
		s1.Hdr, err = parseMetisHeader(hdrLine)
		if err != nil {
			return err
		}
		s1.HdrEnd = end
		return nil
	}()
	if f != nil {
		defer f.Close()
	}
	if err != nil {
		s1.Err = err.Error()
	}
	all1 := comm.Allgather(c, s1)
	for r, s := range all1 {
		if s.Err != "" {
			return nil, fmt.Errorf("graphio: %s (PE %d)", s.Err, r)
		}
	}
	hdr, hdrEnd, size := all1[0].Hdr, all1[0].HdrEnd, all1[0].Size

	// Stage 2: read this PE's line range of [hdrEnd, size) and count its
	// vertex lines; the counts are shared so every PE knows its first
	// vertex id and the world can check the total against the header.
	type stage2 struct {
		Err               string
		Lines, TailBlanks int
	}
	var s2 stage2
	var data []byte
	region := uint64(size - hdrEnd)
	lo, hi := byteRange(c.Rank(), c.P(), region)
	if ierr := c.FaultPoint(faultinject.SiteGraphRead); ierr != nil {
		err = ierr
	} else {
		data, _, err = readLineRange(f, size, hdrEnd+int64(lo), hdrEnd+int64(hi), tracer(c.Rank()))
	}
	if err != nil {
		s2.Err = err.Error()
	} else {
		s2.Lines, s2.TailBlanks = countMetisLines(data)
	}
	all2 := comm.Allgather(c, s2)
	firstVertex, total := uint64(1), uint64(0)
	for r, s := range all2 {
		if s.Err != "" {
			return nil, fmt.Errorf("graphio: %s (PE %d)", s.Err, r)
		}
		if r < c.Rank() {
			firstVertex += uint64(s.Lines)
		}
		total += uint64(s.Lines)
	}
	// Tolerate trailing blank lines: surplus vertex lines are fine exactly
	// when they all lie in the file's final run of blank lines (parsing
	// them yields phantom zero-degree vertices that touch no edge).
	fileTailBlanks := uint64(0)
	for r := len(all2) - 1; r >= 0; r-- {
		fileTailBlanks += uint64(all2[r].TailBlanks)
		if all2[r].TailBlanks != all2[r].Lines {
			break
		}
	}
	if total < hdr.N || total-hdr.N > fileTailBlanks {
		return nil, fmt.Errorf("graphio: metis file has %d vertex lines, header promises %d", total, hdr.N)
	}

	// Stage 3: parse adjacency lines and normalize neighbor labels
	// (0-based neighbor lists shift to 1-based; vertex ids from line
	// numbers are already 1-based).
	raws, err := parseMetisData(data, hdr, firstVertex)
	minNb := uint64(math.MaxUint64)
	for _, r := range raws {
		minNb = min(minNb, r.V)
	}
	if err := shareErr(c, err); err != nil {
		return nil, err
	}
	gmin := comm.Allreduce(c, minNb, func(a, b uint64) uint64 { return min(a, b) })
	shift := uint64(0)
	if gmin == 0 {
		shift = 1
	}
	out, err := buildEdges(raws, 0, shift, seed)
	if err := shareErr(c, err); err != nil {
		return nil, err
	}
	c.ChargeCompute(len(out))
	return out, nil
}

// metisHeaderLine scans from the start of the file for the first
// non-comment line and returns it with the offset of the byte after its
// terminator. Only the PE owning the file head runs this.
func metisHeaderLine(r io.ReaderAt, size int64) (string, int64, error) {
	const block = 64 << 10
	var buf []byte
	pos := int64(0)
	for {
		for {
			if i := bytes.IndexByte(buf, '\n'); i >= 0 {
				line := string(buf[:i])
				buf = buf[i+1:]
				pos += int64(i) + 1
				if s := bytes.TrimSpace([]byte(line)); len(s) == 0 || s[0] == '%' {
					continue
				}
				return line, pos, nil
			}
			break
		}
		if pos+int64(len(buf)) >= size {
			// Last line without newline terminator.
			if s := bytes.TrimSpace(buf); len(s) > 0 && s[0] != '%' {
				return string(buf), size, nil
			}
			return "", 0, fmt.Errorf("metis file has no header line")
		}
		n := int64(block)
		if rem := size - pos - int64(len(buf)); n > rem {
			n = rem
		}
		ext := make([]byte, n)
		if err := readAtFull(r, ext, pos+int64(len(buf))); err != nil {
			return "", 0, err
		}
		buf = append(buf, ext...)
	}
}

// readLineRange returns the bytes of all lines starting in file byte range
// [lo, hi), plus the absolute file offset of the first returned byte: the
// partial line a range opens in belongs to the predecessor, and the line
// crossing hi is read to its end. Each PE therefore sees every line
// exactly once, reading only its own range plus at most one overlapping
// line.
func readLineRange(r io.ReaderAt, size, lo, hi int64, trace func(off, n int64)) ([]byte, int64, error) {
	if lo >= size || lo >= hi {
		return nil, 0, nil
	}
	if hi > size {
		hi = size
	}
	// One extra leading byte decides whether a line starts exactly at lo.
	start := lo
	if lo > 0 {
		start = lo - 1
	}
	buf := make([]byte, hi-start)
	if err := readAtFull(r, buf, start); err != nil {
		return nil, 0, err
	}
	if trace != nil {
		trace(start, int64(len(buf)))
	}
	if lo > 0 {
		if buf[0] == '\n' {
			buf = buf[1:]
		} else if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			buf = buf[i+1:]
		} else {
			return nil, 0, nil // the whole range is the middle of one line owned by a predecessor
		}
	}
	if len(buf) == 0 {
		return nil, 0, nil
	}
	dataOff := hi - int64(len(buf)) // buf currently ends exactly at hi
	// Finish the line that crosses hi, reading small blocks so a PE never
	// pulls in more than its own lines plus one.
	if hi < size && buf[len(buf)-1] != '\n' {
		pos := hi
		ext := make([]byte, 4096)
		for pos < size {
			n := int64(len(ext))
			if pos+n > size {
				n = size - pos
			}
			if err := readAtFull(r, ext[:n], pos); err != nil {
				return nil, 0, err
			}
			if trace != nil {
				trace(pos, n)
			}
			if i := bytes.IndexByte(ext[:n], '\n'); i >= 0 {
				buf = append(buf, ext[:i+1]...)
				break
			}
			buf = append(buf, ext[:n]...)
			pos += n
		}
	}
	return buf, dataOff, nil
}
