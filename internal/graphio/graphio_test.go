package graphio

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"kamsta/internal/comm"
	"kamsta/internal/dsort"
	"kamsta/internal/gen"
	"kamsta/internal/graph"
)

// share is one PE's slice of the distributed input.
type share struct {
	edges  []graph.Edge
	layout *graph.Layout
}

// buildRef materializes spec at p PEs straight from the generator.
func buildRef(spec gen.Spec, p int) []share {
	out := make([]share, p)
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		edges, layout := gen.Build(c, spec, dsort.Options{})
		out[c.Rank()] = share{edges, layout}
	})
	return out
}

// loadShares loads path at p PEs; every PE's error is required identical.
func loadShares(t *testing.T, path string, p int, opt Options) ([]share, error) {
	t.Helper()
	out := make([]share, p)
	errs := make([]error, p)
	w := comm.NewWorld(p)
	w.Run(func(c *comm.Comm) {
		edges, layout, err := Load(c, path, opt)
		out[c.Rank()] = share{edges, layout}
		errs[c.Rank()] = err
	})
	for r := 1; r < p; r++ {
		if fmt.Sprint(errs[r]) != fmt.Sprint(errs[0]) {
			t.Fatalf("PEs disagree on the load error: rank 0 %v, rank %d %v", errs[0], r, errs[r])
		}
	}
	return out, errs[0]
}

// concat flattens shares in rank order.
func concat(shares []share) []graph.Edge {
	var all []graph.Edge
	for _, s := range shares {
		all = append(all, s.edges...)
	}
	return all
}

var roundTripSpecs = []gen.Spec{
	{Family: gen.Grid2D, N: 180, Seed: 5},
	{Family: gen.RGG2D, N: 180, M: 700, Seed: 5},
	{Family: gen.RGG3D, N: 180, M: 700, Seed: 5},
	{Family: gen.RHG, N: 180, M: 700, Seed: 5},
	{Family: gen.GNM, N: 180, M: 700, Seed: 5},
	{Family: gen.RMAT, N: 180, M: 700, Seed: 5},
	{Family: gen.RoadLike, N: 180, Seed: 5},
}

// TestRoundTripBitIdentical is the subsystem's core property: for every
// family, every format and several PE counts, write(gen.Build) → Load
// reproduces the exact per-PE edge slices and the exact replicated layout
// that gen.Build itself hands the algorithms.
func TestRoundTripBitIdentical(t *testing.T) {
	formats := []Format{FormatKamsta, FormatEdgeList, FormatGr, FormatMetis}
	dir := t.TempDir()
	for _, spec := range roundTripSpecs {
		spec := spec
		t.Run(spec.Family.String(), func(t *testing.T) {
			written := concat(buildRef(spec, 4)) // the instance, collected once
			for _, f := range formats {
				path := filepath.Join(dir, fmt.Sprintf("%s.%s", spec.Family, f))
				if err := WriteFile(path, f, written); err != nil {
					t.Fatalf("%v: write: %v", f, err)
				}
				for _, p := range []int{1, 3, 4} {
					ref := buildRef(spec, p)
					got, err := loadShares(t, path, p, Options{Format: f})
					if err != nil {
						t.Fatalf("%v p=%d: load: %v", f, p, err)
					}
					for r := 0; r < p; r++ {
						if !reflect.DeepEqual(got[r].edges, ref[r].edges) {
							t.Fatalf("%v p=%d rank %d: loaded edges differ from gen.Build (%d vs %d edges)",
								f, p, r, len(got[r].edges), len(ref[r].edges))
						}
						if !reflect.DeepEqual(got[r].layout, ref[r].layout) {
							t.Fatalf("%v p=%d rank %d: loaded layout differs from gen.Build", f, p, r)
						}
					}
				}
			}
		})
	}
}

// TestLoadIsPEIndependent pins that the global edge sequence a file yields
// does not depend on the loading world's width.
func TestLoadIsPEIndependent(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 150, M: 600, Seed: 9}
	path := filepath.Join(t.TempDir(), "g.kg")
	if err := WriteFile(path, FormatKamsta, concat(buildRef(spec, 4))); err != nil {
		t.Fatal(err)
	}
	one, err := loadShares(t, path, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	five, err := loadShares(t, path, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(concat(one), concat(five)) {
		t.Fatal("global edge sequence depends on the loading PE count")
	}
}

// TestParallelByteRangeReads asserts the ingestion protocol: every PE
// reads its own slice, the slices cover the payload, and no PE scans the
// whole file on behalf of the others.
func TestParallelByteRangeReads(t *testing.T) {
	spec := gen.Spec{Family: gen.GNM, N: 400, M: 3000, Seed: 3}
	written := concat(buildRef(spec, 4))
	dir := t.TempDir()
	const p = 4
	for _, f := range []Format{FormatKamsta, FormatEdgeList, FormatGr, FormatMetis} {
		path := filepath.Join(dir, "g."+f.String())
		if err := WriteFile(path, f, written); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		type span struct{ off, n int64 }
		var mu sync.Mutex
		reads := make(map[int][]span)
		readTrace = func(rank int, off, n int64) {
			mu.Lock()
			reads[rank] = append(reads[rank], span{off, n})
			mu.Unlock()
		}
		_, err = loadShares(t, path, p, Options{Format: f})
		readTrace = nil
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		share := st.Size() / p
		var total int64
		for r := 0; r < p; r++ {
			if len(reads[r]) == 0 {
				t.Fatalf("%v: rank %d read nothing — not a parallel ingestion", f, r)
			}
			var mine int64
			for _, s := range reads[r] {
				mine += s.n
			}
			total += mine
			// Generous slack: one boundary line / one chunk of overlap.
			if mine > share+share/2+4096 {
				t.Fatalf("%v: rank %d read %d of %d bytes — more than its slice", f, r, mine, st.Size())
			}
		}
		if total < st.Size()/2 {
			t.Fatalf("%v: ranks read %d bytes in total, file has %d — payload not covered", f, total, st.Size())
		}
	}
}

// TestZeroBasedInputs pins the 1/0-based tolerance: the same graph written
// 0-based and 1-based loads to the identical instance.
func TestZeroBasedInputs(t *testing.T) {
	dir := t.TempDir()
	oneBased := filepath.Join(dir, "one.el")
	zeroBased := filepath.Join(dir, "zero.el")
	if err := os.WriteFile(oneBased, []byte("# comment\n1 2 10\n2 3 20\n1 3 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(zeroBased, []byte("% comment\n0 1 10\n1 2 20\n0 2 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadShares(t, oneBased, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadShares(t, zeroBased, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(concat(a), concat(b)) {
		t.Fatalf("0-based load differs from 1-based load:\n%v\n%v", concat(a), concat(b))
	}
	if n := len(concat(a)); n != 6 {
		t.Fatalf("want 6 directed edges, got %d", n)
	}
}

// TestUnweightedInputsGetDeterministicWeights pins the generator-compatible
// weight assignment for weightless files.
func TestUnweightedInputsGetDeterministicWeights(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")
	if err := os.WriteFile(path, []byte("1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadShares(t, path, 2, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadShares(t, path, 3, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := concat(a), concat(b)
	if !reflect.DeepEqual(ea, eb) {
		t.Fatal("unweighted load not deterministic across PE counts")
	}
	for _, e := range ea {
		if e.W != graph.RandomWeight(11, e.U, e.V) {
			t.Fatalf("edge %v: weight %d is not the deterministic seed-11 weight", e, e.W)
		}
		if e.W < 1 || e.W >= 255 {
			t.Fatalf("edge %v: weight outside the experiment domain [1,255)", e)
		}
	}
}

// TestLoadErrors pins that malformed inputs error identically on every PE
// (never panic, never deadlock).
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, path, want string
	}{
		{"missing file", filepath.Join(dir, "nope.kg"), "no such file"},
		{"bad magic", write("bad.kg", "XXXXjunkjunkjunkjunkjunkjunkjunkjunk"), "bad magic"},
		{"truncated binary", write("trunc.kg", "KMSG\x01\x00\x00\x00"), "kamsta header"},
		{"bad edge list", write("bad.el", "1 2 3\nfrogs toads 3\n"), "bad vertex label"},
		{"edge list arity", write("arity.el", "1 2 3 4 5\n"), "want \"u v [w]\""},
		{"gr junk line", write("bad.gr", "p sp 2 1\nq 1 2 5\n"), "unrecognized"},
		{"metis no header", write("empty.metis", "% only comments\n"), "header"},
		{"metis count mismatch", write("short.metis", "3 1\n2\n1\n"), "header promises 3"},
		{"huge label", write("huge.el", "1 5000000000 4\n"), "exceeds 2^32"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadShares(t, tc.path, 3, Options{})
			if err == nil {
				t.Fatalf("load of %s succeeded, want error containing %q", tc.path, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMetisTrailingBlankLines pins the trailing-whitespace tolerance: a
// valid file ending in extra blank lines still loads, while a genuinely
// short or long file still errors.
func TestMetisTrailingBlankLines(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.metis")
	trailing := filepath.Join(dir, "trailing.metis")
	if err := os.WriteFile(clean, []byte("3 2 001\n2 7\n1 7 3 9\n2 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trailing, []byte("3 2 001\n2 7\n1 7 3 9\n2 9\n\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadShares(t, clean, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadShares(t, trailing, 3, Options{})
	if err != nil {
		t.Fatalf("trailing blank lines should be tolerated: %v", err)
	}
	if !reflect.DeepEqual(concat(a), concat(b)) {
		t.Fatal("trailing blank lines change the loaded graph")
	}
	midBlank := filepath.Join(dir, "mid.metis")
	// A blank line mid-file is a zero-degree vertex and must still count.
	if err := os.WriteFile(midBlank, []byte("3 1 001\n2 7\n1 7\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadShares(t, midBlank, 2, Options{}); err != nil {
		t.Fatalf("zero-degree final vertex rejected: %v", err)
	}
}

// TestEmptyFileLoads pins the degenerate case.
func TestEmptyFileLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.el")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	shares, err := loadShares(t, path, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(concat(shares)); n != 0 {
		t.Fatalf("empty file yields %d edges", n)
	}
}

// TestFormatNames pins the name/extension mapping.
func TestFormatNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Format
	}{
		{"kamsta", FormatKamsta}, {"kg", FormatKamsta}, {"EDGELIST", FormatEdgeList},
		{"gr", FormatGr}, {"metis", FormatMetis}, {"", FormatAuto}, {"auto", FormatAuto},
	} {
		got, err := ParseFormat(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFormat(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	if _, err := ParseFormat("tarball"); err == nil {
		t.Fatal("ParseFormat accepted junk")
	}
	for _, tc := range []struct {
		path string
		want Format
	}{
		{"a/b.kg", FormatKamsta}, {"x.GR", FormatGr}, {"y.metis", FormatMetis},
		{"z.graph", FormatMetis}, {"edges.txt", FormatEdgeList}, {"noext", FormatEdgeList},
	} {
		if got := DetectFormat(tc.path); got != tc.want {
			t.Fatalf("DetectFormat(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestGrBothDirectionsTolerated pins that .gr files listing both arcs of an
// edge (as the real road instances do) load to the same graph as listing
// each edge once.
func TestGrBothDirectionsTolerated(t *testing.T) {
	dir := t.TempDir()
	once := filepath.Join(dir, "once.gr")
	both := filepath.Join(dir, "both.gr")
	if err := os.WriteFile(once, []byte("c road\np sp 3 2\na 1 2 7\na 2 3 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(both, []byte("c road\np sp 3 4\na 1 2 7\na 2 1 7\na 2 3 9\na 3 2 9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadShares(t, once, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadShares(t, both, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(concat(a), concat(b)) {
		t.Fatalf("duplicate arcs change the loaded graph:\n%v\n%v", concat(a), concat(b))
	}
}
