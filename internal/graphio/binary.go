package graphio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kamsta/internal/graph"
)

// The kamsta binary graph format ("KMSG"): a header, a per-chunk index, and
// a flat array of fixed-width little-endian edge records. Records are the
// canonical undirected edges (U < V) in lexicographic order; labels are
// 1-based and below 2^32, so a record is 12 bytes (u, v uint32, w uint32).
//
// The per-chunk index maps record ranges to byte offsets: chunk k covers
// records [k·chunkSize, min((k+1)·chunkSize, records)) and the index entry
// stores that first record number and its absolute byte offset. With
// fixed-width records the offsets are also closed-form; the index is the
// format's seek contract (it survives a future variable-width record
// encoding) and doubles as a consistency check against truncation. A
// loading world assigns every PE a contiguous record range and each PE
// reads only the index entries and record bytes of its own range.
const (
	kamstaMagic      = "KMSG"
	kamstaVersion    = 1
	kamstaHeaderSize = 32
	kamstaIndexEntry = 16
	kamstaRecordSize = 12
	// kamstaChunkRecords is the default chunk granularity of the writer.
	kamstaChunkRecords = 1 << 14
)

// kamstaHeader is the decoded fixed-size file header.
type kamstaHeader struct {
	Vertices  uint64 // maximum endpoint label (= vertex count for the consecutive-ID inputs the writer takes; informational)
	Records   uint64 // canonical undirected edge records
	ChunkSize uint32 // records per chunk (last chunk may be short)
	NumChunks uint32
}

// recordsStart returns the absolute byte offset of record 0.
func (h kamstaHeader) recordsStart() int64 {
	return kamstaHeaderSize + int64(h.NumChunks)*kamstaIndexEntry
}

// writeKamsta writes the canonical undirected edges (U < V entries of the
// directed sequence) in their given order. edges must be lexicographically
// sorted, as produced by gen.Build / Load.
func writeKamsta(w io.Writer, edges []graph.Edge) error {
	records, maxLabel := canonicalCount(edges)
	h := kamstaHeader{
		Vertices:  maxLabel,
		Records:   records,
		ChunkSize: kamstaChunkRecords,
		NumChunks: uint32((records + kamstaChunkRecords - 1) / kamstaChunkRecords),
	}
	buf := make([]byte, kamstaHeaderSize)
	copy(buf, kamstaMagic)
	binary.LittleEndian.PutUint32(buf[4:], kamstaVersion)
	binary.LittleEndian.PutUint64(buf[8:], h.Vertices)
	binary.LittleEndian.PutUint64(buf[16:], h.Records)
	binary.LittleEndian.PutUint32(buf[24:], h.ChunkSize)
	binary.LittleEndian.PutUint32(buf[28:], h.NumChunks)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	// Index: first record number and absolute byte offset per chunk.
	ent := make([]byte, kamstaIndexEntry)
	for k := uint32(0); k < h.NumChunks; k++ {
		first := uint64(k) * uint64(h.ChunkSize)
		binary.LittleEndian.PutUint64(ent, first)
		binary.LittleEndian.PutUint64(ent[8:], uint64(h.recordsStart())+first*kamstaRecordSize)
		if _, err := w.Write(ent); err != nil {
			return err
		}
	}
	// Records, buffered in chunk-sized blocks.
	block := make([]byte, 0, kamstaChunkRecords*kamstaRecordSize)
	for _, e := range edges {
		if e.U >= e.V {
			continue
		}
		if e.U >= 1<<32 || e.V >= 1<<32 {
			return fmt.Errorf("graphio: vertex label %d exceeds 2^32; not representable", max(e.U, e.V))
		}
		var rec [kamstaRecordSize]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		binary.LittleEndian.PutUint32(rec[8:], e.W)
		block = append(block, rec[:]...)
		if len(block) == cap(block) {
			if _, err := w.Write(block); err != nil {
				return err
			}
			block = block[:0]
		}
	}
	if len(block) > 0 {
		if _, err := w.Write(block); err != nil {
			return err
		}
	}
	return nil
}

// readKamstaHeader decodes and validates the header against the file size.
func readKamstaHeader(r io.ReaderAt, fileSize int64) (kamstaHeader, error) {
	var h kamstaHeader
	buf := make([]byte, kamstaHeaderSize)
	if err := readAtFull(r, buf, 0); err != nil {
		return h, fmt.Errorf("graphio: reading kamsta header: %w", err)
	}
	if string(buf[:4]) != kamstaMagic {
		return h, fmt.Errorf("graphio: bad magic %q (not a kamsta graph file)", buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != kamstaVersion {
		return h, fmt.Errorf("graphio: unsupported kamsta format version %d (want %d)", v, kamstaVersion)
	}
	h.Vertices = binary.LittleEndian.Uint64(buf[8:])
	h.Records = binary.LittleEndian.Uint64(buf[16:])
	h.ChunkSize = binary.LittleEndian.Uint32(buf[24:])
	h.NumChunks = binary.LittleEndian.Uint32(buf[28:])
	if h.Records > 0 && h.ChunkSize == 0 {
		return h, fmt.Errorf("graphio: corrupt kamsta header: zero chunk size with %d records", h.Records)
	}
	if h.ChunkSize > 0 {
		if want := uint32((h.Records + uint64(h.ChunkSize) - 1) / uint64(h.ChunkSize)); want != h.NumChunks {
			return h, fmt.Errorf("graphio: corrupt kamsta header: %d chunks for %d records of chunk size %d (want %d)",
				h.NumChunks, h.Records, h.ChunkSize, want)
		}
	}
	if h.Records > math.MaxInt64/kamstaRecordSize {
		return h, fmt.Errorf("graphio: corrupt kamsta header: implausible record count %d", h.Records)
	}
	if want := h.recordsStart() + int64(h.Records)*kamstaRecordSize; want != fileSize {
		return h, fmt.Errorf("graphio: truncated kamsta file: %d bytes, header implies %d", fileSize, want)
	}
	return h, nil
}

// readKamstaRange reads records [lo, hi) through the chunk index and
// appends both directed copies of every record to out. It reads exactly
// the index entries and record bytes covering the range.
func readKamstaRange(r io.ReaderAt, h kamstaHeader, lo, hi uint64, trace func(off, n int64)) ([]graph.Edge, error) {
	if hi > h.Records || lo > hi {
		return nil, fmt.Errorf("graphio: record range [%d,%d) out of bounds (%d records)", lo, hi, h.Records)
	}
	if lo == hi {
		return nil, nil
	}
	// The index entries of the chunks covering [lo, hi).
	ck0 := uint32(lo / uint64(h.ChunkSize))
	ck1 := uint32((hi - 1) / uint64(h.ChunkSize))
	ibuf := make([]byte, int(ck1-ck0+1)*kamstaIndexEntry)
	if err := readAtFull(r, ibuf, kamstaHeaderSize+int64(ck0)*kamstaIndexEntry); err != nil {
		return nil, fmt.Errorf("graphio: reading kamsta index: %w", err)
	}
	for k := ck0; k <= ck1; k++ {
		ent := ibuf[(k-ck0)*kamstaIndexEntry:]
		first := binary.LittleEndian.Uint64(ent)
		off := binary.LittleEndian.Uint64(ent[8:])
		if first != uint64(k)*uint64(h.ChunkSize) || off != uint64(h.recordsStart())+first*kamstaRecordSize {
			return nil, fmt.Errorf("graphio: corrupt kamsta index entry %d: first=%d off=%d", k, first, off)
		}
	}
	// The record bytes of exactly [lo, hi), located via chunk ck0's entry.
	base := int64(binary.LittleEndian.Uint64(ibuf[8:])) + int64(lo-uint64(ck0)*uint64(h.ChunkSize))*kamstaRecordSize
	buf := make([]byte, (hi-lo)*kamstaRecordSize)
	if err := readAtFull(r, buf, base); err != nil {
		return nil, fmt.Errorf("graphio: reading kamsta records: %w", err)
	}
	if trace != nil {
		trace(base, int64(len(buf)))
	}
	out := make([]graph.Edge, 0, 2*(hi-lo))
	for i := 0; i < len(buf); i += kamstaRecordSize {
		u := uint64(binary.LittleEndian.Uint32(buf[i:]))
		v := uint64(binary.LittleEndian.Uint32(buf[i+4:]))
		w := binary.LittleEndian.Uint32(buf[i+8:])
		if u == 0 || v == 0 {
			return nil, fmt.Errorf("graphio: record %d: vertex label 0 (labels are 1-based)", lo+uint64(i/kamstaRecordSize))
		}
		if u == v {
			continue // self-loops are dropped on ingestion
		}
		out = append(out, graph.NewEdge(u, v, w), graph.NewEdge(v, u, w))
	}
	return out, nil
}
