package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"kamsta/internal/graph"
)

// Write writes the directed edge sequence (as produced by gen.Build, Load
// or a world-collect) to w in the given concrete format. Only the
// canonical (U < V) copies are written; loaders reconstruct both
// directions. FormatAuto is rejected here — resolve it against a path
// first (WriteFile does).
func Write(w io.Writer, f Format, edges []graph.Edge) error {
	switch f {
	case FormatKamsta:
		return writeKamsta(w, edges)
	case FormatEdgeList:
		return writeEdgeList(w, edges)
	case FormatGr:
		return writeGr(w, edges)
	case FormatMetis:
		return writeMetis(w, edges)
	}
	return fmt.Errorf("graphio: cannot write format %v", f)
}

// WriteFile writes edges to path, resolving FormatAuto from the extension.
// Writes are buffered; flush and close errors are reported, and a file
// that failed mid-write is removed rather than left truncated.
func WriteFile(path string, f Format, edges []graph.Edge) (err error) {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
		}
	}()
	bw := bufio.NewWriterSize(out, 1<<20)
	if err = Write(bw, f.resolve(path), edges); err != nil {
		return err
	}
	return bw.Flush()
}
