package graphio

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"kamsta/internal/graph"
)

// rawEdge is one parsed undirected edge before label normalization: labels
// are as found in the file (possibly 0-based), and HasW records whether the
// file carried a weight (unweighted inputs get deterministic weights).
type rawEdge struct {
	U, V uint64
	W    uint32
	HasW bool
}

// forEachLine calls fn for every line of data with the absolute file
// offset of the line's first byte (base is data[0]'s offset), terminators
// stripped. Byte-range loading hands each PE a private slice, so parse
// diagnostics carry file offsets, which stay meaningful at any PE count,
// rather than slice-relative line numbers.
func forEachLine(data []byte, base int64, fn func(off int64, line []byte) error) error {
	for len(data) > 0 {
		ln, adv := data, len(data)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			ln, adv = data[:i], i+1
		}
		if err := fn(base, bytes.TrimSuffix(ln, []byte{'\r'})); err != nil {
			return err
		}
		base += int64(adv)
		data = data[adv:]
	}
	return nil
}

// splitLines returns the lines of data without their terminators. A final
// newline does not open an extra empty line; an empty line between two
// newlines does count (METIS: a vertex with no neighbors).
func splitLines(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	for i, ln := range lines {
		lines[i] = bytes.TrimSuffix(ln, []byte{'\r'})
	}
	return lines
}

// parseUint parses a decimal from a field without a string copy — the
// parsers sit on the bulk-ingestion path, where a strconv string per field
// would double the transient allocation volume of a load.
func parseUint(b []byte, max uint64) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (max-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseLabel parses a vertex label field.
func parseLabel(b []byte) (uint64, error) {
	v, ok := parseUint(b, math.MaxUint64)
	if !ok {
		return 0, fmt.Errorf("bad vertex label %q", b)
	}
	return v, nil
}

// parseWeight parses an edge weight field into the uint32 weight domain.
func parseWeight(b []byte) (uint32, error) {
	v, ok := parseUint(b, math.MaxUint32)
	if !ok {
		return 0, fmt.Errorf("bad edge weight %q", b)
	}
	return uint32(v), nil
}

// parseEdgeListData parses plain edge-list lines: "u v [w]" per undirected
// edge, '#' or '%' comment lines, blank lines ignored. base is the file
// offset of data[0], for diagnostics.
func parseEdgeListData(data []byte, base int64) ([]rawEdge, error) {
	var out []rawEdge
	err := forEachLine(data, base, func(off int64, ln []byte) error {
		s := bytes.TrimSpace(ln)
		if len(s) == 0 || s[0] == '#' || s[0] == '%' {
			return nil
		}
		fields := bytes.Fields(s)
		if len(fields) != 2 && len(fields) != 3 {
			return fmt.Errorf("edge list line at byte %d: want \"u v [w]\", got %q", off, s)
		}
		var e rawEdge
		var err error
		if e.U, err = parseLabel(fields[0]); err != nil {
			return fmt.Errorf("edge list line at byte %d: %v", off, err)
		}
		if e.V, err = parseLabel(fields[1]); err != nil {
			return fmt.Errorf("edge list line at byte %d: %v", off, err)
		}
		if len(fields) == 3 {
			if e.W, err = parseWeight(fields[2]); err != nil {
				return fmt.Errorf("edge list line at byte %d: %v", off, err)
			}
			e.HasW = true
		}
		out = append(out, e)
		return nil
	})
	return out, err
}

// parseGrData parses 9th-DIMACS shortest-path lines: 'c' comments, one
// "p sp n m" problem line, and "a u v w" arcs. Byte-range loading means a
// given PE may see no problem line (it fell in another PE's range), so its
// presence is not required here. base is the file offset of data[0].
func parseGrData(data []byte, base int64) ([]rawEdge, error) {
	var out []rawEdge
	err := forEachLine(data, base, func(off int64, ln []byte) error {
		s := bytes.TrimSpace(ln)
		if len(s) == 0 {
			return nil
		}
		switch s[0] {
		case 'c', '%', '#':
			return nil
		case 'p':
			fields := bytes.Fields(s)
			if len(fields) < 4 {
				return fmt.Errorf("gr line at byte %d: malformed problem line %q", off, s)
			}
			if _, err := parseLabel(fields[2]); err != nil {
				return fmt.Errorf("gr line at byte %d: %v", off, err)
			}
			if _, err := parseLabel(fields[3]); err != nil {
				return fmt.Errorf("gr line at byte %d: %v", off, err)
			}
		case 'a', 'e':
			fields := bytes.Fields(s)
			if len(fields) != 3 && len(fields) != 4 {
				return fmt.Errorf("gr line at byte %d: want \"a u v w\", got %q", off, s)
			}
			var e rawEdge
			var err error
			if e.U, err = parseLabel(fields[1]); err != nil {
				return fmt.Errorf("gr line at byte %d: %v", off, err)
			}
			if e.V, err = parseLabel(fields[2]); err != nil {
				return fmt.Errorf("gr line at byte %d: %v", off, err)
			}
			if len(fields) == 4 {
				if e.W, err = parseWeight(fields[3]); err != nil {
					return fmt.Errorf("gr line at byte %d: %v", off, err)
				}
				e.HasW = true
			}
			out = append(out, e)
		default:
			return fmt.Errorf("gr line at byte %d: unrecognized line %q", off, s)
		}
		return nil
	})
	return out, err
}

// metisHeader is the decoded first non-comment line of a METIS file.
type metisHeader struct {
	N, M uint64
	// NCon vertex weights lead each line when VertexWeights is set.
	NCon           int
	VertexSizes    bool
	VertexWeights  bool
	HasEdgeWeights bool
}

// parseMetisHeader decodes "n m [fmt [ncon]]"; fmt is up to three digits
// "abc" flagging vertex sizes, vertex weights and edge weights.
func parseMetisHeader(line string) (metisHeader, error) {
	var h metisHeader
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 || len(fields) > 4 {
		return h, fmt.Errorf("metis header: want \"n m [fmt [ncon]]\", got %q", line)
	}
	var err error
	if h.N, err = parseLabel([]byte(fields[0])); err != nil {
		return h, fmt.Errorf("metis header: %v", err)
	}
	if h.M, err = parseLabel([]byte(fields[1])); err != nil {
		return h, fmt.Errorf("metis header: %v", err)
	}
	h.NCon = 1
	if len(fields) >= 3 {
		f := fields[2]
		if len(f) > 3 || strings.Trim(f, "01") != "" {
			return h, fmt.Errorf("metis header: bad fmt field %q", f)
		}
		// Right-aligned flags: the last digit is edge weights.
		for i, c := range f {
			on := c == '1'
			switch len(f) - i {
			case 3:
				h.VertexSizes = on
			case 2:
				h.VertexWeights = on
			case 1:
				h.HasEdgeWeights = on
			}
		}
	}
	if len(fields) == 4 {
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return h, fmt.Errorf("metis header: bad ncon field %q", fields[3])
		}
		h.NCon = n
	}
	return h, nil
}

// countMetisLines counts the vertex lines in a range of the adjacency
// region ('%' comment lines do not number a vertex). tailBlanks is the
// number of blank vertex lines after the last non-blank one — the run a
// trailing-whitespace tolerance may discount (a blank line mid-file is a
// legitimate zero-degree vertex, so only file-trailing blanks may go).
func countMetisLines(data []byte) (n, tailBlanks int) {
	for _, ln := range splitLines(data) {
		s := bytes.TrimSpace(ln)
		if len(s) > 0 && s[0] == '%' {
			continue
		}
		n++
		if len(s) == 0 {
			tailBlanks++
		} else {
			tailBlanks = 0
		}
	}
	return n, tailBlanks
}

// parseMetisData parses vertex lines of the adjacency region; the first
// vertex line in data describes vertex firstVertex (1-based line number in
// the whole file's adjacency region). Every adjacency entry yields one
// rawEdge (u, neighbor); neighbors may be 0-based, which Load detects and
// shifts globally.
func parseMetisData(data []byte, h metisHeader, firstVertex uint64) ([]rawEdge, error) {
	var out []rawEdge
	u := firstVertex
	// Diagnostics locate by vertex id, which is absolute at any PE count
	// (the vertex's adjacency line is line id+1 of the file's data region).
	for _, ln := range splitLines(data) {
		s := bytes.TrimSpace(ln)
		if len(s) > 0 && s[0] == '%' {
			continue
		}
		fields := bytes.Fields(s)
		skip := 0
		if h.VertexSizes {
			skip++
		}
		if h.VertexWeights {
			skip += h.NCon
		}
		if len(fields) < skip {
			return nil, fmt.Errorf("metis vertex %d: %d fields, want at least %d vertex size/weight fields",
				u, len(fields), skip)
		}
		fields = fields[skip:]
		if h.HasEdgeWeights {
			if len(fields)%2 != 0 {
				return nil, fmt.Errorf("metis vertex %d: odd neighbor/weight list", u)
			}
			for j := 0; j < len(fields); j += 2 {
				nb, err := parseLabel(fields[j])
				if err != nil {
					return nil, fmt.Errorf("metis vertex %d: %v", u, err)
				}
				w, err := parseWeight(fields[j+1])
				if err != nil {
					return nil, fmt.Errorf("metis vertex %d: %v", u, err)
				}
				out = append(out, rawEdge{U: u, V: nb, W: w, HasW: true})
			}
		} else {
			for _, f := range fields {
				nb, err := parseLabel(f)
				if err != nil {
					return nil, fmt.Errorf("metis vertex %d: %v", u, err)
				}
				out = append(out, rawEdge{U: u, V: nb})
			}
		}
		u++
	}
	return out, nil
}

// buildEdges turns parsed raw edges into both directed working copies,
// applying the label shifts (0-based inputs become 1-based) and assigning
// deterministic weights to unweighted entries. Self-loops are dropped here;
// duplicates are left for the global dedup in gen.Finish.
func buildEdges(raws []rawEdge, shiftU, shiftV uint64, seed uint64) ([]graph.Edge, error) {
	out := make([]graph.Edge, 0, 2*len(raws))
	for _, r := range raws {
		u, v := r.U+shiftU, r.V+shiftV
		if u == 0 || v == 0 {
			return nil, fmt.Errorf("graphio: vertex label 0 in a 1-based input")
		}
		if u >= 1<<32 || v >= 1<<32 {
			return nil, fmt.Errorf("graphio: vertex label %d exceeds 2^32", max(u, v))
		}
		if u == v {
			continue
		}
		w := r.W
		if !r.HasW {
			w = graph.RandomWeight(seed, u, v)
		}
		out = append(out, graph.NewEdge(u, v, w), graph.NewEdge(v, u, w))
	}
	return out, nil
}

// canonicalCount returns the number of canonical (U < V) entries and the
// maximum endpoint label of a directed edge sequence.
func canonicalCount(edges []graph.Edge) (uint64, uint64) {
	n, maxL := uint64(0), uint64(0)
	for _, e := range edges {
		maxL = max(maxL, e.U, e.V)
		if e.U < e.V {
			n++
		}
	}
	return n, maxL
}

// writeEdgeList writes the canonical undirected edges as "u v w" lines.
func writeEdgeList(w io.Writer, edges []graph.Edge) error {
	buf := make([]byte, 0, 64)
	for _, e := range edges {
		if e.U >= e.V {
			continue
		}
		buf = buf[:0]
		buf = strconv.AppendUint(buf, e.U, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, e.V, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(e.W), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeGr writes the 9th-DIMACS format: each undirected edge once as an
// "a u v w" arc (loaders reconstruct both directions).
func writeGr(w io.Writer, edges []graph.Edge) error {
	m, n := canonicalCount(edges)
	if _, err := fmt.Fprintf(w, "c kamsta graph, %d vertices (max label), %d undirected edges\np sp %d %d\n", n, m, n, m); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, e := range edges {
		if e.U >= e.V {
			continue
		}
		buf = append(buf[:0], 'a', ' ')
		buf = strconv.AppendUint(buf, e.U, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, e.V, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, uint64(e.W), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeMetis writes the METIS adjacency format with edge weights
// (fmt 001): line i lists vertex i's neighbors as "nb w" pairs, every edge
// in both lists. Vertices are 1..maxLabel, so labels should be consecutive
// (as produced by gen.Build and Load) to avoid blank filler lines.
func writeMetis(w io.Writer, edges []graph.Edge) error {
	m, n := canonicalCount(edges)
	if n > max(1<<26, 8*uint64(len(edges))+1024) {
		return fmt.Errorf("graphio: max label %d too sparse for METIS adjacency output", n)
	}
	type pair struct {
		v graph.VID
		w graph.Weight
	}
	adj := make([][]pair, n+1)
	for _, e := range edges {
		if e.U >= e.V {
			continue
		}
		adj[e.U] = append(adj[e.U], pair{e.V, e.W})
		adj[e.V] = append(adj[e.V], pair{e.U, e.W})
	}
	if _, err := fmt.Fprintf(w, "%% kamsta graph\n%d %d 001\n", n, m); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for u := uint64(1); u <= n; u++ {
		buf = buf[:0]
		for j, p := range adj[u] {
			if j > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendUint(buf, p.v, 10)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(p.w), 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
