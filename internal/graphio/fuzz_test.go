package graphio

import (
	"testing"
)

// The text parsers face arbitrary user files; the contract is that
// malformed input errors and never panics, and that whatever parses also
// survives edge building. The seeds cover the grammar corners: comments,
// blank lines, 0-based ids, missing weights, CRLF, junk.

func fuzzBuild(t *testing.T, raws []rawEdge) {
	t.Helper()
	for _, shift := range []uint64{0, 1} {
		if _, err := buildEdges(raws, shift, shift, 7); err != nil {
			_ = err // overflow labels may error; must not panic
		}
	}
}

func FuzzParseEdgeList(f *testing.F) {
	f.Add([]byte("1 2 3\n2 3 4\n"))
	f.Add([]byte("# comment\n% comment\n\n0 1\n1 2 255\r\n"))
	f.Add([]byte("1 2 3 4 5\n"))
	f.Add([]byte("frogs toads 3\n"))
	f.Add([]byte("18446744073709551615 1 1\n"))
	f.Add([]byte("1 2 -7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raws, err := parseEdgeListData(data, 0)
		if err == nil {
			fuzzBuild(t, raws)
		}
	})
}

func FuzzParseGr(f *testing.F) {
	f.Add([]byte("c road net\np sp 3 2\na 1 2 7\na 2 3 9\n"))
	f.Add([]byte("p sp\n"))
	f.Add([]byte("a 1\n"))
	f.Add([]byte("e 1 2\nq nonsense\n"))
	f.Add([]byte("c\n\na 0 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		raws, err := parseGrData(data, 0)
		if err == nil {
			fuzzBuild(t, raws)
		}
	})
}

func FuzzParseMetis(f *testing.F) {
	f.Add([]byte("3 2 001\n2 7\n1 7 3 9\n2 9\n"), uint64(1))
	f.Add([]byte("2 1\n2\n1\n"), uint64(1))
	f.Add([]byte("2 1 011 2\n1 5 9 2\n1 5 9 1\n"), uint64(1))
	f.Add([]byte("% c\n\n2 1 1\n2\n"), uint64(3))
	f.Add([]byte("junk\n"), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, firstVertex uint64) {
		lines := splitLines(data)
		if len(lines) == 0 {
			return
		}
		hdr, err := parseMetisHeader(string(lines[0]))
		if err != nil {
			return
		}
		rest := []byte{}
		if i := indexAfterFirstLine(data); i >= 0 {
			rest = data[i:]
		}
		raws, err := parseMetisData(rest, hdr, firstVertex%(1<<33))
		if err == nil {
			fuzzBuild(t, raws)
		}
	})
}

// indexAfterFirstLine returns the offset just past the first newline, or -1.
func indexAfterFirstLine(data []byte) int {
	for i, b := range data {
		if b == '\n' {
			return i + 1
		}
	}
	return -1
}
