// Package graphio reads and writes graph instances on disk and feeds them
// into the simulated machine. It is the file-backed counterpart of
// internal/gen: where gen materializes an instance from a hash function,
// graphio materializes it from a file, and both hand the world the same
// §II-B input format (globally sorted distributed edge list, duplicates and
// self-loops removed, consecutive IDs, replicated layout).
//
// Three text interchange formats and one binary format are supported:
//
//   - EdgeList: one "u v [w]" line per undirected edge, '#'/'%' comments.
//   - Gr: the 9th-DIMACS shortest-path format used by the road-network
//     instances ("c" comments, "p sp n m" problem line, "a u v w" arcs).
//   - Metis: the METIS/Chaco adjacency format (header "n m [fmt]", line i
//     lists vertex i's neighbors, every edge appears in both lists).
//   - Kamsta: this repository's chunked binary format — a fixed-width
//     little-endian edge record array behind a per-chunk index, so each PE
//     of a loading world seeks and reads exactly its slice in parallel
//     (see binary.go and DESIGN.md §6).
//
// Loading is distributed: Load runs inside the world and every PE ingests a
// disjoint byte range of the file concurrently; no rank scans the whole
// file on behalf of the others.
package graphio

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Format identifies an on-disk graph format.
type Format int

const (
	// FormatAuto selects the format from the file extension (DetectFormat).
	FormatAuto Format = iota
	// FormatKamsta is the chunked binary format (extension .kg).
	FormatKamsta
	// FormatEdgeList is the plain "u v [w]" text format (.txt, .el).
	FormatEdgeList
	// FormatGr is the 9th-DIMACS shortest-path format (.gr).
	FormatGr
	// FormatMetis is the METIS adjacency format (.metis, .graph).
	FormatMetis
)

// String returns the canonical format name.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatKamsta:
		return "kamsta"
	case FormatEdgeList:
		return "edgelist"
	case FormatGr:
		return "gr"
	case FormatMetis:
		return "metis"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat resolves a user-supplied format name.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return FormatAuto, nil
	case "kamsta", "kg", "binary":
		return FormatKamsta, nil
	case "edgelist", "el", "txt", "text":
		return FormatEdgeList, nil
	case "gr", "dimacs":
		return FormatGr, nil
	case "metis", "graph", "chaco":
		return FormatMetis, nil
	}
	return FormatAuto, fmt.Errorf("graphio: unknown format %q (known: kamsta, edgelist, gr, metis, auto)", name)
}

// DetectFormat guesses the format from the file extension; unknown
// extensions default to the edge-list text format.
func DetectFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".kg", ".kamsta":
		return FormatKamsta
	case ".gr", ".dimacs":
		return FormatGr
	case ".metis", ".graph", ".chaco":
		return FormatMetis
	default:
		return FormatEdgeList
	}
}

// resolve turns FormatAuto into a concrete format for path.
func (f Format) resolve(path string) Format {
	if f == FormatAuto {
		return DetectFormat(path)
	}
	return f
}
