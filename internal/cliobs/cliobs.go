// Package cliobs wires the flags shared by the kamsta commands: the
// observability trio -metrics, -trace, and -pprof (each command registers
// them, activates the sinks after flag.Parse, threads the registry/trace
// into its machines or worlds, and flushes on exit), and the distributed-
// machine pair -transport and -workers.
package cliobs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	// Register the pprof handlers on http.DefaultServeMux; the -pprof
	// server below serves that mux.
	_ "net/http/pprof"

	"kamsta/internal/obs"
)

// Flags holds the observability flag values and, after Activate, the live
// sinks they configure.
type Flags struct {
	MetricsPath string
	TracePath   string
	PprofAddr   string

	// Registry is non-nil when -metrics or -pprof asked for one.
	Registry *obs.Registry
	// Trace is non-nil when -trace asked for one.
	Trace *obs.Trace
}

// Register declares the three flags on the default flag set. Call before
// flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.MetricsPath, "metrics", "",
		"write metrics on exit: a path (.json = JSON, else Prometheus text) or - for stdout")
	flag.StringVar(&f.TracePath, "trace", "",
		"record a span trace and write it on exit: a path (.json = Chrome trace_event, else text summary) or - for stdout")
	flag.StringVar(&f.PprofAddr, "pprof", "",
		"serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	return f
}

// Activate builds the sinks the parsed flags ask for and starts the -pprof
// server. Call once, after flag.Parse and before any machine or world is
// created.
func (f *Flags) Activate() error {
	if f.MetricsPath != "" || f.PprofAddr != "" {
		f.Registry = obs.NewRegistry()
	}
	if f.TracePath != "" {
		f.Trace = obs.NewTrace()
	}
	if f.PprofAddr != "" {
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", http.DefaultServeMux) // pprof lives here
		mux.Handle("/metrics", f.Registry.Handler())
		go func() { _ = http.Serve(ln, mux) }() //nolint:errcheck // best-effort debug server
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s (profiles under /debug/pprof/, metrics at /metrics)\n",
			ln.Addr())
	}
	return nil
}

// Flush writes the metrics and trace outputs the flags asked for. Call once
// on the way out, after all jobs have completed.
func (f *Flags) Flush() error {
	if f.MetricsPath != "" {
		if err := writeOut(f.MetricsPath, func(w *os.File) error {
			if strings.HasSuffix(f.MetricsPath, ".json") {
				return f.Registry.WriteJSON(w)
			}
			return f.Registry.WritePrometheus(w)
		}); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	if f.TracePath != "" {
		if err := writeOut(f.TracePath, func(w *os.File) error {
			if strings.HasSuffix(f.TracePath, ".json") {
				return f.Trace.WriteChromeJSON(w)
			}
			return f.Trace.WriteSummary(w)
		}); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		if n := f.Trace.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d spans dropped (ring capacity %d per rank; raise obs.Trace.CapPerRank)\n",
				n, f.Trace.RingCap())
		}
	}
	return nil
}

// TransportFlags holds the distributed-machine flag values shared by the
// commands that build kamsta.Machines (mstbench, mstverify, mstserve).
type TransportFlags struct {
	// Transport is the -transport value, a kamsta.MachineConfig.Transport
	// ("" = in-process default).
	Transport string

	workers string
}

// RegisterTransport declares -transport and -workers on the default flag
// set. Call before flag.Parse.
func RegisterTransport() *TransportFlags {
	f := &TransportFlags{}
	flag.StringVar(&f.Transport, "transport", "",
		`machine substrate: "shm" (in-process, default) or "tcp" (lead a distributed world; see -workers)`)
	flag.StringVar(&f.workers, "workers", "",
		"comma-separated mstworker addresses (host:port) hosting the remote ranks of -transport tcp")
	return f
}

// Workers returns the parsed -workers address list (nil when unset).
func (f *TransportFlags) Workers() []string {
	var out []string
	for _, part := range strings.Split(f.workers, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// writeOut opens path for writing ("-" = stdout), runs emit, and closes.
func writeOut(path string, emit func(*os.File) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
