// Package shm is the in-process shared-memory transport: the original
// comm substrate — epoch-parity double-buffered deposit boards completed
// under a fan-in-8 tree barrier with pre-release combining — extracted
// behind the transport.Transport interface with zero behavior change.
//
// The Substrate also hosts the LOCAL rank block of a multi-process world:
// the TCP backend embeds it with lo/hi a strict sub-range of [0, p) and a
// completion hook that syncs the superstep over the network while all
// local ranks are blocked in the barrier. The boards stay p-wide so the
// collectives index them by global rank on every backend.
package shm

import (
	"kamsta/internal/transport"
)

// completeFunc finishes one superstep while every local party is blocked
// in the barrier: given the epoch, the (locally populated) board and the
// completing rank's Host, it returns the combined slot all ranks read
// after release. The purely local substrate completes via Host.Complete;
// the TCP backend's hook exchanges remote slots first.
type completeFunc func(epoch uint64, board []transport.Deposit, h transport.Host) transport.Slot

// pendSlot records, per local party, what Exchange deposited before
// arriving at the barrier, so whichever party completes the root can run
// the completion with ITS OWN pending state. Padded so neighbouring
// parties' writes never share a cache line.
type pendSlot struct {
	h     transport.Host
	epoch uint64
	_     [40]byte
}

// Substrate is the shared-memory superstep engine. It implements
// transport.Transport for the single-process world (New) and is embedded
// by the TCP leader/follower for the local block of a distributed one
// (NewSubstrate with a custom completion hook).
type Substrate struct {
	p      int
	lo, hi int
	bar    *barrier
	// boards[e%2] is the deposit board for superstep parity e&1: one slot
	// per GLOBAL rank, written by local ranks before they arrive and — on
	// remote-backed worlds — by the completion hook for remote ranks.
	// Double buffering lets ranks released from superstep e read e's board
	// while early arrivals already deposit into e+1's.
	boards [2][]transport.Deposit
	// combined[e%2] is the published result of superstep e, written by the
	// completion hook before the barrier releases anyone.
	combined [2]transport.Slot
	pend     []pendSlot
	complete completeFunc
	preFn    func(int) // bound once: the barrier's pre-release hook
}

// NewSubstrate builds the substrate for local ranks [lo, hi) of a p-rank
// world, completing each superstep through the given hook. The barrier has
// hi-lo parties; a single-local-rank world degenerates to an inline hook
// call per superstep (still a network sync on remote-backed worlds).
func NewSubstrate(p, lo, hi int, complete completeFunc) *Substrate {
	s := &Substrate{
		p:        p,
		lo:       lo,
		hi:       hi,
		bar:      newBarrier(hi - lo),
		pend:     make([]pendSlot, hi-lo),
		complete: complete,
	}
	s.boards[0] = make([]transport.Deposit, p)
	s.boards[1] = make([]transport.Deposit, p)
	s.preFn = s.runComplete
	return s
}

// New builds the purely local transport for a p-rank single-process world:
// all ranks local, completion is the Host's own (no remote flags).
func New(p int) *Substrate {
	return NewSubstrate(p, 0, p, localComplete)
}

func localComplete(_ uint64, board []transport.Deposit, h transport.Host) transport.Slot {
	return h.Complete(board, transport.Flags{})
}

// P is the total rank count.
func (s *Substrate) P() int { return s.p }

// Local is the locally hosted rank range.
func (s *Substrate) Local() (lo, hi int) { return s.lo, s.hi }

// Exchange runs one superstep for local rank rank: deposit onto the
// parity board, publish the pending (host, epoch) for the completing
// party, and block until the barrier releases — at which point the
// combined slot for this epoch has been published. Allocation-free: the
// deposit and pending writes go into preallocated padded slots and preFn
// is bound once at construction.
func (s *Substrate) Exchange(rank int, epoch uint64, dep transport.Deposit, h transport.Host) ([]transport.Deposit, transport.Slot, bool) {
	board := s.boards[epoch&1]
	board[rank] = dep
	li := rank - s.lo
	ps := &s.pend[li]
	ps.h = h
	ps.epoch = epoch
	if s.bar.Wait(li, s.preFn) {
		return nil, transport.Slot{}, true
	}
	return board, s.combined[epoch&1], false
}

// runComplete is the barrier's pre-release hook: the completing party
// finishes the superstep with its own pending state while everyone else is
// still blocked, publishing the combined slot they will all read.
func (s *Substrate) runComplete(li int) {
	ps := &s.pend[li]
	s.combined[ps.epoch&1] = s.complete(ps.epoch, s.boards[ps.epoch&1], ps.h)
}

// Poison permanently breaks the substrate; all in-flight and future
// Exchanges return poisoned.
func (s *Substrate) Poison() { s.bar.Poison() }

// Poisoned reports whether the substrate was poisoned.
func (s *Substrate) Poisoned() bool { return s.bar.Poisoned() }

// Drop clears deposited values, codecs and combined slots so a finished
// job's data can be collected while the world idles between jobs. Must be
// called with no rank inside an Exchange.
func (s *Substrate) Drop() {
	for i := range s.boards {
		for j := range s.boards[i] {
			s.boards[i][j].Val = nil
			s.boards[i][j].Codec = nil
		}
		s.combined[i] = transport.Slot{}
	}
	for i := range s.pend {
		s.pend[i].h = nil
	}
}

// Close releases nothing for the in-process substrate.
func (s *Substrate) Close() error { return nil }
