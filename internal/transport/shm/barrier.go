package shm

import (
	"runtime"
	"sync/atomic"
)

// barrier is a reusable (cyclic) barrier for a fixed number of parties,
// built as a fan-in tree of atomic arrival counters released by a single
// epoch word. It replaces the previous central mutex+cond barrier, whose
// per-superstep cost grew ~15× from p=8 to p=64 purely from lock contention
// and futex sleep/wake traffic; here arrival contention is spread over tree
// nodes, release is one atomic increment that all waiters observe by
// polling, and waiters yield to the scheduler (runtime.Gosched) after a
// short bounded spin so worlds with far more PEs than cores make progress
// cooperatively instead of thrashing.
//
// Protocol: each arriving party increments its leaf node's counter. The
// party that completes a node (counter reaches arity) resets the counter and
// climbs to the parent; the party that completes the root increments the
// epoch, releasing everyone spinning on it. Counter resets are safe because
// they happen before the root increment, which in turn happens before any
// party can start the next round (it must first observe the new epoch), so
// next-round arrivals always find zeroed counters. All signalling goes
// through sync/atomic, which gives the happens-before edges that make plain
// writes before Wait visible to plain reads after Wait on every party.
type barrier struct {
	p     int
	spin  int
	yield int
	nodes []barrierNode
	epoch atomic.Uint64
	// doors[e%2] is a broadcast channel closed by epoch e's completer.
	// Parties whose spin+yield budget runs out block on it instead of
	// cycling through the scheduler; with many PEs per core this keeps the
	// run queue short while stragglers finish their pre-barrier work.
	doors [2]atomic.Value // of chan struct{}
	// poisoned is the barrier's terminal state: once set (Poison), every
	// current and future Wait returns immediately with poisoned=true and
	// the counters/epoch are no longer coherent. Poisoning is the hard
	// fault-containment fallback for situations the cooperative
	// superstep-verdict protocol cannot resolve — a lost PE goroutine or a
	// stalled collective — after which the world must be rebuilt.
	poisoned atomic.Bool
	// poisonCh is closed by Poison so parties parked on a door wake up.
	poisonCh chan struct{}
}

// barrierFan is the tree fan-in: parties per leaf and children per inner
// node. 8 keeps the tree ≤ 3 levels up to p = 512 while spreading arrivals
// over p/8 cache lines.
const barrierFan = 8

// barrierSpin bounds the busy-wait before the first Gosched. It is kept
// small: when goroutines outnumber cores (the common case for large
// simulated worlds) spinning cannot observe progress until the scheduler
// runs another party, so yielding early is what keeps p ≥ 256 fast. On a
// single-proc runtime spinning can never observe progress at all, so the
// budget drops to zero there (decided once at barrier construction).
const barrierSpin = 32

// barrierYield bounds the Gosched attempts before a party parks on the
// epoch's door channel. Yielding is cheap when the barrier is about to
// complete, but every yield cycles the whole run queue; once a party has
// yielded this many times the other PEs are evidently still busy with
// pre-barrier work, and parking keeps the scheduler's queue short while
// they finish.
const barrierYield = 8

// barrierNode is one tree node, padded to a cache line so arrivals at
// different nodes never share a line.
type barrierNode struct {
	count  atomic.Int32
	arity  int32
	parent int32 // index into nodes; -1 at the root
	_      [52]byte
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p, spin: barrierSpin, yield: barrierYield, poisonCh: make(chan struct{})}
	if runtime.GOMAXPROCS(0) == 1 {
		b.spin = 0
	}
	if p <= 1 {
		return b
	}
	b.doors[0].Store(make(chan struct{}))
	b.doors[1].Store(make(chan struct{}))
	// Level l has ceil(width/8) nodes over the previous level's width.
	var counts []int
	for w := p; ; {
		n := (w + barrierFan - 1) / barrierFan
		counts = append(counts, n)
		if n == 1 {
			break
		}
		w = n
	}
	offsets := make([]int, len(counts))
	total := 0
	for i, n := range counts {
		offsets[i] = total
		total += n
	}
	b.nodes = make([]barrierNode, total)
	w := p
	for l, n := range counts {
		for i := 0; i < n; i++ {
			node := &b.nodes[offsets[l]+i]
			arity := barrierFan
			if rest := w - i*barrierFan; rest < arity {
				arity = rest
			}
			node.arity = int32(arity)
			if n == 1 {
				node.parent = -1
			} else {
				node.parent = int32(offsets[l+1] + i/barrierFan)
			}
		}
		w = n
	}
	return b
}

// Wait blocks party li (a local party index in [0, parties)) until all
// parties arrive, then rearms for the next round. The party that completes
// the root — the last to arrive, once all arrivals have propagated up the
// tree — runs pre(li) with its OWN index (if pre is non-nil) BEFORE
// releasing anyone. At that moment every other party is still blocked
// inside Wait, so pre may freely read state the parties wrote before
// arriving and publish a combined result for all of them to read after
// release; this is what lets collectives reduce p deposits once instead of
// p times (see Substrate's completion hook).
//
// Wait reports whether the barrier was poisoned: a true return means the
// round did NOT complete (no combine ran, no coherent release happened)
// and the caller must unwind its job — the world is broken.
func (b *barrier) Wait(li int, pre func(int)) (poisoned bool) {
	if b.poisoned.Load() {
		return true
	}
	if b.p <= 1 {
		if pre != nil {
			pre(li)
		}
		return false
	}
	e := b.epoch.Load()
	ni := int32(li / barrierFan)
	for {
		n := &b.nodes[ni]
		if n.count.Add(1) != n.arity {
			break // not the last at this node: go wait for the release
		}
		n.count.Store(0)
		if n.parent < 0 {
			// Root completed: this party releases the world. Order
			// matters: the combine runs first (everyone is still blocked);
			// the epoch flip releases spinners AND must precede the door
			// close so that any party woken from the door — or released
			// any other way — loads the NEW epoch when it enters the next
			// round (a stale load would let the next round's release
			// condition fire prematurely); and only then is the door
			// re-armed for this parity's next use — a party that observes
			// the new door must already observe the flipped epoch
			// (sequentially consistent atomics), so it can never park on a
			// door nobody will close, and the next same-parity completer
			// cannot observe the old door because it can only run after
			// this PE passed the next barrier.
			if pre != nil {
				pre(li)
			}
			door := b.doors[e&1].Load().(chan struct{})
			b.epoch.Add(1)
			close(door)
			b.doors[e&1].Store(make(chan struct{}))
			return false
		}
		ni = n.parent
	}
	spins, yields := 0, 0
	for b.epoch.Load() == e {
		if b.poisoned.Load() {
			return true
		}
		switch {
		case spins < b.spin:
			spins++
		case yields < b.yield:
			yields++
			runtime.Gosched()
		default:
			// Park. The door was loaded while the epoch still read e, so
			// it is this epoch's door (see the completer's ordering) and
			// its close is guaranteed — unless the barrier is poisoned, in
			// which case poisonCh wakes the parked party instead.
			door := b.doors[e&1].Load().(chan struct{})
			if b.epoch.Load() != e {
				return false
			}
			select {
			case <-door:
				return false
			case <-b.poisonCh:
				return true
			}
		}
	}
	return false
}

// Poison permanently breaks the barrier: every party currently blocked in
// Wait — spinning, yielding, or parked on a door — returns with
// poisoned=true, and every future Wait returns immediately the same way.
// After Poison the counters and epoch are incoherent; the owning world is
// unusable and must be rebuilt. Idempotent and safe to call from any
// goroutine (watchdogs, runners of dying PEs).
func (b *barrier) Poison() {
	if b.poisoned.CompareAndSwap(false, true) {
		close(b.poisonCh)
	}
}

// Poisoned reports whether the barrier has been poisoned.
func (b *barrier) Poisoned() bool { return b.poisoned.Load() }
