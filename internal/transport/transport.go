// Package transport defines the narrow substrate interface the comm
// collectives bottom out on: per-rank deposit exchange with a combining
// barrier. One superstep, from every participating rank, is exactly one
// Exchange call — deposit a value, block until all p ranks have arrived,
// and return the fully-populated board plus the combined slot (folded
// clock, verdict, optional combined value) computed exactly once while
// everyone is blocked.
//
// Two backends implement it: internal/transport/shm is the in-process
// shared-memory substrate (double-buffered boards under a fan-in tree
// barrier — the original comm implementation, extracted verbatim), and
// internal/transport/tcp spans processes by electing one process the
// leader and completing each superstep over persistent length-prefixed
// socket frames. The modeled α-β clock, message counts and byte charges
// are computed from deposit metadata identically on every backend, so a
// job's modeled time is bit-identical regardless of transport.
package transport

import "kamsta/internal/enc"

// Verdict values published in a Slot. They mirror the comm package's job
// verdicts: run means proceed, cancel and abort unwind cooperatively.
const (
	VerdictRun    uint8 = 0
	VerdictCancel uint8 = 1
	VerdictAbort  uint8 = 2
)

// Deposit is one rank's contribution to a superstep: the collective tag,
// the rank's modeled clock at entry, and the deposited value. Codec names
// how Val crosses a process boundary; it is nil on purely local paths and
// for valueless deposits (barriers). The padding keeps neighbouring ranks'
// deposits on distinct cache lines on the shared-memory backend.
type Deposit struct {
	Tag   uint32
	Clock float64
	Val   any
	Codec *enc.Codec
	_     [24]byte
}

// Slot is the combined result of a superstep, computed once by the
// completing party and read by all ranks: the maximum entry clock, the
// combine closure's value (if any), and the verdict.
type Slot struct {
	ClockMax float64
	Val      any
	Verdict  uint8
}

// RemoteFault describes a fault recorded on another process, shipped to
// the leader so the job's primary error is chosen over all processes.
type RemoteFault struct {
	Kind      uint8
	Rank      int32
	Superstep int32
	Round     int32
	Phase     string
	Panic     string
	Stack     string
}

// Flags is a snapshot of a process's job-control state at a superstep
// boundary: pending cancellation or abort, plus faults not yet shipped.
type Flags struct {
	Cancel bool
	Abort  bool
	Faults []RemoteFault
}

// Host is the comm layer's side of the contract: the transport calls back
// into it to complete a superstep. All methods may be called from whichever
// goroutine completes the barrier.
type Host interface {
	// Flags snapshots local job-control state (cancel/abort requests and
	// unshipped faults) for transmission to the completing process.
	Flags() Flags
	// Complete performs the local completion of a superstep over the fully
	// populated board: fold clocks, determine the verdict from local state
	// unioned with remote, run the pending combine closure, advance the
	// progress counter. Only the process that owns verdict selection (shm:
	// the only process; tcp: the leader) calls Complete.
	Complete(board []Deposit, remote Flags) Slot
	// CompleteWith performs the local completion under a verdict decided
	// elsewhere (tcp: a worker applying the leader's REPLY).
	CompleteWith(board []Deposit, verdict uint8) Slot
	// RemoteFaults records faults shipped from other processes so they
	// participate in primary-error selection.
	RemoteFaults([]RemoteFault)
	// TransportFault records a transport-level failure (connection loss,
	// corrupt frame, deadline) as a job fault; the transport then publishes
	// an abort Slot so local ranks unwind coherently.
	TransportFault(err error)
}

// Transport is the substrate under a comm.World. Implementations are
// created per world and closed with it.
type Transport interface {
	// P is the total number of ranks across all processes.
	P() int
	// Local is the half-open contiguous rank range hosted in this process.
	Local() (lo, hi int)
	// Exchange runs one superstep for a local rank: deposit, await all p
	// ranks, return the populated board for epoch parity and the combined
	// slot. The board is valid until the same parity's next superstep.
	// poisoned reports that the substrate was poisoned instead of
	// completing; board and slot are then meaningless.
	Exchange(rank int, epoch uint64, dep Deposit, h Host) (board []Deposit, slot Slot, poisoned bool)
	// Poison permanently unblocks all waiters; every in-flight and future
	// Exchange returns poisoned. Used when a job is torn down ungracefully.
	Poison()
	// Poisoned reports whether Poison was called.
	Poisoned() bool
	// Drop clears retained deposit values and verdicts between jobs so a
	// finished job's data can be collected. Called with no rank in an
	// Exchange.
	Drop()
	// Close releases transport resources (connections). The transport is
	// unusable afterwards.
	Close() error
}
