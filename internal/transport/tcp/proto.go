// Package tcp spans a simulated world across processes: one LEADER process
// hosts ranks [0, k) plus the job's driver, and each WORKER process
// (cmd/mstworker) hosts a contiguous block of the remaining ranks. Every
// superstep completes over persistent connections with length-prefixed
// frames (internal/enc): while all of a process's local ranks are blocked
// in its shared-memory barrier, the completion hook exchanges one STEP
// frame per worker (deposits, flags, faults, toward the leader) and one
// REPLY frame back (verdict plus the rest of the world's deposits), so the
// collectives above see exactly the board they would on the in-process
// substrate. Modeled clocks, message counts and byte charges are computed
// from deposit metadata identically on every backend — the wire changes
// wall time only.
//
// Failure mapping: a lost connection, corrupt frame or expired read
// deadline surfaces as Host.TransportFault — the job aborts with a
// *JobError (kind transport) through the normal verdict path and the world
// is marked broken; the poison hammer stays reserved for local protocol
// failures. Read deadlines take the job's stall timeout (SetIOTimeout), so
// a hung peer maps onto the same containment machinery as a hung PE.
package tcp

import (
	"errors"
	"fmt"
	"math"

	"kamsta/internal/enc"
	"kamsta/internal/transport"
)

// Frame kinds of the leader-worker protocol.
const (
	kHello    uint8 = 1 // leader → worker: world geometry + wire fingerprint
	kWelcome  uint8 = 2 // worker → leader: handshake echo
	kJobStart uint8 = 3 // leader → worker: opaque job spec
	kJobEnd   uint8 = 4 // worker → leader: opaque job result
	kStep     uint8 = 5 // worker → leader: one superstep's local deposits + flags
	kReply    uint8 = 6 // leader → worker: verdict + the rest of the board
)

// protoMagic and protoVersion pin the wire dialect; endianProbe doubles as
// a byte-order and word-size fingerprint, since POD payloads are raw
// memory. A mismatch is a typed handshake error, never a silent corruption.
const (
	protoMagic   uint32 = 0x4b4d5450 // "KMTP"
	protoVersion uint32 = 1
	endianProbe  uint64 = 0x0102030405060708
)

// Typed protocol errors.
var (
	// ErrHandshake reports an incompatible peer (bad magic, version, byte
	// order or word size).
	ErrHandshake = errors.New("tcp: incompatible handshake")
	// ErrProtocol reports a frame that violates the protocol state machine
	// (wrong kind, wrong epoch).
	ErrProtocol = errors.New("tcp: protocol violation")
)

// hello is the leader's per-connection opening frame: the world geometry
// this worker must host and the cost model it must run.
type hello struct {
	p, lo, hi int
	threads   int
	alpha     float64
	beta      float64
	compute   float64
	wordSize  uint8
}

func appendHello(b []byte, h hello) []byte {
	b = enc.AppendU32(b, protoMagic)
	b = enc.AppendU32(b, protoVersion)
	b = enc.AppendU64(b, endianProbe)
	b = enc.AppendU8(b, h.wordSize)
	b = enc.AppendI64(b, int64(h.p))
	b = enc.AppendI64(b, int64(h.lo))
	b = enc.AppendI64(b, int64(h.hi))
	b = enc.AppendI64(b, int64(h.threads))
	b = enc.AppendF64(b, h.alpha)
	b = enc.AppendF64(b, h.beta)
	b = enc.AppendF64(b, h.compute)
	return b
}

func parseHello(payload []byte, wordSize uint8) (hello, error) {
	r := enc.NewReader(payload)
	magic, version, probe := r.U32(), r.U32(), r.U64()
	ws := r.U8()
	h := hello{wordSize: ws}
	h.p = int(r.I64())
	h.lo = int(r.I64())
	h.hi = int(r.I64())
	h.threads = int(r.I64())
	h.alpha = r.F64()
	h.beta = r.F64()
	h.compute = r.F64()
	if err := r.Err(); err != nil {
		return hello{}, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if magic != protoMagic {
		return hello{}, fmt.Errorf("%w: magic %#x", ErrHandshake, magic)
	}
	if version != protoVersion {
		return hello{}, fmt.Errorf("%w: version %d, want %d", ErrHandshake, version, protoVersion)
	}
	if probe != endianProbe || ws != wordSize {
		return hello{}, fmt.Errorf("%w: byte order or word size differs (probe %#x, word %d)", ErrHandshake, probe, ws)
	}
	if h.p < 1 || h.lo < 0 || h.hi <= h.lo || h.hi > h.p {
		return hello{}, fmt.Errorf("%w: rank block [%d,%d) of %d", ErrHandshake, h.lo, h.hi, h.p)
	}
	return h, nil
}

func appendWelcome(b []byte) []byte {
	b = enc.AppendU32(b, protoMagic)
	b = enc.AppendU32(b, protoVersion)
	b = enc.AppendU64(b, endianProbe)
	return b
}

func checkWelcome(payload []byte) error {
	r := enc.NewReader(payload)
	magic, version, probe := r.U32(), r.U32(), r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if magic != protoMagic || version != protoVersion || probe != endianProbe {
		return fmt.Errorf("%w: welcome magic %#x version %d probe %#x", ErrHandshake, magic, version, probe)
	}
	return nil
}

// Flag bits of a STEP frame.
const (
	flagCancel uint8 = 1 << 0
	flagAbort  uint8 = 1 << 1
)

// appendFlags encodes the control half of a STEP frame: flag bits and the
// not-yet-shipped faults.
func appendFlags(b []byte, fl transport.Flags) []byte {
	var bits uint8
	if fl.Cancel {
		bits |= flagCancel
	}
	if fl.Abort {
		bits |= flagAbort
	}
	b = enc.AppendU8(b, bits)
	b = enc.AppendUvarint(b, uint64(len(fl.Faults)))
	for i := range fl.Faults {
		f := &fl.Faults[i]
		b = enc.AppendU8(b, f.Kind)
		b = enc.AppendU32(b, uint32(f.Rank))
		b = enc.AppendU32(b, uint32(f.Superstep))
		b = enc.AppendU32(b, uint32(f.Round))
		b = enc.AppendString(b, f.Phase)
		b = enc.AppendString(b, f.Panic)
		b = enc.AppendString(b, f.Stack)
	}
	return b
}

func readFlags(r *enc.Reader) (transport.Flags, error) {
	var fl transport.Flags
	bits := r.U8()
	fl.Cancel = bits&flagCancel != 0
	fl.Abort = bits&flagAbort != 0
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return fl, err
	}
	if n > uint64(r.Len()) { // each fault occupies well over one byte
		return fl, fmt.Errorf("%w: %d faults in %d bytes", enc.ErrOversized, n, r.Len())
	}
	for i := uint64(0); i < n; i++ {
		var f transport.RemoteFault
		f.Kind = r.U8()
		f.Rank = int32(r.U32())
		f.Superstep = int32(r.U32())
		f.Round = int32(r.U32())
		f.Phase = r.String()
		f.Panic = r.String()
		f.Stack = r.String()
		if err := r.Err(); err != nil {
			return fl, err
		}
		fl.Faults = append(fl.Faults, f)
	}
	return fl, nil
}

// appendSlot encodes one rank's deposit for the wire: tag, clock bits, a
// presence flag, and — when the slot has a value and a codec — the
// length-prefixed codec encoding. A nil codec or nil value (barriers,
// drains) travels as absent and decodes back to a nil Val.
func appendSlot(b []byte, d *transport.Deposit) []byte {
	b = enc.AppendU32(b, d.Tag)
	b = enc.AppendF64(b, d.Clock)
	if d.Codec == nil || d.Val == nil {
		return enc.AppendU8(b, 0)
	}
	b = enc.AppendU8(b, 1)
	// Length prefix so a relaying process can forward the bytes without
	// owning the codec.
	val := d.Codec.Append(nil, d.Val)
	return enc.AppendBytes(b, val)
}

// readSlot decodes one wire slot into d, returning the raw (still encoded)
// payload view for relaying. Val is decoded with cd — the receiver's codec
// for the current superstep; if cd is nil (the receiver deposited no codec:
// a drain or a valueless collective) the payload is skipped and Val stays
// nil, which is safe because such supersteps never read values.
func readSlot(r *enc.Reader, d *transport.Deposit, cd *enc.Codec) (raw []byte, present bool, err error) {
	d.Tag = r.U32()
	d.Clock = r.F64()
	pf := r.U8()
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	switch pf {
	case 0:
		return nil, false, nil
	case 1:
	default:
		return nil, false, fmt.Errorf("%w: slot presence flag %d", enc.ErrCorrupt, pf)
	}
	raw = r.Bytes()
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	if cd == nil {
		return raw, true, nil
	}
	v, rest, err := cd.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("%w: %d bytes after %s payload", enc.ErrCorrupt, len(rest), cd.Name())
	}
	d.Val = v
	return raw, true, nil
}

// appendRawSlot re-frames an already-encoded payload (a readSlot raw view)
// for relay to another process, without owning the codec.
func appendRawSlot(b []byte, d *transport.Deposit, raw []byte, present bool) []byte {
	b = enc.AppendU32(b, d.Tag)
	b = enc.AppendF64(b, d.Clock)
	if !present {
		return enc.AppendU8(b, 0)
	}
	b = enc.AppendU8(b, 1)
	return enc.AppendBytes(b, raw)
}

// foldClock is the board clock fold every completion performs; max is
// order-independent for the regular floats the cost model produces, so the
// result is bit-identical on every process.
func foldClock(board []transport.Deposit) float64 {
	m := board[0].Clock
	for i := 1; i < len(board); i++ {
		m = math.Max(m, board[i].Clock)
	}
	return m
}
