package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"kamsta/internal/enc"
	"kamsta/internal/obs"
	"kamsta/internal/transport"
	"kamsta/internal/transport/shm"
)

// Handshake is the world geometry and cost model a worker learns from the
// leader's HELLO; the worker builds its comm.World from it.
type Handshake struct {
	P, Lo, Hi int
	Threads   int
	Alpha     float64
	Beta      float64
	Compute   float64
}

// Follower is a worker process's side of a distributed world: it hosts
// ranks [Lo, Hi) on the embedded shared-memory substrate and completes
// every superstep by shipping its local block to the leader as a STEP
// frame and applying the REPLY's verdict and remote slots. It implements
// transport.Transport for the worker's comm.World.
type Follower struct {
	*shm.Substrate
	lk        *link
	ioTimeout atomic.Int64
	failed    atomic.Bool
	frameBuf  []byte
}

// handshakeTimeout bounds the HELLO/WELCOME exchange on a fresh
// connection, before any job's stall budget exists.
const handshakeTimeout = 30 * time.Second

// AcceptFollower handshakes an inbound leader connection: read HELLO,
// verify the wire fingerprint, send WELCOME, and build the follower for
// the assigned rank block. reg, when non-nil, receives the link's frame
// and byte counters labeled by the leader's address.
func AcceptFollower(conn net.Conn, reg *obs.Registry) (*Follower, Handshake, error) {
	lk := newLink(conn, conn.RemoteAddr().String(), reg)
	kind, payload, err := lk.readFrame(handshakeTimeout)
	if err != nil {
		return nil, Handshake{}, err
	}
	if kind != kHello {
		return nil, Handshake{}, fmt.Errorf("%w: frame kind %d, want HELLO", ErrProtocol, kind)
	}
	h, err := parseHello(payload, wordSize)
	if err != nil {
		// Best-effort: tell the leader why before hanging up.
		_ = lk.writeFrame(kWelcome, nil, handshakeTimeout)
		return nil, Handshake{}, err
	}
	if err := lk.writeFrame(kWelcome, appendWelcome(nil), handshakeTimeout); err != nil {
		return nil, Handshake{}, err
	}
	lk.lo, lk.hi = h.lo, h.hi
	f := &Follower{lk: lk}
	f.Substrate = shm.NewSubstrate(h.p, h.lo, h.hi, f.netSync)
	return f, Handshake{
		P: h.p, Lo: h.lo, Hi: h.hi,
		Threads: h.threads,
		Alpha:   h.alpha, Beta: h.beta, Compute: h.compute,
	}, nil
}

// SetIOTimeout bounds every subsequent superstep read and write; the
// worker sets it per job from the job spec's stall budget.
func (f *Follower) SetIOTimeout(d time.Duration) { f.ioTimeout.Store(int64(d)) }

func (f *Follower) timeout() time.Duration {
	if d := f.ioTimeout.Load(); d > 0 {
		return time.Duration(d)
	}
	return defaultIOTimeout
}

// Failed reports whether a transport failure condemned this world; the
// worker closes the connection and discards the world.
func (f *Follower) Failed() bool { return f.failed.Load() }

// netSync is the embedded substrate's completion hook: ship the local
// block and control flags as one STEP frame, then apply the leader's
// REPLY — verdict plus every slot outside the local block. A short REPLY
// (verdict only) carries a leader-side abort; the board's remote slots are
// then stale, which an abort superstep never reads. Any wire failure
// becomes a TransportFault and an abort slot.
func (f *Follower) netSync(epoch uint64, board []transport.Deposit, h transport.Host) (slot transport.Slot) {
	if f.failed.Load() {
		return transport.Slot{Verdict: transport.VerdictAbort}
	}
	defer func() {
		if r := recover(); r != nil {
			f.failed.Store(true)
			h.TransportFault(fmt.Errorf("tcp: superstep %d completion panicked: %v", epoch, r))
			slot = transport.Slot{Verdict: transport.VerdictAbort}
		}
	}()

	lo, hi := f.Local()
	buf := f.frameBuf[:0]
	buf = enc.AppendU64(buf, epoch)
	buf = appendFlags(buf, h.Flags())
	for r := lo; r < hi; r++ {
		buf = appendSlot(buf, &board[r])
	}
	f.frameBuf = buf
	if err := f.lk.writeFrame(kStep, buf, f.timeout()); err != nil {
		return f.fault(h, err)
	}

	kind, payload, err := f.lk.readFrame(f.timeout())
	if err != nil {
		return f.fault(h, err)
	}
	if kind != kReply {
		return f.fault(h, fmt.Errorf("%w: frame kind %d, want REPLY", ErrProtocol, kind))
	}
	r := enc.NewReader(payload)
	verdict := r.U8()
	if err := r.Err(); err != nil {
		return f.fault(h, fmt.Errorf("tcp: REPLY: %w", err))
	}
	if r.Len() > 0 {
		// The local block's deposits all carry this superstep's codec (or
		// none, on valueless supersteps — remote values then stay nil).
		cd := board[lo].Codec
		for rank := 0; rank < f.P(); rank++ {
			if rank >= lo && rank < hi {
				continue
			}
			d := &board[rank]
			d.Val, d.Codec = nil, nil
			if _, _, err := readSlot(r, d, cd); err != nil {
				return f.fault(h, fmt.Errorf("tcp: REPLY rank %d: %w", rank, err))
			}
		}
		if r.Len() != 0 {
			return f.fault(h, fmt.Errorf("%w: %d bytes after REPLY", enc.ErrCorrupt, r.Len()))
		}
	} else if verdict != transport.VerdictAbort {
		return f.fault(h, fmt.Errorf("%w: slotless REPLY with verdict %d", ErrProtocol, verdict))
	}
	return h.CompleteWith(board, verdict)
}

func (f *Follower) fault(h transport.Host, err error) transport.Slot {
	f.failed.Store(true)
	h.TransportFault(err)
	return transport.Slot{Verdict: transport.VerdictAbort}
}

// NextJob blocks until the leader starts the next job and returns its
// opaque spec. No deadline applies — idling between jobs is normal. A
// clean connection close returns io.EOF: the leader is done with this
// worker.
func (f *Follower) NextJob() ([]byte, error) {
	if f.failed.Load() {
		return nil, fmt.Errorf("tcp: world transport failed; awaiting teardown")
	}
	kind, payload, err := f.lk.readFrame(0)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if kind != kJobStart {
		f.failed.Store(true)
		return nil, fmt.Errorf("%w: frame kind %d, want JOBSTART", ErrProtocol, kind)
	}
	return append([]byte(nil), payload...), nil
}

// EndJob ships the worker's opaque end-of-job report to the leader.
func (f *Follower) EndJob(report []byte) error {
	return f.lk.writeFrame(kJobEnd, report, f.timeout())
}

// Drop releases the embedded substrate's retained values plus the wire
// scratch buffer.
func (f *Follower) Drop() {
	f.Substrate.Drop()
	f.frameBuf = nil
}

// Close closes the leader connection.
func (f *Follower) Close() error {
	f.lk.dead.Store(true)
	return f.lk.conn.Close()
}
