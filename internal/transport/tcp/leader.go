package tcp

import (
	"bufio"
	"fmt"
	"math/bits"
	"net"
	"sync/atomic"
	"time"

	"kamsta/internal/enc"
	"kamsta/internal/obs"
	"kamsta/internal/transport"
	"kamsta/internal/transport/shm"
)

// wordSize fingerprints the process's machine word for the handshake: POD
// payloads cross the wire as raw memory, so both ends must agree.
const wordSize = uint8(bits.UintSize / 8)

// Defaults for LeaderConfig's zero values.
const (
	defaultDialTimeout = 5 * time.Second
	defaultDialRetries = 20
	defaultDialBackoff = 100 * time.Millisecond
	maxDialBackoff     = 2 * time.Second
	defaultIOTimeout   = 60 * time.Second
)

// LeaderConfig describes the distributed world the leader process builds:
// total rank count, how many ranks stay local, the worker addresses that
// host the rest (contiguous blocks in address order), and the cost model
// every process must run.
type LeaderConfig struct {
	// P is the total rank count across all processes.
	P int
	// LocalRanks is how many ranks the leader hosts, as block [0, LocalRanks).
	// Rank 0 is always leader-local, so LocalRanks >= 1.
	LocalRanks int
	// Workers lists worker addresses ("host:port"); the remaining
	// P-LocalRanks ranks split over them contiguously, in order, as evenly
	// as possible. Every worker must receive at least one rank.
	Workers []string
	// Threads is the per-PE thread setting shipped to workers so their
	// worlds schedule like the leader's.
	Threads int
	// Alpha, Beta, Compute is the α-β cost model, shipped verbatim so every
	// process computes identical modeled clocks.
	Alpha, Beta, Compute float64
	// DialTimeout, DialRetries, DialBackoff govern worker connection
	// establishment: each dial attempt gets DialTimeout, failures retry up
	// to DialRetries times with doubling backoff starting at DialBackoff.
	// Zero values take defaults (5s, 20, 100ms).
	DialTimeout time.Duration
	DialRetries int
	DialBackoff time.Duration
	// IOTimeout bounds every superstep read/write; SetIOTimeout overrides it
	// per job from the job's stall budget. Zero defaults to 60s.
	IOTimeout time.Duration
	// Reg, when non-nil, receives per-link transport counters (frames,
	// bytes, dials, retries) labeled by worker address.
	Reg *obs.Registry
}

// link is one persistent worker connection and its per-superstep scratch.
// All superstep access is serialized by the substrate barrier (one
// completion at a time); job control (StartJob/FinishJob) runs between
// jobs, after the barrier quiesces.
type link struct {
	addr   string
	lo, hi int // the worker's rank block
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	rbuf   []byte // ReadFrame reuse buffer
	seg    []byte // this worker's relayed slot segment for the current superstep

	// dead is atomic because Close may be called from a shutdown goroutine
	// while the superstep goroutine is inside readFrame/writeFrame; all
	// other link state is serialized by the barrier.
	dead atomic.Bool

	framesTx, framesRx *obs.Counter
	bytesTx, bytesRx   *obs.Counter
}

func newLink(conn net.Conn, addr string, reg *obs.Registry) *link {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // one small frame per superstep per direction
	}
	lk := &link{
		addr: addr,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	if reg != nil {
		peer := obs.L("peer", addr)
		lk.framesTx = reg.Counter("transport_tcp_frames_total", "frames sent/received per link", peer, obs.L("dir", "tx"))
		lk.framesRx = reg.Counter("transport_tcp_frames_total", "frames sent/received per link", peer, obs.L("dir", "rx"))
		lk.bytesTx = reg.Counter("transport_tcp_bytes_total", "frame payload bytes sent/received per link", peer, obs.L("dir", "tx"))
		lk.bytesRx = reg.Counter("transport_tcp_bytes_total", "frame payload bytes sent/received per link", peer, obs.L("dir", "rx"))
	}
	return lk
}

// writeFrame frames, sends and flushes one payload under a write deadline.
// Any failure marks the link dead: frame streams have no resync point, so
// a failed link never carries another frame.
func (lk *link) writeFrame(kind uint8, payload []byte, timeout time.Duration) error {
	if lk.dead.Load() {
		return fmt.Errorf("tcp: connection to %s is down", lk.addr)
	}
	if timeout > 0 {
		lk.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	if err := enc.WriteFrame(lk.bw, kind, payload); err != nil {
		lk.dead.Store(true)
		return fmt.Errorf("tcp: write to %s: %w", lk.addr, err)
	}
	if err := lk.bw.Flush(); err != nil {
		lk.dead.Store(true)
		return fmt.Errorf("tcp: write to %s: %w", lk.addr, err)
	}
	if lk.framesTx != nil {
		lk.framesTx.Inc()
		lk.bytesTx.Add(int64(len(payload)))
	}
	return nil
}

// readFrame reads one frame under a read deadline (0 means wait forever —
// only the worker's idle job wait uses that). The payload view is valid
// until the next readFrame on this link.
func (lk *link) readFrame(timeout time.Duration) (kind uint8, payload []byte, err error) {
	if lk.dead.Load() {
		return 0, nil, fmt.Errorf("tcp: connection to %s is down", lk.addr)
	}
	if timeout > 0 {
		lk.conn.SetReadDeadline(time.Now().Add(timeout))
	} else {
		lk.conn.SetReadDeadline(time.Time{})
	}
	kind, payload, err = enc.ReadFrame(lk.br, lk.rbuf)
	if err != nil {
		lk.dead.Store(true)
		return 0, nil, fmt.Errorf("tcp: read from %s: %w", lk.addr, err)
	}
	lk.rbuf = payload[:cap(payload)]
	if lk.framesRx != nil {
		lk.framesRx.Inc()
		lk.bytesRx.Add(int64(len(payload)))
	}
	return kind, payload, nil
}

// Leader is the distributed world's verdict-deciding process: it hosts
// ranks [0, LocalRanks) on the embedded shared-memory substrate and
// completes every superstep by gathering each worker's STEP frame,
// running the local completion over the fully populated board, and
// fanning the verdict plus the rest of the board back out as REPLY
// frames. It implements transport.Transport for the leader's comm.World.
type Leader struct {
	*shm.Substrate
	links     []*link
	ioTimeout atomic.Int64 // nanoseconds; see SetIOTimeout
	failed    atomic.Bool  // a link failed: the world must be rebuilt

	// Superstep scratch, serialized by the barrier.
	leaderSeg []byte // leader-local slots, encoded once per superstep
	frameBuf  []byte
}

// NewLeader splits the non-local ranks over the workers, dials each with
// retry and backoff, and handshakes the world geometry. On any failure all
// already-established connections are closed.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	if cfg.P < 1 || cfg.LocalRanks < 1 || cfg.LocalRanks >= cfg.P {
		return nil, fmt.Errorf("tcp: leader block [0,%d) of %d ranks is not a strict non-empty prefix", cfg.LocalRanks, cfg.P)
	}
	nw := len(cfg.Workers)
	remote := cfg.P - cfg.LocalRanks
	if nw == 0 || remote < nw {
		return nil, fmt.Errorf("tcp: %d remote ranks cannot cover %d workers", remote, nw)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.DialRetries <= 0 {
		cfg.DialRetries = defaultDialRetries
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = defaultDialBackoff
	}

	l := &Leader{}
	if cfg.IOTimeout > 0 {
		l.ioTimeout.Store(int64(cfg.IOTimeout))
	}
	l.Substrate = shm.NewSubstrate(cfg.P, 0, cfg.LocalRanks, l.netSync)

	base, extra := remote/nw, remote%nw
	lo := cfg.LocalRanks
	for i, addr := range cfg.Workers {
		hi := lo + base
		if i < extra {
			hi++
		}
		lk, err := l.dial(addr, lo, hi, cfg)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.links = append(l.links, lk)
		lo = hi
	}
	return l, nil
}

// dial establishes and handshakes one worker connection.
func (l *Leader) dial(addr string, lo, hi int, cfg LeaderConfig) (*link, error) {
	var dials, retries *obs.Counter
	if cfg.Reg != nil {
		peer := obs.L("peer", addr)
		dials = cfg.Reg.Counter("transport_tcp_dials_total", "dial attempts per worker", peer)
		retries = cfg.Reg.Counter("transport_tcp_dial_retries_total", "dial attempts after the first per worker", peer)
	}
	var conn net.Conn
	var err error
	backoff := cfg.DialBackoff
	for attempt := 0; ; attempt++ {
		if dials != nil {
			dials.Inc()
		}
		conn, err = net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil {
			break
		}
		if attempt >= cfg.DialRetries {
			return nil, fmt.Errorf("tcp: dial %s: %w (after %d attempts)", addr, err, attempt+1)
		}
		if retries != nil {
			retries.Inc()
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxDialBackoff {
			backoff = maxDialBackoff
		}
	}
	lk := newLink(conn, addr, cfg.Reg)
	lk.lo, lk.hi = lo, hi
	h := hello{
		p: cfg.P, lo: lo, hi: hi,
		threads: cfg.Threads,
		alpha:   cfg.Alpha, beta: cfg.Beta, compute: cfg.Compute,
		wordSize: wordSize,
	}
	if err := lk.writeFrame(kHello, appendHello(nil, h), cfg.DialTimeout); err != nil {
		conn.Close()
		return nil, err
	}
	kind, payload, err := lk.readFrame(cfg.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if kind != kWelcome {
		conn.Close()
		return nil, fmt.Errorf("%w: frame kind %d from %s, want WELCOME", ErrProtocol, kind, addr)
	}
	if err := checkWelcome(payload); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%s: %w", addr, err)
	}
	return lk, nil
}

// SetIOTimeout bounds every subsequent superstep read and write. The
// Machine sets it per job from the job's stall budget, mapping a hung peer
// onto the same timeout a hung PE gets.
func (l *Leader) SetIOTimeout(d time.Duration) { l.ioTimeout.Store(int64(d)) }

func (l *Leader) timeout() time.Duration {
	if d := l.ioTimeout.Load(); d > 0 {
		return time.Duration(d)
	}
	return defaultIOTimeout
}

// Failed reports whether a transport failure has made the distributed
// world unusable (it must be discarded and rebuilt; connections do not
// recover mid-world).
func (l *Leader) Failed() bool { return l.failed.Load() }

// netSync is the embedded substrate's completion hook: it runs on
// whichever leader PE completes the local barrier, while every leader rank
// is blocked. One STEP per worker populates the board's remote slots, the
// local Complete decides the verdict, and one REPLY per worker ships the
// verdict plus every slot outside that worker's block. Any wire failure
// becomes a TransportFault and an abort slot — local ranks unwind through
// the normal verdict path, never a poison.
func (l *Leader) netSync(epoch uint64, board []transport.Deposit, h transport.Host) (slot transport.Slot) {
	if l.failed.Load() {
		// A previous superstep already failed; short-circuit so abort
		// drains terminate without touching dead links.
		return transport.Slot{Verdict: transport.VerdictAbort}
	}
	defer func() {
		if r := recover(); r != nil {
			l.failed.Store(true)
			h.TransportFault(fmt.Errorf("tcp: superstep %d completion panicked: %v", epoch, r))
			l.abortAll()
			slot = transport.Slot{Verdict: transport.VerdictAbort}
		}
	}()

	// Rank 0 is always leader-local, so its deposit carries this
	// superstep's codec (nil on valueless supersteps — then remote values
	// stay nil too, which only an abort-verdict superstep produces).
	cd := board[0].Codec
	var remote transport.Flags
	for _, lk := range l.links {
		if err := l.readStep(lk, epoch, board, cd, &remote); err != nil {
			l.failed.Store(true)
			h.TransportFault(err)
			l.abortAll()
			return transport.Slot{Verdict: transport.VerdictAbort}
		}
	}

	slot = h.Complete(board, remote)

	// Encode the leader block once; every REPLY starts with it.
	l.leaderSeg = l.leaderSeg[:0]
	lo, hi := l.Local()
	for r := lo; r < hi; r++ {
		l.leaderSeg = appendSlot(l.leaderSeg, &board[r])
	}
	for _, lk := range l.links {
		buf := l.frameBuf[:0]
		buf = enc.AppendU8(buf, slot.Verdict)
		buf = append(buf, l.leaderSeg...)
		for _, other := range l.links {
			if other != lk {
				buf = append(buf, other.seg...)
			}
		}
		l.frameBuf = buf
		if err := lk.writeFrame(kReply, buf, l.timeout()); err != nil {
			l.failed.Store(true)
			h.TransportFault(err)
			l.abortAll()
			return transport.Slot{Verdict: transport.VerdictAbort}
		}
	}
	return slot
}

// readStep reads one worker's STEP frame: epoch check, flag/fault union,
// and the worker's rank block decoded into the board. The still-encoded
// payload bytes are re-framed into lk.seg so other workers' REPLYs can
// relay them without re-encoding.
func (l *Leader) readStep(lk *link, epoch uint64, board []transport.Deposit, cd *enc.Codec, remote *transport.Flags) error {
	kind, payload, err := lk.readFrame(l.timeout())
	if err != nil {
		return err
	}
	if kind != kStep {
		return fmt.Errorf("%w: frame kind %d from %s, want STEP", ErrProtocol, kind, lk.addr)
	}
	r := enc.NewReader(payload)
	e := r.U64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("tcp: STEP from %s: %w", lk.addr, err)
	}
	if e != epoch {
		return fmt.Errorf("%w: STEP epoch %d from %s at superstep %d", ErrProtocol, e, lk.addr, epoch)
	}
	fl, err := readFlags(r)
	if err != nil {
		return fmt.Errorf("tcp: STEP from %s: %w", lk.addr, err)
	}
	remote.Cancel = remote.Cancel || fl.Cancel
	remote.Abort = remote.Abort || fl.Abort
	remote.Faults = append(remote.Faults, fl.Faults...)

	lk.seg = lk.seg[:0]
	for rank := lk.lo; rank < lk.hi; rank++ {
		d := &board[rank]
		d.Val, d.Codec = nil, nil // clear the slot's stale same-parity value
		raw, present, err := readSlot(r, d, cd)
		if err != nil {
			return fmt.Errorf("tcp: STEP rank %d from %s: %w", rank, lk.addr, err)
		}
		lk.seg = appendRawSlot(lk.seg, d, raw, present)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d bytes after STEP from %s", enc.ErrCorrupt, r.Len(), lk.addr)
	}
	return nil
}

// abortAll best-effort ships a short abort REPLY (verdict only, no slots)
// to every still-live worker so their ranks unwind by verdict instead of
// waiting out their read deadlines. Failures are ignored — the world is
// already condemned.
func (l *Leader) abortAll() {
	for _, lk := range l.links {
		if !lk.dead.Load() {
			_ = lk.writeFrame(kReply, []byte{transport.VerdictAbort}, l.timeout())
		}
	}
}

// StartJob broadcasts an opaque job spec to every worker.
func (l *Leader) StartJob(spec []byte) error {
	if l.failed.Load() {
		return fmt.Errorf("tcp: world transport failed; rebuild the world")
	}
	for _, lk := range l.links {
		if err := lk.writeFrame(kJobStart, spec, l.timeout()); err != nil {
			l.failed.Store(true)
			return err
		}
	}
	return nil
}

// FinishJob collects each worker's opaque end-of-job report, in worker
// order. The worker sends it after its local ranks complete the job — on
// success, cooperative abort and cancel alike, the superstep streams stay
// synchronized, so the next frame on each link is the report. Stale STEP
// frames (a job torn down while a worker was mid-superstep) are skipped
// defensively.
func (l *Leader) FinishJob() ([][]byte, error) {
	if l.failed.Load() {
		return nil, fmt.Errorf("tcp: world transport failed; rebuild the world")
	}
	outs := make([][]byte, len(l.links))
	for i, lk := range l.links {
		for {
			kind, payload, err := lk.readFrame(l.timeout())
			if err != nil {
				l.failed.Store(true)
				return nil, err
			}
			if kind == kStep {
				continue
			}
			if kind != kJobEnd {
				l.failed.Store(true)
				return nil, fmt.Errorf("%w: frame kind %d from %s, want JOBEND", ErrProtocol, kind, lk.addr)
			}
			outs[i] = append([]byte(nil), payload...)
			break
		}
	}
	return outs, nil
}

// Drop releases the embedded substrate's retained values plus the wire
// scratch buffers.
func (l *Leader) Drop() {
	l.Substrate.Drop()
	for _, lk := range l.links {
		lk.seg = nil
	}
	l.leaderSeg, l.frameBuf = nil, nil
}

// Close closes every worker connection; workers observe EOF on their idle
// job wait and shut the world down.
func (l *Leader) Close() error {
	var first error
	for _, lk := range l.links {
		lk.dead.Store(true)
		if err := lk.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
