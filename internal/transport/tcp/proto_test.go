package tcp

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"kamsta/internal/enc"
	"kamsta/internal/transport"
)

func TestHelloRoundTrip(t *testing.T) {
	want := hello{
		p: 16, lo: 4, hi: 10, threads: 3,
		alpha: 1e-6, beta: 2.5e-9, compute: 1e-9,
		wordSize: wordSize,
	}
	got, err := parseHello(appendHello(nil, want), wordSize)
	if err != nil {
		t.Fatalf("parseHello: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestHelloRejectsMismatch(t *testing.T) {
	base := hello{p: 8, lo: 4, hi: 8, threads: 1, wordSize: wordSize}
	cases := map[string][]byte{
		"truncated":  appendHello(nil, base)[:11],
		"bad block":  appendHello(nil, hello{p: 8, lo: 6, hi: 5, threads: 1, wordSize: wordSize}),
		"word size":  appendHello(nil, hello{p: 8, lo: 4, hi: 8, threads: 1, wordSize: wordSize + 1}),
		"bad magic":  append(enc.AppendU32(nil, 0xdeadbeef), appendHello(nil, base)[4:]...),
		"bad probe":  flipByte(appendHello(nil, base), 10),
		"empty":      nil,
		"extra junk": append(appendHello(nil, base), 0xff),
	}
	for name, payload := range cases {
		if name == "extra junk" {
			// Trailing bytes after a well-formed hello are tolerated: the
			// frame length bounds the payload and future versions may append.
			if _, err := parseHello(payload, wordSize); err != nil {
				t.Errorf("%s: unexpected error %v", name, err)
			}
			continue
		}
		if _, err := parseHello(payload, wordSize); !errors.Is(err, ErrHandshake) {
			t.Errorf("%s: got %v, want ErrHandshake", name, err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestWelcomeRoundTrip(t *testing.T) {
	if err := checkWelcome(appendWelcome(nil)); err != nil {
		t.Fatalf("checkWelcome: %v", err)
	}
	if err := checkWelcome(nil); !errors.Is(err, ErrHandshake) {
		t.Fatalf("empty welcome: got %v, want ErrHandshake", err)
	}
	if err := checkWelcome(appendWelcome(nil)[:7]); !errors.Is(err, ErrHandshake) {
		t.Fatalf("short welcome: got %v, want ErrHandshake", err)
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	cases := []transport.Flags{
		{},
		{Cancel: true},
		{Abort: true},
		{Cancel: true, Abort: true, Faults: []transport.RemoteFault{
			{Kind: 2, Rank: 5, Superstep: 99, Round: 3, Phase: "contract", Panic: "boom", Stack: "goroutine 7\n..."},
			{Kind: 1, Rank: 0, Superstep: 1, Round: 0, Phase: "", Panic: "", Stack: ""},
		}},
	}
	for i, want := range cases {
		r := enc.NewReader(appendFlags(nil, want))
		got, err := readFlags(r)
		if err != nil {
			t.Fatalf("case %d: readFlags: %v", i, err)
		}
		if got.Cancel != want.Cancel || got.Abort != want.Abort || !reflect.DeepEqual(got.Faults, want.Faults) {
			t.Fatalf("case %d: got %+v, want %+v", i, got, want)
		}
		if r.Len() != 0 {
			t.Fatalf("case %d: %d bytes left over", i, r.Len())
		}
	}
}

func TestFlagsRejectsOversizedFaultCount(t *testing.T) {
	// A fault count exceeding the remaining payload must fail fast instead
	// of looping (each fault occupies well over one byte).
	b := enc.AppendU8(nil, 0)
	b = enc.AppendUvarint(b, 1<<40)
	if _, err := readFlags(enc.NewReader(b)); !errors.Is(err, enc.ErrOversized) {
		t.Fatalf("got %v, want ErrOversized", err)
	}
}

func TestSlotRoundTrip(t *testing.T) {
	cd := enc.CodecFor[[]int64]()
	want := transport.Deposit{Tag: 7, Clock: 1.25, Val: []int64{3, -4, 5}, Codec: cd}
	var got transport.Deposit
	r := enc.NewReader(appendSlot(nil, &want))
	raw, present, err := readSlot(r, &got, cd)
	if err != nil || !present {
		t.Fatalf("readSlot: present=%v err=%v", present, err)
	}
	if got.Tag != want.Tag || got.Clock != want.Clock || !reflect.DeepEqual(got.Val, want.Val) {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	// Relay: re-frame the raw view without the codec and decode again — the
	// leader forwards worker slots this way.
	var relayed transport.Deposit
	r2 := enc.NewReader(appendRawSlot(nil, &got, raw, present))
	if _, _, err := readSlot(r2, &relayed, cd); err != nil {
		t.Fatalf("relayed readSlot: %v", err)
	}
	if !reflect.DeepEqual(relayed.Val, want.Val) || relayed.Tag != want.Tag || relayed.Clock != want.Clock {
		t.Fatalf("relayed %+v, want %+v", relayed, want)
	}
}

func TestSlotAbsentAndNilCodec(t *testing.T) {
	// Valueless deposits (barriers, drains) travel as absent.
	var got transport.Deposit
	r := enc.NewReader(appendSlot(nil, &transport.Deposit{Tag: 3, Clock: 2}))
	if _, present, err := readSlot(r, &got, nil); err != nil || present {
		t.Fatalf("absent slot: present=%v err=%v", present, err)
	}
	if got.Val != nil || got.Tag != 3 || got.Clock != 2 {
		t.Fatalf("absent slot decoded to %+v", got)
	}

	// A present payload read with a nil codec (receiver deposited none) is
	// skipped, not decoded.
	cd := enc.CodecFor[[]int64]()
	src := transport.Deposit{Tag: 9, Clock: 4, Val: []int64{1}, Codec: cd}
	r = enc.NewReader(appendSlot(nil, &src))
	raw, present, err := readSlot(r, &got, nil)
	if err != nil || !present || raw == nil {
		t.Fatalf("nil-codec read: raw=%v present=%v err=%v", raw, present, err)
	}
	if got.Val != nil {
		t.Fatalf("nil-codec read decoded a value: %+v", got.Val)
	}
}

func TestSlotRejectsCorruption(t *testing.T) {
	cd := enc.CodecFor[[]int64]()
	good := appendSlot(nil, &transport.Deposit{Tag: 1, Clock: 1, Val: []int64{42}, Codec: cd})
	var d transport.Deposit
	if _, _, err := readSlot(enc.NewReader(good[:5]), &d, cd); err == nil {
		t.Fatal("truncated slot accepted")
	}
	bad := append([]byte(nil), good...)
	bad[12] = 7 // presence flag: not 0 or 1
	if _, _, err := readSlot(enc.NewReader(bad), &d, cd); !errors.Is(err, enc.ErrCorrupt) {
		t.Fatalf("bad presence flag: got %v, want ErrCorrupt", err)
	}
}

func TestFoldClock(t *testing.T) {
	board := []transport.Deposit{{Clock: 1.5}, {Clock: 3.25}, {Clock: 2.0}}
	if got := foldClock(board); got != 3.25 {
		t.Fatalf("foldClock = %v, want 3.25", got)
	}
	// Order independence, including negative zero and inf.
	a := []transport.Deposit{{Clock: math.Copysign(0, -1)}, {Clock: 0}, {Clock: math.Inf(1)}}
	b := []transport.Deposit{{Clock: math.Inf(1)}, {Clock: 0}, {Clock: math.Copysign(0, -1)}}
	if x, y := foldClock(a), foldClock(b); math.Float64bits(x) != math.Float64bits(y) {
		t.Fatalf("foldClock order-dependent: %x vs %x", math.Float64bits(x), math.Float64bits(y))
	}
}
