package unionfind

import (
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("Count=%d want 5", u.Count())
	}
	for i := 0; i < 5; i++ {
		if u.Find(i) != i {
			t.Fatalf("Find(%d)=%d before any union", i, u.Find(i))
		}
	}
}

func TestUnionBasics(t *testing.T) {
	u := New(4)
	if !u.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if u.Union(0, 1) {
		t.Fatal("second union of same pair should be a no-op")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("Same gives wrong answer after union")
	}
	if u.Count() != 3 {
		t.Fatalf("Count=%d want 3", u.Count())
	}
}

func TestTransitivity(t *testing.T) {
	u := New(10)
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(3, 4)
	if !u.Same(0, 2) {
		t.Fatal("union should be transitive")
	}
	if u.Same(0, 3) {
		t.Fatal("separate chains must stay separate")
	}
	u.Union(2, 3)
	if !u.Same(0, 4) {
		t.Fatal("merged chains should be connected")
	}
}

func TestChainCollapse(t *testing.T) {
	const n = 10000
	u := New(n)
	for i := 0; i < n-1; i++ {
		u.Union(i, i+1)
	}
	if u.Count() != 1 {
		t.Fatalf("Count=%d want 1", u.Count())
	}
	root := u.Find(0)
	for i := 0; i < n; i += 97 {
		if u.Find(i) != root {
			t.Fatalf("element %d has different root", i)
		}
	}
}

func TestReset(t *testing.T) {
	u := New(6)
	u.Union(0, 5)
	u.Union(1, 2)
	u.Reset()
	if u.Count() != 6 {
		t.Fatalf("Count=%d after Reset, want 6", u.Count())
	}
	if u.Same(0, 5) {
		t.Fatal("Reset should separate all elements")
	}
}

func TestCountInvariant(t *testing.T) {
	// Property: count always equals the number of distinct roots.
	f := func(pairs []struct{ A, B uint8 }) bool {
		u := New(256)
		for _, p := range pairs {
			u.Union(int(p.A), int(p.B))
		}
		roots := map[int]bool{}
		for i := 0; i < 256; i++ {
			roots[u.Find(i)] = true
		}
		return len(roots) == u.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindIdempotent(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }, probe uint8) bool {
		u := New(256)
		for _, p := range pairs {
			u.Union(int(p.A), int(p.B))
		}
		r := u.Find(int(probe))
		return u.Find(r) == r && u.Find(int(probe)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseBasics(t *testing.T) {
	s := NewSparse()
	if s.Find(1<<40) != 1<<40 {
		t.Fatal("untouched key should be its own representative")
	}
	if !s.Union(1<<40, 7) {
		t.Fatal("first union should merge")
	}
	if !s.Same(7, 1<<40) {
		t.Fatal("Same wrong after union")
	}
	if s.Count() != 1 {
		t.Fatalf("Count=%d want 1", s.Count())
	}
}

func TestSparseMatchesDense(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		d := New(256)
		s := NewSparse()
		for _, p := range pairs {
			if d.Union(int(p.A), int(p.B)) != s.Union(uint64(p.A), uint64(p.B)) {
				return false
			}
		}
		for i := 0; i < 256; i++ {
			for j := i + 1; j < 256; j += 37 {
				if d.Same(i, j) != s.Same(uint64(i), uint64(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparseLargeKeys(t *testing.T) {
	s := NewSparse()
	s.Union(1<<62, 1<<61)
	s.Union(1<<61, 3)
	if !s.Same(3, 1<<62) {
		t.Fatal("sparse union-find fails on large keys")
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		u := New(n)
		for j := 0; j < n-1; j++ {
			u.Union(j, j+1)
		}
		_ = u.Find(0)
	}
}
