// Package unionfind implements a disjoint-set forest with union by rank and
// path halving. It is the workhorse of the sequential Kruskal and
// Filter-Kruskal baselines and of every correctness check that asks whether
// a distributed result spans the same components as the ground truth.
package unionfind

// UF is a disjoint-set forest over the elements 0..n-1.
type UF struct {
	parent []int32
	rank   []uint8
	count  int // number of disjoint sets
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Len reports the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Count reports the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Find returns the representative of x's set, halving the path on the way.
func (u *UF) Find(x int) int {
	p := u.parent
	for p[x] != int32(x) {
		p[x] = p[p[x]] // path halving
		x = int(p[x])
	}
	return x
}

// Union merges the sets of a and b and reports whether they were previously
// distinct.
func (u *UF) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UF) Same(a, b int) bool {
	return u.Find(a) == u.Find(b)
}

// Reset restores all elements to singleton sets.
func (u *UF) Reset() {
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.rank[i] = 0
	}
	u.count = len(u.parent)
}

// Sparse is a union-find over arbitrary uint64 keys, backed by a map. It is
// used where vertex labels are sparse global IDs rather than a dense range,
// e.g. when verifying contracted graphs mid-algorithm.
type Sparse struct {
	parent map[uint64]uint64
	rank   map[uint64]uint8
	count  int
}

// NewSparse returns an empty sparse forest. Keys spring into existence as
// singletons on first touch.
func NewSparse() *Sparse {
	return &Sparse{
		parent: make(map[uint64]uint64),
		rank:   make(map[uint64]uint8),
	}
}

// Count reports the number of disjoint sets among the touched keys.
func (s *Sparse) Count() int { return s.count }

func (s *Sparse) ensure(x uint64) {
	if _, ok := s.parent[x]; !ok {
		s.parent[x] = x
		s.count++
	}
}

// Find returns the representative of x's set.
func (s *Sparse) Find(x uint64) uint64 {
	s.ensure(x)
	root := x
	for s.parent[root] != root {
		root = s.parent[root]
	}
	for s.parent[x] != root {
		s.parent[x], x = root, s.parent[x]
	}
	return root
}

// Union merges the sets of a and b and reports whether they were previously
// distinct.
func (s *Sparse) Union(a, b uint64) bool {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return false
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	s.count--
	return true
}

// Same reports whether a and b are in the same set.
func (s *Sparse) Same(a, b uint64) bool {
	return s.Find(a) == s.Find(b)
}
