package arena

import "testing"

func TestGrabReusesCapacity(t *testing.T) {
	a := New()
	k := NewKey()
	s1 := Grab[int](a, k, 100)
	for i := range s1 {
		s1[i] = i
	}
	p1 := &s1[0]
	s2 := Grab[int](a, k, 50)
	if &s2[0] != p1 {
		t.Fatal("Grab with smaller n reallocated")
	}
	if len(s2) != 50 {
		t.Fatalf("len = %d, want 50", len(s2))
	}
	// Growth reallocates, then stabilizes.
	s3 := Grab[int](a, k, 1000)
	if len(s3) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s3))
	}
	s4 := Grab[int](a, k, 900)
	if &s4[0] != &s3[0] {
		t.Fatal("Grab after growth reallocated")
	}
}

func TestGrabZeroed(t *testing.T) {
	a := New()
	k := NewKey()
	s := Grab[int](a, k, 10)
	for i := range s {
		s[i] = 7
	}
	z := GrabZeroed[int](a, k, 10)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("z[%d] = %d, want 0", i, v)
		}
	}
}

func TestGrabAppendKeep(t *testing.T) {
	a := New()
	k := NewKey()
	s := GrabAppend[int](a, k)
	for i := 0; i < 500; i++ {
		s = append(s, i)
	}
	Keep(a, k, s)
	s2 := GrabAppend[int](a, k)
	if cap(s2) < 500 {
		t.Fatalf("Keep did not retain grown capacity: cap=%d", cap(s2))
	}
	if len(s2) != 0 {
		t.Fatalf("GrabAppend returned non-empty slice: len=%d", len(s2))
	}
}

func TestBuckets(t *testing.T) {
	a := New()
	k := NewKey()
	b := Buckets[int](a, k, 4)
	if len(b) != 4 {
		t.Fatalf("len = %d, want 4", len(b))
	}
	b[2] = append(b[2], 1, 2, 3)
	b2 := Buckets[int](a, k, 4)
	if len(b2[2]) != 0 {
		t.Fatal("bucket not reset to zero length")
	}
	if cap(b2[2]) < 3 {
		t.Fatal("bucket capacity not retained")
	}
	// Growing the world keeps existing buckets.
	b3 := Buckets[int](a, k, 8)
	if len(b3) != 8 {
		t.Fatalf("len = %d, want 8", len(b3))
	}
	if cap(b3[2]) < 3 {
		t.Fatal("bucket capacity lost on outer growth")
	}
}

func TestDistinctKeysAndTypes(t *testing.T) {
	a := New()
	k1, k2 := NewKey(), NewKey()
	if k1 == k2 {
		t.Fatal("NewKey returned duplicate keys")
	}
	i := Grab[int](a, k1, 4)
	f := Grab[float64](a, k2, 4)
	i[0], f[0] = 1, 2.5
	if i[0] != 1 || f[0] != 2.5 {
		t.Fatal("slots interfere")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a key with a different type must panic")
		}
	}()
	Grab[string](a, k1, 1)
}
