// Package arena provides per-PE scratch memory that is recycled across
// Borůvka rounds and across jobs: grow-only typed slices owned by the
// persistent world (one Arena per simulated PE, see comm.Comm.Scratch).
//
// The hot per-round tables of the MST algorithms — the dense vertex rename
// table, parent/emit/label arrays, all-to-all send buckets — live in these
// slots, so a steady-state round performs no vertex-bookkeeping allocation:
// each round re-grabs the same slots, which only reallocate while the
// working set is still growing. Resetting is explicit — Grab returns
// unspecified contents and the caller writes every entry it reads (or uses
// GrabZeroed when an absent-marker fill is the natural initialization).
//
// Concurrency: an Arena must only be used by the goroutine of the PE that
// owns it. The world hands rank r's arena to whichever goroutine runs rank
// r's share of a job; jobs are serialized, so successive uses are ordered by
// the job dispatch's happens-before edges.
//
// Ownership discipline for slices handed to collectives: a bucket deposited
// in an all-to-all is staged (copied into the wire frame) at deposit time,
// so reusing its slot after the collective returns is safe. A slot whose
// memory is referenced by a routed payload (e.g. the Items of an in-flight
// hop in an indirect exchange) must not be re-grabbed until the PE has
// passed one further collective — every algorithm in internal/core reuses a
// slot no earlier than the next round, several supersteps later.
package arena

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// Key identifies one typed slot of an Arena. Allocate keys once at package
// init with NewKey; a key may be used with any Arena but always with the
// same element type.
type Key int32

var nextKey atomic.Int32

// NewKey reserves a fresh slot key, distinct from every other key in the
// process.
func NewKey() Key { return Key(nextKey.Add(1) - 1) }

// Arena is a set of grow-only typed scratch slots, one per Key.
type Arena struct {
	slots []any // slots[key] holds a *[]T, lazily created
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// slot returns the *[]T backing k, creating it on first use. The element
// type of a key is fixed by its first use; mixing types panics with a
// diagnostic rather than corrupting memory.
func slot[T any](a *Arena, k Key) *[]T {
	if int(k) >= len(a.slots) {
		grown := make([]any, int(k)+1)
		copy(grown, a.slots)
		a.slots = grown
	}
	s := a.slots[k]
	if s == nil {
		p := new([]T)
		a.slots[k] = p
		return p
	}
	p, ok := s.(*[]T)
	if !ok {
		panic(fmt.Sprintf("arena: key %d used with two element types (%T vs requested)", k, s))
	}
	return p
}

// Grab returns a slice of length n in slot k, reusing the slot's capacity.
// Contents are unspecified (they are whatever the previous user left);
// callers must write every element they read. Grabbing a slot invalidates
// the slice returned by its previous Grab.
func Grab[T any](a *Arena, k Key, n int) []T {
	p := slot[T](a, k)
	if cap(*p) < n {
		*p = make([]T, n+n/2+8)
	}
	s := (*p)[:n]
	*p = s
	return s
}

// GrabZeroed is Grab with every element set to T's zero value.
func GrabZeroed[T any](a *Arena, k Key, n int) []T {
	s := Grab[T](a, k, n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// GrabAppend returns a zero-length slice in slot k with the slot's full
// grown capacity, for append-style filling.
func GrabAppend[T any](a *Arena, k Key) []T {
	p := slot[T](a, k)
	return (*p)[:0]
}

// Keep stores s back into slot k so its grown capacity (from appends beyond
// the grabbed capacity) is retained for the next Grab.
func Keep[T any](a *Arena, k Key, s []T) {
	p := slot[T](a, k)
	*p = s
}

// Footprint reports the number of live slots and the total bytes of backing
// capacity they hold, including the inner buckets of [][]T slots. It walks
// the slots with reflection — a cold-path accounting method for metrics and
// diagnostics, never called from algorithm hot paths (the hot paths stay
// reflection- and allocation-free).
func (a *Arena) Footprint() (slots int, bytes int64) {
	for _, s := range a.slots {
		if s == nil {
			continue
		}
		slots++
		v := reflect.ValueOf(s).Elem() // *[]T -> []T
		bytes += sliceBytes(v)
	}
	return slots, bytes
}

// sliceBytes returns the backing-capacity bytes of a slice value, recursing
// one level into slice-of-slice (the Buckets shape).
func sliceBytes(v reflect.Value) int64 {
	et := v.Type().Elem()
	b := int64(v.Cap()) * int64(et.Size())
	if et.Kind() == reflect.Slice && v.Cap() > 0 {
		full := v.Slice(0, v.Cap())
		for i := 0; i < full.Len(); i++ {
			inner := full.Index(i)
			b += int64(inner.Cap()) * int64(inner.Type().Elem().Size())
		}
	}
	return b
}

// Buckets returns a [][]T of length p in slot k with every bucket reset to
// length zero, reusing both the outer array and each bucket's capacity —
// the shape of a sparse all-to-all send set. Bucket capacities grow with
// use and are retained across calls.
func Buckets[T any](a *Arena, k Key, p int) [][]T {
	bp := slot[[]T](a, k)
	b := *bp
	if cap(b) < p {
		nb := make([][]T, p)
		copy(nb, b[:len(b)])
		b = nb
	}
	b = b[:p]
	*bp = b
	for i := range b {
		b[i] = b[i][:0]
	}
	return b
}
