package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"kamsta"
)

// GoldenCase pins one reference computation: the modeled clock bits, MSF
// weight and traffic stats captured on the original in-process substrate.
// The table duplicates the repo's golden tests so the same bits gate the
// multi-process smoke lane (mstbench -golden -transport tcp -workers ...):
// every transport backend must reproduce them verbatim — the wire is
// allowed to change wall time only.
type GoldenCase struct {
	Name        string
	Spec        kamsta.GraphSpec
	Alg         kamsta.Algorithm
	PEs         int
	ModeledBits uint64
	Weight      uint64
	MSFEdges    int
}

// GoldenCases lists the pinned reference computations.
func GoldenCases() []GoldenCase {
	return []GoldenCase{
		{
			Name:        "gnm-boruvka",
			Spec:        kamsta.GraphSpec{Family: kamsta.GNM, N: 1 << 10, M: 1 << 13, Seed: 42},
			Alg:         kamsta.AlgBoruvka,
			PEs:         8,
			ModeledBits: 0x3f453980b2cb7769,
			Weight:      19837,
			MSFEdges:    1023,
		},
		{
			Name:        "rgg2d-filter",
			Spec:        kamsta.GraphSpec{Family: kamsta.RGG2D, N: 1 << 10, M: 1 << 13, Seed: 7},
			Alg:         kamsta.AlgFilterBoruvka,
			PEs:         8,
			ModeledBits: 0x3f68ca7d4d6ed9eb,
			Weight:      22137,
			MSFEdges:    1023,
		},
	}
}

// RunGolden computes every golden case on the Scale's transport and checks
// the bits, printing one PASS/FAIL line per case. A mismatch or a failed
// job returns an error after the remaining cases have still been tried.
func RunGolden(ctx context.Context, w io.Writer, s Scale) error {
	mp := newMachinePool(ctx, s)
	defer mp.Close()
	var firstErr error
	for _, gc := range GoldenCases() {
		cfg := kamsta.Config{PEs: gc.PEs, Algorithm: gc.Alg}
		err := runGoldenCase(mp, gc, cfg)
		if err == nil {
			fmt.Fprintf(w, "PASS %-14s modeled bits %#x, weight %d\n", gc.Name, gc.ModeledBits, gc.Weight)
			continue
		}
		fmt.Fprintf(w, "FAIL %-14s %v\n", gc.Name, err)
		if firstErr == nil {
			firstErr = fmt.Errorf("golden case %s: %w", gc.Name, err)
		}
	}
	return firstErr
}

func runGoldenCase(mp *machinePool, gc GoldenCase, cfg kamsta.Config) error {
	m, err := mp.get(cfg)
	if err != nil {
		return err
	}
	rep, err := mp.compute(m, kamsta.FromSpec(gc.Spec), cfg.RunOptions()...)
	if err != nil {
		return err
	}
	if got := math.Float64bits(rep.ModeledSeconds); got != gc.ModeledBits {
		return fmt.Errorf("modeled %v (bits %#x), want bits %#x (%v)",
			rep.ModeledSeconds, got, gc.ModeledBits, math.Float64frombits(gc.ModeledBits))
	}
	if rep.TotalWeight != gc.Weight || rep.NumEdges != gc.MSFEdges {
		return fmt.Errorf("MSF weight/edges %d/%d, want %d/%d", rep.TotalWeight, rep.NumEdges, gc.Weight, gc.MSFEdges)
	}
	return nil
}
